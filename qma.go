// Package qma is a library implementation of QMA, the Q-learning-based
// multiple access scheme for the industrial IoT of Meyer & Turau (ICDCS
// 2021, arXiv:2101.04003), together with everything needed to reproduce the
// paper's evaluation: a deterministic discrete event simulator, an IEEE
// 802.15.4 DSME superframe/GTS substrate, slotted and unslotted CSMA/CA
// baselines, the paper's topologies and traffic models, and an experiment
// harness that regenerates every figure of the paper.
//
// Two levels of API are exposed:
//
//   - Scenario-level: describe a network, a channel access scheme and
//     traffic, call Scenario.Run, and read packet delivery ratios, delays,
//     queue levels and learned policies (see examples/quickstart).
//
//   - Learner-level: the cooperative multi-agent Q-learning core (Learner)
//     with the paper's Eq. 5 update rule, policy table and exploration
//     strategies, for embedding into other systems (see examples/learner).
//
// All randomness derives from explicit seeds; every run is bit-for-bit
// reproducible.
package qma

import (
	"errors"
	"fmt"

	"qma/internal/aloha"
	"qma/internal/bandit"
	"qma/internal/barring"
	"qma/internal/core"
	"qma/internal/csma"
	"qma/internal/faults"
	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/noma"
	"qma/internal/qlearn"
	"qma/internal/radio"
	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/stats"
	"qma/internal/topo"
	"qma/internal/traffic"
)

// MAC selects a channel access scheme by its protocol registry key. The
// zero value selects QMA. Use the exported constants, or ParseMAC to resolve
// CLI-style names and aliases; Scenario.Validate rejects unregistered keys
// with ErrUnknownMAC.
type MAC string

const (
	// QMA is the paper's Q-learning MAC.
	QMA MAC = core.ProtocolName
	// CSMAUnslotted is unslotted IEEE 802.15.4 CSMA/CA.
	CSMAUnslotted MAC = csma.ProtoUnslotted
	// CSMASlotted is slotted IEEE 802.15.4 CSMA/CA (CW=2).
	CSMASlotted MAC = csma.ProtoSlotted
	// Aloha is pure ALOHA: transmit immediately, no carrier sensing.
	Aloha MAC = aloha.ProtoPure
	// SlottedAloha is ALOHA aligned to the CAP subslot grid.
	SlottedAloha MAC = aloha.ProtoSlotted
	// Bandit is the per-subslot multi-armed-bandit learning baseline.
	Bandit MAC = bandit.Proto
	// NOMA is the power-level Q-learning MAC: QMA's action space crossed
	// with K transmit power levels, designed for capture-enabled runs
	// (Scenario.CaptureThresholdDB > 0) where two deliberate power levels
	// can share a subslot.
	NOMA MAC = noma.Proto
)

// ErrUnknownMAC reports a MAC value naming no registered protocol.
var ErrUnknownMAC = errors.New("qma: unknown MAC protocol")

// String implements fmt.Stringer with the protocol's display name.
func (m MAC) String() string { return m.kind().String() }

func (m MAC) kind() scenario.MACKind {
	if m == "" {
		return scenario.QMA
	}
	return scenario.MACKind(m)
}

// canonical resolves aliases to the canonical registry key ("" stays the
// QMA default), so comparisons against the exported constants hold for
// aliases like "mab" too. Unregistered values pass through unchanged —
// Validate rejects them separately.
func (m MAC) canonical() MAC {
	if m == "" {
		return QMA
	}
	if p, ok := mac.Lookup(string(m)); ok {
		return MAC(p.Name)
	}
	return m
}

// validate resolves m against the protocol registry ("" selects QMA).
func (m MAC) validate() error {
	if m == "" {
		return nil
	}
	if _, ok := mac.Lookup(string(m)); !ok {
		return fmt.Errorf("%w %q (registered: %s)", ErrUnknownMAC, string(m), mac.RegisteredList())
	}
	return nil
}

// MACs lists the registered channel access protocols by canonical key.
func MACs() []MAC {
	names := mac.Names()
	out := make([]MAC, len(names))
	for i, n := range names {
		out[i] = MAC(n)
	}
	return out
}

// ParseMAC resolves a canonical protocol key or a registered alias
// ("unslotted", "slotted", ...) to its canonical MAC value. The empty
// string resolves to QMA, mirroring the zero value of the MAC type.
func ParseMAC(s string) (MAC, error) {
	if s == "" {
		return QMA, nil
	}
	p, ok := mac.Lookup(s)
	if !ok {
		m := MAC(s)
		return "", m.validate() // composes the ErrUnknownMAC message
	}
	return MAC(p.Name), nil
}

// TableKind selects the Q-value representation for QMA nodes.
type TableKind int

const (
	// TableFloat is the float64 reference table.
	TableFloat TableKind = iota
	// TableFixed is the Q8.8 integer table for devices without an FPU
	// (paper §3.2).
	TableFixed
	// TableQuant is the saturating 8-bit table (paper §7 future work).
	TableQuant
)

// LearnParams are the Q-learning hyperparameters (paper Eq. 5). The zero
// value selects the paper's α=0.5, γ=0.9, ξ=2, Q₀=−10.
type LearnParams struct {
	// Alpha is the learning rate α.
	Alpha float64
	// Gamma is the discount factor γ.
	Gamma float64
	// Xi is the stochastic-environment penalty ξ.
	Xi float64
	// InitQ is the initial Q-value (must undercut the largest punishment).
	InitQ float64
}

func (p LearnParams) internal() qlearn.Params {
	if p == (LearnParams{}) {
		return qlearn.DefaultParams()
	}
	return qlearn.Params{Alpha: p.Alpha, Gamma: p.Gamma, Xi: p.Xi, InitQ: p.InitQ, Rule: qlearn.RuleQMA}
}

// Explorer selects an exploration strategy (paper §4.2).
type Explorer struct {
	// Kind is "parameter" (default, the paper's queue-difference table),
	// "epsilon" (decaying ε-greedy) or "constant".
	Kind string
	// Eps0 is the initial ε for "epsilon" or the fixed rate for "constant".
	Eps0 float64
	// HalfLifeSeconds is ε's half-life for "epsilon" (0 = no decay).
	HalfLifeSeconds float64
	// Min is the ε floor for "epsilon".
	Min float64
}

func (e *Explorer) internal() (qlearn.Explorer, error) {
	if e == nil {
		return nil, nil // engine default: parameter-based
	}
	switch e.Kind {
	case "", "parameter":
		return qlearn.NewParameterBased(), nil
	case "epsilon":
		return &qlearn.EpsilonGreedy{Eps0: e.Eps0, HalfLife: sim.FromSeconds(e.HalfLifeSeconds), Min: e.Min}, nil
	case "constant":
		return qlearn.Constant{Eps: e.Eps0}, nil
	default:
		return nil, fmt.Errorf("qma: unknown explorer kind %q", e.Kind)
	}
}

// Phase is one segment of a cyclic traffic-rate schedule.
type Phase struct {
	// Rate is the Poisson packet generation rate in packets/second.
	Rate float64
	// Seconds is the phase duration (0 = forever).
	Seconds float64
}

// Traffic attaches a Poisson data source to a node; packets travel to the
// topology's sink along its routing tree.
type Traffic struct {
	// Origin is the generating node id.
	Origin int
	// Phases is the cyclic rate schedule.
	Phases []Phase
	// StartSeconds delays generation.
	StartSeconds float64
	// MaxPackets bounds generation (0 = unbounded).
	MaxPackets int
	// Management marks the source as background traffic excluded from PDR
	// and delay statistics.
	Management bool
	// FrameBytes overrides the default 80-byte MPDU.
	FrameBytes int
}

// Broadcast attaches a periodic one-hop broadcast source (e.g. route
// discovery hellos).
type Broadcast struct {
	// Origin is the broadcasting node id.
	Origin int
	// PeriodSeconds is the mean interval.
	PeriodSeconds float64
	// StartSeconds delays the first broadcast.
	StartSeconds float64
}

// Scenario describes one contention-MAC simulation (the paper's §6.1/§6.2
// setups). The zero value is not runnable: Topology, DurationSeconds and at
// least one Traffic entry are required.
type Scenario struct {
	// Topology is the network under test.
	Topology *Topology
	// MAC selects the channel access scheme.
	MAC MAC
	// Learn tunes QMA's Q-learning (zero value = paper defaults).
	Learn LearnParams
	// Table selects QMA's Q-value representation.
	Table TableKind
	// Explorer overrides the exploration strategy (nil = parameter-based).
	// Protocols that reuse the shared exploration plumbing (QMA, Bandit,
	// NOMA) adopt it through the registry; everyone else ignores it.
	Explorer *Explorer
	// StartupSubslots is the cautious-startup window Δ (0 = default,
	// negative = disabled).
	StartupSubslots int
	// MACOptions carries protocol-specific options as key=value pairs
	// (the qma-sim -mac-opt surface), resolved and validated through the
	// protocol registry — e.g. {"minbe": "2"} for CSMA/CA or
	// {"levels": "3", "step": "6"} for NOMA. When set for a QMA run it
	// replaces the Learn/Table/StartupSubslots convenience fields.
	MACOptions map[string]string
	// CaptureThresholdDB enables receiver-side SINR capture: the strongest
	// of several overlapping frames still decodes when its received power
	// exceeds the sum of the interferers by this many dB. 0 (the default)
	// disables capture; overlaps then collide exactly as before.
	CaptureThresholdDB float64
	// Seed selects the random streams; vary it across replications.
	Seed uint64
	// DurationSeconds is the simulated time.
	DurationSeconds float64
	// Traffic and Broadcasts define the offered load.
	Traffic    []Traffic
	Broadcasts []Broadcast
	// SampleSeries enables per-superframe sampling of cumulative Q-values,
	// exploration rates and queue levels.
	SampleSeries bool
	// SummaryOnly skips the per-node NodeResult slice: the run accumulates
	// network-wide totals only, so result memory is O(1) in the node count.
	// Result.Nodes stays nil; the network-level metrics (NetworkPDR,
	// MeanDelaySeconds, Events) are unaffected. Incompatible with
	// SampleSeries.
	SummaryOnly bool
	// MeasureFromSeconds restarts queue averaging at this instant.
	MeasureFromSeconds float64
	// Dynamics enables time-varying channels and node churn (nil = static).
	Dynamics *Dynamics
	// Faults enables deterministic infrastructure faults — sink outages,
	// node reboots, ACK corruption, beacon loss (nil = fault-free).
	Faults *Faults
	// Barring enables sink-side load-adaptive access-class barring: the sink
	// observes congestion once per beacon interval and broadcasts a barring
	// factor p; nodes gate fresh channel-access attempts on a Bernoulli(p)
	// draw (nil = no barring, byte-identical to earlier builds).
	Barring *Barring
	// DropPolicy selects the full-queue backpressure policy: "" or "tail"
	// (reject arrivals — the default), "oldest" (evict the oldest queued
	// frame) or "deadline" (evict frames older than DropDeadlineSeconds).
	DropPolicy string
	// DropDeadlineSeconds is the queue-residence deadline for the "deadline"
	// drop policy (0 selects 16 superframes ≈ 2 s).
	DropDeadlineSeconds float64
}

// Barring configures sink-side load-adaptive access-class barring (LTE
// access-class-barring style, driven by the congestion the sink observes on
// the medium). A nil (or zero-valued) Barring leaves the simulator on its
// barring-free code paths, byte-identical to earlier builds.
type Barring struct {
	// Policy selects the controller: "fixed" (constant factor P), "aimd"
	// (halve on congestion, open additively when healthy) or "pid"
	// (velocity-form PI on the collision ratio).
	Policy string
	// P is the fixed policy's barring factor and every policy's initial
	// factor (0 selects fully open, 1).
	P float64
	// Target is the collision-ratio setpoint for aimd/pid (0 selects 0.1).
	Target float64
	// MinP floors the adaptive policies' barring factor (0 selects 0.05).
	MinP float64
	// IntervalSeconds is the beacon/observation interval (0 selects one
	// superframe, 122.88 ms).
	IntervalSeconds float64
	// BackoffSeconds is the base wait of a barred node before redrawing
	// (0 selects one superframe); repeated barring escalates it
	// exponentially.
	BackoffSeconds float64
}

// internal converts the public barring block to the internal config.
func (b *Barring) internal() barring.Config {
	if b == nil {
		return barring.Config{}
	}
	return barring.Config{
		Policy:   barring.Policy(b.Policy),
		P:        b.P,
		Target:   b.Target,
		MinP:     b.MinP,
		Interval: sim.FromSeconds(b.IntervalSeconds),
		Backoff:  sim.FromSeconds(b.BackoffSeconds),
	}
}

// GilbertElliott parameterizes the per-link two-state burst-error channel
// (good/bad states with exponential sojourn times and per-state frame loss
// probabilities). Both mean sojourn times must be positive to enable the
// process; the per-link state is sampled lazily at frame crossings, so the
// cost is O(active links).
type GilbertElliott struct {
	// MeanGoodSeconds and MeanBadSeconds are the mean sojourn times.
	MeanGoodSeconds, MeanBadSeconds float64
	// LossGood and LossBad are the per-frame loss probabilities in each
	// state (typically LossGood ≈ 0 and LossBad near 1).
	LossGood, LossBad float64
}

// Fade schedules a deterministic deep fade at a node: during the window
// every frame to or from the node is lost while the air stays occupied —
// the standard controlled disturbance for recovery-time measurements.
type Fade struct {
	Node                  int
	AtSeconds, ForSeconds float64
}

// Churn schedules a node leaving or rejoining the network.
type Churn struct {
	Node      int
	AtSeconds float64
	Leave     bool
}

// Move schedules a waypoint position update. Moves require a position-based
// topology (Star17, FactoryHall); the run operates on a private copy of the
// positions.
type Move struct {
	Node      int
	AtSeconds float64
	X, Y      float64
}

// Dynamics configures time-varying link dynamics and node churn. A nil (or
// zero-valued) Dynamics leaves the simulator on its static code paths, with
// results byte-identical to runs predating the dynamics subsystem.
type Dynamics struct {
	// Channel is the Gilbert–Elliott burst-error process (zero = off).
	Channel GilbertElliott
	// Fades, Churn and Moves are scheduled disturbances.
	Fades []Fade
	Churn []Churn
	Moves []Move
}

// Outage takes one node completely off the network for the window: it
// neither receives nor acknowledges and its transmissions never reach the
// air. With StopBeacons the node is treated as the beacon source, so every
// other node additionally loses superframe synchronization for the
// beacon-aligned part of the window and suspends channel access.
type Outage struct {
	Node                  int
	AtSeconds, ForSeconds float64
	StopBeacons           bool
}

// RebootEvent power-cycles one node: volatile MAC and learning state
// (Q-tables, backoff, bandit estimates, queue, neighbour table) is wiped and
// the node re-enters its cautious startup phase.
type RebootEvent struct {
	Node      int
	AtSeconds float64
}

// AckCorruption corrupts every acknowledgement frame on the air during the
// window: data still gets through but transmitters see timeouts and retry —
// the classic asymmetric-failure mode.
type AckCorruption struct {
	AtSeconds, ForSeconds float64
}

// BeaconLoss makes one node miss every beacon inside the window while the
// rest of the network stays synchronized; the node suspends channel access
// until it hears a beacon again.
type BeaconLoss struct {
	Node                  int
	AtSeconds, ForSeconds float64
}

// Faults is a deterministic fault script (paper's robustness regime: what
// does a learned schedule cost when infrastructure fails?). A nil (or
// zero-valued) Faults leaves the simulator on its fault-free code paths,
// with results byte-identical to runs predating the fault subsystem.
type Faults struct {
	Outages       []Outage
	Reboots       []RebootEvent
	AckCorruption []AckCorruption
	BeaconLoss    []BeaconLoss
}

// Point is one time series sample (seconds, value).
type Point struct{ T, V float64 }

// NodeResult reports one node's metrics after a run.
type NodeResult struct {
	// ID is the node id, Label the topology's display name for it.
	ID    int
	Label string
	// Generated and Delivered count this origin's evaluation packets;
	// PDR is their ratio and MeanDelaySeconds the mean end-to-end delay.
	Generated, Delivered uint64
	PDR                  float64
	MeanDelaySeconds     float64
	// AvgQueueLevel is the time-averaged transmit queue occupancy.
	AvgQueueLevel float64
	// TxAttempts, TxSuccess, TxFail, RetryDrops and QueueDrops are MAC
	// counters.
	TxAttempts, TxSuccess, TxFail, RetryDrops, QueueDrops uint64
	// Barred counts channel-access attempts deferred by access-class
	// barring; DeadlineDrops counts frames evicted by the "deadline" drop
	// policy. Both stay 0 unless the corresponding feature is enabled.
	Barred, DeadlineDrops uint64
	// Captured counts receptions at this node that were delivered although
	// another transmission overlapped them — SINR capture resolved the
	// collision in their favour. Always 0 unless CaptureThresholdDB is set.
	Captured uint64
	// Policy is the final per-subslot policy for QMA nodes ("." = QBackoff,
	// "C" = QCCA, "S" = QSend); empty for CSMA nodes.
	Policy string
	// TableBytes is the Q-table's value-storage footprint in bytes for QMA
	// nodes — the paper's §3.2 resource figure for the selected Table kind
	// (648 float64, 324 fixed Q8.8, 162 quant 8-bit at 54×3). 0 for CSMA
	// nodes.
	TableBytes int
	// CumulativeQ, ExplorationRate and QueueLevel are sampled series when
	// SampleSeries was set (QMA nodes only for the first two).
	CumulativeQ, ExplorationRate, QueueLevel []Point
}

// Result reports a completed run.
type Result struct {
	// Nodes holds one entry per node id.
	Nodes []NodeResult
	// NetworkPDR is total delivered / total generated evaluation packets.
	NetworkPDR float64
	// MeanDelaySeconds is the mean end-to-end delay across all deliveries.
	MeanDelaySeconds float64
	// Events is the number of simulator events the run processed; divided by
	// wall time it yields the events/second throughput of the simulation.
	Events uint64
}

// Validate reports the first configuration problem, or nil.
func (s *Scenario) Validate() error {
	switch {
	case s.Topology == nil:
		return errors.New("qma: Scenario.Topology is required")
	case s.DurationSeconds <= 0:
		return errors.New("qma: Scenario.DurationSeconds must be positive")
	}
	if err := s.MAC.validate(); err != nil {
		return err
	}
	if s.Table < TableFloat || s.Table > TableQuant {
		return fmt.Errorf("qma: unknown table kind %d", s.Table)
	}
	if s.CaptureThresholdDB < 0 {
		return fmt.Errorf("qma: CaptureThresholdDB=%g must not be negative (0 disables capture)", s.CaptureThresholdDB)
	}
	if s.SummaryOnly && s.SampleSeries {
		return errors.New("qma: SummaryOnly is incompatible with SampleSeries (series are per-node results)")
	}
	if len(s.MACOptions) > 0 {
		if _, err := s.resolveMACOptions(nil); err != nil {
			return err
		}
	}
	n := s.Topology.net.NumNodes()
	for _, tr := range s.Traffic {
		if tr.Origin < 0 || tr.Origin >= n {
			return fmt.Errorf("qma: traffic origin %d out of range [0,%d)", tr.Origin, n)
		}
		if len(tr.Phases) == 0 {
			return fmt.Errorf("qma: traffic at node %d has no phases", tr.Origin)
		}
		if tr.Origin == int(s.Topology.net.Sink) {
			return fmt.Errorf("qma: traffic origin %d is the sink", tr.Origin)
		}
	}
	for _, b := range s.Broadcasts {
		if b.Origin < 0 || b.Origin >= n {
			return fmt.Errorf("qma: broadcast origin %d out of range [0,%d)", b.Origin, n)
		}
		if b.PeriodSeconds <= 0 {
			return fmt.Errorf("qma: broadcast at node %d needs a positive period", b.Origin)
		}
	}
	if _, err := s.Explorer.internal(); err != nil {
		return err
	}
	if err := s.validateDynamics(); err != nil {
		return err
	}
	if err := s.validateFaults(); err != nil {
		return err
	}
	return s.validateBarring()
}

// validateBarring checks the Barring block and the drop-policy knobs by
// converting to the internal forms and running their own validators, so the
// public and internal layers can never drift apart.
func (s *Scenario) validateBarring() error {
	if s.Barring != nil {
		cfg := s.Barring.internal()
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("qma: %w", err)
		}
	}
	if _, err := mac.ParseDropPolicy(s.DropPolicy); err != nil {
		return fmt.Errorf("qma: %w", err)
	}
	if s.DropDeadlineSeconds < 0 {
		return fmt.Errorf("qma: DropDeadlineSeconds=%g must not be negative", s.DropDeadlineSeconds)
	}
	return nil
}

// validateDynamics checks the Dynamics block against the topology.
func (s *Scenario) validateDynamics() error {
	d := s.Dynamics
	if d == nil {
		return nil
	}
	n := s.Topology.net.NumNodes()
	g := d.Channel
	if g.MeanGoodSeconds < 0 || g.MeanBadSeconds < 0 {
		return errors.New("qma: Gilbert–Elliott sojourn times must not be negative")
	}
	if (g.MeanGoodSeconds > 0) != (g.MeanBadSeconds > 0) {
		return errors.New("qma: Gilbert–Elliott needs both MeanGoodSeconds and MeanBadSeconds (or neither)")
	}
	if g.LossGood < 0 || g.LossGood > 1 || g.LossBad < 0 || g.LossBad > 1 {
		return errors.New("qma: Gilbert–Elliott loss probabilities must lie in [0,1]")
	}
	for _, f := range d.Fades {
		if f.Node < 0 || f.Node >= n {
			return fmt.Errorf("qma: fade node %d out of range [0,%d)", f.Node, n)
		}
		if f.AtSeconds < 0 {
			return fmt.Errorf("qma: fade at node %d scheduled in the past", f.Node)
		}
		if f.ForSeconds <= 0 {
			return fmt.Errorf("qma: fade at node %d needs a positive duration", f.Node)
		}
	}
	for _, c := range d.Churn {
		if c.Node < 0 || c.Node >= n {
			return fmt.Errorf("qma: churn node %d out of range [0,%d)", c.Node, n)
		}
		if c.AtSeconds < 0 {
			return fmt.Errorf("qma: churn at node %d scheduled in the past", c.Node)
		}
	}
	if len(d.Moves) > 0 {
		if _, ok := s.Topology.net.Topology.(radio.MobileTopology); !ok {
			return errors.New("qma: Dynamics.Moves require a position-based topology (Star17, FactoryHall)")
		}
	}
	for _, m := range d.Moves {
		if m.Node < 0 || m.Node >= n {
			return fmt.Errorf("qma: move node %d out of range [0,%d)", m.Node, n)
		}
		if m.AtSeconds < 0 {
			return fmt.Errorf("qma: move at node %d scheduled in the past", m.Node)
		}
	}
	return nil
}

// validateFaults checks the Faults block against the topology by converting
// to the internal schedule and running its own validator, so the public and
// scenario layers can never drift apart on what counts as a legal script.
func (s *Scenario) validateFaults() error {
	f := s.Faults
	if f == nil {
		return nil
	}
	sched := f.internal()
	if err := sched.Validate(s.Topology.net.NumNodes()); err != nil {
		return fmt.Errorf("qma: %w", err)
	}
	return nil
}

// internal converts the public faults block to the internal schedule.
func (f *Faults) internal() faults.Schedule {
	if f == nil {
		return faults.Schedule{}
	}
	var out faults.Schedule
	for _, o := range f.Outages {
		out.Outages = append(out.Outages, faults.Outage{
			Node: o.Node, At: sim.FromSeconds(o.AtSeconds),
			Duration: sim.FromSeconds(o.ForSeconds), StopBeacons: o.StopBeacons,
		})
	}
	for _, r := range f.Reboots {
		out.Reboots = append(out.Reboots, faults.Reboot{Node: r.Node, At: sim.FromSeconds(r.AtSeconds)})
	}
	for _, w := range f.AckCorruption {
		out.AckCorruption = append(out.AckCorruption, faults.Window{
			At: sim.FromSeconds(w.AtSeconds), Duration: sim.FromSeconds(w.ForSeconds),
		})
	}
	for _, b := range f.BeaconLoss {
		out.BeaconLoss = append(out.BeaconLoss, faults.BeaconLoss{
			Node: b.Node, At: sim.FromSeconds(b.AtSeconds), Duration: sim.FromSeconds(b.ForSeconds),
		})
	}
	return out
}

// internal converts the public dynamics block to the scenario layer's form.
func (d *Dynamics) internal() scenario.DynamicsConfig {
	if d == nil {
		return scenario.DynamicsConfig{}
	}
	out := scenario.DynamicsConfig{
		Gilbert: radio.GilbertElliott{
			MeanGood: sim.FromSeconds(d.Channel.MeanGoodSeconds),
			MeanBad:  sim.FromSeconds(d.Channel.MeanBadSeconds),
			LossGood: d.Channel.LossGood,
			LossBad:  d.Channel.LossBad,
		},
	}
	for _, f := range d.Fades {
		out.Fades = append(out.Fades, scenario.FadeSpec{
			Node: frame.NodeID(f.Node), At: sim.FromSeconds(f.AtSeconds), Duration: sim.FromSeconds(f.ForSeconds),
		})
	}
	for _, c := range d.Churn {
		out.Churn = append(out.Churn, scenario.ChurnSpec{
			Node: frame.NodeID(c.Node), At: sim.FromSeconds(c.AtSeconds), Leave: c.Leave,
		})
	}
	for _, m := range d.Moves {
		out.Moves = append(out.Moves, scenario.MoveSpec{
			Node: frame.NodeID(m.Node), At: sim.FromSeconds(m.AtSeconds), To: radio.Position{X: m.X, Y: m.Y},
		})
	}
	return out
}

// resolveMACOptions resolves the run's protocol options through the
// registry: key=value MACOptions are parsed by the protocol's ParseOptions
// hook when present, otherwise the QMA convenience fields apply (for QMA
// runs; other protocols default). A scenario-level Explorer flows into any
// protocol registering an AdoptExplorer hook — the registry capability that
// replaced the former bandit special case here. The result passes through
// the protocol's own Validate.
func (s *Scenario) resolveMACOptions(explorer qlearn.Explorer) (any, error) {
	kind := s.MAC.kind()
	p, ok := mac.Lookup(string(kind))
	if !ok {
		return nil, s.MAC.validate()
	}
	var opts any
	if len(s.MACOptions) > 0 {
		if p.ParseOptions == nil {
			return nil, fmt.Errorf("qma: protocol %q takes no key=value options", p.Name)
		}
		parsed, err := p.ParseOptions(s.MACOptions)
		if err != nil {
			return nil, fmt.Errorf("qma: %w", err)
		}
		opts = parsed
	} else {
		opts = scenario.DefaultQMAOptions(kind, scenario.QMAOptions{
			Learn:           s.Learn.internal(),
			Table:           scenario.TableKind(s.Table),
			Explorer:        explorer,
			StartupSubslots: s.StartupSubslots,
		})
	}
	if explorer != nil && p.AdoptExplorer != nil {
		opts = p.AdoptExplorer(opts, explorer)
	}
	if opts != nil && p.Validate != nil {
		if err := p.Validate(opts); err != nil {
			return nil, fmt.Errorf("qma: %w", err)
		}
	}
	return opts, nil
}

// Run executes the scenario and returns its metrics.
func (s *Scenario) Run() (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	explorer, _ := s.Explorer.internal()
	macOpts, err := s.resolveMACOptions(explorer)
	if err != nil {
		return nil, err
	}
	cfg := scenario.Config{
		Network: s.Topology.net,
		MAC:     s.MAC.kind(),
		// MACOptions carries the fully resolved protocol options for every
		// protocol — for QMA runs resolveMACOptions already folded the
		// Learn/Table/Explorer/StartupSubslots convenience fields in, so
		// Config.QMA (the scenario layer's nil-MACOptions fallback) stays
		// unset here.
		MACOptions:         macOpts,
		CaptureThresholdDB: s.CaptureThresholdDB,
		Seed:               s.Seed,
		Duration:           sim.FromSeconds(s.DurationSeconds),
		MeasureFrom:        sim.FromSeconds(s.MeasureFromSeconds),
		Dynamics:           s.Dynamics.internal(),
		Faults:             s.Faults.internal(),
		Barring:            s.Barring.internal(),
		DropDeadline:       sim.FromSeconds(s.DropDeadlineSeconds),
		SummaryOnly:        s.SummaryOnly,
	}
	cfg.DropPolicy, _ = mac.ParseDropPolicy(s.DropPolicy) // validated above
	if s.SampleSeries {
		cfg.SamplePeriod = 122880 * sim.Microsecond // one superframe
	}
	for _, tr := range s.Traffic {
		spec := scenario.TrafficSpec{
			Origin:     frame.NodeID(tr.Origin),
			StartAt:    sim.FromSeconds(tr.StartSeconds),
			MaxPackets: tr.MaxPackets,
			MPDUBytes:  tr.FrameBytes,
		}
		if tr.Management {
			spec.Tag = frame.TagManagement
		}
		for _, p := range tr.Phases {
			spec.Phases = append(spec.Phases, traffic.Phase{Rate: p.Rate, Duration: sim.FromSeconds(p.Seconds)})
		}
		cfg.Traffic = append(cfg.Traffic, spec)
	}
	for _, b := range s.Broadcasts {
		cfg.Broadcasts = append(cfg.Broadcasts, scenario.BroadcastSpec{
			Origin:  frame.NodeID(b.Origin),
			Period:  sim.FromSeconds(b.PeriodSeconds),
			StartAt: sim.FromSeconds(b.StartSeconds),
		})
	}
	res := scenario.Run(cfg)

	out := &Result{
		NetworkPDR:       res.NetworkPDR(),
		MeanDelaySeconds: res.MeanDelay(),
		Events:           res.Events,
	}
	for i := range res.Nodes {
		n := &res.Nodes[i]
		nr := NodeResult{
			ID:               int(n.ID),
			Label:            n.Label,
			Generated:        n.Generated,
			Delivered:        n.Delivered,
			PDR:              n.PDR(),
			MeanDelaySeconds: n.MeanDelay(),
			AvgQueueLevel:    n.AvgQueueLevel,
			TxAttempts:       n.MAC.TxAttempts,
			TxSuccess:        n.MAC.TxSuccess,
			TxFail:           n.MAC.TxFail,
			RetryDrops:       n.MAC.RetryDrops,
			QueueDrops:       n.MAC.QueueDrops,
			Barred:           n.MAC.Barred,
			DeadlineDrops:    n.MAC.DeadlineDrops,
			Captured:         n.Radio.RxCaptured,
			Policy:           policyString(n.Policy),
			TableBytes:       n.TableBytes,
			CumulativeQ:      points(n.CumQ),
			ExplorationRate:  points(n.Rho),
			QueueLevel:       points(n.QueueSeries),
		}
		out.Nodes = append(out.Nodes, nr)
	}
	return out, nil
}

func policyString(policy []int) string {
	if policy == nil {
		return ""
	}
	b := make([]byte, len(policy))
	for i, a := range policy {
		switch a {
		case 1:
			b[i] = 'C'
		case 2:
			b[i] = 'S'
		default:
			b[i] = '.'
		}
	}
	return string(b)
}

func points(s *stats.Series) []Point {
	if s == nil {
		return nil
	}
	out := make([]Point, s.Len())
	for i := range out {
		p := s.At(i)
		out[i] = Point{T: p.T, V: p.V}
	}
	return out
}

// Topology is a network with routing towards a sink.
type Topology struct {
	net *topo.Network
}

// NumNodes reports the node count.
func (t *Topology) NumNodes() int { return t.net.NumNodes() }

// Sink reports the data-collection root.
func (t *Topology) Sink() int { return int(t.net.Sink) }

// Label reports the display name of a node.
func (t *Topology) Label(id int) string { return t.net.Label(frame.NodeID(id)) }

// HiddenNode returns the paper's Fig. 6 scenario: A(0) and C(2) both reach
// the sink B(1) but not each other.
func HiddenNode() *Topology { return &Topology{net: topo.HiddenNode()} }

// Tree10 returns the 10-node testbed tree of Fig. 16.
func Tree10() *Topology { return &Topology{net: topo.Tree10()} }

// Star17 returns the 17-node testbed star of Fig. 17, built on a
// log-distance path-loss channel.
func Star17() *Topology { return &Topology{net: topo.Star17(topo.StarConfig{})} }

// Rings returns the concentric data-collection topology of Fig. 20 with the
// given number of hexagonal rings (1→7, 2→19, 3→43, 4→91 nodes).
func Rings(rings int) (*Topology, error) {
	if rings < 1 || rings > 8 {
		return nil, fmt.Errorf("qma: rings=%d out of range [1,8]", rings)
	}
	return &Topology{net: topo.Rings(rings)}, nil
}

// FactoryHall returns a random-uniform industrial-hall deployment: nodes
// devices over a square hall sized so the mean decode degree is ~degree
// (0 selects the default of 10), the sink in the center and min-hop routing
// towards it. Construction is O(N + E), so halls with tens of thousands of
// nodes build in well under a second. Nodes outside the sink's radio
// component stay unrouted — check HasRoute before attaching traffic.
func FactoryHall(nodes int, degree float64, seed uint64) (*Topology, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("qma: factory hall needs at least 2 nodes, got %d", nodes)
	}
	return &Topology{net: topo.FactoryHall(topo.FactoryConfig{Nodes: nodes, Degree: degree, Seed: seed})}, nil
}

// HasRoute reports whether node id has a forwarding path to the sink.
func (t *Topology) HasRoute(id int) bool {
	return id >= 0 && id < t.net.NumNodes() && t.net.Depth(frame.NodeID(id)) >= 0
}

// NewTopology builds a custom topology: n nodes, bidirectional links, a sink
// and a routing parent per node (-1 for the sink and detached nodes).
func NewTopology(n int, links [][2]int, sink int, parents []int) (*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("qma: n=%d must be positive", n)
	}
	if sink < 0 || sink >= n {
		return nil, fmt.Errorf("qma: sink %d out of range [0,%d)", sink, n)
	}
	if len(parents) != n {
		return nil, fmt.Errorf("qma: got %d parents, want %d", len(parents), n)
	}
	g := topoGraph(n, links)
	if g == nil {
		return nil, errors.New("qma: link endpoint out of range")
	}
	ps := make([]frame.NodeID, n)
	for i, p := range parents {
		if p >= n {
			return nil, fmt.Errorf("qma: parent %d out of range", p)
		}
		ps[i] = frame.NodeID(p)
	}
	return &Topology{net: &topo.Network{
		Name:     "custom",
		Topology: g,
		Sink:     frame.NodeID(sink),
		Parent:   ps,
	}}, nil
}

func topoGraph(n int, links [][2]int) *radio.GraphTopology {
	g := radio.NewGraphTopology(n)
	for _, l := range links {
		if l[0] < 0 || l[0] >= n || l[1] < 0 || l[1] >= n {
			return nil
		}
		g.AddLink(frame.NodeID(l[0]), frame.NodeID(l[1]))
	}
	return g
}
