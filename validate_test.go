package qma_test

import (
	"reflect"
	"strings"
	"testing"

	"qma"
)

// TestScenarioValidateErrorPaths covers every Validate error branch,
// including the dynamics block, and pins a fragment of each message so the
// errors stay actionable.
func TestScenarioValidateErrorPaths(t *testing.T) {
	base := func() *qma.Scenario {
		return &qma.Scenario{
			Topology:        qma.HiddenNode(),
			DurationSeconds: 10,
			Traffic:         []qma.Traffic{{Origin: 0, Phases: []qma.Phase{{Rate: 1}}}},
		}
	}
	cases := []struct {
		name    string
		mutate  func(*qma.Scenario)
		wantErr string
	}{
		{"negative traffic origin", func(s *qma.Scenario) {
			s.Traffic[0].Origin = -1
		}, "out of range"},
		{"broadcast origin range", func(s *qma.Scenario) {
			s.Broadcasts = []qma.Broadcast{{Origin: 9, PeriodSeconds: 1}}
		}, "out of range"},
		{"negative broadcast period", func(s *qma.Scenario) {
			s.Broadcasts = []qma.Broadcast{{Origin: 0, PeriodSeconds: -2}}
		}, "positive period"},
		{"unregistered MAC", func(s *qma.Scenario) {
			s.MAC = "token-ring"
		}, "unknown MAC"},
		{"unknown table kind", func(s *qma.Scenario) {
			s.Table = qma.TableKind(9)
		}, "unknown table kind"},
		{"negative table kind", func(s *qma.Scenario) {
			s.Table = qma.TableKind(-1)
		}, "unknown table kind"},
		{"GE negative sojourn", func(s *qma.Scenario) {
			s.Dynamics = &qma.Dynamics{Channel: qma.GilbertElliott{MeanGoodSeconds: -1, MeanBadSeconds: 1}}
		}, "must not be negative"},
		{"GE one-sided sojourn", func(s *qma.Scenario) {
			s.Dynamics = &qma.Dynamics{Channel: qma.GilbertElliott{MeanGoodSeconds: 5}}
		}, "both MeanGoodSeconds and MeanBadSeconds"},
		{"GE loss out of range", func(s *qma.Scenario) {
			s.Dynamics = &qma.Dynamics{Channel: qma.GilbertElliott{
				MeanGoodSeconds: 5, MeanBadSeconds: 1, LossBad: 1.5}}
		}, "[0,1]"},
		{"fade node range", func(s *qma.Scenario) {
			s.Dynamics = &qma.Dynamics{Fades: []qma.Fade{{Node: 3, AtSeconds: 1, ForSeconds: 1}}}
		}, "fade node"},
		{"fade in the past", func(s *qma.Scenario) {
			s.Dynamics = &qma.Dynamics{Fades: []qma.Fade{{Node: 0, AtSeconds: -1, ForSeconds: 1}}}
		}, "past"},
		{"fade without duration", func(s *qma.Scenario) {
			s.Dynamics = &qma.Dynamics{Fades: []qma.Fade{{Node: 0, AtSeconds: 1}}}
		}, "positive duration"},
		{"churn node range", func(s *qma.Scenario) {
			s.Dynamics = &qma.Dynamics{Churn: []qma.Churn{{Node: -2, AtSeconds: 1}}}
		}, "churn node"},
		{"churn in the past", func(s *qma.Scenario) {
			s.Dynamics = &qma.Dynamics{Churn: []qma.Churn{{Node: 0, AtSeconds: -1}}}
		}, "past"},
		{"moves on a graph topology", func(s *qma.Scenario) {
			s.Dynamics = &qma.Dynamics{Moves: []qma.Move{{Node: 0, AtSeconds: 1, X: 5, Y: 5}}}
		}, "position-based topology"},
		{"outage node range", func(s *qma.Scenario) {
			s.Faults = &qma.Faults{Outages: []qma.Outage{{Node: 7, AtSeconds: 1, ForSeconds: 1}}}
		}, "out of range"},
		{"outage negative start", func(s *qma.Scenario) {
			s.Faults = &qma.Faults{Outages: []qma.Outage{{Node: 1, AtSeconds: -1, ForSeconds: 1}}}
		}, "negative start"},
		{"outage without duration", func(s *qma.Scenario) {
			s.Faults = &qma.Faults{Outages: []qma.Outage{{Node: 1, AtSeconds: 1}}}
		}, "must be positive"},
		{"reboot node range", func(s *qma.Scenario) {
			s.Faults = &qma.Faults{Reboots: []qma.RebootEvent{{Node: -1, AtSeconds: 1}}}
		}, "out of range"},
		{"reboot negative instant", func(s *qma.Scenario) {
			s.Faults = &qma.Faults{Reboots: []qma.RebootEvent{{Node: 0, AtSeconds: -2}}}
		}, "negative instant"},
		{"ack corruption negative start", func(s *qma.Scenario) {
			s.Faults = &qma.Faults{AckCorruption: []qma.AckCorruption{{AtSeconds: -1, ForSeconds: 1}}}
		}, "negative start"},
		{"ack corruption without duration", func(s *qma.Scenario) {
			s.Faults = &qma.Faults{AckCorruption: []qma.AckCorruption{{AtSeconds: 1}}}
		}, "must be positive"},
		{"beacon loss node range", func(s *qma.Scenario) {
			s.Faults = &qma.Faults{BeaconLoss: []qma.BeaconLoss{{Node: 3, AtSeconds: 1, ForSeconds: 1}}}
		}, "out of range"},
		{"beacon loss without duration", func(s *qma.Scenario) {
			s.Faults = &qma.Faults{BeaconLoss: []qma.BeaconLoss{{Node: 1, AtSeconds: 1}}}
		}, "must be positive"},
		{"barring unknown policy", func(s *qma.Scenario) {
			s.Barring = &qma.Barring{Policy: "token-bucket"}
		}, "unknown policy"},
		{"barring factor out of range", func(s *qma.Scenario) {
			s.Barring = &qma.Barring{Policy: "fixed", P: 1.5}
		}, "outside [0,1]"},
		{"barring target out of range", func(s *qma.Scenario) {
			s.Barring = &qma.Barring{Policy: "aimd", Target: 1}
		}, "outside [0,1)"},
		{"barring negative interval", func(s *qma.Scenario) {
			s.Barring = &qma.Barring{Policy: "pid", IntervalSeconds: -1}
		}, "negative interval"},
		{"barring negative backoff", func(s *qma.Scenario) {
			s.Barring = &qma.Barring{Policy: "aimd", BackoffSeconds: -0.5}
		}, "negative backoff"},
		{"unknown drop policy", func(s *qma.Scenario) {
			s.DropPolicy = "lifo"
		}, "drop policy"},
		{"negative drop deadline", func(s *qma.Scenario) {
			s.DropDeadlineSeconds = -1
		}, "must not be negative"},
	}
	for _, tc := range cases {
		sc := base()
		tc.mutate(sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a bad scenario", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
		if _, err := sc.Run(); err == nil {
			t.Errorf("%s: Run accepted a bad scenario", tc.name)
		}
	}

	// Move validation on a position-based topology checks node bounds.
	sc := &qma.Scenario{
		Topology:        qma.Star17(),
		DurationSeconds: 10,
		Dynamics:        &qma.Dynamics{Moves: []qma.Move{{Node: 99, AtSeconds: 1}}},
	}
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "move node") {
		t.Errorf("move node range: got %v", err)
	}
	sc.Dynamics.Moves[0] = qma.Move{Node: 1, AtSeconds: -1}
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "past") {
		t.Errorf("move in the past: got %v", err)
	}
}

// TestScenarioValidateAccepts pins the valid configurations, including a
// fully loaded dynamics block on a position-based topology.
func TestScenarioValidateAccepts(t *testing.T) {
	ok := []*qma.Scenario{
		{Topology: qma.HiddenNode(), DurationSeconds: 1},
		{Topology: qma.HiddenNode(), DurationSeconds: 1,
			Explorer: &qma.Explorer{Kind: "epsilon", Eps0: 0.5}},
		{Topology: qma.HiddenNode(), DurationSeconds: 1,
			Explorer: &qma.Explorer{Kind: "constant", Eps0: 0.1}},
		{Topology: qma.HiddenNode(), DurationSeconds: 1,
			Dynamics: &qma.Dynamics{}},
		{Topology: qma.HiddenNode(), DurationSeconds: 1,
			Dynamics: &qma.Dynamics{
				Channel: qma.GilbertElliott{MeanGoodSeconds: 5, MeanBadSeconds: 0.5, LossBad: 1},
				Fades:   []qma.Fade{{Node: 1, AtSeconds: 2, ForSeconds: 3}},
				Churn:   []qma.Churn{{Node: 0, AtSeconds: 1, Leave: true}, {Node: 0, AtSeconds: 2}},
			}},
		{Topology: qma.Star17(), DurationSeconds: 1,
			Dynamics: &qma.Dynamics{Moves: []qma.Move{{Node: 3, AtSeconds: 0.5, X: 1, Y: -2}}}},
		{Topology: qma.HiddenNode(), DurationSeconds: 1, Faults: &qma.Faults{}},
		{Topology: qma.HiddenNode(), DurationSeconds: 1, Barring: &qma.Barring{}},
		{Topology: qma.HiddenNode(), DurationSeconds: 1,
			Barring: &qma.Barring{Policy: "aimd", P: 0.5, Target: 0.2, MinP: 0.1,
				IntervalSeconds: 0.5, BackoffSeconds: 0.25},
			DropPolicy: "deadline", DropDeadlineSeconds: 3},
		{Topology: qma.HiddenNode(), DurationSeconds: 1,
			Faults: &qma.Faults{
				Outages:       []qma.Outage{{Node: 1, AtSeconds: 2, ForSeconds: 3, StopBeacons: true}},
				Reboots:       []qma.RebootEvent{{Node: 0, AtSeconds: 5}},
				AckCorruption: []qma.AckCorruption{{AtSeconds: 1, ForSeconds: 2}},
				BeaconLoss:    []qma.BeaconLoss{{Node: 2, AtSeconds: 4, ForSeconds: 1}},
			}},
	}
	for i, sc := range ok {
		if err := sc.Validate(); err != nil {
			t.Errorf("case %d: Validate rejected a good scenario: %v", i, err)
		}
	}
}

// TestZeroDynamicsIsByteIdentical pins the headline guarantee at the public
// API: attaching an empty Dynamics block changes nothing about a run.
func TestZeroDynamicsIsByteIdentical(t *testing.T) {
	run := func(dyn *qma.Dynamics) *qma.Result {
		sc := &qma.Scenario{
			Topology:        qma.HiddenNode(),
			DurationSeconds: 30,
			Seed:            7,
			Traffic: []qma.Traffic{
				{Origin: 0, Phases: []qma.Phase{{Rate: 5}}, StartSeconds: 1},
				{Origin: 2, Phases: []qma.Phase{{Rate: 5}}, StartSeconds: 1},
			},
			Dynamics: dyn,
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(nil)
	zero := run(&qma.Dynamics{})
	if !reflect.DeepEqual(static, zero) {
		t.Fatal("a zero-valued Dynamics block changed the run's results")
	}
}

// TestZeroFaultsIsByteIdentical pins the same guarantee for the fault
// subsystem: attaching an empty Faults block changes nothing about a run.
func TestZeroFaultsIsByteIdentical(t *testing.T) {
	run := func(f *qma.Faults) *qma.Result {
		sc := &qma.Scenario{
			Topology:        qma.HiddenNode(),
			DurationSeconds: 30,
			Seed:            7,
			Traffic: []qma.Traffic{
				{Origin: 0, Phases: []qma.Phase{{Rate: 5}}, StartSeconds: 1},
				{Origin: 2, Phases: []qma.Phase{{Rate: 5}}, StartSeconds: 1},
			},
			Faults: f,
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(nil)
	zero := run(&qma.Faults{})
	if !reflect.DeepEqual(clean, zero) {
		t.Fatal("a zero-valued Faults block changed the run's results")
	}
}

// TestZeroBarringIsByteIdentical pins the same guarantee for the overload
// subsystem: attaching an empty Barring block (and the zero drop policy /
// deadline) changes nothing about a run — the barring RNG streams are not
// even allocated.
func TestZeroBarringIsByteIdentical(t *testing.T) {
	run := func(b *qma.Barring) *qma.Result {
		sc := &qma.Scenario{
			Topology:        qma.HiddenNode(),
			DurationSeconds: 30,
			Seed:            7,
			Traffic: []qma.Traffic{
				{Origin: 0, Phases: []qma.Phase{{Rate: 5}}, StartSeconds: 1},
				{Origin: 2, Phases: []qma.Phase{{Rate: 5}}, StartSeconds: 1},
			},
			Barring:             b,
			DropPolicy:          "tail",
			DropDeadlineSeconds: 0,
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(nil)
	zero := run(&qma.Barring{})
	if !reflect.DeepEqual(clean, zero) {
		t.Fatal("a zero-valued Barring block changed the run's results")
	}
}

// TestBarringEndToEnd drives the access-barring controller through the
// public API on a deliberately overloaded hidden-node pair: barring must
// actually bite (barred attempts accumulate), the run must stay plausible,
// and identical configurations must replay byte-identically.
func TestBarringEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	build := func(b *qma.Barring) *qma.Scenario {
		return &qma.Scenario{
			Topology:        qma.HiddenNode(),
			DurationSeconds: 60,
			Seed:            3,
			Barring:         b,
			Traffic: []qma.Traffic{
				{Origin: 0, Phases: []qma.Phase{{Rate: 20}}, StartSeconds: 1},
				{Origin: 2, Phases: []qma.Phase{{Rate: 20}}, StartSeconds: 1},
			},
		}
	}
	barred, err := build(&qma.Barring{Policy: "aimd"}).Run()
	if err != nil {
		t.Fatal(err)
	}
	var totalBarred uint64
	for _, n := range barred.Nodes {
		totalBarred += n.Barred
	}
	if totalBarred == 0 {
		t.Error("AIMD barring under 2x20 pkt/s overload never barred an attempt")
	}
	if barred.NetworkPDR <= 0.05 {
		t.Errorf("barred PDR %.3f implausibly low — barring locked the network out", barred.NetworkPDR)
	}
	again, err := build(&qma.Barring{Policy: "aimd"}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(barred, again) {
		t.Error("identical barring configurations produced different results")
	}
}

// TestFaultsEndToEnd drives every fault mechanism together through the
// public API: the disturbances must bite (PDR drops versus the fault-free
// run) and identical fault scripts must replay byte-identically.
func TestFaultsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	build := func(f *qma.Faults) *qma.Scenario {
		sc := &qma.Scenario{
			Topology:        qma.HiddenNode(),
			DurationSeconds: 60,
			Seed:            3,
			Faults:          f,
			Traffic: []qma.Traffic{
				{Origin: 0, Phases: []qma.Phase{{Rate: 5}}, StartSeconds: 1},
				{Origin: 2, Phases: []qma.Phase{{Rate: 5}}, StartSeconds: 1},
			},
		}
		return sc
	}
	script := func() *qma.Faults {
		return &qma.Faults{
			Outages:       []qma.Outage{{Node: 1, AtSeconds: 20, ForSeconds: 5, StopBeacons: true}},
			Reboots:       []qma.RebootEvent{{Node: 0, AtSeconds: 35}},
			AckCorruption: []qma.AckCorruption{{AtSeconds: 45, ForSeconds: 2}},
			BeaconLoss:    []qma.BeaconLoss{{Node: 2, AtSeconds: 50, ForSeconds: 1}},
		}
	}
	clean, err := build(nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := build(script()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if faulty.NetworkPDR >= clean.NetworkPDR {
		t.Errorf("faults did not reduce PDR: clean %.3f, faulty %.3f",
			clean.NetworkPDR, faulty.NetworkPDR)
	}
	if faulty.NetworkPDR <= 0.1 {
		t.Errorf("faulty PDR %.3f implausibly low — the script broke the run", faulty.NetworkPDR)
	}
	again, err := build(script()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(faulty, again) {
		t.Error("identical fault scripts produced different results")
	}
}

// TestDynamicsEndToEnd exercises every dynamics mechanism together through
// the public API on a position-based topology and sanity-checks that the
// disturbances actually bite (the PDR drops versus the static run).
func TestDynamicsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	build := func(dyn *qma.Dynamics) *qma.Scenario {
		sc := &qma.Scenario{
			Topology:        qma.Star17(),
			DurationSeconds: 60,
			Seed:            3,
			Dynamics:        dyn,
		}
		for i := 1; i < sc.Topology.NumNodes(); i++ {
			sc.Traffic = append(sc.Traffic,
				qma.Traffic{Origin: i, Phases: []qma.Phase{{Rate: 2}}, StartSeconds: 1})
		}
		return sc
	}
	static, err := build(nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	disturbed, err := build(&qma.Dynamics{
		Channel: qma.GilbertElliott{MeanGoodSeconds: 4, MeanBadSeconds: 0.5, LossBad: 1},
		Fades:   []qma.Fade{{Node: 0, AtSeconds: 20, ForSeconds: 5}},
		Churn: []qma.Churn{
			{Node: 5, AtSeconds: 10, Leave: true},
			{Node: 5, AtSeconds: 30},
		},
		Moves: []qma.Move{
			{Node: 7, AtSeconds: 15, X: 500, Y: 500}, // out of radio range
			{Node: 7, AtSeconds: 40, X: 1, Y: 1},     // back next to the hub
		},
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if disturbed.NetworkPDR >= static.NetworkPDR {
		t.Errorf("disturbances did not reduce PDR: static %.3f, disturbed %.3f",
			static.NetworkPDR, disturbed.NetworkPDR)
	}
	if disturbed.NetworkPDR <= 0.1 {
		t.Errorf("disturbed PDR %.3f implausibly low — dynamics broke the run", disturbed.NetworkPDR)
	}
	// Repeatability under dynamics.
	again, err := build(&qma.Dynamics{
		Channel: qma.GilbertElliott{MeanGoodSeconds: 4, MeanBadSeconds: 0.5, LossBad: 1},
		Fades:   []qma.Fade{{Node: 0, AtSeconds: 20, ForSeconds: 5}},
		Churn: []qma.Churn{
			{Node: 5, AtSeconds: 10, Leave: true},
			{Node: 5, AtSeconds: 30},
		},
		Moves: []qma.Move{
			{Node: 7, AtSeconds: 15, X: 500, Y: 500},
			{Node: 7, AtSeconds: 40, X: 1, Y: 1},
		},
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(disturbed, again) {
		t.Error("identical dynamic scenarios produced different results")
	}
}
