package qma_test

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// benchEvent is the schema of one line of a committed BENCH_<date>.json
// snapshot: the `go test -json` event stream (see README "Benchmarks").
type benchEvent struct {
	Time    time.Time `json:"Time"`
	Action  string    `json:"Action"`
	Package string    `json:"Package"`
	Test    string    `json:"Test"`
	Output  string    `json:"Output"`
	Elapsed float64   `json:"Elapsed"`
}

var validBenchActions = map[string]bool{
	"start": true, "run": true, "pause": true, "cont": true,
	"pass": true, "bench": true, "fail": true, "output": true,
	"skip": true, "build-output": true, "build-fail": true,
}

// TestBenchSnapshotsAreWellFormed validates every committed BENCH_*.json
// against the go-test-json event schema, so a truncated upload or a
// hand-edited snapshot fails CI instead of silently breaking whatever
// tooling parses the throughput history later.
func TestBenchSnapshotsAreWellFormed(t *testing.T) {
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no BENCH_*.json snapshots in the repository root (README documents at least one)")
	}
	for _, path := range paths {
		t.Run(path, func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			sc := bufio.NewScanner(f)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			line, benchLines := 0, 0
			for sc.Scan() {
				line++
				if strings.TrimSpace(sc.Text()) == "" {
					continue
				}
				var ev benchEvent
				dec := json.NewDecoder(strings.NewReader(sc.Text()))
				dec.DisallowUnknownFields()
				if err := dec.Decode(&ev); err != nil {
					t.Fatalf("%s:%d: not a go-test-json event: %v", path, line, err)
				}
				if !validBenchActions[ev.Action] {
					t.Fatalf("%s:%d: unknown action %q", path, line, ev.Action)
				}
				if ev.Time.IsZero() {
					t.Fatalf("%s:%d: missing timestamp", path, line)
				}
				if ev.Package == "" {
					t.Fatalf("%s:%d: missing package", path, line)
				}
				if strings.Contains(ev.Output, "ns/op") {
					benchLines++
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			if benchLines == 0 {
				t.Fatalf("%s: no benchmark result lines (ns/op) — truncated snapshot?", path)
			}
		})
	}
}
