package qma_test

import (
	"reflect"
	"testing"

	"qma"
)

// TestPublicTableKindsEndToEnd exercises the selectable Q-table
// representations through the public API only: MACOptions{"table": ...} must
// behave exactly like the typed Table field, runs must be deterministic even
// when the table-kind subtests execute concurrently (go test -parallel), the
// per-node results must be sane, and every QMA node must report the §3.2
// memory footprint of its representation.
func TestPublicTableKindsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	baseScenario := func() *qma.Scenario {
		return &qma.Scenario{
			Topology:        qma.HiddenNode(),
			MAC:             qma.QMA,
			Seed:            3,
			DurationSeconds: 90,
			Traffic: []qma.Traffic{
				{Origin: 0, Phases: []qma.Phase{{Rate: 10}}, StartSeconds: 2, MaxPackets: 400},
				{Origin: 2, Phases: []qma.Phase{{Rate: 10}}, StartSeconds: 2, MaxPackets: 400},
			},
		}
	}
	cases := []struct {
		option    string
		kind      qma.TableKind
		wantBytes int // 54 subslots × 3 actions × entry width
	}{
		{"fixed", qma.TableFixed, 54 * 3 * 2},
		{"quant", qma.TableQuant, 54 * 3 * 1},
	}
	for _, tc := range cases {
		t.Run(tc.option, func(t *testing.T) {
			t.Parallel()
			byOption := baseScenario()
			byOption.MACOptions = map[string]string{"table": tc.option}
			byField := baseScenario()
			byField.Table = tc.kind

			resOption, err := byOption.Run()
			if err != nil {
				t.Fatal(err)
			}
			resField, err := byField.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(resOption, resField) {
				t.Error("MACOptions{\"table\"} and the typed Table field produced different results")
			}
			again, err := byOption.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(resOption, again) {
				t.Error("identical runs produced different results under concurrent subtests")
			}

			if resOption.NetworkPDR < 0.8 || resOption.NetworkPDR > 1 {
				t.Errorf("NetworkPDR = %.3f, want in [0.8, 1]", resOption.NetworkPDR)
			}
			if resOption.Events == 0 {
				t.Error("no kernel events reported")
			}
			for _, n := range resOption.Nodes {
				if n.PDR < 0 || n.PDR > 1 {
					t.Errorf("node %d: PDR = %v out of [0,1]", n.ID, n.PDR)
				}
				if n.Delivered > n.Generated {
					t.Errorf("node %d: delivered %d > generated %d", n.ID, n.Delivered, n.Generated)
				}
				if len(n.Policy) != 54 {
					t.Errorf("node %d: policy length %d, want 54 subslots", n.ID, len(n.Policy))
				}
				if n.TableBytes != tc.wantBytes {
					t.Errorf("node %d: TableBytes = %d, want %d", n.ID, n.TableBytes, tc.wantBytes)
				}
			}
			src := resOption.Nodes[0]
			if src.Generated == 0 || src.TxAttempts == 0 {
				t.Errorf("source node generated %d packets, %d TX attempts — traffic did not run", src.Generated, src.TxAttempts)
			}
		})
	}
}

// TestPublicTableBytesFloatAndCSMA pins the footprint reporting on the
// default float64 table (648 bytes at 54×3) and its absence on CSMA nodes,
// which hold no Q-table.
func TestPublicTableBytesFloatAndCSMA(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	sc := &qma.Scenario{
		Topology:        qma.HiddenNode(),
		MAC:             qma.QMA,
		Seed:            4,
		DurationSeconds: 30,
		Traffic:         []qma.Traffic{{Origin: 0, Phases: []qma.Phase{{Rate: 5}}, MaxPackets: 50}},
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Nodes {
		if n.TableBytes != 54*3*8 {
			t.Errorf("QMA node %d: TableBytes = %d, want %d (float64)", n.ID, n.TableBytes, 54*3*8)
		}
	}
	sc.MAC = qma.CSMAUnslotted
	res, err = sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Nodes {
		if n.TableBytes != 0 {
			t.Errorf("CSMA node %d: TableBytes = %d, want 0", n.ID, n.TableBytes)
		}
	}
}
