// Cross-protocol shootout from the public API: enumerate every MAC protocol
// registered in this build (qma.MACs — the list grows when a new protocol
// package registers itself, without changes here) and compare delivery,
// latency and transmission cost on the paper's hidden-node scenario.
package main

import (
	"fmt"
	"log"

	"qma"
)

func main() {
	const delta, warmup, packets = 10.0, 50.0, 400
	fmt.Printf("hidden node, δ=%g pkt/s per source, %d packets\n\n", delta, packets)
	fmt.Printf("%-18s  %-6s  %-9s  %s\n", "protocol", "PDR", "delay[s]", "attempts/delivered")
	for _, mac := range qma.MACs() {
		sc := &qma.Scenario{
			Topology:        qma.HiddenNode(),
			MAC:             mac,
			Seed:            1,
			DurationSeconds: warmup + packets/delta + 30,
			Traffic: []qma.Traffic{
				{Origin: 0, Phases: []qma.Phase{{Rate: 0.2}}, StartSeconds: 1, Management: true},
				{Origin: 2, Phases: []qma.Phase{{Rate: 0.2}}, StartSeconds: 1, Management: true},
				{Origin: 0, Phases: []qma.Phase{{Rate: delta}}, StartSeconds: warmup, MaxPackets: packets},
				{Origin: 2, Phases: []qma.Phase{{Rate: delta}}, StartSeconds: warmup, MaxPackets: packets},
			},
			MeasureFromSeconds: warmup,
		}
		res, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		var attempts, delivered uint64
		for _, n := range res.Nodes {
			attempts += n.TxAttempts
			delivered += n.Delivered
		}
		perDelivered := "n/a"
		if delivered > 0 {
			perDelivered = fmt.Sprintf("%.2f", float64(attempts)/float64(delivered))
		}
		fmt.Printf("%-18s  %-6.3f  %-9.3f  %s\n",
			mac, res.NetworkPDR, res.MeanDelaySeconds, perDelivered)
	}
	fmt.Println("\ncarrier sensing cannot see a hidden competitor, so CSMA/CA gains")
	fmt.Println("nothing over ALOHA here; QMA learns a collision-free schedule.")
}
