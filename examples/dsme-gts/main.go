// DSME GTS allocation: run the paper's §6.3 data-collection scenario — GTS
// slot (de)allocation handshakes as secondary traffic during the CAP — and
// compare QMA against unslotted CSMA/CA on a 19-node concentric topology.
package main

import (
	"fmt"
	"log"

	"qma"
)

func main() {
	rings, err := qma.Rings(2) // 19 nodes
	if err != nil {
		log.Fatal(err)
	}
	for _, mac := range []qma.MAC{qma.QMA, qma.CSMAUnslotted} {
		res, err := (&qma.DSMEScenario{
			Topology:        rings,
			MAC:             mac,
			Seed:            1,
			DurationSeconds: 400,
			WarmupSeconds:   150,
			// Fluctuating primary traffic — the paper's source of constant
			// (de)allocation churn.
			Phases: []qma.Phase{{Rate: 1, Seconds: 5}, {Rate: 10, Seconds: 5}},
		}).Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", mac)
		fmt.Printf("  secondary PDR (CAP)   %.3f\n", res.SecondaryPDR)
		fmt.Printf("  GTS-request success   %.3f\n", res.RequestSuccess)
		fmt.Printf("  (de)allocations/s     %.2f\n", res.AllocationsPerSecond)
		fmt.Printf("  primary PDR (GTS)     %.3f\n", res.PrimaryPDR)
		fmt.Printf("  duplicate GTS found   %d\n\n", res.DuplicateAllocations)
	}
}
