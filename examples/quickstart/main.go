// Quickstart: run QMA on the paper's 3-node hidden-node scenario (Fig. 6)
// and watch the nodes learn a collision-free subslot schedule.
package main

import (
	"fmt"
	"log"

	"qma"
)

func main() {
	sc := &qma.Scenario{
		Topology:        qma.HiddenNode(), // A(0) and C(2) are hidden from each other; B(1) is the sink
		MAC:             qma.QMA,
		Seed:            1,
		DurationSeconds: 200,
		Traffic: []qma.Traffic{
			// Low-rate management traffic lets the MAC warm up...
			{Origin: 0, Phases: []qma.Phase{{Rate: 0.2}}, StartSeconds: 1, Management: true},
			{Origin: 2, Phases: []qma.Phase{{Rate: 0.2}}, StartSeconds: 1, Management: true},
			// ...then both hidden nodes stream 25 packets/s to the sink.
			{Origin: 0, Phases: []qma.Phase{{Rate: 25}}, StartSeconds: 50, MaxPackets: 1000},
			{Origin: 2, Phases: []qma.Phase{{Rate: 25}}, StartSeconds: 50, MaxPackets: 1000},
		},
		MeasureFromSeconds: 50,
	}
	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network PDR %.1f%% — without RTS/CTS, despite the hidden terminals\n\n", 100*res.NetworkPDR)
	fmt.Println("learned per-subslot policies ('.'=QBackoff, C=QCCA, S=QSend):")
	for _, n := range res.Nodes {
		if n.Policy != "" && n.Generated > 0 {
			fmt.Printf("  node %s: %s\n", n.Label, n.Policy)
		}
	}
	fmt.Println("\nnote how A and C claim disjoint subslots: that is the cooperative")
	fmt.Println("multi-agent Q-learning of the paper converging to a TDMA-like schedule.")
}
