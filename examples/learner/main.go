// Learner-level API: embed the paper's cooperative multi-agent Q-learning
// core directly. Two agents compete for a shared resource — the §3.1.1
// stochastic environment where the original Lauer/Riedmiller rule gets
// stuck — and the ξ-penalty update of Eq. 5 lets them settle into
// alternating, collision-free use.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"qma"
)

const (
	wait    = 0 // back off this round
	acquire = 1 // grab the shared resource
)

func main() {
	mk := func() *qma.Learner {
		// 2 states (even/odd round) × 2 actions; default policy: wait.
		l, err := qma.NewLearner(2, 2, qma.LearnParams{}, qma.TableFloat, wait)
		if err != nil {
			log.Fatal(err)
		}
		return l
	}
	a, b := mk(), mk()
	rng := rand.New(rand.NewSource(1))

	collisions, successes := 0, 0
	for round := 0; round < 4000; round++ {
		s := round % 2
		next := (round + 1) % 2
		actA, actB := a.Policy(s), b.Policy(s)
		// 10% exploration keeps both agents probing, as QMA's
		// parameter-based exploration would under queue pressure.
		if rng.Float64() < 0.1 {
			actA = rng.Intn(2)
		}
		if rng.Float64() < 0.1 {
			actB = rng.Intn(2)
		}

		rewardA, rewardB := rewards(actA, actB)
		a.Observe(s, actA, rewardA, next)
		b.Observe(s, actB, rewardB, next)

		if round >= 3000 { // measure after convergence
			if actA == acquire && actB == acquire {
				collisions++
			} else if actA == acquire || actB == acquire {
				successes++
			}
		}
	}

	fmt.Println("policies after 4000 rounds (state → action):")
	for s := 0; s < 2; s++ {
		fmt.Printf("  state %d: A=%s  B=%s\n", s, name(a.Policy(s)), name(b.Policy(s)))
	}
	fmt.Printf("\nlast 1000 rounds: %d successful acquisitions, %d collisions\n", successes, collisions)
	fmt.Println("the Eq. 5 penalty lets one agent own each state — a learned TDMA")
	fmt.Printf("cumulative policy Q: A=%.2f B=%.2f\n", a.CumulativePolicyQ(), b.CumulativePolicyQ())
}

// rewards mirrors the paper's Tbl. 3: lone acquisition pays 1 to the
// acquirer and 1 to the waiter (it observed a success), a collision punishes
// both acquirers, mutual waiting pays nothing.
func rewards(actA, actB int) (float64, float64) {
	switch {
	case actA == acquire && actB == acquire:
		return -3, -3
	case actA == acquire:
		return 4, 2
	case actB == acquire:
		return 2, 4
	default:
		return 0, 0
	}
}

func name(a int) string {
	if a == acquire {
		return "acquire"
	}
	return "wait"
}
