// Adaptability (paper Fig. 12): node A alternates between δ=10 and δ=100
// every 100 s while node C joins late with constant δ=25. The cumulative
// Q-value series shows the policies re-converging after every change.
package main

import (
	"fmt"
	"log"
	"strings"

	"qma"
)

func main() {
	sc := &qma.Scenario{
		Topology:        qma.HiddenNode(),
		MAC:             qma.QMA,
		Seed:            1,
		DurationSeconds: 600,
		Traffic: []qma.Traffic{
			{Origin: 0, Phases: []qma.Phase{
				{Rate: 10, Seconds: 100},
				{Rate: 100, Seconds: 100},
			}},
			{Origin: 2, Phases: []qma.Phase{{Rate: 25}}, StartSeconds: 100},
		},
		SampleSeries: true,
	}
	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cumulative Q-values per frame (ASCII sparkline, 1 column ≈ 5 s):")
	for _, id := range []int{0, 2} {
		n := res.Nodes[id]
		fmt.Printf("  node %s %s\n", n.Label, sparkline(n.CumulativeQ, 100))
	}
	fmt.Println("\nnode A's series steps at every rate change (100 s, 200 s, ...);")
	fmt.Println("node C settles even though it joined a formed network late.")
	fmt.Printf("\nfinal policies:\n  A %s\n  C %s\n", res.Nodes[0].Policy, res.Nodes[2].Policy)
}

// sparkline squeezes a series into width buckets of ▁▂▃▄▅▆▇█ glyphs.
func sparkline(pts []qma.Point, width int) string {
	if len(pts) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := pts[0].V, pts[0].V
	for _, p := range pts {
		if p.V < lo {
			lo = p.V
		}
		if p.V > hi {
			hi = p.V
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	step := float64(len(pts)) / float64(width)
	for i := 0; i < width; i++ {
		v := pts[int(float64(i)*step)].V
		idx := int((v - lo) / (hi - lo) * float64(len(glyphs)-1))
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}
