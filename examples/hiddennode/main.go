// Hidden-node sweep: reproduce the shape of the paper's Fig. 7 — QMA vs
// slotted and unslotted CSMA/CA across packet generation rates — at reduced
// scale from the public API.
package main

import (
	"fmt"
	"log"

	"qma"
)

func run(mac qma.MAC, delta float64) float64 {
	warmup := 50.0
	packets := 400
	sc := &qma.Scenario{
		Topology:        qma.HiddenNode(),
		MAC:             mac,
		Seed:            1,
		DurationSeconds: warmup + float64(packets)/delta + 30,
		Traffic: []qma.Traffic{
			{Origin: 0, Phases: []qma.Phase{{Rate: 0.2}}, StartSeconds: 1, Management: true},
			{Origin: 2, Phases: []qma.Phase{{Rate: 0.2}}, StartSeconds: 1, Management: true},
			{Origin: 0, Phases: []qma.Phase{{Rate: delta}}, StartSeconds: warmup, MaxPackets: packets},
			{Origin: 2, Phases: []qma.Phase{{Rate: delta}}, StartSeconds: warmup, MaxPackets: packets},
		},
		MeasureFromSeconds: warmup,
	}
	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res.NetworkPDR
}

func main() {
	macs := []qma.MAC{qma.QMA, qma.CSMASlotted, qma.CSMAUnslotted}
	fmt.Printf("%-10s", "δ [pkt/s]")
	for _, m := range macs {
		fmt.Printf("  %-20s", m)
	}
	fmt.Println()
	for _, delta := range []float64{1, 4, 10, 25, 50, 100} {
		fmt.Printf("%-10.0f", delta)
		for _, m := range macs {
			fmt.Printf("  %-20.3f", run(m, delta))
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape (paper Fig. 7): QMA stays near 1.0 deep into rates")
	fmt.Println("where both CSMA/CA variants have already collapsed.")
}
