package qma_test

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"qma"
)

// TestUnknownMACIsRejected pins the protocol-registry validation: an
// unrecognized MAC value must fail Validate and Run with the named
// ErrUnknownMAC (no silent fallback to QMA), and the error must list the
// registered protocols.
func TestUnknownMACIsRejected(t *testing.T) {
	sc := &qma.Scenario{
		Topology:        qma.HiddenNode(),
		MAC:             "token-ring",
		DurationSeconds: 10,
	}
	err := sc.Validate()
	if !errors.Is(err, qma.ErrUnknownMAC) {
		t.Fatalf("Validate: got %v, want ErrUnknownMAC", err)
	}
	if !strings.Contains(err.Error(), string(qma.QMA)) || !strings.Contains(err.Error(), string(qma.Aloha)) {
		t.Errorf("error %q does not list the registered protocols", err)
	}
	if _, err := sc.Run(); !errors.Is(err, qma.ErrUnknownMAC) {
		t.Errorf("Run: got %v, want ErrUnknownMAC", err)
	}
	dsme := &qma.DSMEScenario{Topology: qma.HiddenNode(), MAC: "token-ring", DurationSeconds: 10}
	if err := dsme.Validate(); !errors.Is(err, qma.ErrUnknownMAC) {
		t.Errorf("DSME Validate: got %v, want ErrUnknownMAC", err)
	}
	if _, err := qma.ParseMAC("token-ring"); !errors.Is(err, qma.ErrUnknownMAC) {
		t.Errorf("ParseMAC: got %v, want ErrUnknownMAC", err)
	}
}

// TestMACRegistryRoundTrip pins the public registry surface: MACs() lists
// every protocol of this build, each canonical key and alias parses to the
// canonical value, and every listed protocol validates and carries a display
// name.
func TestMACRegistryRoundTrip(t *testing.T) {
	macs := qma.MACs()
	want := map[qma.MAC]bool{
		qma.QMA: true, qma.CSMAUnslotted: true, qma.CSMASlotted: true,
		qma.Aloha: true, qma.SlottedAloha: true, qma.Bandit: true,
		qma.NOMA: true,
	}
	if len(macs) != len(want) {
		t.Fatalf("MACs() = %v, want the %d registered protocols", macs, len(want))
	}
	for _, m := range macs {
		if !want[m] {
			t.Errorf("MACs() lists unexpected protocol %q", m)
		}
		got, err := qma.ParseMAC(string(m))
		if err != nil || got != m {
			t.Errorf("ParseMAC(%q) = %q, %v", m, got, err)
		}
		if sc := (&qma.Scenario{Topology: qma.HiddenNode(), MAC: m, DurationSeconds: 1}); sc.Validate() != nil {
			t.Errorf("Validate rejects registered protocol %q", m)
		}
		if m.String() == "" {
			t.Errorf("protocol %q has no display name", m)
		}
	}
	for alias, canonical := range map[string]qma.MAC{
		"unslotted":  qma.CSMAUnslotted,
		"slotted":    qma.CSMASlotted,
		"pure-aloha": qma.Aloha,
		"s-aloha":    qma.SlottedAloha,
		"mab":        qma.Bandit,
		"noma-ql":    qma.NOMA,
	} {
		got, err := qma.ParseMAC(alias)
		if err != nil || got != canonical {
			t.Errorf("ParseMAC(%q) = %q, %v; want %q", alias, got, err, canonical)
		}
	}
	// The empty string is the documented QMA default, not an error.
	if got, err := qma.ParseMAC(""); err != nil || got != qma.QMA {
		t.Errorf("ParseMAC(\"\") = %q, %v; want the QMA default", got, err)
	}
}

// TestBanditAliasHonorsExplorer pins that protocol aliases behave exactly
// like their canonical key through the public API: a bandit run addressed as
// "mab" must pick up a configured Explorer (and therefore match the run
// addressed as qma.Bandit bit for bit).
func TestBanditAliasHonorsExplorer(t *testing.T) {
	run := func(mk qma.MAC) *qma.Result {
		sc := &qma.Scenario{
			Topology:        qma.HiddenNode(),
			MAC:             mk,
			Explorer:        &qma.Explorer{Kind: "constant", Eps0: 0.5},
			Seed:            3,
			DurationSeconds: 20,
			Traffic: []qma.Traffic{
				{Origin: 0, Phases: []qma.Phase{{Rate: 5}}, StartSeconds: 1},
				{Origin: 2, Phases: []qma.Phase{{Rate: 5}}, StartSeconds: 1},
			},
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatalf("%q: %v", mk, err)
		}
		return res
	}
	canonical, alias := run(qma.Bandit), run("mab")
	if !reflect.DeepEqual(canonical, alias) {
		t.Error("MAC \"mab\" ran differently from qma.Bandit with the same Explorer")
	}
}

// TestNomaCaptureSharing pins the NOMA acceptance behaviour through the
// public API: on the hidden-node pair with capture enabled, the power-level
// learner produces deliveries that happened under overlapping transmissions
// (Captured > 0) — two power levels sharing a subslot — while the identical
// run without capture produces none.
func TestNomaCaptureSharing(t *testing.T) {
	run := func(captureDB float64) *qma.Result {
		sc := &qma.Scenario{
			Topology:           qma.HiddenNode(),
			MAC:                qma.NOMA,
			CaptureThresholdDB: captureDB,
			Seed:               1,
			DurationSeconds:    60,
			Traffic: []qma.Traffic{
				{Origin: 0, Phases: []qma.Phase{{Rate: 10}}, StartSeconds: 1},
				{Origin: 2, Phases: []qma.Phase{{Rate: 10}}, StartSeconds: 1},
			},
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	captured := func(r *qma.Result) (n uint64) {
		for _, node := range r.Nodes {
			n += node.Captured
		}
		return n
	}
	with := run(6)
	if got := captured(with); got == 0 {
		t.Error("capture-enabled NOMA run shows no captured deliveries — power levels never shared a subslot")
	}
	if with.NetworkPDR <= 0 {
		t.Error("capture-enabled NOMA run delivered nothing")
	}
	if got := captured(run(0)); got != 0 {
		t.Errorf("capture-disabled run reports %d captured deliveries, want 0", got)
	}
}

// TestMACOptionsKV pins the generic key=value options plumbing: registry
// parsing, validation of unknown keys/bad values at Validate time, and a
// full run under parsed options.
func TestMACOptionsKV(t *testing.T) {
	base := func() *qma.Scenario {
		return &qma.Scenario{
			Topology:        qma.HiddenNode(),
			DurationSeconds: 10,
			Traffic:         []qma.Traffic{{Origin: 0, Phases: []qma.Phase{{Rate: 2}}}},
		}
	}

	sc := base()
	sc.MAC = qma.CSMAUnslotted
	sc.MACOptions = map[string]string{"minbe": "2", "maxbe": "4"}
	if _, err := sc.Run(); err != nil {
		t.Errorf("csma options rejected: %v", err)
	}

	sc = base()
	sc.MAC = qma.NOMA
	sc.MACOptions = map[string]string{"levels": "3", "step": "6"}
	sc.CaptureThresholdDB = 6
	if _, err := sc.Run(); err != nil {
		t.Errorf("noma options rejected: %v", err)
	}

	for name, kv := range map[string]map[string]string{
		"unknown key":      {"window": "7"},
		"malformed value":  {"minbe": "two"},
		"invalid after kv": {"minbe": "9"}, // parses, but ValidateBEB rejects BE > 8
	} {
		sc = base()
		sc.MAC = qma.CSMAUnslotted
		sc.MACOptions = kv
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %v", name, kv)
		}
		if _, err := sc.Run(); err == nil {
			t.Errorf("%s: Run accepted %v", name, kv)
		}
	}
}

// TestExplorerAdoptionIsGeneric pins that the scenario-level Explorer now
// flows through the registry's AdoptExplorer capability: the bandit picks it
// up with key=value options present too, and protocols without the hook
// (CSMA) simply ignore the explorer.
func TestExplorerAdoptionIsGeneric(t *testing.T) {
	sc := &qma.Scenario{
		Topology:        qma.HiddenNode(),
		MAC:             qma.Bandit,
		Explorer:        &qma.Explorer{Kind: "constant", Eps0: 0.4},
		MACOptions:      map[string]string{"picker": "egreedy"},
		DurationSeconds: 10,
		Traffic:         []qma.Traffic{{Origin: 0, Phases: []qma.Phase{{Rate: 2}}}},
	}
	if _, err := sc.Run(); err != nil {
		t.Errorf("bandit with explorer and options: %v", err)
	}
	sc.MAC = qma.CSMAUnslotted
	sc.MACOptions = nil
	if _, err := sc.Run(); err != nil {
		t.Errorf("csma must ignore the explorer, got: %v", err)
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := map[string]*qma.Scenario{
		"no topology": {DurationSeconds: 10},
		"no duration": {Topology: qma.HiddenNode()},
		"bad mac":     {Topology: qma.HiddenNode(), DurationSeconds: 10, MAC: "token-ring"},
		"bad origin": {Topology: qma.HiddenNode(), DurationSeconds: 10,
			Traffic: []qma.Traffic{{Origin: 7, Phases: []qma.Phase{{Rate: 1}}}}},
		"sink origin": {Topology: qma.HiddenNode(), DurationSeconds: 10,
			Traffic: []qma.Traffic{{Origin: 1, Phases: []qma.Phase{{Rate: 1}}}}},
		"no phases": {Topology: qma.HiddenNode(), DurationSeconds: 10,
			Traffic: []qma.Traffic{{Origin: 0}}},
		"bad explorer": {Topology: qma.HiddenNode(), DurationSeconds: 10,
			Explorer: &qma.Explorer{Kind: "nope"}},
		"negative capture": {Topology: qma.HiddenNode(), DurationSeconds: 10,
			CaptureThresholdDB: -2},
		"bad mac option": {Topology: qma.HiddenNode(), DurationSeconds: 10,
			MAC: qma.NOMA, MACOptions: map[string]string{"levels": "99"}},
		"bad broadcast": {Topology: qma.HiddenNode(), DurationSeconds: 10,
			Broadcasts: []qma.Broadcast{{Origin: 0, PeriodSeconds: 0}}},
	}
	for name, sc := range cases {
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad scenario", name)
		}
		if _, err := sc.Run(); err == nil {
			t.Errorf("%s: Run accepted a bad scenario", name)
		}
	}
}

func TestPublicScenarioEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	sc := &qma.Scenario{
		Topology:        qma.HiddenNode(),
		MAC:             qma.QMA,
		Seed:            1,
		DurationSeconds: 120,
		Traffic: []qma.Traffic{
			{Origin: 0, Phases: []qma.Phase{{Rate: 10}}, StartSeconds: 5, MaxPackets: 500},
			{Origin: 2, Phases: []qma.Phase{{Rate: 10}}, StartSeconds: 5, MaxPackets: 500},
		},
		SampleSeries: true,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NetworkPDR < 0.9 {
		t.Errorf("PDR = %.3f, want >= 0.9", res.NetworkPDR)
	}
	a := res.Nodes[0]
	if a.Label != "A" || a.Generated == 0 || a.PDR <= 0 {
		t.Errorf("node A result incomplete: %+v", a)
	}
	if len(a.Policy) != 54 {
		t.Errorf("policy length = %d, want 54 subslots", len(a.Policy))
	}
	if len(a.CumulativeQ) == 0 || len(a.ExplorationRate) == 0 || len(a.QueueLevel) == 0 {
		t.Error("series missing despite SampleSeries")
	}
	// Determinism through the public API.
	res2, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.NetworkPDR != res.NetworkPDR || res2.MeanDelaySeconds != res.MeanDelaySeconds {
		t.Error("identical scenarios produced different results")
	}
}

func TestPublicScenarioCSMAAndTables(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	base := qma.Scenario{
		Topology:        qma.HiddenNode(),
		Seed:            2,
		DurationSeconds: 80,
		Traffic: []qma.Traffic{
			{Origin: 0, Phases: []qma.Phase{{Rate: 5}}, StartSeconds: 2},
			{Origin: 2, Phases: []qma.Phase{{Rate: 5}}, StartSeconds: 2},
		},
	}
	for _, mk := range []qma.MAC{qma.CSMAUnslotted, qma.CSMASlotted} {
		sc := base
		sc.MAC = mk
		res, err := sc.Run()
		if err != nil {
			t.Fatalf("%v: %v", mk, err)
		}
		if res.NetworkPDR < 0.8 {
			t.Errorf("%v: PDR = %.3f at low load", mk, res.NetworkPDR)
		}
		if res.Nodes[0].Policy != "" {
			t.Errorf("%v: CSMA node has a QMA policy", mk)
		}
	}
	for _, tk := range []qma.TableKind{qma.TableFixed, qma.TableQuant} {
		sc := base
		sc.MAC = qma.QMA
		sc.Table = tk
		res, err := sc.Run()
		if err != nil {
			t.Fatalf("table %d: %v", tk, err)
		}
		if res.NetworkPDR < 0.8 {
			t.Errorf("table %d: PDR = %.3f, the integer tables should work too", tk, res.NetworkPDR)
		}
	}
}

func TestPublicDSMEScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	rings, err := qma.Rings(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&qma.DSMEScenario{
		Topology:        rings,
		MAC:             qma.QMA,
		Seed:            1,
		DurationSeconds: 250,
		WarmupSeconds:   100,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SecondaryPDR <= 0 || res.SecondaryPDR > 1.1 {
		t.Errorf("secondary PDR = %.3f out of range", res.SecondaryPDR)
	}
	if res.PrimaryPDR <= 0.3 {
		t.Errorf("primary PDR = %.3f, want > 0.3", res.PrimaryPDR)
	}
	owned := 0
	for _, s := range res.SlotsOwned {
		owned += s
	}
	if owned == 0 {
		t.Error("no GTS owned at the end of the run")
	}
	// Validation errors.
	if _, err := (&qma.DSMEScenario{}).Run(); err == nil {
		t.Error("empty DSME scenario accepted")
	}
	if _, err := (&qma.DSMEScenario{Topology: rings, DurationSeconds: 10, WarmupSeconds: 20}).Run(); err == nil {
		t.Error("warmup >= duration accepted")
	}
	if _, err := (&qma.DSMEScenario{Topology: rings, DurationSeconds: 10, Table: qma.TableKind(9)}).Run(); err == nil {
		t.Error("unknown table kind accepted")
	}
}

func TestPublicLearner(t *testing.T) {
	l, err := qma.NewLearner(4, 3, qma.LearnParams{Alpha: 1, Gamma: 1, Xi: 2, InitQ: -10}, qma.TableFloat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.States() != 4 || l.Actions() != 3 {
		t.Fatal("dimensions wrong")
	}
	// The Fig. 5 first update: QSend success in subslot 0.
	if got := l.Observe(0, 2, 4, 1); got != -6 {
		t.Errorf("Observe = %v, want -6", got)
	}
	if l.Policy(0) != 2 {
		t.Errorf("policy = %d, want QSend", l.Policy(0))
	}
	if l.Q(0, 2) != -6 {
		t.Errorf("Q = %v", l.Q(0, 2))
	}
	l.Reset(1)
	if l.Policy(0) != 1 || l.Q(0, 2) != -10 {
		t.Error("Reset failed")
	}
	// Constructor validation.
	if _, err := qma.NewLearner(0, 3, qma.LearnParams{}, qma.TableFloat, 0); err == nil {
		t.Error("accepted zero states")
	}
	if _, err := qma.NewLearner(2, 3, qma.LearnParams{}, qma.TableKind(9), 0); err == nil {
		t.Error("accepted unknown table kind")
	}
	if _, err := qma.NewLearner(2, 3, qma.LearnParams{}, qma.TableFloat, 5); err == nil {
		t.Error("accepted out-of-range default action")
	}
}

func TestPublicExplorationRate(t *testing.T) {
	if got := qma.ExplorationRate(8, 0); got != 0.3 {
		t.Errorf("rho(8,0) = %v, want 0.3", got)
	}
	if got := qma.ExplorationRate(2, 5); got != 0 {
		t.Errorf("rho(2,5) = %v, want 0", got)
	}
}

func TestPublicHandshakeExpectation(t *testing.T) {
	v, err := qma.ExpectedHandshakeMessages(1)
	if err != nil || math.Abs(v-3) > 1e-9 {
		t.Errorf("E[p=1] = %v/%v, want 3", v, err)
	}
	if _, err := qma.ExpectedHandshakeMessages(1.5); err == nil {
		t.Error("accepted p > 1")
	}
}

func TestTopologyConstructors(t *testing.T) {
	if qma.HiddenNode().NumNodes() != 3 || qma.Tree10().NumNodes() != 10 || qma.Star17().NumNodes() != 17 {
		t.Error("built-in topology sizes wrong")
	}
	r, err := qma.Rings(4)
	if err != nil || r.NumNodes() != 91 {
		t.Errorf("Rings(4) = %d nodes / %v", r.NumNodes(), err)
	}
	if _, err := qma.Rings(0); err == nil {
		t.Error("Rings(0) accepted")
	}
	custom, err := qma.NewTopology(3, [][2]int{{0, 1}, {1, 2}}, 1, []int{1, -1, 1})
	if err != nil || custom.NumNodes() != 3 || custom.Sink() != 1 {
		t.Errorf("custom topology: %v", err)
	}
	for name, build := range map[string]func() error{
		"bad sink":    func() error { _, e := qma.NewTopology(3, nil, 5, []int{-1, -1, -1}); return e },
		"bad parents": func() error { _, e := qma.NewTopology(3, nil, 0, []int{-1}); return e },
		"bad link":    func() error { _, e := qma.NewTopology(3, [][2]int{{0, 9}}, 0, []int{-1, 0, 0}); return e },
		"bad n":       func() error { _, e := qma.NewTopology(0, nil, 0, nil); return e },
	} {
		if build() == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
