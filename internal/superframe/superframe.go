// Package superframe implements the IEEE 802.15.4 DSME timing structure the
// paper builds on (Appendix A): beacon slot, contention access period (CAP)
// subdivided into QMA subslots, contention free period (CFP) with guaranteed
// time slots (GTS), and multi-superframes. All nodes share one perfectly
// synchronized clock; the paper's testbed uses beacon synchronization and
// evaluates no sync-error effects.
package superframe

import (
	"fmt"

	"qma/internal/sim"
)

// Structural constants of the 802.15.4 DSME superframe.
const (
	// BaseSlotSymbols is aBaseSlotDuration: 60 symbols.
	BaseSlotSymbols = 60
	// SlotsPerSuperframe is aNumSuperframeSlots: 16.
	SlotsPerSuperframe = 16
	// BeaconSlots is the number of leading slots reserved for the beacon.
	BeaconSlots = 1
	// CAPSlots is the number of contention access period slots (paper §4:
	// "8 CAP slots are further subdivided into 54 subslots").
	CAPSlots = 8
	// CFPSlots is the number of contention free period slots (7 GTS slots).
	CFPSlots = SlotsPerSuperframe - BeaconSlots - CAPSlots
	// DefaultSubslots is the paper's CAP subdivision: 54 subslots.
	DefaultSubslots = 54
	// NumChannels is the number of 2.4 GHz channels available for GTS
	// (channels 11-26).
	NumChannels = 16
)

// Config selects the superframe scaling. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// SO is the superframe order: one slot lasts BaseSlotSymbols * 2^SO
	// symbols. The paper's evaluation uses SO=3 (7.68 ms slots).
	SO int
	// MO is the multi-superframe order: a multi-superframe holds 2^(MO-SO)
	// superframes. MO=4 with SO=3 yields 2 superframes per multi-superframe.
	MO int
	// Subslots is the number of QMA subslots the CAP is divided into.
	Subslots int
	// SubslotSymbols is the length of one subslot in PHY symbols. The default
	// 70 symbols (1120 µs) leaves a 960 µs guard at the CAP end for the
	// paper's SO=3 / 54-subslot configuration (DESIGN.md §5).
	SubslotSymbols int
	// SymbolDuration is the PHY symbol time (16 µs for O-QPSK 2.4 GHz).
	SymbolDuration sim.Time
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: SO=3, MO=4, 54 subslots of 70 symbols, 16 µs symbols.
func DefaultConfig() Config {
	return Config{SO: 3, MO: 4, Subslots: DefaultSubslots, SubslotSymbols: 70, SymbolDuration: 16}
}

// Validate reports a descriptive error when the configuration is not
// realizable.
func (c Config) Validate() error {
	switch {
	case c.SO < 0 || c.SO > 14:
		return fmt.Errorf("superframe: SO=%d out of range [0,14]", c.SO)
	case c.MO < c.SO || c.MO > 14:
		return fmt.Errorf("superframe: MO=%d must be in [SO=%d,14]", c.MO, c.SO)
	case c.Subslots <= 0:
		return fmt.Errorf("superframe: Subslots=%d must be positive", c.Subslots)
	case c.SubslotSymbols <= 0:
		return fmt.Errorf("superframe: SubslotSymbols=%d must be positive", c.SubslotSymbols)
	case c.SymbolDuration <= 0:
		return fmt.Errorf("superframe: SymbolDuration=%v must be positive", c.SymbolDuration)
	}
	if sim.Time(c.Subslots)*c.SubslotDuration() > c.CAPDuration() {
		return fmt.Errorf("superframe: %d subslots of %d symbols do not fit into the CAP",
			c.Subslots, c.SubslotSymbols)
	}
	return nil
}

// SlotDuration is the length of one of the 16 superframe slots.
func (c Config) SlotDuration() sim.Time {
	return sim.Time(BaseSlotSymbols) * c.SymbolDuration << uint(c.SO)
}

// SuperframeDuration is the length of one superframe (16 slots).
func (c Config) SuperframeDuration() sim.Time {
	return c.SlotDuration() * SlotsPerSuperframe
}

// SuperframesPerMultiframe reports 2^(MO-SO).
func (c Config) SuperframesPerMultiframe() int { return 1 << uint(c.MO-c.SO) }

// MultiframeDuration is the length of one multi-superframe.
func (c Config) MultiframeDuration() sim.Time {
	return c.SuperframeDuration() * sim.Time(c.SuperframesPerMultiframe())
}

// CAPStartOffset is the offset of the CAP from the superframe start (the
// beacon slot precedes it).
func (c Config) CAPStartOffset() sim.Time { return c.SlotDuration() * BeaconSlots }

// CAPDuration is the total CAP length (8 slots).
func (c Config) CAPDuration() sim.Time { return c.SlotDuration() * CAPSlots }

// CFPStartOffset is the offset of the CFP from the superframe start.
func (c Config) CFPStartOffset() sim.Time {
	return c.SlotDuration() * (BeaconSlots + CAPSlots)
}

// SubslotDuration is the length of one QMA subslot. Subslot boundaries lie
// exactly on the symbol grid; whatever the Subslots×SubslotSymbols product
// leaves of the CAP is an idle guard at its end (960 µs for the default
// configuration).
func (c Config) SubslotDuration() sim.Time {
	return sim.Time(c.SubslotSymbols) * c.SymbolDuration
}

// GTSPerSuperframe is the number of (slot, channel) GTS units in one
// superframe's CFP.
func (c Config) GTSPerSuperframe() int { return CFPSlots * NumChannels }

// GTSPerMultiframe is the number of allocatable GTS units in one
// multi-superframe.
func (c Config) GTSPerMultiframe() int {
	return c.GTSPerSuperframe() * c.SuperframesPerMultiframe()
}

// Clock answers "where inside the superframe structure is instant t". It is
// stateless and shared by every node (perfect synchronization). The derived
// durations are precomputed once: every node consults the clock at every
// subslot boundary, so the per-call Config multiplications add up.
type Clock struct {
	cfg Config

	subslotDur sim.Time
	sfDur      sim.Time
	capOff     sim.Time
	cfpOff     sim.Time
	subslots   int
}

// NewClock validates cfg and returns a clock. It panics on an invalid
// configuration; scenario builders validate configs at assembly time.
func NewClock(cfg Config) *Clock {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Clock{
		cfg:        cfg,
		subslotDur: cfg.SubslotDuration(),
		sfDur:      cfg.SuperframeDuration(),
		capOff:     cfg.CAPStartOffset(),
		cfpOff:     cfg.CFPStartOffset(),
		subslots:   cfg.Subslots,
	}
}

// Config returns the clock's configuration.
func (c *Clock) Config() Config { return c.cfg }

// SuperframeIndex reports how many superframes have started up to and
// including instant t.
func (c *Clock) SuperframeIndex(t sim.Time) int64 {
	return int64(t / c.cfg.SuperframeDuration())
}

// SuperframeStart reports the start of the superframe containing t.
func (c *Clock) SuperframeStart(t sim.Time) sim.Time {
	return t - t%c.sfDur
}

// MultiframeIndex reports the multi-superframe containing t.
func (c *Clock) MultiframeIndex(t sim.Time) int64 {
	return int64(t / c.cfg.MultiframeDuration())
}

// SuperframeInMultiframe reports the superframe's position within its
// multi-superframe, in [0, SuperframesPerMultiframe).
func (c *Clock) SuperframeInMultiframe(t sim.Time) int {
	return int(c.SuperframeIndex(t)) % c.cfg.SuperframesPerMultiframe()
}

// InCAP reports whether t lies inside a contention access period, including
// the trailing guard after the last subslot.
func (c *Clock) InCAP(t sim.Time) bool {
	off := t % c.sfDur
	return off >= c.capOff && off < c.cfpOff
}

// Subslot reports the subslot index in [0, Subslots) containing t, or -1 when
// t lies outside the CAP or in the trailing CAP guard.
func (c *Clock) Subslot(t sim.Time) int {
	off := t%c.sfDur - c.capOff
	if off < 0 {
		return -1
	}
	idx := int(off / c.subslotDur)
	if idx >= c.subslots {
		return -1
	}
	return idx
}

// SubslotStart reports the absolute start time of subslot idx within the
// superframe containing t.
func (c *Clock) SubslotStart(t sim.Time, idx int) sim.Time {
	return c.SuperframeStart(t) + c.cfg.CAPStartOffset() + sim.Time(idx)*c.cfg.SubslotDuration()
}

// NextSubslotStart reports the first subslot boundary strictly after t,
// rolling into the next superframe's subslot 0 after the CAP ends.
func (c *Clock) NextSubslotStart(t sim.Time) sim.Time {
	sf := c.SuperframeStart(t)
	capStart := sf + c.capOff
	if t < capStart {
		return capStart
	}
	idx := (t - capStart) / c.subslotDur
	next := capStart + (idx+1)*c.subslotDur
	if int(idx+1) >= c.subslots {
		return sf + c.sfDur + c.capOff
	}
	return next
}

// NextBoundary advances from one subslot boundary to the next without any
// division: t must be the start of subslot idx (as previously reported by
// NextSubslotStart/Subslot or by NextBoundary itself). It returns the next
// boundary and its subslot index, rolling into the next superframe's
// subslot 0 after the last subslot. This is the per-tick fast path of the
// MAC engines; results are bit-identical to NextSubslotStart(t).
func (c *Clock) NextBoundary(t sim.Time, idx int) (sim.Time, int) {
	if idx+1 < c.subslots {
		return t + c.subslotDur, idx + 1
	}
	// t - idx*subslotDur is the CAP start; the next boundary is the CAP
	// start one superframe later.
	return t - sim.Time(idx)*c.subslotDur + c.sfDur, 0
}

// CAPEnd reports the end of the CAP of the superframe containing t (valid
// whether or not t itself is inside the CAP).
func (c *Clock) CAPEnd(t sim.Time) sim.Time {
	return c.SuperframeStart(t) + c.cfpOff
}

// FitsInCAP reports whether an activity of duration d starting at t completes
// before the CAP of t's superframe ends. Transactions that do not fit must be
// deferred (802.15.4 rule; DESIGN.md §6.2).
func (c *Clock) FitsInCAP(t sim.Time, d sim.Time) bool {
	return c.InCAP(t) && t+d <= c.CAPEnd(t)
}

// GTS identifies one guaranteed time slot: a (superframe, slot, channel)
// coordinate inside the multi-superframe, following the DSME slot grid.
type GTS struct {
	// Superframe is the superframe index within the multi-superframe.
	Superframe int
	// Slot is the CFP slot index in [0, CFPSlots).
	Slot int
	// Channel is the channel offset in [0, NumChannels).
	Channel int
}

// Valid reports whether the coordinate lies on cfg's slot grid.
func (g GTS) Valid(cfg Config) bool {
	return g.Superframe >= 0 && g.Superframe < cfg.SuperframesPerMultiframe() &&
		g.Slot >= 0 && g.Slot < CFPSlots &&
		g.Channel >= 0 && g.Channel < NumChannels
}

// Index maps the coordinate to a dense index in [0, GTSPerMultiframe).
func (g GTS) Index(cfg Config) int {
	return (g.Superframe*CFPSlots+g.Slot)*NumChannels + g.Channel
}

// GTSFromIndex is the inverse of GTS.Index.
func GTSFromIndex(cfg Config, idx int) GTS {
	ch := idx % NumChannels
	rest := idx / NumChannels
	return GTS{Superframe: rest / CFPSlots, Slot: rest % CFPSlots, Channel: ch}
}

// String implements fmt.Stringer.
func (g GTS) String() string {
	return fmt.Sprintf("GTS(sf=%d slot=%d ch=%d)", g.Superframe, g.Slot, g.Channel)
}

// NextGTSStart reports the first instant strictly after t at which the given
// GTS begins, honouring the multi-superframe period.
func (c *Clock) NextGTSStart(t sim.Time, g GTS) sim.Time {
	period := c.cfg.MultiframeDuration()
	offset := sim.Time(g.Superframe)*c.cfg.SuperframeDuration() +
		c.cfg.CFPStartOffset() + sim.Time(g.Slot)*c.cfg.SlotDuration()
	base := t - t%period + offset
	for base <= t {
		base += period
	}
	return base
}

// GTSDuration is the length of one GTS (one superframe slot).
func (c *Clock) GTSDuration() sim.Time { return c.cfg.SlotDuration() }
