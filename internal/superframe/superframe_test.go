package superframe

import (
	"testing"
	"testing/quick"

	"qma/internal/sim"
)

func defaultClock(t *testing.T) *Clock {
	t.Helper()
	return NewClock(DefaultConfig())
}

func TestDefaultConfigMatchesPaperTiming(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if got, want := cfg.SlotDuration(), 7680*sim.Microsecond; got != want {
		t.Errorf("SlotDuration = %v, want %v", got, want)
	}
	if got, want := cfg.SuperframeDuration(), sim.Time(122880); got != want {
		t.Errorf("SuperframeDuration = %v, want %v", got, want)
	}
	if got, want := cfg.CAPDuration(), sim.Time(61440); got != want {
		t.Errorf("CAPDuration = %v, want %v", got, want)
	}
	// 54 subslots of 1120 µs each, 960 µs guard (DESIGN.md §5).
	if got, want := cfg.SubslotDuration(), sim.Time(1120); got != want {
		t.Errorf("SubslotDuration = %v, want %v", got, want)
	}
	guard := cfg.CAPDuration() - sim.Time(cfg.Subslots)*cfg.SubslotDuration()
	if guard != 960 {
		t.Errorf("CAP guard = %v, want 960µs", guard)
	}
	if got, want := cfg.SuperframesPerMultiframe(), 2; got != want {
		t.Errorf("SuperframesPerMultiframe = %d, want %d", got, want)
	}
	if got, want := cfg.GTSPerMultiframe(), 2*7*16; got != want {
		t.Errorf("GTSPerMultiframe = %d, want %d", got, want)
	}
}

func TestConfigValidateRejectsBadValues(t *testing.T) {
	cases := []Config{
		{SO: -1, MO: 4, Subslots: 54, SubslotSymbols: 70, SymbolDuration: 16},
		{SO: 3, MO: 2, Subslots: 54, SubslotSymbols: 70, SymbolDuration: 16},
		{SO: 3, MO: 15, Subslots: 54, SubslotSymbols: 70, SymbolDuration: 16},
		{SO: 3, MO: 4, Subslots: 0, SubslotSymbols: 70, SymbolDuration: 16},
		{SO: 3, MO: 4, Subslots: 54, SubslotSymbols: 0, SymbolDuration: 16},
		{SO: 3, MO: 4, Subslots: 54, SubslotSymbols: 70, SymbolDuration: 0},
		{SO: 0, MO: 0, Subslots: 54, SubslotSymbols: 70, SymbolDuration: 16}, // subslots do not fit
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config %+v", i, cfg)
		}
	}
}

func TestSubslotMapping(t *testing.T) {
	c := defaultClock(t)
	cfg := c.Config()

	// Before the CAP (beacon slot) there is no subslot.
	if got := c.Subslot(0); got != -1 {
		t.Errorf("Subslot(0) = %d, want -1 (beacon)", got)
	}
	if got := c.Subslot(cfg.CAPStartOffset() - 1); got != -1 {
		t.Errorf("Subslot(just before CAP) = %d, want -1", got)
	}
	// First instant of the CAP is subslot 0.
	if got := c.Subslot(cfg.CAPStartOffset()); got != 0 {
		t.Errorf("Subslot(CAP start) = %d, want 0", got)
	}
	// Last subslot.
	lastStart := cfg.CAPStartOffset() + sim.Time(cfg.Subslots-1)*cfg.SubslotDuration()
	if got := c.Subslot(lastStart); got != cfg.Subslots-1 {
		t.Errorf("Subslot(last start) = %d, want %d", got, cfg.Subslots-1)
	}
	// The guard after the last subslot maps to -1 but is still InCAP.
	guard := cfg.CAPStartOffset() + sim.Time(cfg.Subslots)*cfg.SubslotDuration()
	if got := c.Subslot(guard); got != -1 {
		t.Errorf("Subslot(guard) = %d, want -1", got)
	}
	if !c.InCAP(guard) {
		t.Errorf("InCAP(guard) = false, want true")
	}
	// CFP is not in the CAP.
	if c.InCAP(cfg.CFPStartOffset()) {
		t.Errorf("InCAP(CFP start) = true, want false")
	}
	// Second superframe repeats the pattern.
	if got := c.Subslot(cfg.SuperframeDuration() + cfg.CAPStartOffset()); got != 0 {
		t.Errorf("Subslot(second superframe CAP start) = %d, want 0", got)
	}
}

func TestNextSubslotStartAdvances(t *testing.T) {
	c := defaultClock(t)
	cfg := c.Config()

	// From the beacon slot the next boundary is the CAP start.
	if got, want := c.NextSubslotStart(0), cfg.CAPStartOffset(); got != want {
		t.Errorf("NextSubslotStart(0) = %v, want %v", got, want)
	}
	// From inside subslot 0 the next boundary is subslot 1.
	t0 := cfg.CAPStartOffset()
	if got, want := c.NextSubslotStart(t0+1), t0+cfg.SubslotDuration(); got != want {
		t.Errorf("NextSubslotStart(inside subslot 0) = %v, want %v", got, want)
	}
	// Exactly on a boundary advances to the following boundary (strictly after).
	if got, want := c.NextSubslotStart(t0), t0+cfg.SubslotDuration(); got != want {
		t.Errorf("NextSubslotStart(on boundary) = %v, want %v", got, want)
	}
	// From the last subslot the next boundary is the next superframe's subslot 0.
	last := c.SubslotStart(0, cfg.Subslots-1)
	want := cfg.SuperframeDuration() + cfg.CAPStartOffset()
	if got := c.NextSubslotStart(last + 1); got != want {
		t.Errorf("NextSubslotStart(inside last subslot) = %v, want %v", got, want)
	}
	// From the CFP the next boundary is also the next superframe's subslot 0.
	if got := c.NextSubslotStart(cfg.CFPStartOffset() + 5); got != want {
		t.Errorf("NextSubslotStart(CFP) = %v, want %v", got, want)
	}
}

func TestNextSubslotStartMonotoneProperty(t *testing.T) {
	c := defaultClock(t)
	prop := func(raw uint32) bool {
		now := sim.Time(raw) // arbitrary instant within ~71 minutes
		next := c.NextSubslotStart(now)
		if next <= now {
			return false
		}
		// The returned instant must be a subslot 0..Subslots-1 boundary.
		idx := c.Subslot(next)
		if idx < 0 {
			return false
		}
		return c.SubslotStart(next, idx) == next
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSubslotInverseProperty(t *testing.T) {
	c := defaultClock(t)
	cfg := c.Config()
	prop := func(raw uint32, sub uint8) bool {
		base := sim.Time(raw)
		idx := int(sub) % cfg.Subslots
		start := c.SubslotStart(base, idx)
		// The start of subslot idx must map back to idx and be inside the CAP.
		return c.Subslot(start) == idx && c.InCAP(start)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFitsInCAP(t *testing.T) {
	c := defaultClock(t)
	cfg := c.Config()
	capStart := cfg.CAPStartOffset()
	capEnd := cfg.CFPStartOffset()

	if !c.FitsInCAP(capStart, cfg.CAPDuration()) {
		t.Errorf("full-CAP activity should fit exactly")
	}
	if c.FitsInCAP(capStart, cfg.CAPDuration()+1) {
		t.Errorf("activity longer than CAP must not fit")
	}
	if c.FitsInCAP(capEnd-10, 20) {
		t.Errorf("activity crossing CAP end must not fit")
	}
	if c.FitsInCAP(0, 10) {
		t.Errorf("activity in the beacon slot is not in the CAP")
	}
}

func TestGTSIndexRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	seen := make(map[int]bool)
	for sf := 0; sf < cfg.SuperframesPerMultiframe(); sf++ {
		for slot := 0; slot < CFPSlots; slot++ {
			for ch := 0; ch < NumChannels; ch++ {
				g := GTS{Superframe: sf, Slot: slot, Channel: ch}
				if !g.Valid(cfg) {
					t.Fatalf("%v should be valid", g)
				}
				idx := g.Index(cfg)
				if idx < 0 || idx >= cfg.GTSPerMultiframe() {
					t.Fatalf("%v index %d out of range", g, idx)
				}
				if seen[idx] {
					t.Fatalf("%v index %d collides", g, idx)
				}
				seen[idx] = true
				if back := GTSFromIndex(cfg, idx); back != g {
					t.Fatalf("round trip %v -> %d -> %v", g, idx, back)
				}
			}
		}
	}
	if len(seen) != cfg.GTSPerMultiframe() {
		t.Fatalf("covered %d indices, want %d", len(seen), cfg.GTSPerMultiframe())
	}
}

func TestGTSValidRejects(t *testing.T) {
	cfg := DefaultConfig()
	bad := []GTS{
		{Superframe: -1}, {Superframe: cfg.SuperframesPerMultiframe()},
		{Slot: -1}, {Slot: CFPSlots},
		{Channel: -1}, {Channel: NumChannels},
	}
	for _, g := range bad {
		if g.Valid(cfg) {
			t.Errorf("%v should be invalid", g)
		}
	}
}

func TestNextGTSStart(t *testing.T) {
	c := defaultClock(t)
	cfg := c.Config()
	g := GTS{Superframe: 1, Slot: 2, Channel: 5}

	first := c.NextGTSStart(0, g)
	want := cfg.SuperframeDuration() + cfg.CFPStartOffset() + 2*cfg.SlotDuration()
	if first != want {
		t.Fatalf("NextGTSStart(0) = %v, want %v", first, want)
	}
	// Strictly-after semantics: asking at the slot start returns the next period.
	second := c.NextGTSStart(first, g)
	if second != first+cfg.MultiframeDuration() {
		t.Fatalf("NextGTSStart(at start) = %v, want %v", second, first+cfg.MultiframeDuration())
	}
	// The returned instant is in the CFP.
	if c.InCAP(first) {
		t.Errorf("GTS start %v must not be in the CAP", first)
	}
}

func TestSuperframeIndexing(t *testing.T) {
	c := defaultClock(t)
	cfg := c.Config()
	d := cfg.SuperframeDuration()

	for i := int64(0); i < 5; i++ {
		at := sim.Time(i)*d + d/2
		if got := c.SuperframeIndex(at); got != i {
			t.Errorf("SuperframeIndex(%v) = %d, want %d", at, got, i)
		}
		if got := c.SuperframeStart(at); got != sim.Time(i)*d {
			t.Errorf("SuperframeStart(%v) = %v, want %v", at, got, sim.Time(i)*d)
		}
		if got, want := c.SuperframeInMultiframe(at), int(i)%2; got != want {
			t.Errorf("SuperframeInMultiframe(%v) = %d, want %d", at, got, want)
		}
	}
	if got := c.MultiframeIndex(cfg.MultiframeDuration() + 1); got != 1 {
		t.Errorf("MultiframeIndex = %d, want 1", got)
	}
}
