package scenario

// The protocol registry is populated by the protocol packages' init
// functions. QMA and the CSMA/CA variants are linked through scenario.go's
// regular imports (their registry keys back the MACKind constants); every
// further protocol is linked by one blank import below.
//
// Adding a MAC protocol therefore touches exactly two places: the protocol's
// own package (which embeds mac.Base, implements mac.Engine and calls
// mac.Register from an init function) and one import line here. No
// scenario/dsme/cmd plumbing changes are needed — see README.md, "Adding a
// MAC protocol".
import (
	_ "qma/internal/aloha"  // registers "aloha" and "slotted-aloha"
	_ "qma/internal/bandit" // registers "bandit"
	_ "qma/internal/noma"   // registers "noma" (power-level Q-learning)
)
