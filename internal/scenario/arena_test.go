package scenario

import (
	"reflect"
	"testing"

	"qma/internal/frame"
	"qma/internal/sim"
	"qma/internal/topo"
	"qma/internal/traffic"
)

// arenaConfig is a shortened hidden-node run: long enough for traffic,
// retries and learning to happen, short enough to run three times cheaply.
func arenaConfig(seed uint64) Config {
	return Config{
		Network:  topo.HiddenNode(),
		MAC:      QMA,
		Seed:     seed,
		Duration: 40 * sim.Second,
		Traffic: []TrafficSpec{
			{Origin: 0, Phases: []traffic.Phase{{Rate: 10}}, StartAt: 1 * sim.Second, MaxPackets: 200, Tag: frame.TagEval},
			{Origin: 2, Phases: []traffic.Phase{{Rate: 10}}, StartAt: 1 * sim.Second, MaxPackets: 200, Tag: frame.TagEval},
		},
		MeasureFrom: 5 * sim.Second,
	}
}

// TestArenaRunsAreByteIdentical pins the recycling contract: a run on a cold
// arena, a run on the same arena after Begin rewound it, and a run with no
// arena at all must produce identical per-node results — reuse is invisible.
func TestArenaRunsAreByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	arena := NewArena()
	cold := arenaConfig(11)
	cold.Arena = arena
	a := Run(cold)

	warm := arenaConfig(11)
	warm.Arena = arena
	b := Run(warm)

	bare := Run(arenaConfig(11))

	for i := range a.Nodes {
		na, nb, nc := a.Nodes[i], b.Nodes[i], bare.Nodes[i]
		if !reflect.DeepEqual(na, nb) {
			t.Errorf("node %d: cold vs warm arena differ:\n%+v\n%+v", i, na, nb)
		}
		if !reflect.DeepEqual(na, nc) {
			t.Errorf("node %d: arena vs no arena differ:\n%+v\n%+v", i, na, nc)
		}
	}
	if a.NetworkPDR() != bare.NetworkPDR() {
		t.Errorf("network PDR differs: %v vs %v", a.NetworkPDR(), bare.NetworkPDR())
	}
	// The per-node derived metrics must agree too (and be sane).
	for i := range a.Nodes {
		na, nc := &a.Nodes[i], &bare.Nodes[i]
		if na.PDR() != nc.PDR() || na.MeanDelay() != nc.MeanDelay() {
			t.Errorf("node %d: derived metrics differ", i)
		}
		if p := na.PDR(); p < 0 || p > 1 {
			t.Errorf("node %d: PDR = %v", i, p)
		}
		if d := na.MeanDelay(); d < 0 {
			t.Errorf("node %d: MeanDelay = %v", i, d)
		}
	}
}

// TestArenaSurvivesManyRuns reuses one arena across several different seeds
// and checks each matches its bare-run twin: the slab rewind may not leak
// state from one run into the next.
func TestArenaSurvivesManyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	arena := NewArena()
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := arenaConfig(seed)
		cfg.Arena = arena
		got := Run(cfg)
		want := Run(arenaConfig(seed))
		for i := range want.Nodes {
			if !reflect.DeepEqual(got.Nodes[i], want.Nodes[i]) {
				t.Errorf("seed %d node %d: warm-arena run diverged from bare run", seed, i)
			}
		}
	}
}
