package scenario

import (
	"testing"
	"time"

	"qma/internal/faults"
	"qma/internal/sim"
)

// faultConfig is a short hidden-node run for the fault tests: evaluation
// traffic from 10 s, 60 s total, invariant checks armed.
func faultConfig(mk MACKind, seed uint64, s faults.Schedule) Config {
	cfg := hiddenNodeConfig(mk, 5, seed)
	cfg.Duration = 60 * sim.Second
	for i := range cfg.Traffic {
		if cfg.Traffic[i].StartAt == 60*sim.Second {
			cfg.Traffic[i].StartAt = 10 * sim.Second
		}
	}
	cfg.MeasureFrom = 10 * sim.Second
	cfg.Faults = s
	cfg.InvariantChecks = true
	return cfg
}

func TestOutageSuppressesBothDirections(t *testing.T) {
	// Plain outage: the senders keep transmitting into the dead sink, so the
	// sink's receiver visibly drops their frames.
	deaf := Run(faultConfig(QMA, 3, faults.Schedule{
		Outages: []faults.Outage{{Node: 1, At: 20 * sim.Second, Duration: 5 * sim.Second}},
	}))
	if deaf.Nodes[1].MAC.FaultRxDropped == 0 {
		t.Error("sink outage dropped no inbound frames")
	}
	// Beacon-stopping outage: the senders lose sync and stand down instead.
	dark := Run(faultConfig(QMA, 3, faults.Schedule{
		Outages: []faults.Outage{{Node: 1, At: 20 * sim.Second, Duration: 5 * sim.Second, StopBeacons: true}},
	}))
	senders := dark.Nodes[0].MAC.FaultTxSuppressed + dark.Nodes[2].MAC.FaultTxSuppressed
	if senders == 0 {
		t.Error("beacon-stopping outage suppressed no sender transmissions")
	}
	clean := Run(faultConfig(QMA, 3, faults.Schedule{}))
	for name, res := range map[string]*Result{"deaf": deaf, "dark": dark} {
		if res.NetworkPDR() >= clean.NetworkPDR() {
			t.Errorf("%s outage did not reduce PDR: clean %.3f, outage %.3f", name, clean.NetworkPDR(), res.NetworkPDR())
		}
	}
}

func TestRebootWipesAndRecovers(t *testing.T) {
	for _, mk := range []MACKind{QMA, CSMAUnslotted} {
		res := Run(faultConfig(mk, 4, faults.Schedule{
			Reboots: []faults.Reboot{{Node: 0, At: 30 * sim.Second}},
		}))
		if got := res.Nodes[0].MAC.Reboots; got != 1 {
			t.Errorf("%v: node 0 counted %d reboots, want 1", mk, got)
		}
		if res.Nodes[0].Delivered == 0 {
			t.Errorf("%v: rebooted node never delivered again", mk)
		}
	}
}

func TestAckCorruptionCountsAndBites(t *testing.T) {
	res := Run(faultConfig(QMA, 5, faults.Schedule{
		AckCorruption: []faults.Window{{At: 20 * sim.Second, Duration: 3 * sim.Second}},
	}))
	var corrupted, retries uint64
	for i := range res.Nodes {
		corrupted += res.Nodes[i].MAC.AcksCorrupted
		retries += res.Nodes[i].MAC.TxFail
	}
	if corrupted == 0 {
		t.Error("ACK-corruption window corrupted no ACKs")
	}
	if retries == 0 {
		t.Error("corrupted ACKs produced no transmit failures")
	}
}

func TestEventBudgetTruncates(t *testing.T) {
	cfg := faultConfig(QMA, 6, faults.Schedule{})
	cfg.EventBudget = 1000
	res := Run(cfg)
	if !res.Truncated {
		t.Fatal("1000-event budget did not truncate a 60 s run")
	}
	full := faultConfig(QMA, 6, faults.Schedule{})
	if Run(full).Truncated {
		t.Error("unbudgeted run reports truncation")
	}
}

func TestWallBudgetTruncates(t *testing.T) {
	cfg := faultConfig(QMA, 6, faults.Schedule{})
	cfg.WallBudget = time.Nanosecond // cannot finish 60 simulated seconds
	if res := Run(cfg); !res.Truncated {
		t.Fatal("nanosecond wall budget did not truncate the run")
	}
}

func TestBadFaultSchedulePanicsWithContext(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("out-of-range fault node did not panic")
		}
	}()
	Run(faultConfig(QMA, 1, faults.Schedule{
		Reboots: []faults.Reboot{{Node: 99, At: sim.Second}},
	}))
}

// FuzzFaultSchedule throws arbitrary outage/reboot/corruption scripts at the
// hidden-node scenario with the runtime invariant checkers armed: whatever
// the script, the run must complete without tripping an invariant, conserve
// packets, and replay byte-identically.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint16(20), uint16(5), uint8(0), uint16(30), false)
	f.Add(uint8(1), uint8(0), uint16(15), uint16(10), uint8(2), uint16(45), true)
	f.Add(uint8(2), uint8(2), uint16(0), uint16(60), uint8(1), uint16(1), true)
	f.Add(uint8(3), uint8(1), uint16(59), uint16(300), uint8(0), uint16(59), false)
	f.Fuzz(func(t *testing.T, mkRaw, nodeRaw uint8, atRaw, durRaw uint16, rebootNodeRaw uint8, rebootAtRaw uint16, beacons bool) {
		macs := []MACKind{QMA, CSMAUnslotted, CSMASlotted}
		mk := macs[int(mkRaw)%len(macs)]
		node := int(nodeRaw) % 3
		at := sim.Time(atRaw%60) * sim.Second
		dur := sim.Time(durRaw%120)*sim.Second/2 + sim.Millisecond
		rebootNode := int(rebootNodeRaw) % 3
		rebootAt := sim.Time(rebootAtRaw%60) * sim.Second

		s := faults.Schedule{
			Outages:       []faults.Outage{{Node: node, At: at, Duration: dur, StopBeacons: beacons}},
			Reboots:       []faults.Reboot{{Node: rebootNode, At: rebootAt}},
			AckCorruption: []faults.Window{{At: at / 2, Duration: dur}},
			BeaconLoss:    []faults.BeaconLoss{{Node: (node + 1) % 3, At: at, Duration: dur}},
		}
		if err := s.Validate(3); err != nil {
			t.Fatalf("generated schedule invalid: %v", err)
		}
		res := Run(faultConfig(mk, uint64(mkRaw)+1, s))
		for i := range res.Nodes {
			n := &res.Nodes[i]
			if n.Delivered > n.Generated {
				t.Fatalf("node %d delivered %d > generated %d", i, n.Delivered, n.Generated)
			}
		}
		again := Run(faultConfig(mk, uint64(mkRaw)+1, s))
		for i := range res.Nodes {
			if res.Nodes[i].MAC != again.Nodes[i].MAC || res.Nodes[i].Radio != again.Nodes[i].Radio {
				t.Fatalf("node %d: identical fault runs diverged:\n%+v\n%+v", i, res.Nodes[i].MAC, again.Nodes[i].MAC)
			}
		}
		if res.Events != again.Events {
			t.Fatalf("event counts diverged: %d vs %d", res.Events, again.Events)
		}
	})
}
