// Sharded multi-cell execution: the mMTC scale-out path. A topo.City is run
// as one sub-simulation per cell — each cell owns its kernel, medium, CSR
// link arrays, busy counters, engines and traffic, so cells park on
// different cores with zero shared mutable state. Cells advance in epochs
// (one beacon interval by default); the edge-node transmissions recorded
// during an epoch are mirrored into the neighbouring shards' busy
// accounting (radio.Medium.ScheduleForeignBusy) one epoch later.
//
// Two schedulers drive the epochs. The default is dependency-driven:
// persistent workers (stats.RunPool) and a per-cell epoch counter where
// cell c may run epoch e as soon as each of its grid neighbours finished
// epoch e−1 — exactly the synchronization the one-epoch mirroring lag
// licenses — so interior cells run up to an epoch ahead of a slow hot cell
// instead of idling at a global barrier. Ready cells are dequeued
// largest-estimated-work-first (estimate = the cell's previous epoch's
// kernel events) with worker affinity, so the critical path starts early
// and a cell tends to re-run on the worker whose cache holds its arena.
// ShardedConfig.Lockstep selects the original scheduler — a global barrier
// per epoch with a single-threaded exchange — which stays pinned as the
// reference in the equivalence tests.
//
// Both schedulers produce byte-identical results for every worker count.
// Workers only ever touch their own cell's state, and the injections a cell
// applies at epoch e are deterministic: each pending inbox batch is tagged
// with its source cell and epoch, only batches tagged e−1 are folded, and
// they fold sorted by source-cell id (each batch internally in outbox
// order) — exactly the order the lock-step coordinator's cell-order
// exchange produces, independent of worker arrival.
//
// The one-epoch mirroring lag is the model's fidelity trade: cross-cell
// energy reaches a neighbour cell's CCA one beacon interval late. It is
// what makes the shards independent within an epoch — the alternative, a
// same-instant exchange, would serialize the cells. A 1-cell city has no
// boundary links, takes no injections and is byte-identical to the
// monolithic runner (TestShardedSingleCellMatchesMonolithic pins this).
package scenario

import (
	"fmt"
	"sort"
	"sync"

	"qma/internal/frame"
	"qma/internal/radio"
	"qma/internal/sim"
	"qma/internal/stats"
	"qma/internal/superframe"
	"qma/internal/topo"
	"qma/internal/traffic"
)

// ShardedConfig describes one multi-cell sharded run.
type ShardedConfig struct {
	// City is the cell-partitioned deployment; required.
	City *topo.City
	// MAC selects the channel access scheme by registry key ("" = QMA).
	MAC MACKind
	// QMA tunes QMA engines; MACOptions overrides for any protocol.
	QMA        QMAOptions
	MACOptions any
	// QueueCap and MaxRetries mirror Config.
	QueueCap   int
	MaxRetries int
	// Seed selects the random streams. Cell 0 uses it verbatim; cell c
	// derives Seed + c·φ (a fixed odd 64-bit constant), so per-cell streams
	// never collide and a 1-cell run is byte-identical to the monolithic
	// runner under the same seed.
	Seed uint64
	// Duration is the simulated time.
	Duration sim.Time
	// Rate is the per-device Poisson data rate in packets/second; every
	// routed device of every cell carries one evaluation source.
	Rate float64
	// StartAt delays traffic; MaxPackets bounds each source (0 = unbounded).
	StartAt    sim.Time
	MaxPackets int
	// Epoch is the barrier period for the boundary-interference exchange
	// (0 = one superframe, the beacon interval).
	Epoch sim.Time
	// Window is the streaming stats window in simulated time (0 = 1 s).
	Window sim.Time
	// Parallel bounds the worker pool driving the cells (0 = GOMAXPROCS,
	// 1 = sequential). Results are byte-identical for every value.
	Parallel int
	// Lockstep selects the reference scheduler: a global barrier per epoch
	// with a single-threaded boundary exchange. The default (false) is the
	// dependency-driven scheduler, which produces byte-identical results
	// without the barrier (the equivalence tests pin the two against each
	// other); Lockstep exists as the trusted baseline for those tests and
	// for profiling scheduler overhead.
	Lockstep bool
	// Superframe overrides the DSME timing (zero value selects the default).
	Superframe superframe.Config
	// EventBudget truncates each cell after this many kernel events when
	// positive (a truncated cell stops advancing and marks the result).
	EventBudget uint64
	// InvariantChecks enables the runtime self-checks in every cell.
	InvariantChecks bool

	// edgeTargets overrides the boundary-link enumeration (tests: the naive
	// unsharded reference re-derives targets quadratically from positions).
	// nil selects City.EdgeTargets.
	edgeTargets func(cell int, src frame.NodeID) []topo.BoundaryTarget
}

// CellResult carries one cell's streamed aggregates. Memory is
// O(1) + O(windows) per cell — no per-node state survives the run.
type CellResult struct {
	// Cell is the cell index; Nodes its node count (including the sink) and
	// Routed how many devices had a route (and therefore a traffic source).
	Cell   int
	Nodes  int
	Routed int
	// Generated/Delivered/DelaySum are the cell's evaluation traffic totals.
	Generated uint64
	Delivered uint64
	DelaySum  sim.Time
	// Delay is the mergeable end-to-end delay digest (seconds).
	Delay stats.Digest
	// Windows are the per-window PDR/delay accumulators.
	Windows []stats.WindowCounts
	// Radio sums the medium counters over the cell's nodes.
	Radio radio.NodeStats
	// EdgeTx counts transmissions mirrored into at least one neighbour;
	// ForeignBusy counts busy windows mirrored into this cell.
	EdgeTx      uint64
	ForeignBusy uint64
	// Events is the cell kernel's processed event count; Truncated reports
	// an exhausted per-cell event budget.
	Events    uint64
	Truncated bool
}

// PDR reports the cell's delivered/generated ratio (1 when idle).
func (c *CellResult) PDR() float64 {
	if c.Generated == 0 {
		return 1
	}
	return float64(c.Delivered) / float64(c.Generated)
}

// ShardedResult is the outcome of one sharded run.
type ShardedResult struct {
	// Cells holds one entry per cell.
	Cells []CellResult
	// Duration is the simulated time; EpochLen and Window echo the resolved
	// barrier and stats periods.
	Duration sim.Time
	EpochLen sim.Time
	Window   sim.Time
	// Epochs counts the executed barrier intervals.
	Epochs int
	// Events sums the cells' kernel events; Truncated reports any truncated
	// cell.
	Events    uint64
	Truncated bool
}

// NetworkPDR reports total delivered / total generated across all cells.
func (r *ShardedResult) NetworkPDR() float64 {
	var gen, del uint64
	for i := range r.Cells {
		gen += r.Cells[i].Generated
		del += r.Cells[i].Delivered
	}
	if gen == 0 {
		return 1
	}
	return float64(del) / float64(gen)
}

// MeanDelay reports the mean end-to-end delay over all delivered evaluation
// packets, in seconds.
func (r *ShardedResult) MeanDelay() float64 {
	var sum sim.Time
	var n uint64
	for i := range r.Cells {
		sum += r.Cells[i].DelaySum
		n += r.Cells[i].Delivered
	}
	if n == 0 {
		return 0
	}
	return (sim.Time(float64(sum) / float64(n))).Seconds()
}

// DelayDigest merges the per-cell delay digests into the network-wide
// sketch (merging is exact).
func (r *ShardedResult) DelayDigest() stats.Digest {
	var d stats.Digest
	for i := range r.Cells {
		d.Merge(&r.Cells[i].Delay)
	}
	return d
}

// CrossCellFraction reports the fraction of transmissions that were
// mirrored into at least one neighbouring cell — the boundary-interference
// coupling of the partition (0 when nothing transmitted).
func (r *ShardedResult) CrossCellFraction() float64 {
	var edge, tx uint64
	for i := range r.Cells {
		edge += r.Cells[i].EdgeTx
		tx += r.Cells[i].Radio.TxCount
	}
	if tx == 0 {
		return 0
	}
	return float64(edge) / float64(tx)
}

// cellSeedStride is the per-cell seed offset (the 64-bit golden-ratio
// constant; odd, so distinct cells never collide within uint64 wrap).
const cellSeedStride = 0x9E3779B97F4A7C15

// cellSeed derives cell c's seed. Cell 0 keeps the configured seed, which
// is what makes a 1-cell sharded run byte-identical to the monolithic one.
func cellSeed(seed uint64, cell int) uint64 {
	return seed + uint64(cell)*cellSeedStride
}

// edgeTX records one transmission by a boundary node, pending exchange.
type edgeTX struct {
	src        frame.NodeID
	channel    uint8
	start, end sim.Time
}

// foreignInj is one busy window to mirror into a cell next epoch.
type foreignInj struct {
	node       frame.NodeID
	channel    uint8
	start, end sim.Time
}

// inboxBatch is one source cell's epoch-worth of injections for one target
// cell, pending folding. The (srcCell, epoch) tag is what makes the
// dependency-driven exchange deterministic: a target running epoch e folds
// exactly the batches tagged e−1, sorted by srcCell — a batch a fast
// neighbour pushed early (tagged e) stays pending until the target reaches
// epoch e+1, whatever order workers delivered them in.
type inboxBatch struct {
	srcCell int32
	epoch   int
	inj     []foreignInj
}

// shardCell is one cell's live state during a sharded run.
type shardCell struct {
	run     *run
	routed  int
	delay   stats.Digest
	windows *stats.Windowed
	outbox  []edgeTX
	// inbox is the lock-step scheduler's injection buffer: filled by the
	// single-threaded exchange, drained at the next epoch's start.
	inbox []foreignInj
	// inboxMu guards pending, the dependency-driven scheduler's tagged
	// batches: neighbours append concurrently as they finish their epochs,
	// the cell's own job extracts its due batches at epoch start. These are
	// the only cross-cell writes in that mode.
	inboxMu sync.Mutex
	pending []inboxBatch
	// prevEvents remembers the kernel event count at the last epoch end, so
	// the scheduler prices the next epoch at the previous epoch's work.
	prevEvents uint64
	// failed latches a panic inside this cell's epoch job: the kernel state
	// is unrecoverable, so the retry the worker pool would attempt must
	// re-panic instead of silently resuming a corrupt simulation.
	failed  bool
	failure any
}

// RunSharded executes the multi-cell sharded simulation. Like Run it panics
// on configuration errors and never on simulation behaviour; a panic inside
// a cell's epoch (a simulator bug) propagates instead of being dropped.
func RunSharded(cfg ShardedConfig) *ShardedResult {
	if cfg.City == nil {
		panic("scenario: City is required")
	}
	if cfg.Duration <= 0 {
		panic("scenario: Duration must be positive")
	}
	if cfg.Rate <= 0 {
		panic("scenario: Rate must be positive")
	}
	sfCfg := cfg.Superframe
	if sfCfg == (superframe.Config{}) {
		sfCfg = superframe.DefaultConfig()
	}
	epoch := cfg.Epoch
	if epoch <= 0 {
		epoch = sfCfg.SuperframeDuration()
	}
	window := cfg.Window
	if window <= 0 {
		window = sim.Second
	}
	edgeTargets := cfg.edgeTargets
	if edgeTargets == nil {
		edgeTargets = cfg.City.EdgeTargets
	}

	city := cfg.City
	cells := make([]*shardCell, city.NumCells())

	// Build every cell as an independent SummaryOnly sub-simulation. Builds
	// are heavy at mMTC scale (engines, CSR arrays), so they run on the
	// worker pool too; each build writes only its own cell.
	if errs := stats.ForEachWorker(len(cells), cfg.Parallel, func(_, c int) {
		sc := &shardCell{windows: stats.NewWindowed(window.Seconds())}
		net := city.Cells[c]
		cellCfg := Config{
			Network:         net,
			MAC:             cfg.MAC,
			QMA:             cfg.QMA,
			MACOptions:      cfg.MACOptions,
			QueueCap:        cfg.QueueCap,
			MaxRetries:      cfg.MaxRetries,
			Seed:            cellSeed(cfg.Seed, c),
			Duration:        cfg.Duration,
			Superframe:      cfg.Superframe,
			EventBudget:     cfg.EventBudget,
			InvariantChecks: cfg.InvariantChecks,
			SummaryOnly:     true,
			OnEvalGenerate: func(_ frame.NodeID, at sim.Time) {
				sc.windows.ObserveGenerate(at.Seconds())
			},
			OnEvalDeliver: func(_ frame.NodeID, createdAt, at sim.Time) {
				delay := (at - createdAt).Seconds()
				sc.delay.Add(delay)
				sc.windows.ObserveDeliver(at.Seconds(), delay)
			},
		}
		for i := 1; i < net.NumNodes(); i++ {
			id := frame.NodeID(i)
			if net.Parent[id] < 0 {
				continue // detached device: no route, no source
			}
			cellCfg.Traffic = append(cellCfg.Traffic, TrafficSpec{
				Origin:     id,
				Phases:     []traffic.Phase{{Rate: cfg.Rate}},
				StartAt:    cfg.StartAt,
				MaxPackets: cfg.MaxPackets,
				Tag:        frame.TagEval,
			})
		}
		sc.routed = len(cellCfg.Traffic)
		sc.run = build(cellCfg)
		cells[c] = sc
	}); errs != nil {
		panic(fmt.Sprintf("scenario: sharded cell build failed: %v", errs[0]))
	}

	res := &ShardedResult{
		Cells:    make([]CellResult, len(cells)),
		Duration: cfg.Duration,
		EpochLen: epoch,
		Window:   window,
	}
	for c, sc := range cells {
		c, sc := c, sc
		cr := &res.Cells[c]
		// Record edge-node transmissions for the barrier exchange. The
		// observer changes no medium state, so interior-only cells (and
		// 1-cell cities) stay byte-identical to the monolithic run.
		sc.run.medium.SetTxObserver(func(src frame.NodeID, channel uint8, start, end sim.Time) {
			if len(edgeTargets(c, src)) == 0 {
				return
			}
			sc.outbox = append(sc.outbox, edgeTX{src: src, channel: channel, start: start, end: end})
			cr.EdgeTx++
		})
	}

	if cfg.Lockstep {
		runShardedLockstep(cfg, cells, res, epoch, edgeTargets)
	} else {
		neighbors := city.NeighborCells
		if cfg.edgeTargets != nil {
			// The boundary enumeration is overridden (tests), so the CSR-derived
			// adjacency cannot be trusted to match it; fall back to the complete
			// cell graph, which is conservative — extra dependencies only cost
			// lookahead, never correctness.
			all := make([][]int32, len(cells))
			for c := range all {
				for o := range cells {
					if o != c {
						all[c] = append(all[c], int32(o))
					}
				}
			}
			neighbors = func(c int) []int32 { return all[c] }
		}
		runShardedDep(cfg, cells, res, epoch, neighbors, edgeTargets)
	}

	for c, sc := range cells {
		sc.run.collect()
		cr := &res.Cells[c]
		cr.Cell = c
		cr.Nodes = city.Cells[c].NumNodes()
		cr.Routed = sc.routed
		s := sc.run.result.Summary
		cr.Generated, cr.Delivered, cr.DelaySum = s.Generated, s.Delivered, s.DelaySum
		cr.Delay = sc.delay
		cr.Windows = sc.windows.Windows()
		for i := 0; i < cr.Nodes; i++ {
			cr.Radio.Accumulate(sc.run.medium.Stats(frame.NodeID(i)))
		}
		cr.Events = sc.run.result.Events
		cr.Truncated = sc.run.result.Truncated
		res.Events += cr.Events
		res.Truncated = res.Truncated || cr.Truncated
	}
	return res
}

// totalEpochs counts the epoch intervals covering the duration — the epoch
// budget both schedulers run to (the last interval may be short).
func totalEpochs(duration, epoch sim.Time) int {
	return int((duration + epoch - 1) / epoch)
}

// runShardedLockstep drives the cells with the reference scheduler: one
// global barrier per epoch, then a single-threaded exchange of the recorded
// edge transmissions in cell order — trivially deterministic for every
// worker count, and the baseline the dependency-driven scheduler is pinned
// against. It exits early once every cell has exhausted its event budget
// (res.Epochs counts only epochs in which some cell could still run, which
// keeps it equal to the dependency scheduler's max per-cell epoch count).
func runShardedLockstep(cfg ShardedConfig, cells []*shardCell, res *ShardedResult, epoch sim.Time,
	edgeTargets func(cell int, src frame.NodeID) []topo.BoundaryTarget) {
	for now := sim.Time(0); now < cfg.Duration; {
		allExhausted := true
		for _, sc := range cells {
			if !sc.run.kernel.BudgetExhausted() {
				allExhausted = false
				break
			}
		}
		if allExhausted {
			break
		}
		end := now + epoch
		if end > cfg.Duration {
			end = cfg.Duration
		}
		if errs := stats.ForEachWorker(len(cells), cfg.Parallel, func(_, c int) {
			sc := cells[c]
			if sc.failed {
				panic(sc.failure) // poisoned by an earlier panic: do not resume
			}
			if sc.run.kernel.BudgetExhausted() {
				return
			}
			defer func() {
				if v := recover(); v != nil {
					sc.failed, sc.failure = true, v
					panic(v)
				}
			}()
			for _, inj := range sc.inbox {
				sc.run.medium.ScheduleForeignBusy(inj.node, inj.channel, inj.start, inj.end)
			}
			res.Cells[c].ForeignBusy += uint64(len(sc.inbox))
			sc.inbox = sc.inbox[:0]
			sc.run.kernel.Run(end)
		}); errs != nil {
			panic(fmt.Sprintf("scenario: sharded epoch failed: %v", errs[0]))
		}
		for c, sc := range cells {
			for _, tx := range sc.outbox {
				for _, tgt := range edgeTargets(c, tx.src) {
					dst := cells[tgt.Cell]
					if dst.run.kernel.BudgetExhausted() {
						continue
					}
					// Mirrored one epoch late: the earliest possible start
					// (epoch begin + epoch) is exactly the next barrier, so
					// the injection is never in the target kernel's past.
					dst.inbox = append(dst.inbox, foreignInj{
						node:    tgt.Node,
						channel: tx.channel,
						start:   tx.start + epoch,
						end:     tx.end + epoch,
					})
				}
			}
			sc.outbox = sc.outbox[:0]
		}
		res.Epochs++
		now = end
	}
}

// runShardedDep drives the cells with the dependency-driven scheduler on a
// persistent worker pool: cell c may run epoch e as soon as every neighbour
// finished epoch e−1 (or can never reach it because its budget ran out), so
// no cell ever waits on a non-neighbour and adjacent cells skew by at most
// one epoch. One pool item = one (cell, epoch); completing an epoch
// advances the cell's counter and re-evaluates readiness for the cell and
// its neighbours — the only cells whose readiness that completion can have
// changed, since the adjacency is symmetric.
//
// Determinism: the epoch job touches only its own cell's state except for
// appending one (srcCell, epoch)-tagged batch per neighbouring inbox under
// that inbox's lock; the fold at epoch start selects exactly the batches
// tagged e−1 and sorts them by source cell, reproducing the lock-step
// coordinator's cell-order exchange regardless of arrival order. Budget
// equivalence: the lock-step exchange skips targets already exhausted at
// the barrier, while this scheduler always publishes and instead never
// schedules an exhausted cell again — its pending batches are simply never
// folded, so per-cell ForeignBusy counts match.
func runShardedDep(cfg ShardedConfig, cells []*shardCell, res *ShardedResult, epoch sim.Time,
	neighbors func(cell int) []int32,
	edgeTargets func(cell int, src frame.NodeID) []topo.BoundaryTarget) {
	total := totalEpochs(cfg.Duration, epoch)
	workers := stats.Workers(cfg.Parallel)
	if workers > len(cells) {
		workers = len(cells)
	}

	// Scheduler state, guarded by schedMu. done[c] counts c's completed
	// epochs; queued marks a cell with an item pushed but not completed, so
	// readiness re-evaluation never double-schedules; prio and lastWorker
	// carry the work estimate and arena affinity into the next item.
	var schedMu sync.Mutex
	done := make([]int, len(cells))
	queued := make([]bool, len(cells))
	exhausted := make([]bool, len(cells))
	prio := make([]uint64, len(cells))
	lastWorker := make([]int, len(cells))

	// Every cell is ready for epoch 0; price it at the routed source count
	// (the only load signal before any epoch ran) and spread affinity
	// round-robin.
	initial := make([]stats.Item, len(cells))
	for c, sc := range cells {
		queued[c] = true
		prio[c] = uint64(sc.routed)
		lastWorker[c] = c % workers
		initial[c] = stats.Item{ID: c, Priority: prio[c], Affinity: lastWorker[c]}
	}

	job := func(w, c int) []stats.Item {
		sc := cells[c]
		if sc.failed {
			panic(sc.failure) // poisoned by an earlier panic: do not resume
		}
		defer func() {
			if v := recover(); v != nil {
				sc.failed, sc.failure = true, v
				panic(v)
			}
		}()
		schedMu.Lock()
		e := done[c]
		schedMu.Unlock()

		// Fold the injections due this epoch: extract under the inbox lock,
		// then apply outside it in deterministic order.
		if e > 0 {
			sc.inboxMu.Lock()
			var fold []inboxBatch
			rest := sc.pending[:0]
			for _, b := range sc.pending {
				if b.epoch == e-1 {
					fold = append(fold, b)
				} else {
					rest = append(rest, b)
				}
			}
			sc.pending = rest
			sc.inboxMu.Unlock()
			sort.Slice(fold, func(a, b int) bool { return fold[a].srcCell < fold[b].srcCell })
			for _, b := range fold {
				for _, inj := range b.inj {
					sc.run.medium.ScheduleForeignBusy(inj.node, inj.channel, inj.start, inj.end)
				}
				res.Cells[c].ForeignBusy += uint64(len(b.inj))
			}
		}

		end := sim.Time(e+1) * epoch
		if end > cfg.Duration {
			end = cfg.Duration
		}
		sc.run.kernel.Run(end)

		// Publish this epoch's outbox as one tagged batch per target cell,
		// preserving outbox order within each batch. This runs even when the
		// budget just ran out — the lock-step exchange also forwards the
		// exhausting epoch's transmissions.
		if len(sc.outbox) > 0 {
			byDst := map[int32][]foreignInj{}
			var order []int32
			for _, tx := range sc.outbox {
				for _, tgt := range edgeTargets(c, tx.src) {
					if _, ok := byDst[tgt.Cell]; !ok {
						order = append(order, tgt.Cell)
					}
					byDst[tgt.Cell] = append(byDst[tgt.Cell], foreignInj{
						node:    tgt.Node,
						channel: tx.channel,
						start:   tx.start + epoch,
						end:     tx.end + epoch,
					})
				}
			}
			for _, dc := range order {
				dst := cells[dc]
				dst.inboxMu.Lock()
				dst.pending = append(dst.pending, inboxBatch{srcCell: int32(c), epoch: e, inj: byDst[dc]})
				dst.inboxMu.Unlock()
			}
			sc.outbox = sc.outbox[:0]
		}

		ev := sc.run.kernel.Processed()
		delta := ev - sc.prevEvents
		sc.prevEvents = ev

		schedMu.Lock()
		defer schedMu.Unlock()
		done[c] = e + 1
		queued[c] = false
		exhausted[c] = sc.run.kernel.BudgetExhausted()
		prio[c] = delta
		lastWorker[c] = w
		var pushes []stats.Item
		consider := func(m int) {
			if queued[m] || exhausted[m] || done[m] >= total || cells[m].failed {
				return
			}
			for _, n := range neighbors(m) {
				// A neighbour that can never reach done[m] epochs (budget ran
				// out earlier) stops constraining m — it will produce no more
				// batches, exactly like its empty epochs in lock-step.
				if done[n] < done[m] && !exhausted[n] {
					return
				}
			}
			queued[m] = true
			pushes = append(pushes, stats.Item{ID: m, Priority: prio[m], Affinity: lastWorker[m]})
		}
		consider(c)
		for _, n := range neighbors(c) {
			consider(int(n))
		}
		return pushes
	}

	if errs := stats.RunPool(workers, initial, job); errs != nil {
		panic(fmt.Sprintf("scenario: sharded epoch failed: %v", errs[0]))
	}

	// The pool drained: every cell must have either run all its epochs or
	// stopped on an exhausted budget — anything else is a scheduler bug, and
	// silently returning would hand out a partial result.
	for c := range cells {
		if done[c] < total && !exhausted[c] {
			panic(fmt.Sprintf("scenario: sharded scheduler stalled: cell %d stopped at epoch %d of %d", c, done[c], total))
		}
		if done[c] > res.Epochs {
			res.Epochs = done[c]
		}
	}
}
