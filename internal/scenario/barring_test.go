package scenario

import (
	"testing"

	"qma/internal/barring"
	"qma/internal/mac"
	"qma/internal/sim"
)

// barringConfig is a deliberately overloaded hidden-node run for the
// access-barring tests: δ=25 per sender saturates the pair, invariant checks
// armed so a miscounted or double-released frame fails loudly.
func barringConfig(mk MACKind, seed uint64, b barring.Config) Config {
	cfg := hiddenNodeConfig(mk, 25, seed)
	cfg.Duration = 100 * sim.Second
	for i := range cfg.Traffic {
		if cfg.Traffic[i].StartAt == 60*sim.Second {
			cfg.Traffic[i].StartAt = 10 * sim.Second
		}
	}
	cfg.MeasureFrom = 10 * sim.Second
	cfg.Barring = b
	cfg.InvariantChecks = true
	return cfg
}

// TestBarringBitesUnderOverload pins that every controller policy actually
// gates channel access once the offered load saturates the pair, without
// locking the network out entirely.
func TestBarringBitesUnderOverload(t *testing.T) {
	for _, b := range []barring.Config{
		{Policy: barring.PolicyFixed, P: 0.3},
		{Policy: barring.PolicyAIMD},
		{Policy: barring.PolicyPID},
	} {
		res := Run(barringConfig(CSMAUnslotted, 9, b))
		var barred, delivered uint64
		for i := range res.Nodes {
			barred += res.Nodes[i].MAC.Barred
			delivered += res.Nodes[i].Delivered
		}
		if barred == 0 {
			t.Errorf("%s: overloaded run barred no attempts", b.Policy)
		}
		if delivered == 0 {
			t.Errorf("%s: barring locked the network out entirely", b.Policy)
		}
	}
}

// TestZeroBarringDrawsNothing pins the subsystem's core guarantee one layer
// below the public API: a disabled barring config yields a run identical to
// one that never mentions barring, per-node counters included.
func TestZeroBarringDrawsNothing(t *testing.T) {
	clean := Run(hiddenNodeConfig(QMA, 5, 7))
	cfg := hiddenNodeConfig(QMA, 5, 7)
	cfg.Barring = barring.Config{}
	cfg.DropPolicy = mac.TailDrop
	zero := Run(cfg)
	for i := range clean.Nodes {
		if clean.Nodes[i].MAC != zero.Nodes[i].MAC || clean.Nodes[i].Radio != zero.Nodes[i].Radio {
			t.Fatalf("node %d: zero-valued barring changed the run:\n%+v\n%+v",
				i, clean.Nodes[i].MAC, zero.Nodes[i].MAC)
		}
	}
	if clean.Events != zero.Events {
		t.Fatalf("event counts diverged: %d vs %d", clean.Events, zero.Events)
	}
}

// TestDeadlineDropCountsAtScenarioLevel drives the deadline drop policy
// through a saturated run: expired frames must be evicted and counted, and
// the invariant checkers must stay quiet (each evicted frame released
// exactly once). The deadline is tight (100 ms) because CSMA's own retry
// exhaustion already churns the queue on a sub-second scale under overload.
func TestDeadlineDropCountsAtScenarioLevel(t *testing.T) {
	cfg := barringConfig(CSMAUnslotted, 11, barring.Config{})
	cfg.DropPolicy = mac.DeadlineDrop
	cfg.DropDeadline = 100 * sim.Millisecond
	res := Run(cfg)
	var deadline uint64
	for i := range res.Nodes {
		deadline += res.Nodes[i].MAC.DeadlineDrops
	}
	if deadline == 0 {
		t.Error("saturated run with a 2 s residence deadline evicted nothing")
	}
}

// FuzzBarringScenario throws arbitrary barring controllers, drop policies
// and offered loads at the hidden-node scenario with the runtime invariant
// checkers armed: whatever the configuration, the run must complete without
// tripping an invariant, conserve packets, and replay byte-identically.
func FuzzBarringScenario(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(50), uint8(10), uint8(0), uint16(0))
	f.Add(uint8(1), uint8(1), uint8(5), uint8(20), uint8(1), uint16(2))
	f.Add(uint8(2), uint8(2), uint8(100), uint8(1), uint8(2), uint16(60))
	f.Add(uint8(3), uint8(1), uint8(0), uint8(30), uint8(1), uint16(1))
	f.Fuzz(func(t *testing.T, mkRaw, polRaw, pRaw, deltaRaw, dropRaw uint8, deadlineRaw uint16) {
		macs := []MACKind{QMA, CSMAUnslotted, CSMASlotted}
		mk := macs[int(mkRaw)%len(macs)]
		policies := []barring.Policy{barring.PolicyFixed, barring.PolicyAIMD, barring.PolicyPID}
		drops := []mac.DropPolicy{mac.TailDrop, mac.DropOldest, mac.DeadlineDrop}

		b := barring.Config{
			Policy: policies[int(polRaw)%len(policies)],
			P:      float64(pRaw%101) / 100,
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("generated barring config invalid: %v", err)
		}
		build := func() Config {
			cfg := barringConfig(mk, uint64(mkRaw)+1, b)
			cfg.Duration = 40 * sim.Second
			for i := range cfg.Traffic {
				cfg.Traffic[i].Phases[0].Rate = float64(deltaRaw%30) + 1
				cfg.Traffic[i].MaxPackets = 200
			}
			cfg.DropPolicy = drops[int(dropRaw)%len(drops)]
			cfg.DropDeadline = sim.Time(deadlineRaw%90) * sim.Second
			return cfg
		}
		res := Run(build())
		for i := range res.Nodes {
			n := &res.Nodes[i]
			if n.Delivered > n.Generated {
				t.Fatalf("node %d delivered %d > generated %d", i, n.Delivered, n.Generated)
			}
		}
		again := Run(build())
		for i := range res.Nodes {
			if res.Nodes[i].MAC != again.Nodes[i].MAC || res.Nodes[i].Radio != again.Nodes[i].Radio {
				t.Fatalf("node %d: identical barring runs diverged:\n%+v\n%+v",
					i, res.Nodes[i].MAC, again.Nodes[i].MAC)
			}
		}
		if res.Events != again.Events {
			t.Fatalf("event counts diverged: %d vs %d", res.Events, again.Events)
		}
	})
}
