package scenario

import (
	"reflect"
	"testing"

	"qma/internal/sim"
	"qma/internal/topo"
)

// TestShardedDependencyMatchesLockstep is the scheduler-equivalence
// contract: the dependency-driven scheduler must be byte-identical to the
// lock-step reference — per-cell events, digests, windows, radio counters,
// foreign-busy counts, epoch count — at every worker count.
func TestShardedDependencyMatchesLockstep(t *testing.T) {
	city := topo.NewCity(topo.CityConfig{Nodes: 280, CellsX: 2, CellsY: 2, Seed: 21})
	cfg := ShardedConfig{
		City:     city,
		Seed:     21,
		Duration: 2 * sim.Second,
		Rate:     2.0,
		StartAt:  sim.Second / 2,
		Lockstep: true,
		Parallel: 1,
	}
	ref := RunSharded(cfg)
	if ref.NetworkPDR() <= 0 || ref.Events == 0 {
		t.Fatalf("degenerate reference run: PDR %v, events %d", ref.NetworkPDR(), ref.Events)
	}
	for _, workers := range []int{1, 2, 4} {
		dep := cfg
		dep.Lockstep = false
		dep.Parallel = workers
		got := RunSharded(dep)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("dependency-driven run (parallel=%d) differs from lock-step reference:\n%+v\n%+v",
				workers, got, ref)
		}
	}
}

// TestShardedHotCellDeterministic pins the scheduler on the workload it was
// built for: one cell with roughly 10× the per-cell load of the others, so
// under lock-step every other cell idles at the barrier while the hot cell
// finishes. The result must still be byte-identical across worker counts
// and against the lock-step reference. Runs in -short so CI exercises it
// under -race.
func TestShardedHotCellDeterministic(t *testing.T) {
	city := topo.NewCity(topo.CityConfig{
		Nodes: 240, CellsX: 2, CellsY: 2, Seed: 33,
		HotspotCell: 0, HotspotFraction: 0.7,
	})
	hot, rest := city.Cells[0].NumNodes(), 0
	for _, net := range city.Cells[1:] {
		rest += net.NumNodes()
	}
	if hot*2 < rest*3 {
		t.Fatalf("hotspot cell holds %d nodes vs %d elsewhere — not imbalanced enough", hot, rest)
	}
	cfg := ShardedConfig{
		City:     city,
		Seed:     33,
		Duration: 2 * sim.Second,
		Rate:     2.0,
		StartAt:  sim.Second / 2,
		Lockstep: true,
		Parallel: 1,
	}
	ref := RunSharded(cfg)
	if ref.NetworkPDR() <= 0 {
		t.Fatalf("degenerate run: PDR %v", ref.NetworkPDR())
	}
	for _, workers := range []int{1, 2, 4} {
		dep := cfg
		dep.Lockstep = false
		dep.Parallel = workers
		got := RunSharded(dep)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("hot-cell run (parallel=%d) differs from lock-step reference:\n%+v\n%+v",
				workers, got, ref)
		}
	}
}

// TestShardedBudgetEarlyExit pins the early-exit satellite: once every
// cell's event budget is exhausted the epoch loop must stop instead of
// spinning empty epochs to Duration, in both schedulers, with identical
// truncated results and epoch counts.
func TestShardedBudgetEarlyExit(t *testing.T) {
	city := topo.NewCity(topo.CityConfig{Nodes: 240, CellsX: 2, CellsY: 2, Seed: 4})
	cfg := ShardedConfig{
		City:        city,
		Seed:        4,
		Duration:    30 * sim.Second,
		Rate:        2.0,
		StartAt:     sim.Second / 4,
		EventBudget: 20_000,
		Lockstep:    true,
		Parallel:    2,
	}
	ref := RunSharded(cfg)
	if !ref.Truncated {
		t.Fatal("budget did not truncate the run; raise Duration or lower EventBudget")
	}
	total := totalEpochs(cfg.Duration, ref.EpochLen)
	if ref.Epochs >= total {
		t.Fatalf("lock-step ran %d epochs of %d despite exhausted budgets — no early exit", ref.Epochs, total)
	}
	dep := cfg
	dep.Lockstep = false
	got := RunSharded(dep)
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("truncated dependency-driven run differs from lock-step reference:\n%+v\n%+v", got, ref)
	}
	for i := range ref.Cells {
		if !ref.Cells[i].Truncated {
			t.Errorf("cell %d not truncated — early exit should only fire once every cell is done", i)
		}
	}
}

// TestShardedLockstepFullDurationEpochs pins that a run whose budget never
// exhausts still executes every epoch interval (the early exit must not
// fire spuriously) and that both schedulers agree on the count.
func TestShardedLockstepFullDurationEpochs(t *testing.T) {
	city := topo.NewCity(topo.CityConfig{Nodes: 120, CellsX: 1, CellsY: 1, Seed: 2})
	cfg := ShardedConfig{
		City:     city,
		Seed:     2,
		Duration: sim.Second,
		Rate:     1.0,
		Lockstep: true,
	}
	ref := RunSharded(cfg)
	if want := totalEpochs(cfg.Duration, ref.EpochLen); ref.Epochs != want {
		t.Fatalf("lock-step executed %d epochs, want %d", ref.Epochs, want)
	}
	dep := cfg
	dep.Lockstep = false
	if got := RunSharded(dep); got.Epochs != ref.Epochs {
		t.Fatalf("dependency-driven executed %d epochs, lock-step %d", got.Epochs, ref.Epochs)
	}
}
