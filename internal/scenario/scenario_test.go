package scenario

import (
	"testing"

	"qma/internal/frame"
	"qma/internal/sim"
	"qma/internal/topo"
	"qma/internal/traffic"
)

// hiddenNodeConfig reproduces the §6.1 setup at reduced scale: nodes A and C
// send Poisson traffic to the sink B, with low-rate management traffic from
// t=0 standing in for the paper's association phase.
func hiddenNodeConfig(mk MACKind, delta float64, seed uint64) Config {
	return Config{
		Network:  topo.HiddenNode(),
		MAC:      mk,
		Seed:     seed,
		Duration: 160 * sim.Second,
		Traffic: []TrafficSpec{
			{Origin: 0, Phases: []traffic.Phase{{Rate: 0.2}}, StartAt: 1 * sim.Second, Tag: frame.TagManagement},
			{Origin: 2, Phases: []traffic.Phase{{Rate: 0.2}}, StartAt: 1 * sim.Second, Tag: frame.TagManagement},
			{Origin: 0, Phases: []traffic.Phase{{Rate: delta}}, StartAt: 60 * sim.Second, MaxPackets: 500, Tag: frame.TagEval},
			{Origin: 2, Phases: []traffic.Phase{{Rate: delta}}, StartAt: 60 * sim.Second, MaxPackets: 500, Tag: frame.TagEval},
		},
		MeasureFrom: 60 * sim.Second,
	}
}

func TestHiddenNodeQMABeatsCSMA(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	delta := 25.0
	qmaRes := Run(hiddenNodeConfig(QMA, delta, 1))
	unslRes := Run(hiddenNodeConfig(CSMAUnslotted, delta, 1))

	qmaPDR, csmaPDR := qmaRes.NetworkPDR(), unslRes.NetworkPDR()
	t.Logf("δ=%.0f: QMA PDR=%.3f, unslotted CSMA/CA PDR=%.3f", delta, qmaPDR, csmaPDR)

	// The paper's headline: at δ=25 packets/s QMA keeps a high PDR while
	// CSMA/CA collapses in the hidden-node scenario (Fig. 7: 97% vs <3.5%).
	if qmaPDR < 0.8 {
		t.Errorf("QMA PDR = %.3f, want >= 0.8 in the hidden-node scenario", qmaPDR)
	}
	if csmaPDR > qmaPDR-0.3 {
		t.Errorf("CSMA PDR = %.3f vs QMA %.3f: expected a decisive QMA win", csmaPDR, qmaPDR)
	}
	// All generated packets are accounted for.
	for _, n := range qmaRes.Nodes {
		if n.Delivered > n.Generated {
			t.Errorf("node %s delivered %d > generated %d", n.Label, n.Delivered, n.Generated)
		}
	}
}

func TestHiddenNodeLowRateBothWork(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	// At δ=1 packet/s both schemes deliver nearly everything (Fig. 7, left
	// side: the performance difference becomes smaller for lower rates).
	for _, mk := range []MACKind{QMA, CSMAUnslotted, CSMASlotted} {
		res := Run(hiddenNodeConfig(mk, 1, 2))
		if pdr := res.NetworkPDR(); pdr < 0.9 {
			t.Errorf("%v: PDR = %.3f at δ=1, want >= 0.9", mk, pdr)
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	a := Run(hiddenNodeConfig(QMA, 10, 7))
	b := Run(hiddenNodeConfig(QMA, 10, 7))
	for i := range a.Nodes {
		na, nb := a.Nodes[i], b.Nodes[i]
		if na.Generated != nb.Generated || na.Delivered != nb.Delivered ||
			na.DelaySum != nb.DelaySum || na.MAC != nb.MAC || na.Radio != nb.Radio {
			t.Errorf("node %d differs between identical runs:\n%+v\n%+v", i, na, nb)
		}
	}
	c := Run(hiddenNodeConfig(QMA, 10, 8))
	same := true
	for i := range a.Nodes {
		if a.Nodes[i].MAC != c.Nodes[i].MAC {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical MAC counters (suspicious)")
	}
}

func TestQMASchedulesAreCollisionFree(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	res := Run(hiddenNodeConfig(QMA, 25, 3))
	// §6.1.3: "a collision-free schedule of subslots is created ... nodes A
	// and C never select action QCCA or QSend in the same subslot" in the
	// final policy.
	a, c := res.Nodes[0].Policy, res.Nodes[2].Policy
	if a == nil || c == nil {
		t.Fatal("policies not collected")
	}
	conflicts := 0
	txA, txC := 0, 0
	for m := range a {
		aTX := a[m] != 0 // not QBackoff
		cTX := c[m] != 0
		if aTX {
			txA++
		}
		if cTX {
			txC++
		}
		if aTX && cTX {
			conflicts++
		}
	}
	t.Logf("final policies: A claims %d subslots, C claims %d, conflicts %d", txA, txC, conflicts)
	if txA == 0 || txC == 0 {
		t.Errorf("both nodes should claim transmission subslots (A=%d, C=%d)", txA, txC)
	}
	if conflicts > 1 {
		t.Errorf("%d conflicting subslots in final policies, want <= 1", conflicts)
	}
}

func TestSamplingProducesSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	cfg := hiddenNodeConfig(QMA, 10, 4)
	cfg.Duration = 30 * sim.Second
	cfg.SamplePeriod = res122ms()
	res := Run(cfg)
	n := res.Nodes[0]
	if n.CumQ == nil || n.CumQ.Len() == 0 {
		t.Fatal("cumulative-Q series missing")
	}
	if n.Rho == nil || n.Rho.Len() != n.CumQ.Len() {
		t.Fatal("rho series missing or mismatched")
	}
	if n.QueueSeries == nil || n.QueueSeries.Len() == 0 {
		t.Fatal("queue series missing")
	}
	// Sampled roughly every superframe for 30 s.
	want := int(30 * sim.Second / res122ms())
	if n.CumQ.Len() < want-2 || n.CumQ.Len() > want+2 {
		t.Errorf("series length = %d, want ≈ %d", n.CumQ.Len(), want)
	}
}

func res122ms() sim.Time { return 122880 * sim.Microsecond }
