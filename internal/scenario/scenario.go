// Package scenario wires topologies, MAC engines, traffic generators and
// instrumentation into complete, reproducible simulation runs. Every
// experiment of the evaluation (and the public qma facade) builds on Run:
// given a Config and a seed it produces the per-node metrics the paper's
// figures report — PDR, end-to-end delay, queue levels, cumulative Q-values,
// exploration rates and slot utilization.
package scenario

import (
	"fmt"
	"time"

	"qma/internal/barring"
	"qma/internal/core"
	"qma/internal/csma"
	"qma/internal/faults"
	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/radio"
	"qma/internal/sim"
	"qma/internal/stats"
	"qma/internal/superframe"
	"qma/internal/topo"
	"qma/internal/traffic"
)

// MACKind selects the channel access scheme under test by its registry key
// (see internal/mac's protocol registry). The empty string selects QMA.
type MACKind = mac.Name

// Registry keys of the protocols every evaluation track compares. Further
// protocols (internal/aloha, internal/bandit, ...) are addressed by the
// constants their own packages export.
const (
	// QMA is the paper's Q-learning MAC.
	QMA MACKind = core.ProtocolName
	// CSMAUnslotted is the unslotted CSMA/CA baseline.
	CSMAUnslotted MACKind = csma.ProtoUnslotted
	// CSMASlotted is the slotted CSMA/CA baseline.
	CSMASlotted MACKind = csma.ProtoSlotted
)

// TableKind selects the Q-value storage for QMA nodes.
type TableKind = core.TableKind

const (
	// TableFloat is the float64 reference table.
	TableFloat = core.TableFloat
	// TableFixed is the Q8.8 integer table (§3.2 embedded variant).
	TableFixed = core.TableFixed
	// TableQuant is the 8-bit saturating table (§7 future-work variant).
	TableQuant = core.TableQuant
)

// QMAOptions tunes the QMA engines of a scenario.
type QMAOptions = core.Options

// TrafficSpec attaches a Poisson data source to a node.
type TrafficSpec struct {
	// Origin is the generating node.
	Origin frame.NodeID
	// Phases is the cyclic rate schedule (packets/second).
	Phases []traffic.Phase
	// StartAt delays generation.
	StartAt sim.Time
	// MaxPackets bounds generation (0 = unbounded).
	MaxPackets int
	// Tag classifies the frames (evaluation vs management).
	Tag frame.Tag
	// MPDUBytes overrides the default frame size when positive.
	MPDUBytes int
}

// BroadcastSpec attaches a periodic broadcast source to a node.
type BroadcastSpec struct {
	// Origin is the broadcasting node.
	Origin frame.NodeID
	// Period is the mean broadcast interval.
	Period sim.Time
	// StartAt delays the first broadcast.
	StartAt sim.Time
}

// FadeSpec schedules a deterministic deep fade: from At until At+Duration
// every frame to or from Node is lost at delivery time (the air stays
// occupied, so the disturbance is visible to carrier sensing and learning).
type FadeSpec struct {
	Node     frame.NodeID
	At       sim.Time
	Duration sim.Time
}

// ChurnSpec schedules a node leaving (Leave true) or rejoining the network
// at the given instant. Link re-classification is incremental (O(degree)).
type ChurnSpec struct {
	Node  frame.NodeID
	At    sim.Time
	Leave bool
}

// MoveSpec schedules a waypoint position update. Moves require a
// position-based topology (radio.MobileTopology); the run operates on a
// private clone so the shared Network stays immutable across replications.
type MoveSpec struct {
	Node frame.NodeID
	At   sim.Time
	To   radio.Position
}

// DynamicsConfig describes the time-varying behaviour of a run. The zero
// value disables every mechanism, in which case the run is guaranteed to be
// byte-identical to a pre-dynamics build: no extra random draws, no extra
// events, identical link state.
type DynamicsConfig struct {
	// Gilbert is the per-link burst-error process (zero value = off).
	Gilbert radio.GilbertElliott
	// Fades, Churn and Moves are the scheduled disturbances, applied in
	// slice order when instants coincide.
	Fades []FadeSpec
	Churn []ChurnSpec
	Moves []MoveSpec
}

// Enabled reports whether any dynamics mechanism is configured.
func (d *DynamicsConfig) Enabled() bool {
	return d.Gilbert.Enabled() || len(d.Fades) > 0 || len(d.Churn) > 0 || len(d.Moves) > 0
}

// Config describes one run.
type Config struct {
	// Network is the topology with routing; required.
	Network *topo.Network
	// MAC selects the channel access scheme by registry key ("" = QMA).
	MAC MACKind
	// QMA tunes QMA engines (ignored for other protocols).
	QMA QMAOptions
	// MACOptions carries protocol-specific options for non-QMA protocols
	// (e.g. csma.Options, aloha.Options, bandit.Options); nil selects the
	// protocol's defaults. When set it also overrides QMA for QMA runs.
	MACOptions any
	// CaptureThresholdDB enables receiver-side SINR capture on the medium:
	// the strongest of several overlapping frames still decodes when its
	// power clears the sum of the interferers by this many dB (<= 0: capture
	// disabled, every overlap collides — the byte-identical default).
	CaptureThresholdDB float64
	// Superframe overrides the DSME timing (zero value selects the default).
	Superframe superframe.Config
	// QueueCap bounds the transmit queues (0 selects the paper's 8).
	QueueCap int
	// MaxRetries is NR: 0 selects the standard's 3, negative disables
	// retransmissions entirely.
	MaxRetries int
	// Seed selects the run's random streams; replications vary it.
	Seed uint64
	// Duration is the simulated time.
	Duration sim.Time
	// Traffic are the unicast data sources.
	Traffic []TrafficSpec
	// Broadcasts are the periodic broadcast sources.
	Broadcasts []BroadcastSpec
	// SamplePeriod enables time-series sampling of cumulative Q, ρ and
	// queue levels at this period (0 disables; the figures sample once per
	// superframe, 122.88 ms).
	SamplePeriod sim.Time
	// MeasureFrom restarts queue-level averaging at this instant so warm-up
	// does not bias the Fig. 8 metric.
	MeasureFrom sim.Time
	// Dynamics configures time-varying channels and node churn (zero value:
	// static run, byte-identical to the pre-dynamics simulator).
	Dynamics DynamicsConfig
	// Faults is the deterministic infrastructure fault script — sink
	// outages, node reboots, ACK corruption, beacon loss (zero value: no
	// faults, byte-identical to a fault-free build).
	Faults faults.Schedule
	// Barring configures sink-side load-adaptive access-class barring: once
	// per beacon interval the sink observes the medium's congestion and
	// broadcasts a barring factor p with the (implicit) beacon; nodes gate
	// fresh channel-access attempts on a Bernoulli(p) draw. The zero value
	// disables barring entirely — no extra random streams, no extra events,
	// byte-identical to a pre-barring build.
	Barring barring.Config
	// DropPolicy selects how a full transmit queue makes room for an
	// arriving frame: tail-drop (zero value, reject the arrival — the
	// pre-backpressure behaviour), drop-oldest, or deadline-drop. See
	// mac.DropPolicy.
	DropPolicy mac.DropPolicy
	// DropDeadline is the residence deadline for mac.DeadlineDrop (0 selects
	// 16 superframes).
	DropDeadline sim.Time
	// EventBudget truncates the run after this many kernel events when
	// positive; WallBudget truncates it after this much real time. Both mark
	// Result.Truncated. Replicated sweeps use them to bound runaway runs.
	EventBudget uint64
	WallBudget  time.Duration
	// SummaryOnly skips materializing the per-node NodeResult slice: the run
	// accumulates only network-wide totals (generated, delivered, delay sum)
	// into Result.Summary, so result memory is O(1) instead of O(N) — the
	// mMTC scale-out path, where N reaches 100k–1M per run. Per-node
	// observations remain available through the OnEvalGenerate/OnEvalDeliver
	// hooks. Incompatible with SamplePeriod (per-node series need per-node
	// results).
	SummaryOnly bool
	// InvariantChecks enables the runtime self-checks of the kernel, the
	// medium and the frame pool for this run (tests and fuzz harnesses).
	InvariantChecks bool
	// Arena, when non-nil, recycles the run's frame pool and per-node
	// hot-state slab. Replicated sweeps pass one Arena per worker so
	// back-to-back runs stop re-allocating their node state; results are
	// byte-identical with or without it. The Arena must not be shared by
	// concurrent runs.
	Arena *Arena
	// OnEvalGenerate and OnEvalDeliver observe evaluation traffic as it is
	// generated and as it reaches the sink — the dynamics experiments use
	// them to compute windowed PDR and post-disturbance recovery times.
	// Either may be nil.
	OnEvalGenerate func(origin frame.NodeID, at sim.Time)
	OnEvalDeliver  func(origin frame.NodeID, createdAt, at sim.Time)
}

// NodeResult carries everything measured at one node.
type NodeResult struct {
	// ID is the dense node id, Label the paper's name for it.
	ID    frame.NodeID
	Label string
	// Generated counts evaluation packets originated here; Delivered counts
	// evaluation packets from this origin accepted at their sink; DelaySum
	// accumulates their end-to-end delays.
	Generated uint64
	Delivered uint64
	DelaySum  sim.Time
	// AvgQueueLevel is the time-averaged transmit-queue occupancy since
	// MeasureFrom (Fig. 8).
	AvgQueueLevel float64
	// MAC are the shared MAC counters, Radio the medium-level counters.
	MAC   mac.Stats
	Radio radio.NodeStats
	// PowerAirtime is the node's TX airtime broken down by power level
	// (reference-power remainder first). Nil unless some node of the run
	// transmitted at reduced power (see radio.Medium.TxAirtimeByPower).
	PowerAirtime []radio.PowerAirtime
	// QMA-only: engine counters, final policy, per-subslot action counts and
	// sampled series (nil/empty for CSMA nodes or when sampling is off).
	Engine       core.Stats
	Policy       []int
	ActionCounts [][core.NumActions]uint64
	// TableBytes is the Q-table's value-storage footprint in bytes — the
	// §3.2 resource figure for the selected representation (0 for CSMA
	// nodes, which hold no table).
	TableBytes  int
	CumQ        *stats.Series
	Rho         *stats.Series
	QueueSeries *stats.Series
}

// PDR reports Delivered/Generated for this origin (1 when nothing was
// generated).
func (n *NodeResult) PDR() float64 {
	if n.Generated == 0 {
		return 1
	}
	return float64(n.Delivered) / float64(n.Generated)
}

// MeanDelay reports the mean end-to-end delay of delivered evaluation
// packets in seconds.
func (n *NodeResult) MeanDelay() float64 {
	if n.Delivered == 0 {
		return 0
	}
	return (sim.Time(float64(n.DelaySum) / float64(n.Delivered))).Seconds()
}

// Summary holds the network-wide totals of a SummaryOnly run.
type Summary struct {
	// Generated counts evaluation packets originated anywhere; Delivered
	// counts evaluation packets accepted at their sink; DelaySum accumulates
	// the delivered packets' end-to-end delays.
	Generated uint64
	Delivered uint64
	DelaySum  sim.Time
}

// Result is the outcome of one run.
type Result struct {
	// Nodes holds one entry per node, indexed by dense id (nil for
	// SummaryOnly runs).
	Nodes []NodeResult
	// Summary holds the network-wide totals of a SummaryOnly run (nil
	// otherwise — the totals then live in Nodes).
	Summary *Summary
	// Clock is the superframe clock the run used.
	Clock *superframe.Clock
	// Duration is the simulated time actually run.
	Duration sim.Time
	// Events is the number of kernel events the run processed — the
	// denominator for events/second throughput reporting.
	Events uint64
	// Truncated reports that the run was cut short by Config.EventBudget or
	// Config.WallBudget before reaching Duration.
	Truncated bool
}

// NetworkPDR reports total delivered / total generated evaluation packets
// across all origins (the headline Fig. 7 metric).
func (r *Result) NetworkPDR() float64 {
	var gen, del uint64
	if r.Summary != nil {
		gen, del = r.Summary.Generated, r.Summary.Delivered
	}
	for i := range r.Nodes {
		gen += r.Nodes[i].Generated
		del += r.Nodes[i].Delivered
	}
	if gen == 0 {
		return 1
	}
	return float64(del) / float64(gen)
}

// MeanDelay reports the mean end-to-end delay over all delivered evaluation
// packets, in seconds (Fig. 9).
func (r *Result) MeanDelay() float64 {
	var sum sim.Time
	var n uint64
	if r.Summary != nil {
		sum, n = r.Summary.DelaySum, r.Summary.Delivered
	}
	for i := range r.Nodes {
		sum += r.Nodes[i].DelaySum
		n += r.Nodes[i].Delivered
	}
	if n == 0 {
		return 0
	}
	return (sim.Time(float64(sum) / float64(n))).Seconds()
}

// MeanQueueLevel reports the mean of the per-origin average queue levels for
// the given nodes (Fig. 8 plots nodes A and C).
func (r *Result) MeanQueueLevel(ids ...frame.NodeID) float64 {
	if len(ids) == 0 {
		for i := range r.Nodes {
			ids = append(ids, frame.NodeID(i))
		}
	}
	var sum float64
	for _, id := range ids {
		sum += r.Nodes[id].AvgQueueLevel
	}
	return sum / float64(len(ids))
}

// run holds the live objects during a simulation.
type run struct {
	cfg     Config
	kernel  *sim.Kernel
	pool    *frame.Pool
	scratch *mac.Scratch
	clock   *superframe.Clock
	medium  *radio.Medium
	engines []mac.Engine
	qma     []*core.Engine // nil entries for CSMA runs
	result  *Result
}

// Run executes the scenario and returns its metrics. It panics on
// configuration errors (scenario assembly is programmer-controlled) but
// never on simulation behaviour.
func Run(cfg Config) *Result {
	return RunWithEngines(cfg).Result
}

// Output bundles a Result with the live engines for post-run inspection
// (per-engine counters, Q-tables).
type Output struct {
	*Result
	Engines []mac.Engine
}

// RunWithEngines is Run, additionally exposing the engines.
func RunWithEngines(cfg Config) *Output {
	r := build(cfg)
	r.kernel.Run(cfg.Duration)
	r.collect()
	return &Output{Result: r.result, Engines: r.engines}
}

// build assembles kernel, medium, engines, traffic and instrumentation.
func build(cfg Config) *run {
	if cfg.Network == nil {
		panic("scenario: Network is required")
	}
	if cfg.Duration <= 0 {
		panic("scenario: Duration must be positive")
	}
	sfCfg := cfg.Superframe
	if sfCfg == (superframe.Config{}) {
		sfCfg = superframe.DefaultConfig()
	}
	clock := superframe.NewClock(sfCfg)
	kernel := sim.NewKernel()
	n := cfg.Network.NumNodes()

	// Stream layout: 0..n-1 engines, 1000 medium, 2000+i traffic,
	// 3000+i broadcasts, 4000+i access-barring gates (only drawn from when
	// barring is configured); the Gilbert–Elliott process derives per-link
	// streams of its own from the seed. Fixed offsets keep every consumer's
	// stream stable when instrumentation is added or removed.
	topology := cfg.Network.Topology
	if len(cfg.Dynamics.Moves) > 0 {
		// Moves mutate positions; run on a private clone so the Network
		// stays shareable across parallel replications. Any mobile topology
		// must therefore also be cloneable.
		c, ok := topology.(radio.CloneableTopology)
		if !ok {
			panic(fmt.Sprintf("scenario: Dynamics.Moves require a cloneable position-based topology, got %T", topology))
		}
		clone := c.CloneTopology()
		if _, ok := clone.(radio.MobileTopology); !ok {
			panic(fmt.Sprintf("scenario: Dynamics.Moves require a topology supporting MoveNode, got %T", topology))
		}
		topology = clone
	}
	medium := radio.NewMedium(kernel, topology, sim.NewRandStream(cfg.Seed, 1000))
	if cfg.CaptureThresholdDB > 0 {
		medium.SetCaptureThreshold(cfg.CaptureThresholdDB)
	}
	if cfg.EventBudget > 0 || cfg.WallBudget > 0 {
		kernel.SetBudget(cfg.EventBudget, cfg.WallBudget)
	}
	if cfg.InvariantChecks {
		kernel.SetInvariantChecks(true)
		medium.SetInvariantChecks(true)
	}
	if cfg.Dynamics.Enabled() {
		armDynamics(kernel, medium, cfg.Dynamics, cfg.Seed)
	}

	pool := &frame.Pool{}
	scratch := &mac.Scratch{}
	if cfg.Arena != nil {
		pool, scratch = cfg.Arena.Begin()
	}
	result := &Result{Clock: clock, Duration: cfg.Duration}
	if cfg.SummaryOnly {
		if cfg.SamplePeriod > 0 {
			panic("scenario: SummaryOnly is incompatible with SamplePeriod (per-node series need per-node results)")
		}
		result.Summary = &Summary{}
	} else {
		result.Nodes = make([]NodeResult, n)
	}
	r := &run{
		cfg:     cfg,
		kernel:  kernel,
		pool:    pool,
		scratch: scratch,
		clock:   clock,
		medium:  medium,
		engines: make([]mac.Engine, n),
		qma:     make([]*core.Engine, n),
		result:  result,
	}

	for i := 0; i < n; i++ {
		id := frame.NodeID(i)
		if !cfg.SummaryOnly {
			r.result.Nodes[i] = NodeResult{ID: id, Label: cfg.Network.Label(id)}
		}
		r.engines[i] = r.buildEngine(id)
		medium.Attach(id, r.engines[i])
	}
	if cfg.InvariantChecks {
		r.pool.SetChecks(true)
	}
	for i := range r.engines {
		r.engines[i].Start()
	}
	if cfg.Faults.Enabled() {
		if err := cfg.Faults.Validate(n); err != nil {
			panic(fmt.Sprintf("scenario: %v", err))
		}
		armFaults(kernel, clock, r.engines, cfg.Faults)
	}
	if cfg.Barring.Enabled() {
		if err := cfg.Barring.Validate(); err != nil {
			panic(fmt.Sprintf("scenario: %v", err))
		}
		r.armBarring()
	}
	if cfg.MeasureFrom > 0 {
		kernel.At(cfg.MeasureFrom, func() {
			for _, e := range r.engines {
				e.Base().ResetQueueIntegral()
			}
		})
	}
	r.buildTraffic()
	if cfg.SamplePeriod > 0 {
		r.armSampler()
	}
	return r
}

// armDynamics installs the burst-error process and schedules the churn,
// mobility and fade events on the kernel. Events sharing an instant fire in
// configuration order (the kernel's scheduling order is total).
func armDynamics(kernel *sim.Kernel, medium *radio.Medium, d DynamicsConfig, seed uint64) {
	medium.EnableDynamics()
	if d.Gilbert.Enabled() {
		medium.SetGilbertElliott(d.Gilbert, seed)
	}
	for _, f := range d.Fades {
		f := f
		kernel.At(f.At, func() { medium.SetFadeUntil(f.Node, f.At+f.Duration) })
	}
	for _, c := range d.Churn {
		c := c
		kernel.At(c.At, func() { medium.SetPresent(c.Node, !c.Leave) })
	}
	for _, mv := range d.Moves {
		mv := mv
		kernel.At(mv.At, func() { medium.MoveNode(mv.Node, mv.To) })
	}
}

// armFaults schedules the deterministic fault script on the kernel. Nodes
// are addressed through their shared mac.Base; reboots go through the
// mac.Rebooter interface when the engine implements it (all registered
// protocols do), falling back to wiping just the Base otherwise. Beacon
// semantics: beacons are implicit in this simulator — every node
// synchronizes through the shared superframe clock, with a notional beacon
// at each superframe start — so losing beacons becomes a channel-access
// suspension over the beacon-aligned window faults.SuspendWindow derives.
func armFaults(kernel *sim.Kernel, clock *superframe.Clock, engines []mac.Engine, s faults.Schedule) {
	sfd := clock.Config().SuperframeDuration()
	for _, o := range s.Outages {
		o := o
		end := o.At + o.Duration
		kernel.At(o.At, func() { engines[o.Node].Base().SetDownUntil(end) })
		if !o.StopBeacons {
			continue
		}
		// The outage node was the beacon source: every other node misses all
		// beacons of the window and suspends channel access until resync.
		from, until, ok := faults.SuspendWindow(sfd, o.At, o.Duration)
		if !ok {
			continue
		}
		for i := range engines {
			if i == o.Node {
				continue
			}
			b := engines[i].Base()
			kernel.At(from, func() { b.SetDesyncUntil(until) })
		}
	}
	for _, rb := range s.Reboots {
		rb := rb
		kernel.At(rb.At, func() {
			if r, ok := engines[rb.Node].(mac.Rebooter); ok {
				r.Reboot()
			} else {
				engines[rb.Node].Base().Reboot()
			}
		})
	}
	for _, w := range s.AckCorruption {
		w := w
		end := w.At + w.Duration
		kernel.At(w.At, func() {
			for _, e := range engines {
				e.Base().CorruptAcksUntil(end)
			}
		})
	}
	for _, bl := range s.BeaconLoss {
		from, until, ok := faults.SuspendWindow(sfd, bl.At, bl.Duration)
		if !ok {
			continue
		}
		b := engines[bl.Node].Base()
		kernel.At(from, func() { b.SetDesyncUntil(until) })
	}
}

// armBarring installs the sink-side access-class barring loop: once per
// beacon interval (default: one superframe, matching the simulator's
// implicit beacon at each superframe start) the sink diffs the congestion
// counters it observes on the medium — deliveries, collisions, captures and
// raw channel airtime — into a barring.Observation, runs the configured
// controller over it, and pushes the resulting barring factor to every
// node's MAC base as the beacon payload. The loop itself draws no
// randomness; all barring randomness lives in the nodes' dedicated
// per-node streams (4000+id).
func (r *run) armBarring() {
	cfg := r.cfg.Barring
	sfd := r.clock.Config().SuperframeDuration()
	interval := cfg.Interval
	if interval <= 0 {
		interval = sfd
	}
	backoff := cfg.Backoff
	if backoff <= 0 {
		backoff = sfd
	}
	ctrl := barring.New(cfg)
	sink := r.cfg.Network.Sink
	var prev radio.NodeStats
	var prevAir sim.Time
	var tick func()
	tick = func() {
		cur := r.medium.Stats(sink)
		_, air := r.medium.ChannelLoad()
		obs := barring.Observation{
			Delivered:    cur.RxDelivered - prev.RxDelivered,
			Collided:     cur.RxCollided - prev.RxCollided,
			Captured:     cur.RxCaptured - prev.RxCaptured,
			BusyFraction: float64(air-prevAir) / float64(interval),
		}
		prev, prevAir = cur, air
		p := ctrl.Update(obs)
		for _, e := range r.engines {
			e.Base().SetBarring(p, backoff)
		}
		r.kernel.Schedule(interval, tick)
	}
	r.kernel.Schedule(interval, tick)
}

func (r *run) macConfig(id frame.NodeID) mac.Config {
	retries := r.cfg.MaxRetries
	switch {
	case retries == 0:
		retries = -1 // mac default (3)
	case retries < 0:
		retries = 0 // disabled
	}
	// The barring RNG stream only exists when barring is configured: a
	// zero-valued Barring config must leave every node's stream set — and
	// therefore the whole run — byte-identical to a pre-barring build.
	var barringRng *sim.Rand
	if r.cfg.Barring.Enabled() {
		barringRng = sim.NewRandStream(r.cfg.Seed, 4000+uint64(id))
	}
	return mac.Config{
		ID:           id,
		Kernel:       r.kernel,
		Medium:       r.medium,
		Clock:        r.clock,
		QueueCap:     r.cfg.QueueCap,
		MaxRetries:   retries,
		Router:       r.cfg.Network,
		FramePool:    r.pool,
		Scratch:      r.scratch,
		BarringRng:   barringRng,
		Drop:         r.cfg.DropPolicy,
		DropDeadline: r.cfg.DropDeadline,
		OnSinkDeliver: func(f *frame.Frame) {
			if f.Tag != frame.TagEval || f.Kind != frame.Data {
				return
			}
			if s := r.result.Summary; s != nil {
				s.Delivered++
				s.DelaySum += r.kernel.Now() - f.CreatedAt
			} else {
				origin := &r.result.Nodes[f.Origin]
				origin.Delivered++
				origin.DelaySum += r.kernel.Now() - f.CreatedAt
			}
			if r.cfg.OnEvalDeliver != nil {
				r.cfg.OnEvalDeliver(f.Origin, f.CreatedAt, r.kernel.Now())
			}
		},
	}
}

func (r *run) buildEngine(id frame.NodeID) mac.Engine {
	rng := sim.NewRandStream(r.cfg.Seed, uint64(id))
	opts := r.cfg.MACOptions
	if opts == nil {
		opts = DefaultQMAOptions(r.cfg.MAC, r.cfg.QMA)
	}
	e := BuildEngine(r.cfg.MAC, opts, r.macConfig(id), rng)
	if q, ok := e.(*core.Engine); ok {
		r.qma[id] = q
	}
	return e
}

// DefaultQMAOptions resolves the Config.QMA convenience fallback: configs
// carry a QMAOptions value unconditionally, but it only applies when the
// selected protocol actually is QMA — every other protocol defaults (nil).
// Keeping the coercion here, at the fallback call sites, lets BuildEngine
// reject explicitly misconfigured MACOptions loudly instead of masking them.
func DefaultQMAOptions(kind MACKind, qmaOpts QMAOptions) any {
	if kind == "" {
		return qmaOpts
	}
	if p, ok := mac.Lookup(string(kind)); ok && p.Name == string(QMA) {
		return qmaOpts
	}
	return nil
}

// BuildEngine constructs a MAC engine of the requested kind over macCfg by
// resolving the protocol registry. The DSME scenario builder (internal/dsme)
// shares it so that both evaluation tracks run byte-identical engines.
//
// opts carries protocol-specific options (nil = defaults) and must match the
// protocol's registered options type — handing e.g. QMAOptions to a CSMA run
// panics via the protocol's Validate. Callers threading a config-level
// QMAOptions value unconditionally resolve it through DefaultQMAOptions
// first.
//
// It panics on an unknown protocol or rejected options: scenario assembly is
// programmer-controlled, and the public qma API validates protocol names
// before reaching this point.
func BuildEngine(kind MACKind, opts any, macCfg mac.Config, rng *sim.Rand) mac.Engine {
	if kind == "" {
		kind = QMA
	}
	e, err := mac.Build(string(kind), macCfg, opts, rng)
	if err != nil {
		panic(fmt.Sprintf("scenario: %v", err))
	}
	return e
}

func (r *run) buildTraffic() {
	seqs := make(map[frame.NodeID]*uint32)
	for _, spec := range r.cfg.Traffic {
		spec := spec
		if seqs[spec.Origin] == nil {
			seqs[spec.Origin] = new(uint32)
		}
		firstHop, ok := r.cfg.Network.NextHop(spec.Origin, r.cfg.Network.Sink)
		if !ok {
			panic(fmt.Sprintf("scenario: node %d has no route to the sink", spec.Origin))
		}
		var node *NodeResult
		if r.result.Summary == nil {
			node = &r.result.Nodes[spec.Origin]
		}
		src := &traffic.Source{
			Kernel:     r.kernel,
			Rng:        sim.NewRandStream(r.cfg.Seed, 2000+uint64(spec.Origin)+uint64(spec.Tag)*500),
			Target:     r.engines[spec.Origin],
			Origin:     spec.Origin,
			Sink:       r.cfg.Network.Sink,
			FirstHop:   firstHop,
			Phases:     spec.Phases,
			StartAt:    spec.StartAt,
			MaxPackets: spec.MaxPackets,
			MPDUBytes:  spec.MPDUBytes,
			Tag:        spec.Tag,
			Seq:        seqs[spec.Origin],
			Pool:       r.pool,
			OnGenerate: func(f *frame.Frame) {
				if f.Tag == frame.TagEval {
					if node != nil {
						node.Generated++
					} else {
						r.result.Summary.Generated++
					}
					if r.cfg.OnEvalGenerate != nil {
						r.cfg.OnEvalGenerate(f.Origin, r.kernel.Now())
					}
				}
			},
		}
		src.Start()
	}
	for _, spec := range r.cfg.Broadcasts {
		b := &traffic.BroadcastSource{
			Kernel:  r.kernel,
			Rng:     sim.NewRandStream(r.cfg.Seed, 3000+uint64(spec.Origin)),
			Target:  r.engines[spec.Origin],
			Origin:  spec.Origin,
			Period:  spec.Period,
			StartAt: spec.StartAt,
			Pool:    r.pool,
		}
		b.Start()
	}
}

func (r *run) armSampler() {
	for i := range r.result.Nodes {
		node := &r.result.Nodes[i]
		node.QueueSeries = &stats.Series{}
		if r.qma[i] != nil {
			node.CumQ = &stats.Series{}
			node.Rho = &stats.Series{}
		}
	}
	var tick func()
	tick = func() {
		now := r.kernel.Now().Seconds()
		for i, e := range r.engines {
			node := &r.result.Nodes[i]
			node.QueueSeries.Add(now, float64(e.Base().Queue().Len()))
			if q := r.qma[i]; q != nil {
				node.CumQ.Add(now, q.CumulativePolicyQ())
				rho, _ := q.TakeRhoSample()
				node.Rho.Add(now, rho)
			}
		}
		r.kernel.Schedule(r.cfg.SamplePeriod, tick)
	}
	r.kernel.Schedule(r.cfg.SamplePeriod, tick)
}

// collect copies the end-of-run counters into the result. SummaryOnly runs
// collect nothing per node — their totals accumulated during the run.
func (r *run) collect() {
	r.result.Events = r.kernel.Processed()
	r.result.Truncated = r.kernel.BudgetExhausted()
	if r.result.Summary != nil {
		return
	}
	for i, e := range r.engines {
		node := &r.result.Nodes[i]
		node.MAC = e.Base().Stats()
		node.Radio = r.medium.Stats(frame.NodeID(i))
		node.PowerAirtime = r.medium.TxAirtimeByPower(frame.NodeID(i))
		node.AvgQueueLevel = e.Base().AvgQueueLevel()
		if q := r.qma[i]; q != nil {
			node.Engine = q.EngineStats()
			node.Policy = q.Learner().PolicySnapshot()
			node.ActionCounts = q.ActionCounts()
			node.TableBytes = q.Learner().Table().MemoryBytes()
		}
	}
}
