package scenario

import (
	"reflect"
	"sort"
	"testing"
	"unsafe"

	"qma/internal/frame"
	"qma/internal/radio"
	"qma/internal/sim"
	"qma/internal/stats"
	"qma/internal/topo"
	"qma/internal/traffic"
)

// monolithicReference runs cell 0 of a 1-cell city through the ordinary
// single-kernel path, with the exact Config RunSharded assembles for it, and
// returns the run (for medium access) plus the streamed digests.
func monolithicReference(city *topo.City, cfg ShardedConfig) (*run, *stats.Digest, *stats.Windowed) {
	window := cfg.Window
	if window <= 0 {
		window = sim.Second
	}
	digest := &stats.Digest{}
	windows := stats.NewWindowed(window.Seconds())
	net := city.Cells[0]
	mono := Config{
		Network:     net,
		MAC:         cfg.MAC,
		QMA:         cfg.QMA,
		Seed:        cfg.Seed,
		Duration:    cfg.Duration,
		SummaryOnly: true,
		OnEvalGenerate: func(_ frame.NodeID, at sim.Time) {
			windows.ObserveGenerate(at.Seconds())
		},
		OnEvalDeliver: func(_ frame.NodeID, createdAt, at sim.Time) {
			delay := (at - createdAt).Seconds()
			digest.Add(delay)
			windows.ObserveDeliver(at.Seconds(), delay)
		},
	}
	for i := 1; i < net.NumNodes(); i++ {
		id := frame.NodeID(i)
		if net.Parent[id] < 0 {
			continue
		}
		mono.Traffic = append(mono.Traffic, TrafficSpec{
			Origin:     id,
			Phases:     []traffic.Phase{{Rate: cfg.Rate}},
			StartAt:    cfg.StartAt,
			MaxPackets: cfg.MaxPackets,
			Tag:        frame.TagEval,
		})
	}
	r := build(mono)
	r.kernel.Run(mono.Duration)
	r.collect()
	return r, digest, windows
}

// TestShardedSingleCellMatchesMonolithic pins the exact-equivalence contract:
// a 1-cell sharded run (which steps the kernel in epoch-sized chunks and
// installs the TX observer, but has no boundary links and hence no foreign
// injections) must be byte-identical to one continuous monolithic run.
func TestShardedSingleCellMatchesMonolithic(t *testing.T) {
	city := topo.NewCity(topo.CityConfig{Nodes: 120, CellsX: 1, CellsY: 1, Seed: 11})
	cfg := ShardedConfig{
		City:     city,
		Seed:     11,
		Duration: 4 * sim.Second,
		Rate:     1.0,
		StartAt:  sim.Second / 2,
	}
	sh := RunSharded(cfg)
	mono, digest, windows := monolithicReference(city, cfg)

	if len(sh.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(sh.Cells))
	}
	cell := &sh.Cells[0]
	s := mono.result.Summary
	if cell.Generated != s.Generated || cell.Delivered != s.Delivered || cell.DelaySum != s.DelaySum {
		t.Errorf("summary differs: sharded gen=%d del=%d sum=%v, monolithic gen=%d del=%d sum=%v",
			cell.Generated, cell.Delivered, cell.DelaySum, s.Generated, s.Delivered, s.DelaySum)
	}
	if cell.Generated == 0 || cell.Delivered == 0 {
		t.Fatalf("degenerate run: gen=%d del=%d", cell.Generated, cell.Delivered)
	}
	if sh.Events != mono.result.Events {
		t.Errorf("event counts differ: sharded %d, monolithic %d", sh.Events, mono.result.Events)
	}
	if cell.Delay != *digest {
		t.Errorf("delay digests differ: sharded n=%d min=%g max=%g, monolithic n=%d min=%g max=%g",
			cell.Delay.N(), cell.Delay.Min(), cell.Delay.Max(), digest.N(), digest.Min(), digest.Max())
	}
	if !reflect.DeepEqual(cell.Windows, windows.Windows()) {
		t.Errorf("windows differ:\nsharded    %+v\nmonolithic %+v", cell.Windows, windows.Windows())
	}
	var monoRadio radio.NodeStats
	for i := 0; i < city.Cells[0].NumNodes(); i++ {
		monoRadio.Accumulate(mono.medium.Stats(frame.NodeID(i)))
	}
	if cell.Radio != monoRadio {
		t.Errorf("radio counters differ:\nsharded    %+v\nmonolithic %+v", cell.Radio, monoRadio)
	}
	if cell.EdgeTx != 0 || cell.ForeignBusy != 0 {
		t.Errorf("1-cell run recorded edge activity: edgeTx=%d foreign=%d", cell.EdgeTx, cell.ForeignBusy)
	}
}

// naiveEdgeTargets re-derives the boundary links quadratically from raw
// positions — an independent reference for the grid-swept CSR in topo.
func naiveEdgeTargets(city *topo.City) func(cell int, src frame.NodeID) []topo.BoundaryTarget {
	return func(cell int, src frame.NodeID) []topo.BoundaryTarget {
		var out []topo.BoundaryTarget
		p := city.Cells[cell].Positions[src]
		for dc, net := range city.Cells {
			if dc == cell {
				continue
			}
			for j, q := range net.Positions {
				if p.Distance(q) <= city.SenseRange {
					out = append(out, topo.BoundaryTarget{Cell: int32(dc), Node: frame.NodeID(j)})
				}
			}
		}
		sort.Slice(out, func(a, b int) bool {
			if out[a].Cell != out[b].Cell {
				return out[a].Cell < out[b].Cell
			}
			return out[a].Node < out[b].Node
		})
		return out
	}
}

// TestShardedMultiCellMatchesNaiveReference replaces the CSR boundary
// enumeration with the quadratic position-based reference and demands the
// full multi-cell result — traces (event counts), CCA counters, streamed
// stats — is unchanged, across several randomized deployments.
func TestShardedMultiCellMatchesNaiveReference(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	for _, seed := range []uint64{3, 17, 95} {
		city := topo.NewCity(topo.CityConfig{Nodes: 320, CellsX: 2, CellsY: 2, Seed: seed})
		cfg := ShardedConfig{
			City:     city,
			Seed:     seed,
			Duration: 3 * sim.Second,
			Rate:     2.0,
			StartAt:  sim.Second / 2,
		}
		a := RunSharded(cfg)
		cfg.edgeTargets = naiveEdgeTargets(city)
		b := RunSharded(cfg)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d: CSR-driven and naive-reference runs differ:\n%+v\n%+v", seed, a, b)
		}
		var foreign uint64
		for i := range a.Cells {
			foreign += a.Cells[i].ForeignBusy
		}
		if city.BoundaryLinks() > 0 && foreign == 0 {
			t.Errorf("seed %d: %d boundary links but no foreign busy injections — exchange inert?",
				seed, city.BoundaryLinks())
		}
	}
}

// TestShardedDeterministicAcrossWorkers pins that the worker count is
// invisible: -parallel 8 must be byte-identical to sequential execution.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	city := topo.NewCity(topo.CityConfig{Nodes: 280, CellsX: 2, CellsY: 2, Seed: 5})
	cfg := ShardedConfig{
		City:     city,
		Seed:     5,
		Duration: 2 * sim.Second,
		Rate:     1.0,
		Parallel: 1,
	}
	a := RunSharded(cfg)
	cfg.Parallel = 8
	b := RunSharded(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel=1 and parallel=8 runs differ:\n%+v\n%+v", a, b)
	}
	if a.NetworkPDR() <= 0 {
		t.Fatalf("degenerate run: PDR %v", a.NetworkPDR())
	}
}

// TestSummaryOnlyMatchesFullRun pins the satellite contract: a SummaryOnly
// run produces identical network-level metrics with no per-node results.
func TestSummaryOnlyMatchesFullRun(t *testing.T) {
	base := hiddenNodeConfig(QMA, 5, 9)
	base.Duration = 20 * sim.Second
	for i := range base.Traffic {
		base.Traffic[i].StartAt = 1 * sim.Second
	}
	base.MeasureFrom = 0
	full := Run(base)

	sum := base
	sum.SummaryOnly = true
	lean := Run(sum)

	if lean.Nodes != nil {
		t.Fatalf("SummaryOnly run materialized %d node results", len(lean.Nodes))
	}
	if lean.Summary == nil {
		t.Fatal("SummaryOnly run has no Summary")
	}
	if full.Summary != nil {
		t.Fatal("full run unexpectedly has a Summary")
	}
	if got, want := lean.NetworkPDR(), full.NetworkPDR(); got != want {
		t.Errorf("NetworkPDR %v != %v", got, want)
	}
	if got, want := lean.MeanDelay(), full.MeanDelay(); got != want {
		t.Errorf("MeanDelay %v != %v", got, want)
	}
	if lean.Events != full.Events {
		t.Errorf("Events %d != %d", lean.Events, full.Events)
	}
	var gen, del uint64
	for _, n := range full.Nodes {
		gen += n.Generated
		del += n.Delivered
	}
	if lean.Summary.Generated != gen || lean.Summary.Delivered != del {
		t.Errorf("summary gen=%d del=%d, per-node totals gen=%d del=%d",
			lean.Summary.Generated, lean.Summary.Delivered, gen, del)
	}
	if del == 0 {
		t.Fatal("degenerate run: nothing delivered")
	}
}

func TestSummaryOnlyRejectsSampling(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic combining SummaryOnly with SamplePeriod")
		}
	}()
	cfg := hiddenNodeConfig(QMA, 1, 1)
	cfg.SummaryOnly = true
	cfg.SamplePeriod = sim.Second
	Run(cfg)
}

// shardedResultBytes walks the result's retained memory.
func shardedResultBytes(r *ShardedResult) uintptr {
	total := unsafe.Sizeof(*r)
	total += uintptr(cap(r.Cells)) * unsafe.Sizeof(CellResult{})
	for i := range r.Cells {
		total += uintptr(cap(r.Cells[i].Windows)) * unsafe.Sizeof(stats.WindowCounts{})
	}
	return total
}

// TestShardedResultFootprintAtScale runs the headline configuration — a
// 100k-node city — briefly and asserts the result memory is O(cells+windows),
// bounded well under 16 bytes per node (the regression guard for the
// SummaryOnly/streaming satellites; a per-node NodeResult slice alone would
// cost >100 bytes/node).
func TestShardedResultFootprintAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node integration run")
	}
	const n = 100_000
	city := topo.NewCity(topo.CityConfig{Nodes: n, CellsX: 8, CellsY: 8, Seed: 1})
	res := RunSharded(ShardedConfig{
		City:     city,
		Seed:     1,
		Duration: 2 * sim.Second,
		Rate:     0.2,
		StartAt:  sim.Second / 2,
	})
	if res.NetworkPDR() <= 0 {
		t.Fatalf("degenerate run: PDR %v", res.NetworkPDR())
	}
	bytes := shardedResultBytes(res)
	perNode := float64(bytes) / n
	t.Logf("N=%d: result holds %d bytes (%.3f bytes/node), events=%d, PDR=%.3f",
		n, bytes, perNode, res.Events, res.NetworkPDR())
	if perNode > 16 {
		t.Errorf("result footprint %.1f bytes/node, want <= 16 (O(cells+windows) regression)", perNode)
	}
}
