package scenario

import (
	"qma/internal/frame"
	"qma/internal/mac"
)

// Arena bundles the allocations a simulation run can recycle: the frame pool
// and the per-node hot-state slab (mac.Scratch). A replicated sweep creates
// one Arena per worker and hands it to every run that worker executes; each
// run rewinds the slab and re-carves the same blocks, so a worker's memory
// footprint stays constant no matter how many replications it runs.
//
// Reuse is invisible to the simulation: frames are zeroed when the pool
// hands them out and slab slices are zeroed when carved, so a run behaves
// byte-identically whether its arena is fresh or warm — which is what keeps
// results independent of the worker count.
//
// An Arena must only ever be used by one run at a time (workers are
// sequential); the zero value is ready to use.
type Arena struct {
	pool    frame.Pool
	scratch mac.Scratch
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Begin readies the arena for the next run and exposes its parts: the slab
// rewinds (every engine of the previous run is gone by now), the frame pool
// keeps its free list — recycled frames are zeroed on Get. Scenario builders
// (this package and internal/dsme) call it once per run.
func (a *Arena) Begin() (*frame.Pool, *mac.Scratch) {
	a.scratch.Reset()
	// Drop any double-release tracking a previous (possibly crashed) checked
	// run left behind; the new run re-enables it when it wants checks.
	a.pool.SetChecks(false)
	return &a.pool, &a.scratch
}
