package scenario

import (
	"fmt"
	"testing"

	"qma/internal/sim"
	"qma/internal/topo"
)

// BenchmarkRunShardedWorkers measures the end-to-end sharded runner — cell
// builds, the dependency-driven scheduler, the boundary exchange — on a
// 9-cell city at 1/2/4 workers, plus the lock-step reference at 1 worker so
// the scheduler's own overhead stays visible. One op is one complete
// RunSharded call. On multi-core hardware the workers=N subs are the
// scaling headline; on a 1-core runner they collapse to the same number and
// the gate still pins the scheduler against creeping per-epoch overhead.
func BenchmarkRunShardedWorkers(b *testing.B) {
	const nodes = 1800
	city := topo.NewCity(topo.CityConfig{Nodes: nodes, CellsX: 3, CellsY: 3, Seed: 1})
	run := func(b *testing.B, workers int, lockstep bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := RunSharded(ShardedConfig{
				City:     city,
				Seed:     1,
				Duration: 2 * sim.Second,
				Rate:     1.0,
				StartAt:  sim.Second / 2,
				Parallel: workers,
				Lockstep: lockstep,
			})
			if res.Events == 0 {
				b.Fatal("no events processed")
			}
		}
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) { run(b, workers, false) })
	}
	b.Run("lockstep=1", func(b *testing.B) { run(b, 1, true) })
}
