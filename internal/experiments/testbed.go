package experiments

import (
	"fmt"

	"qma/internal/energy"
	"qma/internal/frame"
	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/superframe"
	"qma/internal/topo"
	"qma/internal/traffic"
)

func init() {
	register("fig18", func(m Mode) []*Table { return runTestbedPDR(m, topo.Tree10(), "Fig. 18", "tree") })
	register("fig19", func(m Mode) []*Table {
		return runTestbedPDR(m, topo.Star17(topo.StarConfig{}), "Fig. 19", "star")
	})
	register("energy", RunEnergyParity)
}

// testbedConfig builds a §6.2 run: every non-sink node streams Poisson
// evaluation traffic towards the root over the routing tree, after a
// management phase. Calibration (documented in EXPERIMENTS.md): the paper
// drives every FIT IoT-LAB node at δ=10 packets/s; our substrate confines
// all traffic to the DSME CAP (half the airtime of a free-running testbed
// radio), so we scale the rate to keep the offered load in the same
// sub-saturation regime the paper's per-node PDRs (0.55–1.0) imply —
// δ=4 packets/s of 30-byte sensor readings puts the 16-sender star at
// ≈30% CAP utilization.
func testbedConfig(net *topo.Network, mk scenario.MACKind, mode Mode, seed uint64) scenario.Config {
	const delta = 4.0
	const testbedMPDU = 30
	gen := sim.FromSeconds(float64(mode.Packets) / delta)
	warmup := mode.Warmup + 20*sim.Second // dense networks need longer association
	cfg := scenario.Config{
		Network:     net,
		MAC:         mk,
		Seed:        seed,
		Duration:    warmup + gen + 30*sim.Second,
		MeasureFrom: warmup,
	}
	for i := 0; i < net.NumNodes(); i++ {
		id := frame.NodeID(i)
		if id == net.Sink {
			continue
		}
		cfg.Traffic = append(cfg.Traffic,
			scenario.TrafficSpec{Origin: id, Phases: []traffic.Phase{{Rate: 0.5}},
				StartAt: 1 * sim.Second, Tag: frame.TagManagement, MPDUBytes: testbedMPDU},
			scenario.TrafficSpec{Origin: id, Phases: []traffic.Phase{{Rate: delta}},
				StartAt: warmup, MaxPackets: mode.Packets, Tag: frame.TagEval, MPDUBytes: testbedMPDU},
		)
	}
	return cfg
}

// runTestbedPDR regenerates the per-node PDR comparison of the FIT IoT-LAB
// experiments (Fig. 18 tree, Fig. 19 star) with δ=10, QMA vs unslotted
// CSMA/CA. The topologies substitute the physical testbed (DESIGN.md §3).
func runTestbedPDR(mode Mode, net *topo.Network, id, kind string) []*Table {
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("per-node PDR in the %s topology (δ=10), FIT IoT-LAB substitute", kind),
		Columns: []string{"node", "hops", "QMA", "unslotted CSMA/CA"},
	}
	macs := []scenario.MACKind{scenario.QMA, scenario.CSMAUnslotted}
	// One grid cell per MAC; per-node PDRs travel through the metric map
	// (keyed by node id) so each replication writes only its own result
	// slot — the previous version mutated a shared accumulator from inside
	// the replication goroutines, a data race.
	est, repErrs := runGrid(len(macs), mode.Reps, mode.Parallel,
		func(arena *scenario.Arena, cell int, seed uint64) map[string]float64 {
			cfg := testbedConfig(net, macs[cell], mode, seed)
			cfg.Arena = arena
			res := scenario.Run(cfg)
			out := make(map[string]float64)
			for _, n := range res.Nodes {
				if n.ID == net.Sink {
					continue
				}
				out[fmt.Sprintf("pdr.%d", n.ID)] = n.PDR()
			}
			return out
		})
	for i := 0; i < net.NumNodes(); i++ {
		id := frame.NodeID(i)
		if id == net.Sink {
			continue
		}
		row := []string{net.Label(id), fmt.Sprintf("%d", net.Depth(id))}
		for mi := range macs {
			e := est[mi][fmt.Sprintf("pdr.%d", id)]
			row = append(row, ci(e.Mean, e.CI))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: QMA achieves a higher PDR at all nodes; in our substrate CSMA/CA's carrier sensing is close to ideal and QMA lands slightly below it — see the Fig. 18/19 discussion in EXPERIMENTS.md")
	noteRepErrors(t, repErrs)
	return []*Table{t}
}

// RunEnergyParity regenerates the §6.2.1 energy observation: QMA and
// CSMA/CA consume the same energy because both keep the transceiver on for
// the whole CAP and perform a similar number of transmission attempts.
func RunEnergyParity(mode Mode) []*Table {
	t := &Table{
		ID:      "§6.2.1",
		Title:   "energy parity on the tree topology (AT86RF231 model, per node means)",
		Columns: []string{"MAC", "TX attempts", "TX airtime [s]", "energy [mJ]", "energy/delivered [mJ]"},
	}
	net := topo.Tree10()
	profile := energy.AT86RF231()
	capDuty := float64(superframe.DefaultConfig().CAPDuration()) / float64(superframe.DefaultConfig().SuperframeDuration())
	macs := []scenario.MACKind{scenario.QMA, scenario.CSMAUnslotted}
	ests, repErrs := runGrid(len(macs), mode.Reps, mode.Parallel,
		func(arena *scenario.Arena, cell int, seed uint64) map[string]float64 {
			cfg := testbedConfig(net, macs[cell], mode, seed)
			cfg.Arena = arena
			res := scenario.Run(cfg)
			var attempts, airtime, mj, delivered float64
			for _, n := range res.Nodes {
				attempts += float64(n.MAC.TxAttempts)
				airtime += n.Radio.TxAirtime.Seconds()
				capOn := sim.Time(float64(cfg.Duration) * capDuty)
				mj += energy.Account(profile, cfg.Duration, capOn, n.Radio).TotalMilliJoule()
				delivered += float64(n.Delivered)
			}
			nodes := float64(len(res.Nodes))
			out := map[string]float64{
				"attempts": attempts / nodes,
				"airtime":  airtime / nodes,
				"mj":       mj / nodes,
			}
			if delivered > 0 {
				out["mjPerPkt"] = mj / delivered
			}
			return out
		})
	for mi, mk := range macs {
		est := ests[mi]
		t.AddRow(mk.String(),
			ci(est["attempts"].Mean, est["attempts"].CI),
			ci(est["airtime"].Mean, est["airtime"].CI),
			ci(est["mj"].Mean, est["mj"].CI),
			ci(est["mjPerPkt"].Mean, est["mjPerPkt"].CI))
	}
	t.Notes = append(t.Notes,
		"the listening floor (transceiver on during every CAP) dominates; total energy differs by well under 1% while delivered packets differ, so QMA's energy per delivered packet is lower")
	noteRepErrors(t, repErrs)
	return []*Table{t}
}
