package experiments

import (
	"fmt"

	"qma/internal/dsme"
	"qma/internal/scenario"
	"qma/internal/topo"
)

func init() {
	register("fig21-22", RunDSMEScalability)
}

// RunDSMEScalability regenerates Fig. 21 (PDR of secondary traffic during
// the CAP) and Fig. 22 (percentage of successful GTS-requests) for the
// concentric topologies with 7, 19, 43 and 91 nodes, plus the
// "(de)allocated TDMA-slots per second" and primary-PDR observations of
// §6.3.1.
func RunDSMEScalability(mode Mode) []*Table {
	counts := topo.RingNodeCounts()
	macs := []scenario.MACKind{scenario.QMA, scenario.CSMASlotted, scenario.CSMAUnslotted}

	fig21 := &Table{ID: "Fig. 21", Title: "DSME: PDR of secondary traffic during the CAP vs number of nodes",
		Columns: []string{"nodes"}}
	fig22 := &Table{ID: "Fig. 22", Title: "DSME: successful GTS-requests [%] vs number of nodes",
		Columns: []string{"nodes"}}
	allocs := &Table{ID: "§6.3.1a", Title: "DSME: completed (de)allocation handshakes per second",
		Columns: []string{"nodes"}}
	primary := &Table{ID: "§6.3.1b", Title: "DSME: PDR of primary traffic (GTS data path)",
		Columns: []string{"nodes"}}
	for _, mk := range macs {
		fig21.Columns = append(fig21.Columns, mk.String())
		fig22.Columns = append(fig22.Columns, mk.String())
		allocs.Columns = append(allocs.Columns, mk.String())
		primary.Columns = append(primary.Columns, mk.String())
	}

	// One grid cell per (node count, MAC) point, sharded across one pool.
	ests, repErrs := runGrid(len(counts)*len(macs), mode.Reps, mode.Parallel,
		func(arena *scenario.Arena, cell int, seed uint64) map[string]float64 {
			count, mk := counts[cell/len(macs)], macs[cell%len(macs)]
			res := dsme.RunScenario(dsme.ScenarioConfig{
				Network:  topo.RingsForCount(count),
				MAC:      mk,
				Seed:     seed,
				Duration: mode.DSMEDuration,
				Warmup:   mode.DSMEWarmup,
				Arena:    arena,
			})
			return map[string]float64{
				"secondary": res.Metrics.SecondaryPDR(),
				"requests":  res.Metrics.RequestSuccessRatio(),
				"allocs":    res.AllocationsPerSecond,
				"primary":   res.Metrics.PrimaryPDR(),
			}
		})
	for ci2, count := range counts {
		rows := [4][]string{{fmt.Sprintf("%d", count)}, {fmt.Sprintf("%d", count)},
			{fmt.Sprintf("%d", count)}, {fmt.Sprintf("%d", count)}}
		for mi := range macs {
			est := ests[ci2*len(macs)+mi]
			rows[0] = append(rows[0], ci(est["secondary"].Mean, est["secondary"].CI))
			rows[1] = append(rows[1], ci(est["requests"].Mean, est["requests"].CI))
			rows[2] = append(rows[2], ci(est["allocs"].Mean, est["allocs"].CI))
			rows[3] = append(rows[3], ci(est["primary"].Mean, est["primary"].CI))
		}
		fig21.AddRow(rows[0]...)
		fig22.AddRow(rows[1]...)
		allocs.AddRow(rows[2]...)
		primary.AddRow(rows[3]...)
	}
	fig21.Notes = append(fig21.Notes,
		"paper: QMA above both CSMA/CA variants for every node count, with the gap largest at few nodes")
	allocs.Notes = append(allocs.Notes,
		"paper claims up to 2x more (de)allocations per second for QMA; without DSME CAP reduction our CAP is less congested and CSMA/CA completes handshakes more often than the paper's (see EXPERIMENTS.md)")
	noteRepErrors(fig21, repErrs)
	return []*Table{fig21, fig22, allocs, primary}
}
