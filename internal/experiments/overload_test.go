package experiments

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"qma/internal/sim"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 1},
		{"all zero", []float64{0, 0, 0}, 1},
		{"equal shares", []float64{5, 5, 5, 5}, 1},
		{"one hog", []float64{10, 0, 0, 0}, 0.25},
		{"mixed", []float64{4, 2}, 0.9},
	}
	for _, tc := range cases {
		if got := jainIndex(tc.xs); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: jainIndex = %g, want %g", tc.name, got, tc.want)
		}
	}
}

// TestOverloadConfigScalesLoadNotWindow pins the sweep's core construction:
// raising the multiplier scales the Poisson rate and the per-source packet
// budget together, so the generation window — and with it the measurement
// interval — stays fixed and the overload is sustained rather than merely
// front-loaded.
func TestOverloadConfigScalesLoadNotWindow(t *testing.T) {
	c := overloadCases()[0]
	mode := Golden()
	one := overloadConfig(c, "", overloadBarrings()[0].cfg, 1, mode, 1)
	three := overloadConfig(c, "", overloadBarrings()[0].cfg, 3, mode, 1)
	if one.Duration != three.Duration {
		t.Errorf("duration changed with the multiplier: %v vs %v", one.Duration, three.Duration)
	}
	var rate1, rate3 float64
	var max1, max3 int
	for i := range one.Traffic {
		if one.Traffic[i].MaxPackets == 0 {
			continue // management stream
		}
		rate1 = one.Traffic[i].Phases[0].Rate
		max1 = one.Traffic[i].MaxPackets
	}
	for i := range three.Traffic {
		if three.Traffic[i].MaxPackets == 0 {
			continue
		}
		rate3 = three.Traffic[i].Phases[0].Rate
		max3 = three.Traffic[i].MaxPackets
	}
	if rate3 != 3*rate1 {
		t.Errorf("3x rate = %g, want %g", rate3, 3*rate1)
	}
	if max3 != 3*max1 {
		t.Errorf("3x per-source budget = %d, want %d", max3, 3*max1)
	}
	genWindow := sim.FromSeconds(float64(mode.Packets) / c.delta)
	if want := mode.Warmup + genWindow + 30*sim.Second; one.Duration != want {
		t.Errorf("duration = %v, want %v", one.Duration, want)
	}
}

// TestOverloadGoldenShowsGracefulDegradation reads the committed golden
// digest and asserts the family's reason to exist: at least one
// topology/protocol pair collapses under 3x load without barring while the
// AIMD controller holds it on a plateau.
func TestOverloadGoldenShowsGracefulDegradation(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden", "overload.json"))
	if err != nil {
		t.Fatalf("missing overload golden (refresh with -update-golden): %v", err)
	}
	var d goldenDigest
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	for _, tb := range d.Tables {
		if tb.ID != "Ovl. verdict" {
			continue
		}
		// Columns: topology, protocol, thr off, verdict off, thr aimd, verdict aimd.
		for _, row := range tb.Rows {
			if len(row) == 6 && row[3] == "collapse" && row[5] == "plateau" {
				return
			}
		}
		t.Fatal("no row collapses without barring while plateauing with AIMD — the committed golden no longer demonstrates graceful degradation")
	}
	t.Fatal("overload golden has no 'Ovl. verdict' table")
}
