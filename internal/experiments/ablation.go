package experiments

import (
	"qma/internal/qlearn"
	"qma/internal/scenario"
	"qma/internal/sim"
)

func init() {
	register("ablation", RunAblations)
}

// RunAblations quantifies the design choices the paper argues for, on the
// hidden-node scenario at δ=25 (where Fig. 7 shows the largest gap):
//
//   - exploration strategy: parameter-based (§4.2) vs decaying ε-greedy vs
//     constant ε — the paper's argument for queue-driven exploration;
//   - Q-value representation: float64 vs Q8.8 fixed point (§3.2) vs 8-bit
//     quantized (§7) — the resource-efficiency claim;
//   - cautious startup (§4.3) on vs off;
//   - ξ penalty (Eq. 5) vs the plain optimistic update (Eq. 2) — the
//     stochastic-environment extension;
//   - policy re-evaluation on decay (a variant Eq. 3 deliberately avoids).
func RunAblations(mode Mode) []*Table {
	t := &Table{
		ID:      "ablation",
		Title:   "design ablations on the hidden-node scenario, δ=25 pkt/s",
		Columns: []string{"variant", "PDR", "delay [s]", "avg queue"},
	}

	type variant struct {
		name string
		opts scenario.QMAOptions
	}
	paperLearn := qlearn.DefaultParams()
	noXi := paperLearn
	noXi.Xi = 0
	optimistic := paperLearn
	optimistic.Rule = qlearn.RuleOptimistic
	variants := []variant{
		{"paper defaults (parameter-based, float, ξ=2, startup)", scenario.QMAOptions{}},
		{"ε-greedy exploration (ε₀=0.3, half-life 30 s)", scenario.QMAOptions{
			Explorer: &qlearn.EpsilonGreedy{Eps0: 0.3, HalfLife: 30 * sim.Second, Min: 0.001}}},
		{"constant exploration (ε=0.05)", scenario.QMAOptions{
			Explorer: qlearn.Constant{Eps: 0.05}}},
		{"fixed-point Q8.8 table (§3.2)", scenario.QMAOptions{Table: scenario.TableFixed}},
		{"8-bit quantized table (§7)", scenario.QMAOptions{Table: scenario.TableQuant}},
		{"no cautious startup", scenario.QMAOptions{StartupSubslots: -1}},
		{"no ξ penalty (Eq. 5 with ξ=0)", scenario.QMAOptions{Learn: noXi}},
		{"pure optimistic rule (Eq. 2, no ξ, α=1)", scenario.QMAOptions{Learn: optimistic}},
		{"policy re-evaluation on decay", scenario.QMAOptions{ReevalOnDecay: true}},
	}

	ests, repErrs := runGrid(len(variants), mode.Reps, mode.Parallel,
		func(arena *scenario.Arena, cell int, seed uint64) map[string]float64 {
			cfg := hiddenNodeConfig(scenario.QMA, 25, mode, seed)
			cfg.QMA = variants[cell].opts
			cfg.Arena = arena
			res := scenario.Run(cfg)
			return map[string]float64{
				"pdr":   res.NetworkPDR(),
				"delay": res.MeanDelay(),
				"queue": res.MeanQueueLevel(0, 2),
			}
		})
	for vi, v := range variants {
		est := ests[vi]
		t.AddRow(v.name, ci(est["pdr"].Mean, est["pdr"].CI),
			ci(est["delay"].Mean, est["delay"].CI), ci(est["queue"].Mean, est["queue"].CI))
	}
	t.Notes = append(t.Notes,
		"the fixed-point and quantized variants should track the float table closely — the paper's resource argument",
		"the pure optimistic rule (no ξ) is expected to degrade: lucky collisions freeze bad policies (§3.1.1)")
	noteRepErrors(t, repErrs)
	return []*Table{t}
}
