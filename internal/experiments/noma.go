package experiments

import (
	"fmt"

	"qma/internal/energy"
	"qma/internal/noma"
	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/superframe"
)

func init() {
	register("noma", RunNoma)
}

// nomaRow is one protocol configuration of the capture comparison: the
// power-level learner at a point of the (K, capture threshold) sweep, or a
// single-power reference protocol.
type nomaRow struct {
	label     string
	mk        scenario.MACKind
	opts      any
	captureDB float64
}

// nomaRows sweeps the two axes the power dimension introduces — the number
// of levels K and the capture threshold θ — against the single-power
// references. K=1 isolates the capture-threshold effect (no deliberate power
// diversity, capture can only trigger on path-loss RSSI gaps); θ=3/12 at
// K=2 brackets the 6 dB level step from below and above (at θ=12 a single
// 6 dB step can no longer capture on equal-gain links).
func nomaRows() []nomaRow {
	return []nomaRow{
		{"QMA", scenario.QMA, nil, 0},
		{"unslotted CSMA/CA", scenario.CSMAUnslotted, nil, 0},
		{"noma K=1 θ=6dB", noma.Proto, noma.Options{Levels: 1}, 6},
		{"noma K=2 θ=6dB", noma.Proto, noma.Options{Levels: 2}, 6},
		{"noma K=3 θ=6dB", noma.Proto, noma.Options{Levels: 3}, 6},
		{"noma K=2 θ=3dB", noma.Proto, noma.Options{Levels: 2}, 3},
		{"noma K=2 θ=12dB", noma.Proto, noma.Options{Levels: 2}, 12},
	}
}

// RunNoma compares the NOMA power-level Q-learning MAC across the (K, θ)
// sweep against QMA and unslotted CSMA/CA on the baseline topologies —
// hidden-node pair, testbed tree, 40-node factory hall. Beyond the usual
// delivery/latency/cost columns it reports captured receptions per delivered
// packet (how often two power levels actually shared a subslot) and charges
// transmit energy per power level through the AT86RF231 datasheet steps, so
// the mJ/delivered column credits the reduced-power transmissions honestly.
func RunNoma(mode Mode) []*Table {
	cases := baselineCases()
	rows := nomaRows()
	profile := energy.AT86RF231()
	capDuty := float64(superframe.DefaultConfig().CAPDuration()) / float64(superframe.DefaultConfig().SuperframeDuration())

	est, repErrs := runGrid(len(cases)*len(rows), mode.Reps, mode.Parallel,
		func(arena *scenario.Arena, cell int, seed uint64) map[string]float64 {
			c, row := cases[cell/len(rows)], rows[cell%len(rows)]
			cfg := baselineConfig(c, row.mk, mode, seed)
			cfg.MACOptions = row.opts
			cfg.CaptureThresholdDB = row.captureDB
			cfg.Arena = arena
			res := scenario.Run(cfg)
			capOn := sim.Time(float64(cfg.Duration) * capDuty)
			var attempts, mj, delivered, captured float64
			for _, n := range res.Nodes {
				attempts += float64(n.MAC.TxAttempts)
				mj += energy.AccountPowered(profile, cfg.Duration, capOn, n.Radio,
					profile.MaxTxDBm(), n.PowerAirtime).TotalMilliJoule()
				delivered += float64(n.Delivered)
				captured += float64(n.Radio.RxCaptured)
			}
			out := map[string]float64{
				"pdr":       res.NetworkPDR(),
				"delay":     res.MeanDelay(),
				"delivered": delivered,
				"captured":  captured,
			}
			if delivered > 0 {
				out["attPerPkt"] = attempts / delivered
				out["mjPerPkt"] = mj / delivered
				out["capPerPkt"] = captured / delivered
			}
			return out
		})

	var tables []*Table
	for ti, c := range cases {
		t := &Table{
			ID:    "NOMA/" + c.name,
			Title: fmt.Sprintf("power-level Q-learning vs single-power MACs on %s (δ=%g pkt/s per source)", c.name, c.delta),
			Columns: []string{
				"protocol", "PDR", "delay [s]", "attempts/delivered", "energy/delivered [mJ]", "captured/delivered",
			},
		}
		for ri, row := range rows {
			e := est[ti*len(rows)+ri]
			att, mjp, capd := "n/a", "n/a", "n/a"
			if e["delivered"].Mean > 0 {
				att = ci(e["attPerPkt"].Mean, e["attPerPkt"].CI)
				mjp = ci(e["mjPerPkt"].Mean, e["mjPerPkt"].CI)
				capd = ci(e["capPerPkt"].Mean, e["capPerPkt"].CI)
			}
			t.AddRow(row.label,
				ci(e["pdr"].Mean, e["pdr"].CI),
				ci(e["delay"].Mean, e["delay"].CI),
				att, mjp, capd)
		}
		tables = append(tables, t)
	}
	tables[0].Notes = append(tables[0].Notes,
		"captured/delivered counts receptions that decoded through SINR capture despite an overlapping transmission — the direct evidence of two power levels sharing a subslot",
		"the single-power rows (QMA, CSMA/CA) run without capture and can never capture anyway: equal received powers always tie",
		"at θ=12dB a single 6 dB level step no longer clears the threshold on equal-gain links, so capture on the hidden-node pair needs the K=3 spread or geometry",
		"energy/delivered charges each power level at its AT86RF231 TX_PWR step draw, so reduced-level transmissions are cheaper than the flat 14 mA model would claim")
	noteRepErrors(tables[0], repErrs)
	return tables
}
