package experiments

import (
	"fmt"

	"qma/internal/frame"
	"qma/internal/radio"
	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/topo"
	"qma/internal/traffic"
)

func init() {
	register("scale", RunScale)
}

// scaleCounts returns the factory-hall sizes to sweep: the quick mode stays
// CI-friendly, the full mode exercises the 10,000-node regime the spatial
// index exists for.
func scaleCounts(mode Mode) []int {
	if mode.Reps >= 10 {
		return []int{100, 1000, 10000}
	}
	return []int{100, 1000}
}

// RunScale characterizes the large-N scenario family end to end: routing
// reach, medium link counts, kernel event volume and delivery for
// random-uniform factory halls of increasing size. Every column is
// deterministic (seed-stable), preserving the suite invariant that repeated
// runs and different -parallel values render byte-identical output;
// wall-clock throughput lives in `qma-sim -scale` and
// BenchmarkFactoryHallEventsPerSec, where timing belongs.
func RunScale(mode Mode) []*Table {
	t := &Table{
		ID:    "Scale",
		Title: "factory-hall scaling: topology, link and event volume vs node count",
		Columns: []string{
			"N", "routed", "decode edges", "sim [s]",
			"events", "events/sim-s", "PDR",
		},
	}
	simSeconds := 5.0
	if mode.Reps >= 10 {
		simSeconds = 20.0
	}
	for _, n := range scaleCounts(mode) {
		net := topo.FactoryHall(topo.FactoryConfig{Nodes: n, Seed: 42})
		pt := net.Topology.(*radio.PathLossTopology)
		routed, edges := 0, 0
		var cand []frame.NodeID
		for i := 0; i < n; i++ {
			id := frame.NodeID(i)
			if i != 0 && net.Depth(id) >= 0 {
				routed++
			}
			cand = pt.AppendLinks(id, cand[:0])
			for _, j := range cand {
				if pt.CanDecode(id, j) {
					edges++
				}
			}
		}

		cfg := scenario.Config{
			Network:  net,
			MAC:      scenario.QMA,
			Seed:     1,
			Duration: sim.FromSeconds(simSeconds),
		}
		for i := 1; i < n; i++ {
			id := frame.NodeID(i)
			if net.Depth(id) < 0 {
				continue
			}
			cfg.Traffic = append(cfg.Traffic, scenario.TrafficSpec{
				Origin: id, Phases: []traffic.Phase{{Rate: 0.5}},
				StartAt: 1 * sim.Second, Tag: frame.TagEval,
			})
		}
		res := scenario.Run(cfg)

		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d/%d", routed, n-1),
			fmt.Sprintf("%d", edges),
			f2(simSeconds),
			fmt.Sprintf("%d", res.Events),
			fmt.Sprintf("%.0f", float64(res.Events)/simSeconds),
			f3(res.NetworkPDR()),
		)
	}
	t.Notes = append(t.Notes,
		"all columns are seed-stable; wall-clock build time and events/s live in `qma-sim -scale` and BenchmarkFactoryHallEventsPerSec",
		"short runs leave QMA mid-learning — the PDR column tracks contention behaviour at scale, not the converged figures")
	return []*Table{t}
}
