package experiments

import (
	"fmt"

	"qma/internal/aloha"
	"qma/internal/bandit"
	"qma/internal/faults"
	"qma/internal/frame"
	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/topo"
	"qma/internal/traffic"
)

func init() {
	register("faults", RunFaults)
}

// The faults experiment family measures what the robustness line of work
// (PAPERS.md) actually asks of a learned MAC: when the infrastructure itself
// fails — the sink goes dark, a node loses its Q-table to a power cycle, the
// ACK path corrupts — how much does the learned schedule cost or save
// relative to the memoryless baselines? It reuses the windowed-PDR machinery
// of the dynamics family (dynTrace/analyze) and compares QMA against
// CSMA/CA, slotted ALOHA and the slot bandit.

// faultMACs spans the learning spectrum: QMA (full Q-learning), the slot
// bandit (stateful but simpler), and two memoryless baselines for which a
// reboot wipes nothing of value.
func faultMACs() []scenario.MACKind {
	return []scenario.MACKind{
		scenario.QMA, scenario.CSMAUnslotted,
		scenario.MACKind(aloha.ProtoSlotted), scenario.MACKind(bandit.Proto),
	}
}

// faultCaseConfig builds the family's shared hidden-node run: management
// traffic from t≈0, δ=10 evaluation traffic from warmup, the fault striking
// at warmup+80 s.
func faultCaseConfig(mk scenario.MACKind, mode Mode, seed uint64, duration sim.Time) scenario.Config {
	warmup := mode.Warmup
	return scenario.Config{
		Network:  topo.HiddenNode(),
		MAC:      mk,
		Seed:     seed,
		Duration: duration,
		Traffic: []scenario.TrafficSpec{
			{Origin: 0, Phases: []traffic.Phase{{Rate: 0.2}}, StartAt: 1 * sim.Second, Tag: frame.TagManagement},
			{Origin: 2, Phases: []traffic.Phase{{Rate: 0.2}}, StartAt: 1 * sim.Second, Tag: frame.TagManagement},
			{Origin: 0, Phases: []traffic.Phase{{Rate: 10}}, StartAt: warmup, Tag: frame.TagEval},
			{Origin: 2, Phases: []traffic.Phase{{Rate: 10}}, StartAt: warmup, Tag: frame.TagEval},
		},
		MeasureFrom: warmup,
	}
}

// windowPDR reports the aggregate delivery ratio of the packets generated in
// [from, until) — the "PDR through the outage" headline number.
func (d *dynTrace) windowPDR(from, until sim.Time) float64 {
	var gen, del float64
	for b := d.bucket(from); b < d.bucket(until) && b < len(d.gen); b++ {
		gen += d.gen[b]
		del += d.del[b]
	}
	if gen == 0 {
		return 1
	}
	return del / gen
}

// sinkOutageCase takes the sink off the air for 5 s with its beacons: the
// senders can neither deliver nor stay synchronized. Everything they
// generate during the window is lost or queued; the metrics capture how fast
// each MAC drains the backlog once the sink returns.
func sinkOutageCase(arena *scenario.Arena, mk scenario.MACKind, mode Mode, seed uint64) map[string]float64 {
	warmup := mode.Warmup
	at := warmup + 80*sim.Second
	const dur = 5 * sim.Second
	duration := at + dur + 60*sim.Second
	cfg := faultCaseConfig(mk, mode, seed, duration)
	cfg.Faults = faults.Schedule{
		Outages: []faults.Outage{{Node: 1, At: at, Duration: dur, StopBeacons: true}},
	}
	trace := newDynTrace(duration)
	cfg.OnEvalGenerate, cfg.OnEvalDeliver = trace.hooks()
	cfg.Arena = arena
	res := scenario.Run(cfg)
	m := trace.analyze(warmup, at, at+dur, duration)
	var suppressed float64
	for _, n := range res.Nodes {
		suppressed += float64(n.MAC.FaultTxSuppressed)
	}
	return map[string]float64{
		"baseline": m.baseline, "outagePdr": trace.windowPDR(at, at+dur),
		"lost": m.lost, "recovery": m.recovery, "suppressed": suppressed,
		"delayP95": trace.delayQuantile(0.95), "delayP99": trace.delayQuantile(0.99),
	}
}

// rebootCase power-cycles sender A mid-run: its Q-table, policy and backoff
// state vanish and it re-enters cautious startup. The lost/recovery columns
// are the relearning cost — for the memoryless baselines the reboot only
// drops the queue.
func rebootCase(arena *scenario.Arena, mk scenario.MACKind, mode Mode, seed uint64) map[string]float64 {
	warmup := mode.Warmup
	at := warmup + 80*sim.Second
	duration := at + 60*sim.Second
	cfg := faultCaseConfig(mk, mode, seed, duration)
	cfg.Faults = faults.Schedule{Reboots: []faults.Reboot{{Node: 0, At: at}}}
	trace := newDynTrace(duration)
	cfg.OnEvalGenerate, cfg.OnEvalDeliver = trace.hooks()
	cfg.Arena = arena
	scenario.Run(cfg)
	// The disturbance is instantaneous: recovery is measured from the reboot.
	m := trace.analyze(warmup, at, at, duration)
	return map[string]float64{
		"baseline": m.baseline, "lost": m.lost, "recovery": m.recovery,
	}
}

// ackCorruptionCase corrupts every ACK on the air for 5 s: data still gets
// through, but every transmitter sees timeouts, retries and (for the
// learners) punishments for subslots that did nothing wrong.
func ackCorruptionCase(arena *scenario.Arena, mk scenario.MACKind, mode Mode, seed uint64) map[string]float64 {
	warmup := mode.Warmup
	at := warmup + 80*sim.Second
	const dur = 5 * sim.Second
	duration := at + dur + 60*sim.Second
	cfg := faultCaseConfig(mk, mode, seed, duration)
	cfg.Faults = faults.Schedule{AckCorruption: []faults.Window{{At: at, Duration: dur}}}
	trace := newDynTrace(duration)
	cfg.OnEvalGenerate, cfg.OnEvalDeliver = trace.hooks()
	cfg.Arena = arena
	res := scenario.Run(cfg)
	m := trace.analyze(warmup, at, at+dur, duration)
	var corrupted float64
	for _, n := range res.Nodes {
		corrupted += float64(n.MAC.AcksCorrupted)
	}
	return map[string]float64{
		"baseline": m.baseline, "windowPdr": trace.windowPDR(at, at+dur),
		"lost": m.lost, "recovery": m.recovery, "corrupted": corrupted,
	}
}

// RunFaults regenerates the fault-injection family: sink outage with beacon
// loss, node reboot (Q-state loss) and ACK corruption, for QMA and the
// baselines.
func RunFaults(mode Mode) []*Table {
	macs := faultMACs()

	outage := &Table{
		ID:      "Flt. 1",
		Title:   "sink outage on the hidden-node pair (5 s, beacons stopped): delivery through and after the blackout",
		Columns: []string{"MAC", "baseline PDR", "outage PDR", "lost packets", "recovery [s]", "suppressed TX", "delay p95 [s]", "delay p99 [s]"},
	}
	reboot := &Table{
		ID:      "Flt. 2",
		Title:   "sender reboot on the hidden-node pair (Q-state wiped at t=warmup+80s): relearning cost",
		Columns: []string{"MAC", "baseline PDR", "lost packets", "recovery [s]"},
	}
	ack := &Table{
		ID:      "Flt. 3",
		Title:   "global ACK corruption on the hidden-node pair (5 s): the asymmetric-failure mode",
		Columns: []string{"MAC", "baseline PDR", "window PDR", "lost packets", "recovery [s]", "ACKs corrupted"},
	}

	// Cell layout: per MAC, three independent fault runs sharded over one pool.
	const cases = 3
	ests, repErrs := runGrid(len(macs)*cases, mode.Reps, mode.Parallel,
		func(arena *scenario.Arena, cell int, seed uint64) map[string]float64 {
			mk := macs[cell/cases]
			switch cell % cases {
			case 0:
				return sinkOutageCase(arena, mk, mode, seed)
			case 1:
				return rebootCase(arena, mk, mode, seed)
			default:
				return ackCorruptionCase(arena, mk, mode, seed)
			}
		})
	for mi, mk := range macs {
		o := ests[mi*cases+0]
		r := ests[mi*cases+1]
		a := ests[mi*cases+2]
		outage.AddRow(mk.String(),
			ci(o["baseline"].Mean, o["baseline"].CI),
			ci(o["outagePdr"].Mean, o["outagePdr"].CI),
			ci(o["lost"].Mean, o["lost"].CI),
			ci(o["recovery"].Mean, o["recovery"].CI),
			f2(o["suppressed"].Mean),
			f3(o["delayP95"].Mean),
			f3(o["delayP99"].Mean))
		reboot.AddRow(mk.String(),
			ci(r["baseline"].Mean, r["baseline"].CI),
			ci(r["lost"].Mean, r["lost"].CI),
			ci(r["recovery"].Mean, r["recovery"].CI))
		ack.AddRow(mk.String(),
			ci(a["baseline"].Mean, a["baseline"].CI),
			ci(a["windowPdr"].Mean, a["windowPdr"].CI),
			ci(a["lost"].Mean, a["lost"].CI),
			ci(a["recovery"].Mean, a["recovery"].CI),
			f2(a["corrupted"].Mean))
	}
	note := fmt.Sprintf("windowed PDR over %g s buckets by generation instant; recovery = first two consecutive buckets at ≥90%% of the MAC's own settled baseline after the fault clears, censored at run end", dynBucketWidth.Seconds())
	outage.Notes = append(outage.Notes, note,
		"suppressed TX counts transmissions the down/desynced radios swallowed; with beacons stopped the senders stand down too, so the backlog drains only after resync",
		"expectation: QMA's learned schedule survives the outage — its policy is still valid when the sink returns — while the bandit must re-earn its slot")
	reboot.Notes = append(reboot.Notes,
		"the reboot wipes Q-tables, bandit estimates, backoff and queue; cautious startup then throttles the rebooted sender",
		"relearning cost = lost + recovery relative to the memoryless CSMA/ALOHA rows, for which a reboot only drops the queue")
	ack.Notes = append(ack.Notes,
		"data frames still decode during the window — only the ACK path fails — so every 'lost' packet here was actually delivered at least once and dropped later by retry exhaustion, or survived as a duplicate",
		"the learners additionally take punishments for subslots that did nothing wrong; recovery shows whether that poisons the policy")
	noteRepErrors(outage, repErrs)
	return []*Table{outage, reboot, ack}
}
