package experiments

import (
	"fmt"

	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/topo"
)

func init() {
	register("mmtc", RunMMTC)
}

// mmtcPoint is one city configuration of the sweep.
type mmtcPoint struct {
	n, cx, cy int
}

// mmtcPoints returns the city sizes to sweep. Golden mode pins a reduced
// deterministic deployment; quick stays CI-friendly; full reaches the
// 100,000-node regime the sharded medium exists for.
func mmtcPoints(mode Mode) []mmtcPoint {
	switch {
	case mode.Reps >= 10:
		return []mmtcPoint{{2000, 2, 2}, {10000, 4, 4}, {100000, 8, 8}}
	case mode.Reps == 1:
		return []mmtcPoint{{800, 2, 2}}
	default:
		return []mmtcPoint{{2000, 2, 2}, {4000, 3, 3}}
	}
}

// RunMMTC characterizes the multi-cell sharded scale-out: per-cell delivery,
// end-to-end delay tails from the streamed digests, boundary coupling
// (cross-cell interference fraction, mirrored busy windows) and kernel event
// volume for city deployments of increasing size. Every column is
// deterministic (seed-stable) and byte-identical for every -parallel value;
// wall-clock events/s lives in `qma-sim -mmtc` and
// BenchmarkShardedMediumCells, where timing belongs.
func RunMMTC(mode Mode) []*Table {
	t := &Table{
		ID:    "mMTC",
		Title: "multi-cell sharded mMTC: per-cell delivery, delay tails and boundary coupling",
		Columns: []string{
			"cells", "N", "routed", "boundary links", "sim [s]",
			"PDR", "cell PDR min", "p50 [ms]", "p95 [ms]", "p99 [ms]",
			"cross-cell", "foreign busy", "events", "events/sim-s",
		},
	}
	simSeconds, start := 30.0, 5*sim.Second
	if mode.Reps == 1 {
		simSeconds, start = 15.0, 2*sim.Second
	}
	for _, p := range mmtcPoints(mode) {
		city := topo.NewCity(topo.CityConfig{Nodes: p.n, CellsX: p.cx, CellsY: p.cy, Seed: 42})
		res := scenario.RunSharded(scenario.ShardedConfig{
			City:     city,
			Seed:     1,
			Duration: sim.FromSeconds(simSeconds),
			Rate:     0.1,
			StartAt:  start,
			Parallel: mode.Parallel,
		})

		routed, foreign := 0, uint64(0)
		minPDR := 1.0
		for i := range res.Cells {
			c := &res.Cells[i]
			routed += c.Routed
			foreign += c.ForeignBusy
			if pdr := c.PDR(); pdr < minPDR {
				minPDR = pdr
			}
		}
		delay := res.DelayDigest()
		t.AddRow(
			fmt.Sprintf("%dx%d", p.cx, p.cy),
			fmt.Sprintf("%d", p.n),
			fmt.Sprintf("%d/%d", routed, p.n-city.NumCells()),
			fmt.Sprintf("%d", city.BoundaryLinks()),
			f2(simSeconds),
			f3(res.NetworkPDR()),
			f3(minPDR),
			f2(delay.Quantile(0.50)*1000),
			f2(delay.Quantile(0.95)*1000),
			f2(delay.Quantile(0.99)*1000),
			pct(res.CrossCellFraction()),
			fmt.Sprintf("%d", foreign),
			fmt.Sprintf("%d", res.Events),
			fmt.Sprintf("%.0f", float64(res.Events)/simSeconds),
		)
	}
	t.Notes = append(t.Notes,
		"all columns are seed-stable; wall-clock build time and events/s live in `qma-sim -mmtc` and BenchmarkShardedMediumCells",
		"cross-cell is the fraction of transmissions mirrored into a neighbour cell's CCA accounting (one-epoch lag)",
		"short runs leave QMA mid-learning — delivery tracks contention behaviour at scale, not converged figures")
	return []*Table{t}
}
