package experiments

import (
	"testing"

	"qma/internal/scenario"
	"qma/internal/sim"
)

// TestFullHallTrackGatingAndBudgets pins the paper-scale track's plumbing
// without running it (a 10k-node replication is a -full-only cost): the case
// joins the sweep only in full mode, its packets/warmup overrides replace
// the mode defaults, and every registered protocol resolves to a positive
// event budget.
func TestFullHallTrackGatingAndBudgets(t *testing.T) {
	c := fullHallCase()
	if c.net.NumNodes() != 10000 {
		t.Fatalf("full hall has %d nodes, want 10000", c.net.NumNodes())
	}
	if !c.budgeted || c.packets == 0 || c.warmup == 0 {
		t.Fatalf("full hall case must override packets/warmup and enable budgets: %+v", c)
	}

	mode := Full()
	cfg := baselineConfig(c, scenario.QMA, mode, 1)
	if cfg.EventBudget == 0 {
		t.Error("full hall config has no event budget")
	}
	wantDur := c.warmup + sim.FromSeconds(float64(c.packets)/c.delta) + 30*sim.Second
	if cfg.Duration != wantDur {
		t.Errorf("full hall duration %v, want %v (case overrides, not mode defaults)", cfg.Duration, wantDur)
	}
	if cfg.MeasureFrom != c.warmup {
		t.Errorf("MeasureFrom %v, want the case warmup %v", cfg.MeasureFrom, c.warmup)
	}

	// Every registered protocol gets a budget: a profiled one or the
	// conservative default for protocols the profile has not seen.
	for _, mk := range baselineMACs() {
		pc := baselineConfig(c, mk, mode, 1)
		if pc.EventBudget == 0 {
			t.Errorf("protocol %s resolves to no event budget", mk)
		}
		if _, profiled := fullHallEventBudgets[mk]; !profiled && pc.EventBudget != fullHallDefaultBudget {
			t.Errorf("unprofiled protocol %s got budget %d, want default %d", mk, pc.EventBudget, fullHallDefaultBudget)
		}
	}

	// Quick and golden modes must not pay for the hall.
	quickCases := baselineCases()
	for _, qc := range quickCases {
		if qc.budgeted {
			t.Errorf("quick case %s unexpectedly budgeted", qc.name)
		}
		if bc := baselineConfig(qc, scenario.QMA, Quick(), 1); bc.EventBudget != 0 {
			t.Errorf("quick case %s got event budget %d", qc.name, bc.EventBudget)
		}
	}
}
