package experiments

import (
	"fmt"

	"qma/internal/frame"
	"qma/internal/radio"
	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/stats"
	"qma/internal/topo"
	"qma/internal/traffic"
)

func init() {
	register("dynamics", RunDynamics)
}

// The dynamics experiment family exercises the regime the paper's §6.1.2
// adaptability argument is about but the frozen-channel figures never test:
// how fast each MAC returns to its pre-disturbance delivery ratio after the
// channel or the topology changes under it. Three disturbances are
// measured: a deterministic deep fade at the sink (burst-fade), a relay
// node failing and rejoining (node churn), and a stochastic Gilbert–Elliott
// burst-error channel.

// dynBucketWidth is the windowed-PDR resolution. Packets are bucketed by
// generation instant; a bucket's PDR is delivered/generated.
const dynBucketWidth = 2 * sim.Second

// dynTrace accumulates the per-bucket generated/delivered counts of one run
// through the scenario's OnEvalGenerate/OnEvalDeliver hooks, plus the raw
// end-to-end delay of every delivered evaluation packet for percentile
// reporting (p50/p95/p99 in the faults and overload tables). The hooks are
// purely observational — they draw no randomness and schedule no events —
// so attaching a trace never perturbs the simulation.
type dynTrace struct {
	gen, del []float64
	delay    stats.Sample
}

func newDynTrace(duration sim.Time) *dynTrace {
	n := int(duration/dynBucketWidth) + 1
	return &dynTrace{gen: make([]float64, n), del: make([]float64, n)}
}

func (d *dynTrace) bucket(at sim.Time) int {
	b := int(at / dynBucketWidth)
	if b >= len(d.gen) {
		b = len(d.gen) - 1
	}
	return b
}

// pdr reports the delivery ratio of bucket b (1 when nothing was generated,
// mirroring NodeResult.PDR).
func (d *dynTrace) pdr(b int) float64 {
	if d.gen[b] == 0 {
		return 1
	}
	return d.del[b] / d.gen[b]
}

// hooks returns the scenario callbacks filling the trace.
func (d *dynTrace) hooks() (func(frame.NodeID, sim.Time), func(frame.NodeID, sim.Time, sim.Time)) {
	return func(_ frame.NodeID, at sim.Time) { d.gen[d.bucket(at)]++ },
		func(_ frame.NodeID, createdAt, at sim.Time) {
			d.del[d.bucket(createdAt)]++
			d.delay.Add((at - createdAt).Seconds())
		}
}

// delayQuantile reports the q-quantile of the delivered packets' end-to-end
// delays in seconds (0 when nothing was delivered, keeping aggregation
// NaN-free).
func (d *dynTrace) delayQuantile(q float64) float64 {
	if d.delay.N() == 0 {
		return 0
	}
	return d.delay.Quantile(q)
}

// disturbanceMetrics condenses one run into the family's four headline
// numbers. All times are seconds.
type disturbanceMetrics struct {
	// baseline is the mean windowed PDR over the settled pre-disturbance
	// interval.
	baseline float64
	// convergence is the time from evaluation-traffic start until the
	// windowed PDR first holds ≥ 90% of baseline for two consecutive
	// buckets (how fast the MAC reaches its steady state).
	convergence float64
	// lost counts the packets generated from disturbance start until
	// recovery that never reached the sink.
	lost float64
	// recovery is the time from disturbance end until the windowed PDR
	// again holds ≥ 90% of baseline for two consecutive buckets. Runs that
	// never recover report the remaining run length (a lower bound).
	recovery float64
}

// stableFrom returns the start instant of the first bucket beginning at or
// after from whose PDR and successor's PDR both reach threshold, or -1.
// Only buckets that start at or after from count: a disturbance ending
// mid-bucket must not let its own bucket (which mixes in-disturbance
// traffic) satisfy the criterion, and the returned instant is never
// before from.
func (d *dynTrace) stableFrom(from sim.Time, until sim.Time, threshold float64) sim.Time {
	first := int((from + dynBucketWidth - 1) / dynBucketWidth)
	last := d.bucket(until)
	for b := first; b+1 <= last; b++ {
		if d.pdr(b) >= threshold && d.pdr(b+1) >= threshold {
			return sim.Time(b) * dynBucketWidth
		}
	}
	return -1
}

// analyze computes the disturbanceMetrics for a trace with evaluation
// traffic from evalStart, a disturbance window [distStart, distEnd) and a
// run ending at duration. The baseline is measured over the settled second
// half of the pre-disturbance interval.
func (d *dynTrace) analyze(evalStart, distStart, distEnd, duration sim.Time) disturbanceMetrics {
	var m disturbanceMetrics
	settleFrom := evalStart + (distStart-evalStart)/2
	n := 0
	for b := d.bucket(settleFrom); b < d.bucket(distStart); b++ {
		m.baseline += d.pdr(b)
		n++
	}
	if n > 0 {
		m.baseline /= float64(n)
	}
	threshold := 0.9 * m.baseline

	if at := d.stableFrom(evalStart, distStart, threshold); at >= 0 {
		m.convergence = (at - evalStart).Seconds()
	} else {
		m.convergence = (distStart - evalStart).Seconds()
	}

	recoveredAt := d.stableFrom(distEnd, duration, threshold)
	if recoveredAt < 0 {
		recoveredAt = duration
	}
	m.recovery = (recoveredAt - distEnd).Seconds()
	for b := d.bucket(distStart); b < d.bucket(recoveredAt) && b < len(d.gen); b++ {
		m.lost += d.gen[b] - d.del[b]
	}
	return m
}

// dynMACs are the channel access schemes the family compares.
func dynMACs() []scenario.MACKind {
	return []scenario.MACKind{scenario.QMA, scenario.CSMASlotted, scenario.CSMAUnslotted}
}

// burstFadeCase runs the hidden-node scenario with a deep fade at the sink:
// management traffic from t≈0, δ=10 evaluation traffic from warmup, the
// sink unreachable for 5 s mid-run.
func burstFadeCase(arena *scenario.Arena, mk scenario.MACKind, mode Mode, seed uint64) map[string]float64 {
	warmup := mode.Warmup
	fadeStart := warmup + 80*sim.Second
	fadeLen := 5 * sim.Second
	duration := fadeStart + fadeLen + 60*sim.Second
	cfg := scenario.Config{
		Network:  topo.HiddenNode(),
		MAC:      mk,
		Seed:     seed,
		Duration: duration,
		Traffic: []scenario.TrafficSpec{
			{Origin: 0, Phases: []traffic.Phase{{Rate: 0.2}}, StartAt: 1 * sim.Second, Tag: frame.TagManagement},
			{Origin: 2, Phases: []traffic.Phase{{Rate: 0.2}}, StartAt: 1 * sim.Second, Tag: frame.TagManagement},
			{Origin: 0, Phases: []traffic.Phase{{Rate: 10}}, StartAt: warmup, Tag: frame.TagEval},
			{Origin: 2, Phases: []traffic.Phase{{Rate: 10}}, StartAt: warmup, Tag: frame.TagEval},
		},
		MeasureFrom: warmup,
		Dynamics: scenario.DynamicsConfig{
			Fades: []scenario.FadeSpec{{Node: 1, At: fadeStart, Duration: fadeLen}},
		},
	}
	trace := newDynTrace(duration)
	cfg.OnEvalGenerate, cfg.OnEvalDeliver = trace.hooks()
	cfg.Arena = arena
	scenario.Run(cfg)
	m := trace.analyze(warmup, fadeStart, fadeStart+fadeLen, duration)
	return map[string]float64{
		"baseline": m.baseline, "convergence": m.convergence,
		"lost": m.lost, "recovery": m.recovery,
	}
}

// relayFailureCase runs the testbed tree with its depth-1 relay (paper node
// 18, dense id 1) leaving for 10 s and rejoining: two thirds of the origins
// lose their route while it is away.
func relayFailureCase(arena *scenario.Arena, mk scenario.MACKind, mode Mode, seed uint64) map[string]float64 {
	const delta = 4.0
	warmup := mode.Warmup + 20*sim.Second
	leaveAt := warmup + 60*sim.Second
	awayFor := 10 * sim.Second
	duration := leaveAt + awayFor + 60*sim.Second
	net := topo.Tree10()
	cfg := scenario.Config{
		Network:     net,
		MAC:         mk,
		Seed:        seed,
		Duration:    duration,
		MeasureFrom: warmup,
		Dynamics: scenario.DynamicsConfig{
			Churn: []scenario.ChurnSpec{
				{Node: 1, At: leaveAt, Leave: true},
				{Node: 1, At: leaveAt + awayFor, Leave: false},
			},
		},
	}
	for i := 0; i < net.NumNodes(); i++ {
		id := frame.NodeID(i)
		if id == net.Sink {
			continue
		}
		cfg.Traffic = append(cfg.Traffic,
			scenario.TrafficSpec{Origin: id, Phases: []traffic.Phase{{Rate: 0.5}},
				StartAt: 1 * sim.Second, Tag: frame.TagManagement, MPDUBytes: 30},
			scenario.TrafficSpec{Origin: id, Phases: []traffic.Phase{{Rate: delta}},
				StartAt: warmup, Tag: frame.TagEval, MPDUBytes: 30},
		)
	}
	trace := newDynTrace(duration)
	cfg.OnEvalGenerate, cfg.OnEvalDeliver = trace.hooks()
	cfg.Arena = arena
	scenario.Run(cfg)
	m := trace.analyze(warmup, leaveAt, leaveAt+awayFor, duration)
	return map[string]float64{
		"baseline": m.baseline, "convergence": m.convergence,
		"lost": m.lost, "recovery": m.recovery,
	}
}

// gilbertCase runs the hidden-node scenario over a bursty Gilbert–Elliott
// channel (mean 8 s good / 0.4 s bad, bad state losing every frame) and
// reports how much delivery ratio each MAC retains relative to dynamics-off.
func gilbertCase(arena *scenario.Arena, mk scenario.MACKind, mode Mode, seed uint64, bursty bool) map[string]float64 {
	warmup := mode.Warmup
	duration := warmup + 120*sim.Second
	cfg := scenario.Config{
		Network:  topo.HiddenNode(),
		MAC:      mk,
		Seed:     seed,
		Duration: duration,
		Traffic: []scenario.TrafficSpec{
			{Origin: 0, Phases: []traffic.Phase{{Rate: 0.2}}, StartAt: 1 * sim.Second, Tag: frame.TagManagement},
			{Origin: 2, Phases: []traffic.Phase{{Rate: 0.2}}, StartAt: 1 * sim.Second, Tag: frame.TagManagement},
			{Origin: 0, Phases: []traffic.Phase{{Rate: 10}}, StartAt: warmup, Tag: frame.TagEval},
			{Origin: 2, Phases: []traffic.Phase{{Rate: 10}}, StartAt: warmup, Tag: frame.TagEval},
		},
		MeasureFrom: warmup,
	}
	if bursty {
		cfg.Dynamics.Gilbert = radio.GilbertElliott{
			MeanGood: 8 * sim.Second,
			MeanBad:  400 * sim.Millisecond,
			LossBad:  1,
		}
	}
	cfg.Arena = arena
	res := scenario.Run(cfg)
	return map[string]float64{"pdr": res.NetworkPDR(), "delay": res.MeanDelay()}
}

// RunDynamics regenerates the dynamics family: burst-fade recovery, relay
// churn recovery and Gilbert–Elliott degradation for QMA and the CSMA/CA
// baselines.
func RunDynamics(mode Mode) []*Table {
	macs := dynMACs()

	fade := &Table{
		ID:      "Dyn. 1",
		Title:   "burst fade at the hidden-node sink (δ=10, 5 s blackout): convergence and recovery",
		Columns: []string{"MAC", "baseline PDR", "convergence [s]", "lost packets", "recovery [s]"},
	}
	churn := &Table{
		ID:      "Dyn. 2",
		Title:   "relay failure in the testbed tree (node 18 away for 10 s): convergence and recovery",
		Columns: []string{"MAC", "baseline PDR", "convergence [s]", "lost packets", "recovery [s]"},
	}
	ge := &Table{
		ID:      "Dyn. 3",
		Title:   "Gilbert–Elliott burst channel on the hidden-node scenario (8 s good / 0.4 s bad, δ=10)",
		Columns: []string{"MAC", "static PDR", "bursty PDR", "static delay [s]", "bursty delay [s]"},
	}

	// Cell layout: per MAC, four independent runs — fade, churn, GE-off,
	// GE-on — all sharded over one pool.
	const cases = 4
	ests, repErrs := runGrid(len(macs)*cases, mode.Reps, mode.Parallel,
		func(arena *scenario.Arena, cell int, seed uint64) map[string]float64 {
			mk := macs[cell/cases]
			switch cell % cases {
			case 0:
				return burstFadeCase(arena, mk, mode, seed)
			case 1:
				return relayFailureCase(arena, mk, mode, seed)
			case 2:
				return gilbertCase(arena, mk, mode, seed, false)
			default:
				return gilbertCase(arena, mk, mode, seed, true)
			}
		})
	for mi, mk := range macs {
		f := ests[mi*cases+0]
		c := ests[mi*cases+1]
		g0 := ests[mi*cases+2]
		g1 := ests[mi*cases+3]
		fade.AddRow(mk.String(),
			ci(f["baseline"].Mean, f["baseline"].CI),
			ci(f["convergence"].Mean, f["convergence"].CI),
			ci(f["lost"].Mean, f["lost"].CI),
			ci(f["recovery"].Mean, f["recovery"].CI))
		churn.AddRow(mk.String(),
			ci(c["baseline"].Mean, c["baseline"].CI),
			ci(c["convergence"].Mean, c["convergence"].CI),
			ci(c["lost"].Mean, c["lost"].CI),
			ci(c["recovery"].Mean, c["recovery"].CI))
		ge.AddRow(mk.String(),
			ci(g0["pdr"].Mean, g0["pdr"].CI),
			ci(g1["pdr"].Mean, g1["pdr"].CI),
			f3(g0["delay"].Mean),
			f3(g1["delay"].Mean))
	}
	note := fmt.Sprintf("windowed PDR over %g s buckets by generation instant; convergence/recovery = first two consecutive buckets at ≥90%% of the MAC's own settled baseline; recovery is censored at run end", dynBucketWidth.Seconds())
	fade.Notes = append(fade.Notes, note,
		"expectation: QMA's learned schedule drains the post-fade backlog without hidden-node collisions, so it recovers faster than CSMA/CA")
	churn.Notes = append(churn.Notes, note,
		"while node 18 is away, two thirds of the origins have no route; leave/rejoin re-classifies links incrementally (O(degree))")
	ge.Notes = append(ge.Notes,
		"the burst channel fails whole handshakes at once (symmetric per-link state), which CSMA/CA answers with blind retries while QMA's punishments shift its policy")
	noteRepErrors(fade, repErrs)
	return []*Table{fade, churn, ge}
}
