package experiments

import (
	"fmt"

	"qma/internal/markov"
	"qma/internal/sim"
)

func init() {
	register("fig26", RunHandshakeAnalysis)
}

// RunHandshakeAnalysis regenerates Fig. 26 (Appendix A.1): the expected
// number of transmitted messages until the 3-way GTS handshake completes,
// as a function of the per-message success probability p. Three independent
// methods are reported: the fundamental-matrix solution of the paper's
// Eq. 10 chain, a closed-form derivation and a Monte-Carlo simulation.
func RunHandshakeAnalysis(mode Mode) []*Table {
	t := &Table{
		ID:    "Fig. 26",
		Title: "expected messages per successful 3-way GTS handshake vs p",
		Columns: []string{"p", "matrix (Eq. 10-12)", "closed form", "Monte Carlo",
			"paper Fig. 26"},
	}
	samples := 50000
	if mode.Reps >= 10 {
		samples = 500000
	}
	rng := sim.NewRand(2026)
	paper := markov.PaperFig26()
	for p := 1.0; p >= 0.0999; p -= 0.1 {
		mx := markov.ExpectedHandshakeMessages(p)
		cf := markov.ExpectedHandshakeMessagesClosedForm(p)
		mc := markov.SimulateHandshakes(p, samples, rng)
		t.AddRow(fmt.Sprintf("%.1f", p), f2(mx), f2(cf), f2(mc), f2(paper[round1(p)]))
	}
	t.Notes = append(t.Notes,
		"all three of our methods agree; they reproduce the paper's printed curve for p ≥ 0.8 but diverge below (the printed Fig. 26 is inconsistent with the paper's own Eq. 10 matrix — see DESIGN.md)",
		"the qualitative claim holds in every method: the message count grows sharply as p drops, which is why the CAP needs a reliable channel access scheme")
	return []*Table{t}
}

func round1(p float64) float64 {
	return float64(int(p*10+0.5)) / 10
}
