// Package experiments regenerates every table and figure of the paper's
// evaluation (§6 and Appendix A). Each runner returns one or more Tables —
// plain rows ready for text rendering — so the same code backs the
// qma-experiments binary, the benchmark harness and EXPERIMENTS.md.
//
// Runners accept a Mode so that `go test -bench` finishes in minutes (Quick)
// while `qma-experiments -full` reproduces paper-scale parameters (Full):
// the paper uses 1000 packets per source and 10–15 repetitions per point.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/stats"
)

// runGrid is the experiments' ReplicateGrid: it threads one scenario.Arena
// per worker into the replications, so the back-to-back runs of a sweep
// recycle their frame pools and per-node hot-state slabs instead of
// re-allocating them thousands of times. Arenas are invisible to the
// simulation (results are byte-identical with or without them); fn must pass
// the arena into its run's config and nothing else.
func runGrid(cells, reps, parallel int, fn func(arena *scenario.Arena, cell int, seed uint64) map[string]float64) ([]map[string]stats.Estimate, []*stats.RepError) {
	arenas := make([]*scenario.Arena, stats.Workers(parallel))
	return stats.ReplicateGridWorker(cells, reps, parallel,
		func(w, cell int, seed uint64) map[string]float64 {
			if arenas[w] == nil {
				arenas[w] = scenario.NewArena()
			}
			return fn(arenas[w], cell, seed)
		})
}

// Mode scales an experiment between bench-friendly and paper-scale runs.
type Mode struct {
	// Name tags the mode in output.
	Name string
	// Reps is the number of independent replications per point.
	Reps int
	// Packets is the number of evaluation packets per source.
	Packets int
	// Parallel bounds the worker pool that shards independent replications
	// and sweep points (0 = GOMAXPROCS, 1 = sequential). Results are
	// byte-identical for every value: each job derives all randomness from
	// its seed and merging is order-independent.
	Parallel int
	// Warmup is the management/formation time before evaluation traffic.
	Warmup sim.Time
	// DSMEDuration and DSMEWarmup size the §6.3 data-collection runs.
	DSMEDuration, DSMEWarmup sim.Time
}

// Quick returns the reduced mode used by `go test -bench`. Replications run
// on all hardware threads (Parallel 0 = GOMAXPROCS).
func Quick() Mode {
	return Mode{
		Name:         "quick",
		Reps:         3,
		Packets:      300,
		Parallel:     0,
		Warmup:       40 * sim.Second,
		DSMEDuration: 400 * sim.Second,
		DSMEWarmup:   150 * sim.Second,
	}
}

// Full returns the paper-scale mode (15 repetitions, 1000 packets, 100 s
// association phase, 200 s DSME warm-up), replicated on all hardware
// threads.
func Full() Mode {
	return Mode{
		Name:         "full",
		Reps:         15,
		Packets:      1000,
		Parallel:     0,
		Warmup:       100 * sim.Second,
		DSMEDuration: 1000 * sim.Second,
		DSMEWarmup:   200 * sim.Second,
	}
}

// Golden returns the reduced deterministic mode behind the committed
// regression digests (testdata/golden/*.json): one replication, short runs.
// The digests are not statistically meaningful — they exist to pin
// byte-identical simulator behaviour, so `go test` fails loudly on any
// accidental behavioural drift instead of depending on manual RunAll
// diffing. Regenerate with
// `go test ./internal/experiments -run TestGoldenTraces -update-golden`.
func Golden() Mode {
	return Mode{
		Name:         "golden",
		Reps:         1,
		Packets:      100,
		Parallel:     0,
		Warmup:       20 * sim.Second,
		DSMEDuration: 120 * sim.Second,
		DSMEWarmup:   50 * sim.Second,
	}
}

// Table is a rendered experiment result.
type Table struct {
	// ID names the paper artefact ("Fig. 7"), Title describes it.
	ID, Title string
	// Columns and Rows hold the payload.
	Columns []string
	Rows    [][]string
	// Notes carry caveats and observations for EXPERIMENTS.md.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner regenerates one paper artefact (possibly several related tables).
type Runner func(Mode) []*Table

// registry maps experiment ids to runners, populated by the per-figure
// files' init functions.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs lists the registered experiment ids in stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the runner registered under id; ok is false for unknown ids.
func Run(id string, mode Mode) (tables []*Table, ok bool) {
	r, ok := registry[id]
	if !ok {
		return nil, false
	}
	return r(mode), true
}

// RunAll executes every registered experiment in id order.
func RunAll(mode Mode, w io.Writer) {
	for _, id := range IDs() {
		tables, _ := Run(id, mode)
		for _, t := range tables {
			t.Render(w)
		}
	}
}

// f2, f3 and pct format cells.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// ci renders "mean ±hw".
func ci(mean, hw float64) string { return fmt.Sprintf("%.3f ±%.3f", mean, hw) }

// noteRepErrors records replications the hardened pool had to drop (panicked
// twice) as a table note, so a degraded sweep is visibly degraded in every
// rendering. On a clean run it appends nothing — golden digests stay
// byte-identical.
func noteRepErrors(t *Table, errs []*stats.RepError) {
	if len(errs) == 0 {
		return
	}
	parts := make([]string, len(errs))
	for i, e := range errs {
		parts[i] = fmt.Sprintf("cell %d seed %d (%v)", e.Cell, e.Seed, e.Value)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d replication(s) lost to panics and excluded from the estimates: %s",
		len(errs), strings.Join(parts, "; ")))
}
