package experiments

import (
	"strings"
	"testing"

	"qma/internal/sim"
)

// render serializes tables exactly as the qma-experiments binary would.
func render(tables []*Table) string {
	var b strings.Builder
	for _, t := range tables {
		t.Render(&b)
	}
	return b.String()
}

// tinyMode keeps the determinism regression fast: the property under test is
// scheduling-independence of the replication engine, which does not depend
// on run length.
func tinyMode(parallel int) Mode {
	m := Quick()
	m.Reps = 2
	m.Packets = 40
	m.Warmup = 5 * sim.Second
	m.Parallel = parallel
	return m
}

// TestParallelRunsAreDeterministic asserts the tentpole invariant of the
// replication engine: experiments.Run with Parallel: 8 produces
// byte-identical tables to Parallel: 1 for the same seeds. Every replication
// owns a private kernel, rng, medium and frame pool, and merging walks
// results in seed order, so worker scheduling must not be observable.
func TestParallelRunsAreDeterministic(t *testing.T) {
	ids := []string{"fig07-09"}
	if !testing.Short() {
		// overload exercises the barring RNG streams: per-node gate draws
		// must land identically no matter which worker runs the replication.
		ids = append(ids, "fig18", "overload")
	}
	for _, id := range ids {
		seq, ok := Run(id, tinyMode(1))
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		par, _ := Run(id, tinyMode(8))
		if got, want := render(par), render(seq); got != want {
			t.Errorf("%s: Parallel=8 output differs from Parallel=1\n--- parallel ---\n%s--- sequential ---\n%s", id, got, want)
		}
	}
}

// TestMMTCParallelDeterminism pins the same invariant for the sharded
// multi-cell family, whose parallelism lives inside one run (cells on a
// worker pool) rather than across replications. Reps=1 selects the reduced
// golden-size city, keeping the double run cheap.
func TestMMTCParallelDeterminism(t *testing.T) {
	seqMode := tinyMode(1)
	seqMode.Reps = 1
	parMode := tinyMode(8)
	parMode.Reps = 1
	seq, ok := Run("mmtc", seqMode)
	if !ok {
		t.Fatal("mmtc not registered")
	}
	par, _ := Run("mmtc", parMode)
	if got, want := render(par), render(seq); got != want {
		t.Errorf("mmtc: Parallel=8 output differs from Parallel=1\n--- parallel ---\n%s--- sequential ---\n%s", got, want)
	}
}

// TestRunRepeatabilitySameMode guards against hidden global state (shared
// pools, package-level rngs) leaking between invocations: running the same
// experiment twice in one process must give identical tables.
func TestRunRepeatabilitySameMode(t *testing.T) {
	a, ok := Run("fig07-09", tinyMode(0))
	if !ok {
		t.Fatal("fig07-09 not registered")
	}
	b, _ := Run("fig07-09", tinyMode(0))
	if render(a) != render(b) {
		t.Error("two identical invocations produced different tables")
	}
}
