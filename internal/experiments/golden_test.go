package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The golden-trace harness pins byte-identical simulator behaviour: for
// each covered experiment it recomputes the full rendered tables in the
// deterministic Golden mode and diffs them against the committed digest
// under testdata/golden. Any change to the event kernel, the medium, the
// MAC engines or the experiment plumbing that shifts a single delivered
// packet shows up as a digest diff — "byte-identical when dynamics are
// disabled" no longer depends on manually diffing RunAll output.
//
// Refresh recipe (only after intentionally changing simulator behaviour):
//
//	go test ./internal/experiments -run TestGoldenTraces -update-golden
//
// and review the digest diff like any other code change.

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden digests")

// goldenIDs are the experiments covered by committed digests: the headline
// hidden-node sweep, a testbed figure, the DSME scalability family, the
// large-N scale family, the dynamics family, the cross-protocol baselines
// family, the capture-enabled NOMA power-level family, the fault-injection
// family, the overload/access-barring family and the multi-cell sharded
// mMTC family.
var goldenIDs = []string{"fig07-09", "fig18", "fig21-22", "scale", "dynamics", "baselines", "noma", "faults", "overload", "mmtc"}

// goldenDigest is the committed JSON shape.
type goldenDigest struct {
	Experiment string        `json:"experiment"`
	Mode       string        `json:"mode"`
	Tables     []goldenTable `json:"tables"`
}

type goldenTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

func computeDigest(t *testing.T, id string) []byte {
	t.Helper()
	tables, ok := Run(id, Golden())
	if !ok {
		t.Fatalf("unknown experiment id %q", id)
	}
	d := goldenDigest{Experiment: id, Mode: Golden().Name}
	for _, tb := range tables {
		d.Tables = append(d.Tables, goldenTable{
			ID: tb.ID, Title: tb.Title, Columns: tb.Columns, Rows: tb.Rows, Notes: tb.Notes,
		})
	}
	out, err := json.MarshalIndent(&d, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func TestGoldenTraces(t *testing.T) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", id+".json")
			got := computeDigest(t, id)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden digest %s (refresh with -update-golden): %v", path, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("experiment %q drifted from its golden digest %s:\n%s\n(refresh with -update-golden only for intentional behaviour changes)",
					id, path, digestDiff(want, got))
			}
		})
	}
}

// digestDiff renders the first few differing lines of two digests.
func digestDiff(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	var out bytes.Buffer
	shown := 0
	for i := 0; i < len(w) || i < len(g); i++ {
		var lw, lg []byte
		if i < len(w) {
			lw = w[i]
		}
		if i < len(g) {
			lg = g[i]
		}
		if bytes.Equal(lw, lg) {
			continue
		}
		fmt.Fprintf(&out, "line %d:\n  golden: %s\n  got:    %s\n", i+1, lw, lg)
		if shown++; shown >= 8 {
			fmt.Fprintf(&out, "  … (further diffs suppressed)\n")
			break
		}
	}
	return out.String()
}
