package experiments

import (
	"fmt"
	"strings"

	"qma/internal/core"
	"qma/internal/frame"
	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/stats"
	"qma/internal/topo"
	"qma/internal/traffic"
)

func init() {
	register("fig07-09", RunHiddenNodeSweep)
	register("fig10-11", RunConvergence)
	register("fig12", RunAdaptability)
	register("fig13-15", RunSlotUtilization)
}

// sweepDeltas returns the packet generation rates of Fig. 7–9.
func sweepDeltas(mode Mode) []float64 {
	if mode.Reps >= 10 {
		return []float64{1, 2, 4, 6, 8, 10, 25, 50, 100}
	}
	return []float64{1, 4, 10, 25, 50, 100}
}

// sweepMACs returns the three channel access schemes of §6.1.
func sweepMACs() []scenario.MACKind {
	return []scenario.MACKind{scenario.QMA, scenario.CSMASlotted, scenario.CSMAUnslotted}
}

// hiddenNodeConfig builds the §6.1 run: A and C send Poisson(δ) traffic to
// the sink B; low-rate management traffic from t≈0 stands in for the
// association phase the paper lets precede data generation.
func hiddenNodeConfig(mk scenario.MACKind, delta float64, mode Mode, seed uint64) scenario.Config {
	gen := sim.FromSeconds(float64(mode.Packets) / delta)
	return scenario.Config{
		Network:  topo.HiddenNode(),
		MAC:      mk,
		Seed:     seed,
		Duration: mode.Warmup + gen + 30*sim.Second,
		Traffic: []scenario.TrafficSpec{
			{Origin: 0, Phases: []traffic.Phase{{Rate: 0.2}}, StartAt: 1 * sim.Second, Tag: frame.TagManagement},
			{Origin: 2, Phases: []traffic.Phase{{Rate: 0.2}}, StartAt: 1 * sim.Second, Tag: frame.TagManagement},
			{Origin: 0, Phases: []traffic.Phase{{Rate: delta}}, StartAt: mode.Warmup, MaxPackets: mode.Packets, Tag: frame.TagEval},
			{Origin: 2, Phases: []traffic.Phase{{Rate: delta}}, StartAt: mode.Warmup, MaxPackets: mode.Packets, Tag: frame.TagEval},
		},
		MeasureFrom: mode.Warmup,
	}
}

// RunHiddenNodeSweep regenerates Fig. 7 (PDR), Fig. 8 (average queue level)
// and Fig. 9 (end-to-end delay) for nodes A and C of the hidden-node
// scenario across packet generation rates.
func RunHiddenNodeSweep(mode Mode) []*Table {
	pdr := &Table{ID: "Fig. 7", Title: "hidden node: packet delivery ratio of A and C vs δ",
		Columns: []string{"δ [pkt/s]"}}
	queue := &Table{ID: "Fig. 8", Title: "hidden node: average queue level of A and C vs δ",
		Columns: []string{"δ [pkt/s]"}}
	delay := &Table{ID: "Fig. 9", Title: "hidden node: average end-to-end delay [s] of A and C vs δ",
		Columns: []string{"δ [pkt/s]"}}
	for _, mk := range sweepMACs() {
		pdr.Columns = append(pdr.Columns, mk.String())
		queue.Columns = append(queue.Columns, mk.String())
		delay.Columns = append(delay.Columns, mk.String())
	}

	// One grid cell per (δ, MAC) point: the whole sweep shares one worker
	// pool instead of parallelizing only within a point's few replications.
	deltas := sweepDeltas(mode)
	macs := sweepMACs()
	est, repErrs := runGrid(len(deltas)*len(macs), mode.Reps, mode.Parallel,
		func(arena *scenario.Arena, cell int, seed uint64) map[string]float64 {
			delta, mk := deltas[cell/len(macs)], macs[cell%len(macs)]
			cfg := hiddenNodeConfig(mk, delta, mode, seed)
			cfg.Arena = arena
			res := scenario.Run(cfg)
			return map[string]float64{
				"pdr":   res.NetworkPDR(),
				"queue": res.MeanQueueLevel(0, 2),
				"delay": res.MeanDelay(),
			}
		})
	for di, delta := range deltas {
		pdrRow := []string{f2(delta)}
		queueRow := []string{f2(delta)}
		delayRow := []string{f2(delta)}
		for mi := range macs {
			e := est[di*len(macs)+mi]
			pdrRow = append(pdrRow, ci(e["pdr"].Mean, e["pdr"].CI))
			queueRow = append(queueRow, ci(e["queue"].Mean, e["queue"].CI))
			delayRow = append(delayRow, ci(e["delay"].Mean, e["delay"].CI))
		}
		pdr.AddRow(pdrRow...)
		queue.AddRow(queueRow...)
		delay.AddRow(delayRow...)
	}
	pdr.Notes = append(pdr.Notes,
		"paper: QMA ~0.97 at δ=25 while CSMA/CA collapses; QMA at δ=50 matches CSMA/CA at δ=10")
	queue.Notes = append(queue.Notes,
		"queue level averaged over the evaluation-traffic window (max queue = 8)")
	noteRepErrors(pdr, repErrs)
	return []*Table{pdr, queue, delay}
}

// seriesTable renders per-δ time series side by side, downsampled.
func seriesTable(id, title, unit string, series map[string]*stats.Series, order []string, rows int) *Table {
	t := &Table{ID: id, Title: title, Columns: []string{"t [s]"}}
	for _, k := range order {
		t.Columns = append(t.Columns, k+" "+unit)
	}
	var down []*stats.Series
	for _, k := range order {
		down = append(down, series[k].Downsample(rows))
	}
	n := 0
	for _, s := range down {
		if s.Len() > n {
			n = s.Len()
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(order)+1)
		tSet := false
		for _, s := range down {
			if i < s.Len() {
				if !tSet {
					row = append(row, f2(s.At(i).T))
					tSet = true
				}
			}
		}
		for _, s := range down {
			if i < s.Len() {
				row = append(row, f2(s.At(i).V))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// RunConvergence regenerates Fig. 10 (cumulative Q-values per frame) and
// Fig. 11 (exploration rate ρ, rolling 10-frame average) for δ ∈ {1,10,100}.
func RunConvergence(mode Mode) []*Table {
	duration := 450 * sim.Second
	if mode.Reps < 10 {
		duration = 250 * sim.Second
	}
	order := []string{"δ=1", "δ=10", "δ=100"}
	deltas := []float64{1, 10, 100}
	results := make([]*scenario.Result, len(deltas))
	errs := stats.ForEach(len(deltas), mode.Parallel, func(i int) {
		cfg := hiddenNodeConfig(scenario.QMA, deltas[i], mode, 1)
		cfg.Duration = duration
		cfg.SamplePeriod = 122880 * sim.Microsecond // one superframe
		for j := range cfg.Traffic {
			cfg.Traffic[j].MaxPackets = 0 // stream for the whole run, as in Fig. 10
		}
		results[i] = scenario.Run(cfg)
	})
	if len(errs) > 0 {
		// Every slot feeds a series below; there is no partial rendering of a
		// time-series figure, so surface the structured failure.
		panic(errs[0])
	}
	cumQ := map[string]*stats.Series{}
	rho := map[string]*stats.Series{}
	for i, delta := range deltas {
		key := fmt.Sprintf("δ=%g", delta)
		cumQ[key] = results[i].Nodes[0].CumQ
		rho[key] = results[i].Nodes[0].Rho.Rolling(10)
	}
	t10 := seriesTable("Fig. 10", "cumulative Q-values per frame at node A over time", "ΣQ", cumQ, order, 24)
	t10.Notes = append(t10.Notes,
		"stability metric: a flat series means the policy stopped changing (§6.1.2)")
	t11 := seriesTable("Fig. 11", "exploration probability ρ (rolling 10-frame average) at node A", "ρ", rho, order, 24)
	return []*Table{t10, t11}
}

// RunAdaptability regenerates Fig. 12: node A alternates δ=10/δ=100 every
// 100 s while node C (δ=25) joins the network 100 s late; the cumulative
// Q-values of both nodes track every traffic change.
func RunAdaptability(mode Mode) []*Table {
	duration := 1400 * sim.Second
	if mode.Reps < 10 {
		duration = 700 * sim.Second
	}
	cfg := scenario.Config{
		Network:  topo.HiddenNode(),
		MAC:      scenario.QMA,
		Seed:     1,
		Duration: duration,
		Traffic: []scenario.TrafficSpec{
			{Origin: 0, Phases: []traffic.Phase{
				{Rate: 10, Duration: 100 * sim.Second},
				{Rate: 100, Duration: 100 * sim.Second},
			}, StartAt: 0, Tag: frame.TagEval},
			{Origin: 2, Phases: []traffic.Phase{{Rate: 25}}, StartAt: 100 * sim.Second, Tag: frame.TagEval},
		},
		SamplePeriod: 122880 * sim.Microsecond,
	}
	res := scenario.Run(cfg)
	series := map[string]*stats.Series{
		"node A": res.Nodes[0].CumQ,
		"node C": res.Nodes[2].CumQ,
	}
	t := seriesTable("Fig. 12", "cumulative Q-values per frame under fluctuating traffic (A alternates δ=10/100 per 100 s; C joins at 100 s with δ=25)",
		"ΣQ", series, []string{"node A", "node C"}, 28)
	t.Notes = append(t.Notes,
		"C \"joins late\" by starting its traffic at 100 s; expect A's series to step at every rate change and C to settle regardless")
	return []*Table{t}
}

// policyString renders a node's per-subslot policy: '.'=QBackoff, 'C'=QCCA,
// 'S'=QSend.
func policyString(policy []int) string {
	var b strings.Builder
	for _, a := range policy {
		switch core.Action(a) {
		case core.QCCA:
			b.WriteByte('C')
		case core.QSend:
			b.WriteByte('S')
		default:
			b.WriteByte('.')
		}
	}
	return b.String()
}

// RunSlotUtilization regenerates Fig. 13–15: the subslot policies of nodes A
// and C after the first exploration phase and at the end of the run, for
// δ ∈ {1,10,100}. A collision-free schedule shows no subslot claimed by
// both nodes.
func RunSlotUtilization(mode Mode) []*Table {
	var tables []*Table
	cases := []struct {
		fig      string
		delta    float64
		snapshot sim.Time
	}{
		{"Fig. 13", 1, 370 * sim.Second},
		{"Fig. 14", 10, 150 * sim.Second},
		{"Fig. 15", 100, 170 * sim.Second},
	}
	// Two independent runs (snapshot, final) per case, all sharded together.
	results := make([]*scenario.Result, 2*len(cases))
	errs := stats.ForEach(len(results), mode.Parallel, func(i int) {
		c := cases[i/2]
		duration := c.snapshot
		if i%2 == 1 {
			duration += 200 * sim.Second
		}
		cfg := hiddenNodeConfig(scenario.QMA, c.delta, mode, 1)
		cfg.Duration = duration
		for j := range cfg.Traffic {
			cfg.Traffic[j].MaxPackets = 0
		}
		results[i] = scenario.Run(cfg)
	})
	if len(errs) > 0 {
		panic(errs[0]) // both runs of a case feed its table; no partial render
	}
	for idx, c := range cases {
		t := &Table{
			ID:      c.fig,
			Title:   fmt.Sprintf("subslot policies for δ=%g ('.'=QBackoff, C=QCCA, S=QSend)", c.delta),
			Columns: []string{"node", "when", "policy (subslots 0..53)"},
		}
		snap := results[2*idx]
		fin := results[2*idx+1]
		t.AddRow("A", fmt.Sprintf("after %s", c.snapshot), policyString(snap.Nodes[0].Policy))
		t.AddRow("C", fmt.Sprintf("after %s", c.snapshot), policyString(snap.Nodes[2].Policy))
		t.AddRow("A", "final", policyString(fin.Nodes[0].Policy))
		t.AddRow("C", "final", policyString(fin.Nodes[2].Policy))
		conflicts := 0
		pa, pc := fin.Nodes[0].Policy, fin.Nodes[2].Policy
		for m := range pa {
			if pa[m] != int(core.QBackoff) && pc[m] != int(core.QBackoff) {
				conflicts++
			}
		}
		t.Notes = append(t.Notes, fmt.Sprintf("final policies conflict in %d subslot(s); the paper reports collision-free schedules", conflicts))
		tables = append(tables, t)
	}
	return tables
}
