package experiments

import (
	"fmt"

	"qma/internal/energy"
	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/superframe"
	"qma/internal/topo"
	"qma/internal/traffic"
)

func init() {
	register("baselines", RunBaselines)
}

// baselineCase is one topology of the cross-protocol comparison. The rate is
// chosen per topology so every protocol runs the same offered load in the
// regime where the paper's comparison is interesting: the hidden-node pair at
// the δ=10 knee where carrier sensing stops helping, the testbed tree and the
// factory hall in the sub-saturation regime multi-hop forwarding allows.
type baselineCase struct {
	name  string
	net   *topo.Network
	delta float64
	// packets and warmup override the mode's Packets/Warmup when non-zero —
	// the paper-scale hall track would otherwise simulate for hours.
	packets int
	warmup  sim.Time
	// budgeted selects the per-protocol event budgets profiled for the
	// 10k-node track; healthy runs stay far below them.
	budgeted bool
}

func baselineCases() []baselineCase {
	return []baselineCase{
		{name: "hidden-node", net: topo.HiddenNode(), delta: 10},
		{name: "tree10", net: topo.Tree10(), delta: 3},
		{name: "factory-hall-40", net: topo.FactoryHall(topo.FactoryConfig{Nodes: 40, Seed: 42}), delta: 2},
	}
}

// fullHallCase is the paper-scale track (ROADMAP: "baselines at paper
// scale"): the 10,000-node factory hall the spatial index and SoA hot state
// exist for, enabled in full mode only. δ=0.2 with 20 packets per source
// keeps one replication around 150 simulated seconds (~2×10⁸ kernel events),
// inside every protocol's profiled budget.
func fullHallCase() baselineCase {
	return baselineCase{
		name:     "factory-hall-10k",
		net:      topo.FactoryHall(topo.FactoryConfig{Nodes: 10000, Seed: 42}),
		delta:    0.2,
		packets:  20,
		warmup:   20 * sim.Second,
		budgeted: true,
	}
}

// fullHallEventBudgets caps one 10k-hall replication per protocol, so a
// protocol that collapses into a retry storm at scale truncates (and is
// reported as such) instead of pinning a worker for hours. Each budget is
// ~120 s of wall clock at the events/s wall rate measured by
// `go test -bench BenchmarkProtocolMatrix` (2026-08: aloha 2.2M, bandit
// 2.7M, csma-slotted 3.3M, csma-unslotted 3.6M, noma 2.8M, qma 5.5M) —
// roughly 1.5–3× the ~2×10⁸ events a healthy replication processes.
// Protocols without a profile entry get the most conservative budget.
var fullHallEventBudgets = map[scenario.MACKind]uint64{
	"aloha":          250e6,
	"bandit":         330e6,
	"csma-slotted":   400e6,
	"csma-unslotted": 430e6,
	"noma":           330e6,
	"qma":            660e6,
}

const fullHallDefaultBudget uint64 = 250e6

// baselineMACs returns every registered protocol the family can compare
// fairly, in the registry's canonical order. The list is resolved at run
// time, so a newly registered protocol package joins the comparison without
// any edit here — the property the registry refactor exists to guarantee.
// Protocols declaring NeedsCapture are skipped: this family runs a
// capture-less medium, where a power-diverse MAC would only demonstrate that
// deliberately weak transmissions lose; they get their own capture-enabled
// family (the `noma` experiment) instead.
func baselineMACs() []scenario.MACKind {
	var out []scenario.MACKind
	for _, n := range mac.Names() {
		if p, ok := mac.Lookup(string(n)); ok && p.NeedsCapture {
			continue
		}
		out = append(out, n)
	}
	return out
}

// baselineConfig builds one run of the family: every routed non-sink node
// streams Poisson(δ) evaluation traffic towards the sink after a low-rate
// management phase, identically for every protocol under test.
func baselineConfig(c baselineCase, mk scenario.MACKind, mode Mode, seed uint64) scenario.Config {
	packets, warmup := mode.Packets, mode.Warmup
	if c.packets > 0 {
		packets = c.packets
	}
	if c.warmup > 0 {
		warmup = c.warmup
	}
	gen := sim.FromSeconds(float64(packets) / c.delta)
	cfg := scenario.Config{
		Network:     c.net,
		MAC:         mk,
		Seed:        seed,
		Duration:    warmup + gen + 30*sim.Second,
		MeasureFrom: warmup,
	}
	if c.budgeted {
		budget, ok := fullHallEventBudgets[mk]
		if !ok {
			budget = fullHallDefaultBudget
		}
		cfg.EventBudget = budget
	}
	for i := 0; i < c.net.NumNodes(); i++ {
		id := frame.NodeID(i)
		if id == c.net.Sink || c.net.Depth(id) < 0 {
			continue
		}
		cfg.Traffic = append(cfg.Traffic,
			scenario.TrafficSpec{Origin: id, Phases: []traffic.Phase{{Rate: 0.2}},
				StartAt: 1 * sim.Second, Tag: frame.TagManagement},
			scenario.TrafficSpec{Origin: id, Phases: []traffic.Phase{{Rate: c.delta}},
				StartAt: warmup, MaxPackets: packets, Tag: frame.TagEval},
		)
	}
	return cfg
}

// RunBaselines compares every registered MAC protocol — QMA, both CSMA/CA
// variants, pure and slotted ALOHA and the slot-bandit learner — on the
// hidden-node pair, the 10-node testbed tree and a 40-node factory hall:
// delivery, end-to-end latency, transmission cost per delivered packet and
// radio energy per delivered packet (AT86RF231 model, shared listening
// floor). One table per topology, one row per protocol.
func RunBaselines(mode Mode) []*Table {
	cases := baselineCases()
	if mode.Reps >= 10 {
		// Paper-scale track: the 10k-node hall joins the sweep in full mode
		// only, with the profiled per-protocol event budgets as a backstop.
		cases = append(cases, fullHallCase())
	}
	macs := baselineMACs()
	profile := energy.AT86RF231()
	capDuty := float64(superframe.DefaultConfig().CAPDuration()) / float64(superframe.DefaultConfig().SuperframeDuration())

	// One grid cell per (topology, protocol) pair; the whole family shares
	// one worker pool.
	est, repErrs := runGrid(len(cases)*len(macs), mode.Reps, mode.Parallel,
		func(arena *scenario.Arena, cell int, seed uint64) map[string]float64 {
			c, mk := cases[cell/len(macs)], macs[cell%len(macs)]
			cfg := baselineConfig(c, mk, mode, seed)
			cfg.Arena = arena
			res := scenario.Run(cfg)
			capOn := sim.Time(float64(cfg.Duration) * capDuty)
			var attempts, mj, delivered float64
			for _, n := range res.Nodes {
				attempts += float64(n.MAC.TxAttempts)
				mj += energy.Account(profile, cfg.Duration, capOn, n.Radio).TotalMilliJoule()
				delivered += float64(n.Delivered)
			}
			out := map[string]float64{
				"pdr":       res.NetworkPDR(),
				"delay":     res.MeanDelay(),
				"delivered": delivered,
			}
			if res.Truncated {
				out["trunc"] = 1
			}
			if delivered > 0 {
				out["attPerPkt"] = attempts / delivered
				out["mjPerPkt"] = mj / delivered
			}
			return out
		})

	var tables []*Table
	for ti, c := range cases {
		t := &Table{
			ID:    "Baselines/" + c.name,
			Title: fmt.Sprintf("cross-protocol comparison on %s (δ=%g pkt/s per source)", c.name, c.delta),
			Columns: []string{
				"protocol", "PDR", "delay [s]", "attempts/delivered", "energy/delivered [mJ]",
			},
		}
		for mi, mk := range macs {
			e := est[ti*len(macs)+mi]
			// The per-delivered ratios are undefined when nothing arrived;
			// render n/a instead of a zero that reads like a perfect score.
			att, mjp := "n/a", "n/a"
			if e["delivered"].Mean > 0 {
				att = ci(e["attPerPkt"].Mean, e["attPerPkt"].CI)
				mjp = ci(e["mjPerPkt"].Mean, e["mjPerPkt"].CI)
			}
			name := mk.String()
			if e["trunc"].Mean > 0 {
				// The protocol hit its profiled event budget in at least one
				// replication; its metrics cover the truncated window only.
				name += " (truncated)"
			}
			t.AddRow(name,
				ci(e["pdr"].Mean, e["pdr"].CI),
				ci(e["delay"].Mean, e["delay"].CI),
				att, mjp)
		}
		tables = append(tables, t)
	}
	tables[0].Notes = append(tables[0].Notes,
		"protocol rows come from the registry (mac.Names()): a newly registered protocol package joins this family without edits here",
		"at the hidden-node pair carrier sensing cannot see the competing transmitter, so CSMA/CA buys nothing over ALOHA's random backoff (and wastes CAP on CCAs); QMA's learned schedule sidesteps the collisions entirely. In the multi-hop topologies the ordering flips: carrier sensing defers to the relay's traffic, pure ALOHA tramples it",
		"the slot bandit converges on a collision-free slot but serves at most ~1 frame per superframe per node, which caps its throughput and delay",
		"the energy column is dominated by the shared CAP listening floor (§6.2.1), so it mostly tracks 1/delivered")
	noteRepErrors(tables[0], repErrs)
	return tables
}
