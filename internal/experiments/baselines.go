package experiments

import (
	"fmt"

	"qma/internal/energy"
	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/superframe"
	"qma/internal/topo"
	"qma/internal/traffic"
)

func init() {
	register("baselines", RunBaselines)
}

// baselineCase is one topology of the cross-protocol comparison. The rate is
// chosen per topology so every protocol runs the same offered load in the
// regime where the paper's comparison is interesting: the hidden-node pair at
// the δ=10 knee where carrier sensing stops helping, the testbed tree and the
// factory hall in the sub-saturation regime multi-hop forwarding allows.
type baselineCase struct {
	name  string
	net   *topo.Network
	delta float64
}

func baselineCases() []baselineCase {
	return []baselineCase{
		{"hidden-node", topo.HiddenNode(), 10},
		{"tree10", topo.Tree10(), 3},
		{"factory-hall-40", topo.FactoryHall(topo.FactoryConfig{Nodes: 40, Seed: 42}), 2},
	}
}

// baselineMACs returns every registered protocol the family can compare
// fairly, in the registry's canonical order. The list is resolved at run
// time, so a newly registered protocol package joins the comparison without
// any edit here — the property the registry refactor exists to guarantee.
// Protocols declaring NeedsCapture are skipped: this family runs a
// capture-less medium, where a power-diverse MAC would only demonstrate that
// deliberately weak transmissions lose; they get their own capture-enabled
// family (the `noma` experiment) instead.
func baselineMACs() []scenario.MACKind {
	var out []scenario.MACKind
	for _, n := range mac.Names() {
		if p, ok := mac.Lookup(string(n)); ok && p.NeedsCapture {
			continue
		}
		out = append(out, n)
	}
	return out
}

// baselineConfig builds one run of the family: every routed non-sink node
// streams Poisson(δ) evaluation traffic towards the sink after a low-rate
// management phase, identically for every protocol under test.
func baselineConfig(c baselineCase, mk scenario.MACKind, mode Mode, seed uint64) scenario.Config {
	gen := sim.FromSeconds(float64(mode.Packets) / c.delta)
	cfg := scenario.Config{
		Network:     c.net,
		MAC:         mk,
		Seed:        seed,
		Duration:    mode.Warmup + gen + 30*sim.Second,
		MeasureFrom: mode.Warmup,
	}
	for i := 0; i < c.net.NumNodes(); i++ {
		id := frame.NodeID(i)
		if id == c.net.Sink || c.net.Depth(id) < 0 {
			continue
		}
		cfg.Traffic = append(cfg.Traffic,
			scenario.TrafficSpec{Origin: id, Phases: []traffic.Phase{{Rate: 0.2}},
				StartAt: 1 * sim.Second, Tag: frame.TagManagement},
			scenario.TrafficSpec{Origin: id, Phases: []traffic.Phase{{Rate: c.delta}},
				StartAt: mode.Warmup, MaxPackets: mode.Packets, Tag: frame.TagEval},
		)
	}
	return cfg
}

// RunBaselines compares every registered MAC protocol — QMA, both CSMA/CA
// variants, pure and slotted ALOHA and the slot-bandit learner — on the
// hidden-node pair, the 10-node testbed tree and a 40-node factory hall:
// delivery, end-to-end latency, transmission cost per delivered packet and
// radio energy per delivered packet (AT86RF231 model, shared listening
// floor). One table per topology, one row per protocol.
func RunBaselines(mode Mode) []*Table {
	cases := baselineCases()
	macs := baselineMACs()
	profile := energy.AT86RF231()
	capDuty := float64(superframe.DefaultConfig().CAPDuration()) / float64(superframe.DefaultConfig().SuperframeDuration())

	// One grid cell per (topology, protocol) pair; the whole family shares
	// one worker pool.
	est, repErrs := runGrid(len(cases)*len(macs), mode.Reps, mode.Parallel,
		func(arena *scenario.Arena, cell int, seed uint64) map[string]float64 {
			c, mk := cases[cell/len(macs)], macs[cell%len(macs)]
			cfg := baselineConfig(c, mk, mode, seed)
			cfg.Arena = arena
			res := scenario.Run(cfg)
			capOn := sim.Time(float64(cfg.Duration) * capDuty)
			var attempts, mj, delivered float64
			for _, n := range res.Nodes {
				attempts += float64(n.MAC.TxAttempts)
				mj += energy.Account(profile, cfg.Duration, capOn, n.Radio).TotalMilliJoule()
				delivered += float64(n.Delivered)
			}
			out := map[string]float64{
				"pdr":       res.NetworkPDR(),
				"delay":     res.MeanDelay(),
				"delivered": delivered,
			}
			if delivered > 0 {
				out["attPerPkt"] = attempts / delivered
				out["mjPerPkt"] = mj / delivered
			}
			return out
		})

	var tables []*Table
	for ti, c := range cases {
		t := &Table{
			ID:    "Baselines/" + c.name,
			Title: fmt.Sprintf("cross-protocol comparison on %s (δ=%g pkt/s per source)", c.name, c.delta),
			Columns: []string{
				"protocol", "PDR", "delay [s]", "attempts/delivered", "energy/delivered [mJ]",
			},
		}
		for mi, mk := range macs {
			e := est[ti*len(macs)+mi]
			// The per-delivered ratios are undefined when nothing arrived;
			// render n/a instead of a zero that reads like a perfect score.
			att, mjp := "n/a", "n/a"
			if e["delivered"].Mean > 0 {
				att = ci(e["attPerPkt"].Mean, e["attPerPkt"].CI)
				mjp = ci(e["mjPerPkt"].Mean, e["mjPerPkt"].CI)
			}
			t.AddRow(mk.String(),
				ci(e["pdr"].Mean, e["pdr"].CI),
				ci(e["delay"].Mean, e["delay"].CI),
				att, mjp)
		}
		tables = append(tables, t)
	}
	tables[0].Notes = append(tables[0].Notes,
		"protocol rows come from the registry (mac.Names()): a newly registered protocol package joins this family without edits here",
		"at the hidden-node pair carrier sensing cannot see the competing transmitter, so CSMA/CA buys nothing over ALOHA's random backoff (and wastes CAP on CCAs); QMA's learned schedule sidesteps the collisions entirely. In the multi-hop topologies the ordering flips: carrier sensing defers to the relay's traffic, pure ALOHA tramples it",
		"the slot bandit converges on a collision-free slot but serves at most ~1 frame per superframe per node, which caps its throughput and delay",
		"the energy column is dominated by the shared CAP listening floor (§6.2.1), so it mostly tracks 1/delivered")
	noteRepErrors(tables[0], repErrs)
	return tables
}
