package experiments

import (
	"fmt"

	"qma/internal/barring"
	"qma/internal/frame"
	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/stats"
	"qma/internal/topo"
	"qma/internal/traffic"
)

func init() {
	register("overload", RunOverload)
}

// The overload experiment family answers the robustness question none of the
// fixed-load figures ask: what happens when the offered load exceeds what
// the channel can carry, and does sink-side access-class barring buy
// graceful degradation? Every registered (capture-less) protocol runs an
// offered-load sweep from well below to far beyond the saturation knee, with
// and without the AIMD barring controller, reporting throughput, delay
// percentiles, Jain's fairness across origins and a plateau-vs-collapse
// stability verdict.

// overloadRetention is the plateau criterion: a protocol degrades gracefully
// when its throughput at 3x load keeps at least this fraction of its 1x
// value; anything below is a congestion collapse.
const overloadRetention = 0.75

// overloadCase is one topology of the sweep. delta is the per-source rate at
// 1x load (the same operating points as the baselines family); mults is the
// offered-load grid in multiples of delta.
type overloadCase struct {
	name  string
	net   *topo.Network
	delta float64
	mults []float64
}

func overloadCases() []overloadCase {
	return []overloadCase{
		{"hidden-node", topo.HiddenNode(), 10, []float64{0.2, 1, 2, 3, 4}},
		{"tree10", topo.Tree10(), 3, []float64{1, 3}},
		{"factory-hall-40", topo.FactoryHall(topo.FactoryConfig{Nodes: 40, Seed: 42}), 2, []float64{1, 3}},
	}
}

// overloadBarrings are the access-control variants under comparison: no
// barring (the zero config — byte-identical to a pre-barring build) and the
// AIMD controller at its defaults.
func overloadBarrings() []struct {
	name string
	cfg  barring.Config
} {
	return []struct {
		name string
		cfg  barring.Config
	}{
		{"off", barring.Config{}},
		{"aimd", barring.Config{Policy: barring.PolicyAIMD}},
	}
}

// overloadConfig builds one run: the baselines family's per-topology setup
// with the evaluation rate scaled by mult over the same generation window,
// so higher multipliers offer proportionally more packets into the same
// measurement interval instead of finishing sooner.
func overloadConfig(c overloadCase, mk scenario.MACKind, bar barring.Config, mult float64, mode Mode, seed uint64) scenario.Config {
	gen := sim.FromSeconds(float64(mode.Packets) / c.delta)
	rate := c.delta * mult
	perSource := int(float64(mode.Packets)*mult + 0.5)
	cfg := scenario.Config{
		Network:     c.net,
		MAC:         mk,
		Seed:        seed,
		Duration:    mode.Warmup + gen + 30*sim.Second,
		MeasureFrom: mode.Warmup,
		Barring:     bar,
	}
	for i := 0; i < c.net.NumNodes(); i++ {
		id := frame.NodeID(i)
		if id == c.net.Sink || c.net.Depth(id) < 0 {
			continue
		}
		cfg.Traffic = append(cfg.Traffic,
			scenario.TrafficSpec{Origin: id, Phases: []traffic.Phase{{Rate: 0.2}},
				StartAt: 1 * sim.Second, Tag: frame.TagManagement},
			scenario.TrafficSpec{Origin: id, Phases: []traffic.Phase{{Rate: rate}},
				StartAt: mode.Warmup, MaxPackets: perSource, Tag: frame.TagEval},
		)
	}
	return cfg
}

// jainIndex is Jain's fairness index (Σx)²/(n·Σx²) over the per-origin
// delivered counts: 1 when every origin gets an equal share, →1/n when one
// origin starves the rest. Degenerate inputs (no origins, nothing delivered)
// report 1.
func jainIndex(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if len(xs) == 0 || sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// runOverloadCell executes one (topology, protocol, barring, mult) run and
// condenses it into the family's metrics.
func runOverloadCell(arena *scenario.Arena, c overloadCase, mk scenario.MACKind, bar barring.Config, mult float64, mode Mode, seed uint64) map[string]float64 {
	cfg := overloadConfig(c, mk, bar, mult, mode, seed)
	cfg.Arena = arena
	trace := newDynTrace(cfg.Duration)
	cfg.OnEvalGenerate, cfg.OnEvalDeliver = trace.hooks()
	res := scenario.Run(cfg)

	window := (cfg.Duration - mode.Warmup).Seconds()
	var delivered, barred, deadlineDrops float64
	var perOrigin []float64
	for i := range res.Nodes {
		n := &res.Nodes[i]
		delivered += float64(n.Delivered)
		barred += float64(n.MAC.Barred)
		deadlineDrops += float64(n.MAC.DeadlineDrops)
		if n.Generated > 0 {
			perOrigin = append(perOrigin, float64(n.Delivered))
		}
	}
	return map[string]float64{
		"thr":      delivered / window,
		"p50":      trace.delayQuantile(0.50),
		"p95":      trace.delayQuantile(0.95),
		"p99":      trace.delayQuantile(0.99),
		"jain":     jainIndex(perOrigin),
		"barred":   barred,
		"deadline": deadlineDrops,
	}
}

// overloadCell addresses one grid point.
type overloadCell struct {
	caseIdx, macIdx, barIdx, multIdx int
}

// RunOverload regenerates the overload family: an offered-load sweep
// (0.2x-4x of each topology's baseline operating point) for every registered
// capture-less protocol, with and without AIMD access-class barring. One
// table per topology plus a cross-topology stability-verdict table.
func RunOverload(mode Mode) []*Table {
	cases := overloadCases()
	macs := baselineMACs()
	bars := overloadBarrings()

	var cells []overloadCell
	for ci := range cases {
		for mi := range macs {
			for bi := range bars {
				for li := range cases[ci].mults {
					cells = append(cells, overloadCell{ci, mi, bi, li})
				}
			}
		}
	}
	ests, repErrs := runGrid(len(cells), mode.Reps, mode.Parallel,
		func(arena *scenario.Arena, cell int, seed uint64) map[string]float64 {
			cl := cells[cell]
			c := cases[cl.caseIdx]
			return runOverloadCell(arena, c, macs[cl.macIdx], bars[cl.barIdx].cfg, c.mults[cl.multIdx], mode, seed)
		})
	at := func(cl overloadCell) map[string]stats.Estimate {
		for i, c := range cells {
			if c == cl {
				return ests[i]
			}
		}
		panic("overload: unknown cell")
	}

	var tables []*Table
	for ci, c := range cases {
		t := &Table{
			ID:    "Ovl. " + c.name,
			Title: fmt.Sprintf("offered-load sweep on %s (1x = δ=%g pkt/s per source), without and with AIMD barring", c.name, c.delta),
			Columns: []string{
				"protocol", "load", "thr off [pkt/s]", "thr aimd [pkt/s]",
				"delay p50/p95/p99 off [s]", "delay p50/p95/p99 aimd [s]",
				"Jain off", "Jain aimd", "barred",
			},
		}
		for mi, mk := range macs {
			for li, mult := range c.mults {
				off := at(overloadCell{ci, mi, 0, li})
				on := at(overloadCell{ci, mi, 1, li})
				t.AddRow(mk.String(), fmt.Sprintf("%gx", mult),
					f2(off["thr"].Mean), f2(on["thr"].Mean),
					fmt.Sprintf("%s/%s/%s", f3(off["p50"].Mean), f3(off["p95"].Mean), f3(off["p99"].Mean)),
					fmt.Sprintf("%s/%s/%s", f3(on["p50"].Mean), f3(on["p95"].Mean), f3(on["p99"].Mean)),
					f3(off["jain"].Mean), f3(on["jain"].Mean),
					f2(on["barred"].Mean))
			}
		}
		t.Notes = append(t.Notes,
			"thr = delivered evaluation packets per second of the whole measurement window; the load multiplier scales the Poisson rate over a fixed generation window, so overload is sustained",
			"barring defers fresh channel-access attempts on a failed Bernoulli(p) draw; the AIMD controller halves p when the sink's observed collision ratio exceeds 0.1 and reopens additively")
		if ci == 0 {
			noteRepErrors(t, repErrs)
		}
		tables = append(tables, t)
	}

	verdict := &Table{
		ID:    "Ovl. verdict",
		Title: fmt.Sprintf("stability verdict: plateau = throughput at 3x load retains ≥%g%% of its 1x value, collapse otherwise", overloadRetention*100),
		Columns: []string{
			"topology", "protocol", "thr 1x→3x off", "verdict off", "thr 1x→3x aimd", "verdict aimd",
		},
	}
	judge := func(thr1, thr3 float64) string {
		if thr3 >= overloadRetention*thr1 {
			return "plateau"
		}
		return "collapse"
	}
	for ci, c := range cases {
		li1, li3 := -1, -1
		for li, m := range c.mults {
			if m == 1 {
				li1 = li
			}
			if m == 3 {
				li3 = li
			}
		}
		if li1 < 0 || li3 < 0 {
			continue
		}
		for mi, mk := range macs {
			off1 := at(overloadCell{ci, mi, 0, li1})["thr"].Mean
			off3 := at(overloadCell{ci, mi, 0, li3})["thr"].Mean
			on1 := at(overloadCell{ci, mi, 1, li1})["thr"].Mean
			on3 := at(overloadCell{ci, mi, 1, li3})["thr"].Mean
			verdict.AddRow(c.name, mk.String(),
				fmt.Sprintf("%s→%s", f2(off1), f2(off3)), judge(off1, off3),
				fmt.Sprintf("%s→%s", f2(on1), f2(on3)), judge(on1, on3))
		}
	}
	verdict.Notes = append(verdict.Notes,
		"graceful degradation = the aimd column plateaus where the off column collapses: barring trades individual access latency for aggregate stability")
	tables = append(tables, verdict)
	return tables
}
