package bandit

import (
	"fmt"

	"qma/internal/mac"
	"qma/internal/qlearn"
	"qma/internal/sim"
)

func init() {
	mac.Register(mac.Protocol{
		Name:          Proto,
		Aliases:       []string{"mab"},
		Display:       "slot bandit",
		Validate:      validateOptions,
		ParseOptions:  parseOptions,
		AdoptExplorer: adoptExplorer,
		New: func(cfg mac.Config, opts any, rng *sim.Rand) mac.Engine {
			var o Options
			if opts != nil {
				o = opts.(Options)
			}
			return New(Config{
				MAC: cfg, Picker: o.Picker, Explorer: o.Explorer, UCBC: o.UCBC, Rng: rng,
			})
		},
	})
}

// parseOptions maps -mac-opt key=value pairs onto Options. The ε-schedule
// keys (eps0/halflife/epsmin) start from the DefaultExplorer schedule so a
// partial override (say, halflife alone) keeps the other parameters sane
// instead of silently zeroing exploration.
func parseOptions(kv map[string]string) (any, error) {
	var o Options
	schedule := *DefaultExplorer().(*qlearn.EpsilonGreedy)
	halfLifeSeconds := schedule.HalfLife.Seconds()
	touched := false
	touch := func(dst *float64) mac.KVField {
		f := mac.FloatField(dst)
		return func(v string) error { touched = true; return f(v) }
	}
	err := mac.ParseKV(Proto, kv, map[string]mac.KVField{
		"picker": mac.EnumField(func(p Picker) { o.Picker = p },
			map[string]Picker{"egreedy": EpsilonGreedy, "ucb": UCB1}),
		"ucbc":     mac.FloatField(&o.UCBC),
		"eps0":     touch(&schedule.Eps0),
		"halflife": touch(&halfLifeSeconds),
		"epsmin":   touch(&schedule.Min),
	})
	if err != nil {
		return nil, err
	}
	if touched {
		schedule.HalfLife = sim.FromSeconds(halfLifeSeconds)
		o.Explorer = &schedule
	}
	return o, nil
}

// adoptExplorer implements the registry's AdoptExplorer hook: a
// scenario-level exploration strategy becomes the bandit's ε source unless
// the options already carry one.
func adoptExplorer(opts any, explorer qlearn.Explorer) any {
	var o Options
	if opts != nil {
		o = opts.(Options)
	}
	if o.Explorer == nil {
		o.Explorer = explorer
	}
	return o
}

func validateOptions(opts any) error {
	if opts == nil {
		return nil
	}
	o, ok := opts.(Options)
	if !ok {
		return mac.OptionsError(Proto, opts, Options{})
	}
	if o.Picker > UCB1 {
		return fmt.Errorf("bandit: unknown picker %d", o.Picker)
	}
	if o.UCBC < 0 {
		return fmt.Errorf("bandit: UCBC must not be negative, got %g", o.UCBC)
	}
	return nil
}
