package bandit

import (
	"fmt"

	"qma/internal/mac"
	"qma/internal/sim"
)

func init() {
	mac.Register(mac.Protocol{
		Name:     Proto,
		Aliases:  []string{"mab"},
		Display:  "slot bandit",
		Validate: validateOptions,
		New: func(cfg mac.Config, opts any, rng *sim.Rand) mac.Engine {
			var o Options
			if opts != nil {
				o = opts.(Options)
			}
			return New(Config{
				MAC: cfg, Picker: o.Picker, Explorer: o.Explorer, UCBC: o.UCBC, Rng: rng,
			})
		},
	})
}

func validateOptions(opts any) error {
	if opts == nil {
		return nil
	}
	o, ok := opts.(Options)
	if !ok {
		return mac.OptionsError(Proto, opts, Options{})
	}
	if o.Picker > UCB1 {
		return fmt.Errorf("bandit: unknown picker %d", o.Picker)
	}
	if o.UCBC < 0 {
		return fmt.Errorf("bandit: UCBC must not be negative, got %g", o.UCBC)
	}
	return nil
}
