// Package bandit implements a stateless multi-armed-bandit MAC: the CAP
// subslots are the arms, the acknowledgement outcome of a transmission in a
// subslot is the reward, and an ε-greedy or UCB1 picker chooses the next
// transmission slot. It is the cheapest learning baseline between blind
// contention (ALOHA, CSMA/CA) and QMA's full Q-learning: like QMA it can
// discover a collision-free slot schedule, but it learns a single
// value-per-slot (no state-transition structure, no discounting, no
// backoff/CCA/send action split), which is the design point of the NN-bandit
// alarm-scenario line of work (arXiv:2407.16877) reduced to a lookup table.
//
// The ε-greedy picker reuses internal/qlearn's Explorer strategies, so the
// bandit can run with a decaying ε, a constant ε, or even the paper's
// parameter-based queue-difference exploration — making the "how much does
// the state machine matter" comparison to QMA direct.
package bandit

import (
	"math"

	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/qlearn"
	"qma/internal/sim"
)

// Proto is the bandit MAC's canonical registry key.
const Proto = "bandit"

// Picker selects the arm-selection rule.
type Picker uint8

const (
	// EpsilonGreedy explores with probability ε (from the configured
	// qlearn.Explorer) and exploits the best-valued slot otherwise.
	EpsilonGreedy Picker = iota
	// UCB1 picks the slot maximizing value + C·sqrt(ln T / n).
	UCB1
)

// String implements fmt.Stringer.
func (p Picker) String() string {
	if p == UCB1 {
		return "ucb"
	}
	return "egreedy"
}

// DefaultUCBC is the UCB1 exploration constant √2.
var DefaultUCBC = math.Sqrt2

// DefaultExplorer returns the ε-source used when none is configured: a
// decaying ε-greedy schedule (ε₀=0.3, half-life 30 s, floor 0.02).
func DefaultExplorer() qlearn.Explorer {
	return &qlearn.EpsilonGreedy{Eps0: 0.3, HalfLife: 30 * sim.Second, Min: 0.02}
}

// Options tunes a bandit engine through the protocol registry. The zero
// value (or nil options) selects ε-greedy with the default decay schedule.
type Options struct {
	// Picker selects the arm-selection rule.
	Picker Picker
	// Explorer supplies ε for the EpsilonGreedy picker (nil selects
	// DefaultExplorer). Ignored by UCB1.
	Explorer qlearn.Explorer
	// UCBC is the UCB1 exploration constant (0 selects √2). Ignored by
	// EpsilonGreedy.
	UCBC float64
}

// Config assembles a bandit engine.
type Config struct {
	// MAC configures the shared MAC base.
	MAC mac.Config
	// Picker selects the arm-selection rule.
	Picker Picker
	// Explorer supplies ε for the EpsilonGreedy picker (nil selects
	// DefaultExplorer).
	Explorer qlearn.Explorer
	// UCBC is the UCB1 exploration constant (0 selects √2).
	UCBC float64
	// Rng drives exploration decisions; required.
	Rng *sim.Rand
}

// Stats aggregates bandit-specific counters.
type Stats struct {
	// Pulls counts arm selections (scheduled transmission attempts).
	Pulls uint64
	// Explorations counts randomly selected arms (ε-greedy only).
	Explorations uint64
	// Deferrals counts pulls whose transaction did not fit into the CAP
	// from the chosen slot; they are rewarded 0 so the bandit learns to
	// avoid slots too close to the CAP end.
	Deferrals uint64
	// BusyWaits counts pulls postponed a superframe because the node was
	// mid-activity at the slot boundary (no reward charged).
	BusyWaits uint64
}

// Engine is one node's bandit MAC.
type Engine struct {
	base *mac.Base
	cfg  Config

	// value and count hold the per-slot sample-mean reward estimates.
	// Values start at 1 (optimistic for a {0,1} reward) so every slot is
	// tried once before exploitation settles; the first real sample
	// overwrites the prior exactly.
	value []float64
	count []uint64
	total uint64

	stats Stats

	// pulling guards against two concurrent scheduled attempts.
	pulling bool

	// epoch counts power-cycle faults (mac.Rebooter); see at().
	epoch uint32
}

var _ mac.Engine = (*Engine)(nil)

// New assembles an engine from cfg, panicking on an invalid configuration.
func New(cfg Config) *Engine {
	if cfg.Rng == nil {
		panic("bandit: Rng is required")
	}
	if cfg.MAC.Clock == nil {
		panic("bandit: MAC.Clock is required")
	}
	if cfg.Explorer == nil {
		cfg.Explorer = DefaultExplorer()
	}
	if cfg.UCBC == 0 {
		cfg.UCBC = DefaultUCBC
	}
	if cfg.MAC.OnAccept != nil {
		panic("bandit: MAC.OnAccept is owned by the engine")
	}
	subslots := cfg.MAC.Clock.Config().Subslots
	e := &Engine{
		cfg:   cfg,
		value: make([]float64, subslots),
		count: make([]uint64, subslots),
	}
	for i := range e.value {
		e.value[i] = 1
	}
	cfg.MAC.OnAccept = e.kick
	e.base = mac.NewBase(cfg.MAC)
	return e
}

// Base implements mac.Engine.
func (e *Engine) Base() *mac.Base { return e.base }

// Deliver implements radio.Handler by delegating to the shared receive path.
func (e *Engine) Deliver(f *frame.Frame) { e.base.Deliver(f) }

// EngineStats returns a copy of the bandit-specific counters.
func (e *Engine) EngineStats() Stats { return e.stats }

// Values returns a copy of the per-slot reward estimates.
func (e *Engine) Values() []float64 { return append([]float64(nil), e.value...) }

// Counts returns a copy of the per-slot pull counts.
func (e *Engine) Counts() []uint64 { return append([]uint64(nil), e.count...) }

// BestSlot reports the currently exploited arm (lowest index on ties).
func (e *Engine) BestSlot() int { return e.argmaxValue() }

// Start implements mac.Engine.
func (e *Engine) Start() { e.kick() }

// Enqueue implements mac.Engine, arming a pull when traffic arrives.
func (e *Engine) Enqueue(f *frame.Frame) bool {
	ok := e.base.Enqueue(f)
	if ok {
		e.kick()
	}
	return ok
}

// Reboot implements mac.Rebooter: wipe the per-slot reward estimates back
// to their optimistic prior along with the shared MAC state, then resume
// with whatever traffic arrives next — the bandit relearns from scratch.
func (e *Engine) Reboot() {
	e.base.Reboot()
	for i := range e.value {
		e.value[i] = 1
		e.count[i] = 0
	}
	e.total = 0
	e.pulling = false
	e.epoch++
	e.kick()
}

// kick arms the next pull if none is pending and traffic waits.
func (e *Engine) kick() {
	if e.pulling || e.base.Queue().Empty() {
		return
	}
	if barred, retryAt := e.base.AccessBarred(); barred {
		// Access-class barring: hold the pull and retry once the barring
		// backoff has passed (a fresh Bernoulli draw happens then).
		e.pulling = true
		e.at(retryAt, func() {
			e.pulling = false
			e.kick()
		})
		return
	}
	e.pulling = true
	m := e.pick()
	e.at(e.nextSlotStart(m), func() { e.fire(m) })
}

// at schedules fn at the absolute instant t, bound to the engine's current
// reboot epoch: a power-cycle fault (mac.Rebooter) bumps the epoch, turning
// every in-flight continuation — backoff expiries, CCA completions, slot
// boundaries — into a no-op instead of letting it operate on a flushed
// queue. Without faults the epoch never changes and the guard is a single
// always-true comparison.
func (e *Engine) at(t sim.Time, fn func()) {
	ep := e.epoch
	e.base.Kernel().At(t, func() {
		if e.epoch == ep {
			fn()
		}
	})
}

// nextSlotStart reports the first strictly future start of subslot m.
func (e *Engine) nextSlotStart(m int) sim.Time {
	now := e.base.Kernel().Now()
	t := e.base.Clock().SubslotStart(now, m)
	if t <= now {
		t += e.base.Clock().Config().SuperframeDuration()
	}
	return t
}

// pick selects the next arm.
func (e *Engine) pick() int {
	e.stats.Pulls++
	e.total++
	if e.cfg.Picker == UCB1 {
		return e.pickUCB()
	}
	rho := e.cfg.Explorer.Rate(qlearn.ExploreContext{
		Now:              e.base.Kernel().Now(),
		QueueLevel:       e.base.Queue().Len(),
		AvgNeighborQueue: e.base.AvgNeighborQueue(),
	})
	if e.cfg.Rng.Float64() < rho {
		e.stats.Explorations++
		return e.cfg.Rng.Intn(len(e.value))
	}
	return e.argmaxValue()
}

func (e *Engine) argmaxValue() int {
	best := 0
	for m := 1; m < len(e.value); m++ {
		if e.value[m] > e.value[best] {
			best = m
		}
	}
	return best
}

func (e *Engine) pickUCB() int {
	// Unpulled arms first, in slot order.
	for m, n := range e.count {
		if n == 0 {
			return m
		}
	}
	lnT := math.Log(float64(e.total))
	best, bestScore := 0, math.Inf(-1)
	for m := range e.value {
		score := e.value[m] + e.cfg.UCBC*math.Sqrt(lnT/float64(e.count[m]))
		if score > bestScore {
			best, bestScore = m, score
		}
	}
	return best
}

// update folds one reward sample into arm m's running mean.
func (e *Engine) update(m int, reward float64) {
	e.count[m]++
	e.value[m] += (reward - e.value[m]) / float64(e.count[m])
}

// fire attempts a transmission at the start of the chosen subslot.
func (e *Engine) fire(m int) {
	f := e.base.Queue().Head()
	if f == nil {
		// The queue drained (frame dropped elsewhere); no reward.
		e.pulling = false
		e.kick()
		return
	}
	now := e.base.Kernel().Now()
	if e.base.Busy() {
		// Mid-activity (ACK duty): retry the same arm next superframe
		// without charging it a reward — the slot was never tried.
		e.stats.BusyWaits++
		e.at(e.nextSlotStart(m), func() { e.fire(m) })
		return
	}
	cost := f.Duration()
	if !f.IsBroadcast() {
		cost += frame.AckWait
	}
	if !e.base.Clock().FitsInCAP(now, cost) {
		// The transaction cannot complete from this slot: reward 0 so the
		// bandit learns to avoid slots hugging the CAP end, then pick
		// again.
		e.stats.Deferrals++
		e.update(m, 0)
		e.pulling = false
		e.kick()
		return
	}
	e.base.SendFrame(f, func(success bool) {
		reward := 0.0
		if success {
			reward = 1
		}
		e.update(m, reward)
		e.base.FinishFrame(f, success)
		e.pulling = false
		e.kick()
	})
}
