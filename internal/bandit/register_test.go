package bandit

import (
	"testing"

	"qma/internal/qlearn"
	"qma/internal/sim"
)

func TestParseOptionsKV(t *testing.T) {
	got, err := parseOptions(map[string]string{"picker": "ucb", "ucbc": "2.0"})
	if err != nil {
		t.Fatal(err)
	}
	o := got.(Options)
	if o.Picker != UCB1 || o.UCBC != 2.0 || o.Explorer != nil {
		t.Errorf("parsed %+v", o)
	}

	got, err = parseOptions(map[string]string{"eps0": "0.3", "halflife": "30", "epsmin": "0.02"})
	if err != nil {
		t.Fatal(err)
	}
	o = got.(Options)
	eg, ok := o.Explorer.(*qlearn.EpsilonGreedy)
	if !ok {
		t.Fatalf("ε keys did not build an EpsilonGreedy explorer: %+v", o)
	}
	if eg.Eps0 != 0.3 || eg.HalfLife != sim.FromSeconds(30) || eg.Min != 0.02 {
		t.Errorf("explorer %+v", eg)
	}

	// A partial ε override keeps the rest of the default schedule: halflife
	// alone must not zero Eps0 (which would disable exploration entirely).
	got, err = parseOptions(map[string]string{"halflife": "60"})
	if err != nil {
		t.Fatal(err)
	}
	eg, ok = got.(Options).Explorer.(*qlearn.EpsilonGreedy)
	def := DefaultExplorer().(*qlearn.EpsilonGreedy)
	if !ok || eg.Eps0 != def.Eps0 || eg.Min != def.Min || eg.HalfLife != sim.FromSeconds(60) {
		t.Errorf("partial schedule override drifted from the default schedule: %+v", eg)
	}

	if _, err := parseOptions(map[string]string{"picker": "thompson"}); err == nil {
		t.Error("unknown picker accepted")
	}
	if _, err := parseOptions(map[string]string{"arms": "9"}); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestAdoptExplorer(t *testing.T) {
	ex := qlearn.Constant{Eps: 0.1}
	o := adoptExplorer(nil, ex).(Options)
	if o.Explorer != ex {
		t.Errorf("adoptExplorer(nil) = %+v", o)
	}
	prior := qlearn.Constant{Eps: 0.7}
	o = adoptExplorer(Options{Explorer: prior, Picker: UCB1}, ex).(Options)
	if o.Explorer != prior || o.Picker != UCB1 {
		t.Errorf("adoptExplorer must keep existing options intact: %+v", o)
	}
}

func TestValidateOptions(t *testing.T) {
	if err := validateOptions(nil); err != nil {
		t.Errorf("nil options rejected: %v", err)
	}
	if err := validateOptions(Options{Picker: UCB1 + 1}); err == nil {
		t.Error("unknown picker value accepted")
	}
	if err := validateOptions(Options{UCBC: -1}); err == nil {
		t.Error("negative UCBC accepted")
	}
	if err := validateOptions("x"); err == nil {
		t.Error("foreign options type accepted")
	}
}
