package bandit

import (
	"testing"

	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/qlearn"
	"qma/internal/radio"
	"qma/internal/sim"
	"qma/internal/superframe"
)

type rig struct {
	k       *sim.Kernel
	m       *radio.Medium
	clock   *superframe.Clock
	engines []*Engine
}

func newRig(t *testing.T, links [][2]int, n int, opts Options) *rig {
	t.Helper()
	g := radio.NewGraphTopology(n)
	for _, l := range links {
		g.AddLink(frame.NodeID(l[0]), frame.NodeID(l[1]))
	}
	k := sim.NewKernel()
	m := radio.NewMedium(k, g, sim.NewRand(7))
	clock := superframe.NewClock(superframe.DefaultConfig())
	r := &rig{k: k, m: m, clock: clock}
	for i := 0; i < n; i++ {
		e := New(Config{
			MAC:      mac.Config{ID: frame.NodeID(i), Kernel: k, Medium: m, Clock: clock, MaxRetries: -1},
			Picker:   opts.Picker,
			Explorer: opts.Explorer,
			UCBC:     opts.UCBC,
			Rng:      sim.NewRandStream(7, uint64(i)),
		})
		r.engines = append(r.engines, e)
		m.Attach(frame.NodeID(i), e)
		e.Start()
	}
	return r
}

func dataTo(dst, src frame.NodeID, seq uint32) *frame.Frame {
	return &frame.Frame{Kind: frame.Data, Src: src, Dst: dst, Origin: src, Sink: dst, Seq: seq, MPDUBytes: 40}
}

func TestDeliversOnIdleChannel(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}}, 2, Options{})
	for i := 0; i < 20; i++ {
		f := dataTo(1, 0, uint32(i+1))
		r.k.Schedule(sim.Time(i)*100*sim.Millisecond, func() { r.engines[0].Enqueue(f) })
	}
	r.k.Run(8 * sim.Second)
	s := r.engines[0].Base().Stats()
	if s.TxSuccess != 20 {
		t.Fatalf("stats: %+v", s)
	}
	if r.engines[1].Base().Stats().Delivered != 20 {
		t.Fatalf("receiver delivered %d", r.engines[1].Base().Stats().Delivered)
	}
	if es := r.engines[0].EngineStats(); es.Pulls == 0 {
		t.Errorf("no pulls recorded: %+v", es)
	}
}

// TestUCBTriesEveryArmOnce pins the UCB1 cold-start rule: before any arm is
// pulled twice, every arm must have been pulled once (in slot order).
func TestUCBTriesEveryArmOnce(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}}, 2, Options{Picker: UCB1})
	subslots := r.clock.Config().Subslots
	// One pull per superframe at worst (queue cap is 8): pace arrivals at
	// superframe rate so no frame is dropped and every arrival buys a pull.
	sfd := r.clock.Config().SuperframeDuration()
	for i := 0; i < subslots+10; i++ {
		f := dataTo(1, 0, uint32(i+1))
		r.k.Schedule(sim.Time(i)*sfd, func() { r.engines[0].Enqueue(f) })
	}
	r.k.Run(sim.Time(subslots+16) * sfd)
	counts := r.engines[0].Counts()
	covered := 0
	for _, c := range counts {
		if c > 0 {
			covered++
		}
	}
	if covered != subslots {
		t.Errorf("UCB covered %d/%d arms before exploiting", covered, subslots)
	}
}

// TestRewardTracksOutcome pins the value update: a successful unicast
// rewards its slot 1, an unacknowledged one rewards it 0.
func TestRewardTracksOutcome(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}}, 2, Options{Explorer: qlearn.None{}})
	r.engines[0].Enqueue(dataTo(1, 0, 1))
	r.k.Run(2 * r.clock.Config().SuperframeDuration())
	if v := r.engines[0].Values(); v[r.engines[0].BestSlot()] != 1 {
		t.Errorf("successful slot value = %v, want 1", v[r.engines[0].BestSlot()])
	}
	// No receiver: the retry policy burns 4 attempts, each rewarding 0.
	r2 := newRig(t, [][2]int{{0, 1}}, 2, Options{Explorer: qlearn.None{}})
	r2.engines[0].Enqueue(dataTo(5, 0, 1))
	r2.k.Run(8 * r2.clock.Config().SuperframeDuration())
	if s := r2.engines[0].Base().Stats(); s.RetryDrops != 1 {
		t.Fatalf("stats: %+v", s)
	}
	zeroed := 0
	for _, v := range r2.engines[0].Values() {
		if v == 0 {
			zeroed++
		}
	}
	if zeroed == 0 {
		t.Error("no slot learned a zero value from failed transmissions")
	}
}

// TestHiddenSendersSeparate is the headline property: two saturated hidden
// senders start with identical value tables, collide, and ε-exploration
// breaks the symmetry until they exploit different subslots.
func TestHiddenSendersSeparate(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}, {1, 2}}, 3, Options{})
	seq := uint32(0)
	for i := 0; i < 400; i++ {
		seq++
		r.engines[0].Enqueue(dataTo(1, 0, seq))
		r.engines[2].Enqueue(dataTo(1, 2, seq))
		r.k.Run(r.k.Now() + 60*sim.Millisecond)
	}
	r.k.Run(r.k.Now() + 5*sim.Second)
	b0, b2 := r.engines[0].BestSlot(), r.engines[2].BestSlot()
	if b0 == b2 {
		t.Errorf("both hidden senders exploit subslot %d", b0)
	}
	del := r.engines[1].Base().Stats().Delivered
	if del < 400 {
		t.Errorf("sink delivered %d of 800 frames — bandit never settled", del)
	}
}

// TestCAPEndSlotsArePunished pins the livelock guard: a pull whose
// transaction cannot complete before the CAP end is rewarded 0 instead of
// being rescheduled forever.
func TestCAPEndSlotsArePunished(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}}, 2, Options{Picker: UCB1})
	subslots := r.clock.Config().Subslots
	sfd := r.clock.Config().SuperframeDuration()
	for i := 0; i < subslots+10; i++ {
		f := dataTo(1, 0, uint32(i+1))
		// A fat frame: its transaction cannot complete from the last slots.
		f.MPDUBytes = 120
		r.k.Schedule(sim.Time(i)*sfd, func() { r.engines[0].Enqueue(f) })
	}
	r.k.Run(sim.Time(subslots+16) * sfd)
	es := r.engines[0].EngineStats()
	if es.Deferrals == 0 {
		t.Fatal("no CAP-end deferral recorded for a fat frame sweep")
	}
	v := r.engines[0].Values()
	if v[len(v)-1] != 0 {
		t.Errorf("last subslot value = %v, want 0 (unusable for this frame size)", v[len(v)-1])
	}
}

func TestPickerStringAndBadConfig(t *testing.T) {
	if EpsilonGreedy.String() != "egreedy" || UCB1.String() != "ucb" {
		t.Error("picker names wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without Rng")
		}
	}()
	New(Config{})
}
