// Package core implements QMA itself (§4): the Q-learning channel access
// engine that runs Algorithm 1 over the CAP subslots, the reward function of
// Eqs. 6–8, cautious startup (§4.3) and parameter-based exploration (§4.2).
// It embeds the shared MAC base (internal/mac), so everything except the
// access discipline — queues, ACKs, retries, forwarding — is identical
// between QMA and the CSMA/CA baselines.
package core

import "fmt"

// Action is one of QMA's three channel access actions (§4).
type Action uint8

const (
	// QBackoff waits for the next subslot.
	QBackoff Action = iota
	// QCCA performs a clear channel assessment, transmits on an idle channel
	// and backs off to the next subslot otherwise.
	QCCA
	// QSend transmits immediately without assessing the channel (the
	// high-risk, high-reward priority action).
	QSend
	// NumActions is the size of the action space.
	NumActions = 3
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case QBackoff:
		return "QBackoff"
	case QCCA:
		return "QCCA"
	case QSend:
		return "QSend"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// Rewards of Eqs. 6–8. The values balance the three actions against each
// other; the paper stresses they are the result of extensive experimentation
// (e.g. raising RewardSendSuccess to 8 makes every node spam QSend).
const (
	// RewardBackoffOverhear is Eq. 6: a DATA or ACK frame was overheard
	// while backing off — the subslot is owned by a neighbour.
	RewardBackoffOverhear = 2
	// RewardBackoffIdle is Eq. 6: nothing was overheard.
	RewardBackoffIdle = 0
	// RewardCCASuccessTx is Eq. 7: CCA idle and the transmission succeeded.
	RewardCCASuccessTx = 3
	// RewardCCAFailedTx is Eq. 7: CCA idle but the transmission failed.
	RewardCCAFailedTx = -2
	// RewardCCABusy is Eq. 7: the CCA found the channel busy.
	RewardCCABusy = 1
	// RewardSendSuccess is Eq. 8: QSend succeeded.
	RewardSendSuccess = 4
	// RewardSendFail is Eq. 8: QSend collided.
	RewardSendFail = -3
	// StartupPunishCCA and StartupPunishSend are the §4.3 cautious-startup
	// punishments recorded for subslots in which foreign traffic was
	// overheard.
	StartupPunishCCA  = -2
	StartupPunishSend = -3
)
