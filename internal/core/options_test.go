package core

import (
	"testing"

	"qma/internal/mac"
	"qma/internal/qlearn"
)

func TestParseOptionsKV(t *testing.T) {
	got, err := parseOptions(map[string]string{"table": "fixed", "alpha": "0.25", "startup": "10"})
	if err != nil {
		t.Fatal(err)
	}
	o := got.(Options)
	if o.Table != TableFixed || o.StartupSubslots != 10 {
		t.Errorf("parsed %+v", o)
	}
	// A partial hyperparameter override starts from the paper's defaults.
	if o.Learn.Alpha != 0.25 || o.Learn.Gamma != qlearn.DefaultParams().Gamma ||
		o.Learn.InitQ != qlearn.DefaultParams().InitQ {
		t.Errorf("learn %+v drifted from defaults", o.Learn)
	}

	// No hyperparameter keys: Learn stays zero so the engine default applies
	// (the zero value selects DefaultParams downstream).
	got, err = parseOptions(map[string]string{"table": "quant"})
	if err != nil {
		t.Fatal(err)
	}
	if o := got.(Options); o.Learn != (qlearn.Params{}) || o.Table != TableQuant {
		t.Errorf("parsed %+v, want zero Learn", o)
	}

	if _, err := parseOptions(map[string]string{"table": "sparse"}); err == nil {
		t.Error("unknown table kind accepted")
	}
	if _, err := parseOptions(map[string]string{"rho": "0.1"}); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestAdoptExplorer(t *testing.T) {
	ex := qlearn.Constant{Eps: 0.3}
	o := adoptExplorer(nil, ex).(Options)
	if o.Explorer != ex {
		t.Errorf("adoptExplorer(nil) = %+v", o)
	}
	prior := qlearn.Constant{Eps: 0.8}
	o = adoptExplorer(Options{Explorer: prior, Table: TableFixed}, ex).(Options)
	if o.Explorer != prior || o.Table != TableFixed {
		t.Errorf("adoptExplorer must not override or drop fields: %+v", o)
	}
}

func TestRegistryEntry(t *testing.T) {
	p, ok := mac.Lookup(ProtocolName)
	if !ok {
		t.Fatal("qma not registered")
	}
	if p.NeedsCapture {
		t.Error("qma must not require a capture-enabled medium")
	}
	if err := p.Validate(Options{Table: TableQuant + 1}); err == nil {
		t.Error("Validate accepted an unknown table kind")
	}
	if err := p.Validate(42); err == nil {
		t.Error("Validate accepted foreign options")
	}
}
