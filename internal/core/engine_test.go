package core

import (
	"testing"

	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/qlearn"
	"qma/internal/radio"
	"qma/internal/sim"
	"qma/internal/superframe"
)

// rig wires QMA engines over an explicit graph.
type rig struct {
	k       *sim.Kernel
	m       *radio.Medium
	clock   *superframe.Clock
	engines []*Engine
}

func newRig(t *testing.T, links [][2]int, n int, mut func(i int, c *Config)) *rig {
	t.Helper()
	g := radio.NewGraphTopology(n)
	for _, l := range links {
		g.AddLink(frame.NodeID(l[0]), frame.NodeID(l[1]))
	}
	k := sim.NewKernel()
	m := radio.NewMedium(k, g, sim.NewRand(42))
	clock := superframe.NewClock(superframe.DefaultConfig())
	r := &rig{k: k, m: m, clock: clock}
	for i := 0; i < n; i++ {
		cfg := Config{
			MAC: mac.Config{
				ID:     frame.NodeID(i),
				Kernel: k,
				Medium: m,
				Clock:  clock,
			},
			Rng:             sim.NewRandStream(42, uint64(i)),
			StartupSubslots: 0, // disabled unless a test enables it
		}
		if mut != nil {
			mut(i, &cfg)
		}
		e := New(cfg)
		r.engines = append(r.engines, e)
		m.Attach(frame.NodeID(i), e)
		e.Start()
	}
	return r
}

func dataTo(dst frame.NodeID, src frame.NodeID, seq uint32) *frame.Frame {
	return &frame.Frame{Kind: frame.Data, Src: src, Dst: dst, Origin: src, Sink: dst, Seq: seq, MPDUBytes: 40}
}

func TestIdleEngineTakesNoActions(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}}, 2, nil)
	r.k.Run(2 * sim.Second)
	st := r.engines[0].EngineStats()
	if st.Decisions != 0 {
		t.Errorf("decisions = %d with an empty queue, want 0 (Algorithm 1 gate)", st.Decisions)
	}
	if r.engines[0].Learner().Updates() != 0 {
		t.Errorf("%d Q-updates without traffic", r.engines[0].Learner().Updates())
	}
}

func TestSingleNodeLearnsToTransmit(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}}, 2, nil)
	for i := 0; i < 50; i++ {
		r.engines[0].Enqueue(dataTo(1, 0, uint32(i+1)))
		r.k.Run(r.k.Now() + 500*sim.Millisecond)
	}
	st := r.engines[0].Base().Stats()
	if st.TxSuccess == 0 {
		t.Fatalf("no successful transmissions: %+v", st)
	}
	// After learning, some subslot's policy must be a transmit action.
	pol := r.engines[0].Learner().PolicySnapshot()
	tx := 0
	for _, a := range pol {
		if a != int(QBackoff) {
			tx++
		}
	}
	if tx == 0 {
		t.Error("policy still all-QBackoff after 50 successful rounds")
	}
}

func TestCautiousStartupObservesAndPunishes(t *testing.T) {
	var observer *Engine
	r := newRig(t, [][2]int{{0, 1}, {1, 2}}, 3, func(i int, c *Config) {
		if i == 2 {
			c.StartupSubslots = 108
			c.StartupPunish = true
		}
	})
	observer = r.engines[2]
	// Node 0 streams to node 1; node 2 overhears node 1's ACKs.
	for i := 0; i < 20; i++ {
		r.engines[0].Enqueue(dataTo(1, 0, uint32(i+1)))
	}
	r.k.Run(3 * sim.Second)

	st := observer.EngineStats()
	if st.StartupObservations == 0 {
		t.Fatal("no startup observations recorded")
	}
	if st.Decisions != 0 {
		t.Errorf("observer made %d decisions during pure observation", st.Decisions)
	}
	// Subslots with overheard traffic: QBackoff rewarded above the initial
	// -10 and QCCA/QSend punished below it.
	tbl := observer.Learner().Table()
	rewarded, punished := 0, 0
	for m := 0; m < tbl.States(); m++ {
		if tbl.Q(m, int(QBackoff)) > -10 {
			rewarded++
		}
		if tbl.Q(m, int(QSend)) < -10 {
			punished++
		}
	}
	if rewarded == 0 || punished == 0 {
		t.Errorf("startup learned nothing: rewarded=%d punished=%d", rewarded, punished)
	}
}

func TestRewardConstantsMatchTable4(t *testing.T) {
	// Eq. 6-8 / Tbl. 4 exact values.
	if RewardBackoffOverhear != 2 || RewardBackoffIdle != 0 {
		t.Error("QBackoff rewards deviate from Eq. 6")
	}
	if RewardCCASuccessTx != 3 || RewardCCAFailedTx != -2 || RewardCCABusy != 1 {
		t.Error("QCCA rewards deviate from Eq. 7")
	}
	if RewardSendSuccess != 4 || RewardSendFail != -3 {
		t.Error("QSend rewards deviate from Eq. 8")
	}
	// Tbl. 4 global-reward consistency: B S B = 2+4+2 = 8 etc.
	if RewardBackoffOverhear+RewardSendSuccess+RewardBackoffOverhear != 8 {
		t.Error("global reward for B/S/B should be 8")
	}
	if RewardSendFail*3 != -9 {
		t.Error("global reward for S/S/S should be -9")
	}
}

func TestTwoContendersSeparate(t *testing.T) {
	// Full graph: 0 and 2 both stream to 1 and can hear each other — they
	// must learn disjoint transmit subslots.
	r := newRig(t, [][2]int{{0, 1}, {1, 2}, {0, 2}}, 3, nil)
	seq := uint32(0)
	for round := 0; round < 200; round++ {
		seq++
		r.engines[0].Enqueue(dataTo(1, 0, seq))
		r.engines[2].Enqueue(dataTo(1, 2, seq))
		r.k.Run(r.k.Now() + 200*sim.Millisecond)
	}
	p0 := r.engines[0].Learner().PolicySnapshot()
	p2 := r.engines[2].Learner().PolicySnapshot()
	conflicts, tx0, tx2 := 0, 0, 0
	for m := range p0 {
		a0 := p0[m] != int(QBackoff)
		a2 := p2[m] != int(QBackoff)
		if a0 {
			tx0++
		}
		if a2 {
			tx2++
		}
		if a0 && a2 {
			conflicts++
		}
	}
	if tx0 == 0 || tx2 == 0 {
		t.Fatalf("nodes claimed no subslots (tx0=%d tx2=%d)", tx0, tx2)
	}
	if conflicts > 1 {
		t.Errorf("%d conflicting subslots, want <= 1 (cooperative separation)", conflicts)
	}
	// And both should actually deliver.
	for _, id := range []int{0, 2} {
		st := r.engines[id].Base().Stats()
		if float64(st.TxSuccess) < 0.7*float64(st.TxAttempts) {
			t.Errorf("node %d: only %d/%d attempts succeeded", id, st.TxSuccess, st.TxAttempts)
		}
	}
}

func TestEngineRejectsBadConfig(t *testing.T) {
	for name, mut := range map[string]func(*Config){
		"no rng":          func(c *Config) { c.Rng = nil },
		"no clock":        func(c *Config) { c.MAC.Clock = nil },
		"overhear owned":  func(c *Config) { c.MAC.OnOverhear = func(*frame.Frame) {} },
		"table dimension": func(c *Config) { c.Table = qlearn.NewFloatTable(3, 3, qlearn.DefaultParams()) },
	} {
		t.Run(name, func(t *testing.T) {
			k := sim.NewKernel()
			g := radio.NewGraphTopology(1)
			cfg := Config{
				MAC: mac.Config{Kernel: k, Medium: radio.NewMedium(k, g, sim.NewRand(1)),
					Clock: superframe.NewClock(superframe.DefaultConfig())},
				Rng: sim.NewRand(1),
			}
			mut(&cfg)
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			New(cfg)
		})
	}
}

func TestActionStringAndCounts(t *testing.T) {
	if QBackoff.String() != "QBackoff" || QCCA.String() != "QCCA" || QSend.String() != "QSend" {
		t.Error("action names wrong")
	}
	r := newRig(t, [][2]int{{0, 1}}, 2, nil)
	for i := 0; i < 30; i++ {
		r.engines[0].Enqueue(dataTo(1, 0, uint32(i+1)))
		r.k.Run(r.k.Now() + 300*sim.Millisecond)
	}
	counts := r.engines[0].ActionCounts()
	var total uint64
	for _, row := range counts {
		for _, c := range row {
			total += c
		}
	}
	st := r.engines[0].EngineStats()
	if total != st.ActionCount[0]+st.ActionCount[1]+st.ActionCount[2] {
		t.Errorf("per-subslot counts (%d) disagree with totals (%v)", total, st.ActionCount)
	}
	r.engines[0].ResetActionCounts()
	for _, row := range r.engines[0].ActionCounts() {
		if row != [NumActions]uint64{} {
			t.Fatal("ResetActionCounts left residue")
		}
	}
}

func TestRhoSampling(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}}, 2, nil)
	for i := 0; i < 10; i++ {
		r.engines[0].Enqueue(dataTo(1, 0, uint32(i+1)))
	}
	r.k.Run(2 * sim.Second)
	mean, n := r.engines[0].TakeRhoSample()
	if n == 0 {
		t.Fatal("no rho samples despite decisions")
	}
	if mean < 0 || mean > 0.3 {
		t.Errorf("mean rho = %v outside the Fig. 4 range", mean)
	}
	// Second sample starts fresh.
	if _, n2 := r.engines[0].TakeRhoSample(); n2 != 0 {
		t.Errorf("sample window not reset (n=%d)", n2)
	}
}
