package core

import (
	"fmt"

	"qma/internal/mac"
	"qma/internal/qlearn"
	"qma/internal/sim"
)

// ProtocolName is QMA's canonical registry key.
const ProtocolName = "qma"

// TableKind selects the Q-value storage for QMA nodes.
type TableKind uint8

const (
	// TableFloat is the float64 reference table.
	TableFloat TableKind = iota
	// TableFixed is the Q8.8 integer table (§3.2 embedded variant).
	TableFixed
	// TableQuant is the 8-bit saturating table (§7 future-work variant).
	TableQuant
)

// Options tunes the QMA engines of a scenario. It is the registry options
// type for the "qma" protocol (scenario.QMAOptions aliases it).
type Options struct {
	// Learn are the hyperparameters (zero value selects the paper's
	// α=0.5, γ=0.9, ξ=2).
	Learn qlearn.Params
	// Table selects the Q-value representation.
	Table TableKind
	// Explorer decides ρ; nil selects parameter-based exploration (Fig. 4).
	Explorer qlearn.Explorer
	// StartupSubslots is Δ; negative selects the engine default, 0 disables
	// cautious startup.
	StartupSubslots int
	// DisableStartupPunish turns off the §4.3 QCCA/QSend punishments.
	DisableStartupPunish bool
	// ReevalOnDecay enables the policy-reevaluation ablation.
	ReevalOnDecay bool
}

func init() {
	mac.Register(mac.Protocol{
		Name:          ProtocolName,
		Display:       "QMA",
		Validate:      validateOptions,
		ParseOptions:  parseOptions,
		AdoptExplorer: adoptExplorer,
		New: func(cfg mac.Config, opts any, rng *sim.Rand) mac.Engine {
			var o Options
			if opts != nil {
				o = opts.(Options)
			}
			return NewFromOptions(o, cfg, rng)
		},
	})
}

// parseOptions maps -mac-opt key=value pairs onto Options. Learning
// hyperparameters start from the paper's defaults so a single override
// (alpha=0.3) leaves the rest intact.
func parseOptions(kv map[string]string) (any, error) {
	var o Options
	learn := qlearn.DefaultParams()
	touched := false
	fields := mac.LearnParamFields(&learn, &touched)
	fields["table"] = mac.EnumField(func(t TableKind) { o.Table = t },
		map[string]TableKind{"float": TableFloat, "fixed": TableFixed, "quant": TableQuant})
	fields["startup"] = mac.IntField(&o.StartupSubslots)
	if err := mac.ParseKV(ProtocolName, kv, fields); err != nil {
		return nil, err
	}
	if touched {
		o.Learn = learn
	}
	return o, nil
}

// adoptExplorer implements the registry's AdoptExplorer hook for QMA.
func adoptExplorer(opts any, explorer qlearn.Explorer) any {
	var o Options
	if opts != nil {
		o = opts.(Options)
	}
	if o.Explorer == nil {
		o.Explorer = explorer
	}
	return o
}

func validateOptions(opts any) error {
	if opts == nil {
		return nil
	}
	o, ok := opts.(Options)
	if !ok {
		return mac.OptionsError(ProtocolName, opts, Options{})
	}
	if o.Table > TableQuant {
		return fmt.Errorf("core: unknown table kind %d", o.Table)
	}
	return nil
}

// NewFromOptions builds a QMA engine over macCfg from scenario-level options:
// it resolves the table representation, the default hyperparameters and the
// cautious-startup convention (scenario zero value = engine default, negative
// = disabled) before delegating to New.
func NewFromOptions(opts Options, macCfg mac.Config, rng *sim.Rand) *Engine {
	subslots := macCfg.Clock.Config().Subslots
	var table qlearn.Table
	learn := opts.Learn
	if learn == (qlearn.Params{}) {
		learn = qlearn.DefaultParams()
	}
	scratch := macCfg.Scratch
	switch opts.Table {
	case TableFixed:
		table = qlearn.NewFixedTableOn(subslots, NumActions, qlearn.DefaultFixedParams(),
			scratch.Int16s(subslots*NumActions))
	case TableQuant:
		table = qlearn.NewQuantTableOn(subslots, NumActions, qlearn.DefaultQuantParams(),
			scratch.Int8s(subslots*NumActions))
	default:
		table = qlearn.NewFloatTableOn(subslots, NumActions, learn,
			scratch.Float64s(subslots*NumActions))
	}
	startup := opts.StartupSubslots
	switch {
	case startup == 0:
		// The scenario-level zero value means "engine default"; a
		// negative value disables cautious startup.
		startup = -1
	case startup < 0:
		startup = 0
	}
	return New(Config{
		MAC:             macCfg,
		Table:           table,
		Learn:           learn,
		Explorer:        opts.Explorer,
		Rng:             rng,
		StartupSubslots: startup,
		StartupPunish:   !opts.DisableStartupPunish,
		ReevalOnDecay:   opts.ReevalOnDecay,
	})
}
