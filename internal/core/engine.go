package core

import (
	"fmt"

	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/qlearn"
	"qma/internal/sim"
)

// Config assembles a QMA engine.
type Config struct {
	// MAC configures the shared MAC base (node id, kernel, medium, clock,
	// queue, routing). Config.OnOverhear is owned by the engine and must be
	// nil.
	MAC mac.Config
	// Table is the Q-value storage. Nil selects a float64 table with Learn
	// parameters; pass a FixedTable or QuantTable for the embedded variants.
	Table qlearn.Table
	// Learn are the hyperparameters used when Table is nil (zero value
	// selects qlearn.DefaultParams).
	Learn qlearn.Params
	// Explorer decides the exploration rate ρ. Nil selects the paper's
	// parameter-based strategy (Fig. 4 table).
	Explorer qlearn.Explorer
	// Rng drives exploration decisions; required.
	Rng *sim.Rand
	// StartupSubslots is Δ, the number of subslots of cautious startup
	// (§4.3). Negative selects the default of two full frames; 0 disables
	// cautious startup.
	StartupSubslots int
	// StartupPunish applies the §4.3 punishments to QCCA/QSend for subslots
	// with overheard traffic. DefaultConfig enables it.
	StartupPunish bool
	// ReevalOnDecay is the ablation switch forwarded to the learner.
	ReevalOnDecay bool
}

// Stats aggregates QMA-specific counters on top of the shared mac.Stats.
type Stats struct {
	// ActionCount counts executed actions by type (exploration and policy).
	ActionCount [NumActions]uint64
	// Explorations counts randomly selected actions.
	Explorations uint64
	// Decisions counts Algorithm 1 invocations (subslots with a non-empty
	// queue after startup).
	Decisions uint64
	// Deferrals counts transmissions postponed because the transaction did
	// not fit into the remaining CAP.
	Deferrals uint64
	// StartupObservations counts cautious-startup subslot observations.
	StartupObservations uint64
}

// pending tracks an action whose reward is not yet known (the paper saves
// state and action until the outcome is observable, §4).
type pending struct {
	subslot int
	action  Action
	startup bool
}

// Engine is one node's QMA MAC. It is driven entirely by its kernel; after
// Start it needs no external calls besides Enqueue.
type Engine struct {
	base *mac.Base

	learner  *qlearn.Learner
	explorer qlearn.Explorer
	rng      *sim.Rand

	startupLeft   int
	startupInit   int
	startupPunish bool

	armed sim.EventID
	// armedAt/armedSubslot remember the boundary the ticker is armed for, so
	// the per-tick re-arm advances incrementally (Clock.NextBoundary) instead
	// of re-deriving the position with divisions. armedSubslot is -1 when no
	// boundary has been derived yet (fresh or rebooted engine).
	armedAt      sim.Time
	armedSubslot int

	// pend is the action whose reward window is open; hasPend guards it.
	// Inlined so a backoff decision costs no allocation.
	pend     pending
	hasPend  bool
	overhear bool

	// In-flight CCA state, inlined for the same reason: a node runs at most
	// one CCA at a time (it is busy for the whole window and the completion
	// fires strictly before the next boundary), so the subslot/epoch live in
	// the engine and the kernel callback is the long-lived engineCCA.
	ccaSubslot int
	ccaEpoch   uint32

	// epoch counts power-cycle faults (mac.Rebooter). Kernel callbacks that
	// outlive a reboot — the CCA completion — record the epoch they were
	// scheduled under and become no-ops when it has moved on.
	epoch uint32

	stats Stats

	// rhoSum/rhoCount accumulate exploration rates between TakeRhoSample
	// calls (Fig. 11 instrumentation).
	rhoSum   float64
	rhoCount int

	// actionCounts[s*NumActions+a] counts executed actions per subslot since
	// the last ResetActionCounts (Fig. 13–15 slot-utilization
	// instrumentation). Stored flat so it can live in the run arena next to
	// the node's Q-table.
	actionCounts []uint64
}

var _ mac.Engine = (*Engine)(nil)

// New assembles an engine from cfg. It panics on an invalid configuration;
// scenario builders construct engines at assembly time.
func New(cfg Config) *Engine {
	if cfg.Rng == nil {
		panic("core: Rng is required")
	}
	if cfg.MAC.OnOverhear != nil || cfg.MAC.OnAccept != nil {
		panic("core: MAC.OnOverhear and MAC.OnAccept are owned by the engine")
	}
	if cfg.MAC.Clock == nil {
		panic("core: MAC.Clock is required")
	}
	subslots := cfg.MAC.Clock.Config().Subslots
	scratch := cfg.MAC.Scratch
	table := cfg.Table
	if table == nil {
		p := cfg.Learn
		if p == (qlearn.Params{}) {
			p = qlearn.DefaultParams()
		}
		table = qlearn.NewFloatTableOn(subslots, NumActions, p,
			scratch.Float64s(subslots*NumActions))
	}
	if table.States() != subslots || table.Actions() != NumActions {
		panic(fmt.Sprintf("core: table dimensions %dx%d, want %dx%d",
			table.States(), table.Actions(), subslots, NumActions))
	}
	explorer := cfg.Explorer
	if explorer == nil {
		explorer = qlearn.NewParameterBased()
	}
	if cfg.StartupSubslots < 0 {
		cfg.StartupSubslots = 2 * subslots
	}

	e := &Engine{
		learner:       qlearn.NewLearnerOn(table, int(QBackoff), scratch.Ints(subslots)),
		explorer:      explorer,
		rng:           cfg.Rng,
		startupLeft:   cfg.StartupSubslots,
		startupInit:   cfg.StartupSubslots,
		startupPunish: cfg.StartupPunish,
		armedSubslot:  -1,
		actionCounts:  scratch.Uint64s(subslots * NumActions),
	}
	e.learner.SetReevalOnDecay(cfg.ReevalOnDecay)
	cfg.MAC.OnOverhear = e.onOverhear
	cfg.MAC.OnAccept = e.arm
	e.base = mac.NewBase(cfg.MAC)
	return e
}

// Learner exposes the Q-learning state for instrumentation and tests.
func (e *Engine) Learner() *qlearn.Learner { return e.learner }

// EngineStats returns a copy of the QMA-specific counters.
func (e *Engine) EngineStats() Stats { return e.stats }

// Base implements mac.Engine.
func (e *Engine) Base() *mac.Base { return e.base }

// Deliver implements radio.Handler by delegating to the shared receive path.
func (e *Engine) Deliver(f *frame.Frame) { e.base.Deliver(f) }

// Start implements mac.Engine: it arms the subslot ticker.
func (e *Engine) Start() { e.arm() }

// Enqueue implements mac.Engine, re-arming the ticker when traffic arrives.
func (e *Engine) Enqueue(f *frame.Frame) bool {
	ok := e.base.Enqueue(f)
	if ok {
		e.arm()
	}
	return ok
}

// CumulativePolicyQ reports Σ_m Q(m, π(m)), the Fig. 10 / Fig. 12 stability
// metric.
func (e *Engine) CumulativePolicyQ() float64 { return e.learner.CumulativePolicyQ() }

// TakeRhoSample reports the mean exploration rate ρ over all decisions since
// the previous call (Fig. 11 instrumentation) and the number of decisions it
// averages over.
func (e *Engine) TakeRhoSample() (mean float64, n int) {
	n = e.rhoCount
	if n > 0 {
		mean = e.rhoSum / float64(n)
	}
	e.rhoSum, e.rhoCount = 0, 0
	return mean, n
}

// ActionCounts returns a copy of the per-subslot action counters (Fig. 13–15
// slot utilization).
func (e *Engine) ActionCounts() [][NumActions]uint64 {
	out := make([][NumActions]uint64, len(e.actionCounts)/NumActions)
	for s := range out {
		copy(out[s][:], e.actionCounts[s*NumActions:(s+1)*NumActions])
	}
	return out
}

// ResetActionCounts clears the per-subslot action counters.
func (e *Engine) ResetActionCounts() {
	clear(e.actionCounts)
}

// Reboot implements mac.Rebooter: a power-cycle fault wipes everything a
// real node keeps in RAM — the Q-table and policy, the pending reward
// window, cautious-startup progress and the shared MAC state — and restarts
// the engine as a freshly joined node (full cautious startup). The
// instrumentation counters (stats, action counts) survive: they are
// measurement infrastructure, not node state, and the relearning cost the
// faults experiments report depends on seeing across the reboot.
func (e *Engine) Reboot() {
	e.base.Reboot()
	e.armed.Cancel()
	e.armed = sim.EventID{}
	e.armedAt = 0
	e.armedSubslot = -1
	e.hasPend = false
	e.overhear = false
	e.startupLeft = e.startupInit
	e.learner.Reset(int(QBackoff))
	e.rhoSum, e.rhoCount = 0, 0
	e.epoch++
	e.arm()
}

// engineTick and engineCCA are the long-lived kernel callbacks of every QMA
// engine; per-event context rides in the engine itself, so arming a tick or
// finishing a CCA performs no allocation.
func engineTick(a any) { a.(*Engine).tick() }
func engineCCA(a any)  { a.(*Engine).ccaDone() }

// arm schedules the next subslot tick unless one is already scheduled. When
// called from the tick itself (now is exactly the armed boundary) the next
// boundary follows incrementally, with no division.
func (e *Engine) arm() {
	now := e.base.Kernel().Now()
	if e.armed.Pending() && e.armed.At() > now {
		return
	}
	var next sim.Time
	var idx int
	if now == e.armedAt && e.armedSubslot >= 0 {
		next, idx = e.base.Clock().NextBoundary(now, e.armedSubslot)
	} else {
		next = e.base.Clock().NextSubslotStart(now)
		idx = e.base.Clock().Subslot(next)
	}
	e.armed = e.base.Kernel().AtCall(next, engineTick, e)
	e.armedAt, e.armedSubslot = next, idx
}

// needTick reports whether the engine has any reason to observe the next
// subslot boundary.
func (e *Engine) needTick() bool {
	return e.hasPend || e.startupLeft > 0 || !e.base.Queue().Empty() || e.base.Busy()
}

// tick runs at every subslot boundary while the engine is active. It first
// evaluates a pending backoff-type action (QEvaluation in Fig. 2), then
// makes the next decision (QDecision).
func (e *Engine) tick() {
	// The armed bookkeeping usually knows this boundary's subslot index
	// already, saving the division in Subslot. It cannot be trusted blindly:
	// an Enqueue arriving at the very instant this tick fires (but before it
	// runs) re-arms the NEXT boundary and clobbers armedSubslot, so the
	// cached index is only valid while armedAt still equals now.
	now := e.base.Kernel().Now()
	var m int
	if now == e.armedAt && e.armedSubslot >= 0 {
		m = e.armedSubslot
	} else {
		m = e.base.Clock().Subslot(now)
	}
	if m < 0 {
		// Boundary fell outside the CAP (cannot happen with valid subslot
		// boundaries, but guard against clock misconfiguration).
		e.armIfNeeded()
		return
	}

	if e.hasPend {
		e.evaluateBackoff(m)
	}

	switch {
	case e.base.Busy():
		// A transmission, ACK wait or ACK duty is in progress; the outcome
		// callback performs the Q-update.
	case e.startupLeft > 0:
		e.startupObserve(m)
	case e.base.Queue().Empty():
		// "If no more packets are available for transmission, no action is
		// selected" (§6.1.3).
	default:
		// Access-class barring gates every fresh channel-access decision: a
		// barred node sits the subslot out, the ticker keeps polling (free
		// while the barring backoff runs) and a fresh Bernoulli draw happens
		// once it has passed.
		if barred, _ := e.base.AccessBarred(); !barred {
			e.decide(m)
		}
	}
	e.armIfNeeded()
}

func (e *Engine) armIfNeeded() {
	if e.needTick() {
		e.arm()
	}
}

// evaluateBackoff finalizes a QBackoff (or cautious-startup observation)
// whose reward window just closed. nextSubslot is the subslot the agent
// arrived in.
func (e *Engine) evaluateBackoff(nextSubslot int) {
	p := e.pend
	e.hasPend = false
	reward := float64(RewardBackoffIdle)
	if e.overhear {
		reward = RewardBackoffOverhear
	}
	e.learner.Observe(p.subslot, int(QBackoff), reward, nextSubslot)
	if p.startup && e.startupPunish && e.overhear {
		// Mark the subslot as foreign-owned in the QCCA and QSend rows too,
		// biasing the node against claiming it (§4.3).
		e.learner.Observe(p.subslot, int(QCCA), StartupPunishCCA, nextSubslot)
		e.learner.Observe(p.subslot, int(QSend), StartupPunishSend, nextSubslot)
	}
	e.overhear = false
}

// startupObserve performs one cautious-startup subslot: QBackoff only.
func (e *Engine) startupObserve(m int) {
	e.startupLeft--
	e.stats.StartupObservations++
	e.pend = pending{subslot: m, action: QBackoff, startup: true}
	e.hasPend = true
	e.overhear = false
}

// decide runs one Algorithm 1 step at subslot m.
func (e *Engine) decide(m int) {
	e.stats.Decisions++
	rho := e.explorer.Rate(qlearn.ExploreContext{
		Now:              e.base.Kernel().Now(),
		QueueLevel:       e.base.Queue().Len(),
		AvgNeighborQueue: e.base.AvgNeighborQueue(),
	})
	e.rhoSum += rho
	e.rhoCount++

	var action Action
	if e.rng.Float64() < rho {
		action = Action(e.rng.Intn(NumActions))
		e.stats.Explorations++
	} else {
		action = Action(e.learner.Policy(m))
	}
	e.execute(m, action)
}

// execute performs the selected action.
func (e *Engine) execute(m int, action Action) {
	e.stats.ActionCount[action]++
	e.actionCounts[m*NumActions+int(action)]++
	switch action {
	case QBackoff:
		e.pend = pending{subslot: m, action: QBackoff}
		e.hasPend = true
		e.overhear = false
	case QCCA:
		e.startCCA(m)
	case QSend:
		e.startTX(m, QSend)
	}
}

// startCCA samples the channel at the end of the 8-symbol CCA window, so
// that a QSend started at the same boundary is visible to it. At most one
// CCA is in flight per node (the node is busy for the window), so its
// context lives inline in the engine.
func (e *Engine) startCCA(m int) {
	now := e.base.Kernel().Now()
	e.base.ExtendBusy(now + frame.CCADuration)
	e.ccaSubslot = m
	e.ccaEpoch = e.epoch
	e.base.Kernel().AtCall(now+frame.CCADuration, engineCCA, e)
}

// ccaDone completes the CCA window armed by startCCA.
func (e *Engine) ccaDone() {
	if e.epoch != e.ccaEpoch {
		// A reboot fault struck mid-CCA; the continuation belongs to the
		// previous life of this node.
		return
	}
	if !e.base.Medium().CCA(e.base.ID()) {
		// Channel busy: reward 1 and back off to the next subslot
		// (Eq. 7, the QCCA(fail) edge of Fig. 3).
		next := e.nextDecisionSubslot()
		e.learner.Observe(e.ccaSubslot, int(QCCA), RewardCCABusy, next)
		return
	}
	e.startTX(e.ccaSubslot, QCCA)
}

// startTX transmits the queue head (for QCCA the CCA window has already
// elapsed, so the transmission starts 8 symbols into the subslot).
func (e *Engine) startTX(m int, action Action) {
	f := e.base.Queue().Head()
	if f == nil {
		// The queue drained while the CCA ran (cannot currently happen: the
		// head is only removed by outcomes, and no outcome can interleave
		// with a CCA). Treat as a no-op.
		return
	}
	now := e.base.Kernel().Now()
	cost := f.Duration()
	if !f.IsBroadcast() {
		cost += frame.AckWait
	}
	if !e.base.Clock().FitsInCAP(now, cost) {
		// Defer to the next CAP without a Q-update (802.15.4 rule: the
		// transaction must complete before the CAP ends; DESIGN.md §6).
		e.stats.Deferrals++
		return
	}
	// The outcome callback keeps a per-transmission closure: when a
	// transmission ends exactly on a subslot boundary whose tick precedes the
	// completion event, the engine can start the next transaction before the
	// previous outcome fires, so the (m, action, f) context must be frozen
	// per call. Transmissions are orders of magnitude rarer than ticks — the
	// allocation is off the hot path.
	e.base.SendFrame(f, func(success bool) {
		e.finishTX(m, action, f, success)
	})
}

// finishTX applies the Eq. 7/8 reward once the outcome of a transmission is
// known, then lets the retry policy decide the frame's fate.
func (e *Engine) finishTX(m int, action Action, f *frame.Frame, success bool) {
	var reward float64
	if action == QSend {
		if success {
			reward = RewardSendSuccess
		} else {
			reward = RewardSendFail
		}
	} else {
		if success {
			reward = RewardCCASuccessTx
		} else {
			reward = RewardCCAFailedTx
		}
	}
	next := e.nextDecisionSubslot()
	e.learner.Observe(m, int(action), reward, next)
	e.base.FinishFrame(f, success)
	e.armIfNeeded()
}

// nextDecisionSubslot reports the subslot of the first boundary at which the
// agent can act again — the successor state m_{t+i} of Algorithm 1.
func (e *Engine) nextDecisionSubslot() int {
	return e.base.Clock().Subslot(e.base.Clock().NextSubslotStart(e.base.Kernel().Now()))
}

// onOverhear is installed as the MAC overhear hook: any decoded DATA, ACK or
// command frame marks the current backoff window as "subslot in use"
// (Eq. 6). Beacons are infrastructure and do not count.
func (e *Engine) onOverhear(f *frame.Frame) {
	if f.Kind == frame.Beacon {
		return
	}
	if e.hasPend {
		e.overhear = true
	}
}
