package stats

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunPoolRunsEveryItemOnce pins the basic contract on a dynamic
// workload: a chain of pushes where each item readies the next, across
// several workers, with every item executing exactly once.
func TestRunPoolRunsEveryItemOnce(t *testing.T) {
	const n = 200
	var ran [n]atomic.Int32
	errs := RunPool(4, []Item{{ID: 0}}, func(_, id int) []Item {
		ran[id].Add(1)
		if id+1 < n {
			return []Item{{ID: id + 1}}
		}
		return nil
	})
	if errs != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Errorf("item %d ran %d times, want 1", i, got)
		}
	}
}

// TestRunPoolDependencyOrder runs a diamond dependency (0 -> {1,2} -> 3,
// readiness managed by the caller exactly like the sharded scheduler does)
// on many workers and asserts no item ran before everything it depends on.
func TestRunPoolDependencyOrder(t *testing.T) {
	deps := map[int][]int{1: {0}, 2: {0}, 3: {1, 2}}
	children := map[int][]int{0: {1, 2}, 1: {3}, 2: {3}}
	var mu sync.Mutex
	done := make(map[int]bool)
	pendingDeps := map[int]int{1: 1, 2: 1, 3: 2}
	errs := RunPool(8, []Item{{ID: 0}}, func(_, id int) []Item {
		mu.Lock()
		defer mu.Unlock()
		for _, d := range deps[id] {
			if !done[d] {
				t.Errorf("item %d ran before its dependency %d", id, d)
			}
		}
		done[id] = true
		var ready []Item
		for _, c := range children[id] {
			pendingDeps[c]--
			if pendingDeps[c] == 0 {
				ready = append(ready, Item{ID: c})
			}
		}
		return ready
	})
	if errs != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(done) != 4 {
		t.Fatalf("ran %d items, want 4", len(done))
	}
}

// TestRunPoolPriorityOrder pins the dequeue policy on one worker: ready
// items run largest-priority first, ID ascending on ties.
func TestRunPoolPriorityOrder(t *testing.T) {
	initial := []Item{
		{ID: 0, Priority: 5, Affinity: -1},
		{ID: 1, Priority: 9, Affinity: -1},
		{ID: 2, Priority: 9, Affinity: -1},
		{ID: 3, Priority: 1, Affinity: -1},
	}
	var order []int
	if errs := RunPool(1, initial, func(_, id int) []Item {
		order = append(order, id)
		return nil
	}); errs != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []int{1, 2, 0, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

// TestRunPoolAffinityPreference pins that a worker drains the items
// preferring it before touching higher-priority items bound elsewhere.
func TestRunPoolAffinityPreference(t *testing.T) {
	initial := []Item{
		{ID: 0, Priority: 100, Affinity: 1}, // prefers a worker that does not exist
		{ID: 1, Priority: 1, Affinity: 0},
	}
	var order []int
	if errs := RunPool(1, initial, func(_, id int) []Item {
		order = append(order, id)
		return nil
	}); errs != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if order[0] != 1 {
		t.Fatalf("execution order %v, want the affinity-0 item first", order)
	}
}

// TestRunPoolRetriesOnce pins the panic semantics: one panic retries on the
// same worker and succeeds silently; two panics surface as a RepError and
// abort the remaining workload.
func TestRunPoolRetriesOnce(t *testing.T) {
	var attempts atomic.Int32
	errs := RunPool(2, []Item{{ID: 7}}, func(_, id int) []Item {
		if attempts.Add(1) == 1 {
			panic("transient")
		}
		return nil
	})
	if errs != nil {
		t.Fatalf("single panic should be absorbed by the retry, got %v", errs)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("job attempted %d times, want 2", got)
	}
}

func TestRunPoolAbortsAfterDoublePanic(t *testing.T) {
	var survivors atomic.Int32
	errs := RunPool(1, []Item{{ID: 3, Priority: 10}, {ID: 4}}, func(_, id int) []Item {
		if id == 3 {
			panic("poisoned")
		}
		survivors.Add(1)
		return []Item{{ID: id + 100}}
	})
	if len(errs) != 1 {
		t.Fatalf("got %d errors, want 1: %v", len(errs), errs)
	}
	e := errs[0]
	if e.Index != 3 || e.Attempts != 2 || e.Value != "poisoned" {
		t.Fatalf("RepError = %+v, want index 3, 2 attempts, value %q", e, "poisoned")
	}
	// Item 3 has the higher priority, so the single worker runs it first and
	// the abort must drop item 4 entirely.
	if got := survivors.Load(); got != 0 {
		t.Fatalf("%d items ran after the abort, want 0", got)
	}
}

// TestRunPoolEmptyInitial pins the degenerate case.
func TestRunPoolEmptyInitial(t *testing.T) {
	if errs := RunPool(4, nil, func(_, id int) []Item { return nil }); errs != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
}
