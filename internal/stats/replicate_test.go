package stats

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, parallel := range []int{1, 2, 7, 0} {
		const n = 100
		var hits [n]int32
		ForEach(n, parallel, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("parallel=%d: index %d visited %d times", parallel, i, h)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	ForEach(0, 4, func(i int) { t.Fatal("job called for n=0") })
	calls := 0
	ForEach(1, 8, func(i int) { calls++ })
	if calls != 1 {
		t.Fatalf("n=1: job called %d times", calls)
	}
}

func TestReplicateSeedOrder(t *testing.T) {
	got := Replicate(8, 3, func(seed uint64) float64 { return float64(seed * seed) })
	for i, v := range got {
		if v != float64(i*i) {
			t.Fatalf("result[%d] = %v, want %d", i, v, i*i)
		}
	}
}

func TestReplicateManyDeterministicAcrossParallelism(t *testing.T) {
	fn := func(seed uint64) map[string]float64 {
		return map[string]float64{
			"a": math.Sin(float64(seed)),
			"b": float64(seed) / 7,
		}
	}
	want := ReplicateMany(13, 1, fn)
	for _, parallel := range []int{2, 5, 0} {
		got := ReplicateMany(13, parallel, fn)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel=%d: estimates differ: %v vs %v", parallel, got, want)
		}
	}
}

func TestReplicateGridDeterministicAcrossParallelism(t *testing.T) {
	fn := func(cell int, seed uint64) map[string]float64 {
		return map[string]float64{"v": float64(cell)*100 + math.Cos(float64(seed))}
	}
	want := ReplicateGrid(5, 4, 1, fn)
	for _, parallel := range []int{3, 16, 0} {
		got := ReplicateGrid(5, 4, parallel, fn)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel=%d: grid estimates differ", parallel)
		}
	}
	// Welford accumulation in seed order: cell c sees seeds 0..3 exactly.
	for c, est := range want {
		var r Running
		for seed := 0; seed < 4; seed++ {
			r.Add(float64(c)*100 + math.Cos(float64(seed)))
		}
		if est["v"] != r.Estimate() {
			t.Fatalf("cell %d merged out of seed order: %v vs %v", c, est["v"], r.Estimate())
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("Workers(3) != 3")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("Workers(<=0) must resolve to at least one worker")
	}
}
