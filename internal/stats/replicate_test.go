package stats

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, parallel := range []int{1, 2, 7, 0} {
		const n = 100
		var hits [n]int32
		ForEach(n, parallel, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("parallel=%d: index %d visited %d times", parallel, i, h)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	ForEach(0, 4, func(i int) { t.Fatal("job called for n=0") })
	calls := 0
	ForEach(1, 8, func(i int) { calls++ })
	if calls != 1 {
		t.Fatalf("n=1: job called %d times", calls)
	}
}

func TestReplicateSeedOrder(t *testing.T) {
	got, errs := Replicate(8, 3, func(seed uint64) float64 { return float64(seed * seed) })
	if len(errs) != 0 {
		t.Fatalf("unexpected replication errors: %v", errs)
	}
	for i, v := range got {
		if v != float64(i*i) {
			t.Fatalf("result[%d] = %v, want %d", i, v, i*i)
		}
	}
}

func TestReplicateManyDeterministicAcrossParallelism(t *testing.T) {
	fn := func(seed uint64) map[string]float64 {
		return map[string]float64{
			"a": math.Sin(float64(seed)),
			"b": float64(seed) / 7,
		}
	}
	want, _ := ReplicateMany(13, 1, fn)
	for _, parallel := range []int{2, 5, 0} {
		got, _ := ReplicateMany(13, parallel, fn)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel=%d: estimates differ: %v vs %v", parallel, got, want)
		}
	}
}

func TestReplicateGridDeterministicAcrossParallelism(t *testing.T) {
	fn := func(cell int, seed uint64) map[string]float64 {
		return map[string]float64{"v": float64(cell)*100 + math.Cos(float64(seed))}
	}
	want, _ := ReplicateGrid(5, 4, 1, fn)
	for _, parallel := range []int{3, 16, 0} {
		got, _ := ReplicateGrid(5, 4, parallel, fn)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel=%d: grid estimates differ", parallel)
		}
	}
	// Welford accumulation in seed order: cell c sees seeds 0..3 exactly.
	for c, est := range want {
		var r Running
		for seed := 0; seed < 4; seed++ {
			r.Add(float64(c)*100 + math.Cos(float64(seed)))
		}
		if est["v"] != r.Estimate() {
			t.Fatalf("cell %d merged out of seed order: %v vs %v", c, est["v"], r.Estimate())
		}
	}
}

// TestReplicateGridSurvivesPanickingReplication pins the hardened-pool
// contract: one replication panicking on both attempts must not kill the
// sweep — the other 99 replications merge normally and the failure comes
// back as one structured RepError naming the exact cell and seed for a
// single-threaded repro.
func TestReplicateGridSurvivesPanickingReplication(t *testing.T) {
	const cells, reps = 10, 10
	for _, parallel := range []int{1, 4, 0} {
		est, errs := ReplicateGrid(cells, reps, parallel, func(cell int, seed uint64) map[string]float64 {
			if cell == 7 && seed == 3 {
				panic("protocol stub exploded")
			}
			return map[string]float64{"v": 1}
		})
		if len(errs) != 1 {
			t.Fatalf("parallel=%d: got %d errors, want 1", parallel, len(errs))
		}
		e := errs[0]
		if e.Cell != 7 || e.Seed != 3 || e.Index != 73 || e.Attempts != 2 {
			t.Fatalf("parallel=%d: RepError = %+v, want cell=7 seed=3 index=73 attempts=2", parallel, e)
		}
		if e.Value != "protocol stub exploded" || len(e.Stack) == 0 {
			t.Fatalf("parallel=%d: RepError missing panic value or stack: %+v", parallel, e)
		}
		if e.Error() == "" {
			t.Fatal("RepError.Error() empty")
		}
		// The failed cell degrades to reps-1 merged runs; all others are whole.
		for c := 0; c < cells; c++ {
			wantN := reps
			if c == 7 {
				wantN = reps - 1
			}
			if got := est[c]["v"].N; got != wantN {
				t.Fatalf("parallel=%d: cell %d merged %d runs, want %d", parallel, c, got, wantN)
			}
		}
	}
}

// TestForEachRetriesTransientPanic pins the one-retry policy: a job that
// panics once and then succeeds is not reported as failed.
func TestForEachRetriesTransientPanic(t *testing.T) {
	var firstTry [4]atomic.Bool
	hits := [4]int32{}
	errs := ForEach(4, 2, func(i int) {
		if i == 2 && !firstTry[i].Swap(true) {
			panic("transient")
		}
		atomic.AddInt32(&hits[i], 1)
	})
	if len(errs) != 0 {
		t.Fatalf("transient panic reported as failure: %v", errs)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d completed %d times, want 1", i, h)
		}
	}
}

// TestForEachReportsErrorsInIndexOrder pins the ordering contract under
// concurrency.
func TestForEachReportsErrorsInIndexOrder(t *testing.T) {
	errs := ForEach(50, 8, func(i int) {
		if i%7 == 0 {
			panic(i)
		}
	})
	var want []int
	for i := 0; i < 50; i += 7 {
		want = append(want, i)
	}
	if len(errs) != len(want) {
		t.Fatalf("got %d errors, want %d", len(errs), len(want))
	}
	for k, e := range errs {
		if e.Index != want[k] {
			t.Fatalf("errs[%d].Index = %d, want %d", k, e.Index, want[k])
		}
		if e.Value != want[k] {
			t.Fatalf("errs[%d].Value = %v, want %d", k, e.Value, want[k])
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("Workers(3) != 3")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("Workers(<=0) must resolve to at least one worker")
	}
}
