package stats

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the replication engine behind every figure: independent
// simulation runs (replications, and independent sweep points) are sharded
// across a bounded worker pool. Determinism is by construction — each job is
// addressed by its index, derives all randomness from its seed, and writes
// only its own result slot; merging then walks the slots in index order, so
// the output is byte-identical for any worker count.

// Workers resolves a parallelism request: values <= 0 select GOMAXPROCS
// (use all hardware threads), anything else is taken literally.
func Workers(parallel int) int {
	if parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallel
}

// ForEach runs job(0..n-1) on up to Workers(parallel) goroutines and waits
// for all of them. Jobs must be independent and must confine their writes to
// per-index state. With one worker (or n == 1) it degrades to a plain loop
// on the calling goroutine.
func ForEach(n, parallel int, job func(i int)) {
	workers := Workers(parallel)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}

// Replicate runs fn for seeds 0..n-1, each invocation independent, sharded
// over the worker pool, and returns the per-seed results in seed order.
// Every figure of the evaluation aggregates such replications; determinism
// comes from fn deriving all randomness from the seed.
func Replicate(n, parallel int, fn func(seed uint64) float64) []float64 {
	out := make([]float64, n)
	ForEach(n, parallel, func(i int) { out[i] = fn(uint64(i)) })
	return out
}

// ReplicateMany is Replicate for functions returning several named metrics;
// it returns one Estimate per metric name, accumulated in seed order.
func ReplicateMany(n, parallel int, fn func(seed uint64) map[string]float64) map[string]Estimate {
	results := make([]map[string]float64, n)
	ForEach(n, parallel, func(i int) { results[i] = fn(uint64(i)) })
	return mergeRuns(results)
}

// ReplicateGrid shards a whole sweep — cells independent experiment points,
// reps replications each — across one worker pool, so parallelism is not
// throttled by the replication count of a single point (Quick mode runs only
// 3 replications per point, far fewer than a modern machine has cores).
// fn(cell, seed) must be independent across all (cell, seed) pairs; the
// result is one Estimate per metric name per cell, merged in seed order.
func ReplicateGrid(cells, reps, parallel int, fn func(cell int, seed uint64) map[string]float64) []map[string]Estimate {
	results := make([]map[string]float64, cells*reps)
	ForEach(cells*reps, parallel, func(i int) {
		results[i] = fn(i/reps, uint64(i%reps))
	})
	out := make([]map[string]Estimate, cells)
	for c := 0; c < cells; c++ {
		out[c] = mergeRuns(results[c*reps : (c+1)*reps])
	}
	return out
}

// mergeRuns folds per-replication metric maps into Estimates, visiting the
// replications in slice (seed) order so the accumulation is deterministic.
func mergeRuns(results []map[string]float64) map[string]Estimate {
	acc := make(map[string]*Running)
	for _, m := range results {
		for k, v := range m {
			if acc[k] == nil {
				acc[k] = &Running{}
			}
			acc[k].Add(v)
		}
	}
	out := make(map[string]Estimate, len(acc))
	for k, r := range acc {
		out[k] = r.Estimate()
	}
	return out
}
