package stats

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the replication engine behind every figure: independent
// simulation runs (replications, and independent sweep points) are sharded
// across a bounded worker pool. Determinism is by construction — each job is
// addressed by its index, derives all randomness from its seed, and writes
// only its own result slot; merging then walks the slots in index order, so
// the output is byte-identical for any worker count.
//
// The pool is also the process's crash barrier: a panicking replication is
// recovered, retried once (against e.g. a transient OOM kill of a goroutine
// stack) and, if it panics again, recorded as a structured RepError instead
// of taking down a sweep of thousands of runs. The sweep completes with the
// surviving replications; the RepError carries the exact cell and seed
// needed to reproduce the crash in a single-threaded run.

// RepError describes one replication that panicked on both attempts. It
// carries everything needed for a single-threaded repro: the sweep cell, the
// seed, the recovered panic value and the stack of the final attempt.
type RepError struct {
	// Cell is the sweep point (always 0 for non-grid drivers).
	Cell int
	// Seed is the replication seed (equal to Index for non-grid drivers).
	Seed uint64
	// Index is the flat job index the driver dispatched.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the final panic.
	Stack []byte
	// Attempts is how many times the job was tried (2: initial + one retry).
	Attempts int
}

// Error implements error.
func (e *RepError) Error() string {
	return fmt.Sprintf("stats: replication cell=%d seed=%d panicked after %d attempts: %v",
		e.Cell, e.Seed, e.Attempts, e.Value)
}

// Workers resolves a parallelism request: values <= 0 select GOMAXPROCS
// (use all hardware threads), anything else is taken literally.
func Workers(parallel int) int {
	if parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallel
}

// runJob executes job(i) under a recover barrier with one retry. It returns
// nil on success and a RepError (Index filled, Cell/Seed left for the caller)
// when both attempts panicked.
func runJob(w, i int, job func(w, i int)) *RepError {
	var lastValue any
	var lastStack []byte
	attempt := func() (panicked bool) {
		defer func() {
			if v := recover(); v != nil {
				panicked = true
				lastValue = v
				lastStack = debug.Stack()
			}
		}()
		job(w, i)
		return false
	}
	const attempts = 2
	for a := 0; a < attempts; a++ {
		if !attempt() {
			return nil
		}
	}
	return &RepError{Index: i, Value: lastValue, Stack: lastStack, Attempts: attempts}
}

// ForEach runs job(0..n-1) on up to Workers(parallel) goroutines and waits
// for all of them. Jobs must be independent and must confine their writes to
// per-index state. With one worker (or n == 1) it degrades to a plain loop
// on the calling goroutine.
//
// A job that panics is retried once and, failing again, reported in the
// returned slice (ordered by job index) instead of crashing the pool; its
// result slot is simply never written. A nil return means every job
// completed.
func ForEach(n, parallel int, job func(i int)) []*RepError {
	return ForEachWorker(n, parallel, func(_, i int) { job(i) })
}

// ForEachWorker is ForEach with a worker identity: job additionally receives
// the index w of the worker goroutine executing it, 0 <= w < Workers(parallel).
// Jobs on the same w run strictly sequentially, which is what lets a job
// reuse per-worker state (scratch arenas, frame pools) without locking. The
// results must not depend on that state — each job stays addressed purely by
// its index i.
func ForEachWorker(n, parallel int, job func(w, i int)) []*RepError {
	workers := Workers(parallel)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var errs []*RepError
		for i := 0; i < n; i++ {
			if re := runJob(0, i, job); re != nil {
				errs = append(errs, re)
			}
		}
		return errs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []*RepError
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if re := runJob(w, i, job); re != nil {
					mu.Lock()
					errs = append(errs, re)
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	sort.Slice(errs, func(a, b int) bool { return errs[a].Index < errs[b].Index })
	return errs
}

// Replicate runs fn for seeds 0..n-1, each invocation independent, sharded
// over the worker pool, and returns the per-seed results in seed order.
// Every figure of the evaluation aggregates such replications; determinism
// comes from fn deriving all randomness from the seed. A replication that
// panicked twice leaves zero in its slot and is reported in the error slice.
func Replicate(n, parallel int, fn func(seed uint64) float64) ([]float64, []*RepError) {
	out := make([]float64, n)
	errs := ForEach(n, parallel, func(i int) { out[i] = fn(uint64(i)) })
	for _, e := range errs {
		e.Seed = uint64(e.Index)
	}
	return out, errs
}

// ReplicateMany is Replicate for functions returning several named metrics;
// it returns one Estimate per metric name, accumulated in seed order. Failed
// replications contribute nothing — each Estimate's N reports how many
// replications actually survived.
func ReplicateMany(n, parallel int, fn func(seed uint64) map[string]float64) (map[string]Estimate, []*RepError) {
	results := make([]map[string]float64, n)
	errs := ForEach(n, parallel, func(i int) { results[i] = fn(uint64(i)) })
	for _, e := range errs {
		e.Seed = uint64(e.Index)
	}
	return mergeRuns(results), errs
}

// ReplicateGrid shards a whole sweep — cells independent experiment points,
// reps replications each — across one worker pool, so parallelism is not
// throttled by the replication count of a single point (Quick mode runs only
// 3 replications per point, far fewer than a modern machine has cores).
// fn(cell, seed) must be independent across all (cell, seed) pairs; the
// result is one Estimate per metric name per cell, merged in seed order.
//
// A replication that panicked twice is excluded from its cell's merge (the
// cell's Estimates simply average one fewer run) and reported in the error
// slice with its exact cell and seed, so the sweep of every other point
// completes and the crash stays reproducible single-threaded.
func ReplicateGrid(cells, reps, parallel int, fn func(cell int, seed uint64) map[string]float64) ([]map[string]Estimate, []*RepError) {
	return ReplicateGridWorker(cells, reps, parallel,
		func(_, cell int, seed uint64) map[string]float64 { return fn(cell, seed) })
}

// ReplicateGridWorker is ReplicateGrid handing fn the worker index executing
// the replication (see ForEachWorker), so a sweep can reuse one arena per
// worker across its runs. The merged Estimates must not depend on the worker
// assignment.
func ReplicateGridWorker(cells, reps, parallel int, fn func(w, cell int, seed uint64) map[string]float64) ([]map[string]Estimate, []*RepError) {
	results := make([]map[string]float64, cells*reps)
	errs := ForEachWorker(cells*reps, parallel, func(w, i int) {
		results[i] = fn(w, i/reps, uint64(i%reps))
	})
	for _, e := range errs {
		e.Cell = e.Index / reps
		e.Seed = uint64(e.Index % reps)
	}
	out := make([]map[string]Estimate, cells)
	for c := 0; c < cells; c++ {
		out[c] = mergeRuns(results[c*reps : (c+1)*reps])
	}
	return out, errs
}

// mergeRuns folds per-replication metric maps into Estimates, visiting the
// replications in slice (seed) order so the accumulation is deterministic.
// Nil entries (failed replications) are skipped: iterating a nil map yields
// nothing, so a lost run lowers every Estimate's N by one instead of
// poisoning the merge.
func mergeRuns(results []map[string]float64) map[string]Estimate {
	acc := make(map[string]*Running)
	for _, m := range results {
		for k, v := range m {
			if acc[k] == nil {
				acc[k] = &Running{}
			}
			acc[k].Add(v)
		}
	}
	out := make(map[string]Estimate, len(acc))
	for k, r := range acc {
		out[k] = r.Estimate()
	}
	return out
}
