package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestDigestEmpty(t *testing.T) {
	var d Digest
	if d.N() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatalf("empty digest reports N=%d min=%v max=%v", d.N(), d.Min(), d.Max())
	}
	if !math.IsNaN(d.Quantile(0.5)) {
		t.Fatalf("empty digest quantile = %v, want NaN", d.Quantile(0.5))
	}
}

func TestDigestQuantileAccuracy(t *testing.T) {
	// Log-normal delays spanning several decades: digest quantiles must stay
	// within the bucket-width relative error of the exact sample quantiles.
	rng := rand.New(rand.NewSource(7))
	var d Digest
	var s Sample
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.NormFloat64()*1.5 - 3) // median ~50 ms
		d.Add(v)
		s.Add(v)
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		exact := s.Quantile(q)
		got := d.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.08 {
			t.Errorf("q=%v: digest %v vs exact %v (rel err %.3f > 0.08)", q, got, exact, rel)
		}
	}
	if d.Quantile(0) != d.Min() || d.Quantile(1) != d.Max() {
		t.Errorf("extreme quantiles %v/%v should be exact min/max %v/%v",
			d.Quantile(0), d.Quantile(1), d.Min(), d.Max())
	}
}

func TestDigestOutOfRangeValues(t *testing.T) {
	var d Digest
	for _, v := range []float64{0, -1, 1e-9, math.NaN(), 1e9, 5e3} {
		d.Add(v)
	}
	if d.N() != 6 {
		t.Fatalf("N = %d, want 6", d.N())
	}
	// Quantiles must stay inside the observed (non-NaN comparable) range.
	if got := d.Quantile(0.99); got > d.Max() {
		t.Fatalf("q99 %v exceeds max %v", got, d.Max())
	}
}

func TestDigestMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var whole, a, b Digest
	for i := 0; i < 5000; i++ {
		v := math.Exp(rng.NormFloat64() - 2)
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a != whole {
		t.Fatal("merged digest differs from the digest over the whole stream")
	}
	var empty Digest
	a.Merge(&empty)
	if a != whole {
		t.Fatal("merging an empty digest changed the result")
	}
	empty.Merge(&whole)
	if empty != whole {
		t.Fatal("merging into an empty digest differs from a copy")
	}
}

func TestWindowed(t *testing.T) {
	w := NewWindowed(1)
	w.ObserveGenerate(0.2)
	w.ObserveGenerate(2.7)
	w.ObserveDeliver(2.9, 0.2)
	w.ObserveDeliver(3.1, 0.4)
	wins := w.Windows()
	if len(wins) != 4 {
		t.Fatalf("got %d windows, want 4", len(wins))
	}
	if wins[0].Generated != 1 || wins[2].Generated != 1 {
		t.Fatalf("generation windows wrong: %+v", wins)
	}
	if wins[2].Delivered != 1 || wins[3].Delivered != 1 || wins[3].DelaySum != 0.4 {
		t.Fatalf("delivery windows wrong: %+v", wins)
	}
}

func TestWindowedMerge(t *testing.T) {
	a, b := NewWindowed(0.5), NewWindowed(0.5)
	a.ObserveGenerate(0.1)
	b.ObserveGenerate(0.1)
	b.ObserveDeliver(1.4, 0.25)
	a.Merge(b)
	wins := a.Windows()
	if len(wins) != 3 || wins[0].Generated != 2 || wins[2].Delivered != 1 || wins[2].DelaySum != 0.25 {
		t.Fatalf("merged windows wrong: %+v", wins)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched periods should panic")
		}
	}()
	a.Merge(NewWindowed(1))
}
