package stats

import "math"

// This file is the streaming-statistics layer of the mMTC scale-out path:
// fixed-size, mergeable accumulators that replace per-node result arrays on
// 100k–1M-node runs. A Digest answers delay-quantile queries in O(1) memory
// per cell, a Windowed tracks per-window PDR counters in O(windows) memory —
// together a sharded city run's result footprint is O(cells + windows)
// instead of O(N).

// Digest bucket layout: digestDecades decades of digestPerDecade
// log-spaced buckets starting at digestMin, plus an underflow bucket in
// front and an overflow bucket at the back. With 32 buckets per decade the
// bucket edge ratio is 10^(1/32) ≈ 1.075, so quantile answers carry at most
// ~7.5% relative error — far below the run-to-run variance of any delay
// percentile the tables report — at a fixed 2 KB per digest.
const (
	digestMin       = 1e-4 // smallest resolved value (0.1 ms as seconds)
	digestPerDecade = 32
	digestDecades   = 8
	digestBuckets   = digestPerDecade*digestDecades + 2
)

// Digest is a fixed-size, mergeable quantile sketch over positive values
// (delays in seconds). The zero value is ready to use; merging digests from
// independent shards is exact (bucket counts add), so per-cell digests
// aggregate to network-wide percentiles without retaining observations.
type Digest struct {
	count    uint64
	min, max float64
	buckets  [digestBuckets]uint64
}

// digestIndex maps a value to its bucket.
func digestIndex(v float64) int {
	if !(v >= digestMin) { // negatives, zero and NaN all underflow
		return 0
	}
	i := 1 + int(math.Log10(v/digestMin)*digestPerDecade)
	if i >= digestBuckets {
		return digestBuckets - 1
	}
	return i
}

// Add incorporates one observation.
func (d *Digest) Add(v float64) {
	if d.count == 0 || v < d.min {
		d.min = v
	}
	if d.count == 0 || v > d.max {
		d.max = v
	}
	d.count++
	d.buckets[digestIndex(v)]++
}

// N reports the number of observations.
func (d *Digest) N() uint64 { return d.count }

// Min and Max report the exact observed extremes (0 when empty).
func (d *Digest) Min() float64 {
	if d.count == 0 {
		return 0
	}
	return d.min
}

// Max reports the largest observation (0 when empty).
func (d *Digest) Max() float64 {
	if d.count == 0 {
		return 0
	}
	return d.max
}

// Merge folds another digest into d. Merging is exact: the result is
// identical to a digest fed both observation streams.
func (d *Digest) Merge(o *Digest) {
	if o.count == 0 {
		return
	}
	if d.count == 0 || o.min < d.min {
		d.min = o.min
	}
	if d.count == 0 || o.max > d.max {
		d.max = o.max
	}
	d.count += o.count
	for i := range d.buckets {
		d.buckets[i] += o.buckets[i]
	}
}

// bucketValue is the representative value reported for bucket i: the
// geometric midpoint of its edges (the exact extremes for the underflow and
// overflow buckets, which have no finite edge).
func (d *Digest) bucketValue(i int) float64 {
	switch i {
	case 0:
		return d.min
	case digestBuckets - 1:
		return d.max
	}
	lo := digestMin * math.Pow(10, float64(i-1)/digestPerDecade)
	return lo * math.Pow(10, 0.5/digestPerDecade)
}

// Quantile reports the q-quantile (0..1) as the representative value of the
// bucket holding the rank, clamped to the observed [min, max]; NaN when
// empty. Within a bucket the answer is the geometric midpoint, so the
// relative error is bounded by half the bucket width (~3.7%).
func (d *Digest) Quantile(q float64) float64 {
	if d.count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return d.min
	}
	if q >= 1 {
		return d.max
	}
	rank := uint64(q * float64(d.count-1))
	var cum uint64
	for i := range d.buckets {
		cum += d.buckets[i]
		if cum > rank {
			v := d.bucketValue(i)
			if v < d.min {
				v = d.min
			}
			if v > d.max {
				v = d.max
			}
			return v
		}
	}
	return d.max
}

// WindowCounts accumulates one time window of streaming PDR/delay state.
type WindowCounts struct {
	// Generated counts evaluation packets generated during the window;
	// Delivered counts evaluation packets delivered during it (windowed by
	// delivery instant, so a delivery can land in a later window than its
	// generation — windowed PDR is a flow statistic, not a cohort one).
	Generated uint64
	Delivered uint64
	// DelaySum accumulates the end-to-end delays (seconds) of the window's
	// deliveries.
	DelaySum float64
}

// Windowed streams observations into fixed-period windows. Memory is
// O(observed windows); the zero value is invalid — use NewWindowed.
type Windowed struct {
	window float64
	wins   []WindowCounts
}

// NewWindowed builds a window aggregator with the given period in seconds.
func NewWindowed(window float64) *Windowed {
	if window <= 0 {
		panic("stats: Windowed period must be positive")
	}
	return &Windowed{window: window}
}

// Window reports the configured period in seconds.
func (w *Windowed) Window() float64 { return w.window }

// at grows the window slice to cover instant t and returns its window.
func (w *Windowed) at(t float64) *WindowCounts {
	i := int(t / w.window)
	if i < 0 {
		i = 0
	}
	for len(w.wins) <= i {
		w.wins = append(w.wins, WindowCounts{})
	}
	return &w.wins[i]
}

// ObserveGenerate records an evaluation packet generated at instant t
// (seconds).
func (w *Windowed) ObserveGenerate(t float64) { w.at(t).Generated++ }

// ObserveDeliver records a delivery at instant t with the given end-to-end
// delay (both seconds).
func (w *Windowed) ObserveDeliver(t, delay float64) {
	win := w.at(t)
	win.Delivered++
	win.DelaySum += delay
}

// Windows returns the accumulated windows (callers must not mutate).
func (w *Windowed) Windows() []WindowCounts { return w.wins }

// Merge folds another aggregator with the same period into w, window by
// window. Panics on a period mismatch.
func (w *Windowed) Merge(o *Windowed) {
	if w.window != o.window {
		panic("stats: merging Windowed aggregators with different periods")
	}
	for len(w.wins) < len(o.wins) {
		w.wins = append(w.wins, WindowCounts{})
	}
	for i := range o.wins {
		w.wins[i].Generated += o.wins[i].Generated
		w.wins[i].Delivered += o.wins[i].Delivered
		w.wins[i].DelaySum += o.wins[i].DelaySum
	}
}
