package stats

import (
	"runtime/debug"
	"sort"
	"sync"
)

// This file is the dependency-driven counterpart to replicate.go's
// fixed-index worker pool: RunPool keeps Workers(parallel) goroutines alive
// for the whole workload and feeds them from a dynamic ready queue instead
// of re-dispatching a fresh pool per phase. A completing job reports which
// items its completion made ready, so irregular dependency graphs (the
// sharded scheduler's per-cell epoch lattice) run without any global
// barrier: a worker that finishes one item immediately picks up the
// highest-priority ready item instead of idling until the slowest item of a
// phase completes.
//
// Determinism is the caller's problem by design: the pool guarantees only
// that every pushed item runs exactly once and that a job's writes
// happen-before the execution of every item it pushed (the push and the
// dequeue synchronize on the pool lock). Callers that want byte-identical
// results across worker counts must make each item's effect independent of
// execution order, exactly like ForEachWorker jobs.

// Item is one schedulable unit of work for RunPool.
type Item struct {
	// ID addresses the item; the pool passes it through to the job.
	ID int
	// Priority orders the ready queue: among ready items, larger dequeues
	// first. Work-aware callers use a work estimate (e.g. the item's event
	// count last time around) so the critical path starts early.
	Priority uint64
	// Affinity is the preferred worker index (-1 = any): a worker first
	// takes the best ready item that prefers it, and only then the best
	// ready item overall. Callers use it to re-run an item on the worker
	// whose cache already holds the item's state (arena affinity).
	Affinity int
}

// pool is the shared state of one RunPool invocation.
type pool struct {
	mu   sync.Mutex
	cond *sync.Cond
	// ready holds the schedulable items; outstanding counts ready plus
	// in-flight items, so outstanding == 0 means the workload is drained.
	ready       []Item
	outstanding int
	aborted     bool
	errs        []*RepError
}

// RunPool executes a dependency-driven workload on persistent workers: the
// initial items are ready immediately, and a completing job returns the
// items its completion made ready (each item must be returned exactly once
// over the whole run). The pool exits when every item completed or after an
// item failed; it returns nil on full success.
//
// Panic semantics match ForEachWorker: a panicking job is retried once on
// the same worker and, failing again, recorded as a RepError — but because
// later items may depend on the failed one, the pool then aborts instead of
// running the remaining items against a broken dependency (pending items
// are dropped, in-flight items finish). Callers treat a non-nil error slice
// as fatal for the whole workload.
func RunPool(parallel int, initial []Item, job func(w, id int) []Item) []*RepError {
	if len(initial) == 0 {
		return nil
	}
	workers := Workers(parallel)
	if workers > len(initial) {
		// Items beyond the initial set only become ready as earlier ones
		// complete, so concurrency can never exceed the initial width here;
		// callers with wider dynamic fan-out size their initial set instead.
		workers = len(initial)
	}
	p := &pool{
		ready:       append([]Item(nil), initial...),
		outstanding: len(initial),
	}
	p.cond = sync.NewCond(&p.mu)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			p.work(w, job)
		}(w)
	}
	wg.Wait()
	sort.Slice(p.errs, func(a, b int) bool { return p.errs[a].Index < p.errs[b].Index })
	return p.errs
}

// work is one persistent worker's loop: take the best ready item, run it,
// push what its completion readied, repeat until drained or aborted.
func (p *pool) work(w int, job func(w, id int) []Item) {
	for {
		p.mu.Lock()
		for len(p.ready) == 0 && p.outstanding > 0 && !p.aborted {
			p.cond.Wait()
		}
		if p.aborted || len(p.ready) == 0 {
			p.mu.Unlock()
			return
		}
		it := p.take(w)
		p.mu.Unlock()

		pushes, re := runPoolJob(w, it.ID, job)

		p.mu.Lock()
		if re != nil {
			p.errs = append(p.errs, re)
			p.aborted = true
			p.ready = nil
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		if p.aborted {
			// Another worker failed while this item ran; its pushes are moot.
			p.mu.Unlock()
			return
		}
		p.ready = append(p.ready, pushes...)
		p.outstanding += len(pushes) - 1
		if len(pushes) > 0 || p.outstanding == 0 {
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
}

// take removes and returns the best ready item for worker w under p.mu:
// the highest-priority item preferring w, else the highest-priority item
// overall; ID breaks ties so selection is stable. The queue stays small
// (bounded by the workload's ready width), so a linear scan beats heap
// bookkeeping here.
func (p *pool) take(w int) Item {
	best, bestAff := -1, false
	for i := range p.ready {
		aff := p.ready[i].Affinity == w
		if best >= 0 {
			b := &p.ready[i]
			cur := &p.ready[best]
			if bestAff && !aff {
				continue
			}
			if aff == bestAff &&
				(b.Priority < cur.Priority || (b.Priority == cur.Priority && b.ID > cur.ID)) {
				continue
			}
		}
		best, bestAff = i, aff
	}
	it := p.ready[best]
	p.ready[best] = p.ready[len(p.ready)-1]
	p.ready = p.ready[:len(p.ready)-1]
	return it
}

// runPoolJob runs job(w, id) under the recover-and-retry barrier (one
// retry, then a RepError), capturing the pushed items of the successful
// attempt.
func runPoolJob(w, id int, job func(w, id int) []Item) (pushes []Item, re *RepError) {
	var lastValue any
	var lastStack []byte
	attempt := func() (panicked bool) {
		defer func() {
			if v := recover(); v != nil {
				panicked = true
				lastValue = v
				lastStack = debug.Stack()
			}
		}()
		pushes = job(w, id)
		return false
	}
	const attempts = 2
	for a := 0; a < attempts; a++ {
		if !attempt() {
			return pushes, nil
		}
	}
	return nil, &RepError{Index: id, Value: lastValue, Stack: lastStack, Attempts: attempts}
}
