// Package stats provides the statistics machinery behind every figure of
// the evaluation: running moments, Student-t 95% confidence intervals over
// replicated runs (the paper reports 10–15 repetitions per point), time
// series with rolling averages (Fig. 10–12) and replication drivers that run
// independent seeds in parallel.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates mean and variance incrementally (Welford's method).
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N reports the number of observations.
func (r *Running) N() int { return r.n }

// Mean reports the sample mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Variance reports the unbiased sample variance (0 for fewer than two
// observations).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev reports the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// tTable holds two-sided 95% Student-t quantiles for df = 1..30; larger
// degrees of freedom fall back to the normal quantile.
var tTable = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TQuantile95 reports the two-sided 95% Student-t quantile for the given
// degrees of freedom.
func TQuantile95(df int) float64 {
	switch {
	case df < 1:
		return math.NaN()
	case df <= len(tTable):
		return tTable[df-1]
	default:
		return 1.96
	}
}

// CI95 reports the half-width of the 95% confidence interval of the mean.
// It is 0 for fewer than two observations.
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return 0
	}
	return TQuantile95(r.n-1) * r.StdDev() / math.Sqrt(float64(r.n))
}

// Estimate is a mean with its 95% confidence half-width, as printed in every
// figure ("All results are presented with a 95% confidence interval").
type Estimate struct {
	Mean float64
	CI   float64
	N    int
}

// String implements fmt.Stringer.
func (e Estimate) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", e.Mean, e.CI, e.N)
}

// Estimate converts the accumulated moments into an Estimate.
func (r *Running) Estimate() Estimate {
	return Estimate{Mean: r.Mean(), CI: r.CI95(), N: r.n}
}

// Summarize computes an Estimate over a slice of per-replication values.
func Summarize(values []float64) Estimate {
	var r Running
	for _, v := range values {
		r.Add(v)
	}
	return r.Estimate()
}

// Point is one sample of a time series.
type Point struct {
	T float64 // seconds
	V float64
}

// Series is an append-only time series.
type Series struct {
	points []Point
}

// Add appends a sample.
func (s *Series) Add(t, v float64) { s.points = append(s.points, Point{T: t, V: v}) }

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.points) }

// Points returns the backing samples (callers must not mutate).
func (s *Series) Points() []Point { return s.points }

// At returns the i-th sample.
func (s *Series) At(i int) Point { return s.points[i] }

// Rolling returns a new series whose value at i is the mean of the last
// `window` samples ending at i (Fig. 11 uses a rolling 10-frame average).
func (s *Series) Rolling(window int) *Series {
	if window < 1 {
		window = 1
	}
	out := &Series{points: make([]Point, 0, len(s.points))}
	var sum float64
	for i, p := range s.points {
		sum += p.V
		if i >= window {
			sum -= s.points[i-window].V
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out.Add(p.T, sum/float64(n))
	}
	return out
}

// Downsample keeps at most max evenly spaced samples, for compact reports.
// The first and the final sample are always kept — recovery-time readers
// (dynamics, faults) look at the tail of windowed-PDR series, so the last
// window must survive — and the indices are computed with integer math so no
// sample is ever emitted twice (float stepping used to duplicate indices for
// awkward (len, max) pairs).
func (s *Series) Downsample(max int) *Series {
	if max <= 0 || len(s.points) <= max {
		return &Series{points: append([]Point(nil), s.points...)}
	}
	out := &Series{points: make([]Point, 0, max)}
	if max == 1 {
		out.points = append(out.points, s.points[len(s.points)-1])
		return out
	}
	// i*last/(max-1) hits 0 and last exactly; len > max makes consecutive
	// indices differ by at least floor(last/(max-1)) >= 1, so the selection
	// is strictly increasing.
	last := len(s.points) - 1
	for i := 0; i < max; i++ {
		out.points = append(out.points, s.points[i*last/(max-1)])
	}
	return out
}

// Quantile reports the q-quantile (0..1) of the series values using linear
// interpolation; NaN when empty.
func (s *Series) Quantile(q float64) float64 {
	vals := make([]float64, len(s.points))
	for i, p := range s.points {
		vals[i] = p.V
	}
	sort.Float64s(vals)
	return quantileSorted(vals, q)
}

// quantileSorted interpolates the q-quantile over an ascending slice; NaN
// when empty.
func quantileSorted(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	pos := q * float64(len(vals)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(vals) {
		return vals[lo]
	}
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}

// Sample accumulates raw observations for quantile estimation — the delay
// percentile machinery of the overload and fault tables (p50/p95/p99). The
// zero value is ready to use.
type Sample struct {
	vals   []float64
	sorted bool
}

// Add incorporates one observation.
func (s *Sample) Add(x float64) {
	s.vals = append(s.vals, x)
	s.sorted = false
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Mean reports the sample mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Quantile reports the q-quantile (0..1) with linear interpolation; NaN when
// empty. The sort is cached across calls until the next Add.
func (s *Sample) Quantile(q float64) float64 {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	return quantileSorted(s.vals, q)
}
