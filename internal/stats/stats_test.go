package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningMoments(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 || r.Mean() != 5 {
		t.Fatalf("n=%d mean=%v", r.N(), r.Mean())
	}
	if math.Abs(r.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("variance = %v, want 32/7", r.Variance())
	}
}

func TestCI95KnownCase(t *testing.T) {
	var r Running
	for _, x := range []float64{1, 2, 3, 4, 5} {
		r.Add(x)
	}
	// sd = sqrt(2.5), n = 5, t(4) = 2.776 → CI = 2.776*sqrt(2.5)/sqrt(5)
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(r.CI95()-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", r.CI95(), want)
	}
	if r.Estimate().N != 5 {
		t.Error("estimate N wrong")
	}
}

func TestCI95Degenerate(t *testing.T) {
	var r Running
	if r.CI95() != 0 {
		t.Error("empty CI should be 0")
	}
	r.Add(3)
	if r.CI95() != 0 || r.Variance() != 0 {
		t.Error("single-sample CI should be 0")
	}
}

func TestTQuantile(t *testing.T) {
	if TQuantile95(1) != 12.706 || TQuantile95(30) != 2.042 || TQuantile95(1000) != 1.96 {
		t.Error("t-table values wrong")
	}
	if !math.IsNaN(TQuantile95(0)) {
		t.Error("df=0 should be NaN")
	}
}

func TestRunningMatchesBatchProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var r Running
		var sum float64
		for _, x := range raw {
			r.Add(float64(x))
			sum += float64(x)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, x := range raw {
			ss += (float64(x) - mean) * (float64(x) - mean)
		}
		batchVar := ss / float64(len(raw)-1)
		return math.Abs(r.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(r.Variance()-batchVar) < 1e-6*(1+batchVar)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesRolling(t *testing.T) {
	var s Series
	for i, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(float64(i), v)
	}
	r := s.Rolling(3)
	want := []float64{1, 1.5, 2, 3, 4}
	for i, w := range want {
		if math.Abs(r.At(i).V-w) > 1e-12 {
			t.Errorf("rolling[%d] = %v, want %v", i, r.At(i).V, w)
		}
	}
	// Window 1 is the identity; invalid windows clamp to 1.
	id := s.Rolling(0)
	for i := 0; i < s.Len(); i++ {
		if id.At(i) != s.At(i) {
			t.Fatal("Rolling(0) should be the identity")
		}
	}
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i))
	}
	d := s.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsampled length %d", d.Len())
	}
	if d.At(0).T != 0 {
		t.Error("first sample dropped")
	}
	// Downsample with a larger budget copies.
	c := s.Downsample(1000)
	if c.Len() != 100 {
		t.Error("oversized downsample should keep everything")
	}
}

// TestSeriesDownsampleAwkwardPairs pins the integer-index behaviour across
// (len, max) pairs where the old float stepping emitted duplicate indices or
// dropped the final sample: exactly min(len, max) points come back, strictly
// increasing, with the first and last original samples always present.
func TestSeriesDownsampleAwkwardPairs(t *testing.T) {
	cases := []struct{ n, max int }{
		{2, 1}, {3, 2}, {5, 4}, {7, 3}, {10, 3}, {10, 7}, {11, 10},
		{13, 5}, {100, 7}, {100, 99}, {101, 100}, {1000, 999}, {997, 31},
	}
	for _, tc := range cases {
		var s Series
		for i := 0; i < tc.n; i++ {
			s.Add(float64(i), float64(i)*2)
		}
		d := s.Downsample(tc.max)
		want := tc.max
		if tc.n < want {
			want = tc.n
		}
		if d.Len() != want {
			t.Errorf("n=%d max=%d: got %d points, want %d", tc.n, tc.max, d.Len(), want)
			continue
		}
		if last := d.At(d.Len() - 1).T; last != float64(tc.n-1) {
			t.Errorf("n=%d max=%d: last point T=%v, want %v (tail dropped)", tc.n, tc.max, last, float64(tc.n-1))
		}
		if tc.max > 1 && d.At(0).T != 0 {
			t.Errorf("n=%d max=%d: first sample dropped", tc.n, tc.max)
		}
		for i := 1; i < d.Len(); i++ {
			if d.At(i).T <= d.At(i-1).T {
				t.Errorf("n=%d max=%d: duplicate or out-of-order index at %d (T=%v after %v)",
					tc.n, tc.max, i, d.At(i).T, d.At(i-1).T)
			}
		}
	}
}

func TestSeriesQuantile(t *testing.T) {
	var s Series
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(0, v)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := s.Quantile(0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	var empty Series
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestReplicateOrderAndParallelism(t *testing.T) {
	out, _ := Replicate(8, 3, func(seed uint64) float64 { return float64(seed * seed) })
	for i, v := range out {
		if v != float64(i*i) {
			t.Fatalf("out[%d] = %v", i, v)
		}
	}
}

func TestReplicateMany(t *testing.T) {
	est, _ := ReplicateMany(4, 0, func(seed uint64) map[string]float64 {
		return map[string]float64{"a": float64(seed), "b": 2}
	})
	if est["a"].Mean != 1.5 || est["a"].N != 4 {
		t.Errorf("a = %+v", est["a"])
	}
	if est["b"].Mean != 2 || est["b"].CI != 0 {
		t.Errorf("b = %+v", est["b"])
	}
}

func TestSummarize(t *testing.T) {
	e := Summarize([]float64{1, 2, 3})
	if e.Mean != 2 || e.N != 3 {
		t.Errorf("estimate = %+v", e)
	}
	if e.String() == "" {
		t.Error("empty string rendering")
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty sample should yield NaN quantiles")
	}
	if s.Mean() != 0 || s.N() != 0 {
		t.Errorf("empty sample: mean %v n %d", s.Mean(), s.N())
	}
	// Out-of-order insertion; quantiles must match the sorted view.
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := s.Quantile(0.5); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Quantile(0.75); got != 4 {
		t.Errorf("p75 = %v", got)
	}
	if s.Mean() != 3 || s.N() != 5 {
		t.Errorf("mean %v n %d", s.Mean(), s.N())
	}
	// Adding after a quantile call must invalidate the sort cache.
	s.Add(0)
	if got := s.Quantile(0); got != 0 {
		t.Errorf("q0 after add = %v", got)
	}
	// Sample and Series share the interpolation rule.
	var ser Series
	for i, v := range []float64{1, 2, 3, 4, 5, 0} {
		ser.Add(float64(i), v)
	}
	if a, b := s.Quantile(0.95), ser.Quantile(0.95); a != b {
		t.Errorf("Sample p95 %v != Series p95 %v", a, b)
	}
}
