package csma

import (
	"fmt"

	"qma/internal/mac"
	"qma/internal/sim"
)

// Canonical registry keys of the two CSMA/CA variants.
const (
	ProtoUnslotted = "csma-unslotted"
	ProtoSlotted   = "csma-slotted"
)

// Options tunes a CSMA/CA engine through the protocol registry. The zero
// value (or nil options) selects the 802.15.4 defaults.
type Options struct {
	// MinBE, MaxBE and MaxBackoffs override the standard's defaults when
	// positive (macMinBE=3, macMaxBE=5, macMaxCSMABackoffs=4).
	MinBE, MaxBE, MaxBackoffs int
}

func init() {
	for _, reg := range []struct {
		name, alias, display string
		variant              Variant
	}{
		{ProtoUnslotted, "unslotted", "unslotted CSMA/CA", Unslotted},
		{ProtoSlotted, "slotted", "slotted CSMA/CA", Slotted},
	} {
		reg := reg
		mac.Register(mac.Protocol{
			Name:         reg.name,
			Aliases:      []string{reg.alias},
			Display:      reg.display,
			Validate:     func(opts any) error { return validateOptions(reg.name, opts) },
			ParseOptions: func(kv map[string]string) (any, error) { return parseOptions(reg.name, kv) },
			New: func(cfg mac.Config, opts any, rng *sim.Rand) mac.Engine {
				var o Options
				if opts != nil {
					o = opts.(Options)
				}
				return New(Config{
					MAC: cfg, Variant: reg.variant, Rng: rng,
					MinBE: o.MinBE, MaxBE: o.MaxBE, MaxBackoffs: o.MaxBackoffs,
				})
			},
		})
	}
}

// parseOptions maps -mac-opt key=value pairs onto Options; proto is the
// registered key of the variant the user selected, so errors name it.
func parseOptions(proto string, kv map[string]string) (any, error) {
	var o Options
	err := mac.ParseKV(proto, kv, map[string]mac.KVField{
		"minbe":       mac.IntField(&o.MinBE),
		"maxbe":       mac.IntField(&o.MaxBE),
		"maxbackoffs": mac.IntField(&o.MaxBackoffs),
	})
	if err != nil {
		return nil, err
	}
	return o, nil
}

func validateOptions(proto string, opts any) error {
	if opts == nil {
		return nil
	}
	o, ok := opts.(Options)
	if !ok {
		return mac.OptionsError(proto, opts, Options{})
	}
	if o.MaxBackoffs < 0 {
		return fmt.Errorf("csma: MaxBackoffs must not be negative: %d", o.MaxBackoffs)
	}
	return mac.ValidateBEB("csma", o.MinBE, o.MaxBE, MacMinBE, MacMaxBE)
}
