package csma

import (
	"testing"

	"qma/internal/mac"
)

func TestParseOptionsKV(t *testing.T) {
	got, err := parseOptions(ProtoUnslotted, map[string]string{"minbe": "2", "maxbe": "4", "maxbackoffs": "6"})
	if err != nil {
		t.Fatal(err)
	}
	if got.(Options) != (Options{MinBE: 2, MaxBE: 4, MaxBackoffs: 6}) {
		t.Errorf("parsed %+v", got)
	}
	if _, err := parseOptions(ProtoUnslotted, map[string]string{"cw": "2"}); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := parseOptions(ProtoUnslotted, map[string]string{"minbe": "two"}); err == nil {
		t.Error("malformed value accepted")
	}
}

func TestRegistryParseThenValidate(t *testing.T) {
	for _, key := range []string{ProtoUnslotted, ProtoSlotted} {
		p, ok := mac.Lookup(key)
		if !ok {
			t.Fatalf("%s not registered", key)
		}
		opts, err := p.ParseOptions(map[string]string{"minbe": "9"})
		if err != nil {
			t.Fatalf("%s: parse: %v", key, err)
		}
		// Syntactically fine, semantically out of range: Validate must catch
		// what ParseOptions lets through.
		if err := p.Validate(opts); err == nil {
			t.Errorf("%s: Validate accepted MinBE=9", key)
		}
	}
}

func TestValidateOptionsForeignType(t *testing.T) {
	if err := validateOptions(ProtoUnslotted, 42); err == nil {
		t.Error("foreign options type accepted")
	}
	if err := validateOptions(ProtoUnslotted, Options{MaxBackoffs: -1}); err == nil {
		t.Error("negative MaxBackoffs accepted")
	}
	if err := validateOptions(ProtoUnslotted, nil); err != nil {
		t.Errorf("nil options rejected: %v", err)
	}
}
