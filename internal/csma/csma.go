// Package csma implements the two IEEE 802.15.4 channel access baselines the
// paper evaluates QMA against (§6): unslotted CSMA/CA (binary exponential
// backoff, single CCA) and slotted CSMA/CA (backoff-period alignment, double
// CCA with CW=2). Both engines share the MAC base of internal/mac, so the
// comparison with QMA differs only in the access discipline.
package csma

import (
	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/sim"
)

// 802.15.4 CSMA/CA constants (IEEE Std 802.15.4-2020, §6.2.5).
const (
	// UnitBackoffPeriod is aUnitBackoffPeriod: 20 symbols = 320 µs.
	UnitBackoffPeriod = 20 * frame.SymbolDuration
	// MacMinBE is the default minimum backoff exponent.
	MacMinBE = 3
	// MacMaxBE is the default maximum backoff exponent.
	MacMaxBE = 5
	// MacMaxCSMABackoffs bounds the number of busy-CCA backoff rounds before
	// the algorithm declares a channel access failure.
	MacMaxCSMABackoffs = 4
)

// Variant selects the CSMA/CA flavour.
type Variant uint8

const (
	// Unslotted is the nonbeacon-style algorithm: one CCA after a random
	// backoff delay.
	Unslotted Variant = iota
	// Slotted aligns backoff periods to the CAP grid and requires two clear
	// CCAs (CW = 2) on consecutive backoff boundaries.
	Slotted
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == Slotted {
		return "slotted"
	}
	return "unslotted"
}

// Config assembles a CSMA/CA engine.
type Config struct {
	// MAC configures the shared MAC base.
	MAC mac.Config
	// Variant selects slotted or unslotted behaviour.
	Variant Variant
	// Rng drives the random backoff; required.
	Rng *sim.Rand
	// MinBE, MaxBE and MaxBackoffs override the standard's defaults when
	// positive.
	MinBE, MaxBE, MaxBackoffs int
}

// Stats aggregates CSMA-specific counters.
type Stats struct {
	// Backoffs counts random backoff rounds started.
	Backoffs uint64
	// CCAAttempts counts CCA windows evaluated.
	CCAAttempts uint64
	// CCABusy counts CCAs that found the channel busy.
	CCABusy uint64
	// AccessFailures counts transactions abandoned after MaxBackoffs.
	AccessFailures uint64
	// Deferrals counts transactions postponed to the next CAP.
	Deferrals uint64
}

// Engine is one node's CSMA/CA MAC.
type Engine struct {
	base *mac.Base
	cfg  Config

	stats Stats

	// inTransaction guards against starting two concurrent transactions.
	inTransaction bool

	// epoch counts power-cycle faults (mac.Rebooter); see at().
	epoch uint32
}

var _ mac.Engine = (*Engine)(nil)

// New assembles an engine from cfg, panicking on an invalid configuration.
func New(cfg Config) *Engine {
	if cfg.Rng == nil {
		panic("csma: Rng is required")
	}
	if cfg.MAC.Clock == nil {
		panic("csma: MAC.Clock is required")
	}
	if cfg.MinBE <= 0 {
		cfg.MinBE = MacMinBE
	}
	if cfg.MaxBE <= 0 {
		cfg.MaxBE = MacMaxBE
	}
	if cfg.MaxBackoffs <= 0 {
		cfg.MaxBackoffs = MacMaxCSMABackoffs
	}
	if cfg.MAC.OnAccept != nil {
		panic("csma: MAC.OnAccept is owned by the engine")
	}
	e := &Engine{cfg: cfg}
	cfg.MAC.OnAccept = e.kick
	e.base = mac.NewBase(cfg.MAC)
	return e
}

// Base implements mac.Engine.
func (e *Engine) Base() *mac.Base { return e.base }

// Deliver implements radio.Handler by delegating to the shared receive path.
func (e *Engine) Deliver(f *frame.Frame) { e.base.Deliver(f) }

// EngineStats returns a copy of the CSMA-specific counters.
func (e *Engine) EngineStats() Stats { return e.stats }

// Start implements mac.Engine.
func (e *Engine) Start() { e.kick() }

// Enqueue implements mac.Engine, starting a transaction when idle.
func (e *Engine) Enqueue(f *frame.Frame) bool {
	ok := e.base.Enqueue(f)
	if ok {
		e.kick()
	}
	return ok
}

// Reboot implements mac.Rebooter: wipe the shared MAC state and the
// transaction flag (backoff exponent and NB live only in cancelled
// closures), then resume with whatever traffic arrives next.
func (e *Engine) Reboot() {
	e.base.Reboot()
	e.inTransaction = false
	e.epoch++
	e.kick()
}

// kick starts a transaction for the queue head if none is running.
func (e *Engine) kick() {
	if e.inTransaction || e.base.Queue().Empty() {
		return
	}
	if barred, retryAt := e.base.AccessBarred(); barred {
		// Access-class barring: hold the transaction slot and retry once the
		// barring backoff has passed (a fresh Bernoulli draw happens then).
		// The reboot-epoch guard in at() keeps a power cycle from re-kicking
		// into a flushed queue.
		e.inTransaction = true
		e.at(retryAt, func() {
			e.inTransaction = false
			e.kick()
		})
		return
	}
	e.inTransaction = true
	e.beginTransaction()
}

// beginTransaction starts the CSMA/CA algorithm for the current queue head
// with fresh NB/BE state.
func (e *Engine) beginTransaction() {
	f := e.base.Queue().Head()
	if f == nil {
		e.inTransaction = false
		return
	}
	if e.cfg.Variant == Slotted {
		e.slottedBackoff(f, 0, e.cfg.MinBE)
	} else {
		e.unslottedBackoff(f, 0, e.cfg.MinBE)
	}
}

// transactionCost is the CAP time one attempt needs from the CCA start:
// CCA window(s), the frame itself and, for unicasts, the ACK exchange.
func (e *Engine) transactionCost(f *frame.Frame, ccas int) sim.Time {
	cost := sim.Time(ccas)*frame.CCADuration + f.Duration()
	if !f.IsBroadcast() {
		cost += frame.AckWait
	}
	return cost
}

// at schedules fn at the absolute instant t, bound to the engine's current
// reboot epoch: a power-cycle fault (mac.Rebooter) bumps the epoch, turning
// every in-flight continuation — backoff expiries, CCA completions, slot
// boundaries — into a no-op instead of letting it operate on a flushed
// queue. Without faults the epoch never changes and the guard is a single
// always-true comparison.
func (e *Engine) at(t sim.Time, fn func()) {
	ep := e.epoch
	e.base.Kernel().At(t, func() {
		if e.epoch == ep {
			fn()
		}
	})
}

// ---- Unslotted variant -------------------------------------------------

func (e *Engine) unslottedBackoff(f *frame.Frame, nb, be int) {
	e.stats.Backoffs++
	delay := sim.Time(e.cfg.Rng.Intn(1<<uint(be))) * UnitBackoffPeriod
	e.at(e.base.Kernel().Now()+delay, func() { e.unslottedCCA(f, nb, be) })
}

// unslottedCCA samples the channel at the end of one CCA window, deferring
// into the next CAP when the transaction no longer fits (802.15.4: a CAP
// transaction must complete before the CFP begins).
func (e *Engine) unslottedCCA(f *frame.Frame, nb, be int) {
	now := e.base.Kernel().Now()
	clk := e.base.Clock()
	if !clk.FitsInCAP(now, e.transactionCost(f, 1)) {
		e.stats.Deferrals++
		next := clk.CAPEnd(now) - clk.Config().CAPDuration() // CAP start of this superframe
		if now >= next {
			next = clk.SuperframeStart(now) + clk.Config().SuperframeDuration() + clk.Config().CAPStartOffset()
		}
		e.at(next, func() { e.unslottedCCA(f, nb, be) })
		return
	}
	e.base.ExtendBusy(now + frame.CCADuration)
	e.at(now+frame.CCADuration, func() {
		e.stats.CCAAttempts++
		if e.base.Medium().CCA(e.base.ID()) && !e.base.Busy() {
			e.transmit(f)
			return
		}
		e.stats.CCABusy++
		nb++
		if be < e.cfg.MaxBE {
			be++
		}
		if nb > e.cfg.MaxBackoffs {
			e.accessFailure(f)
			return
		}
		e.unslottedBackoff(f, nb, be)
	})
}

// ---- Slotted variant ----------------------------------------------------

// nextBoundary reports the first backoff-period boundary at or after t,
// measured from the CAP start of t's superframe. Outside the CAP it reports
// the next CAP start.
func (e *Engine) nextBoundary(t sim.Time) sim.Time {
	clk := e.base.Clock()
	cfg := clk.Config()
	capStart := clk.SuperframeStart(t) + cfg.CAPStartOffset()
	if t < capStart {
		return capStart
	}
	capEnd := clk.CAPEnd(t)
	if t >= capEnd {
		return clk.SuperframeStart(t) + cfg.SuperframeDuration() + cfg.CAPStartOffset()
	}
	off := t - capStart
	n := (off + UnitBackoffPeriod - 1) / UnitBackoffPeriod
	b := capStart + n*UnitBackoffPeriod
	if b >= capEnd {
		return clk.SuperframeStart(t) + cfg.SuperframeDuration() + cfg.CAPStartOffset()
	}
	return b
}

func (e *Engine) slottedBackoff(f *frame.Frame, nb, be int) {
	e.stats.Backoffs++
	periods := e.cfg.Rng.Intn(1 << uint(be))
	start := e.nextBoundary(e.base.Kernel().Now())
	target := start + sim.Time(periods)*UnitBackoffPeriod
	if !e.base.Clock().InCAP(target) || target >= e.base.Clock().CAPEnd(start) {
		// The delay runs past the CAP: the countdown pauses and resumes in
		// the next CAP (remaining periods carried over).
		capEnd := e.base.Clock().CAPEnd(start)
		remaining := (target - capEnd + UnitBackoffPeriod - 1) / UnitBackoffPeriod
		nextCAP := e.base.Clock().SuperframeStart(start) +
			e.base.Clock().Config().SuperframeDuration() +
			e.base.Clock().Config().CAPStartOffset()
		target = nextCAP + remaining*UnitBackoffPeriod
	}
	e.at(target, func() { e.slottedCCA(f, nb, be, 2) })
}

// slottedCCA performs the CW-counted CCA sequence on backoff boundaries.
func (e *Engine) slottedCCA(f *frame.Frame, nb, be, cw int) {
	now := e.base.Kernel().Now()
	clk := e.base.Clock()
	// The remaining CCA boundaries plus the frame and ACK must fit before
	// the CAP ends, otherwise the transaction is paused until the next CAP
	// (CW resets). Each remaining CCA occupies a full backoff period because
	// the transmission starts on the boundary after the last CCA.
	cost := sim.Time(cw)*UnitBackoffPeriod + f.Duration()
	if !f.IsBroadcast() {
		cost += frame.AckWait
	}
	if !clk.FitsInCAP(now, cost) {
		e.stats.Deferrals++
		next := clk.SuperframeStart(now) + clk.Config().SuperframeDuration() + clk.Config().CAPStartOffset()
		e.at(next, func() { e.slottedCCA(f, nb, be, 2) })
		return
	}
	e.base.ExtendBusy(now + frame.CCADuration)
	e.at(now+frame.CCADuration, func() {
		e.stats.CCAAttempts++
		if !e.base.Medium().CCA(e.base.ID()) || e.base.Busy() {
			e.stats.CCABusy++
			nb++
			if be < e.cfg.MaxBE {
				be++
			}
			if nb > e.cfg.MaxBackoffs {
				e.accessFailure(f)
				return
			}
			e.slottedBackoff(f, nb, be)
			return
		}
		if cw > 1 {
			// First CCA clear: repeat on the next backoff boundary.
			e.at(e.nextBoundary(e.base.Kernel().Now()+1), func() { e.slottedCCA(f, nb, be, cw-1) })
			return
		}
		// Second CCA clear: transmit on the next boundary.
		e.at(e.nextBoundary(e.base.Kernel().Now()+1), func() { e.transmit(f) })
	})
}

// ---- Shared tail --------------------------------------------------------

// transmit puts f on the air and routes the outcome through the retry
// policy: a failed unicast restarts the whole CSMA algorithm (fresh NB/BE)
// until mac's MaxRetries is exhausted.
func (e *Engine) transmit(f *frame.Frame) {
	e.base.SendFrame(f, func(success bool) {
		e.base.FinishFrame(f, success)
		e.inTransaction = false
		e.kick()
	})
}

// accessFailure abandons the transaction after MaxBackoffs busy CCAs.
func (e *Engine) accessFailure(f *frame.Frame) {
	e.stats.AccessFailures++
	e.base.DropCSMAFailure(f)
	e.inTransaction = false
	e.kick()
}
