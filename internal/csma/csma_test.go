package csma

import (
	"testing"

	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/radio"
	"qma/internal/sim"
	"qma/internal/superframe"
)

type rig struct {
	k       *sim.Kernel
	m       *radio.Medium
	clock   *superframe.Clock
	engines []*Engine
}

func newRig(t *testing.T, links [][2]int, n int, variant Variant) *rig {
	t.Helper()
	g := radio.NewGraphTopology(n)
	for _, l := range links {
		g.AddLink(frame.NodeID(l[0]), frame.NodeID(l[1]))
	}
	k := sim.NewKernel()
	m := radio.NewMedium(k, g, sim.NewRand(7))
	clock := superframe.NewClock(superframe.DefaultConfig())
	r := &rig{k: k, m: m, clock: clock}
	for i := 0; i < n; i++ {
		e := New(Config{
			MAC:     mac.Config{ID: frame.NodeID(i), Kernel: k, Medium: m, Clock: clock, MaxRetries: -1},
			Variant: variant,
			Rng:     sim.NewRandStream(7, uint64(i)),
		})
		r.engines = append(r.engines, e)
		m.Attach(frame.NodeID(i), e)
		e.Start()
	}
	return r
}

func dataTo(dst, src frame.NodeID, seq uint32) *frame.Frame {
	return &frame.Frame{Kind: frame.Data, Src: src, Dst: dst, Origin: src, Sink: dst, Seq: seq, MPDUBytes: 40}
}

func TestDeliversOnIdleChannel(t *testing.T) {
	for _, v := range []Variant{Unslotted, Slotted} {
		t.Run(v.String(), func(t *testing.T) {
			r := newRig(t, [][2]int{{0, 1}}, 2, v)
			for i := 0; i < 20; i++ {
				f := dataTo(1, 0, uint32(i+1))
				r.k.Schedule(sim.Time(i)*100*sim.Millisecond, func() { r.engines[0].Enqueue(f) })
			}
			r.k.Run(5 * sim.Second)
			s := r.engines[0].Base().Stats()
			if s.TxSuccess != 20 || s.TxFail != 0 {
				t.Fatalf("stats: %+v", s)
			}
			if r.engines[1].Base().Stats().Delivered != 20 {
				t.Fatalf("receiver delivered %d", r.engines[1].Base().Stats().Delivered)
			}
			es := r.engines[0].EngineStats()
			if es.Backoffs == 0 || es.CCAAttempts == 0 {
				t.Errorf("no backoff/CCA recorded: %+v", es)
			}
		})
	}
}

func TestSlottedUsesTwoCCAs(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}}, 2, Slotted)
	r.engines[0].Enqueue(dataTo(1, 0, 1))
	r.k.Run(2 * sim.Second)
	es := r.engines[0].EngineStats()
	if es.CCAAttempts != 2 {
		t.Errorf("CCAAttempts = %d, want 2 (CW=2)", es.CCAAttempts)
	}
}

// TestCCADefersToOngoingTransmission checks carrier sensing: node 2
// transmits a long frame while node 0 wants to send — 0 must see a busy
// channel and back off rather than collide.
func TestCCADefersToOngoingTransmission(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}, {1, 2}, {0, 2}}, 3, Unslotted)
	// A long broadcast from node 2 occupies the channel.
	long := &frame.Frame{Kind: frame.Data, Src: 2, Dst: frame.Broadcast, Origin: 2, Sink: frame.Broadcast, Seq: 1, MPDUBytes: 120}
	capStart := r.clock.NextSubslotStart(0)
	r.k.At(capStart, func() { r.m.StartTX(2, long) })
	r.k.At(capStart+10, func() { r.engines[0].Enqueue(dataTo(1, 0, 1)) })
	r.k.Run(1 * sim.Second)
	s := r.engines[0].Base().Stats()
	es := r.engines[0].EngineStats()
	if s.TxSuccess != 1 {
		t.Fatalf("frame not delivered eventually: %+v", s)
	}
	if es.CCABusy == 0 {
		t.Errorf("no busy CCA despite the occupied channel (backoffs=%d)", es.Backoffs)
	}
}

// TestHiddenNodesCollide checks the §6.1 premise: carrier sensing cannot
// protect against a hidden transmitter, so simultaneous saturated senders
// lose frames despite CSMA/CA.
func TestHiddenNodesCollide(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}, {1, 2}}, 3, Unslotted)
	seq := uint32(0)
	for i := 0; i < 100; i++ {
		seq++
		r.engines[0].Enqueue(dataTo(1, 0, seq))
		r.engines[2].Enqueue(dataTo(1, 2, seq))
		r.k.Run(r.k.Now() + 40*sim.Millisecond)
	}
	r.k.Run(r.k.Now() + 2*sim.Second)
	fails := r.engines[0].Base().Stats().TxFail + r.engines[2].Base().Stats().TxFail
	if fails == 0 {
		t.Error("no failed transmissions in a saturated hidden-node setup")
	}
}

func TestTransactionsRespectCAPBoundary(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}}, 2, Slotted)
	// Enqueue right before the CAP ends: the transaction must defer.
	capEnd := r.clock.CAPEnd(r.clock.NextSubslotStart(0))
	r.k.At(capEnd-500, func() { r.engines[0].Enqueue(dataTo(1, 0, 1)) })
	r.k.Run(capEnd + 100)
	if got := r.engines[0].Base().Stats().TxAttempts; got != 0 {
		t.Fatalf("transmitted %d frames across the CAP boundary", got)
	}
	// It completes in the next CAP.
	r.k.Run(r.clock.Config().SuperframeDuration() * 2)
	if got := r.engines[0].Base().Stats().TxSuccess; got != 1 {
		t.Fatalf("deferred frame not delivered: success=%d", got)
	}
}

func TestRetryAfterAckLoss(t *testing.T) {
	// Destination 5 does not exist: every attempt fails, the frame retries
	// NR times and is finally dropped.
	r := newRig(t, [][2]int{{0, 1}}, 2, Unslotted)
	r.engines[0].Enqueue(dataTo(5, 0, 1))
	r.k.Run(5 * sim.Second)
	s := r.engines[0].Base().Stats()
	if s.TxAttempts != 4 { // 1 + NR retries
		t.Errorf("TxAttempts = %d, want 4", s.TxAttempts)
	}
	if s.RetryDrops != 1 {
		t.Errorf("RetryDrops = %d, want 1", s.RetryDrops)
	}
}

func TestVariantString(t *testing.T) {
	if Unslotted.String() != "unslotted" || Slotted.String() != "slotted" {
		t.Error("variant names wrong")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without Rng")
		}
	}()
	New(Config{})
}
