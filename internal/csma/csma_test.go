package csma

import (
	"testing"

	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/radio"
	"qma/internal/sim"
	"qma/internal/superframe"
)

type rig struct {
	k       *sim.Kernel
	m       *radio.Medium
	clock   *superframe.Clock
	engines []*Engine
}

func newRig(t *testing.T, links [][2]int, n int, variant Variant) *rig {
	t.Helper()
	g := radio.NewGraphTopology(n)
	for _, l := range links {
		g.AddLink(frame.NodeID(l[0]), frame.NodeID(l[1]))
	}
	k := sim.NewKernel()
	m := radio.NewMedium(k, g, sim.NewRand(7))
	clock := superframe.NewClock(superframe.DefaultConfig())
	r := &rig{k: k, m: m, clock: clock}
	for i := 0; i < n; i++ {
		e := New(Config{
			MAC:     mac.Config{ID: frame.NodeID(i), Kernel: k, Medium: m, Clock: clock, MaxRetries: -1},
			Variant: variant,
			Rng:     sim.NewRandStream(7, uint64(i)),
		})
		r.engines = append(r.engines, e)
		m.Attach(frame.NodeID(i), e)
		e.Start()
	}
	return r
}

func dataTo(dst, src frame.NodeID, seq uint32) *frame.Frame {
	return &frame.Frame{Kind: frame.Data, Src: src, Dst: dst, Origin: src, Sink: dst, Seq: seq, MPDUBytes: 40}
}

func TestDeliversOnIdleChannel(t *testing.T) {
	for _, v := range []Variant{Unslotted, Slotted} {
		t.Run(v.String(), func(t *testing.T) {
			r := newRig(t, [][2]int{{0, 1}}, 2, v)
			for i := 0; i < 20; i++ {
				f := dataTo(1, 0, uint32(i+1))
				r.k.Schedule(sim.Time(i)*100*sim.Millisecond, func() { r.engines[0].Enqueue(f) })
			}
			r.k.Run(5 * sim.Second)
			s := r.engines[0].Base().Stats()
			if s.TxSuccess != 20 || s.TxFail != 0 {
				t.Fatalf("stats: %+v", s)
			}
			if r.engines[1].Base().Stats().Delivered != 20 {
				t.Fatalf("receiver delivered %d", r.engines[1].Base().Stats().Delivered)
			}
			es := r.engines[0].EngineStats()
			if es.Backoffs == 0 || es.CCAAttempts == 0 {
				t.Errorf("no backoff/CCA recorded: %+v", es)
			}
		})
	}
}

func TestSlottedUsesTwoCCAs(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}}, 2, Slotted)
	r.engines[0].Enqueue(dataTo(1, 0, 1))
	r.k.Run(2 * sim.Second)
	es := r.engines[0].EngineStats()
	if es.CCAAttempts != 2 {
		t.Errorf("CCAAttempts = %d, want 2 (CW=2)", es.CCAAttempts)
	}
}

// TestCCADefersToOngoingTransmission checks carrier sensing: node 2
// transmits a long frame while node 0 wants to send — 0 must see a busy
// channel and back off rather than collide.
func TestCCADefersToOngoingTransmission(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}, {1, 2}, {0, 2}}, 3, Unslotted)
	// A long broadcast from node 2 occupies the channel.
	long := &frame.Frame{Kind: frame.Data, Src: 2, Dst: frame.Broadcast, Origin: 2, Sink: frame.Broadcast, Seq: 1, MPDUBytes: 120}
	capStart := r.clock.NextSubslotStart(0)
	r.k.At(capStart, func() { r.m.StartTX(2, long, 0) })
	r.k.At(capStart+10, func() { r.engines[0].Enqueue(dataTo(1, 0, 1)) })
	r.k.Run(1 * sim.Second)
	s := r.engines[0].Base().Stats()
	es := r.engines[0].EngineStats()
	if s.TxSuccess != 1 {
		t.Fatalf("frame not delivered eventually: %+v", s)
	}
	if es.CCABusy == 0 {
		t.Errorf("no busy CCA despite the occupied channel (backoffs=%d)", es.Backoffs)
	}
}

// TestHiddenNodesCollide checks the §6.1 premise: carrier sensing cannot
// protect against a hidden transmitter, so simultaneous saturated senders
// lose frames despite CSMA/CA.
func TestHiddenNodesCollide(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}, {1, 2}}, 3, Unslotted)
	seq := uint32(0)
	for i := 0; i < 100; i++ {
		seq++
		r.engines[0].Enqueue(dataTo(1, 0, seq))
		r.engines[2].Enqueue(dataTo(1, 2, seq))
		r.k.Run(r.k.Now() + 40*sim.Millisecond)
	}
	r.k.Run(r.k.Now() + 2*sim.Second)
	fails := r.engines[0].Base().Stats().TxFail + r.engines[2].Base().Stats().TxFail
	if fails == 0 {
		t.Error("no failed transmissions in a saturated hidden-node setup")
	}
}

func TestTransactionsRespectCAPBoundary(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}}, 2, Slotted)
	// Enqueue right before the CAP ends: the transaction must defer.
	capEnd := r.clock.CAPEnd(r.clock.NextSubslotStart(0))
	r.k.At(capEnd-500, func() { r.engines[0].Enqueue(dataTo(1, 0, 1)) })
	r.k.Run(capEnd + 100)
	if got := r.engines[0].Base().Stats().TxAttempts; got != 0 {
		t.Fatalf("transmitted %d frames across the CAP boundary", got)
	}
	// It completes in the next CAP.
	r.k.Run(r.clock.Config().SuperframeDuration() * 2)
	if got := r.engines[0].Base().Stats().TxSuccess; got != 1 {
		t.Fatalf("deferred frame not delivered: success=%d", got)
	}
}

func TestRetryAfterAckLoss(t *testing.T) {
	// Destination 5 does not exist: every attempt fails, the frame retries
	// NR times and is finally dropped.
	r := newRig(t, [][2]int{{0, 1}}, 2, Unslotted)
	r.engines[0].Enqueue(dataTo(5, 0, 1))
	r.k.Run(5 * sim.Second)
	s := r.engines[0].Base().Stats()
	if s.TxAttempts != 4 { // 1 + NR retries
		t.Errorf("TxAttempts = %d, want 4", s.TxAttempts)
	}
	if s.RetryDrops != 1 {
		t.Errorf("RetryDrops = %d, want 1", s.RetryDrops)
	}
}

// TestBackoffExhaustionDropsFrame pins the channel-access-failure path for
// both variants: with the channel jammed through every CCA, NB exceeds
// macMaxCSMABackoffs and the frame must be dropped without ever reaching the
// air — counted by the engine's AccessFailures and the MAC base's CSMAFails,
// not by the retry counters.
func TestBackoffExhaustionDropsFrame(t *testing.T) {
	for _, v := range []Variant{Unslotted, Slotted} {
		t.Run(v.String(), func(t *testing.T) {
			// Nodes 2 and 3 jam node 0 with overlapping long broadcasts
			// (4 ms each, started every 3 ms) across the first three
			// superframes, so every CCA node 0 performs finds the channel
			// busy.
			r := newRig(t, [][2]int{{0, 1}, {0, 2}, {0, 3}}, 4, v)
			for i := 0; sim.Time(i)*3*sim.Millisecond < 380*sim.Millisecond; i++ {
				jammer := frame.NodeID(2 + i%2)
				f := &frame.Frame{Kind: frame.Data, Src: jammer, Dst: frame.Broadcast,
					Origin: jammer, Sink: frame.Broadcast, Seq: uint32(i + 1), MPDUBytes: 120}
				r.k.At(sim.Time(i)*3*sim.Millisecond, func() { r.m.StartTX(jammer, f, 0) })
			}
			r.engines[0].Enqueue(dataTo(1, 0, 1))
			r.k.Run(600 * sim.Millisecond)

			es := r.engines[0].EngineStats()
			s := r.engines[0].Base().Stats()
			if es.AccessFailures != 1 {
				t.Errorf("AccessFailures = %d, want 1 (engine stats: %+v)", es.AccessFailures, es)
			}
			if s.CSMAFails != 1 {
				t.Errorf("CSMAFails = %d, want 1 (base stats: %+v)", s.CSMAFails, s)
			}
			if s.TxAttempts != 0 || s.RetryDrops != 0 {
				t.Errorf("frame reached the air or the retry path: %+v", s)
			}
			if !r.engines[0].Base().Queue().Empty() {
				t.Error("dropped frame still queued")
			}
			if es.CCABusy <= uint64(MacMaxCSMABackoffs) {
				t.Errorf("CCABusy = %d, want > macMaxCSMABackoffs=%d", es.CCABusy, MacMaxCSMABackoffs)
			}
		})
	}
}

// TestSlottedCWRequiresTwoClearBoundaries pins the slotted variant's CW=2
// contention window: one clear CCA is never enough to transmit. The jammer
// occupies exactly every second 320 µs backoff period (a 352 µs burst
// centred on the odd periods' CCA sample instant), so whenever the first
// CCA finds its boundary clear, the mandatory second CCA on the next
// boundary is busy — the transaction must restart its backoff every time
// and exhaust, despite the channel being idle half the time.
func TestSlottedCWRequiresTwoClearBoundaries(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}, {0, 2}}, 3, Slotted)
	cfg := r.clock.Config()
	seq := uint32(0)
	for sf := sim.Time(0); sf < 3; sf++ {
		capStart := sf*cfg.SuperframeDuration() + cfg.CAPStartOffset()
		capEnd := capStart + cfg.CAPDuration()
		for k := sim.Time(0); ; k++ {
			// Sample instants are boundary+128 µs; cover the odd
			// boundaries' samples with a burst over [272 µs, 624 µs) of
			// each 640 µs pair, leaving the even boundaries' samples clear.
			start := capStart + k*2*UnitBackoffPeriod + 272*sim.Microsecond
			f := &frame.Frame{Kind: frame.Data, Src: 2, Dst: frame.Broadcast,
				Origin: 2, Sink: frame.Broadcast, MPDUBytes: 5}
			if start+f.Duration() > capEnd {
				break
			}
			seq++
			f.Seq = seq
			r.k.At(start, func() { r.m.StartTX(2, f, 0) })
		}
	}
	r.engines[0].Enqueue(dataTo(1, 0, 1))
	r.k.Run(600 * sim.Millisecond)

	es := r.engines[0].EngineStats()
	s := r.engines[0].Base().Stats()
	if s.TxAttempts != 0 {
		t.Fatalf("transmitted %d frames without two consecutive clear CCAs", s.TxAttempts)
	}
	if es.AccessFailures != 1 || s.CSMAFails != 1 {
		t.Errorf("exhaustion not reached: engine %+v, base CSMAFails=%d", es, s.CSMAFails)
	}
	if es.CCAAttempts <= es.CCABusy {
		t.Errorf("no clear first CCA recorded (attempts=%d busy=%d) — the jam pattern is wrong",
			es.CCAAttempts, es.CCABusy)
	}
}

func TestVariantString(t *testing.T) {
	if Unslotted.String() != "unslotted" || Slotted.String() != "slotted" {
		t.Error("variant names wrong")
	}
}

// TestOptionsValidation pins the registry-level option checks: exponents
// that would overflow the backoff draw and min/max inversions (including
// against the defaulted counterpart) must be rejected.
func TestOptionsValidation(t *testing.T) {
	for name, o := range map[string]Options{
		"negative":              {MinBE: -1},
		"overflowing exponent":  {MinBE: 33, MaxBE: 33},
		"min above max":         {MinBE: 5, MaxBE: 4},
		"min above default max": {MinBE: 6},
		"negative max backoffs": {MaxBackoffs: -2},
	} {
		if err := validateOptions(ProtoUnslotted, o); err == nil {
			t.Errorf("%s: validateOptions accepted %+v", name, o)
		}
	}
	for name, o := range map[string]Options{
		"zero value": {},
		"custom":     {MinBE: 2, MaxBE: 6, MaxBackoffs: 5},
		"max only":   {MaxBE: 8},
	} {
		if err := validateOptions(ProtoUnslotted, o); err != nil {
			t.Errorf("%s: validateOptions rejected %+v: %v", name, o, err)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without Rng")
		}
	}()
	New(Config{})
}
