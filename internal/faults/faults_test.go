package faults

import (
	"strings"
	"testing"

	"qma/internal/sim"
)

func TestEnabled(t *testing.T) {
	var s Schedule
	if s.Enabled() {
		t.Error("zero schedule reports enabled")
	}
	cases := []Schedule{
		{Outages: []Outage{{Node: 0, At: 1, Duration: 1}}},
		{Reboots: []Reboot{{Node: 0, At: 1}}},
		{AckCorruption: []Window{{At: 1, Duration: 1}}},
		{BeaconLoss: []BeaconLoss{{Node: 0, At: 1, Duration: 1}}},
	}
	for i, c := range cases {
		if !c.Enabled() {
			t.Errorf("case %d: schedule with one entry reports disabled", i)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := Schedule{
		Outages:       []Outage{{Node: 2, At: 0, Duration: 1, StopBeacons: true}},
		Reboots:       []Reboot{{Node: 0, At: 0}},
		AckCorruption: []Window{{At: 5, Duration: 2}},
		BeaconLoss:    []BeaconLoss{{Node: 1, At: 3, Duration: 4}},
	}
	if err := ok.Validate(3); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []struct {
		name string
		s    Schedule
		want string
	}{
		{"outage node high", Schedule{Outages: []Outage{{Node: 3, At: 1, Duration: 1}}}, "out of range"},
		{"outage node negative", Schedule{Outages: []Outage{{Node: -1, At: 1, Duration: 1}}}, "out of range"},
		{"outage negative start", Schedule{Outages: []Outage{{Node: 0, At: -1, Duration: 1}}}, "negative start"},
		{"outage zero duration", Schedule{Outages: []Outage{{Node: 0, At: 1}}}, "must be positive"},
		{"reboot node", Schedule{Reboots: []Reboot{{Node: 9, At: 1}}}, "out of range"},
		{"reboot negative", Schedule{Reboots: []Reboot{{Node: 0, At: -1}}}, "negative instant"},
		{"ack negative start", Schedule{AckCorruption: []Window{{At: -1, Duration: 1}}}, "negative start"},
		{"ack zero duration", Schedule{AckCorruption: []Window{{At: 1}}}, "must be positive"},
		{"beacon node", Schedule{BeaconLoss: []BeaconLoss{{Node: 5, At: 1, Duration: 1}}}, "out of range"},
		{"beacon negative start", Schedule{BeaconLoss: []BeaconLoss{{Node: 0, At: -1, Duration: 1}}}, "negative start"},
		{"beacon zero duration", Schedule{BeaconLoss: []BeaconLoss{{Node: 0, At: 1}}}, "must be positive"},
	}
	for _, tc := range bad {
		err := tc.s.Validate(3)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// checkWindowAgainstReference cross-checks SuspendWindow against the naive
// per-instant SuspendedAt definition on every beacon-grid-aligned probe
// instant around the window.
func checkWindowAgainstReference(t *testing.T, sfd, at, dur sim.Time) {
	t.Helper()
	from, until, ok := SuspendWindow(sfd, at, dur)
	if ok && (from%sfd != 0 || until%sfd != 0) {
		t.Fatalf("sfd=%d at=%d dur=%d: window [%d,%d) not beacon-aligned", sfd, at, dur, from, until)
	}
	if ok && from >= until {
		t.Fatalf("sfd=%d at=%d dur=%d: empty window [%d,%d) reported ok", sfd, at, dur, from, until)
	}
	// Probe every superframe start from one before the window to one after,
	// plus mid-superframe instants: membership must match the reference.
	end := at + dur + 2*sfd
	step := sfd / 3
	if step == 0 {
		step = 1
	}
	for probe := sim.Time(0); probe <= end; probe += step {
		want := SuspendedAt(sfd, at, dur, probe)
		got := ok && probe >= from && probe < until
		if want != got {
			t.Fatalf("sfd=%d at=%d dur=%d probe=%d: SuspendWindow says %v, reference says %v (window [%d,%d) ok=%v)",
				sfd, at, dur, probe, got, want, from, until, ok)
		}
	}
}

func TestSuspendWindowMatchesReference(t *testing.T) {
	const sfd = 120 // arbitrary beacon interval with a divisible third
	cases := []struct{ at, dur sim.Time }{
		{0, 1},        // window at origin
		{0, 120},      // exactly one superframe
		{1, 118},      // interior, no beacon inside
		{1, 119},      // ends exactly on a beacon (exclusive)
		{1, 120},      // one beacon inside
		{119, 2},      // straddles a beacon
		{120, 240},    // aligned multi-superframe
		{121, 360},    // unaligned multi-superframe
		{240, 1},      // starts on a beacon
		{359, 1},      // just before a beacon
		{100000, 777}, // far from origin
	}
	for _, c := range cases {
		checkWindowAgainstReference(t, sfd, c.at, c.dur)
	}
	// Degenerate inputs inject nothing.
	if _, _, ok := SuspendWindow(0, 5, 5); ok {
		t.Error("sfd=0 accepted")
	}
	if _, _, ok := SuspendWindow(sfd, 5, 0); ok {
		t.Error("dur=0 accepted")
	}
	if SuspendedAt(0, 5, 5, 3) || SuspendedAt(sfd, 5, 0, 3) {
		t.Error("degenerate SuspendedAt reports suspension")
	}
}

// FuzzSuspendWindow drives the beacon-window arithmetic against the naive
// per-instant reference with arbitrary windows.
func FuzzSuspendWindow(f *testing.F) {
	f.Add(uint32(120), uint32(1), uint32(119))
	f.Add(uint32(7), uint32(0), uint32(21))
	f.Add(uint32(122880), uint32(100000), uint32(250000))
	f.Fuzz(func(t *testing.T, sfdRaw, atRaw, durRaw uint32) {
		sfd := sim.Time(sfdRaw%100000) + 1
		at := sim.Time(atRaw % 1000000)
		dur := sim.Time(durRaw%1000000) + 1
		checkWindowAgainstReference(t, sfd, at, dur)
	})
}
