// Package faults defines deterministic infrastructure-level fault schedules
// for the robustness evaluation: coordinator/sink outages, node reboots that
// wipe volatile learning state, ACK-corruption windows and beacon loss. The
// channel-level disturbances of internal/scenario's DynamicsConfig perturb
// what the radio delivers; a fault Schedule perturbs the protocol machinery
// itself — the regime of the alarm-burst/recovery line of work (PAPERS.md).
//
// Everything is a fixed script: a Schedule draws no randomness of its own,
// and its zero value injects nothing, keeping every existing run
// byte-identical (the same convention DynamicsConfig pins).
package faults

import (
	"fmt"

	"qma/internal/sim"
)

// Outage takes one node — typically the coordinator/sink — completely off
// the network for [At, At+Duration): it neither receives nor acknowledges,
// and its own transmissions never reach the air. With StopBeacons the node
// is treated as the beacon source, so every other node additionally loses
// superframe synchronization for the beacon-aligned window derived by
// SuspendWindow and suspends channel access until resync.
type Outage struct {
	Node        int
	At          sim.Time
	Duration    sim.Time
	StopBeacons bool
}

// Reboot power-cycles one node at At: volatile MAC and learning state —
// Q-tables, policies, bandit value estimates, backoff progress, transmit
// queue, neighbour table, duplicate-rejection history — is wiped and the
// node re-enters its cautious startup phase. The radio finishes any in-air
// symbol; only state above the PHY is volatile.
type Reboot struct {
	Node int
	At   sim.Time
}

// Window is a global time window [At, At+Duration) during which every
// acknowledgement frame on the air is corrupted: receivers cannot decode
// ACKs, so transmitters see timeouts and retry even though the data got
// through. This isolates the ACK path, the classic asymmetric-failure mode.
type Window struct {
	At       sim.Time
	Duration sim.Time
}

// BeaconLoss makes one node miss every beacon inside [At, At+Duration)
// while the rest of the network stays synchronized. The node suspends
// channel access for the beacon-aligned window derived by SuspendWindow;
// its receiver stays on, so it keeps learning from overheard traffic.
type BeaconLoss struct {
	Node     int
	At       sim.Time
	Duration sim.Time
}

// Schedule is a deterministic fault script. The zero value is "no faults"
// and is guaranteed not to change a run in any way: arming a zero schedule
// schedules no events, draws no randomness and touches no node state.
type Schedule struct {
	// Outages are the coordinator/sink outage windows.
	Outages []Outage
	// Reboots are the node power-cycle events.
	Reboots []Reboot
	// AckCorruption are the global ACK-corruption windows.
	AckCorruption []Window
	// BeaconLoss are the per-node beacon-loss windows.
	BeaconLoss []BeaconLoss
}

// Enabled reports whether the schedule injects anything.
func (s *Schedule) Enabled() bool {
	return len(s.Outages) > 0 || len(s.Reboots) > 0 ||
		len(s.AckCorruption) > 0 || len(s.BeaconLoss) > 0
}

// Validate reports a descriptive error when the schedule is not realizable
// on a network of numNodes nodes.
func (s *Schedule) Validate(numNodes int) error {
	for i, o := range s.Outages {
		if o.Node < 0 || o.Node >= numNodes {
			return fmt.Errorf("faults: outage %d: node %d out of range [0,%d)", i, o.Node, numNodes)
		}
		if o.At < 0 {
			return fmt.Errorf("faults: outage %d: negative start %v", i, o.At)
		}
		if o.Duration <= 0 {
			return fmt.Errorf("faults: outage %d: duration %v must be positive", i, o.Duration)
		}
	}
	for i, r := range s.Reboots {
		if r.Node < 0 || r.Node >= numNodes {
			return fmt.Errorf("faults: reboot %d: node %d out of range [0,%d)", i, r.Node, numNodes)
		}
		if r.At < 0 {
			return fmt.Errorf("faults: reboot %d: negative instant %v", i, r.At)
		}
	}
	for i, w := range s.AckCorruption {
		if w.At < 0 {
			return fmt.Errorf("faults: ack corruption %d: negative start %v", i, w.At)
		}
		if w.Duration <= 0 {
			return fmt.Errorf("faults: ack corruption %d: duration %v must be positive", i, w.Duration)
		}
	}
	for i, b := range s.BeaconLoss {
		if b.Node < 0 || b.Node >= numNodes {
			return fmt.Errorf("faults: beacon loss %d: node %d out of range [0,%d)", i, b.Node, numNodes)
		}
		if b.At < 0 {
			return fmt.Errorf("faults: beacon loss %d: negative start %v", i, b.At)
		}
		if b.Duration <= 0 {
			return fmt.Errorf("faults: beacon loss %d: duration %v must be positive", i, b.Duration)
		}
	}
	return nil
}

// SuspendWindow maps a raw beacon-loss window [at, at+dur) onto the
// channel-access suspension it causes, given the superframe duration sfd.
// Beacons are implicit in this simulator — nodes synchronize through the
// shared superframe clock, with a notional beacon at every superframe start
// — so losing beacons translates into a suspension aligned to the beacon
// grid: sync is lost at the first beacon inside the window (a node coasts on
// its last good beacon until a beacon actually goes missing) and regained at
// the first beacon at or after the window's end. ok is false when the window
// contains no beacon at all, in which case the loss is absorbed entirely by
// coasting and nothing is suspended.
func SuspendWindow(sfd, at, dur sim.Time) (from, until sim.Time, ok bool) {
	if sfd <= 0 || dur <= 0 {
		return 0, 0, false
	}
	end := at + dur
	from = at
	if rem := at % sfd; rem != 0 {
		from = at - rem + sfd // first beacon at or after `at`
	}
	if from >= end {
		return 0, 0, false
	}
	until = end
	if rem := end % sfd; rem != 0 {
		until = end - rem + sfd // first beacon at or after `end`
	}
	return from, until, true
}

// SuspendedAt is the naive reference for SuspendWindow: it decides whether a
// node that lost every beacon in [at, at+dur) is desynchronized at instant t
// by walking the beacon grid directly. A node is desynchronized at t when
// the most recent beacon at or before t was lost. The fuzz harness checks
// SuspendWindow against this definition point by point.
func SuspendedAt(sfd, at, dur, t sim.Time) bool {
	if sfd <= 0 || dur <= 0 {
		return false
	}
	lastBeacon := t - t%sfd
	return lastBeacon >= at && lastBeacon < at+dur
}
