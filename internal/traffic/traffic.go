// Package traffic generates the offered load of the paper's scenarios:
// Poisson data sources with fixed or alternating rates (§6.1, §6.3), bounded
// evaluation-packet counts, warm-up offsets and the periodic route-discovery
// broadcasts that stand in for GPSR (§6.3).
package traffic

import (
	"fmt"

	"qma/internal/frame"
	"qma/internal/sim"
)

// DefaultDataMPDU is the data-frame MPDU length used throughout the
// evaluation: 80 bytes ≈ 2.75 ms on air, so a frame spans up to 3 subslots,
// matching §6.1.3 ("transmissions span over up to 3 subslots"). The length
// also calibrates the CSMA/CA congestion collapse of Fig. 7 to the paper's
// rate range (see EXPERIMENTS.md).
const DefaultDataMPDU = 80

// Enqueuer is where generated frames go (a mac.Engine or a dsme.Node).
type Enqueuer interface {
	Enqueue(f *frame.Frame) bool
}

// Phase is one segment of a rate schedule.
type Phase struct {
	// Rate is the packet generation rate δ in packets/second.
	Rate float64
	// Duration is how long the phase lasts before the schedule advances
	// (cyclically). Zero means "forever".
	Duration sim.Time
}

// Source generates unicast data frames towards a sink according to a Poisson
// process whose rate follows a cyclic phase schedule.
type Source struct {
	// Kernel drives generation; required.
	Kernel *sim.Kernel
	// Rng draws inter-arrival times; required, private to this source.
	Rng *sim.Rand
	// Target receives generated frames.
	Target Enqueuer
	// Origin is the generating node, Sink the final destination and FirstHop
	// the MAC destination of the first transmission.
	Origin, Sink, FirstHop frame.NodeID
	// Phases is the cyclic rate schedule; at least one phase with Rate > 0
	// is required for any packet to be generated.
	Phases []Phase
	// StartAt delays generation (the paper starts data traffic after a 100 s
	// association period).
	StartAt sim.Time
	// MaxPackets bounds generation (the paper's "1000 data packets");
	// 0 means unbounded.
	MaxPackets int
	// MPDUBytes overrides DefaultDataMPDU when positive.
	MPDUBytes int
	// Tag classifies the generated frames for accounting.
	Tag frame.Tag
	// Seq, when non-nil, is a sequence counter shared by all sources of the
	// same origin (duplicate rejection is per origin, so two sources at one
	// node must not reuse numbers). Nil uses a private counter.
	Seq *uint32
	// OnGenerate is called for every generated frame, before it is offered
	// to the target. May be nil.
	OnGenerate func(f *frame.Frame)
	// Pool, when non-nil, supplies recycled frames (the MAC layer returns
	// them once they leave its queue for good).
	Pool *frame.Pool

	generated int
	seq       uint32
	phase     int
	phaseEnds sim.Time
}

// Generated reports how many frames this source has produced.
func (s *Source) Generated() int { return s.generated }

// Start arms the source on its kernel. Call exactly once.
func (s *Source) Start() {
	if s.Kernel == nil || s.Rng == nil || s.Target == nil {
		panic("traffic: Kernel, Rng and Target are required")
	}
	if len(s.Phases) == 0 {
		panic("traffic: at least one phase is required")
	}
	s.phase = 0
	s.phaseEnds = s.StartAt + s.Phases[0].Duration
	s.Kernel.At(s.StartAt, s.scheduleNext)
}

// CurrentRate reports the rate of the active phase at the current kernel
// time (advancing the schedule as needed).
func (s *Source) CurrentRate() float64 {
	s.advancePhase()
	return s.Phases[s.phase].Rate
}

func (s *Source) advancePhase() {
	now := s.Kernel.Now()
	for s.Phases[s.phase].Duration > 0 && now >= s.phaseEnds {
		s.phase = (s.phase + 1) % len(s.Phases)
		s.phaseEnds += s.Phases[s.phase].Duration
	}
}

func (s *Source) scheduleNext() {
	if s.MaxPackets > 0 && s.generated >= s.MaxPackets {
		return
	}
	rate := s.CurrentRate()
	if rate <= 0 {
		// Idle phase: re-check at the phase boundary.
		if s.Phases[s.phase].Duration == 0 {
			return // permanently silent
		}
		s.Kernel.At(s.phaseEnds, s.scheduleNext)
		return
	}
	gap := s.Rng.ExpTime(sim.Time(float64(sim.Second) / rate))
	if s.Phases[s.phase].Duration > 0 && s.Kernel.Now()+gap >= s.phaseEnds {
		// The draw crosses the phase boundary: re-draw there with the next
		// phase's rate (exact for exponential gaps, by memorylessness).
		s.Kernel.At(s.phaseEnds, s.scheduleNext)
		return
	}
	s.Kernel.Schedule(gap, func() {
		s.emit()
		s.scheduleNext()
	})
}

func (s *Source) emit() {
	if s.MaxPackets > 0 && s.generated >= s.MaxPackets {
		return
	}
	s.generated++
	seq := &s.seq
	if s.Seq != nil {
		seq = s.Seq
	}
	*seq++
	mpdu := s.MPDUBytes
	if mpdu <= 0 {
		mpdu = DefaultDataMPDU
	}
	f := s.Pool.Get()
	f.Kind = frame.Data
	f.Src = s.Origin
	f.Dst = s.FirstHop
	f.Origin = s.Origin
	f.Sink = s.Sink
	f.Seq = *seq
	f.MPDUBytes = mpdu
	f.Tag = s.Tag
	f.CreatedAt = s.Kernel.Now()
	if s.OnGenerate != nil {
		s.OnGenerate(f)
	}
	if !s.Target.Enqueue(f) {
		s.Pool.Put(f)
	}
}

// BroadcastSource emits periodic one-hop broadcasts — the route-discovery
// traffic of the paper's DSME scenario (GPSR substitute, DESIGN.md §3).
type BroadcastSource struct {
	// Kernel drives generation; required.
	Kernel *sim.Kernel
	// Rng jitters the period; required.
	Rng *sim.Rand
	// Target receives generated frames.
	Target Enqueuer
	// Origin is the broadcasting node.
	Origin frame.NodeID
	// Period is the mean broadcast interval; required > 0.
	Period sim.Time
	// Jitter is the uniform ± window around the period (defaults to
	// Period/4 when zero, to desynchronize nodes).
	Jitter sim.Time
	// MPDUBytes overrides the 30-byte default when positive.
	MPDUBytes int
	// StartAt delays the first broadcast.
	StartAt sim.Time
	// OnGenerate is called for every generated frame. May be nil.
	OnGenerate func(f *frame.Frame)
	// Pool, when non-nil, supplies recycled frames.
	Pool *frame.Pool

	generated int
	seq       uint32
}

// Generated reports how many broadcasts this source has produced.
func (b *BroadcastSource) Generated() int { return b.generated }

// Start arms the source on its kernel. Call exactly once.
func (b *BroadcastSource) Start() {
	if b.Kernel == nil || b.Rng == nil || b.Target == nil {
		panic("traffic: Kernel, Rng and Target are required")
	}
	if b.Period <= 0 {
		panic(fmt.Sprintf("traffic: broadcast period %v must be positive", b.Period))
	}
	if b.Jitter == 0 {
		b.Jitter = b.Period / 4
	}
	first := b.StartAt + sim.Time(b.Rng.Float64()*float64(b.Period))
	b.Kernel.At(first, b.tick)
}

func (b *BroadcastSource) tick() {
	b.emit()
	gap := b.Period
	if b.Jitter > 0 {
		gap += sim.Time(b.Rng.Float64()*float64(2*b.Jitter)) - b.Jitter
	}
	if gap < sim.Millisecond {
		gap = sim.Millisecond
	}
	b.Kernel.Schedule(gap, b.tick)
}

func (b *BroadcastSource) emit() {
	b.generated++
	b.seq++
	mpdu := b.MPDUBytes
	if mpdu <= 0 {
		mpdu = 30
	}
	f := b.Pool.Get()
	f.Kind = frame.RouteDiscovery
	f.Src = b.Origin
	f.Dst = frame.Broadcast
	f.Origin = b.Origin
	f.Sink = frame.Broadcast
	f.Seq = b.seq
	f.MPDUBytes = mpdu
	f.CreatedAt = b.Kernel.Now()
	if b.OnGenerate != nil {
		b.OnGenerate(f)
	}
	if !b.Target.Enqueue(f) {
		b.Pool.Put(f)
	}
}
