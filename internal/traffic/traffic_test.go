package traffic

import (
	"math"
	"testing"

	"qma/internal/frame"
	"qma/internal/sim"
)

type collector struct {
	frames []*frame.Frame
	reject bool
}

func (c *collector) Enqueue(f *frame.Frame) bool {
	if c.reject {
		return false
	}
	c.frames = append(c.frames, f)
	return true
}

func TestPoissonSourceRate(t *testing.T) {
	k := sim.NewKernel()
	c := &collector{}
	s := &Source{
		Kernel: k, Rng: sim.NewRand(1), Target: c,
		Origin: 2, Sink: 0, FirstHop: 1,
		Phases: []Phase{{Rate: 20}},
	}
	s.Start()
	k.Run(100 * sim.Second)
	got := float64(len(c.frames)) / 100
	if math.Abs(got-20) > 2 {
		t.Errorf("rate = %.1f pkt/s, want ≈20", got)
	}
	f := c.frames[0]
	if f.Origin != 2 || f.Sink != 0 || f.Dst != 1 || f.Kind != frame.Data || f.MPDUBytes != DefaultDataMPDU {
		t.Errorf("frame fields wrong: %+v", f)
	}
	// Sequence numbers are strictly increasing.
	for i := 1; i < len(c.frames); i++ {
		if c.frames[i].Seq != c.frames[i-1].Seq+1 {
			t.Fatal("sequence numbers not consecutive")
		}
	}
}

func TestSourceMaxPacketsAndStart(t *testing.T) {
	k := sim.NewKernel()
	c := &collector{}
	s := &Source{
		Kernel: k, Rng: sim.NewRand(2), Target: c,
		Phases: []Phase{{Rate: 50}}, StartAt: 10 * sim.Second, MaxPackets: 25,
	}
	s.Start()
	k.Run(9 * sim.Second)
	if len(c.frames) != 0 {
		t.Fatalf("%d frames before StartAt", len(c.frames))
	}
	k.Run(100 * sim.Second)
	if len(c.frames) != 25 || s.Generated() != 25 {
		t.Fatalf("generated %d frames, want 25", len(c.frames))
	}
}

func TestAlternatingPhases(t *testing.T) {
	k := sim.NewKernel()
	c := &collector{}
	s := &Source{
		Kernel: k, Rng: sim.NewRand(3), Target: c,
		Phases: []Phase{
			{Rate: 100, Duration: 10 * sim.Second},
			{Rate: 0, Duration: 10 * sim.Second},
		},
	}
	s.Start()
	k.Run(40 * sim.Second)
	// Two active phases of 10 s at 100/s ≈ 2000 packets; silent phases add
	// nothing.
	got := len(c.frames)
	if got < 1700 || got > 2300 {
		t.Fatalf("generated %d packets, want ≈2000", got)
	}
	// No packet carries a timestamp inside a silent window.
	for _, f := range c.frames {
		phase := (f.CreatedAt / (10 * sim.Second)) % 2
		if phase == 1 {
			t.Fatalf("packet generated at %v during a silent phase", f.CreatedAt)
		}
	}
}

func TestSharedSequenceCounter(t *testing.T) {
	k := sim.NewKernel()
	c := &collector{}
	var seq uint32
	mk := func(tag frame.Tag) *Source {
		return &Source{Kernel: k, Rng: sim.NewRand(uint64(tag) + 9), Target: c,
			Phases: []Phase{{Rate: 10}}, Seq: &seq, Tag: tag, MaxPackets: 50}
	}
	mk(frame.TagEval).Start()
	mk(frame.TagManagement).Start()
	k.Run(30 * sim.Second)
	seen := make(map[uint32]bool)
	for _, f := range c.frames {
		if seen[f.Seq] {
			t.Fatalf("duplicate sequence number %d across sources", f.Seq)
		}
		seen[f.Seq] = true
	}
}

func TestBroadcastSourcePeriod(t *testing.T) {
	k := sim.NewKernel()
	c := &collector{}
	b := &BroadcastSource{
		Kernel: k, Rng: sim.NewRand(4), Target: c,
		Origin: 3, Period: 2 * sim.Second,
	}
	b.Start()
	k.Run(100 * sim.Second)
	got := len(c.frames)
	if got < 42 || got > 58 {
		t.Fatalf("broadcasts = %d over 100 s at 2 s period, want ≈50", got)
	}
	f := c.frames[0]
	if !f.IsBroadcast() || f.Kind != frame.RouteDiscovery || f.Origin != 3 {
		t.Errorf("broadcast fields wrong: %+v", f)
	}
}

func TestSourcePanicsOnMissingFields(t *testing.T) {
	cases := map[string]*Source{
		"no kernel": {Rng: sim.NewRand(1), Target: &collector{}, Phases: []Phase{{Rate: 1}}},
		"no phases": {Kernel: sim.NewKernel(), Rng: sim.NewRand(1), Target: &collector{}},
	}
	for name, s := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			s.Start()
		})
	}
}

func TestOnGenerateSeesRejectedFrames(t *testing.T) {
	k := sim.NewKernel()
	c := &collector{reject: true}
	gen := 0
	s := &Source{
		Kernel: k, Rng: sim.NewRand(5), Target: c,
		Phases: []Phase{{Rate: 10}}, MaxPackets: 10,
		OnGenerate: func(*frame.Frame) { gen++ },
	}
	s.Start()
	k.Run(10 * sim.Second)
	if gen != 10 {
		t.Fatalf("OnGenerate fired %d times, want 10 (drops still count as offered load)", gen)
	}
}
