package radio

import (
	"fmt"

	"qma/internal/frame"
	"qma/internal/sim"
)

// This file is the medium's shard-boundary surface for the multi-cell
// scale-out (internal/scenario's sharded runner): a transmission observer
// that lets a shard record its edge-node transmissions, and a foreign-busy
// injection that mirrors a remote shard's transmission into this medium's
// CCA accounting. Both are strictly additive — with no observer set and no
// injections scheduled, every hot path is byte-identical to the
// single-medium simulator.

// TxObserver observes every transmission start on the medium: the source,
// the channel and the on-air interval. It runs synchronously inside StartTX
// after the transmission's local effects are applied; it must not call back
// into the medium.
type TxObserver func(src frame.NodeID, channel uint8, start, end sim.Time)

// SetTxObserver registers the transmission observer (nil unregisters). The
// sharded runner uses it to record edge-node transmissions for the
// boundary-interference exchange; the observer itself changes no medium
// state, draws no randomness and schedules no events, so registering one
// keeps the run byte-identical.
func (m *Medium) SetTxObserver(fn TxObserver) { m.txObserver = fn }

// foreignTX mirrors one remote transmission into a single local node's busy
// accounting. Instances are pooled on the medium.
type foreignTX struct {
	node    frame.NodeID
	channel uint8
	end     sim.Time
}

// ScheduleForeignBusy mirrors a remote shard's transmission into this
// medium: from start until just before end's normal events, node's busy
// counter on the given channel is raised, so CCAs at node see the foreign
// energy — the same half-open [start, end) semantics a local sense link
// gets from StartTX/busyEnd. Foreign energy is interference only: it
// synchronizes no receiver and corrupts no reception (cross-cell links are
// below the decode-synchronization threshold by the cell partitioner's
// construction), and it does not count into ChannelLoad, which stays the
// shard-local airtime picture. start must not precede the kernel's current
// time; an empty interval (end <= start) is ignored.
func (m *Medium) ScheduleForeignBusy(node frame.NodeID, channel uint8, start, end sim.Time) {
	if end <= start {
		return
	}
	if now := m.k.Now(); start < now {
		panic(fmt.Sprintf("radio: foreign busy for node %d scheduled in the past (start %v, now %v)", node, start, now))
	}
	if m.foreignStartFn == nil {
		m.foreignStartFn = func(a any) {
			ft := a.(*foreignTX)
			m.busyAdd(ft.node, ft.channel, 1)
			m.k.AtCallEarly(ft.end, m.foreignEndFn, ft)
		}
		m.foreignEndFn = func(a any) {
			ft := a.(*foreignTX)
			m.busyAdd(ft.node, ft.channel, -1)
			if m.invariantChecks && m.busy[ft.node][ft.channel] < 0 {
				panic(fmt.Sprintf("radio: busy counter of node %d channel %d went negative at %v (foreign)",
					ft.node, ft.channel, m.k.Now()))
			}
			m.foreignPool = append(m.foreignPool, ft)
		}
	}
	var ft *foreignTX
	if n := len(m.foreignPool); n > 0 {
		ft = m.foreignPool[n-1]
		m.foreignPool = m.foreignPool[:n-1]
	} else {
		ft = &foreignTX{}
	}
	ft.node, ft.channel, ft.end = node, channel, end
	m.k.AtCall(start, m.foreignStartFn, ft)
}
