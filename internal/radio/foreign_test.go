package radio

import (
	"testing"

	"qma/internal/frame"
	"qma/internal/sim"
)

// foreignTestMedium builds a 2-node medium (0—1 linked) with an attached
// no-op handler per node.
func foreignTestMedium(t *testing.T) (*sim.Kernel, *Medium) {
	t.Helper()
	k := sim.NewKernel()
	g := NewGraphTopology(2)
	g.AddLink(0, 1)
	m := NewMedium(k, g, sim.NewRand(1))
	m.SetInvariantChecks(true)
	for i := frame.NodeID(0); i < 2; i++ {
		m.Attach(i, HandlerFunc(func(*frame.Frame) {}))
	}
	return k, m
}

func TestScheduleForeignBusyRaisesCCA(t *testing.T) {
	k, m := foreignTestMedium(t)
	const start, end = 10 * sim.Millisecond, 20 * sim.Millisecond
	m.ScheduleForeignBusy(1, 0, start, end)

	type probe struct {
		at    sim.Time
		clear bool
	}
	var got []probe
	for _, at := range []sim.Time{start - 1, start, end - 1, end, end + 1} {
		at := at
		k.At(at, func() { got = append(got, probe{at, m.CCA(1)}) })
	}
	k.RunAll()
	// Half-open [start, end): busy exactly on [start, end-1], clear at end —
	// the same semantics a local sense link gets from StartTX/busyEnd.
	want := []bool{true, false, false, true, true}
	for i, p := range got {
		if p.clear != want[i] {
			t.Errorf("CCA at %v: clear=%v, want %v", p.at, p.clear, want[i])
		}
	}
}

func TestScheduleForeignBusyIgnoresEmptyAndPoolsInstances(t *testing.T) {
	k, m := foreignTestMedium(t)
	m.ScheduleForeignBusy(0, 0, 5*sim.Millisecond, 5*sim.Millisecond) // empty: ignored
	for i := 0; i < 3; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		k.At(at, func() { m.ScheduleForeignBusy(0, 0, at+1*sim.Millisecond, at+3*sim.Millisecond) })
	}
	k.RunAll()
	if len(m.foreignPool) != 1 {
		t.Fatalf("foreign pool holds %d instances after sequential injections, want 1 (recycled)", len(m.foreignPool))
	}
	if got := m.busy[0][0]; got != 0 {
		t.Fatalf("busy counter %d after all foreign windows expired, want 0", got)
	}
}

func TestScheduleForeignBusyPastPanics(t *testing.T) {
	k, m := foreignTestMedium(t)
	k.At(10*sim.Millisecond, func() {})
	k.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling foreign busy in the past should panic")
		}
	}()
	m.ScheduleForeignBusy(0, 0, 5*sim.Millisecond, 8*sim.Millisecond)
}

func TestTxObserverSeesTransmissions(t *testing.T) {
	k, m := foreignTestMedium(t)
	type obs struct {
		src        frame.NodeID
		start, end sim.Time
	}
	var seen []obs
	m.SetTxObserver(func(src frame.NodeID, channel uint8, start, end sim.Time) {
		seen = append(seen, obs{src, start, end})
	})
	pool := &frame.Pool{}
	f := pool.Get()
	f.Kind = frame.Data
	f.Src, f.Dst = 0, 1
	var end sim.Time
	k.At(3*sim.Millisecond, func() { end = m.StartTX(0, f, 0) })
	k.RunAll()
	if len(seen) != 1 {
		t.Fatalf("observer saw %d transmissions, want 1", len(seen))
	}
	if seen[0].src != 0 || seen[0].start != 3*sim.Millisecond || seen[0].end != end {
		t.Fatalf("observer saw %+v, want src 0 start 3ms end %v", seen[0], end)
	}
}
