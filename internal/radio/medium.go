package radio

import (
	"fmt"
	"math"
	"slices"

	"qma/internal/frame"
	"qma/internal/sim"
)

// Handler receives every frame a node successfully decodes, whether or not
// the frame is addressed to it (overheard frames drive QMA's QBackoff
// reward). MAC engines implement Handler.
type Handler interface {
	Deliver(f *frame.Frame)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(f *frame.Frame)

// Deliver implements Handler.
func (h HandlerFunc) Deliver(f *frame.Frame) { h(f) }

// transmission tracks one frame on the air. Transmissions are pooled by
// their medium: endTX returns them (with their slices' capacity) to the
// freelist, so a steady-state simulation stops allocating per transmission.
type transmission struct {
	src     frame.NodeID
	f       *frame.Frame
	channel uint8
	start   sim.Time
	end     sim.Time
	// powerDB is the transmission's power reduction below the topology's
	// reference power, in dB (0 = reference/maximum power).
	powerDB float64
	// corrupt[i] is true when the reception at decode-neighbour i collided
	// or the receiver was transmitting; indexed parallel to receivers.
	corrupt []bool
	// contested[i] is true when another transmission overlapped this
	// reception at some point (capture bookkeeping: a reception delivered
	// despite contested[i] was captured); indexed parallel to receivers.
	// Only populated while capture is enabled — readers guard the index so
	// a transmission started before SetCaptureThreshold stays valid (it
	// can collide but never count as captured).
	contested []bool
	// receivers are the decode-neighbours of src tuned to the frame's
	// channel at transmission start.
	receivers []frame.NodeID
	// sensed are the nodes whose busy counters this transmission raised,
	// captured at transmission start. busyEnd lowers exactly this set, so
	// the counters stay consistent even when churn or mobility re-classify
	// the sender's sense links while the frame is on the air.
	sensed []frame.NodeID
}

// NodeStats aggregates per-node medium-level counters.
type NodeStats struct {
	// TxCount is the number of started transmissions.
	TxCount uint64
	// TxAirtime is the cumulative on-air time.
	TxAirtime sim.Time
	// RxDelivered counts successfully decoded frames (any destination).
	RxDelivered uint64
	// RxCollided counts receptions lost to collisions or half-duplex.
	RxCollided uint64
	// RxCaptured counts receptions that were delivered although at least one
	// other transmission overlapped them — the strongest frame cleared the
	// SINR capture threshold. Always 0 while capture is disabled.
	RxCaptured uint64
	// RxFaded counts receptions lost to random link loss.
	RxFaded uint64
	// CCACount counts clear channel assessments performed.
	CCACount uint64
	// CCABusy counts CCAs that reported a busy channel.
	CCABusy uint64
}

// Accumulate adds another node's counters into s — the sharded runner's
// per-cell radio aggregation.
func (s *NodeStats) Accumulate(o NodeStats) {
	s.TxCount += o.TxCount
	s.TxAirtime += o.TxAirtime
	s.RxDelivered += o.RxDelivered
	s.RxCollided += o.RxCollided
	s.RxCaptured += o.RxCaptured
	s.RxFaded += o.RxFaded
	s.CCACount += o.CCACount
	s.CCABusy += o.CCABusy
}

// Medium is the shared wireless channel. It is bound to one simulation
// kernel and is not safe for concurrent use.
//
// Memory is O(N + E): the decode and sense link sets are materialized once
// at construction as CSR-style flattened arrays (one shared backing slice
// plus per-node offsets), and clear channel assessment reads a per-node,
// per-channel busy counter maintained incrementally at transmission
// start/end instead of scanning the set of ongoing transmissions.
type Medium struct {
	k    *sim.Kernel
	topo Topology
	rng  *sim.Rand

	handlers []Handler
	stats    []NodeStats
	// tuned[i] is the channel node i's receiver is currently tuned to
	// (0, the common CAP channel, by default).
	tuned []uint8
	// txUntil[i] is the end of node i's current transmission (0 if idle).
	txUntil []sim.Time
	// rxCount[i] is the number of decodable transmissions currently
	// overlapping at node i.
	rxCount []int
	// inflight[i] are the transmissions currently decodable at node i.
	inflight [][]*transmission

	// decodeArr/decodeOff and senseArr/senseOff are the CSR link arrays:
	// node i's decode-neighbours are decodeArr[decodeOff[i]:decodeOff[i+1]]
	// (ascending), and analogously the nodes whose CCA senses i's
	// transmissions. Sense links follow the transmit direction: senseArr
	// under src lists the dst with topo.CanSense(src, dst).
	decodeArr []frame.NodeID
	decodeOff []int32
	senseArr  []frame.NodeID
	senseOff  []int32

	// busy[i][ch] counts ongoing transmissions a CCA at node i on channel ch
	// detects. Inner slices grow to the highest channel actually used at i.
	busy [][]int32

	// classify answers both link predicates for one ordered pair; enum is
	// the topology's candidate enumerator (nil when the topology only
	// supports N² probing). Both are captured at construction so the
	// dynamic re-classification paths share the static build's logic.
	classify func(src, dst frame.NodeID) (decode, sense bool)
	enum     LinkEnumerator

	// power is the topology's PowerModel (nil when it implements none); it
	// backs per-transmission power deltas and SINR capture. The CSR link
	// arrays above are computed at the reference (maximum) power; a
	// reduced-power transmission filters its receiver and sensed sets
	// through the per-link margins at StartTX.
	power PowerModel
	// captureDB is the receiver-side SINR capture threshold in dB; <= 0
	// disables capture, in which case any overlap corrupts every involved
	// reception exactly as the pre-capture medium did.
	captureDB float64

	// txByPower accumulates per-node TX airtime at reduced power levels,
	// lazily allocated on the first reduced-power transmission. Airtime at
	// the reference power is NodeStats.TxAirtime minus the listed rows.
	txByPower [][]PowerAirtime

	// Dynamics state, nil until EnableDynamics. dynDecode/dynSense shadow
	// the CSR arrays with per-node rows that churn and mobility update
	// incrementally in O(degree); present[i] is false while node i has left
	// the network; fadeUntil[i] marks a scheduled deep fade at node i; ge is
	// the optional Gilbert–Elliott burst-error process. All of it is opt-in:
	// with no dynamics configured the hot paths take the exact static
	// branches and consume the exact same random draws as before.
	dynDecode [][]frame.NodeID
	dynSense  [][]frame.NodeID
	present   []bool
	fadeUntil []sim.Time
	ge        *geProcess
	// moveBufA/moveBufB are scratch candidate buffers for MoveNode and
	// SetPresent, retained across calls.
	moveBufA, moveBufB []frame.NodeID

	// txPool recycles transmission structs; endTXFn is the long-lived
	// callback StartTX schedules through Kernel.AtCall so ending a
	// transmission needs no per-call closure. busyEndFn retires the busy
	// counters via AtCallEarly: it runs before every normal event sharing
	// the end timestamp, so a CCA at exactly t.end already sees the channel
	// clear — the same half-open [start, end) semantics the former scan over
	// the active set implemented with its strict `end > now` check.
	txPool    []*transmission
	endTXFn   func(any)
	busyEndFn func(any)

	// txObserver, when set, observes every transmission start (the sharded
	// runner's edge-transmission recorder); foreignPool and the foreign
	// start/end callbacks back ScheduleForeignBusy, the cross-shard
	// busy-mirroring primitive. See foreign.go.
	txObserver     TxObserver
	foreignPool    []*foreignTX
	foreignStartFn func(any)
	foreignEndFn   func(any)

	// invariantChecks enables the opt-in runtime self-checks (busy counters
	// must never go negative). Tests and fuzz harnesses enable them.
	invariantChecks bool

	// airTxCount/airBusyTime accumulate the medium-wide congestion picture:
	// every started transmission and its airtime, regardless of outcome.
	// Overlapping transmissions count separately, so a load estimator diffing
	// airBusyTime against wall time reads values above 1 exactly when the
	// channel is contested — the signal the access-barring controller
	// (internal/barring) feeds on.
	airTxCount  uint64
	airBusyTime sim.Time
}

// NewMedium builds a medium over the given topology. rng drives
// probabilistic link loss and must be private to this medium.
//
// When topo implements LinkEnumerator (both built-in topologies do),
// construction enumerates each node's candidate links directly and runs in
// O(N + E); otherwise it falls back to probing all N² ordered pairs.
func NewMedium(k *sim.Kernel, topo Topology, rng *sim.Rand) *Medium {
	n := topo.NumNodes()
	m := &Medium{
		k:         k,
		topo:      topo,
		rng:       rng,
		handlers:  make([]Handler, n),
		stats:     make([]NodeStats, n),
		tuned:     make([]uint8, n),
		txUntil:   make([]sim.Time, n),
		rxCount:   make([]int, n),
		inflight:  make([][]*transmission, n),
		decodeOff: make([]int32, n+1),
		senseOff:  make([]int32, n+1),
		busy:      make([][]int32, n),
	}
	// classify answers both predicates; the LinkClassifier fast path pays a
	// single RSSI computation per candidate pair.
	m.classify = func(src, dst frame.NodeID) (bool, bool) {
		return topo.CanDecode(src, dst), topo.CanSense(src, dst)
	}
	if cl, ok := topo.(LinkClassifier); ok {
		m.classify = cl.ClassifyLink
	}
	if enum, ok := topo.(LinkEnumerator); ok {
		m.enum = enum
	}
	if pm, ok := topo.(PowerModel); ok {
		m.power = pm
	}
	appendLinks := func(src frame.NodeID, candidates []frame.NodeID) {
		for _, dst := range candidates {
			if dst == src {
				continue
			}
			decode, sense := m.classify(src, dst)
			if decode {
				m.decodeArr = append(m.decodeArr, dst)
			}
			if sense {
				m.senseArr = append(m.senseArr, dst)
			}
		}
		m.decodeOff[src+1] = int32(len(m.decodeArr))
		m.senseOff[src+1] = int32(len(m.senseArr))
	}
	if m.enum != nil {
		var buf []frame.NodeID
		for src := 0; src < n; src++ {
			buf = m.enum.AppendLinks(frame.NodeID(src), buf[:0])
			appendLinks(frame.NodeID(src), buf)
		}
	} else {
		all := make([]frame.NodeID, n)
		for i := range all {
			all[i] = frame.NodeID(i)
		}
		for src := 0; src < n; src++ {
			appendLinks(frame.NodeID(src), all)
		}
	}
	m.endTXFn = func(a any) { m.endTX(a.(*transmission)) }
	m.busyEndFn = func(a any) { m.busyEnd(a.(*transmission)) }
	return m
}

// Attach registers the handler for node id. It must be called once per node
// before any transmission.
func (m *Medium) Attach(id frame.NodeID, h Handler) {
	if m.handlers[id] != nil {
		panic(fmt.Sprintf("radio: node %d attached twice", id))
	}
	m.handlers[id] = h
}

// Stats returns a copy of the counters for node id.
func (m *Medium) Stats(id frame.NodeID) NodeStats { return m.stats[id] }

// ChannelLoad reports the medium-wide congestion counters: the number of
// transmissions ever started and their cumulative airtime (overlaps counted
// separately). Congestion estimators diff successive readings; dividing the
// airtime delta by the observation interval yields the channel-occupancy
// fraction barring.Observation.BusyFraction carries.
func (m *Medium) ChannelLoad() (txCount uint64, busyAirtime sim.Time) {
	return m.airTxCount, m.airBusyTime
}

// SetTuned switches node id's receiver to the given channel. Receptions in
// flight on the previous channel are lost (their delivery check happens at
// transmission end against the then-current tuning).
func (m *Medium) SetTuned(id frame.NodeID, channel uint8) { m.tuned[id] = channel }

// Tuned reports the channel node id's receiver listens on.
func (m *Medium) Tuned(id frame.NodeID) uint8 { return m.tuned[id] }

// Transmitting reports whether node id is currently transmitting.
func (m *Medium) Transmitting(id frame.NodeID) bool {
	return m.txUntil[id] > m.k.Now()
}

// Receiving reports whether at least one decodable transmission currently
// overlaps node id.
func (m *Medium) Receiving(id frame.NodeID) bool { return m.rxCount[id] > 0 }

// CCA performs a clear channel assessment at node id and reports true when
// the channel the node is tuned to is clear. Busy means some ongoing
// same-channel transmission is above the node's energy-detection threshold.
// The check is O(1): it reads the per-node busy counter maintained by
// StartTX/busyEnd. A node must not CCA while transmitting.
func (m *Medium) CCA(id frame.NodeID) bool {
	m.stats[id].CCACount++
	if ch := int(m.tuned[id]); ch < len(m.busy[id]) && m.busy[id][ch] > 0 {
		m.stats[id].CCABusy++
		return false
	}
	return true
}

// StartTX puts f on the air from src at the given power level and returns
// the transmission end time. reduceDB is the transmit power reduction below
// the topology's reference (maximum) power in dB: 0 transmits at reference
// power and reproduces the pre-power medium exactly; a positive reduction
// shrinks the receiver and sensed sets to the links whose PowerModel margins
// tolerate the delta. The caller (MAC) is responsible for scheduling its own
// post-TX logic (ACK waits etc). Panics if src is already transmitting — MAC
// engines must serialize their own transmissions — or on a reduced power
// over a topology without a PowerModel. Cost is O(degree of src).
func (m *Medium) StartTX(src frame.NodeID, f *frame.Frame, reduceDB float64) sim.Time {
	now := m.k.Now()
	if m.txUntil[src] > now {
		panic(fmt.Sprintf("radio: node %d starts TX while transmitting (until %v, now %v)", src, m.txUntil[src], now))
	}
	if reduceDB < 0 {
		panic(fmt.Sprintf("radio: node %d transmits above the reference power (reduceDB=%v)", src, reduceDB))
	}
	if reduceDB > 0 && m.power == nil {
		panic(fmt.Sprintf("radio: topology %T has no PowerModel; reduced-power TX is unsupported", m.topo))
	}
	dur := f.Duration()
	end := now + dur
	m.txUntil[src] = end
	m.stats[src].TxCount++
	m.stats[src].TxAirtime += dur
	m.airTxCount++
	m.airBusyTime += dur
	if reduceDB > 0 {
		m.noteTxPower(src, reduceDB, dur)
	}

	t := m.getTransmission()
	t.src = src
	t.f = f
	t.channel = f.Channel
	t.start = now
	t.end = end
	t.powerDB = reduceDB
	// Only neighbours tuned to the frame's channel at transmission start can
	// synchronize on it (eligibility is captured at the start; a receiver
	// retuning mid-flight loses the frame through the end-of-transmission
	// tuning check instead). A reduced-power frame additionally reaches only
	// the decode links whose margin covers the reduction.
	capture := m.captureDB > 0
	for _, r := range m.decodeRow(src) {
		if reduceDB > 0 {
			if _, decodeMargin, _ := m.power.LinkSignal(src, r); decodeMargin < reduceDB {
				continue
			}
		}
		if m.tuned[r] == f.Channel {
			t.receivers = append(t.receivers, r)
			t.corrupt = append(t.corrupt, false)
			if capture {
				t.contested = append(t.contested, false)
			}
		}
	}

	// Raise the busy counters at every node that senses src, on the frame's
	// channel; busyEnd lowers them again just before the end timestamp's
	// normal events run. The set is snapshotted on the transmission so the
	// counters balance even if dynamics rewrite the sense links mid-flight.
	// A reduced-power frame stays below the energy-detection threshold of
	// the sense links whose margin is smaller than the reduction.
	for _, r := range m.senseRow(src) {
		if reduceDB > 0 {
			if _, _, senseMargin := m.power.LinkSignal(src, r); senseMargin < reduceDB {
				continue
			}
		}
		t.sensed = append(t.sensed, r)
		m.busyAdd(r, f.Channel, 1)
	}

	// A transmitter cannot receive: corrupt everything in flight at src.
	m.corruptAllAt(src)

	for i, r := range t.receivers {
		// Half-duplex receiver or an already-busy channel at r corrupts this
		// reception; a new arrival also corrupts whatever r was receiving —
		// unless capture resolution lets the strongest overlapping frame
		// survive.
		if m.txUntil[r] > now {
			t.corrupt[i] = true
		}
		if m.rxCount[r] > 0 {
			if capture {
				m.resolveCapture(r, t, i)
			} else {
				t.corrupt[i] = true
				m.corruptAllAt(r)
			}
		}
		m.rxCount[r]++
		m.inflight[r] = append(m.inflight[r], t)
	}

	m.k.AtCallEarly(end, m.busyEndFn, t)
	m.k.AtCall(end, m.endTXFn, t)
	if m.txObserver != nil {
		m.txObserver(src, f.Channel, now, end)
	}
	return end
}

// SetCaptureThreshold enables receiver-side SINR capture: when transmissions
// overlap at a receiver, the strongest frame still decodes iff its power
// exceeds the sum of all overlapping interferers by at least thresholdDB;
// ties and below-threshold overlaps corrupt every involved reception exactly
// as without capture. thresholdDB <= 0 disables capture (the default). The
// topology must implement PowerModel.
func (m *Medium) SetCaptureThreshold(thresholdDB float64) {
	if thresholdDB > 0 && m.power == nil {
		panic(fmt.Sprintf("radio: topology %T has no PowerModel; capture is unsupported", m.topo))
	}
	m.captureDB = thresholdDB
}

// CaptureThreshold reports the configured SINR capture threshold in dB
// (<= 0: capture disabled).
func (m *Medium) CaptureThreshold() float64 { return m.captureDB }

// captureEpsilonDB absorbs the float rounding of the dB→linear→dB round
// trip, so a power gap exactly equal to the threshold captures reliably
// (the documented ">= threshold" boundary).
const captureEpsilonDB = 1e-9

// rxPowerDBmAt reports the received power of t at r under the current
// topology state, combining the link's reference-power signal with the
// transmission's own power reduction.
func (m *Medium) rxPowerDBmAt(t *transmission, r frame.NodeID) float64 {
	rx, _, _ := m.power.LinkSignal(t.src, r)
	return rx - t.powerDB
}

// resolveCapture applies the SINR capture rule at receiver r when tNew
// (whose receiver index is iNew) arrives while other transmissions are in
// flight there: the strongest frame of the overlap set survives iff its
// power clears the linear sum of all the others by the capture threshold;
// every other frame — and the strongest too, below threshold — is marked
// corrupt. Corruption is one-way: a frame that already lost (half-duplex,
// an earlier overlap) is never rescued, it merely keeps contributing
// interference. Later arrivals re-run the resolution, so a capture winner
// can still be beaten by a stronger frame starting during its tail.
func (m *Medium) resolveCapture(r frame.NodeID, tNew *transmission, iNew int) {
	strongest := tNew
	strongestDBm := m.rxPowerDBmAt(tNew, r)
	var sumMilliwatt float64 // linear power of every non-strongest frame
	for _, t := range m.inflight[r] {
		p := m.rxPowerDBmAt(t, r)
		if p > strongestDBm {
			sumMilliwatt += math.Pow(10, strongestDBm/10)
			strongest, strongestDBm = t, p
		} else {
			sumMilliwatt += math.Pow(10, p/10)
		}
	}
	captured := strongestDBm-10*math.Log10(sumMilliwatt) >= m.captureDB-captureEpsilonDB
	for _, t := range m.inflight[r] {
		m.markContested(t, r, t == strongest && captured)
	}
	tNew.contested[iNew] = true
	if tNew != strongest || !captured {
		tNew.corrupt[iNew] = true
	}
}

// markContested records that an overlap touched t's reception at r and,
// unless t survives this resolution, marks it corrupt. Transmissions
// started before capture was enabled carry no contested slots; they still
// corrupt normally but can never be counted as captured.
func (m *Medium) markContested(t *transmission, r frame.NodeID, survives bool) {
	for i, rr := range t.receivers {
		if rr != r {
			continue
		}
		if i < len(t.contested) {
			t.contested[i] = true
		}
		if !survives {
			t.corrupt[i] = true
		}
	}
}

// PowerAirtime is cumulative transmit airtime at one power level, expressed
// as the reduction below the topology's reference power.
type PowerAirtime struct {
	// ReduceDB is the power reduction below the reference power, in dB.
	ReduceDB float64
	// Airtime is the cumulative on-air time at this power.
	Airtime sim.Time
}

// noteTxPower folds a reduced-power transmission into the per-node airtime
// breakdown (reduced levels only; reference-power airtime is derived as the
// remainder of NodeStats.TxAirtime).
func (m *Medium) noteTxPower(src frame.NodeID, reduceDB float64, dur sim.Time) {
	if m.txByPower == nil {
		m.txByPower = make([][]PowerAirtime, len(m.handlers))
	}
	row := m.txByPower[src]
	for i := range row {
		if row[i].ReduceDB == reduceDB {
			row[i].Airtime += dur
			return
		}
	}
	m.txByPower[src] = append(row, PowerAirtime{ReduceDB: reduceDB, Airtime: dur})
}

// TxAirtimeByPower reports node id's transmit airtime broken down by power
// level: the reference-power remainder first (ReduceDB 0), then every
// reduced level in first-use order. It returns nil when no reduced-power
// transmission ever happened on this medium, so single-power runs pay no
// per-node allocation.
func (m *Medium) TxAirtimeByPower(id frame.NodeID) []PowerAirtime {
	if m.txByPower == nil {
		return nil
	}
	var reduced sim.Time
	for _, pa := range m.txByPower[id] {
		reduced += pa.Airtime
	}
	out := make([]PowerAirtime, 0, len(m.txByPower[id])+1)
	out = append(out, PowerAirtime{ReduceDB: 0, Airtime: m.stats[id].TxAirtime - reduced})
	return append(out, m.txByPower[id]...)
}

// busyAdd adjusts node id's busy counter for ch, growing the per-node
// channel slice on first use of a high channel.
func (m *Medium) busyAdd(id frame.NodeID, ch uint8, delta int32) {
	b := m.busy[id]
	for int(ch) >= len(b) {
		b = append(b, 0)
	}
	b[ch] += delta
	m.busy[id] = b
}

// busyEnd lowers the busy counters a transmission raised. It runs as an
// early event at t.end, before endTX and before any same-timestamp CCA. It
// walks the sensed set captured at transmission start, not the current sense
// links, so churn and mobility cannot unbalance the counters.
func (m *Medium) busyEnd(t *transmission) {
	for _, r := range t.sensed {
		m.busy[r][t.channel]--
		if m.invariantChecks && m.busy[r][t.channel] < 0 {
			panic(fmt.Sprintf("radio: busy counter of node %d channel %d went negative at %v",
				r, t.channel, m.k.Now()))
		}
	}
}

// SetInvariantChecks toggles the medium's opt-in runtime self-checks
// (currently: a channel-busy counter dropping below zero, which would mean
// a transmission was retired twice or never registered). Off by default.
func (m *Medium) SetInvariantChecks(on bool) { m.invariantChecks = on }

// getTransmission takes a transmission from the pool, retaining its slices'
// capacity, or allocates a fresh one.
func (m *Medium) getTransmission() *transmission {
	if n := len(m.txPool); n > 0 {
		t := m.txPool[n-1]
		m.txPool = m.txPool[:n-1]
		return t
	}
	return &transmission{}
}

// putTransmission resets t and returns it to the pool.
func (m *Medium) putTransmission(t *transmission) {
	t.f = nil
	t.powerDB = 0
	t.receivers = t.receivers[:0]
	t.corrupt = t.corrupt[:0]
	t.contested = t.contested[:0]
	t.sensed = t.sensed[:0]
	m.txPool = append(m.txPool, t)
}

// corruptAllAt marks every in-flight reception at node id as collided.
func (m *Medium) corruptAllAt(id frame.NodeID) {
	for _, t := range m.inflight[id] {
		for i, r := range t.receivers {
			if r == id {
				t.corrupt[i] = true
			}
		}
	}
}

// endTX finalizes a transmission: removes it from the air and delivers it to
// every receiver whose copy survived.
func (m *Medium) endTX(t *transmission) {
	now := m.k.Now()
	for i, r := range t.receivers {
		m.rxCount[r]--
		m.removeInflight(r, t)
		if t.corrupt[i] {
			m.stats[r].RxCollided++
			continue
		}
		if m.tuned[r] != t.channel {
			// The receiver retuned away mid-flight (e.g. its GTS ended).
			m.stats[r].RxCollided++
			continue
		}
		// A scheduled deep fade at either endpoint swallows the frame. The
		// check is deterministic (no rng draw), so enabling a fade leaves
		// every other link's loss sequence untouched.
		if m.fadeUntil != nil && (now < m.fadeUntil[r] || now < m.fadeUntil[t.src]) {
			m.stats[r].RxFaded++
			continue
		}
		// A receiver that is transmitting exactly as the frame ends cannot
		// have synchronized on it (covered by corrupt flag), but a receiver
		// may still lose the frame to fading.
		if p := m.topo.DeliveryProb(t.src, r); p < 1 && !m.rng.Bool(p) {
			m.stats[r].RxFaded++
			continue
		}
		// The Gilbert–Elliott burst-error process draws from per-link
		// streams, never from m.rng.
		if m.ge != nil && !m.ge.deliver(t.src, r, now) {
			m.stats[r].RxFaded++
			continue
		}
		m.stats[r].RxDelivered++
		if i < len(t.contested) && t.contested[i] {
			m.stats[r].RxCaptured++
		}
		if h := m.handlers[r]; h != nil {
			h.Deliver(t.f)
		}
	}
	m.putTransmission(t)
}

func (m *Medium) removeInflight(id frame.NodeID, t *transmission) {
	fl := m.inflight[id]
	for i, x := range fl {
		if x == t {
			fl[i] = fl[len(fl)-1]
			fl[len(fl)-1] = nil
			m.inflight[id] = fl[:len(fl)-1]
			return
		}
	}
}

// decodeRow returns the current decode links of src: the dynamic overlay
// row once dynamics are enabled, the CSR view otherwise.
func (m *Medium) decodeRow(src frame.NodeID) []frame.NodeID {
	if m.dynDecode != nil {
		return m.dynDecode[src]
	}
	return m.decodeArr[m.decodeOff[src]:m.decodeOff[src+1]]
}

// senseRow is decodeRow for the sense links.
func (m *Medium) senseRow(src frame.NodeID) []frame.NodeID {
	if m.dynSense != nil {
		return m.dynSense[src]
	}
	return m.senseArr[m.senseOff[src]:m.senseOff[src+1]]
}

// DecodeNeighbors returns the ids that can decode transmissions from src in
// ascending order (a view into the medium's link storage; callers must not
// mutate it, and under dynamics it is only valid until the next churn or
// mobility event).
func (m *Medium) DecodeNeighbors(src frame.NodeID) []frame.NodeID {
	return m.decodeRow(src)
}

// SenseNeighbors returns the ids whose CCA detects transmissions from src,
// ascending (same ownership rules as DecodeNeighbors).
func (m *Medium) SenseNeighbors(src frame.NodeID) []frame.NodeID {
	return m.senseRow(src)
}

// EnableDynamics arms the medium for churn, mobility and fade scheduling by
// materializing the CSR link arrays into per-node rows that can be updated
// incrementally. It is idempotent, costs O(N + E) once, and changes no
// behaviour by itself: the copied rows are identical to the CSR views.
func (m *Medium) EnableDynamics() {
	if m.dynDecode != nil {
		return
	}
	n := len(m.handlers)
	m.dynDecode = make([][]frame.NodeID, n)
	m.dynSense = make([][]frame.NodeID, n)
	m.present = make([]bool, n)
	m.fadeUntil = make([]sim.Time, n)
	for i := 0; i < n; i++ {
		m.dynDecode[i] = append([]frame.NodeID(nil), m.decodeArr[m.decodeOff[i]:m.decodeOff[i+1]]...)
		m.dynSense[i] = append([]frame.NodeID(nil), m.senseArr[m.senseOff[i]:m.senseOff[i+1]]...)
		m.present[i] = true
	}
}

// SetGilbertElliott installs the burst-error process over every link. All of
// its randomness derives from seed and the link key, so it perturbs no other
// stream. A zero-valued (disabled) config removes the process.
func (m *Medium) SetGilbertElliott(cfg GilbertElliott, seed uint64) {
	if !cfg.Enabled() {
		m.ge = nil
		return
	}
	m.ge = newGEProcess(cfg, seed)
}

// SetFadeUntil opens (or extends) a deep-fade window at node id: until the
// given instant every frame to or from the node is lost at delivery time
// (transmissions still occupy the air and collide as usual, which is what
// makes a fade a learnable disturbance rather than a silent pause).
func (m *Medium) SetFadeUntil(id frame.NodeID, until sim.Time) {
	m.EnableDynamics()
	if until > m.fadeUntil[id] {
		m.fadeUntil[id] = until
	}
}

// Present reports whether node id is currently part of the network (true
// until a SetPresent(id, false)).
func (m *Medium) Present(id frame.NodeID) bool {
	return m.present == nil || m.present[id]
}

// appendCandidates returns the ids that may share a link with id under the
// current topology state (a superset; ascending, id excluded).
func (m *Medium) appendCandidates(id frame.NodeID, buf []frame.NodeID) []frame.NodeID {
	if m.enum != nil {
		return m.enum.AppendLinks(id, buf)
	}
	for i := 0; i < len(m.handlers); i++ {
		if frame.NodeID(i) != id {
			buf = append(buf, frame.NodeID(i))
		}
	}
	return buf
}

// SetPresent removes node id from the network (present == false) or rejoins
// it. Departure clears the node's link rows and removes it from every
// neighbour's rows; rejoining re-classifies the node's links against the
// current topology. Both directions cost O(degree · log degree). Ongoing
// transmissions are unaffected: their receiver and sensed sets were captured
// at transmission start, so a node that leaves mid-frame still completes
// those receptions and its raised busy counters still retire cleanly.
func (m *Medium) SetPresent(id frame.NodeID, present bool) {
	m.EnableDynamics()
	if m.present[id] == present {
		return
	}
	m.present[id] = present
	m.moveBufA = m.appendCandidates(id, m.moveBufA[:0])
	if !present {
		for _, y := range m.moveBufA {
			m.dynDecode[y] = sortedRemove(m.dynDecode[y], id)
			m.dynSense[y] = sortedRemove(m.dynSense[y], id)
		}
		m.dynDecode[id] = m.dynDecode[id][:0]
		m.dynSense[id] = m.dynSense[id][:0]
		return
	}
	for _, y := range m.moveBufA {
		if y == id || !m.present[y] {
			continue
		}
		m.reclassifyPair(id, y)
	}
}

// MoveNode updates node id's position (the topology must implement
// MobileTopology) and incrementally re-classifies the affected links: the
// union of the node's link candidates before and after the move, O(degree)
// pairs, each updated in both directions — no full medium rebuild.
func (m *Medium) MoveNode(id frame.NodeID, p Position) {
	mob, ok := m.topo.(MobileTopology)
	if !ok {
		panic(fmt.Sprintf("radio: topology %T does not support MoveNode", m.topo))
	}
	m.EnableDynamics()
	m.moveBufA = m.appendCandidates(id, m.moveBufA[:0])
	mob.MoveNode(id, p)
	m.moveBufB = m.appendCandidates(id, m.moveBufB[:0])
	if !m.present[id] {
		return // rows rebuilt against the new position on rejoin
	}
	// Walk the merged (ascending) candidate sets, touching each pair once.
	a, b := m.moveBufA, m.moveBufB
	for len(a) > 0 || len(b) > 0 {
		var y frame.NodeID
		switch {
		case len(b) == 0 || (len(a) > 0 && a[0] < b[0]):
			y, a = a[0], a[1:]
		case len(a) == 0 || b[0] < a[0]:
			y, b = b[0], b[1:]
		default:
			y, a, b = a[0], a[1:], b[1:]
		}
		if y == id || !m.present[y] {
			continue
		}
		m.reclassifyPair(id, y)
	}
}

// reclassifyPair re-evaluates both directed links between x and y against
// the current topology and updates the overlay rows to match. Both nodes
// must be present.
func (m *Medium) reclassifyPair(x, y frame.NodeID) {
	decode, sense := m.classify(x, y)
	m.dynDecode[x] = sortedSet(m.dynDecode[x], y, decode)
	m.dynSense[x] = sortedSet(m.dynSense[x], y, sense)
	decode, sense = m.classify(y, x)
	m.dynDecode[y] = sortedSet(m.dynDecode[y], x, decode)
	m.dynSense[y] = sortedSet(m.dynSense[y], x, sense)
}

// sortedSet inserts or removes id so that row contains id iff member,
// keeping the row sorted.
func sortedSet(row []frame.NodeID, id frame.NodeID, member bool) []frame.NodeID {
	if member {
		return sortedInsert(row, id)
	}
	return sortedRemove(row, id)
}

func sortedInsert(row []frame.NodeID, id frame.NodeID) []frame.NodeID {
	i, found := slices.BinarySearch(row, id)
	if found {
		return row
	}
	return slices.Insert(row, i, id)
}

func sortedRemove(row []frame.NodeID, id frame.NodeID) []frame.NodeID {
	i, found := slices.BinarySearch(row, id)
	if !found {
		return row
	}
	return slices.Delete(row, i, i+1)
}
