package radio

import (
	"fmt"

	"qma/internal/frame"
	"qma/internal/sim"
)

// Handler receives every frame a node successfully decodes, whether or not
// the frame is addressed to it (overheard frames drive QMA's QBackoff
// reward). MAC engines implement Handler.
type Handler interface {
	Deliver(f *frame.Frame)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(f *frame.Frame)

// Deliver implements Handler.
func (h HandlerFunc) Deliver(f *frame.Frame) { h(f) }

// transmission tracks one frame on the air. Transmissions are pooled by
// their medium: endTX returns them (with their slices' capacity) to the
// freelist, so a steady-state simulation stops allocating per transmission.
type transmission struct {
	src     frame.NodeID
	f       *frame.Frame
	channel uint8
	start   sim.Time
	end     sim.Time
	// corrupt[i] is true when the reception at decode-neighbour i collided
	// or the receiver was transmitting; indexed parallel to receivers.
	corrupt []bool
	// receivers are the decode-neighbours of src tuned to the frame's
	// channel at transmission start.
	receivers []frame.NodeID
}

// NodeStats aggregates per-node medium-level counters.
type NodeStats struct {
	// TxCount is the number of started transmissions.
	TxCount uint64
	// TxAirtime is the cumulative on-air time.
	TxAirtime sim.Time
	// RxDelivered counts successfully decoded frames (any destination).
	RxDelivered uint64
	// RxCollided counts receptions lost to collisions or half-duplex.
	RxCollided uint64
	// RxFaded counts receptions lost to random link loss.
	RxFaded uint64
	// CCACount counts clear channel assessments performed.
	CCACount uint64
	// CCABusy counts CCAs that reported a busy channel.
	CCABusy uint64
}

// Medium is the shared wireless channel. It is bound to one simulation
// kernel and is not safe for concurrent use.
type Medium struct {
	k    *sim.Kernel
	topo Topology
	rng  *sim.Rand

	handlers []Handler
	stats    []NodeStats
	// tuned[i] is the channel node i's receiver is currently tuned to
	// (0, the common CAP channel, by default).
	tuned []uint8
	// txUntil[i] is the end of node i's current transmission (0 if idle).
	txUntil []sim.Time
	// rxCount[i] is the number of decodable transmissions currently
	// overlapping at node i.
	rxCount []int
	// inflight[i] are the transmissions currently decodable at node i.
	inflight [][]*transmission
	// active is the set of all ongoing transmissions (for CCA).
	active []*transmission

	// decodeNbrs[i] / senseNbrs[i] are precomputed neighbour lists.
	decodeNbrs [][]frame.NodeID
	senseNbrs  [][]bool // senseNbrs[src][dst]

	// txPool recycles transmission structs; endTXFn is the long-lived
	// callback StartTX schedules through Kernel.AtCall so ending a
	// transmission needs no per-call closure.
	txPool  []*transmission
	endTXFn func(any)
}

// NewMedium builds a medium over the given topology. rng drives
// probabilistic link loss and must be private to this medium.
func NewMedium(k *sim.Kernel, topo Topology, rng *sim.Rand) *Medium {
	n := topo.NumNodes()
	m := &Medium{
		k:          k,
		topo:       topo,
		rng:        rng,
		handlers:   make([]Handler, n),
		stats:      make([]NodeStats, n),
		tuned:      make([]uint8, n),
		txUntil:    make([]sim.Time, n),
		rxCount:    make([]int, n),
		inflight:   make([][]*transmission, n),
		decodeNbrs: make([][]frame.NodeID, n),
		senseNbrs:  make([][]bool, n),
	}
	for src := 0; src < n; src++ {
		m.senseNbrs[src] = make([]bool, n)
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			s, d := frame.NodeID(src), frame.NodeID(dst)
			if topo.CanDecode(s, d) {
				m.decodeNbrs[src] = append(m.decodeNbrs[src], d)
			}
			m.senseNbrs[src][dst] = topo.CanSense(s, d)
		}
	}
	m.endTXFn = func(a any) { m.endTX(a.(*transmission)) }
	return m
}

// Attach registers the handler for node id. It must be called once per node
// before any transmission.
func (m *Medium) Attach(id frame.NodeID, h Handler) {
	if m.handlers[id] != nil {
		panic(fmt.Sprintf("radio: node %d attached twice", id))
	}
	m.handlers[id] = h
}

// Stats returns a copy of the counters for node id.
func (m *Medium) Stats(id frame.NodeID) NodeStats { return m.stats[id] }

// SetTuned switches node id's receiver to the given channel. Receptions in
// flight on the previous channel are lost (their delivery check happens at
// transmission end against the then-current tuning).
func (m *Medium) SetTuned(id frame.NodeID, channel uint8) { m.tuned[id] = channel }

// Tuned reports the channel node id's receiver listens on.
func (m *Medium) Tuned(id frame.NodeID) uint8 { return m.tuned[id] }

// Transmitting reports whether node id is currently transmitting.
func (m *Medium) Transmitting(id frame.NodeID) bool {
	return m.txUntil[id] > m.k.Now()
}

// Receiving reports whether at least one decodable transmission currently
// overlaps node id.
func (m *Medium) Receiving(id frame.NodeID) bool { return m.rxCount[id] > 0 }

// CCA performs a clear channel assessment at node id and reports true when
// the channel the node is tuned to is clear. Busy means some ongoing
// same-channel transmission is above the node's energy-detection threshold.
// A node must not CCA while transmitting.
func (m *Medium) CCA(id frame.NodeID) bool {
	m.stats[id].CCACount++
	for _, t := range m.active {
		if t.end > m.k.Now() && t.channel == m.tuned[id] && m.senseNbrs[t.src][id] {
			m.stats[id].CCABusy++
			return false
		}
	}
	return true
}

// StartTX puts f on the air from src and returns the transmission end time.
// The caller (MAC) is responsible for scheduling its own post-TX logic (ACK
// waits etc). Panics if src is already transmitting — MAC engines must
// serialize their own transmissions.
func (m *Medium) StartTX(src frame.NodeID, f *frame.Frame) sim.Time {
	now := m.k.Now()
	if m.txUntil[src] > now {
		panic(fmt.Sprintf("radio: node %d starts TX while transmitting (until %v, now %v)", src, m.txUntil[src], now))
	}
	dur := f.Duration()
	end := now + dur
	m.txUntil[src] = end
	m.stats[src].TxCount++
	m.stats[src].TxAirtime += dur

	t := m.getTransmission()
	t.src = src
	t.f = f
	t.channel = f.Channel
	t.start = now
	t.end = end
	// Only neighbours tuned to the frame's channel at transmission start can
	// synchronize on it (eligibility is captured at the start; a receiver
	// retuning mid-flight loses the frame through the end-of-transmission
	// tuning check instead).
	for _, r := range m.decodeNbrs[src] {
		if m.tuned[r] == f.Channel {
			t.receivers = append(t.receivers, r)
			t.corrupt = append(t.corrupt, false)
		}
	}
	m.active = append(m.active, t)

	// A transmitter cannot receive: corrupt everything in flight at src.
	m.corruptAllAt(src)

	for i, r := range t.receivers {
		// Half-duplex receiver or an already-busy channel at r corrupts this
		// reception; a new arrival also corrupts whatever r was receiving.
		if m.txUntil[r] > now {
			t.corrupt[i] = true
		}
		if m.rxCount[r] > 0 {
			t.corrupt[i] = true
			m.corruptAllAt(r)
		}
		m.rxCount[r]++
		m.inflight[r] = append(m.inflight[r], t)
	}

	m.k.AtCall(end, m.endTXFn, t)
	return end
}

// getTransmission takes a transmission from the pool, retaining its slices'
// capacity, or allocates a fresh one.
func (m *Medium) getTransmission() *transmission {
	if n := len(m.txPool); n > 0 {
		t := m.txPool[n-1]
		m.txPool = m.txPool[:n-1]
		return t
	}
	return &transmission{}
}

// putTransmission resets t and returns it to the pool.
func (m *Medium) putTransmission(t *transmission) {
	t.f = nil
	t.receivers = t.receivers[:0]
	t.corrupt = t.corrupt[:0]
	m.txPool = append(m.txPool, t)
}

// corruptAllAt marks every in-flight reception at node id as collided.
func (m *Medium) corruptAllAt(id frame.NodeID) {
	for _, t := range m.inflight[id] {
		for i, r := range t.receivers {
			if r == id {
				t.corrupt[i] = true
			}
		}
	}
}

// endTX finalizes a transmission: removes it from the air and delivers it to
// every receiver whose copy survived.
func (m *Medium) endTX(t *transmission) {
	// Remove from active set.
	for i, a := range m.active {
		if a == t {
			m.active[i] = m.active[len(m.active)-1]
			m.active[len(m.active)-1] = nil
			m.active = m.active[:len(m.active)-1]
			break
		}
	}
	for i, r := range t.receivers {
		m.rxCount[r]--
		m.removeInflight(r, t)
		if t.corrupt[i] {
			m.stats[r].RxCollided++
			continue
		}
		if m.tuned[r] != t.channel {
			// The receiver retuned away mid-flight (e.g. its GTS ended).
			m.stats[r].RxCollided++
			continue
		}
		// A receiver that is transmitting exactly as the frame ends cannot
		// have synchronized on it (covered by corrupt flag), but a receiver
		// may still lose the frame to fading.
		if p := m.topo.DeliveryProb(t.src, r); p < 1 && !m.rng.Bool(p) {
			m.stats[r].RxFaded++
			continue
		}
		m.stats[r].RxDelivered++
		if h := m.handlers[r]; h != nil {
			h.Deliver(t.f)
		}
	}
	m.putTransmission(t)
}

func (m *Medium) removeInflight(id frame.NodeID, t *transmission) {
	fl := m.inflight[id]
	for i, x := range fl {
		if x == t {
			fl[i] = fl[len(fl)-1]
			fl[len(fl)-1] = nil
			m.inflight[id] = fl[:len(fl)-1]
			return
		}
	}
}

// DecodeNeighbors returns the ids that can decode transmissions from src
// (shared slice; callers must not mutate).
func (m *Medium) DecodeNeighbors(src frame.NodeID) []frame.NodeID {
	return m.decodeNbrs[src]
}
