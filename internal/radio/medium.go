package radio

import (
	"fmt"

	"qma/internal/frame"
	"qma/internal/sim"
)

// Handler receives every frame a node successfully decodes, whether or not
// the frame is addressed to it (overheard frames drive QMA's QBackoff
// reward). MAC engines implement Handler.
type Handler interface {
	Deliver(f *frame.Frame)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(f *frame.Frame)

// Deliver implements Handler.
func (h HandlerFunc) Deliver(f *frame.Frame) { h(f) }

// transmission tracks one frame on the air. Transmissions are pooled by
// their medium: endTX returns them (with their slices' capacity) to the
// freelist, so a steady-state simulation stops allocating per transmission.
type transmission struct {
	src     frame.NodeID
	f       *frame.Frame
	channel uint8
	start   sim.Time
	end     sim.Time
	// corrupt[i] is true when the reception at decode-neighbour i collided
	// or the receiver was transmitting; indexed parallel to receivers.
	corrupt []bool
	// receivers are the decode-neighbours of src tuned to the frame's
	// channel at transmission start.
	receivers []frame.NodeID
}

// NodeStats aggregates per-node medium-level counters.
type NodeStats struct {
	// TxCount is the number of started transmissions.
	TxCount uint64
	// TxAirtime is the cumulative on-air time.
	TxAirtime sim.Time
	// RxDelivered counts successfully decoded frames (any destination).
	RxDelivered uint64
	// RxCollided counts receptions lost to collisions or half-duplex.
	RxCollided uint64
	// RxFaded counts receptions lost to random link loss.
	RxFaded uint64
	// CCACount counts clear channel assessments performed.
	CCACount uint64
	// CCABusy counts CCAs that reported a busy channel.
	CCABusy uint64
}

// Medium is the shared wireless channel. It is bound to one simulation
// kernel and is not safe for concurrent use.
//
// Memory is O(N + E): the decode and sense link sets are materialized once
// at construction as CSR-style flattened arrays (one shared backing slice
// plus per-node offsets), and clear channel assessment reads a per-node,
// per-channel busy counter maintained incrementally at transmission
// start/end instead of scanning the set of ongoing transmissions.
type Medium struct {
	k    *sim.Kernel
	topo Topology
	rng  *sim.Rand

	handlers []Handler
	stats    []NodeStats
	// tuned[i] is the channel node i's receiver is currently tuned to
	// (0, the common CAP channel, by default).
	tuned []uint8
	// txUntil[i] is the end of node i's current transmission (0 if idle).
	txUntil []sim.Time
	// rxCount[i] is the number of decodable transmissions currently
	// overlapping at node i.
	rxCount []int
	// inflight[i] are the transmissions currently decodable at node i.
	inflight [][]*transmission

	// decodeArr/decodeOff and senseArr/senseOff are the CSR link arrays:
	// node i's decode-neighbours are decodeArr[decodeOff[i]:decodeOff[i+1]]
	// (ascending), and analogously the nodes whose CCA senses i's
	// transmissions. Sense links follow the transmit direction: senseArr
	// under src lists the dst with topo.CanSense(src, dst).
	decodeArr []frame.NodeID
	decodeOff []int32
	senseArr  []frame.NodeID
	senseOff  []int32

	// busy[i][ch] counts ongoing transmissions a CCA at node i on channel ch
	// detects. Inner slices grow to the highest channel actually used at i.
	busy [][]int32

	// txPool recycles transmission structs; endTXFn is the long-lived
	// callback StartTX schedules through Kernel.AtCall so ending a
	// transmission needs no per-call closure. busyEndFn retires the busy
	// counters via AtCallEarly: it runs before every normal event sharing
	// the end timestamp, so a CCA at exactly t.end already sees the channel
	// clear — the same half-open [start, end) semantics the former scan over
	// the active set implemented with its strict `end > now` check.
	txPool    []*transmission
	endTXFn   func(any)
	busyEndFn func(any)
}

// NewMedium builds a medium over the given topology. rng drives
// probabilistic link loss and must be private to this medium.
//
// When topo implements LinkEnumerator (both built-in topologies do),
// construction enumerates each node's candidate links directly and runs in
// O(N + E); otherwise it falls back to probing all N² ordered pairs.
func NewMedium(k *sim.Kernel, topo Topology, rng *sim.Rand) *Medium {
	n := topo.NumNodes()
	m := &Medium{
		k:         k,
		topo:      topo,
		rng:       rng,
		handlers:  make([]Handler, n),
		stats:     make([]NodeStats, n),
		tuned:     make([]uint8, n),
		txUntil:   make([]sim.Time, n),
		rxCount:   make([]int, n),
		inflight:  make([][]*transmission, n),
		decodeOff: make([]int32, n+1),
		senseOff:  make([]int32, n+1),
		busy:      make([][]int32, n),
	}
	// classify answers both predicates; the LinkClassifier fast path pays a
	// single RSSI computation per candidate pair.
	classify := func(src, dst frame.NodeID) (bool, bool) {
		return topo.CanDecode(src, dst), topo.CanSense(src, dst)
	}
	if cl, ok := topo.(LinkClassifier); ok {
		classify = cl.ClassifyLink
	}
	appendLinks := func(src frame.NodeID, candidates []frame.NodeID) {
		for _, dst := range candidates {
			if dst == src {
				continue
			}
			decode, sense := classify(src, dst)
			if decode {
				m.decodeArr = append(m.decodeArr, dst)
			}
			if sense {
				m.senseArr = append(m.senseArr, dst)
			}
		}
		m.decodeOff[src+1] = int32(len(m.decodeArr))
		m.senseOff[src+1] = int32(len(m.senseArr))
	}
	if enum, ok := topo.(LinkEnumerator); ok {
		var buf []frame.NodeID
		for src := 0; src < n; src++ {
			buf = enum.AppendLinks(frame.NodeID(src), buf[:0])
			appendLinks(frame.NodeID(src), buf)
		}
	} else {
		all := make([]frame.NodeID, n)
		for i := range all {
			all[i] = frame.NodeID(i)
		}
		for src := 0; src < n; src++ {
			appendLinks(frame.NodeID(src), all)
		}
	}
	m.endTXFn = func(a any) { m.endTX(a.(*transmission)) }
	m.busyEndFn = func(a any) { m.busyEnd(a.(*transmission)) }
	return m
}

// Attach registers the handler for node id. It must be called once per node
// before any transmission.
func (m *Medium) Attach(id frame.NodeID, h Handler) {
	if m.handlers[id] != nil {
		panic(fmt.Sprintf("radio: node %d attached twice", id))
	}
	m.handlers[id] = h
}

// Stats returns a copy of the counters for node id.
func (m *Medium) Stats(id frame.NodeID) NodeStats { return m.stats[id] }

// SetTuned switches node id's receiver to the given channel. Receptions in
// flight on the previous channel are lost (their delivery check happens at
// transmission end against the then-current tuning).
func (m *Medium) SetTuned(id frame.NodeID, channel uint8) { m.tuned[id] = channel }

// Tuned reports the channel node id's receiver listens on.
func (m *Medium) Tuned(id frame.NodeID) uint8 { return m.tuned[id] }

// Transmitting reports whether node id is currently transmitting.
func (m *Medium) Transmitting(id frame.NodeID) bool {
	return m.txUntil[id] > m.k.Now()
}

// Receiving reports whether at least one decodable transmission currently
// overlaps node id.
func (m *Medium) Receiving(id frame.NodeID) bool { return m.rxCount[id] > 0 }

// CCA performs a clear channel assessment at node id and reports true when
// the channel the node is tuned to is clear. Busy means some ongoing
// same-channel transmission is above the node's energy-detection threshold.
// The check is O(1): it reads the per-node busy counter maintained by
// StartTX/busyEnd. A node must not CCA while transmitting.
func (m *Medium) CCA(id frame.NodeID) bool {
	m.stats[id].CCACount++
	if ch := int(m.tuned[id]); ch < len(m.busy[id]) && m.busy[id][ch] > 0 {
		m.stats[id].CCABusy++
		return false
	}
	return true
}

// StartTX puts f on the air from src and returns the transmission end time.
// The caller (MAC) is responsible for scheduling its own post-TX logic (ACK
// waits etc). Panics if src is already transmitting — MAC engines must
// serialize their own transmissions. Cost is O(degree of src).
func (m *Medium) StartTX(src frame.NodeID, f *frame.Frame) sim.Time {
	now := m.k.Now()
	if m.txUntil[src] > now {
		panic(fmt.Sprintf("radio: node %d starts TX while transmitting (until %v, now %v)", src, m.txUntil[src], now))
	}
	dur := f.Duration()
	end := now + dur
	m.txUntil[src] = end
	m.stats[src].TxCount++
	m.stats[src].TxAirtime += dur

	t := m.getTransmission()
	t.src = src
	t.f = f
	t.channel = f.Channel
	t.start = now
	t.end = end
	// Only neighbours tuned to the frame's channel at transmission start can
	// synchronize on it (eligibility is captured at the start; a receiver
	// retuning mid-flight loses the frame through the end-of-transmission
	// tuning check instead).
	for _, r := range m.decodeArr[m.decodeOff[src]:m.decodeOff[src+1]] {
		if m.tuned[r] == f.Channel {
			t.receivers = append(t.receivers, r)
			t.corrupt = append(t.corrupt, false)
		}
	}

	// Raise the busy counters at every node that senses src, on the frame's
	// channel; busyEnd lowers them again just before the end timestamp's
	// normal events run.
	for _, r := range m.senseArr[m.senseOff[src]:m.senseOff[src+1]] {
		m.busyAdd(r, f.Channel, 1)
	}

	// A transmitter cannot receive: corrupt everything in flight at src.
	m.corruptAllAt(src)

	for i, r := range t.receivers {
		// Half-duplex receiver or an already-busy channel at r corrupts this
		// reception; a new arrival also corrupts whatever r was receiving.
		if m.txUntil[r] > now {
			t.corrupt[i] = true
		}
		if m.rxCount[r] > 0 {
			t.corrupt[i] = true
			m.corruptAllAt(r)
		}
		m.rxCount[r]++
		m.inflight[r] = append(m.inflight[r], t)
	}

	m.k.AtCallEarly(end, m.busyEndFn, t)
	m.k.AtCall(end, m.endTXFn, t)
	return end
}

// busyAdd adjusts node id's busy counter for ch, growing the per-node
// channel slice on first use of a high channel.
func (m *Medium) busyAdd(id frame.NodeID, ch uint8, delta int32) {
	b := m.busy[id]
	for int(ch) >= len(b) {
		b = append(b, 0)
	}
	b[ch] += delta
	m.busy[id] = b
}

// busyEnd lowers the busy counters a transmission raised. It runs as an
// early event at t.end, before endTX and before any same-timestamp CCA.
func (m *Medium) busyEnd(t *transmission) {
	for _, r := range m.senseArr[m.senseOff[t.src]:m.senseOff[t.src+1]] {
		m.busy[r][t.channel]--
	}
}

// getTransmission takes a transmission from the pool, retaining its slices'
// capacity, or allocates a fresh one.
func (m *Medium) getTransmission() *transmission {
	if n := len(m.txPool); n > 0 {
		t := m.txPool[n-1]
		m.txPool = m.txPool[:n-1]
		return t
	}
	return &transmission{}
}

// putTransmission resets t and returns it to the pool.
func (m *Medium) putTransmission(t *transmission) {
	t.f = nil
	t.receivers = t.receivers[:0]
	t.corrupt = t.corrupt[:0]
	m.txPool = append(m.txPool, t)
}

// corruptAllAt marks every in-flight reception at node id as collided.
func (m *Medium) corruptAllAt(id frame.NodeID) {
	for _, t := range m.inflight[id] {
		for i, r := range t.receivers {
			if r == id {
				t.corrupt[i] = true
			}
		}
	}
}

// endTX finalizes a transmission: removes it from the air and delivers it to
// every receiver whose copy survived.
func (m *Medium) endTX(t *transmission) {
	for i, r := range t.receivers {
		m.rxCount[r]--
		m.removeInflight(r, t)
		if t.corrupt[i] {
			m.stats[r].RxCollided++
			continue
		}
		if m.tuned[r] != t.channel {
			// The receiver retuned away mid-flight (e.g. its GTS ended).
			m.stats[r].RxCollided++
			continue
		}
		// A receiver that is transmitting exactly as the frame ends cannot
		// have synchronized on it (covered by corrupt flag), but a receiver
		// may still lose the frame to fading.
		if p := m.topo.DeliveryProb(t.src, r); p < 1 && !m.rng.Bool(p) {
			m.stats[r].RxFaded++
			continue
		}
		m.stats[r].RxDelivered++
		if h := m.handlers[r]; h != nil {
			h.Deliver(t.f)
		}
	}
	m.putTransmission(t)
}

func (m *Medium) removeInflight(id frame.NodeID, t *transmission) {
	fl := m.inflight[id]
	for i, x := range fl {
		if x == t {
			fl[i] = fl[len(fl)-1]
			fl[len(fl)-1] = nil
			m.inflight[id] = fl[:len(fl)-1]
			return
		}
	}
}

// DecodeNeighbors returns the ids that can decode transmissions from src
// in ascending order (a view into the CSR array; callers must not mutate).
func (m *Medium) DecodeNeighbors(src frame.NodeID) []frame.NodeID {
	return m.decodeArr[m.decodeOff[src]:m.decodeOff[src+1]]
}

// SenseNeighbors returns the ids whose CCA detects transmissions from src,
// ascending (a view into the CSR array; callers must not mutate).
func (m *Medium) SenseNeighbors(src frame.NodeID) []frame.NodeID {
	return m.senseArr[m.senseOff[src]:m.senseOff[src+1]]
}
