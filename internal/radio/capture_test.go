package radio

import (
	"fmt"
	"testing"

	"qma/internal/frame"
	"qma/internal/sim"
)

// Capture-model tests: per-transmission power levels, SINR capture at the
// receiver, and the byte-identical guarantee for single-power runs. The rig
// of medium_test.go (hidden-node chains over GraphTopology) is reused where
// the graph's unity link gains make power arithmetic exact; PathLoss cases
// use hand-placed positions.

// captureRig is a hidden-node pair: 0 and 2 both reach 1, not each other.
func captureRig(t *testing.T, thresholdDB float64) *rig {
	t.Helper()
	r := newRig(t, 3, [][2]int{{0, 1}, {1, 2}})
	r.m.SetCaptureThreshold(thresholdDB)
	return r
}

// TestCaptureEqualPowersNeverCapture pins the tie rule: two overlapping
// reference-power frames on a graph topology arrive with identical power, so
// neither clears any positive threshold and both are lost — exactly the
// pre-capture collision outcome.
func TestCaptureEqualPowersNeverCapture(t *testing.T) {
	for _, threshold := range []float64{0.1, 6, 20} {
		r := captureRig(t, threshold)
		r.m.StartTX(0, dataFrame(0, 0), 0)
		r.k.Schedule(frame.AirTime(20)/2, func() { r.m.StartTX(2, dataFrame(2, 0), 0) })
		r.k.RunAll()
		if len(r.recvd[1]) != 0 {
			t.Errorf("threshold %v: equal-power overlap delivered %d frames, want 0", threshold, len(r.recvd[1]))
		}
		st := r.m.Stats(1)
		if st.RxCollided != 2 || st.RxCaptured != 0 {
			t.Errorf("threshold %v: stats at 1: %+v", threshold, st)
		}
	}
}

// TestCaptureStrongerFrameSurvives pins the headline capture behaviour: with
// a power gap at or above the threshold, the strong frame decodes and the
// weak one collides; below the threshold both are lost.
func TestCaptureStrongerFrameSurvives(t *testing.T) {
	cases := []struct {
		gapDB     float64
		threshold float64
		captured  bool
	}{
		{gapDB: 8, threshold: 6, captured: true},
		{gapDB: 6, threshold: 6, captured: true}, // exact-threshold boundary: >= captures
		{gapDB: 5.9, threshold: 6, captured: false},
		{gapDB: 12, threshold: 20, captured: false},
	}
	for _, tc := range cases {
		label := fmt.Sprintf("gap=%v threshold=%v", tc.gapDB, tc.threshold)
		r := captureRig(t, tc.threshold)
		r.m.StartTX(2, dataFrame(2, 0), tc.gapDB) // weak frame first
		r.k.Schedule(frame.AirTime(20)/4, func() { r.m.StartTX(0, dataFrame(0, 0), 0) })
		r.k.RunAll()
		st := r.m.Stats(1)
		if tc.captured {
			if len(r.recvd[1]) != 1 || r.recvd[1][0].Src != 0 {
				t.Errorf("%s: delivered %v, want the strong frame from 0", label, r.recvd[1])
			}
			if st.RxCaptured != 1 || st.RxCollided != 1 {
				t.Errorf("%s: stats at 1: %+v", label, st)
			}
		} else {
			if len(r.recvd[1]) != 0 {
				t.Errorf("%s: delivered %d frames, want 0", label, len(r.recvd[1]))
			}
			if st.RxCaptured != 0 || st.RxCollided != 2 {
				t.Errorf("%s: stats at 1: %+v", label, st)
			}
		}
	}
}

// TestCaptureLateStrongFrameWins pins that capture is re-evaluated at every
// arrival: a strong frame starting during a weak frame's airtime takes the
// receiver even though the weak frame synchronized first.
func TestCaptureLateStrongFrameWins(t *testing.T) {
	r := captureRig(t, 6)
	r.m.StartTX(2, dataFrame(2, 0), 10) // weak, starts first
	r.k.Schedule(frame.AirTime(20)/2, func() { r.m.StartTX(0, dataFrame(0, 0), 0) })
	r.k.RunAll()
	if len(r.recvd[1]) != 1 || r.recvd[1][0].Src != 0 {
		t.Fatalf("delivered %v, want only the late strong frame", r.recvd[1])
	}
}

// TestCaptureWinnerBeatenInItsTail pins the other direction: a frame that
// captured an early overlap can still lose to an even stronger frame
// arriving before it ends — corruption is one-way, capture never rescues.
func TestCaptureWinnerBeatenInItsTail(t *testing.T) {
	r := newRig(t, 4, [][2]int{{0, 1}, {1, 2}, {1, 3}})
	r.m.SetCaptureThreshold(6)
	quarter := frame.AirTime(20) / 4
	r.m.StartTX(2, dataFrame(2, 0), 14)                                    // weakest
	r.k.Schedule(quarter, func() { r.m.StartTX(3, dataFrame(3, 0), 7) })   // captures over 2
	r.k.Schedule(2*quarter, func() { r.m.StartTX(0, dataFrame(0, 0), 0) }) // beats 3's tail
	r.k.RunAll()
	if len(r.recvd[1]) != 1 || r.recvd[1][0].Src != 0 {
		t.Fatalf("delivered %v, want only the final strongest frame", r.recvd[1])
	}
	st := r.m.Stats(1)
	if st.RxCollided != 2 || st.RxCaptured != 1 {
		t.Errorf("stats at 1: %+v", st)
	}
}

// TestCaptureAggregateInterference pins the SINR denominator: two weak
// interferers sum, so a frame whose gap to each individual interferer clears
// the threshold can still fall below it against their combined power.
func TestCaptureAggregateInterference(t *testing.T) {
	// Gap 6 dB to each of two equal interferers: SINR = 6 − 10·log10(2)
	// ≈ 2.99 dB < 6 dB ⇒ no capture, even though pairwise it would capture.
	r := newRig(t, 4, [][2]int{{0, 1}, {1, 2}, {1, 3}})
	r.m.SetCaptureThreshold(6)
	r.m.StartTX(2, dataFrame(2, 0), 6)
	r.m.StartTX(3, dataFrame(3, 0), 6)
	r.k.Schedule(frame.AirTime(20)/4, func() { r.m.StartTX(0, dataFrame(0, 0), 0) })
	r.k.RunAll()
	if len(r.recvd[1]) != 0 {
		t.Fatalf("delivered %v, want none (aggregate interference)", r.recvd[1])
	}
}

// TestCaptureAckOverData pins that capture applies uniformly to every frame
// kind: an immediate ACK transmitted at reference power captures over a weak
// DATA frame overlapping it at a common neighbour (the asymmetry a NOMA MAC
// exploits — the short strong ACK punches through).
func TestCaptureAckOverData(t *testing.T) {
	r := captureRig(t, 6)
	ack := &frame.Frame{Kind: frame.Ack, Src: 0, Dst: frame.Broadcast, MPDUBytes: frame.AckMPDUBytes, Channel: 0}
	r.m.StartTX(2, dataFrame(2, 0), 10) // weak DATA, long
	r.k.Schedule(frame.AirTime(20)/8, func() { r.m.StartTX(0, ack, 0) })
	r.k.RunAll()
	if len(r.recvd[1]) != 1 || r.recvd[1][0].Kind != frame.Ack {
		t.Fatalf("delivered %v, want only the strong ACK", r.recvd[1])
	}
	if st := r.m.Stats(1); st.RxCaptured != 1 {
		t.Errorf("stats at 1: %+v", st)
	}
}

// TestCaptureHalfDuplexNotRescued pins that capture never overrides the
// half-duplex rule: the strongest frame still fails at a receiver that is
// itself transmitting.
func TestCaptureHalfDuplexNotRescued(t *testing.T) {
	r := captureRig(t, 6)
	r.m.StartTX(1, dataFrame(1, 0), 0) // receiver busy transmitting
	r.m.StartTX(2, dataFrame(2, 0), 20)
	r.k.Schedule(frame.AirTime(20)/4, func() { r.m.StartTX(0, dataFrame(0, 0), 0) })
	r.k.RunAll()
	if len(r.recvd[1]) != 0 {
		t.Fatalf("delivered %v at a half-duplex receiver, want none", r.recvd[1])
	}
}

// TestReducedPowerShrinksReach pins the per-transmission link filtering on a
// path-loss topology: a power reduction larger than a link's decode margin
// drops the receiver, one larger than the sense margin frees the neighbour's
// CCA, while reference-power behaviour is untouched.
func TestReducedPowerShrinksReach(t *testing.T) {
	cfg := DefaultPathLossConfig() // −9 dBm TX, −72 dBm sensitivity, 10 dB CCA margin
	// The default decode range is ≈5.85 m: node 1 sits close to 0 (large
	// margin), node 2 near the decode edge.
	pos := []Position{{X: 0}, {X: 0.3}, {X: 5.5}}
	pt := NewPathLossTopology(cfg, pos)
	// Sanity: the 0→2 decode margin is small and positive.
	_, farDecode, farSense := pt.LinkSignal(0, 2)
	if farDecode <= 0 || farDecode >= 3 {
		t.Fatalf("test geometry drifted: 0→2 decode margin %.2f dB, want (0, 3)", farDecode)
	}
	if farSense >= 0 {
		t.Fatalf("test geometry drifted: 0→2 sense margin %.2f dB, want < 0", farSense)
	}
	_, nearDecode, nearSense := pt.LinkSignal(0, 1)
	if nearDecode < 20 || nearSense < 20 {
		t.Fatalf("test geometry drifted: 0→1 margins %.2f/%.2f dB, want both > 20", nearDecode, nearSense)
	}

	run := func(reduceDB float64) (delivered0to1, delivered0to2 uint64, busyAt1 bool) {
		k := sim.NewKernel()
		m := NewMedium(k, pt, sim.NewRand(1))
		for i := 0; i < 3; i++ {
			m.Attach(frame.NodeID(i), HandlerFunc(func(*frame.Frame) {}))
		}
		m.StartTX(0, dataFrame(0, 0), reduceDB)
		busyAt1 = !m.CCA(1)
		k.RunAll()
		return m.Stats(1).RxDelivered, m.Stats(2).RxDelivered, busyAt1
	}

	if d1, d2, busy := run(0); d1 != 1 || d2 != 1 || !busy {
		t.Errorf("reference power: delivered (%d,%d) busy=%v, want (1,1) true", d1, d2, busy)
	}
	// Reduce past 2's decode margin but below 1's: only 1 still decodes.
	if d1, d2, busy := run(farDecode + 1); d1 != 1 || d2 != 0 || !busy {
		t.Errorf("reduced power: delivered (%d,%d) busy=%v, want (1,0) true", d1, d2, busy)
	}
	// Reduce past 1's sense margin too: 1 still decodes but its CCA is clear.
	if d1, _, busy := run(nearSense + 1); busy || (nearDecode > nearSense+1 && d1 != 1) {
		t.Errorf("deep reduction: delivered %d busy=%v, want decode without carrier sense", d1, busy)
	}
}

// TestCaptureOnPathLossRSSIGap pins capture driven purely by geometry: same
// TX power, but the closer transmitter's RSSI advantage clears the
// threshold.
func TestCaptureOnPathLossRSSIGap(t *testing.T) {
	cfg := DefaultPathLossConfig()
	// 1 is the receiver; 0 is close, 2 far but still decodable: RSSI gap =
	// 10·n·log10(d2/d0) = 30·log10(4/1) ≈ 18 dB.
	pos := []Position{{X: 1}, {X: 0}, {X: -4}}
	pt := NewPathLossTopology(cfg, pos)
	k := sim.NewKernel()
	m := NewMedium(k, pt, sim.NewRand(1))
	var got []frame.NodeID
	for i := 0; i < 3; i++ {
		m.Attach(frame.NodeID(i), HandlerFunc(func(f *frame.Frame) { got = append(got, f.Src) }))
	}
	m.SetCaptureThreshold(10)
	m.StartTX(2, dataFrame(2, 0), 0)
	k.Schedule(frame.AirTime(20)/2, func() { m.StartTX(0, dataFrame(0, 0), 0) })
	k.RunAll()
	if m.Stats(1).RxCaptured != 1 {
		t.Errorf("receiver stats: %+v, want one captured reception", m.Stats(1))
	}
	for _, src := range got {
		if src == 2 {
			t.Errorf("far frame delivered despite the 18 dB gap")
		}
	}
}

// TestCaptureDisabledMatchesDense pins the byte-identical guarantee from the
// other side: with capture enabled on a graph topology but every
// transmission at the reference power, the randomized differential scripts
// of dense_test.go must still match the dense pre-capture reference exactly
// (equal powers never capture, so the capture code must not perturb a single
// delivery, CCA answer or counter).
func TestCaptureDisabledMatchesDense(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := sim.NewRand(uint64(7000 + trial))
		n := 3 + rng.Intn(20)
		g := randomGraph(rng, n, 0.1+rng.Float64()*0.6)
		script := randomScript(rng, n, 400)
		trace1, cca1, stats1 := runScriptDense(g, uint64(trial), script)
		trace2, cca2, stats2 := runScript(g, uint64(trial), script, func(k *sim.Kernel, rng *sim.Rand) (
			func(frame.NodeID) bool, func(frame.NodeID, *frame.Frame) sim.Time,
			func(frame.NodeID, uint8), func(frame.NodeID) bool,
			func(frame.NodeID, Handler), func(frame.NodeID) NodeStats,
		) {
			m := NewMedium(k, g, rng)
			m.SetCaptureThreshold(6)
			startTX := func(id frame.NodeID, f *frame.Frame) sim.Time { return m.StartTX(id, f, 0) }
			return m.CCA, startTX, m.SetTuned, m.Transmitting, m.Attach, m.Stats
		})
		if len(trace1) != len(trace2) || len(cca1) != len(cca2) {
			t.Fatalf("trial %d: trace %d vs %d, cca %d vs %d", trial, len(trace1), len(trace2), len(cca1), len(cca2))
		}
		for i := range trace1 {
			if trace1[i] != trace2[i] {
				t.Fatalf("trial %d: delivery %d: dense %+v, capture-enabled %+v", trial, i, trace1[i], trace2[i])
			}
		}
		for i := range cca1 {
			if cca1[i] != cca2[i] {
				t.Fatalf("trial %d: CCA %d: dense %v, capture-enabled %v", trial, i, cca1[i], cca2[i])
			}
		}
		for i := range stats1 {
			if stats1[i] != stats2[i] {
				t.Fatalf("trial %d: node %d stats: dense %+v, capture-enabled %+v", trial, i, stats1[i], stats2[i])
			}
		}
	}
}

// TestTxAirtimeByPower pins the per-level airtime breakdown behind the
// power-aware energy model.
func TestTxAirtimeByPower(t *testing.T) {
	r := newRig(t, 2, [][2]int{{0, 1}})
	if got := r.m.TxAirtimeByPower(0); got != nil {
		t.Fatalf("single-power medium reports a breakdown: %v", got)
	}
	air := frame.AirTime(20)
	r.m.StartTX(0, dataFrame(0, 0), 0)
	r.k.RunAll()
	r.m.StartTX(0, dataFrame(0, 0), 8)
	r.k.RunAll()
	r.m.StartTX(0, dataFrame(0, 0), 8)
	r.k.RunAll()
	r.m.StartTX(0, dataFrame(0, 0), 16)
	r.k.RunAll()
	got := r.m.TxAirtimeByPower(0)
	want := []PowerAirtime{{0, air}, {8, 2 * air}, {16, air}}
	if len(got) != len(want) {
		t.Fatalf("breakdown %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("breakdown %v, want %v", got, want)
		}
	}
	if got := r.m.TxAirtimeByPower(1); len(got) != 1 || got[0] != (PowerAirtime{0, 0}) {
		t.Fatalf("idle node breakdown %v, want a zero reference row", got)
	}
}

// TestStartTXPowerValidation pins the API contract: negative reductions and
// reduced power without a PowerModel panic loudly.
func TestStartTXPowerValidation(t *testing.T) {
	r := newRig(t, 2, [][2]int{{0, 1}})
	mustPanic(t, "negative reduction", func() { r.m.StartTX(0, dataFrame(0, 0), -1) })
}

// TestCaptureThresholdAccessors pins enable/disable round trips: <= 0
// disables capture again.
func TestCaptureThresholdAccessors(t *testing.T) {
	r := newRig(t, 2, [][2]int{{0, 1}})
	if got := r.m.CaptureThreshold(); got != 0 {
		t.Fatalf("default threshold %v, want 0 (disabled)", got)
	}
	r.m.SetCaptureThreshold(6)
	if got := r.m.CaptureThreshold(); got != 6 {
		t.Fatalf("threshold %v, want 6", got)
	}
	r.m.SetCaptureThreshold(0)
	if got := r.m.CaptureThreshold(); got != 0 {
		t.Fatalf("threshold %v after disable, want 0", got)
	}
}

func mustPanic(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", label)
		}
	}()
	fn()
}
