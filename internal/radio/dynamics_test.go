package radio

import (
	"fmt"
	"math"
	"testing"

	"qma/internal/frame"
	"qma/internal/sim"
)

// This file is the safety net for the dynamics subsystem. naiveDynMedium is
// a rebuild-per-event reference: it holds no link index at all and
// recomputes receiver/sense sets from the topology predicates on every
// transmission, so churn and mobility are trivially correct there. The
// differential tests drive it and the production Medium (incremental
// O(degree) link re-classification, busy counters, sensed-set snapshots)
// through identical randomized scripts of transmissions, CCAs, retunes,
// moves, leaves/joins and fades, asserting identical delivery traces, CCA
// answers and stats.

// naiveTransmission mirrors the production bookkeeping with the receiver
// and sensed sets captured at transmission start.
type naiveTransmission struct {
	src       frame.NodeID
	f         *frame.Frame
	channel   uint8
	end       sim.Time
	corrupt   []bool
	receivers []frame.NodeID
	sensed    []frame.NodeID
}

func (t *naiveTransmission) senses(id frame.NodeID) bool {
	for _, s := range t.sensed {
		if s == id {
			return true
		}
	}
	return false
}

// naiveDynMedium recomputes everything per event: receivers and sensed sets
// by scanning all N nodes at StartTX, CCA by scanning the active set.
type naiveDynMedium struct {
	k         *sim.Kernel
	topo      Topology
	rng       *sim.Rand
	handlers  []Handler
	stats     []NodeStats
	tuned     []uint8
	txUntil   []sim.Time
	rxCount   []int
	inflight  [][]*naiveTransmission
	active    []*naiveTransmission
	present   []bool
	fadeUntil []sim.Time
	ge        *geProcess
}

func newNaiveDynMedium(k *sim.Kernel, topo Topology, rng *sim.Rand) *naiveDynMedium {
	n := topo.NumNodes()
	m := &naiveDynMedium{
		k:         k,
		topo:      topo,
		rng:       rng,
		handlers:  make([]Handler, n),
		stats:     make([]NodeStats, n),
		tuned:     make([]uint8, n),
		txUntil:   make([]sim.Time, n),
		rxCount:   make([]int, n),
		inflight:  make([][]*naiveTransmission, n),
		present:   make([]bool, n),
		fadeUntil: make([]sim.Time, n),
	}
	for i := range m.present {
		m.present[i] = true
	}
	return m
}

func (m *naiveDynMedium) cca(id frame.NodeID) bool {
	m.stats[id].CCACount++
	for _, t := range m.active {
		if t.end > m.k.Now() && t.channel == m.tuned[id] && t.senses(id) {
			m.stats[id].CCABusy++
			return false
		}
	}
	return true
}

func (m *naiveDynMedium) startTX(src frame.NodeID, f *frame.Frame) sim.Time {
	now := m.k.Now()
	dur := f.Duration()
	end := now + dur
	m.txUntil[src] = end
	m.stats[src].TxCount++
	m.stats[src].TxAirtime += dur

	t := &naiveTransmission{src: src, f: f, channel: f.Channel, end: end}
	if m.present[src] {
		for dst := 0; dst < m.topo.NumNodes(); dst++ {
			d := frame.NodeID(dst)
			if d == src || !m.present[d] {
				continue
			}
			if m.topo.CanDecode(src, d) && m.tuned[d] == f.Channel {
				t.receivers = append(t.receivers, d)
				t.corrupt = append(t.corrupt, false)
			}
			if m.topo.CanSense(src, d) {
				t.sensed = append(t.sensed, d)
			}
		}
	}
	m.active = append(m.active, t)
	m.corruptAllAt(src)
	for i, r := range t.receivers {
		if m.txUntil[r] > now {
			t.corrupt[i] = true
		}
		if m.rxCount[r] > 0 {
			t.corrupt[i] = true
			m.corruptAllAt(r)
		}
		m.rxCount[r]++
		m.inflight[r] = append(m.inflight[r], t)
	}
	m.k.At(end, func() { m.endTX(t) })
	return end
}

func (m *naiveDynMedium) corruptAllAt(id frame.NodeID) {
	for _, t := range m.inflight[id] {
		for i, r := range t.receivers {
			if r == id {
				t.corrupt[i] = true
			}
		}
	}
}

func (m *naiveDynMedium) endTX(t *naiveTransmission) {
	now := m.k.Now()
	for i, a := range m.active {
		if a == t {
			m.active[i] = m.active[len(m.active)-1]
			m.active = m.active[:len(m.active)-1]
			break
		}
	}
	for i, r := range t.receivers {
		m.rxCount[r]--
		fl := m.inflight[r]
		for j, x := range fl {
			if x == t {
				fl[j] = fl[len(fl)-1]
				m.inflight[r] = fl[:len(fl)-1]
				break
			}
		}
		if t.corrupt[i] {
			m.stats[r].RxCollided++
			continue
		}
		if m.tuned[r] != t.channel {
			m.stats[r].RxCollided++
			continue
		}
		if now < m.fadeUntil[r] || now < m.fadeUntil[t.src] {
			m.stats[r].RxFaded++
			continue
		}
		if p := m.topo.DeliveryProb(t.src, r); p < 1 && !m.rng.Bool(p) {
			m.stats[r].RxFaded++
			continue
		}
		if m.ge != nil && !m.ge.deliver(t.src, r, now) {
			m.stats[r].RxFaded++
			continue
		}
		m.stats[r].RxDelivered++
		if h := m.handlers[r]; h != nil {
			h.Deliver(t.f)
		}
	}
}

// dynOp is one scripted operation, a superset of the static diffOp kinds.
type dynOp struct {
	at      sim.Time
	kind    uint8 // 0 StartTX, 1 CCA, 2 SetTuned, 3 Move, 4 Leave, 5 Join, 6 Fade
	node    frame.NodeID
	channel uint8
	bytes   int
	pos     Position
	dur     sim.Time
}

// randomDynScript draws a reproducible operation schedule mixing traffic
// with dynamics events. moves=false restricts to churn and fades (for
// topologies without positions).
func randomDynScript(rng *sim.Rand, n, ops int, side float64, moves bool) []dynOp {
	script := make([]dynOp, ops)
	at := sim.Time(0)
	for i := range script {
		at += sim.Time(rng.Intn(250))
		op := dynOp{at: at, node: frame.NodeID(rng.Intn(n))}
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			op.kind = 0
			op.bytes = 5 + rng.Intn(100)
			op.channel = uint8(rng.Intn(3))
		case 4, 5:
			op.kind = 1
		case 6:
			op.kind = 2
			op.channel = uint8(rng.Intn(3))
		case 7:
			if moves {
				op.kind = 3
				// Mostly in-bounds waypoints, occasionally far outside the
				// original deployment to exercise the overflow list.
				scale := side
				if rng.Intn(4) == 0 {
					scale = 3 * side
				}
				op.pos = Position{X: rng.Float64()*scale - side/2, Y: rng.Float64()*scale - side/2}
			} else {
				op.kind = 1
			}
		case 8:
			op.kind = 4 + uint8(rng.Intn(2)) // leave or join
		default:
			op.kind = 6
			op.dur = sim.Time(100 + rng.Intn(2000))
		}
		script[i] = op
	}
	return script
}

// dynMediumDriver abstracts the two implementations for the script runner.
type dynMediumDriver struct {
	cca          func(frame.NodeID) bool
	startTX      func(frame.NodeID, *frame.Frame) sim.Time
	setTuned     func(frame.NodeID, uint8)
	transmitting func(frame.NodeID) bool
	register     func(frame.NodeID, Handler)
	stats        func(frame.NodeID) NodeStats
	move         func(frame.NodeID, Position)
	setPresent   func(frame.NodeID, bool)
	fade         func(frame.NodeID, sim.Time)
}

func runDynScript(n int, script []dynOp, drv *dynMediumDriver, k *sim.Kernel) (trace []delivery, ccaAnswers []bool, stats []NodeStats) {
	for i := 0; i < n; i++ {
		id := frame.NodeID(i)
		drv.register(id, HandlerFunc(func(f *frame.Frame) {
			trace = append(trace, delivery{at: k.Now(), src: f.Src, dst: id})
		}))
	}
	for _, op := range script {
		op := op
		k.At(op.at, func() {
			switch op.kind {
			case 0:
				if drv.transmitting(op.node) {
					return
				}
				f := &frame.Frame{Kind: frame.Data, Src: op.node, Dst: frame.Broadcast,
					MPDUBytes: op.bytes, Channel: op.channel}
				drv.startTX(op.node, f)
			case 1:
				if drv.transmitting(op.node) {
					return
				}
				ccaAnswers = append(ccaAnswers, drv.cca(op.node))
			case 2:
				drv.setTuned(op.node, op.channel)
			case 3:
				drv.move(op.node, op.pos)
			case 4:
				drv.setPresent(op.node, false)
			case 5:
				drv.setPresent(op.node, true)
			case 6:
				drv.fade(op.node, k.Now()+op.dur)
			}
		})
	}
	k.RunAll()
	stats = make([]NodeStats, n)
	for i := range stats {
		stats[i] = drv.stats(frame.NodeID(i))
	}
	return trace, ccaAnswers, stats
}

func indexedDynDriver(k *sim.Kernel, topo Topology, seed uint64, ge GilbertElliott, geSeed uint64) *dynMediumDriver {
	m := NewMedium(k, topo, sim.NewRand(seed))
	m.EnableDynamics()
	if ge.Enabled() {
		m.SetGilbertElliott(ge, geSeed)
	}
	return &dynMediumDriver{
		cca: m.CCA, setTuned: m.SetTuned,
		startTX: func(id frame.NodeID, f *frame.Frame) sim.Time { return m.StartTX(id, f, 0) },
		transmitting: m.Transmitting, register: m.Attach, stats: m.Stats,
		move:       m.MoveNode,
		setPresent: m.SetPresent,
		fade:       m.SetFadeUntil,
	}
}

func naiveDynDriver(k *sim.Kernel, topo Topology, seed uint64, ge GilbertElliott, geSeed uint64) *dynMediumDriver {
	m := newNaiveDynMedium(k, topo, sim.NewRand(seed))
	if ge.Enabled() {
		m.ge = newGEProcess(ge, geSeed)
	}
	return &dynMediumDriver{
		cca: m.cca, startTX: m.startTX,
		setTuned:     func(id frame.NodeID, ch uint8) { m.tuned[id] = ch },
		transmitting: func(id frame.NodeID) bool { return m.txUntil[id] > k.Now() },
		register:     func(id frame.NodeID, h Handler) { m.handlers[id] = h },
		stats:        func(id frame.NodeID) NodeStats { return m.stats[id] },
		move: func(id frame.NodeID, p Position) {
			if mob, ok := topo.(MobileTopology); ok {
				mob.MoveNode(id, p)
			}
		},
		setPresent: func(id frame.NodeID, present bool) { m.present[id] = present },
		fade: func(id frame.NodeID, until sim.Time) {
			if until > m.fadeUntil[id] {
				m.fadeUntil[id] = until
			}
		},
	}
}

func compareDynRuns(t *testing.T, label string, n int, script []dynOp,
	mkTopo func() Topology, seed uint64, ge GilbertElliott) {
	t.Helper()
	topoA, topoB := mkTopo(), mkTopo()
	kA, kB := sim.NewKernel(), sim.NewKernel()
	trace1, cca1, stats1 := runDynScript(n, script, naiveDynDriver(kA, topoA, seed, ge, seed+77), kA)
	trace2, cca2, stats2 := runDynScript(n, script, indexedDynDriver(kB, topoB, seed, ge, seed+77), kB)
	if len(cca1) != len(cca2) {
		t.Fatalf("%s: CCA answer count %d vs %d", label, len(cca1), len(cca2))
	}
	for i := range cca1 {
		if cca1[i] != cca2[i] {
			t.Fatalf("%s: CCA answer %d: naive %v, indexed %v", label, i, cca1[i], cca2[i])
		}
	}
	if len(trace1) != len(trace2) {
		t.Fatalf("%s: delivery trace length %d vs %d", label, len(trace1), len(trace2))
	}
	for i := range trace1 {
		if trace1[i] != trace2[i] {
			t.Fatalf("%s: delivery %d: naive %+v, indexed %+v", label, i, trace1[i], trace2[i])
		}
	}
	for i := range stats1 {
		if stats1[i] != stats2[i] {
			t.Fatalf("%s: node %d stats: naive %+v, indexed %+v", label, i, stats1[i], stats2[i])
		}
	}
}

// TestDifferentialChurnGraphMedium drives node leave/rejoin and fades on
// explicit graphs through both implementations — the acceptance test for
// mid-run churn against a rebuild-per-event reference.
func TestDifferentialChurnGraphMedium(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := sim.NewRand(uint64(4000 + trial))
		n := 3 + rng.Intn(20)
		g := randomGraph(rng, n, 0.1+rng.Float64()*0.6)
		g.LossProb = float64(rng.Intn(3)) * 0.25
		script := randomDynScript(rng, n, 500, 0, false)
		compareDynRuns(t, fmt.Sprintf("graph churn trial %d (n=%d)", trial, n), n, script,
			func() Topology {
				g2 := NewGraphTopology(n)
				for i := 0; i < n; i++ {
					for _, j := range g.Neighbors(frame.NodeID(i)) {
						g2.AddLink(frame.NodeID(i), j)
					}
				}
				g2.LossProb = g.LossProb
				return g2
			}, uint64(trial), GilbertElliott{})
	}
}

// TestDifferentialMobilityPathLossMedium adds waypoint moves (including
// out-of-bounds excursions) and the Gilbert–Elliott process on path-loss
// topologies.
func TestDifferentialMobilityPathLossMedium(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := sim.NewRand(uint64(5000 + trial))
		n := 3 + rng.Intn(25)
		cfg := DefaultPathLossConfig()
		cfg.FadingLossProb = float64(rng.Intn(3)) * 0.2
		if trial%2 == 0 {
			cfg.ShadowSigmaDB = 4
			cfg.ShadowSeed = uint64(trial)
		}
		side := 40.0
		pos := make([]Position, n)
		for i := range pos {
			pos[i] = Position{X: rng.Float64() * side, Y: rng.Float64() * side}
		}
		var ge GilbertElliott
		if trial%3 == 0 {
			ge = GilbertElliott{
				MeanGood: 50 * sim.Millisecond,
				MeanBad:  10 * sim.Millisecond,
				LossBad:  0.9,
			}
		}
		script := randomDynScript(rng, n, 500, side, true)
		compareDynRuns(t, fmt.Sprintf("mobility trial %d (n=%d)", trial, n), n, script,
			func() Topology { return NewPathLossTopology(cfg, append([]Position(nil), pos...)) },
			uint64(trial), ge)
	}
}

// TestIncrementalLinkRowsMatchRebuild applies random dynamics events to a
// live medium and, after every event, compares its incrementally maintained
// link rows against a naive full re-classification over the current
// topology state — the structural half of the rebuild-per-event reference.
func TestIncrementalLinkRowsMatchRebuild(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := sim.NewRand(uint64(6000 + trial))
		n := 5 + rng.Intn(30)
		cfg := DefaultPathLossConfig()
		if trial%2 == 1 {
			cfg.ShadowSigmaDB = 5
			cfg.ShadowSeed = uint64(trial)
		}
		side := 60.0
		pos := make([]Position, n)
		for i := range pos {
			pos[i] = Position{X: rng.Float64() * side, Y: rng.Float64() * side}
		}
		pt := NewPathLossTopology(cfg, pos)
		m := NewMedium(sim.NewKernel(), pt, sim.NewRand(1))
		m.EnableDynamics()
		present := make([]bool, n)
		for i := range present {
			present[i] = true
		}
		for ev := 0; ev < 60; ev++ {
			id := frame.NodeID(rng.Intn(n))
			switch rng.Intn(4) {
			case 0, 1:
				p := Position{X: rng.Float64()*2*side - side/2, Y: rng.Float64()*2*side - side/2}
				m.MoveNode(id, p)
			case 2:
				m.SetPresent(id, false)
				present[id] = false
			default:
				m.SetPresent(id, true)
				present[id] = true
			}
			assertRowsMatchRebuild(t, fmt.Sprintf("trial %d event %d", trial, ev), m, pt, present)
		}
	}
}

// assertRowsMatchRebuild compares every link row of m against a naive full
// re-classification over the present nodes of topo.
func assertRowsMatchRebuild(t *testing.T, label string, m *Medium, topo Topology, present []bool) {
	t.Helper()
	n := topo.NumNodes()
	for src := 0; src < n; src++ {
		s := frame.NodeID(src)
		var wantDecode, wantSense []frame.NodeID
		if present[src] {
			for dst := 0; dst < n; dst++ {
				d := frame.NodeID(dst)
				if d == s || !present[dst] {
					continue
				}
				if topo.CanDecode(s, d) {
					wantDecode = append(wantDecode, d)
				}
				if topo.CanSense(s, d) {
					wantSense = append(wantSense, d)
				}
			}
		}
		if !equalIDs(m.DecodeNeighbors(s), wantDecode) {
			t.Fatalf("%s: decode row of %d = %v, rebuild %v",
				label, src, m.DecodeNeighbors(s), wantDecode)
		}
		if !equalIDs(m.SenseNeighbors(s), wantSense) {
			t.Fatalf("%s: sense row of %d = %v, rebuild %v",
				label, src, m.SenseNeighbors(s), wantSense)
		}
	}
}

// TestMoveNodeGridEdgeBands pins the storageCell binning rule at the grid
// boundary: movers landing within one cell outside the original bounding
// box must go to the overflow list, not be clamped into the last column or
// row — clamping would park them a cell away from where range queries look
// and silently drop decodable links (a bug an earlier draft had).
func TestMoveNodeGridEdgeBands(t *testing.T) {
	// 11×11 lattice over [0,100]²; default config gives ~5.8 m range, so
	// the grid is many cells wide and reach is small.
	var pos []Position
	for y := 0.0; y <= 100; y += 10 {
		for x := 0.0; x <= 100; x += 10 {
			pos = append(pos, Position{X: x, Y: y})
		}
	}
	n := len(pos)
	pt := NewPathLossTopology(DefaultPathLossConfig(), pos)
	m := NewMedium(sim.NewKernel(), pt, sim.NewRand(1))
	m.EnableDynamics()
	present := make([]bool, n)
	for i := range present {
		present[i] = true
	}
	cell := pt.cell
	// Probe offsets in cells beyond each edge: inside the last cell, in
	// the one-cell band just outside (the regression case), and far out.
	offsets := []float64{-0.4, 0.2, 0.7, 1.3, 2.5}
	edges := []func(off float64) Position{
		func(off float64) Position { return Position{X: 100 + off*cell, Y: 50} }, // right
		func(off float64) Position { return Position{X: -off * cell, Y: 50} },    // left
		func(off float64) Position { return Position{X: 50, Y: 100 + off*cell} }, // top
		func(off float64) Position { return Position{X: 50, Y: -off * cell} },    // bottom
	}
	a, b := frame.NodeID(0), frame.NodeID(1)
	for ei, edge := range edges {
		for _, off := range offsets {
			p := edge(off)
			m.MoveNode(a, p)
			// Partner just inside decode range of a, towards the lattice.
			q := Position{X: p.X * 0.97, Y: p.Y * 0.97}
			m.MoveNode(b, q)
			if pt.CanDecode(a, b) != containsID(m.DecodeNeighbors(a), b) {
				t.Fatalf("edge %d off %.1f: decode row disagrees with predicate", ei, off)
			}
			assertRowsMatchRebuild(t, fmt.Sprintf("edge %d off %.1f", ei, off), m, pt, present)
		}
	}
}

func containsID(s []frame.NodeID, id frame.NodeID) bool {
	for _, x := range s {
		if x == id {
			return true
		}
	}
	return false
}

func equalIDs(a, b []frame.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBusyCountersBalanceUnderChurn pins the counter consistency claim: a
// script full of mid-flight leaves, rejoins and moves must leave every busy
// counter at exactly zero once the air clears.
func TestBusyCountersBalanceUnderChurn(t *testing.T) {
	rng := sim.NewRand(99)
	n := 12
	side := 30.0
	pos := make([]Position, n)
	for i := range pos {
		pos[i] = Position{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	pt := NewPathLossTopology(DefaultPathLossConfig(), pos)
	k := sim.NewKernel()
	m := NewMedium(k, pt, sim.NewRand(1))
	m.EnableDynamics()
	for i := 0; i < n; i++ {
		m.Attach(frame.NodeID(i), HandlerFunc(func(*frame.Frame) {}))
	}
	script := randomDynScript(rng, n, 800, side, true)
	drv := &dynMediumDriver{
		cca: m.CCA, setTuned: m.SetTuned,
		startTX: func(id frame.NodeID, f *frame.Frame) sim.Time { return m.StartTX(id, f, 0) },
		transmitting: m.Transmitting,
		register:     func(frame.NodeID, Handler) {},
		stats:        m.Stats,
		move:         m.MoveNode, setPresent: m.SetPresent, fade: m.SetFadeUntil,
	}
	runDynScript(0, script, drv, k)
	for i, per := range m.busy {
		for ch, c := range per {
			if c != 0 {
				t.Fatalf("busy[%d][%d] = %d after the air cleared", i, ch, c)
			}
		}
	}
}

// TestGilbertElliottStatistics checks the lazily sampled process against its
// analytic stationary behaviour: the long-run loss rate of regularly spaced
// frames approaches πBad·LossBad, and losses are bursty (the loss rate
// immediately after a loss is well above the stationary rate).
func TestGilbertElliottStatistics(t *testing.T) {
	cfg := GilbertElliott{
		MeanGood: 900 * sim.Millisecond,
		MeanBad:  100 * sim.Millisecond,
		LossBad:  1,
	}
	p := newGEProcess(cfg, 42)
	const frames = 200_000
	gap := 5 * sim.Millisecond
	losses, afterLoss, afterLossLost := 0, 0, 0
	prevLost := false
	for i := 0; i < frames; i++ {
		ok := p.deliver(0, 1, sim.Time(i)*gap)
		if prevLost {
			afterLoss++
			if !ok {
				afterLossLost++
			}
		}
		if !ok {
			losses++
		}
		prevLost = !ok
	}
	rate := float64(losses) / frames
	if math.Abs(rate-0.1) > 0.02 {
		t.Fatalf("stationary loss rate %.4f, want ≈ πBad·LossBad = 0.10", rate)
	}
	burst := float64(afterLossLost) / float64(afterLoss)
	// With a 100 ms bad state sampled every 5 ms, the chain stays bad with
	// probability ≈ e^{-(λg+λb)·5ms} ≈ 0.95 — far above the 0.1 stationary
	// rate. Anything above 0.5 proves burstiness.
	if burst < 0.5 {
		t.Fatalf("loss rate right after a loss is %.3f — not bursty", burst)
	}
}

// TestGilbertElliottDeterminism pins that two processes with identical seed
// and config produce identical loss sequences, and that distinct links use
// independent streams.
func TestGilbertElliottDeterminism(t *testing.T) {
	cfg := GilbertElliott{MeanGood: 200 * sim.Millisecond, MeanBad: 50 * sim.Millisecond, LossBad: 0.8}
	a, b := newGEProcess(cfg, 7), newGEProcess(cfg, 7)
	var seqA, seqB, seqOther []bool
	for i := 0; i < 5000; i++ {
		at := sim.Time(i) * 3 * sim.Millisecond
		seqA = append(seqA, a.deliver(2, 5, at))
		seqB = append(seqB, b.deliver(5, 2, at)) // unordered key: same link
		seqOther = append(seqOther, a.deliver(2, 6, at))
	}
	same, diff := true, true
	for i := range seqA {
		if seqA[i] != seqB[i] {
			same = false
		}
		if seqA[i] != seqOther[i] {
			diff = false
		}
	}
	if !same {
		t.Fatal("same link, same seed: sequences diverge")
	}
	if diff {
		t.Fatal("distinct links produced identical sequences — streams not independent")
	}
}
