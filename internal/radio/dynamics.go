package radio

import (
	"math"

	"qma/internal/frame"
	"qma/internal/sim"
)

// This file holds the time-varying parts of the radio model: the
// Gilbert–Elliott burst-error process (per-link two-state Markov channel)
// and the deterministic deep-fade windows scenarios use as controlled
// disturbances. Node churn and mobility live in medium.go (incremental link
// re-classification) and topology.go (dynamic position index); everything
// here is strictly opt-in — with no dynamics configured the medium executes
// the exact pre-dynamics code paths and consumes the exact same random
// draws, so static scenarios stay byte-identical.

// GilbertElliott parameterizes the two-state burst-error channel. Each link
// (unordered node pair) evolves independently between a Good and a Bad state
// with exponentially distributed sojourn times; a frame that survives
// collisions and the topology's static fading is additionally lost with the
// per-state loss probability. The zero value disables the process.
type GilbertElliott struct {
	// MeanGood and MeanBad are the mean sojourn times of the two states.
	// Both must be positive for the process to be enabled.
	MeanGood, MeanBad sim.Time
	// LossGood and LossBad are the per-frame loss probabilities in each
	// state (typically LossGood ≈ 0 and LossBad close to 1: a burst fade).
	LossGood, LossBad float64
}

// Enabled reports whether the process is configured to do anything.
func (g GilbertElliott) Enabled() bool {
	return g.MeanGood > 0 && g.MeanBad > 0 && (g.LossGood > 0 || g.LossBad > 0)
}

// piBad is the stationary probability of the Bad state.
func (g GilbertElliott) piBad() float64 {
	lg := 1 / g.MeanGood.Seconds()
	lb := 1 / g.MeanBad.Seconds()
	return lg / (lg + lb)
}

// geLink is the lazily materialized per-link channel state. Links get an
// entry on their first delivery check, so memory is O(links actually used),
// not O(N²).
type geLink struct {
	rng *sim.Rand
	bad bool
	at  sim.Time
}

// geProcess tracks the Gilbert–Elliott state of every active link. The state
// is sampled lazily: a link's continuous-time chain is only evaluated at the
// instants a frame crosses it, using the closed-form two-state transition
// probability over the elapsed gap — no per-link timer events exist, so the
// process costs O(1) per reception and nothing while a link is silent.
type geProcess struct {
	cfg  GilbertElliott
	seed uint64
	// links is keyed by the packed unordered node pair.
	links map[uint32]*geLink
}

func newGEProcess(cfg GilbertElliott, seed uint64) *geProcess {
	return &geProcess{cfg: cfg, seed: seed, links: make(map[uint32]*geLink)}
}

// geLinkKey packs the unordered pair (a, b) into a map key. The channel is
// symmetric: data frames and the ACKs answering them see the same burst.
func geLinkKey(a, b frame.NodeID) uint32 {
	if a > b {
		a, b = b, a
	}
	return uint32(uint16(a))<<16 | uint32(uint16(b))
}

// deliver evolves the link's state to now and reports whether a frame
// crossing the link at this instant survives the burst-error process. All
// randomness comes from a per-link stream derived from the process seed and
// the link key, so the draw order of every other stream in the simulation is
// untouched and the process itself is reproducible regardless of which other
// links are active.
func (p *geProcess) deliver(src, dst frame.NodeID, now sim.Time) bool {
	key := geLinkKey(src, dst)
	l := p.links[key]
	if l == nil {
		l = &geLink{rng: sim.NewRandStream(p.seed, 1_000_000+uint64(key)), at: now}
		l.bad = l.rng.Float64() < p.cfg.piBad() // stationary initial state
		p.links[key] = l
	} else if now > l.at {
		l.evolve(p.cfg, now)
	}
	loss := p.cfg.LossGood
	if l.bad {
		loss = p.cfg.LossBad
	}
	return !(loss > 0 && l.rng.Float64() < loss)
}

// evolve samples the state at time now given the state recorded at l.at,
// using the closed-form marginal of the two-state continuous-time chain:
// P(bad at t+Δ) = πBad + (1{bad at t} − πBad)·e^{−(λg+λb)Δ}.
func (l *geLink) evolve(cfg GilbertElliott, now sim.Time) {
	lg := 1 / cfg.MeanGood.Seconds()
	lb := 1 / cfg.MeanBad.Seconds()
	decay := math.Exp(-(lg + lb) * (now - l.at).Seconds())
	piBad := lg / (lg + lb)
	pBad := piBad * (1 - decay)
	if l.bad {
		pBad = piBad + (1-piBad)*decay
	}
	l.bad = l.rng.Float64() < pBad
	l.at = now
}
