package radio

import (
	"fmt"
	"math"
	"testing"

	"qma/internal/frame"
	"qma/internal/sim"
)

// BenchmarkShardedMediumCells measures the sharded hot path at the radio
// layer: C independent cell mediums advanced epoch by epoch, each epoch
// starting transmissions in every cell, mirroring the edge transmissions
// into the next cell's busy accounting (ScheduleForeignBusy) and probing
// CCA against the raised counters. One op is one epoch across all C cells —
// the unit both scenario-level schedulers (lock-step and dependency-driven)
// repeat per cell — so the ns/op must stay ~linear in C for the scale-out
// to hold; the perf gate pins it against the BENCH snapshot.
func BenchmarkShardedMediumCells(b *testing.B) {
	const nodesPerCell = 64
	const epoch = 5 * sim.Millisecond
	for _, cells := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("C=%d", cells), func(b *testing.B) {
			kernels := make([]*sim.Kernel, cells)
			mediums := make([]*Medium, cells)
			side := 200 * math.Sqrt(float64(nodesPerCell)/100)
			for c := range mediums {
				rng := sim.NewRand(uint64(c + 1))
				pos := make([]Position, nodesPerCell)
				for i := range pos {
					pos[i] = Position{X: rng.Float64() * side, Y: rng.Float64() * side}
				}
				kernels[c] = sim.NewKernel()
				mediums[c] = NewMedium(kernels[c], NewPathLossTopology(DefaultPathLossConfig(), pos), sim.NewRand(1))
				for id := 0; id < nodesPerCell; id++ {
					mediums[c].Attach(frame.NodeID(id), HandlerFunc(func(*frame.Frame) {}))
				}
			}
			f := &frame.Frame{Kind: frame.Data, Dst: frame.Broadcast, MPDUBytes: 50}
			b.ReportAllocs()
			b.ResetTimer()
			now := sim.Time(0)
			for i := 0; i < b.N; i++ {
				for c, m := range mediums {
					// A handful of transmitters per cell, rotating so the
					// busy counters see fresh rows; the edge TX of each cell
					// is mirrored into the next cell one epoch later.
					for j := 0; j < 4; j++ {
						src := frame.NodeID((i*4 + j) % nodesPerCell)
						if m.Transmitting(src) {
							continue
						}
						f.Src = src
						end := m.StartTX(src, f, 0)
						if j == 0 && cells > 1 {
							next := mediums[(c+1)%cells]
							next.ScheduleForeignBusy(src, f.Channel, now+epoch, end+epoch)
						}
					}
					m.CCA(frame.NodeID(i % nodesPerCell))
				}
				now += epoch
				for c := range kernels {
					kernels[c].Run(now)
				}
			}
		})
	}
}
