package radio

import (
	"fmt"
	"math"
	"testing"

	"qma/internal/frame"
	"qma/internal/sim"
)

// BenchmarkMediumLargeN measures building a medium over a sparse large-N
// path-loss deployment plus a burst of StartTX/CCA activity. The per-op cost
// must scale ~linearly in N: the CI bench smoke runs the N=1000 case with
// -benchtime=1x so an accidental O(N²) (dense matrix, global CCA scan)
// regression fails fast instead of silently melting large scenarios.
func BenchmarkMediumLargeN(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			rng := sim.NewRand(uint64(n))
			// Scale the area with N so mean degree stays ~constant (sparse
			// regime, ~35 m decode range with the default link budget).
			side := 200 * math.Sqrt(float64(n)/100)
			pos := make([]Position, n)
			for i := range pos {
				pos[i] = Position{X: rng.Float64() * side, Y: rng.Float64() * side}
			}
			f := &frame.Frame{Kind: frame.Data, Src: 0, Dst: frame.Broadcast, MPDUBytes: 50}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				topo := NewPathLossTopology(DefaultPathLossConfig(), pos)
				k := sim.NewKernel()
				m := NewMedium(k, topo, sim.NewRand(1))
				for id := 0; id < n; id++ {
					m.Attach(frame.NodeID(id), HandlerFunc(func(*frame.Frame) {}))
				}
				// One TX and a few CCAs per 10 nodes, spread over time.
				for id := 0; id < n; id += 10 {
					src := frame.NodeID(id)
					if !m.Transmitting(src) {
						f.Src = src
						m.StartTX(src, f, 0)
					}
					m.CCA(frame.NodeID((id + 5) % n))
				}
				k.RunAll()
			}
		})
	}
}
