package radio

import (
	"testing"

	"qma/internal/frame"
	"qma/internal/sim"
)

// FuzzGraphTopologyLinks fuzzes the link layer's structural invariants: an
// arbitrary byte string becomes a graph (AddLink calls, including loops and
// duplicates), and the test asserts that AppendLinks and ClassifyLink agree
// exactly with CanDecode/CanSense, that enumeration is sorted/unique/
// self-free and symmetric, and — using the remaining bytes as a churn
// script — that a Medium's incrementally maintained rows keep matching a
// naive per-event re-classification. Committed seeds live in testdata/fuzz.
func FuzzGraphTopologyLinks(f *testing.F) {
	f.Add([]byte{5, 0, 1, 1, 2, 2, 3, 3, 0, 0, 0, 1, 2})
	f.Add([]byte{3, 0, 1, 0, 2, 1, 2, 9, 9})
	f.Add([]byte{12, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0, 1, 3, 5, 7, 2, 4, 6, 8, 250, 251})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := 2 + int(data[0]%14)
		g := NewGraphTopology(n)
		i := 1
		for ; i+1 < len(data) && i < 40; i += 2 {
			g.AddLink(frame.NodeID(int(data[i])%n), frame.NodeID(int(data[i+1])%n))
		}

		// Structural invariants of enumeration and classification.
		var buf []frame.NodeID
		for src := 0; src < n; src++ {
			s := frame.NodeID(src)
			buf = g.AppendLinks(s, buf[:0])
			for k, id := range buf {
				if id == s {
					t.Fatalf("AppendLinks(%d) contains the source", src)
				}
				if k > 0 && buf[k-1] >= id {
					t.Fatalf("AppendLinks(%d) not strictly ascending: %v", src, buf)
				}
			}
			member := make(map[frame.NodeID]bool, len(buf))
			for _, id := range buf {
				member[id] = true
			}
			for dst := 0; dst < n; dst++ {
				d := frame.NodeID(dst)
				decode, sense := g.ClassifyLink(s, d)
				if decode != g.CanDecode(s, d) || sense != g.CanSense(s, d) {
					t.Fatalf("ClassifyLink(%d,%d) = (%v,%v), predicates (%v,%v)",
						src, dst, decode, sense, g.CanDecode(s, d), g.CanSense(s, d))
				}
				if g.CanDecode(s, d) != g.CanDecode(d, s) {
					t.Fatalf("CanDecode(%d,%d) asymmetric", src, dst)
				}
				if (g.CanDecode(s, d) || g.CanSense(s, d)) != member[d] {
					t.Fatalf("AppendLinks(%d) membership of %d = %v, predicates say %v",
						src, dst, member[d], g.CanDecode(s, d))
				}
			}
		}

		// Churn script: the remaining bytes toggle node presence on a live
		// medium; after every toggle the incrementally maintained rows must
		// equal a naive re-classification over present nodes.
		m := NewMedium(sim.NewKernel(), g, sim.NewRand(1))
		m.EnableDynamics()
		present := make([]bool, n)
		for j := range present {
			present[j] = true
		}
		for ; i < len(data) && i < 80; i++ {
			id := int(data[i]) % n
			present[id] = !present[id]
			m.SetPresent(frame.NodeID(id), present[id])
			for src := 0; src < n; src++ {
				s := frame.NodeID(src)
				var want []frame.NodeID
				if present[src] {
					for dst := 0; dst < n; dst++ {
						if present[dst] && g.CanDecode(s, frame.NodeID(dst)) {
							want = append(want, frame.NodeID(dst))
						}
					}
				}
				if !equalIDs(m.DecodeNeighbors(s), want) {
					t.Fatalf("after toggling %d: decode row of %d = %v, naive %v",
						id, src, m.DecodeNeighbors(s), want)
				}
				if !equalIDs(m.SenseNeighbors(s), want) {
					t.Fatalf("after toggling %d: sense row of %d = %v, naive %v",
						id, src, m.SenseNeighbors(s), want)
				}
			}
		}
	})
}
