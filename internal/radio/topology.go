// Package radio simulates the wireless medium: who hears whom, receiver-side
// collisions, half-duplex constraints, clear channel assessment and
// probabilistic link loss. It provides two connectivity models — an explicit
// graph (used for the hidden-node scenarios, where the paper defines
// connectivity directly) and a log-distance path-loss model (our substitute
// for the FIT IoT-LAB testbed channel).
package radio

import (
	"math"

	"qma/internal/frame"
)

// Topology answers connectivity questions for a fixed set of nodes,
// identified by dense ids [0, NumNodes).
type Topology interface {
	// NumNodes reports how many nodes exist.
	NumNodes() int
	// CanDecode reports whether dst can receive (and is interfered by)
	// transmissions from src, absent collisions.
	CanDecode(src, dst frame.NodeID) bool
	// CanSense reports whether a CCA at dst detects a transmission by src.
	// Sensing range is never larger than decode range in this model
	// (energy-detection thresholds sit above receiver sensitivity).
	CanSense(src, dst frame.NodeID) bool
	// DeliveryProb is the probability a collision-free frame from src is
	// decoded by dst (models fading; 1 for ideal links).
	DeliveryProb(src, dst frame.NodeID) float64
}

// GraphTopology is an explicit connectivity graph: node i hears exactly the
// nodes in its adjacency set. Decode and sense sets coincide and links are
// lossless unless LossProb is set.
type GraphTopology struct {
	n   int
	adj []map[frame.NodeID]bool
	// LossProb is an optional independent per-frame loss probability applied
	// to every link (0 = ideal).
	LossProb float64
}

var _ Topology = (*GraphTopology)(nil)

// NewGraphTopology returns a graph over n nodes with no edges.
func NewGraphTopology(n int) *GraphTopology {
	adj := make([]map[frame.NodeID]bool, n)
	for i := range adj {
		adj[i] = make(map[frame.NodeID]bool)
	}
	return &GraphTopology{n: n, adj: adj}
}

// AddLink adds a bidirectional edge between a and b.
func (g *GraphTopology) AddLink(a, b frame.NodeID) {
	if a == b {
		return
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
}

// NumNodes implements Topology.
func (g *GraphTopology) NumNodes() int { return g.n }

// CanDecode implements Topology.
func (g *GraphTopology) CanDecode(src, dst frame.NodeID) bool {
	return src != dst && g.adj[src][dst]
}

// CanSense implements Topology.
func (g *GraphTopology) CanSense(src, dst frame.NodeID) bool {
	return g.CanDecode(src, dst)
}

// DeliveryProb implements Topology.
func (g *GraphTopology) DeliveryProb(src, dst frame.NodeID) float64 {
	return 1 - g.LossProb
}

// Neighbors returns the adjacency set of id (shared; callers must not
// mutate).
func (g *GraphTopology) Neighbors(id frame.NodeID) []frame.NodeID {
	out := make([]frame.NodeID, 0, len(g.adj[id]))
	for n := range g.adj[id] {
		out = append(out, n)
	}
	return out
}

// Position is a planar node coordinate in meters.
type Position struct{ X, Y float64 }

// Distance returns the Euclidean distance to q.
func (p Position) Distance(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// PathLossConfig parameterizes the log-distance channel used as the testbed
// substitute. Defaults (via DefaultPathLossConfig) follow the paper's
// Strasbourg settings: TX power −9 dBm / sensitivity −72 dBm for the tree,
// 3 dBm / −90 dBm for the star.
type PathLossConfig struct {
	// TxPowerDBm is the transmit power.
	TxPowerDBm float64
	// SensitivityDBm is the weakest decodable signal.
	SensitivityDBm float64
	// CCAMarginDB raises the energy-detection threshold above sensitivity
	// (802.15.4 allows up to 10 dB).
	CCAMarginDB float64
	// PathLossExponent is the log-distance exponent (2 free space, ~3 indoor).
	PathLossExponent float64
	// ReferenceLossDB is the loss at 1 m (≈40 dB at 2.4 GHz).
	ReferenceLossDB float64
	// ShadowSigmaDB is the per-link log-normal shadowing deviation; the
	// shadowing realization is fixed per link (frozen channel) and drawn
	// from ShadowSeed so topologies are reproducible.
	ShadowSigmaDB float64
	ShadowSeed    uint64
	// FadingLossProb is an independent per-frame loss probability on
	// decodable links (fast fading residual).
	FadingLossProb float64
}

// DefaultPathLossConfig returns an indoor-testbed-like parameterization.
func DefaultPathLossConfig() PathLossConfig {
	return PathLossConfig{
		TxPowerDBm:       -9,
		SensitivityDBm:   -72,
		CCAMarginDB:      10,
		PathLossExponent: 3.0,
		ReferenceLossDB:  40,
		ShadowSigmaDB:    0,
		FadingLossProb:   0,
	}
}

// PathLossTopology derives connectivity from node positions and a
// log-distance path-loss law with optional frozen shadowing.
type PathLossTopology struct {
	cfg PathLossConfig
	pos []Position
	// rssi[src][dst] is the received power in dBm.
	rssi [][]float64
}

var _ Topology = (*PathLossTopology)(nil)

// NewPathLossTopology computes the link matrix for the given positions.
func NewPathLossTopology(cfg PathLossConfig, positions []Position) *PathLossTopology {
	n := len(positions)
	t := &PathLossTopology{cfg: cfg, pos: positions, rssi: make([][]float64, n)}
	// Frozen symmetric shadowing per unordered pair.
	shadow := func(a, b int) float64 {
		if cfg.ShadowSigmaDB == 0 {
			return 0
		}
		if a > b {
			a, b = b, a
		}
		h := splitmixPair(cfg.ShadowSeed, uint64(a), uint64(b))
		// Convert two 32-bit halves to a normal via Box–Muller.
		u1 := (float64(h>>32) + 0.5) / (1 << 32)
		u2 := (float64(uint32(h)) + 0.5) / (1 << 32)
		return cfg.ShadowSigmaDB * math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
	for i := 0; i < n; i++ {
		t.rssi[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				t.rssi[i][j] = math.Inf(1)
				continue
			}
			d := positions[i].Distance(positions[j])
			if d < 0.1 {
				d = 0.1
			}
			pl := cfg.ReferenceLossDB + 10*cfg.PathLossExponent*math.Log10(d)
			t.rssi[i][j] = cfg.TxPowerDBm - pl + shadow(i, j)
		}
	}
	return t
}

func splitmixPair(seed, a, b uint64) uint64 {
	x := seed ^ (a * 0x9e3779b97f4a7c15) ^ (b * 0xbf58476d1ce4e5b9)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NumNodes implements Topology.
func (t *PathLossTopology) NumNodes() int { return len(t.pos) }

// RSSI reports the received power at dst for a transmission by src, in dBm.
func (t *PathLossTopology) RSSI(src, dst frame.NodeID) float64 { return t.rssi[src][dst] }

// CanDecode implements Topology.
func (t *PathLossTopology) CanDecode(src, dst frame.NodeID) bool {
	return src != dst && t.rssi[src][dst] >= t.cfg.SensitivityDBm
}

// CanSense implements Topology.
func (t *PathLossTopology) CanSense(src, dst frame.NodeID) bool {
	return src != dst && t.rssi[src][dst] >= t.cfg.SensitivityDBm+t.cfg.CCAMarginDB
}

// DeliveryProb implements Topology.
func (t *PathLossTopology) DeliveryProb(src, dst frame.NodeID) float64 {
	return 1 - t.cfg.FadingLossProb
}

// Positions returns the node coordinates (shared; callers must not mutate).
func (t *PathLossTopology) Positions() []Position { return t.pos }
