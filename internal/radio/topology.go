// Package radio simulates the wireless medium: who hears whom, receiver-side
// collisions, half-duplex constraints, clear channel assessment and
// probabilistic link loss. It provides two connectivity models — an explicit
// graph (used for the hidden-node scenarios, where the paper defines
// connectivity directly) and a log-distance path-loss model (our substitute
// for the FIT IoT-LAB testbed channel).
package radio

import (
	"math"
	"slices"

	"qma/internal/frame"
)

// Topology answers connectivity questions for a fixed set of nodes,
// identified by dense ids [0, NumNodes).
type Topology interface {
	// NumNodes reports how many nodes exist.
	NumNodes() int
	// CanDecode reports whether dst can receive (and is interfered by)
	// transmissions from src, absent collisions.
	CanDecode(src, dst frame.NodeID) bool
	// CanSense reports whether a CCA at dst detects a transmission by src.
	// Sensing range is never larger than decode range in this model
	// (energy-detection thresholds sit above receiver sensitivity).
	CanSense(src, dst frame.NodeID) bool
	// DeliveryProb is the probability a collision-free frame from src is
	// decoded by dst (models fading; 1 for ideal links).
	DeliveryProb(src, dst frame.NodeID) float64
}

// LinkEnumerator is implemented by topologies that can enumerate a node's
// potential links directly instead of being probed over all N² ordered
// pairs. AppendLinks appends every dst (ascending, src excluded) for which
// CanDecode(src, dst) or CanSense(src, dst) may hold to buf and returns the
// extended slice; consumers filter the candidates through the exact
// predicates, so a superset is permitted. The buffer is caller-owned
// (callers pass buf[:0] to reuse it across nodes), which keeps the topology
// itself stateless and therefore safe to share across the goroutines of the
// parallel replication engine. Both built-in topologies implement the
// interface, which is what keeps Medium construction (and memory) O(N + E).
type LinkEnumerator interface {
	AppendLinks(src frame.NodeID, buf []frame.NodeID) []frame.NodeID
}

// MobileTopology is implemented by topologies whose nodes can move at
// runtime. MoveNode updates one node's position and the topology's own
// spatial index; it does NOT touch any Medium built over the topology —
// callers go through Medium.MoveNode, which re-classifies the affected
// links incrementally. A topology being mutated is no longer safe to share
// across goroutines; scenario runners clone it per run.
type MobileTopology interface {
	Topology
	MoveNode(id frame.NodeID, p Position)
}

// CloneableTopology is implemented by topologies that can produce an
// independent deep copy. Scenario runners clone a topology before mutating
// it (e.g. scheduled MoveNode calls) so the original stays shareable across
// parallel replications.
type CloneableTopology interface {
	Topology
	// CloneTopology returns an independent copy; mutating the copy must not
	// affect the receiver.
	CloneTopology() Topology
}

// LinkClassifier is an optional fast path next to LinkEnumerator: one call
// evaluates both link predicates, letting consumers that need decode and
// sense classification (the Medium's CSR build) pay one RSSI computation
// per candidate pair instead of two. Implementations must agree exactly
// with CanDecode/CanSense.
type LinkClassifier interface {
	ClassifyLink(src, dst frame.NodeID) (decode, sense bool)
}

// PowerModel is the optional topology extension behind per-transmission
// power and SINR capture. LinkSignal reports, for the directed link
// src→dst, the received power of a reference-power transmission (dBm, or
// any scale consistent across the topology — capture only compares powers
// and their ratios) together with the dB margins the link keeps over the
// decode and sense thresholds: a transmission power-reduced by delta dB
// below the reference still decodes (is sensed) at dst iff
// delta <= decodeMarginDB (senseMarginDB). The margins must agree with
// CanDecode/CanSense at delta 0; both built-in topologies implement the
// interface. Topologies without an inherent power notion (GraphTopology)
// report equal received powers and unbounded margins, so reducing power
// never breaks a graph link and equal-power frames never capture.
type PowerModel interface {
	LinkSignal(src, dst frame.NodeID) (rxPowerDBm, decodeMarginDB, senseMarginDB float64)
}

// GraphTopology is an explicit connectivity graph: node i hears exactly the
// nodes in its adjacency set. Decode and sense sets coincide and links are
// lossless unless LossProb is set. Adjacency is stored as per-node sorted
// slices (not hash sets), so neighbor enumeration is allocation-free and
// deterministic.
type GraphTopology struct {
	n   int
	adj [][]frame.NodeID
	// LossProb is an optional independent per-frame loss probability applied
	// to every link (0 = ideal).
	LossProb float64
}

var (
	_ Topology       = (*GraphTopology)(nil)
	_ LinkEnumerator = (*GraphTopology)(nil)
)

// NewGraphTopology returns a graph over n nodes with no edges.
func NewGraphTopology(n int) *GraphTopology {
	return &GraphTopology{n: n, adj: make([][]frame.NodeID, n)}
}

// AddLink adds a bidirectional edge between a and b.
func (g *GraphTopology) AddLink(a, b frame.NodeID) {
	if a == b {
		return
	}
	g.insert(a, b)
	g.insert(b, a)
}

// insert adds dst to src's sorted adjacency slice (no-op when present).
func (g *GraphTopology) insert(src, dst frame.NodeID) {
	i, found := slices.BinarySearch(g.adj[src], dst)
	if found {
		return
	}
	g.adj[src] = slices.Insert(g.adj[src], i, dst)
}

// NumNodes implements Topology.
func (g *GraphTopology) NumNodes() int { return g.n }

// CanDecode implements Topology.
func (g *GraphTopology) CanDecode(src, dst frame.NodeID) bool {
	if src == dst {
		return false
	}
	_, found := slices.BinarySearch(g.adj[src], dst)
	return found
}

// CanSense implements Topology.
func (g *GraphTopology) CanSense(src, dst frame.NodeID) bool {
	return g.CanDecode(src, dst)
}

// DeliveryProb implements Topology.
func (g *GraphTopology) DeliveryProb(src, dst frame.NodeID) float64 {
	return 1 - g.LossProb
}

// Neighbors returns the adjacency list of id in ascending order. The slice
// is the topology's own storage — callers must not mutate it; it remains
// valid until the next AddLink touching id.
func (g *GraphTopology) Neighbors(id frame.NodeID) []frame.NodeID {
	return g.adj[id]
}

// AppendLinks implements LinkEnumerator (decode and sense sets coincide).
func (g *GraphTopology) AppendLinks(src frame.NodeID, buf []frame.NodeID) []frame.NodeID {
	return append(buf, g.adj[src]...)
}

// ClassifyLink implements LinkClassifier with a single adjacency lookup.
func (g *GraphTopology) ClassifyLink(src, dst frame.NodeID) (decode, sense bool) {
	d := g.CanDecode(src, dst)
	return d, d
}

// LinkSignal implements PowerModel. Graph links carry no path-loss notion:
// every link delivers the transmit power unattenuated (0 dB reference), so
// two same-power frames always tie (no capture) and deliberate power deltas
// translate 1:1 into receiver-side power gaps. Margins are unbounded —
// reducing power never severs an explicit graph link.
func (g *GraphTopology) LinkSignal(src, dst frame.NodeID) (rxPowerDBm, decodeMarginDB, senseMarginDB float64) {
	if !g.CanDecode(src, dst) {
		return math.Inf(-1), math.Inf(-1), math.Inf(-1)
	}
	return 0, math.Inf(1), math.Inf(1)
}

// Position is a planar node coordinate in meters.
type Position struct{ X, Y float64 }

// Distance returns the Euclidean distance to q.
func (p Position) Distance(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// PathLossConfig parameterizes the log-distance channel used as the testbed
// substitute. Defaults (via DefaultPathLossConfig) follow the paper's
// Strasbourg settings: TX power −9 dBm / sensitivity −72 dBm for the tree,
// 3 dBm / −90 dBm for the star.
type PathLossConfig struct {
	// TxPowerDBm is the transmit power.
	TxPowerDBm float64
	// SensitivityDBm is the weakest decodable signal.
	SensitivityDBm float64
	// CCAMarginDB raises the energy-detection threshold above sensitivity
	// (802.15.4 allows up to 10 dB).
	CCAMarginDB float64
	// PathLossExponent is the log-distance exponent (2 free space, ~3 indoor).
	PathLossExponent float64
	// ReferenceLossDB is the loss at 1 m (≈40 dB at 2.4 GHz).
	ReferenceLossDB float64
	// ShadowSigmaDB is the per-link log-normal shadowing deviation; the
	// shadowing realization is fixed per link (frozen channel) and drawn
	// from ShadowSeed so topologies are reproducible.
	ShadowSigmaDB float64
	ShadowSeed    uint64
	// FadingLossProb is an independent per-frame loss probability on
	// decodable links (fast fading residual).
	FadingLossProb float64
}

// DefaultPathLossConfig returns an indoor-testbed-like parameterization.
func DefaultPathLossConfig() PathLossConfig {
	return PathLossConfig{
		TxPowerDBm:       -9,
		SensitivityDBm:   -72,
		CCAMarginDB:      10,
		PathLossExponent: 3.0,
		ReferenceLossDB:  40,
		ShadowSigmaDB:    0,
		FadingLossProb:   0,
	}
}

// maxShadowGainDB bounds |shadow| for any link: Box–Muller with
// u1 >= 0.5/2³² and |cos| <= 1 yields at most sqrt(-2·ln(0.5/2³²)) ≈ 6.764
// standard deviations, so link budgets (and therefore neighbor ranges) stay
// finite even with shadowing enabled.
var maxShadowGainDB = math.Sqrt(-2 * math.Log(0.5/(1<<32)))

// PathLossTopology derives connectivity from node positions and a
// log-distance path-loss law with optional frozen shadowing.
//
// Memory is O(N): RSSI is a pure function of the two positions (plus the
// frozen per-pair shadowing draw) and is computed on demand instead of being
// materialized as an N×N matrix. Neighbor enumeration uses a uniform spatial
// grid over the positions — a range-bounded cell query — so building a
// Medium over the topology costs O(N + E) instead of O(N²).
type PathLossTopology struct {
	cfg PathLossConfig
	pos []Position

	// maxRange is the largest distance at which any link predicate can hold,
	// from the link budget plus the maximum shadowing gain.
	maxRange float64

	// Uniform grid in CSR form: node ids sorted by cell, cellOff[c] ..
	// cellOff[c+1] indexing cellNodes. reach is the number of neighboring
	// cells (per axis, each direction) a range query must visit: 1 when the
	// cell edge is >= maxRange, more when the cell edge was floored to keep
	// the cell count O(N).
	minX, minY float64
	cell       float64
	nx, ny     int
	reach      int
	cellOff    []int32
	cellNodes  []frame.NodeID

	// Dynamic index, nil until the first MoveNode: per-cell node slices
	// replace the CSR grid so single nodes can be moved in O(degree), and
	// nodes that wander outside the original bounding box live in the
	// overflow list every query additionally scans (bounded by the number
	// of out-of-bounds movers, zero in static scenarios).
	dynCells   [][]frame.NodeID
	dynOutside []frame.NodeID
}

var (
	_ Topology          = (*PathLossTopology)(nil)
	_ LinkEnumerator    = (*PathLossTopology)(nil)
	_ LinkClassifier    = (*PathLossTopology)(nil)
	_ MobileTopology    = (*PathLossTopology)(nil)
	_ CloneableTopology = (*PathLossTopology)(nil)
	_ PowerModel        = (*PathLossTopology)(nil)
	_ LinkClassifier    = (*GraphTopology)(nil)
	_ PowerModel        = (*GraphTopology)(nil)
)

// NewPathLossTopology indexes the given positions for neighbor queries.
// Unlike the original dense implementation it allocates O(N), not O(N²):
// a 10,000-node hall costs a few hundred kilobytes instead of 800 MB.
func NewPathLossTopology(cfg PathLossConfig, positions []Position) *PathLossTopology {
	t := &PathLossTopology{cfg: cfg, pos: positions}
	t.maxRange = t.rangeBound()
	t.buildGrid()
	return t
}

// rangeBound computes the largest distance at which CanDecode or CanSense
// can possibly hold. The weaker of the two thresholds bounds both (the CCA
// margin may in principle be negative), and the frozen shadowing draw is
// bounded by maxShadowGainDB standard deviations.
func (t *PathLossTopology) rangeBound() float64 {
	threshold := t.cfg.SensitivityDBm
	if m := t.cfg.SensitivityDBm + t.cfg.CCAMarginDB; m < threshold {
		threshold = m
	}
	budget := t.cfg.TxPowerDBm - t.cfg.ReferenceLossDB - threshold
	if t.cfg.ShadowSigmaDB != 0 {
		budget += math.Abs(t.cfg.ShadowSigmaDB) * maxShadowGainDB
	}
	if t.cfg.PathLossExponent <= 0 {
		return math.Inf(1)
	}
	d := math.Pow(10, budget/(10*t.cfg.PathLossExponent))
	// Distances are clamped to 0.1 m in rssi, so never query below that, and
	// inflate slightly so float rounding in Distance cannot drop a node that
	// sits exactly on the threshold circle.
	return math.Max(d, 0.1) * (1 + 1e-9)
}

// buildGrid sorts the nodes into a uniform grid. Cell-size heuristic: the
// cell edge equals maxRange (so a query visits only the 3×3 block around the
// source), floored just enough that the grid never exceeds ~4·N cells when
// the radio range is small relative to the deployment area; in that regime a
// query widens to the (2·reach+1)² block instead.
func (t *PathLossTopology) buildGrid() {
	n := len(t.pos)
	if n == 0 {
		t.cell, t.nx, t.ny, t.reach = 1, 1, 1, 1
		t.cellOff = make([]int32, 2)
		return
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range t.pos {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	w, h := maxX-minX, maxY-minY
	cell := t.maxRange
	if math.IsInf(cell, 1) {
		cell = math.Max(math.Max(w, h), 1)
	}
	// Floor the cell edge so nx*ny stays O(N) even when the range is tiny
	// relative to the area: at most ~4N cells.
	if floor := math.Sqrt(w * h / (4 * float64(n))); cell < floor {
		cell = floor
	}
	t.minX, t.minY, t.cell = minX, minY, cell
	t.nx = int(w/cell) + 1
	t.ny = int(h/cell) + 1
	if math.IsInf(t.maxRange, 1) {
		t.reach = t.nx + t.ny // covers the whole grid
	} else {
		t.reach = int(math.Ceil(t.maxRange / cell))
	}
	if t.reach < 1 {
		t.reach = 1
	}
	// Counting sort into CSR: offsets, then fill.
	cells := t.nx * t.ny
	t.cellOff = make([]int32, cells+1)
	for _, p := range t.pos {
		t.cellOff[t.cellIndex(p)+1]++
	}
	for c := 0; c < cells; c++ {
		t.cellOff[c+1] += t.cellOff[c]
	}
	t.cellNodes = make([]frame.NodeID, n)
	next := make([]int32, cells)
	for id, p := range t.pos {
		c := t.cellIndex(p)
		t.cellNodes[t.cellOff[c]+next[c]] = frame.NodeID(id)
		next[c]++
	}
}

// cellIndex maps a position to its grid cell.
func (t *PathLossTopology) cellIndex(p Position) int {
	cx := int((p.X - t.minX) / t.cell)
	cy := int((p.Y - t.minY) / t.cell)
	if cx >= t.nx {
		cx = t.nx - 1
	}
	if cy >= t.ny {
		cy = t.ny - 1
	}
	return cy*t.nx + cx
}

// AppendLinks implements LinkEnumerator: all nodes within maxRange of src,
// found by scanning the grid cells that can intersect the range disk,
// appended to buf in ascending id order. The topology holds no scratch of
// its own, so concurrent calls (parallel replications sharing one topology)
// are safe as long as each caller owns its buffer.
func (t *PathLossTopology) AppendLinks(src frame.NodeID, buf []frame.NodeID) []frame.NodeID {
	if t.dynCells != nil {
		return t.appendLinksDynamic(src, buf)
	}
	out := buf
	start := len(out)
	p := t.pos[src]
	cx := int((p.X - t.minX) / t.cell)
	cy := int((p.Y - t.minY) / t.cell)
	if cx >= t.nx {
		cx = t.nx - 1
	}
	if cy >= t.ny {
		cy = t.ny - 1
	}
	for dy := -t.reach; dy <= t.reach; dy++ {
		y := cy + dy
		if y < 0 || y >= t.ny {
			continue
		}
		for dx := -t.reach; dx <= t.reach; dx++ {
			x := cx + dx
			if x < 0 || x >= t.nx {
				continue
			}
			c := y*t.nx + x
			for _, id := range t.cellNodes[t.cellOff[c]:t.cellOff[c+1]] {
				if id == src {
					continue
				}
				if p.Distance(t.pos[id]) <= t.maxRange {
					out = append(out, id)
				}
			}
		}
	}
	slices.Sort(out[start:])
	return out
}

// appendLinksDynamic is the AppendLinks query over the per-cell dynamic
// index. The query center uses unclamped cell coordinates (a mover may sit
// outside the original bounding box), intersected with the grid, plus a
// scan of the out-of-bounds overflow list; the final distance check is the
// same as the static path's.
func (t *PathLossTopology) appendLinksDynamic(src frame.NodeID, buf []frame.NodeID) []frame.NodeID {
	out := buf
	start := len(out)
	p := t.pos[src]
	cx := cellCoord((p.X-t.minX)/t.cell, t.nx, t.reach)
	cy := cellCoord((p.Y-t.minY)/t.cell, t.ny, t.reach)
	for y := max(0, cy-t.reach); y <= min(t.ny-1, cy+t.reach); y++ {
		for x := max(0, cx-t.reach); x <= min(t.nx-1, cx+t.reach); x++ {
			for _, id := range t.dynCells[y*t.nx+x] {
				if id != src && p.Distance(t.pos[id]) <= t.maxRange {
					out = append(out, id)
				}
			}
		}
	}
	for _, id := range t.dynOutside {
		if id != src && p.Distance(t.pos[id]) <= t.maxRange {
			out = append(out, id)
		}
	}
	slices.Sort(out[start:])
	return out
}

// cellCoord converts a fractional cell coordinate to an int, clamped just
// outside the queryable range so far-away positions cannot overflow int
// conversion; reach-sized margins keep the grid intersection exact.
func cellCoord(v float64, n, reach int) int {
	lo, hi := float64(-reach-1), float64(n+reach)
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return int(math.Floor(v))
}

// storageCell maps a position to the dynamic cell it is stored in, or
// reports false for positions outside the grid (such nodes live in the
// overflow list). The binning must stay strict: a position past the last
// column/row may NOT be clamped into it, because appendLinksDynamic's query
// window assumes every stored node lies inside its cell's true extent —
// clamping would park a mover up to a full cell away from where queries
// look and silently lose links. Construction-time positions always bin
// in-grid (nx/ny are derived from the same division).
func (t *PathLossTopology) storageCell(p Position) (int, bool) {
	if p.X < t.minX || p.Y < t.minY {
		return 0, false
	}
	cx := int((p.X - t.minX) / t.cell)
	cy := int((p.Y - t.minY) / t.cell)
	if cx >= t.nx || cy >= t.ny {
		return 0, false
	}
	return cy*t.nx + cx, true
}

// enableDynamicGrid converts the CSR cell index into per-cell slices (plus
// the overflow list) so MoveNode can relocate single nodes. O(N) once;
// static queries are unaffected until the first MoveNode.
func (t *PathLossTopology) enableDynamicGrid() {
	if t.dynCells != nil {
		return
	}
	t.dynCells = make([][]frame.NodeID, t.nx*t.ny)
	for id := range t.pos {
		if c, ok := t.storageCell(t.pos[id]); ok {
			t.dynCells[c] = append(t.dynCells[c], frame.NodeID(id))
		} else {
			t.dynOutside = append(t.dynOutside, frame.NodeID(id))
		}
	}
}

// MoveNode implements MobileTopology: it updates id's position and its slot
// in the dynamic cell index (O(cell occupancy)). The first call converts
// the index; after that the topology must no longer be shared across
// goroutines.
func (t *PathLossTopology) MoveNode(id frame.NodeID, p Position) {
	t.enableDynamicGrid()
	if c, ok := t.storageCell(t.pos[id]); ok {
		t.dynCells[c] = removeID(t.dynCells[c], id)
	} else {
		t.dynOutside = removeID(t.dynOutside, id)
	}
	t.pos[id] = p
	if c, ok := t.storageCell(p); ok {
		t.dynCells[c] = append(t.dynCells[c], id)
	} else {
		t.dynOutside = append(t.dynOutside, id)
	}
}

// removeID deletes the first occurrence of id (order is not preserved; the
// enumeration sorts its output).
func removeID(s []frame.NodeID, id frame.NodeID) []frame.NodeID {
	for i, x := range s {
		if x == id {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// Clone returns an independent copy of the topology (positions and index)
// for runs that mutate node positions. The configuration is shared by
// value; the clone starts in static-index mode.
func (t *PathLossTopology) Clone() *PathLossTopology {
	return NewPathLossTopology(t.cfg, slices.Clone(t.pos))
}

// CloneTopology implements CloneableTopology.
func (t *PathLossTopology) CloneTopology() Topology { return t.Clone() }

// ClassifyLink implements LinkClassifier: one RSSI computation answers both
// predicates (identical comparisons to CanDecode/CanSense).
func (t *PathLossTopology) ClassifyLink(src, dst frame.NodeID) (decode, sense bool) {
	if src == dst {
		return false, false
	}
	rssi := t.RSSI(src, dst)
	return rssi >= t.cfg.SensitivityDBm, rssi >= t.cfg.SensitivityDBm+t.cfg.CCAMarginDB
}

// LinkSignal implements PowerModel: the received power is the on-demand
// RSSI at the configured (reference) TX power, and the margins are its
// headroom over the sensitivity and energy-detection thresholds. At delta 0
// the margin comparisons reduce to exactly CanDecode/CanSense.
func (t *PathLossTopology) LinkSignal(src, dst frame.NodeID) (rxPowerDBm, decodeMarginDB, senseMarginDB float64) {
	rssi := t.RSSI(src, dst)
	return rssi, rssi - t.cfg.SensitivityDBm, rssi - (t.cfg.SensitivityDBm + t.cfg.CCAMarginDB)
}

func splitmixPair(seed, a, b uint64) uint64 {
	x := seed ^ (a * 0x9e3779b97f4a7c15) ^ (b * 0xbf58476d1ce4e5b9)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// shadow is the frozen symmetric shadowing realization for the unordered
// pair (a, b), in dB.
func (t *PathLossTopology) shadow(a, b int) float64 {
	if t.cfg.ShadowSigmaDB == 0 {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	h := splitmixPair(t.cfg.ShadowSeed, uint64(a), uint64(b))
	// Convert two 32-bit halves to a normal via Box–Muller.
	u1 := (float64(h>>32) + 0.5) / (1 << 32)
	u2 := (float64(uint32(h)) + 0.5) / (1 << 32)
	return t.cfg.ShadowSigmaDB * math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NumNodes implements Topology.
func (t *PathLossTopology) NumNodes() int { return len(t.pos) }

// RSSI reports the received power at dst for a transmission by src, in dBm.
// It is computed on demand from the positions and the frozen shadowing draw
// (bit-identical to the former precomputed matrix).
func (t *PathLossTopology) RSSI(src, dst frame.NodeID) float64 {
	if src == dst {
		return math.Inf(1)
	}
	d := t.pos[src].Distance(t.pos[dst])
	if d < 0.1 {
		d = 0.1
	}
	pl := t.cfg.ReferenceLossDB + 10*t.cfg.PathLossExponent*math.Log10(d)
	return t.cfg.TxPowerDBm - pl + t.shadow(int(src), int(dst))
}

// CanDecode implements Topology.
func (t *PathLossTopology) CanDecode(src, dst frame.NodeID) bool {
	return src != dst && t.RSSI(src, dst) >= t.cfg.SensitivityDBm
}

// CanSense implements Topology.
func (t *PathLossTopology) CanSense(src, dst frame.NodeID) bool {
	return src != dst && t.RSSI(src, dst) >= t.cfg.SensitivityDBm+t.cfg.CCAMarginDB
}

// DeliveryProb implements Topology.
func (t *PathLossTopology) DeliveryProb(src, dst frame.NodeID) float64 {
	return 1 - t.cfg.FadingLossProb
}

// Positions returns the node coordinates (shared; callers must not mutate).
func (t *PathLossTopology) Positions() []Position { return t.pos }
