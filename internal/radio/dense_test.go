package radio

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"qma/internal/frame"
	"qma/internal/sim"
)

// This file keeps a faithful port of the pre-spatial-index medium — dense
// N×N sense matrix, CCA by scanning the global active set — as a test-only
// reference implementation, and drives it and the production Medium through
// identical randomized scripts asserting identical per-node NodeStats,
// identical delivery traces and identical CCA answers. It is the safety net
// for the O(N + E) refactor: any behavioural drift in the CSR link arrays,
// the busy counters or the early-event expiry shows up as a trace diff.

// denseTransmission mirrors the old transmission bookkeeping.
type denseTransmission struct {
	src       frame.NodeID
	f         *frame.Frame
	channel   uint8
	end       sim.Time
	corrupt   []bool
	receivers []frame.NodeID
}

// denseMedium is the old O(N²)-memory medium: precomputed decode lists, a
// boolean sense matrix and CCA as a linear scan over ongoing transmissions.
type denseMedium struct {
	k          *sim.Kernel
	topo       Topology
	rng        *sim.Rand
	handlers   []Handler
	stats      []NodeStats
	tuned      []uint8
	txUntil    []sim.Time
	rxCount    []int
	inflight   [][]*denseTransmission
	active     []*denseTransmission
	decodeNbrs [][]frame.NodeID
	senseNbrs  [][]bool
}

func newDenseMedium(k *sim.Kernel, topo Topology, rng *sim.Rand) *denseMedium {
	n := topo.NumNodes()
	m := &denseMedium{
		k:          k,
		topo:       topo,
		rng:        rng,
		handlers:   make([]Handler, n),
		stats:      make([]NodeStats, n),
		tuned:      make([]uint8, n),
		txUntil:    make([]sim.Time, n),
		rxCount:    make([]int, n),
		inflight:   make([][]*denseTransmission, n),
		decodeNbrs: make([][]frame.NodeID, n),
		senseNbrs:  make([][]bool, n),
	}
	for src := 0; src < n; src++ {
		m.senseNbrs[src] = make([]bool, n)
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			s, d := frame.NodeID(src), frame.NodeID(dst)
			if topo.CanDecode(s, d) {
				m.decodeNbrs[src] = append(m.decodeNbrs[src], d)
			}
			m.senseNbrs[src][dst] = topo.CanSense(s, d)
		}
	}
	return m
}

func (m *denseMedium) attach(id frame.NodeID, h Handler) { m.handlers[id] = h }

func (m *denseMedium) cca(id frame.NodeID) bool {
	m.stats[id].CCACount++
	for _, t := range m.active {
		if t.end > m.k.Now() && t.channel == m.tuned[id] && m.senseNbrs[t.src][id] {
			m.stats[id].CCABusy++
			return false
		}
	}
	return true
}

func (m *denseMedium) startTX(src frame.NodeID, f *frame.Frame) sim.Time {
	now := m.k.Now()
	dur := f.Duration()
	end := now + dur
	m.txUntil[src] = end
	m.stats[src].TxCount++
	m.stats[src].TxAirtime += dur

	t := &denseTransmission{src: src, f: f, channel: f.Channel, end: end}
	for _, r := range m.decodeNbrs[src] {
		if m.tuned[r] == f.Channel {
			t.receivers = append(t.receivers, r)
			t.corrupt = append(t.corrupt, false)
		}
	}
	m.active = append(m.active, t)
	m.corruptAllAt(src)
	for i, r := range t.receivers {
		if m.txUntil[r] > now {
			t.corrupt[i] = true
		}
		if m.rxCount[r] > 0 {
			t.corrupt[i] = true
			m.corruptAllAt(r)
		}
		m.rxCount[r]++
		m.inflight[r] = append(m.inflight[r], t)
	}
	m.k.At(end, func() { m.endTX(t) })
	return end
}

func (m *denseMedium) corruptAllAt(id frame.NodeID) {
	for _, t := range m.inflight[id] {
		for i, r := range t.receivers {
			if r == id {
				t.corrupt[i] = true
			}
		}
	}
}

func (m *denseMedium) endTX(t *denseTransmission) {
	for i, a := range m.active {
		if a == t {
			m.active[i] = m.active[len(m.active)-1]
			m.active = m.active[:len(m.active)-1]
			break
		}
	}
	for i, r := range t.receivers {
		m.rxCount[r]--
		fl := m.inflight[r]
		for j, x := range fl {
			if x == t {
				fl[j] = fl[len(fl)-1]
				m.inflight[r] = fl[:len(fl)-1]
				break
			}
		}
		if t.corrupt[i] {
			m.stats[r].RxCollided++
			continue
		}
		if m.tuned[r] != t.channel {
			m.stats[r].RxCollided++
			continue
		}
		if p := m.topo.DeliveryProb(t.src, r); p < 1 && !m.rng.Bool(p) {
			m.stats[r].RxFaded++
			continue
		}
		m.stats[r].RxDelivered++
		if h := m.handlers[r]; h != nil {
			h.Deliver(t.f)
		}
	}
}

// delivery is one trace entry: who decoded whose frame at what time.
type delivery struct {
	at       sim.Time
	src, dst frame.NodeID
}

// diffOp is one scripted medium operation.
type diffOp struct {
	at      sim.Time
	kind    uint8 // 0 = StartTX, 1 = CCA, 2 = SetTuned
	node    frame.NodeID
	channel uint8
	bytes   int
}

// randomScript draws a reproducible operation schedule. TX lengths and
// timing are chosen so transmissions frequently overlap and CCA instants
// frequently coincide exactly with transmission ends (the boundary the
// early-event expiry must get right).
func randomScript(rng *sim.Rand, n, ops int) []diffOp {
	script := make([]diffOp, ops)
	at := sim.Time(0)
	for i := range script {
		at += sim.Time(rng.Intn(200)) // dense enough to overlap 32-640 symbol frames
		op := diffOp{at: at, node: frame.NodeID(rng.Intn(n))}
		switch rng.Intn(4) {
		case 0, 1:
			op.kind = 0
			op.bytes = 5 + rng.Intn(100)
			op.channel = uint8(rng.Intn(3))
		case 2:
			op.kind = 1
		default:
			op.kind = 2
			op.channel = uint8(rng.Intn(3))
		}
		script[i] = op
	}
	return script
}

// runScript drives one medium implementation through the script and returns
// the delivery trace, the CCA answers and the final stats.
func runScript(topo Topology, seed uint64, script []diffOp,
	attach func(k *sim.Kernel, rng *sim.Rand) (
		cca func(frame.NodeID) bool,
		startTX func(frame.NodeID, *frame.Frame) sim.Time,
		setTuned func(frame.NodeID, uint8),
		transmitting func(frame.NodeID) bool,
		register func(frame.NodeID, Handler),
		stats func(frame.NodeID) NodeStats,
	),
) (trace []delivery, ccaAnswers []bool, stats []NodeStats) {
	k := sim.NewKernel()
	cca, startTX, setTuned, transmitting, register, stat := attach(k, sim.NewRand(seed))
	n := topo.NumNodes()
	for i := 0; i < n; i++ {
		id := frame.NodeID(i)
		register(id, HandlerFunc(func(f *frame.Frame) {
			trace = append(trace, delivery{at: k.Now(), src: f.Src, dst: id})
		}))
	}
	for _, op := range script {
		op := op
		k.At(op.at, func() {
			switch op.kind {
			case 0:
				if transmitting(op.node) {
					return
				}
				f := &frame.Frame{Kind: frame.Data, Src: op.node, Dst: frame.Broadcast,
					MPDUBytes: op.bytes, Channel: op.channel}
				startTX(op.node, f)
			case 1:
				if transmitting(op.node) {
					return
				}
				ccaAnswers = append(ccaAnswers, cca(op.node))
			case 2:
				setTuned(op.node, op.channel)
			}
		})
	}
	k.RunAll()
	stats = make([]NodeStats, n)
	for i := range stats {
		stats[i] = stat(frame.NodeID(i))
	}
	return trace, ccaAnswers, stats
}

func runScriptIndexed(topo Topology, seed uint64, script []diffOp) ([]delivery, []bool, []NodeStats) {
	return runScript(topo, seed, script, func(k *sim.Kernel, rng *sim.Rand) (
		func(frame.NodeID) bool, func(frame.NodeID, *frame.Frame) sim.Time,
		func(frame.NodeID, uint8), func(frame.NodeID) bool,
		func(frame.NodeID, Handler), func(frame.NodeID) NodeStats,
	) {
		m := NewMedium(k, topo, rng)
		startTX := func(id frame.NodeID, f *frame.Frame) sim.Time { return m.StartTX(id, f, 0) }
		return m.CCA, startTX, m.SetTuned, m.Transmitting, m.Attach, m.Stats
	})
}

func runScriptDense(topo Topology, seed uint64, script []diffOp) ([]delivery, []bool, []NodeStats) {
	return runScript(topo, seed, script, func(k *sim.Kernel, rng *sim.Rand) (
		func(frame.NodeID) bool, func(frame.NodeID, *frame.Frame) sim.Time,
		func(frame.NodeID, uint8), func(frame.NodeID) bool,
		func(frame.NodeID, Handler), func(frame.NodeID) NodeStats,
	) {
		m := newDenseMedium(k, topo, rng)
		transmitting := func(id frame.NodeID) bool { return m.txUntil[id] > k.Now() }
		stats := func(id frame.NodeID) NodeStats { return m.stats[id] }
		return m.cca, m.startTX, m.tune, transmitting, m.attach, stats
	})
}

func (m *denseMedium) tune(id frame.NodeID, ch uint8) { m.tuned[id] = ch }

func compareRuns(t *testing.T, label string, topo Topology, seed uint64, script []diffOp) {
	t.Helper()
	trace1, cca1, stats1 := runScriptDense(topo, seed, script)
	trace2, cca2, stats2 := runScriptIndexed(topo, seed, script)
	if len(cca1) != len(cca2) {
		t.Fatalf("%s: CCA answer count %d vs %d", label, len(cca1), len(cca2))
	}
	for i := range cca1 {
		if cca1[i] != cca2[i] {
			t.Fatalf("%s: CCA answer %d: dense %v, indexed %v", label, i, cca1[i], cca2[i])
		}
	}
	if len(trace1) != len(trace2) {
		t.Fatalf("%s: delivery trace length %d vs %d", label, len(trace1), len(trace2))
	}
	for i := range trace1 {
		if trace1[i] != trace2[i] {
			t.Fatalf("%s: delivery %d: dense %+v, indexed %+v", label, i, trace1[i], trace2[i])
		}
	}
	for i := range stats1 {
		if stats1[i] != stats2[i] {
			t.Fatalf("%s: node %d stats: dense %+v, indexed %+v", label, i, stats1[i], stats2[i])
		}
	}
}

// randomGraph draws an Erdős–Rényi-ish graph with the given edge probability.
func randomGraph(rng *sim.Rand, n int, p float64) *GraphTopology {
	g := NewGraphTopology(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddLink(frame.NodeID(i), frame.NodeID(j))
			}
		}
	}
	return g
}

func TestDifferentialGraphMedium(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := sim.NewRand(uint64(1000 + trial))
		n := 3 + rng.Intn(20)
		g := randomGraph(rng, n, 0.1+rng.Float64()*0.6)
		g.LossProb = float64(rng.Intn(3)) * 0.25
		script := randomScript(rng, n, 400)
		compareRuns(t, fmt.Sprintf("graph trial %d (n=%d)", trial, n), g, uint64(trial), script)
	}
}

func TestDifferentialPathLossMedium(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := sim.NewRand(uint64(2000 + trial))
		n := 3 + rng.Intn(30)
		cfg := DefaultPathLossConfig()
		cfg.FadingLossProb = float64(rng.Intn(3)) * 0.2
		if trial%2 == 0 {
			cfg.ShadowSigmaDB = 4
			cfg.ShadowSeed = uint64(trial)
		}
		pos := make([]Position, n)
		for i := range pos {
			pos[i] = Position{X: rng.Float64() * 40, Y: rng.Float64() * 40}
		}
		pt := NewPathLossTopology(cfg, pos)
		script := randomScript(rng, n, 400)
		compareRuns(t, fmt.Sprintf("pathloss trial %d (n=%d)", trial, n), pt, uint64(trial), script)
	}
}

// TestDifferentialCCAAtExactTransmissionEnd pins the boundary the busy
// counters must reproduce: a CCA at exactly a transmission's end instant,
// scheduled before the transmission started, must report the channel clear
// (the old scan's strict `end > now`).
func TestDifferentialCCAAtExactTransmissionEnd(t *testing.T) {
	g := NewGraphTopology(2)
	g.AddLink(0, 1)
	k := sim.NewKernel()
	m := NewMedium(k, g, sim.NewRand(1))
	m.Attach(0, HandlerFunc(func(*frame.Frame) {}))
	m.Attach(1, HandlerFunc(func(*frame.Frame) {}))
	f := dataFrame(0, 0)
	end := frame.AirTime(f.MPDUBytes)
	var midBusy, atEndClear bool
	// The CCA probes are scheduled before StartTX runs, so their heap
	// sequence numbers are lower than the busy-expiry event's.
	k.At(end/2, func() { midBusy = !m.CCA(1) })
	k.At(end, func() { atEndClear = m.CCA(1) })
	k.At(0, func() { m.StartTX(0, f, 0) })
	k.RunAll()
	if !midBusy {
		t.Error("CCA mid-transmission reported clear")
	}
	if !atEndClear {
		t.Error("CCA at the exact transmission end reported busy")
	}
}

// TestPathLossTopologyMatchesDenseMatrix cross-checks the on-demand RSSI and
// the grid-backed neighbor enumeration against a brute-force dense matrix.
func TestPathLossTopologyMatchesDenseMatrix(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := sim.NewRand(uint64(3000 + trial))
		n := 2 + rng.Intn(40)
		cfg := DefaultPathLossConfig()
		switch trial % 3 {
		case 1:
			cfg.ShadowSigmaDB = 6
			cfg.ShadowSeed = uint64(trial * 7)
		case 2:
			cfg.TxPowerDBm = 3
			cfg.SensitivityDBm = -90
		}
		side := 5 + rng.Float64()*200
		pos := make([]Position, n)
		for i := range pos {
			pos[i] = Position{X: rng.Float64() * side, Y: rng.Float64() * side}
		}
		pt := NewPathLossTopology(cfg, pos)

		// Dense reference, computed exactly as the old matrix fill did.
		rssi := make([][]float64, n)
		for i := 0; i < n; i++ {
			rssi[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				if i == j {
					rssi[i][j] = math.Inf(1)
					continue
				}
				d := pos[i].Distance(pos[j])
				if d < 0.1 {
					d = 0.1
				}
				pl := cfg.ReferenceLossDB + 10*cfg.PathLossExponent*math.Log10(d)
				rssi[i][j] = cfg.TxPowerDBm - pl + pt.shadow(i, j)
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				si, sj := frame.NodeID(i), frame.NodeID(j)
				if got := pt.RSSI(si, sj); got != rssi[i][j] {
					t.Fatalf("trial %d: RSSI(%d,%d) = %v, dense %v", trial, i, j, got, rssi[i][j])
				}
				wantDecode := i != j && rssi[i][j] >= cfg.SensitivityDBm
				wantSense := i != j && rssi[i][j] >= cfg.SensitivityDBm+cfg.CCAMarginDB
				if got := pt.CanDecode(si, sj); got != wantDecode {
					t.Fatalf("trial %d: CanDecode(%d,%d) = %v, dense %v", trial, i, j, got, wantDecode)
				}
				if got := pt.CanSense(si, sj); got != wantSense {
					t.Fatalf("trial %d: CanSense(%d,%d) = %v, dense %v", trial, i, j, got, wantSense)
				}
			}
			// The grid enumeration must contain every decodable/sensable dst.
			links := pt.AppendLinks(frame.NodeID(i), nil)
			member := make(map[frame.NodeID]bool, len(links))
			for k2, id := range links {
				member[id] = true
				if k2 > 0 && links[k2-1] >= id {
					t.Fatalf("trial %d: Links(%d) not ascending: %v", trial, i, links)
				}
			}
			for j := 0; j < n; j++ {
				sj := frame.NodeID(j)
				if (pt.CanDecode(frame.NodeID(i), sj) || pt.CanSense(frame.NodeID(i), sj)) && !member[sj] {
					t.Fatalf("trial %d: Links(%d) misses linked node %d", trial, i, j)
				}
			}
		}
	}
}

// TestMediumMemoryIsLinear pins the acceptance criterion that no N×N
// allocation hides under internal/radio: a 10,000-node sparse topology must
// build a medium whose link arrays are sized by E, not N².
func TestMediumMemoryIsLinear(t *testing.T) {
	const n = 10000
	rng := sim.NewRand(42)
	pos := make([]Position, n)
	// ~35 m decode range (default config) in a 2 km square: sparse.
	for i := range pos {
		pos[i] = Position{X: rng.Float64() * 2000, Y: rng.Float64() * 2000}
	}
	pt := NewPathLossTopology(DefaultPathLossConfig(), pos)
	k := sim.NewKernel()
	m := NewMedium(k, pt, sim.NewRand(1))
	edges := len(m.decodeArr)
	if edges == 0 {
		t.Fatal("degenerate topology: no edges")
	}
	if edges > n*60 {
		t.Fatalf("decode CSR holds %d entries for %d nodes — not sparse", edges, n)
	}
	if len(m.senseArr) > edges {
		t.Fatalf("sense CSR (%d) larger than decode CSR (%d)", len(m.senseArr), edges)
	}
}

// TestConcurrentMediumBuildOverSharedTopology pins that a topology is safe
// to share read-only across goroutines (the parallel replication engine
// builds one Medium per replication over a shared *Network). A scratch
// buffer inside the topology would fail this under -race.
func TestConcurrentMediumBuildOverSharedTopology(t *testing.T) {
	rng := sim.NewRand(99)
	pos := make([]Position, 300)
	for i := range pos {
		pos[i] = Position{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	pt := NewPathLossTopology(DefaultPathLossConfig(), pos)
	ref := NewMedium(sim.NewKernel(), pt, sim.NewRand(1))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := NewMedium(sim.NewKernel(), pt, sim.NewRand(1))
			for src := 0; src < 300; src++ {
				a, b := ref.DecodeNeighbors(frame.NodeID(src)), m.DecodeNeighbors(frame.NodeID(src))
				if len(a) != len(b) {
					t.Errorf("node %d: %d vs %d decode neighbors", src, len(a), len(b))
					return
				}
				for i := range a {
					if a[i] != b[i] {
						t.Errorf("node %d: neighbor %d differs", src, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
