package radio

import (
	"testing"
	"testing/quick"

	"qma/internal/frame"
	"qma/internal/sim"
)

// rig builds a kernel+medium over an explicit graph and collects deliveries.
type rig struct {
	k     *sim.Kernel
	m     *Medium
	recvd map[frame.NodeID][]*frame.Frame
}

func newRig(t *testing.T, n int, links [][2]int) *rig {
	t.Helper()
	g := NewGraphTopology(n)
	for _, l := range links {
		g.AddLink(frame.NodeID(l[0]), frame.NodeID(l[1]))
	}
	k := sim.NewKernel()
	r := &rig{k: k, m: NewMedium(k, g, sim.NewRand(1)), recvd: make(map[frame.NodeID][]*frame.Frame)}
	for i := 0; i < n; i++ {
		id := frame.NodeID(i)
		r.m.Attach(id, HandlerFunc(func(f *frame.Frame) {
			r.recvd[id] = append(r.recvd[id], f)
		}))
	}
	return r
}

func dataFrame(src frame.NodeID, ch uint8) *frame.Frame {
	return &frame.Frame{Kind: frame.Data, Src: src, Dst: frame.Broadcast, MPDUBytes: 20, Channel: ch}
}

func TestDeliveryToDecodeNeighbors(t *testing.T) {
	r := newRig(t, 3, [][2]int{{0, 1}, {1, 2}}) // chain: 0-1-2
	r.m.StartTX(0, dataFrame(0, 0), 0)
	r.k.RunAll()
	if len(r.recvd[1]) != 1 {
		t.Errorf("node 1 received %d frames, want 1", len(r.recvd[1]))
	}
	if len(r.recvd[2]) != 0 {
		t.Errorf("node 2 received %d frames, want 0 (out of range)", len(r.recvd[2]))
	}
	st := r.m.Stats(1)
	if st.RxDelivered != 1 || st.RxCollided != 0 {
		t.Errorf("stats at 1: %+v", st)
	}
}

func TestOverlappingTransmissionsCollide(t *testing.T) {
	r := newRig(t, 3, [][2]int{{0, 1}, {1, 2}}) // hidden pair 0,2 at 1
	r.m.StartTX(0, dataFrame(0, 0), 0)
	r.k.Schedule(frame.AirTime(20)/2, func() { r.m.StartTX(2, dataFrame(2, 0), 0) })
	r.k.RunAll()
	if len(r.recvd[1]) != 0 {
		t.Errorf("node 1 decoded %d frames despite the collision", len(r.recvd[1]))
	}
	if st := r.m.Stats(1); st.RxCollided != 2 {
		t.Errorf("RxCollided = %d, want 2", st.RxCollided)
	}
}

func TestBackToBackTransmissionsDoNotCollide(t *testing.T) {
	r := newRig(t, 2, [][2]int{{0, 1}})
	f := dataFrame(0, 0)
	end := r.m.StartTX(0, f, 0)
	r.k.At(end, func() { r.m.StartTX(0, dataFrame(0, 0), 0) })
	r.k.RunAll()
	if len(r.recvd[1]) != 2 {
		t.Errorf("node 1 received %d frames, want 2", len(r.recvd[1]))
	}
}

func TestHalfDuplexReceiverLosesFrame(t *testing.T) {
	r := newRig(t, 2, [][2]int{{0, 1}})
	// Node 1 starts transmitting; node 0's simultaneous frame is lost at 1.
	r.m.StartTX(1, dataFrame(1, 0), 0)
	r.m.StartTX(0, dataFrame(0, 0), 0)
	r.k.RunAll()
	if len(r.recvd[1]) != 0 {
		t.Errorf("transmitting node decoded a frame")
	}
	// Node 0 also cannot decode node 1's frame: it transmitted during it.
	if len(r.recvd[0]) != 0 {
		t.Errorf("node 0 decoded while transmitting")
	}
}

func TestCCASensesOnlyTunedChannel(t *testing.T) {
	r := newRig(t, 2, [][2]int{{0, 1}})
	r.m.StartTX(0, dataFrame(0, 3), 0)
	if !r.m.CCA(1) {
		t.Error("CCA on channel 0 busy although the transmission is on channel 3")
	}
	r.m.SetTuned(1, 3)
	if r.m.CCA(1) {
		t.Error("CCA on channel 3 clear although a transmission is active")
	}
	st := r.m.Stats(1)
	if st.CCACount != 2 || st.CCABusy != 1 {
		t.Errorf("CCA stats: %+v", st)
	}
}

func TestChannelSeparation(t *testing.T) {
	r := newRig(t, 3, [][2]int{{0, 1}, {2, 1}})
	// Two same-time transmissions on different channels; the receiver tuned
	// to channel 2 decodes only that one.
	r.m.SetTuned(1, 2)
	r.m.StartTX(0, dataFrame(0, 2), 0)
	r.m.StartTX(2, dataFrame(2, 5), 0)
	r.k.RunAll()
	if len(r.recvd[1]) != 1 || r.recvd[1][0].Src != 0 {
		t.Errorf("node 1 received %v, want exactly the channel-2 frame", r.recvd[1])
	}
}

func TestRetuningAwayLosesFrame(t *testing.T) {
	r := newRig(t, 2, [][2]int{{0, 1}})
	r.m.SetTuned(1, 4)
	r.m.StartTX(0, dataFrame(0, 4), 0)
	// Receiver retunes away mid-flight.
	r.k.Schedule(10, func() { r.m.SetTuned(1, 0) })
	r.k.RunAll()
	if len(r.recvd[1]) != 0 {
		t.Error("frame decoded despite the receiver retuning away")
	}
}

func TestFadingLoss(t *testing.T) {
	g := NewGraphTopology(2)
	g.AddLink(0, 1)
	g.LossProb = 1 // always fade
	k := sim.NewKernel()
	m := NewMedium(k, g, sim.NewRand(1))
	got := 0
	m.Attach(0, HandlerFunc(func(*frame.Frame) {}))
	m.Attach(1, HandlerFunc(func(*frame.Frame) { got++ }))
	m.StartTX(0, dataFrame(0, 0), 0)
	k.RunAll()
	if got != 0 {
		t.Errorf("frame delivered despite LossProb=1")
	}
	if st := m.Stats(1); st.RxFaded != 1 {
		t.Errorf("RxFaded = %d, want 1", st.RxFaded)
	}
}

func TestStartTXWhileTransmittingPanics(t *testing.T) {
	r := newRig(t, 2, [][2]int{{0, 1}})
	r.m.StartTX(0, dataFrame(0, 0), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for overlapping TX at one node")
		}
	}()
	r.m.StartTX(0, dataFrame(0, 0), 0)
}

func TestPathLossTopologyLinkBudget(t *testing.T) {
	cfg := DefaultPathLossConfig() // -9 dBm TX, -72 dBm sensitivity, exponent 3
	pos := []Position{{0, 0}, {5, 0}, {100, 0}}
	pt := NewPathLossTopology(cfg, pos)
	// 5 m: loss = 40 + 30*log10(5) ≈ 61 dB → RSSI ≈ -70 dBm > -72: decodable.
	if !pt.CanDecode(0, 1) {
		t.Errorf("5 m link should decode (RSSI %.1f)", pt.RSSI(0, 1))
	}
	// 100 m: loss = 40 + 60 = 100 dB → RSSI -109: dead.
	if pt.CanDecode(0, 2) {
		t.Errorf("100 m link should not decode (RSSI %.1f)", pt.RSSI(0, 2))
	}
	// Sensing threshold sits CCAMarginDB above sensitivity.
	if pt.CanSense(0, 1) != (pt.RSSI(0, 1) >= cfg.SensitivityDBm+cfg.CCAMarginDB) {
		t.Error("CanSense inconsistent with margin")
	}
	// No self-links.
	if pt.CanDecode(1, 1) {
		t.Error("self-link decodable")
	}
}

func TestPathLossSymmetryProperty(t *testing.T) {
	cfg := DefaultPathLossConfig()
	cfg.ShadowSigmaDB = 4
	cfg.ShadowSeed = 99
	prop := func(ax, ay, bx, by int8) bool {
		pos := []Position{{float64(ax), float64(ay)}, {float64(bx), float64(by)}}
		pt := NewPathLossTopology(cfg, pos)
		// Frozen shadowing must be symmetric per link.
		return pt.RSSI(0, 1) == pt.RSSI(1, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
