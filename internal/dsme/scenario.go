package dsme

import (
	"fmt"
	"time"

	"qma/internal/barring"
	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/radio"
	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/superframe"
	"qma/internal/topo"
	"qma/internal/traffic"
)

// ScenarioConfig describes a §6.3 data-collection run: every non-sink node
// generates primary data towards the center with a fluctuating Poisson rate;
// primary packets travel in GTS slots, and the resulting (de)allocation
// handshakes plus periodic route-discovery broadcasts form the secondary
// traffic carried by the MAC under test during the CAP.
type ScenarioConfig struct {
	// Network is the topology with routing (usually topo.Rings).
	Network *topo.Network
	// MAC selects the CAP channel access scheme.
	MAC scenario.MACKind
	// QMA tunes QMA engines (ignored for CSMA runs).
	QMA scenario.QMAOptions
	// Seed selects the random streams.
	Seed uint64
	// Duration is the total simulated time.
	Duration sim.Time
	// Warmup opens the measurement window (the paper uses 200 s "to allow
	// for network formation"); traffic, slot allocation and learning run
	// from TrafficStart so the network has formed when measuring begins.
	Warmup sim.Time
	// TrafficStart delays the primary sources (0 selects 5 s).
	TrafficStart sim.Time
	// Phases is the per-node primary rate schedule. Nil selects the paper's
	// alternation of δ=1 and δ=10 packets/s every 5 s.
	Phases []traffic.Phase
	// BroadcastPeriod is the route-discovery hello interval (0 selects 2 s;
	// AODV's default hello interval is 1 s). The periodic broadcasts are
	// part of the secondary traffic and, being periodic, are exactly the
	// kind of hidden pattern QMA learns.
	BroadcastPeriod sim.Time
	// MaxTxSlots caps the GTS a node may hold (0 selects the CFP width).
	MaxTxSlots int
	// Barring configures sink-side load-adaptive access-class barring for
	// the CAP engines: the barring factor rides the (here: explicit DSME)
	// beacon each beacon interval, and the nodes gate fresh CAP
	// channel-access attempts on it. The zero value disables barring —
	// byte-identical to a pre-barring build.
	Barring barring.Config
	// EventBudget truncates the run after this many kernel events when
	// positive; WallBudget truncates it after this much real time. Both mark
	// ScenarioResult.Truncated, like scenario.Config's fields of the same
	// names.
	EventBudget uint64
	WallBudget  time.Duration
	// InvariantChecks arms the kernel and medium runtime self-checks.
	InvariantChecks bool
	// Arena, when non-nil, recycles the run's frame pool and per-node
	// hot-state slab across back-to-back runs of one worker (see
	// scenario.Config.Arena). Results are byte-identical with or without it.
	Arena *scenario.Arena
}

// ScenarioResult carries the §6.3 metrics.
type ScenarioResult struct {
	// Metrics is the network-wide counter snapshot.
	Metrics Metrics
	// AllocationsPerSecond counts completed (de)allocation handshakes per
	// measured second (the "twice more TDMA-slots per second" claim).
	AllocationsPerSecond float64
	// Nodes are the per-node DSME counters.
	Nodes []NodeStats
	// CAP are the per-node MAC counters of the CAP engines.
	CAP []mac.Stats
	// SlotsOwned is the final number of TX slots per node.
	SlotsOwned []int
	// Truncated reports that the run was cut short by EventBudget or
	// WallBudget before reaching Duration.
	Truncated bool
}

// RunScenario executes a DSME data-collection run.
func RunScenario(cfg ScenarioConfig) *ScenarioResult {
	if cfg.Network == nil {
		panic("dsme: Network is required")
	}
	if cfg.Duration <= 0 {
		panic("dsme: Duration must be positive")
	}
	if cfg.Phases == nil {
		cfg.Phases = []traffic.Phase{
			{Rate: 1, Duration: 5 * sim.Second},
			{Rate: 10, Duration: 5 * sim.Second},
		}
	}
	if cfg.BroadcastPeriod <= 0 {
		cfg.BroadcastPeriod = 2 * sim.Second
	}
	if cfg.TrafficStart <= 0 {
		cfg.TrafficStart = 5 * sim.Second
	}

	kernel := sim.NewKernel()
	clock := superframe.NewClock(superframe.DefaultConfig())
	medium := radio.NewMedium(kernel, cfg.Network.Topology, sim.NewRandStream(cfg.Seed, 1000))
	if cfg.EventBudget > 0 || cfg.WallBudget > 0 {
		kernel.SetBudget(cfg.EventBudget, cfg.WallBudget)
	}
	if cfg.InvariantChecks {
		kernel.SetInvariantChecks(true)
		medium.SetInvariantChecks(true)
	}
	metrics := &Metrics{}
	pool := &frame.Pool{}
	scratch := &mac.Scratch{}
	if cfg.Arena != nil {
		pool, scratch = cfg.Arena.Begin()
	}

	n := cfg.Network.NumNodes()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		id := frame.NodeID(i)
		node := NewNode(NodeConfig{
			ID:         id,
			Kernel:     kernel,
			Medium:     medium,
			Clock:      clock,
			Parent:     cfg.Network.Parent[i],
			Sink:       cfg.Network.Sink,
			Rng:        sim.NewRandStream(cfg.Seed, 5000+uint64(i)),
			MaxTxSlots: cfg.MaxTxSlots,
			Metrics:    metrics,
			FramePool:  pool,
		})
		// Like internal/scenario, the barring RNG stream (4000+id) only
		// exists when barring is configured, keeping zero-valued configs
		// byte-identical.
		var barringRng *sim.Rand
		if cfg.Barring.Enabled() {
			barringRng = sim.NewRandStream(cfg.Seed, 4000+uint64(i))
		}
		engine := scenario.BuildEngine(cfg.MAC, scenario.DefaultQMAOptions(cfg.MAC, cfg.QMA), mac.Config{
			ID:         id,
			Kernel:     kernel,
			Medium:     medium,
			Clock:      clock,
			OnCommand:  node.CommandHook(),
			FramePool:  pool,
			Scratch:    scratch,
			BarringRng: barringRng,
		}, sim.NewRandStream(cfg.Seed, uint64(i)))
		node.AttachCAP(engine)
		nodes[i] = node
		medium.Attach(id, node)
	}
	for _, node := range nodes {
		node.Start()
	}

	if cfg.Barring.Enabled() {
		if err := cfg.Barring.Validate(); err != nil {
			panic(fmt.Sprintf("dsme: %v", err))
		}
		// The barring factor rides the beacon: once per beacon interval the
		// sink folds the congestion it observed on the medium into the
		// controller and the nodes pick the new factor up with the beacon.
		sfd := clock.Config().SuperframeDuration()
		interval := cfg.Barring.Interval
		if interval <= 0 {
			interval = sfd
		}
		backoff := cfg.Barring.Backoff
		if backoff <= 0 {
			backoff = sfd
		}
		ctrl := barring.New(cfg.Barring)
		sink := cfg.Network.Sink
		var prev radio.NodeStats
		var prevAir sim.Time
		var tick func()
		tick = func() {
			cur := medium.Stats(sink)
			_, air := medium.ChannelLoad()
			obs := barring.Observation{
				Delivered:    cur.RxDelivered - prev.RxDelivered,
				Collided:     cur.RxCollided - prev.RxCollided,
				Captured:     cur.RxCaptured - prev.RxCaptured,
				BusyFraction: float64(air-prevAir) / float64(interval),
			}
			prev, prevAir = cur, air
			p := ctrl.Update(obs)
			for _, node := range nodes {
				node.CAP().Base().SetBarring(p, backoff)
			}
			kernel.Schedule(interval, tick)
		}
		kernel.Schedule(interval, tick)
	}

	// Secondary background traffic: periodic route-discovery broadcasts.
	for i := 0; i < n; i++ {
		b := &traffic.BroadcastSource{
			Kernel:  kernel,
			Rng:     sim.NewRandStream(cfg.Seed, 3000+uint64(i)),
			Target:  nodes[i].CAP(),
			Origin:  frame.NodeID(i),
			Period:  cfg.BroadcastPeriod,
			StartAt: 2 * sim.Second,
			OnGenerate: func(f *frame.Frame) {
				metrics.noteBroadcastSent()
			},
		}
		b.Start()
	}

	// Primary traffic: every non-sink node streams data to the center.
	for i := 0; i < n; i++ {
		if frame.NodeID(i) == cfg.Network.Sink {
			continue
		}
		src := &traffic.Source{
			Kernel: kernel,
			Rng:    sim.NewRandStream(cfg.Seed, 2000+uint64(i)),
			Target: nodes[i],
			Origin: frame.NodeID(i),
			Sink:   cfg.Network.Sink,
			// FirstHop is rewritten by Node.Enqueue; the parent is correct
			// here for clarity.
			FirstHop: cfg.Network.Parent[i],
			Phases:   cfg.Phases,
			StartAt:  cfg.TrafficStart,
			Tag:      frame.TagEval,
		}
		src.Start()
	}

	var before []NodeStats
	kernel.At(cfg.Warmup, func() {
		metrics.SetMeasuring(true)
		before = make([]NodeStats, n)
		for i, node := range nodes {
			before[i] = node.Stats()
		}
	})

	kernel.Run(cfg.Duration)

	res := &ScenarioResult{
		Metrics:    *metrics,
		Nodes:      make([]NodeStats, n),
		CAP:        make([]mac.Stats, n),
		SlotsOwned: make([]int, n),
		Truncated:  kernel.BudgetExhausted(),
	}
	var completed uint64
	for i, node := range nodes {
		res.Nodes[i] = node.Stats()
		res.CAP[i] = node.CAP().Base().Stats()
		res.SlotsOwned[i] = node.Slots().Count(SlotTX)
		completed += res.Nodes[i].AllocCompleted + res.Nodes[i].DeallocCompleted
		if before != nil {
			completed -= before[i].AllocCompleted + before[i].DeallocCompleted
		}
	}
	measured := cfg.Duration - cfg.Warmup
	if measured > 0 {
		res.AllocationsPerSecond = float64(completed) / measured.Seconds()
	}
	return res
}
