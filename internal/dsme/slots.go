// Package dsme implements the Deterministic and Synchronous Multi-channel
// Extension mechanics the paper evaluates QMA inside (§6.3, Appendix A):
// guaranteed time slots (GTS) spread over time and frequency, the 3-way
// allocation/deallocation handshake (request → response → notify) carried as
// secondary traffic over the contention access period, duplicate-allocation
// detection through overheard broadcasts, and a traffic-adaptive slot
// controller that converts fluctuating primary traffic into the
// (de)allocation churn the paper's scenario is about.
package dsme

import (
	"fmt"

	"qma/internal/frame"
	"qma/internal/sim"
	"qma/internal/superframe"
)

// SlotState classifies one GTS coordinate in a node's local map.
type SlotState uint8

const (
	// SlotFree means the node knows of no allocation.
	SlotFree SlotState = iota
	// SlotNeighbor means an overheard handshake claimed the slot somewhere
	// in the neighbourhood.
	SlotNeighbor
	// SlotPending means a handshake for the slot is in flight at this node.
	SlotPending
	// SlotTX means this node owns the slot for transmitting.
	SlotTX
	// SlotRX means this node owns the slot for receiving.
	SlotRX
)

// String implements fmt.Stringer.
func (s SlotState) String() string {
	switch s {
	case SlotFree:
		return "free"
	case SlotNeighbor:
		return "neighbor"
	case SlotPending:
		return "pending"
	case SlotTX:
		return "tx"
	case SlotRX:
		return "rx"
	default:
		return fmt.Sprintf("SlotState(%d)", uint8(s))
	}
}

// SlotMap is one node's view of the GTS grid. Entries decay to SlotFree only
// through explicit deallocation; the paper's handshakes are the sole
// mutation source.
type SlotMap struct {
	cfg    superframe.Config
	states []SlotState
	// peer[i] is the counterpart node for owned/pending slots.
	peer []frame.NodeID
	// heardAt[i] is when a SlotNeighbor entry was last refreshed; stale
	// hearsay expires so that failed handshakes cannot pollute the map
	// forever (real DSME expires unused GTS similarly).
	heardAt []sim.Time
}

// NewSlotMap returns an all-free map over cfg's GTS grid.
func NewSlotMap(cfg superframe.Config) *SlotMap {
	n := cfg.GTSPerMultiframe()
	m := &SlotMap{
		cfg:     cfg,
		states:  make([]SlotState, n),
		peer:    make([]frame.NodeID, n),
		heardAt: make([]sim.Time, n),
	}
	for i := range m.peer {
		m.peer[i] = -1
	}
	return m
}

// State reports the map entry for g.
func (m *SlotMap) State(g superframe.GTS) SlotState { return m.states[g.Index(m.cfg)] }

// Peer reports the counterpart node recorded for g (-1 when none).
func (m *SlotMap) Peer(g superframe.GTS) frame.NodeID { return m.peer[g.Index(m.cfg)] }

// Set records state and counterpart for g.
func (m *SlotMap) Set(g superframe.GTS, s SlotState, peer frame.NodeID) {
	i := g.Index(m.cfg)
	m.states[i] = s
	m.peer[i] = peer
}

// Clear returns g to SlotFree.
func (m *SlotMap) Clear(g superframe.GTS) { m.Set(g, SlotFree, -1) }

// MarkNeighbor records an overheard allocation at time now unless the node
// itself holds the slot (owned/pending states outrank hearsay; the duplicate
// check handles the conflict). Re-hearing a known allocation refreshes its
// expiry.
func (m *SlotMap) MarkNeighbor(g superframe.GTS, now sim.Time) {
	st := m.State(g)
	if st == SlotFree {
		m.Set(g, SlotNeighbor, -1)
	}
	if st == SlotFree || st == SlotNeighbor {
		m.heardAt[g.Index(m.cfg)] = now
	}
}

// ExpireNeighbors clears every SlotNeighbor entry last refreshed before the
// given instant and reports how many were cleared.
func (m *SlotMap) ExpireNeighbors(before sim.Time) int {
	n := 0
	for i, st := range m.states {
		if st == SlotNeighbor && m.heardAt[i] < before {
			m.states[i] = SlotFree
			m.peer[i] = -1
			n++
		}
	}
	return n
}

// Count reports how many slots are in state s.
func (m *SlotMap) Count(s SlotState) int {
	n := 0
	for _, st := range m.states {
		if st == s {
			n++
		}
	}
	return n
}

// Owned returns the slots in state s (SlotTX or SlotRX), in grid order.
func (m *SlotMap) Owned(s SlotState) []superframe.GTS {
	var out []superframe.GTS
	for i, st := range m.states {
		if st == s {
			out = append(out, superframe.GTSFromIndex(m.cfg, i))
		}
	}
	return out
}

// PickFree returns the n-th free slot in grid order (n wraps around the free
// count) and whether any free slot exists. Callers randomize n so concurrent
// allocations in one neighbourhood rarely pick the same slot.
func (m *SlotMap) PickFree(n int) (superframe.GTS, bool) {
	free := 0
	for _, st := range m.states {
		if st == SlotFree {
			free++
		}
	}
	if free == 0 {
		return superframe.GTS{}, false
	}
	n %= free
	if n < 0 {
		n += free
	}
	for i, st := range m.states {
		if st != SlotFree {
			continue
		}
		if n == 0 {
			return superframe.GTSFromIndex(m.cfg, i), true
		}
		n--
	}
	return superframe.GTS{}, false
}

// Handshake payloads carried inside GTS command frames. They model the
// content of the 802.15.4 DSME-GTS request/response/notify commands at the
// granularity the evaluation needs.

// Request asks the receiver to allocate (or deallocate) a specific GTS with
// the sender as transmitter.
type Request struct {
	// ID pairs the handshake's three messages.
	ID uint32
	// GTS is the coordinate under negotiation.
	GTS superframe.GTS
	// Deallocate inverts the handshake's meaning.
	Deallocate bool
}

// Response is broadcast by the responder so its whole neighbourhood learns
// about the (de)allocation.
type Response struct {
	// ID pairs the handshake's three messages.
	ID uint32
	// GTS is the coordinate under negotiation.
	GTS superframe.GTS
	// Requester and Responder identify the pair.
	Requester, Responder frame.NodeID
	// Approved is false when the responder's map already shows the slot as
	// taken (duplicate allocation).
	Approved bool
	// Deallocate inverts the handshake's meaning.
	Deallocate bool
}

// Notify is broadcast by the requester to close the handshake and inform its
// neighbourhood.
type Notify struct {
	// ID pairs the handshake's three messages.
	ID uint32
	// GTS is the coordinate under negotiation.
	GTS superframe.GTS
	// Requester and Responder identify the pair.
	Requester, Responder frame.NodeID
	// Deallocate inverts the handshake's meaning.
	Deallocate bool
}

// Command frame MPDU lengths (header + DSME-GTS management content).
const (
	// RequestMPDU is the GTS-request length in bytes.
	RequestMPDU = 27
	// ResponseMPDU is the GTS-response length in bytes.
	ResponseMPDU = 29
	// NotifyMPDU is the GTS-notify length in bytes.
	NotifyMPDU = 27
)
