package dsme

import (
	"qma/internal/frame"
	"qma/internal/radio"
	"qma/internal/sim"
)

// Metrics aggregates the network-wide counters behind Fig. 21 (secondary
// PDR), Fig. 22 (successful GTS-requests), the "(de)allocations per second"
// claim and the primary-traffic PDR. One Metrics instance is shared by all
// nodes of a run; the simulation is single-threaded, so plain counters
// suffice. The measuring flag implements the warm-up window.
type Metrics struct {
	measuring bool

	// RequestsSent / RequestsAcked count GTS-request unicasts (Fig. 22).
	RequestsSent, RequestsAcked uint64
	// BroadcastsSent counts response/notify/route broadcasts put on the air;
	// BroadcastsDelivered accumulates, for each broadcast, the fraction of
	// decode-neighbours that received it — together they yield the broadcast
	// part of the secondary PDR.
	BroadcastsSent      uint64
	BroadcastsDelivered float64
	// Duplicates counts duplicate-allocation detections.
	Duplicates uint64
	// PrimaryGenerated / PrimaryDelivered / PrimaryDelaySum account the GTS
	// data path end to end.
	PrimaryGenerated, PrimaryDelivered uint64
	PrimaryDelaySum                    sim.Time
}

// SetMeasuring opens (or closes) the measurement window; counters only move
// while it is open.
func (m *Metrics) SetMeasuring(on bool) { m.measuring = on }

func (m *Metrics) noteRequestSent() {
	if m.measuring {
		m.RequestsSent++
	}
}

func (m *Metrics) noteRequestAcked() {
	if m.measuring {
		m.RequestsAcked++
	}
}

func (m *Metrics) noteBroadcastSent() {
	if m.measuring {
		m.BroadcastsSent++
	}
}

func (m *Metrics) noteBroadcastReceived(f *frame.Frame, med *radio.Medium) {
	if !m.measuring {
		return
	}
	if n := len(med.DecodeNeighbors(f.Src)); n > 0 {
		m.BroadcastsDelivered += 1 / float64(n)
	}
}

func (m *Metrics) noteDuplicate() {
	if m.measuring {
		m.Duplicates++
	}
}

func (m *Metrics) notePrimaryGenerated(f *frame.Frame) {
	if m.measuring && f.Tag == frame.TagEval {
		m.PrimaryGenerated++
	}
}

func (m *Metrics) notePrimaryDelivered(f *frame.Frame, now sim.Time) {
	if m.measuring && f.Tag == frame.TagEval {
		m.PrimaryDelivered++
		m.PrimaryDelaySum += now - f.CreatedAt
	}
}

// SecondaryPDR reports the delivery ratio of the CAP traffic: acknowledged
// GTS-requests plus the per-neighbourhood delivery fractions of the
// broadcast messages (Fig. 21).
func (m *Metrics) SecondaryPDR() float64 {
	sent := float64(m.RequestsSent + m.BroadcastsSent)
	if sent == 0 {
		return 1
	}
	return (float64(m.RequestsAcked) + m.BroadcastsDelivered) / sent
}

// RequestSuccessRatio reports the fraction of GTS-requests that were
// acknowledged (Fig. 22).
func (m *Metrics) RequestSuccessRatio() float64 {
	if m.RequestsSent == 0 {
		return 1
	}
	return float64(m.RequestsAcked) / float64(m.RequestsSent)
}

// PrimaryPDR reports the end-to-end delivery ratio of the GTS data path.
func (m *Metrics) PrimaryPDR() float64 {
	if m.PrimaryGenerated == 0 {
		return 1
	}
	return float64(m.PrimaryDelivered) / float64(m.PrimaryGenerated)
}

// PrimaryMeanDelay reports the mean end-to-end delay of delivered primary
// packets in seconds.
func (m *Metrics) PrimaryMeanDelay() float64 {
	if m.PrimaryDelivered == 0 {
		return 0
	}
	return (sim.Time(float64(m.PrimaryDelaySum) / float64(m.PrimaryDelivered))).Seconds()
}
