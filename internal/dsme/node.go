package dsme

import (
	"fmt"

	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/radio"
	"qma/internal/sim"
	"qma/internal/superframe"
)

// capChannel is the radio channel of the contention access period; GTS
// coordinates map to channels 1..16.
const capChannel = 0

// gtsChannel maps a slot coordinate to its radio channel.
func gtsChannel(g superframe.GTS) uint8 { return uint8(g.Channel) + 1 }

// NodeConfig assembles a DSME node.
type NodeConfig struct {
	// ID is the node's address.
	ID frame.NodeID
	// Kernel, Medium and Clock are the scenario-shared substrates.
	Kernel *sim.Kernel
	Medium *radio.Medium
	Clock  *superframe.Clock
	// Parent is the next hop towards the sink (-1 for the sink itself).
	Parent frame.NodeID
	// Sink is the data-collection root.
	Sink frame.NodeID
	// Rng drives slot picks; required, private to this node.
	Rng *sim.Rand
	// PrimaryQueueCap bounds the GTS data queue (<=0 selects the paper's 8).
	PrimaryQueueCap int
	// MaxRetries is NR for GTS data frames (0 selects 3, negative disables
	// retransmissions).
	MaxRetries int
	// MaxTxSlots caps the slots one node may hold towards its parent
	// (<=0 selects 7, one CFP's worth).
	MaxTxSlots int
	// ResponseTimeout and NotifyTimeout bound the handshake (defaults: 4
	// superframes each — handshake messages contend in the CAP and may need
	// several superframes under load).
	ResponseTimeout, NotifyTimeout sim.Time
	// ControlPeriod is the slot-controller evaluation interval (default: one
	// multi-superframe).
	ControlPeriod sim.Time
	// NeighborExpiry is how long overheard allocations stay in the slot map
	// without being refreshed (default: 64 superframes ≈ 7.9 s).
	NeighborExpiry sim.Time
	// Metrics aggregates network-wide counters; required.
	Metrics *Metrics
	// FramePool, when non-nil, recycles the node's immediate GTS ACKs. It
	// may be shared with the CAP engines of the same kernel.
	FramePool *frame.Pool
}

// NodeStats are per-node DSME counters.
type NodeStats struct {
	// PrimaryEnqueued and PrimaryQueueDrops account the GTS data queue.
	PrimaryEnqueued, PrimaryQueueDrops uint64
	// GTSTxAttempts/GTSTxSuccess/GTSRetryDrops account GTS data delivery.
	GTSTxAttempts, GTSTxSuccess, GTSRetryDrops uint64
	// GTSIdle counts owned TX slots that passed without a queued packet.
	GTSIdle uint64
	// AllocStarted/AllocCompleted/AllocFailed and the Dealloc versions count
	// handshakes initiated by this node.
	AllocStarted, AllocCompleted, AllocFailed       uint64
	DeallocStarted, DeallocCompleted, DeallocFailed uint64
	// DuplicatesDetected counts overheard allocations colliding with owned
	// slots.
	DuplicatesDetected uint64
	// Starved counts controller rounds that found no free slot to request.
	Starved uint64
}

// handshake is the requester-side state (one at a time per node).
type handshake struct {
	id         uint32
	gts        superframe.GTS
	deallocate bool
	timer      sim.EventID
}

// responderPending is the responder-side state awaiting a notify.
type responderPending struct {
	gts       superframe.GTS
	requester frame.NodeID
	timer     sim.EventID
}

// gtsAckWait tracks an outstanding GTS data acknowledgement.
type gtsAckWait struct {
	peer  frame.NodeID
	seq   uint32
	frame *frame.Frame
	gts   superframe.GTS
	timer sim.EventID
}

// Node is one DSME device: it owns the primary (GTS) data path and drives
// GTS (de)allocation handshakes as secondary traffic through its CAP MAC.
// It implements radio.Handler, demultiplexing GTS-channel frames from CAP
// frames before the CAP engine sees them.
type Node struct {
	cfg NodeConfig
	cap mac.Engine

	slots      *SlotMap
	slotEvents map[int]sim.EventID

	primary *frame.Queue
	seq     uint32
	hsSeq   uint32

	hs       *handshake
	pending  map[uint32]*responderPending
	ackWait  *gtsAckWait
	lastSeq  map[frame.NodeID]uint32
	hasSeq   map[frame.NodeID]bool
	arrivals int
	demand   float64
	// slotFails counts consecutive failed data transmissions per owned TX
	// slot; deadSlotThreshold failures in a row mean the receiver is gone
	// (e.g. it rolled the slot back after a duplicate detection) and the
	// slot is returned.
	slotFails map[int]int

	// ackStartFn/ackDoneFn are long-lived callbacks for the GTS immediate-ACK
	// path, scheduled via Kernel.AtCall so acknowledging costs no closure
	// allocations (mirrors mac.Base's CAP ACK path).
	ackStartFn func(any)
	ackDoneFn  func(any)

	stats NodeStats
}

var _ radio.Handler = (*Node)(nil)

// NewNode builds the node. The CAP engine is attached afterwards with
// AttachCAP because its mac.Config needs the node's command hook.
func NewNode(cfg NodeConfig) *Node {
	if cfg.Kernel == nil || cfg.Medium == nil || cfg.Clock == nil || cfg.Rng == nil || cfg.Metrics == nil {
		panic("dsme: Kernel, Medium, Clock, Rng and Metrics are required")
	}
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = mac.DefaultMaxRetries
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	if cfg.MaxTxSlots <= 0 {
		cfg.MaxTxSlots = superframe.CFPSlots
	}
	sf := cfg.Clock.Config()
	if cfg.ResponseTimeout <= 0 {
		// Handshake messages contend in the CAP; during QMA's cold start a
		// response can take seconds to get out (exploration-driven
		// bootstrap), so the timeout is generous.
		cfg.ResponseTimeout = 16 * sf.SuperframeDuration()
	}
	if cfg.NotifyTimeout <= 0 {
		cfg.NotifyTimeout = 16 * sf.SuperframeDuration()
	}
	if cfg.ControlPeriod <= 0 {
		cfg.ControlPeriod = sf.MultiframeDuration()
	}
	if cfg.NeighborExpiry <= 0 {
		cfg.NeighborExpiry = 64 * sf.SuperframeDuration()
	}
	n := &Node{
		cfg:        cfg,
		slots:      NewSlotMap(sf),
		slotEvents: make(map[int]sim.EventID),
		primary:    frame.NewQueue(cfg.PrimaryQueueCap),
		pending:    make(map[uint32]*responderPending),
		slotFails:  make(map[int]int),
		lastSeq:    make(map[frame.NodeID]uint32),
		hasSeq:     make(map[frame.NodeID]bool),
	}
	n.ackStartFn = func(a any) { n.transmitGTSAck(a.(*frame.Frame)) }
	n.ackDoneFn = func(a any) { n.cfg.FramePool.Put(a.(*frame.Frame)) }
	return n
}

// CommandHook returns the OnCommand callback to install into the CAP
// engine's mac.Config.
func (n *Node) CommandHook() func(*frame.Frame) { return n.handleCommand }

// AttachCAP installs the CAP engine (whose mac.Config must carry this node's
// CommandHook).
func (n *Node) AttachCAP(e mac.Engine) { n.cap = e }

// CAP returns the attached CAP engine.
func (n *Node) CAP() mac.Engine { return n.cap }

// Slots exposes the slot map for tests and reporting.
func (n *Node) Slots() *SlotMap { return n.slots }

// Stats returns a copy of the node counters.
func (n *Node) Stats() NodeStats { return n.stats }

// PrimaryQueue exposes the GTS data queue.
func (n *Node) PrimaryQueue() *frame.Queue { return n.primary }

// Start arms the CAP engine and the slot controller.
func (n *Node) Start() {
	if n.cap == nil {
		panic(fmt.Sprintf("dsme: node %d has no CAP engine attached", n.cfg.ID))
	}
	n.cap.Start()
	if n.cfg.Parent >= 0 {
		// Desynchronize controllers across nodes.
		first := n.cfg.ControlPeriod + sim.Time(n.cfg.Rng.Intn(int(n.cfg.ControlPeriod)))
		n.cfg.Kernel.At(first, n.controlTick)
	}
}

// Enqueue implements traffic.Enqueuer for primary data: frames queue for GTS
// transmission towards the parent.
func (n *Node) Enqueue(f *frame.Frame) bool {
	if n.cfg.Parent < 0 {
		return false
	}
	f.Src = n.cfg.ID
	f.Dst = n.cfg.Parent
	n.arrivals++
	n.cfg.Metrics.notePrimaryGenerated(f)
	if !n.primary.Push(f) {
		n.stats.PrimaryQueueDrops++
		return false
	}
	n.stats.PrimaryEnqueued++
	return true
}

// Deliver implements radio.Handler: GTS-channel frames belong to the primary
// path, everything else goes to the CAP engine (after broadcast-delivery
// accounting for the secondary PDR metric).
func (n *Node) Deliver(f *frame.Frame) {
	if f.Channel != capChannel {
		n.deliverGTS(f)
		return
	}
	if f.IsBroadcast() {
		switch f.Kind {
		case frame.GTSResponse, frame.GTSNotify, frame.RouteDiscovery:
			n.cfg.Metrics.noteBroadcastReceived(f, n.cfg.Medium)
		}
	}
	n.cap.Deliver(f)
}

// ---- Primary path: GTS data ----------------------------------------------

func (n *Node) deliverGTS(f *frame.Frame) {
	switch {
	case f.Kind == frame.Ack && f.Dst == n.cfg.ID:
		w := n.ackWait
		if w == nil || w.peer != f.Src || w.seq != f.Seq {
			return
		}
		n.ackWait = nil
		w.timer.Cancel()
		n.noteSlotOutcome(w.gts, true)
		n.finishGTSData(w.frame, true)
	case f.Kind == frame.Data && f.Dst == n.cfg.ID:
		n.ackGTSData(f)
		if n.isDuplicate(f) {
			return
		}
		if n.cfg.ID == n.cfg.Sink {
			n.cfg.Metrics.notePrimaryDelivered(f, n.cfg.Kernel.Now())
			return
		}
		fwd := &frame.Frame{
			Kind:      frame.Data,
			Src:       n.cfg.ID,
			Dst:       n.cfg.Parent,
			Origin:    f.Origin,
			Sink:      f.Sink,
			Seq:       f.Seq,
			MPDUBytes: f.MPDUBytes,
			Tag:       f.Tag,
			CreatedAt: f.CreatedAt,
		}
		n.arrivals++
		if !n.primary.Push(fwd) {
			n.stats.PrimaryQueueDrops++
		}
	}
}

func (n *Node) isDuplicate(f *frame.Frame) bool {
	if n.hasSeq[f.Origin] && f.Seq <= n.lastSeq[f.Origin] {
		return true
	}
	n.hasSeq[f.Origin] = true
	n.lastSeq[f.Origin] = f.Seq
	return false
}

func (n *Node) ackGTSData(f *frame.Frame) {
	ack := n.cfg.FramePool.Get()
	ack.Kind = frame.Ack
	ack.Src = n.cfg.ID
	ack.Dst = f.Src
	ack.Origin = n.cfg.ID
	ack.Sink = f.Src
	ack.Seq = f.Seq
	ack.MPDUBytes = frame.AckMPDUBytes
	ack.Channel = f.Channel
	n.cfg.Kernel.AtCall(n.cfg.Kernel.Now()+frame.TurnaroundTime, n.ackStartFn, ack)
}

// transmitGTSAck puts a prepared GTS ACK on the air and arranges its return
// to the frame pool once the transmission (and delivery) has ended.
func (n *Node) transmitGTSAck(ack *frame.Frame) {
	if n.cfg.Medium.Transmitting(n.cfg.ID) {
		n.cfg.FramePool.Put(ack)
		return
	}
	txEnd := n.cfg.Medium.StartTX(n.cfg.ID, ack, 0)
	n.cfg.Kernel.AtCall(txEnd, n.ackDoneFn, ack)
}

// armSlot schedules the next occurrence of an owned slot.
func (n *Node) armSlot(g superframe.GTS) {
	idx := g.Index(n.cfg.Clock.Config())
	n.slotEvents[idx].Cancel()
	at := n.cfg.Clock.NextGTSStart(n.cfg.Kernel.Now(), g)
	n.slotEvents[idx] = n.cfg.Kernel.At(at, func() { n.slotStart(g) })
}

// disarmSlot cancels the pending occurrence of a slot.
func (n *Node) disarmSlot(g superframe.GTS) {
	idx := g.Index(n.cfg.Clock.Config())
	n.slotEvents[idx].Cancel()
	delete(n.slotEvents, idx)
}

// slotStart runs at the beginning of an owned GTS occurrence.
func (n *Node) slotStart(g superframe.GTS) {
	st := n.slots.State(g)
	if st != SlotTX && st != SlotRX {
		return // ownership was lost; the chain dies here
	}
	ch := gtsChannel(g)
	n.cfg.Medium.SetTuned(n.cfg.ID, ch)
	end := n.cfg.Kernel.Now() + n.cfg.Clock.GTSDuration()
	n.cfg.Kernel.At(end, func() {
		if n.cfg.Medium.Tuned(n.cfg.ID) == ch {
			n.cfg.Medium.SetTuned(n.cfg.ID, capChannel)
		}
		if s := n.slots.State(g); s == SlotTX || s == SlotRX {
			n.armSlot(g)
		}
	})
	if st == SlotTX {
		// Transmit after a turnaround-sized guard so that the receiver's
		// tuning event at the same slot boundary has settled.
		n.cfg.Kernel.Schedule(frame.TurnaroundTime, func() { n.gtsTransmit(g, ch) })
	}
}

// gtsTransmit sends the primary queue head in the owned slot ("a single
// packet is transmitted per GTS", §6.3).
func (n *Node) gtsTransmit(g superframe.GTS, ch uint8) {
	if n.slots.State(g) != SlotTX {
		return
	}
	f := n.primary.Head()
	if f == nil {
		n.stats.GTSIdle++
		return
	}
	f.Channel = ch
	n.stats.GTSTxAttempts++
	txEnd := n.cfg.Medium.StartTX(n.cfg.ID, f, 0)
	deadline := txEnd + frame.AckWait
	w := &gtsAckWait{peer: f.Dst, seq: f.Seq, frame: f, gts: g}
	w.timer = n.cfg.Kernel.At(deadline, func() {
		n.ackWait = nil
		n.noteSlotOutcome(g, false)
		n.finishGTSData(f, false)
	})
	n.ackWait = w
}

func (n *Node) finishGTSData(f *frame.Frame, success bool) {
	if n.primary.Head() != f {
		return
	}
	if success {
		n.stats.GTSTxSuccess++
		n.primary.Pop()
		return
	}
	f.Retries++
	if int(f.Retries) > n.cfg.MaxRetries {
		n.primary.Pop()
		n.stats.GTSRetryDrops++
	}
}

// deadSlotThreshold is the number of consecutive unacknowledged data
// transmissions after which a TX slot is considered dead and returned. The
// receiving side may have rolled the slot back (duplicate detection) without
// the transmitter being able to hear about it; the watchdog heals such
// asymmetries.
const deadSlotThreshold = 8

// noteSlotOutcome feeds the dead-slot watchdog.
func (n *Node) noteSlotOutcome(g superframe.GTS, success bool) {
	idx := g.Index(n.cfg.Clock.Config())
	if success {
		n.slotFails[idx] = 0
		return
	}
	n.slotFails[idx]++
	if n.slotFails[idx] >= deadSlotThreshold && n.hs == nil && n.slots.State(g) == SlotTX {
		n.slotFails[idx] = 0
		n.startDeallocation(g)
	}
}

// ---- Slot controller ------------------------------------------------------

// controlTick evaluates slot demand once per control period and starts at
// most one handshake. Demand follows an EWMA of arrivals per
// multi-superframe with a 30% provisioning margin, plus an extra slot while
// the queue is backlogged — fluctuating primary traffic therefore causes a
// continuous stream of (de)allocations, the paper's secondary-traffic
// workload.
func (n *Node) controlTick() {
	n.cfg.Kernel.Schedule(n.cfg.ControlPeriod, n.controlTick)
	n.slots.ExpireNeighbors(n.cfg.Kernel.Now() - n.cfg.NeighborExpiry)

	perMSF := float64(n.arrivals) * float64(n.cfg.Clock.Config().MultiframeDuration()) / float64(n.cfg.ControlPeriod)
	n.arrivals = 0
	n.demand = 0.75*n.demand + 0.25*perMSF

	target := int(n.demand*1.3 + 0.999)
	if n.primary.Len() >= 2 {
		target++
	}
	if n.primary.Len() > 0 && target < 1 {
		target = 1
	}
	if target > n.cfg.MaxTxSlots {
		target = n.cfg.MaxTxSlots
	}

	if n.hs != nil {
		return // one handshake at a time
	}
	own := n.slots.Count(SlotTX)
	switch {
	case own < target:
		n.startAllocation()
	case own > target+1 && own > 0 && n.primary.Empty():
		// Oversupplied by more than the hysteresis slack and drained: give a
		// slot back. The slack keeps steady-state traffic from thrashing
		// between allocate and deallocate on Poisson noise.
		slots := n.slots.Owned(SlotTX)
		n.startDeallocation(slots[n.cfg.Rng.Intn(len(slots))])
	}
}

// timeConflict reports whether the node already holds or negotiates a slot
// at the same (superframe, slot) time coordinate — one radio cannot serve
// two channels at once.
func (n *Node) timeConflict(g superframe.GTS) bool {
	for _, st := range []SlotState{SlotTX, SlotRX, SlotPending} {
		for _, o := range n.slots.Owned(st) {
			if o.Superframe == g.Superframe && o.Slot == g.Slot {
				return true
			}
		}
	}
	return false
}

// pickFreeSlot draws a random free, time-conflict-free slot.
func (n *Node) pickFreeSlot() (superframe.GTS, bool) {
	for attempt := 0; attempt < 8; attempt++ {
		g, ok := n.slots.PickFree(n.cfg.Rng.Intn(1 << 20))
		if !ok {
			return superframe.GTS{}, false
		}
		if !n.timeConflict(g) {
			return g, true
		}
	}
	return superframe.GTS{}, false
}

func (n *Node) nextSeq() uint32 { n.seq++; return n.seq }

func (n *Node) nextHsID() uint32 {
	n.hsSeq++
	return uint32(n.cfg.ID)<<20 | n.hsSeq
}

// startAllocation begins the 3-way handshake for a fresh slot (Fig. 24).
func (n *Node) startAllocation() {
	g, ok := n.pickFreeSlot()
	if !ok {
		n.stats.Starved++
		return
	}
	hs := &handshake{id: n.nextHsID(), gts: g}
	n.hs = hs
	n.stats.AllocStarted++
	n.slots.Set(g, SlotPending, n.cfg.Parent)
	n.sendRequest(hs)
}

// startDeallocation begins the 3-way handshake that returns a slot ("GTS
// deallocation is rolled back using the same 3-way handshake", App. A).
func (n *Node) startDeallocation(g superframe.GTS) {
	hs := &handshake{id: n.nextHsID(), gts: g, deallocate: true}
	n.hs = hs
	n.stats.DeallocStarted++
	n.sendRequest(hs)
}

func (n *Node) sendRequest(hs *handshake) {
	req := &frame.Frame{
		Kind:      frame.GTSRequest,
		Src:       n.cfg.ID,
		Dst:       n.cfg.Parent,
		Origin:    n.cfg.ID,
		Sink:      n.cfg.Parent,
		Seq:       n.nextSeq(),
		MPDUBytes: RequestMPDU,
		Payload:   Request{ID: hs.id, GTS: hs.gts, Deallocate: hs.deallocate},
	}
	n.cfg.Metrics.noteRequestSent()
	req.Done = func(acked bool) {
		if n.hs != hs {
			return
		}
		if !acked {
			n.requesterFail(hs, false)
			return
		}
		n.cfg.Metrics.noteRequestAcked()
		// The request arrived; wait for the broadcast response.
		hs.timer = n.cfg.Kernel.Schedule(n.cfg.ResponseTimeout, func() {
			if n.hs == hs {
				n.requesterFail(hs, true)
			}
		})
	}
	if !n.cap.Enqueue(req) {
		req.Done = nil
		n.requesterFail(hs, false)
	}
}

// requesterFail rolls the requester side back.
func (n *Node) requesterFail(hs *handshake, counted bool) {
	_ = counted
	hs.timer.Cancel()
	if !hs.deallocate && n.slots.State(hs.gts) == SlotPending {
		n.slots.Clear(hs.gts)
	}
	if hs.deallocate {
		n.stats.DeallocFailed++
	} else {
		n.stats.AllocFailed++
	}
	n.hs = nil
}

// ---- Command handling (CAP side) -----------------------------------------

func (n *Node) handleCommand(f *frame.Frame) {
	switch p := f.Payload.(type) {
	case Request:
		if f.Dst == n.cfg.ID {
			n.handleRequest(f.Src, p)
		}
	case Response:
		n.handleResponse(p)
	case Notify:
		n.handleNotify(p)
	}
}

// handleRequest is the responder side of the handshake.
func (n *Node) handleRequest(from frame.NodeID, req Request) {
	approved := true
	if req.Deallocate {
		if n.slots.State(req.GTS) == SlotRX && n.slots.Peer(req.GTS) == from {
			n.disarmSlot(req.GTS)
			n.slots.Clear(req.GTS)
		}
	} else {
		if n.slots.State(req.GTS) != SlotFree || n.timeConflict(req.GTS) {
			approved = false
		} else {
			n.slots.Set(req.GTS, SlotPending, from)
			pend := &responderPending{gts: req.GTS, requester: from}
			pend.timer = n.cfg.Kernel.Schedule(n.cfg.NotifyTimeout, func() {
				if n.pending[req.ID] == pend {
					delete(n.pending, req.ID)
					if n.slots.State(req.GTS) == SlotPending {
						n.slots.Clear(req.GTS)
					}
				}
			})
			n.pending[req.ID] = pend
		}
	}
	resp := &frame.Frame{
		Kind:      frame.GTSResponse,
		Src:       n.cfg.ID,
		Dst:       frame.Broadcast,
		Origin:    n.cfg.ID,
		Sink:      frame.Broadcast,
		Seq:       n.nextSeq(),
		MPDUBytes: ResponseMPDU,
		Payload: Response{
			ID: req.ID, GTS: req.GTS,
			Requester: from, Responder: n.cfg.ID,
			Approved: approved, Deallocate: req.Deallocate,
		},
	}
	n.cfg.Metrics.noteBroadcastSent()
	n.cap.Enqueue(resp)
}

// handleResponse serves both the requester (continue the handshake) and
// overhearing neighbours (update the slot map, detect duplicates).
func (n *Node) handleResponse(resp Response) {
	if resp.Requester == n.cfg.ID {
		hs := n.hs
		if hs == nil || hs.id != resp.ID {
			return
		}
		hs.timer.Cancel()
		if !resp.Approved {
			// Duplicate at the responder: remember the slot as taken and
			// retry with another at the next control tick.
			n.slots.Set(hs.gts, SlotNeighbor, -1)
			n.stats.AllocFailed++
			n.hs = nil
			n.sendNotifyAbort(hs, resp.Responder)
			return
		}
		if hs.deallocate {
			n.disarmSlot(hs.gts)
			n.slots.Clear(hs.gts)
			n.stats.DeallocCompleted++
		} else {
			n.slots.Set(hs.gts, SlotTX, resp.Responder)
			n.armSlot(hs.gts)
			n.stats.AllocCompleted++
		}
		n.hs = nil
		n.sendNotify(hs, resp.Responder)
		return
	}
	n.observeForeign(resp.GTS, resp.Approved && !resp.Deallocate, resp.Deallocate)
}

func (n *Node) sendNotify(hs *handshake, responder frame.NodeID) {
	nf := &frame.Frame{
		Kind:      frame.GTSNotify,
		Src:       n.cfg.ID,
		Dst:       frame.Broadcast,
		Origin:    n.cfg.ID,
		Sink:      frame.Broadcast,
		Seq:       n.nextSeq(),
		MPDUBytes: NotifyMPDU,
		Payload: Notify{
			ID: hs.id, GTS: hs.gts,
			Requester: n.cfg.ID, Responder: responder,
			Deallocate: hs.deallocate,
		},
	}
	n.cfg.Metrics.noteBroadcastSent()
	n.cap.Enqueue(nf)
}

// sendNotifyAbort closes a disapproved handshake so the responder's
// neighbourhood releases the tentatively marked slot. Modelled as a
// deallocate-notify for the same id.
func (n *Node) sendNotifyAbort(hs *handshake, responder frame.NodeID) {
	abort := &handshake{id: hs.id, gts: hs.gts, deallocate: true}
	n.sendNotify(abort, responder)
}

// handleNotify finalizes the responder side and updates overhearers.
func (n *Node) handleNotify(nf Notify) {
	if nf.Responder == n.cfg.ID {
		pend := n.pending[nf.ID]
		if pend != nil {
			pend.timer.Cancel()
			delete(n.pending, nf.ID)
			if nf.Deallocate {
				if n.slots.State(pend.gts) == SlotPending {
					n.slots.Clear(pend.gts)
				}
			} else if n.slots.State(pend.gts) == SlotPending {
				n.slots.Set(pend.gts, SlotRX, pend.requester)
				n.armSlot(pend.gts)
			}
		}
		return
	}
	n.observeForeign(nf.GTS, !nf.Deallocate, nf.Deallocate)
}

// observeForeign applies an overheard (de)allocation to the local map and
// detects duplicate allocations against owned slots (App. A: "If any of A's
// or B's neighbours have already allocated the GTS ... the GTS allocation is
// rolled back").
func (n *Node) observeForeign(g superframe.GTS, allocated, deallocated bool) {
	st := n.slots.State(g)
	switch {
	case allocated && (st == SlotTX || st == SlotRX):
		n.stats.DuplicatesDetected++
		n.cfg.Metrics.noteDuplicate()
		if st == SlotTX && n.hs == nil {
			n.startDeallocation(g)
		} else if st == SlotRX {
			n.disarmSlot(g)
			n.slots.Clear(g)
		}
	case allocated:
		n.slots.MarkNeighbor(g, n.cfg.Kernel.Now())
	case deallocated && st == SlotNeighbor:
		n.slots.Clear(g)
	}
}
