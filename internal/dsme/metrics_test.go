package dsme

import (
	"math"
	"testing"

	"qma/internal/frame"
	"qma/internal/radio"
	"qma/internal/sim"
)

// metricsMedium builds a 4-node star medium (0 hears 1,2,3) for the
// broadcast delivery-fraction accounting.
func metricsMedium(t *testing.T) *radio.Medium {
	t.Helper()
	g := radio.NewGraphTopology(4)
	g.AddLink(0, 1)
	g.AddLink(0, 2)
	g.AddLink(0, 3)
	return radio.NewMedium(sim.NewKernel(), g, sim.NewRand(1))
}

func TestMetricsMeasuringGate(t *testing.T) {
	med := metricsMedium(t)
	m := &Metrics{}
	bcast := &frame.Frame{Kind: frame.RouteDiscovery, Src: 0, Dst: frame.Broadcast}
	data := &frame.Frame{Kind: frame.Data, Tag: frame.TagEval, CreatedAt: 1 * sim.Second}

	// Everything before SetMeasuring(true) must be ignored.
	m.noteRequestSent()
	m.noteRequestAcked()
	m.noteBroadcastSent()
	m.noteBroadcastReceived(bcast, med)
	m.noteDuplicate()
	m.notePrimaryGenerated(data)
	m.notePrimaryDelivered(data, 2*sim.Second)
	if *m != (Metrics{}) {
		t.Fatalf("counters moved while the measurement window was closed: %+v", *m)
	}

	m.SetMeasuring(true)
	m.noteRequestSent()
	m.noteRequestAcked()
	m.noteDuplicate()
	m.notePrimaryGenerated(data)
	m.notePrimaryDelivered(data, 3*sim.Second)
	if m.RequestsSent != 1 || m.RequestsAcked != 1 || m.Duplicates != 1 {
		t.Fatalf("handshake counters: %+v", *m)
	}
	if m.PrimaryGenerated != 1 || m.PrimaryDelivered != 1 {
		t.Fatalf("primary counters: %+v", *m)
	}
	if got := m.PrimaryMeanDelay(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("PrimaryMeanDelay = %v, want 2s", got)
	}

	// Closing the window freezes the counters again.
	m.SetMeasuring(false)
	m.noteRequestSent()
	if m.RequestsSent != 1 {
		t.Fatal("counter moved after the window closed")
	}
}

func TestMetricsPrimaryTagFilter(t *testing.T) {
	m := &Metrics{}
	m.SetMeasuring(true)
	mgmt := &frame.Frame{Kind: frame.Data, Tag: frame.TagManagement}
	m.notePrimaryGenerated(mgmt)
	m.notePrimaryDelivered(mgmt, sim.Second)
	if m.PrimaryGenerated != 0 || m.PrimaryDelivered != 0 {
		t.Fatalf("management traffic leaked into primary counters: %+v", *m)
	}
}

func TestMetricsBroadcastDeliveryFraction(t *testing.T) {
	med := metricsMedium(t)
	m := &Metrics{}
	m.SetMeasuring(true)
	m.noteBroadcastSent()
	// Node 0 has three decode-neighbours: each reception adds 1/3.
	bcast := &frame.Frame{Kind: frame.RouteDiscovery, Src: 0, Dst: frame.Broadcast}
	m.noteBroadcastReceived(bcast, med)
	m.noteBroadcastReceived(bcast, med)
	if math.Abs(m.BroadcastsDelivered-2.0/3) > 1e-9 {
		t.Fatalf("BroadcastsDelivered = %v, want 2/3", m.BroadcastsDelivered)
	}
	// A broadcast from an isolated node (no decode-neighbours) must not
	// divide by zero or move the accumulator.
	iso := &frame.Frame{Kind: frame.RouteDiscovery, Src: 1, Dst: frame.Broadcast}
	g := radio.NewGraphTopology(2)
	lonely := radio.NewMedium(sim.NewKernel(), g, sim.NewRand(1))
	m.noteBroadcastReceived(iso, lonely)
	if math.Abs(m.BroadcastsDelivered-2.0/3) > 1e-9 {
		t.Fatalf("isolated broadcast moved the accumulator: %v", m.BroadcastsDelivered)
	}
	if pdr := m.SecondaryPDR(); math.Abs(pdr-2.0/3) > 1e-9 {
		t.Fatalf("SecondaryPDR = %v, want 2/3 (one broadcast, 2/3 delivered)", pdr)
	}
}

func TestMetricsRatiosWithZeroDenominators(t *testing.T) {
	m := &Metrics{}
	if m.SecondaryPDR() != 1 {
		t.Fatalf("SecondaryPDR of an idle run = %v, want 1", m.SecondaryPDR())
	}
	if m.RequestSuccessRatio() != 1 {
		t.Fatalf("RequestSuccessRatio of an idle run = %v, want 1", m.RequestSuccessRatio())
	}
	if m.PrimaryPDR() != 1 {
		t.Fatalf("PrimaryPDR of an idle run = %v, want 1", m.PrimaryPDR())
	}
	if m.PrimaryMeanDelay() != 0 {
		t.Fatalf("PrimaryMeanDelay with no deliveries = %v, want 0", m.PrimaryMeanDelay())
	}
}

func TestMetricsSecondaryPDRMixesRequestsAndBroadcasts(t *testing.T) {
	m := &Metrics{}
	m.SetMeasuring(true)
	m.noteRequestSent()
	m.noteRequestSent()
	m.noteRequestAcked()
	m.noteBroadcastSent()
	m.BroadcastsDelivered = 0.5
	// (1 acked + 0.5 delivered) / (2 requests + 1 broadcast)
	if got, want := m.SecondaryPDR(), 1.5/3; math.Abs(got-want) > 1e-9 {
		t.Fatalf("SecondaryPDR = %v, want %v", got, want)
	}
	if got := m.RequestSuccessRatio(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("RequestSuccessRatio = %v, want 0.5", got)
	}
}
