package dsme

import (
	"strings"
	"testing"

	"qma/internal/sim"
	"qma/internal/superframe"
)

// These tests cover the slots.go edges the scenario-level integration runs
// never pin directly: hearsay refresh/expiry, MarkNeighbor precedence over
// every owned state, Owned ordering and the state stringer.

func TestSlotMapMarkNeighborRefreshAndExpiry(t *testing.T) {
	cfg := superframe.DefaultConfig()
	m := NewSlotMap(cfg)
	a := superframe.GTSFromIndex(cfg, 0)
	b := superframe.GTSFromIndex(cfg, 1)

	m.MarkNeighbor(a, 1*sim.Second)
	m.MarkNeighbor(b, 2*sim.Second)
	if m.State(a) != SlotNeighbor || m.State(b) != SlotNeighbor {
		t.Fatalf("states after MarkNeighbor: %v %v", m.State(a), m.State(b))
	}

	// Re-hearing a refreshes its expiry; b goes stale.
	m.MarkNeighbor(a, 5*sim.Second)
	if n := m.ExpireNeighbors(3 * sim.Second); n != 1 {
		t.Fatalf("ExpireNeighbors cleared %d entries, want 1", n)
	}
	if m.State(b) != SlotFree || m.Peer(b) != -1 {
		t.Fatalf("stale hearsay b not cleared: %v peer=%d", m.State(b), m.Peer(b))
	}
	if m.State(a) != SlotNeighbor {
		t.Fatalf("refreshed hearsay a expired: %v", m.State(a))
	}

	// Expiring again at the same cutoff is a no-op.
	if n := m.ExpireNeighbors(3 * sim.Second); n != 0 {
		t.Fatalf("second expiry cleared %d entries, want 0", n)
	}
	// A later cutoff clears the refreshed entry too.
	if n := m.ExpireNeighbors(6 * sim.Second); n != 1 {
		t.Fatalf("late expiry cleared %d entries, want 1", n)
	}
}

func TestSlotMapMarkNeighborPrecedence(t *testing.T) {
	cfg := superframe.DefaultConfig()
	for _, owned := range []SlotState{SlotPending, SlotTX, SlotRX} {
		m := NewSlotMap(cfg)
		g := superframe.GTSFromIndex(cfg, 3)
		m.Set(g, owned, 7)
		m.MarkNeighbor(g, 1*sim.Second)
		if m.State(g) != owned || m.Peer(g) != 7 {
			t.Fatalf("MarkNeighbor demoted %v to %v (peer %d)", owned, m.State(g), m.Peer(g))
		}
		// Owned states must also survive expiry.
		m.ExpireNeighbors(3600 * sim.Second)
		if m.State(g) != owned {
			t.Fatalf("ExpireNeighbors cleared owned state %v", owned)
		}
	}
}

func TestSlotMapOwnedOrderAndKinds(t *testing.T) {
	cfg := superframe.DefaultConfig()
	m := NewSlotMap(cfg)
	tx1 := superframe.GTSFromIndex(cfg, 9)
	tx2 := superframe.GTSFromIndex(cfg, 2)
	rx := superframe.GTSFromIndex(cfg, 5)
	m.Set(tx1, SlotTX, 1)
	m.Set(tx2, SlotTX, 2)
	m.Set(rx, SlotRX, 3)

	owned := m.Owned(SlotTX)
	if len(owned) != 2 || owned[0] != tx2 || owned[1] != tx1 {
		t.Fatalf("Owned(SlotTX) = %v, want grid order [%v %v]", owned, tx2, tx1)
	}
	if got := m.Owned(SlotRX); len(got) != 1 || got[0] != rx {
		t.Fatalf("Owned(SlotRX) = %v", got)
	}
	if m.Count(SlotTX) != 2 || m.Count(SlotRX) != 1 {
		t.Fatalf("Count: tx=%d rx=%d", m.Count(SlotTX), m.Count(SlotRX))
	}
	if m.Count(SlotFree) != cfg.GTSPerMultiframe()-3 {
		t.Fatalf("Count(SlotFree) = %d", m.Count(SlotFree))
	}
}

func TestSlotMapPickFreeWrapsNegative(t *testing.T) {
	cfg := superframe.DefaultConfig()
	m := NewSlotMap(cfg)
	total := cfg.GTSPerMultiframe()
	// Occupy everything except indices 1 and 3.
	for i := 0; i < total; i++ {
		if i != 1 && i != 3 {
			m.Set(superframe.GTSFromIndex(cfg, i), SlotNeighbor, -1)
		}
	}
	// Two free slots: even picks land on index 1, odd picks on index 3,
	// negative picks wrap instead of panicking.
	cases := map[int]int{0: 1, 1: 3, 2: 1, -1: 3, -2: 1, 7: 3}
	for pick, wantIdx := range cases {
		g, ok := m.PickFree(pick)
		if !ok || g != superframe.GTSFromIndex(cfg, wantIdx) {
			t.Fatalf("PickFree(%d) = %v/%v, want index %d", pick, g, ok, wantIdx)
		}
	}
}

func TestSlotStateString(t *testing.T) {
	want := map[SlotState]string{
		SlotFree:     "free",
		SlotNeighbor: "neighbor",
		SlotPending:  "pending",
		SlotTX:       "tx",
		SlotRX:       "rx",
	}
	for s, str := range want {
		if s.String() != str {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
	if got := SlotState(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown state stringer = %q", got)
	}
}
