package dsme

import (
	"testing"
	"testing/quick"

	"qma/internal/barring"
	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/superframe"
	"qma/internal/topo"
	"qma/internal/traffic"
)

func TestSlotMapStates(t *testing.T) {
	cfg := superframe.DefaultConfig()
	m := NewSlotMap(cfg)
	g := superframe.GTS{Superframe: 1, Slot: 3, Channel: 7}

	if m.State(g) != SlotFree {
		t.Fatalf("initial state = %v, want free", m.State(g))
	}
	m.Set(g, SlotTX, 4)
	if m.State(g) != SlotTX || m.Peer(g) != 4 {
		t.Fatalf("after Set: state=%v peer=%d", m.State(g), m.Peer(g))
	}
	// MarkNeighbor must not overwrite ownership.
	m.MarkNeighbor(g, 5*sim.Second)
	if m.State(g) != SlotTX {
		t.Fatalf("MarkNeighbor overwrote owned slot: %v", m.State(g))
	}
	if m.Count(SlotTX) != 1 || len(m.Owned(SlotTX)) != 1 || m.Owned(SlotTX)[0] != g {
		t.Fatalf("Count/Owned inconsistent")
	}
	m.Clear(g)
	if m.State(g) != SlotFree || m.Peer(g) != -1 {
		t.Fatalf("Clear failed: %v %d", m.State(g), m.Peer(g))
	}
}

func TestSlotMapPickFree(t *testing.T) {
	cfg := superframe.DefaultConfig()
	m := NewSlotMap(cfg)
	total := cfg.GTSPerMultiframe()

	// Fill every slot except one; any pick index must return it.
	keep := superframe.GTS{Superframe: 0, Slot: 4, Channel: 9}
	for i := 0; i < total; i++ {
		g := superframe.GTSFromIndex(cfg, i)
		if g != keep {
			m.Set(g, SlotNeighbor, -1)
		}
	}
	for _, n := range []int{0, 1, 7, -3, 1 << 19} {
		g, ok := m.PickFree(n)
		if !ok || g != keep {
			t.Fatalf("PickFree(%d) = %v/%v, want %v", n, g, ok, keep)
		}
	}
	m.Set(keep, SlotTX, 1)
	if _, ok := m.PickFree(0); ok {
		t.Fatal("PickFree on a full map reported a free slot")
	}
}

func TestSlotMapPickFreeProperty(t *testing.T) {
	cfg := superframe.DefaultConfig()
	prop := func(occupied []uint16, pick int16) bool {
		m := NewSlotMap(cfg)
		for _, o := range occupied {
			m.Set(superframe.GTSFromIndex(cfg, int(o)%cfg.GTSPerMultiframe()), SlotNeighbor, -1)
		}
		g, ok := m.PickFree(int(pick))
		if !ok {
			return m.Count(SlotFree) == 0
		}
		return m.State(g) == SlotFree
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// twoNodeConfig wires one child streaming to the sink.
func twoNodeConfig(mk scenario.MACKind, seed uint64) ScenarioConfig {
	net := topo.HiddenNode() // A and C stream to B over GTS
	return ScenarioConfig{
		Network:  net,
		MAC:      mk,
		Seed:     seed,
		Duration: 180 * sim.Second,
		Warmup:   60 * sim.Second,
		Phases:   []traffic.Phase{{Rate: 5}},
	}
}

func TestGTSAllocationAndDataDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	res := RunScenario(twoNodeConfig(scenario.QMA, 1))
	// Both leaves must end up owning TX slots.
	if res.SlotsOwned[0] == 0 || res.SlotsOwned[2] == 0 {
		t.Fatalf("slots owned = %v, want both leaves > 0", res.SlotsOwned)
	}
	// Primary data flows through the allocated GTS.
	m := res.Metrics
	if m.PrimaryGenerated == 0 {
		t.Fatal("no primary packets generated")
	}
	if pdr := m.PrimaryPDR(); pdr < 0.9 {
		t.Errorf("primary PDR = %.3f, want >= 0.9 (δ=5 is far below GTS capacity)", pdr)
	}
	// Handshakes completed.
	var completed uint64
	for _, ns := range res.Nodes {
		completed += ns.AllocCompleted
	}
	if completed == 0 {
		t.Error("no allocation handshake completed")
	}
	t.Logf("slots=%v primaryPDR=%.3f secondaryPDR=%.3f allocs/s=%.2f",
		res.SlotsOwned, m.PrimaryPDR(), m.SecondaryPDR(), res.AllocationsPerSecond)
}

func TestGTSDeallocationOnTrafficDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	cfg := twoNodeConfig(scenario.QMA, 2)
	// Traffic bursts then goes silent; nodes must give slots back.
	cfg.Phases = []traffic.Phase{{Rate: 20, Duration: 30 * sim.Second}, {Rate: 0, Duration: 90 * sim.Second}}
	cfg.Duration = 180 * sim.Second
	res := RunScenario(cfg)
	var dealloc uint64
	for _, ns := range res.Nodes {
		dealloc += ns.DeallocCompleted
	}
	if dealloc == 0 {
		t.Errorf("no deallocation completed despite traffic dropping to zero (slots=%v)", res.SlotsOwned)
	}
}

func TestRings7SecondaryTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	run := func(mk scenario.MACKind) *ScenarioResult {
		return RunScenario(ScenarioConfig{
			Network:  topo.Rings(1),
			MAC:      mk,
			Seed:     3,
			Duration: 240 * sim.Second,
			Warmup:   90 * sim.Second,
		})
	}
	qma := run(scenario.QMA)
	csma := run(scenario.CSMAUnslotted)

	t.Logf("QMA : secondary=%.3f req=%.3f allocs/s=%.2f primary=%.3f",
		qma.Metrics.SecondaryPDR(), qma.Metrics.RequestSuccessRatio(),
		qma.AllocationsPerSecond, qma.Metrics.PrimaryPDR())
	t.Logf("CSMA: secondary=%.3f req=%.3f allocs/s=%.2f primary=%.3f",
		csma.Metrics.SecondaryPDR(), csma.Metrics.RequestSuccessRatio(),
		csma.AllocationsPerSecond, csma.Metrics.PrimaryPDR())

	if qma.Metrics.RequestsSent == 0 || csma.Metrics.RequestsSent == 0 {
		t.Fatal("no GTS requests were sent")
	}
	// Fig. 21: QMA's secondary PDR exceeds CSMA/CA's.
	if qma.Metrics.SecondaryPDR() < csma.Metrics.SecondaryPDR()-0.02 {
		t.Errorf("QMA secondary PDR %.3f below CSMA %.3f",
			qma.Metrics.SecondaryPDR(), csma.Metrics.SecondaryPDR())
	}
}

func TestScenarioDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	a := RunScenario(twoNodeConfig(scenario.QMA, 9))
	b := RunScenario(twoNodeConfig(scenario.QMA, 9))
	if a.Metrics != b.Metrics {
		t.Errorf("metrics differ between identical runs:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Errorf("node %d stats differ:\n%+v\n%+v", i, a.Nodes[i], b.Nodes[i])
		}
	}
}

func TestScenarioBudgetAndInvariantChecks(t *testing.T) {
	// A tiny event budget truncates the run and says so.
	cfg := twoNodeConfig(scenario.QMA, 3)
	cfg.EventBudget = 500
	if res := RunScenario(cfg); !res.Truncated {
		t.Fatal("500-event budget did not truncate a 180 s DSME run")
	}
	// With the invariant checkers armed and no budget, a short run completes
	// cleanly and is not marked truncated.
	clean := twoNodeConfig(scenario.QMA, 3)
	clean.Duration = 30 * sim.Second
	clean.Warmup = 10 * sim.Second
	clean.InvariantChecks = true
	if res := RunScenario(clean); res.Truncated {
		t.Error("unbudgeted run reports truncation")
	}
}

// TestScenarioBarring drives the DSME wiring of the access-barring loop.
// DSME carries its primary data over GTS, so the CAP rarely congests enough
// for AIMD to close admission — a fixed low factor instead exercises the
// full path (sink beacon push → per-node gate RNG → Barred counters)
// deterministically, and a disabled config must count nothing.
func TestScenarioBarring(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	overloaded := func(b barring.Config, seed uint64) ScenarioConfig {
		cfg := twoNodeConfig(scenario.QMA, seed)
		cfg.Duration = 90 * sim.Second
		cfg.Warmup = 30 * sim.Second
		cfg.Phases = []traffic.Phase{{Rate: 20}}
		cfg.Barring = b
		return cfg
	}
	barred := RunScenario(overloaded(barring.Config{Policy: barring.PolicyFixed, P: 0.25}, 4))
	var total uint64
	for _, s := range barred.CAP {
		total += s.Barred
	}
	if total == 0 {
		t.Error("fixed barring at P=0.25 never barred a CAP attempt")
	}
	again := RunScenario(overloaded(barring.Config{Policy: barring.PolicyFixed, P: 0.25}, 4))
	for i := range barred.CAP {
		if barred.CAP[i] != again.CAP[i] {
			t.Errorf("node %d: identical barred DSME runs diverged:\n%+v\n%+v", i, barred.CAP[i], again.CAP[i])
		}
	}
	// A disabled config counts nothing: the gate is never consulted.
	off := RunScenario(overloaded(barring.Config{}, 4))
	for i, s := range off.CAP {
		if s.Barred != 0 {
			t.Errorf("node %d: disabled barring still barred %d attempts", i, s.Barred)
		}
	}
}
