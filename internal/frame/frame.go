// Package frame models IEEE 802.15.4 MAC frames at the granularity the
// paper's evaluation needs: frame kinds, addressing, byte lengths (which
// determine on-air durations), sequence numbers and the queue-level
// piggyback field QMA uses for parameter-based exploration.
package frame

import (
	"fmt"

	"qma/internal/sim"
)

// NodeID identifies a network node. IDs are dense small integers assigned by
// the scenario builder; the value Broadcast addresses every neighbour.
type NodeID int16

// Broadcast is the destination address for broadcast frames (0xffff in the
// standard).
const Broadcast NodeID = -1

// Kind enumerates the frame types exercised by the paper's scenarios.
type Kind uint8

const (
	// Data is a primary-traffic data frame (unicast, acknowledged).
	Data Kind = iota + 1
	// Ack is an immediate acknowledgement.
	Ack
	// Beacon is the superframe beacon (slot 0, broadcast).
	Beacon
	// GTSRequest initiates the DSME 3-way GTS handshake (unicast, acked).
	GTSRequest
	// GTSResponse is the second handshake step (broadcast).
	GTSResponse
	// GTSNotify completes the handshake (broadcast).
	GTSNotify
	// RouteDiscovery is a periodic routing broadcast (GPSR substitute).
	RouteDiscovery
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case Beacon:
		return "BEACON"
	case GTSRequest:
		return "GTS-REQ"
	case GTSResponse:
		return "GTS-RESP"
	case GTSNotify:
		return "GTS-NOTIFY"
	case RouteDiscovery:
		return "ROUTE-DISC"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// PHY timing constants for the 2.4 GHz O-QPSK PHY used by the paper's
// hardware (AT86RF231) and simulations.
const (
	// SymbolDuration is one PHY symbol: 16 µs.
	SymbolDuration sim.Time = 16
	// SymbolsPerByte: 2 symbols encode one byte (4-bit symbols).
	SymbolsPerByte = 2
	// PHYOverheadBytes: 4 preamble + 1 SFD + 1 PHR.
	PHYOverheadBytes = 6
	// AckMPDUBytes is the MPDU length of an immediate ACK.
	AckMPDUBytes = 5
	// TurnaroundTime is aTurnaroundTime (12 symbols): RX/TX switch before an
	// ACK is sent.
	TurnaroundTime = 12 * SymbolDuration
	// CCADuration is the 8-symbol clear channel assessment.
	CCADuration = 8 * SymbolDuration
	// MaxMPDUBytes is aMaxPHYPacketSize.
	MaxMPDUBytes = 127
)

// AckDuration is the on-air time of an immediate ACK frame.
var AckDuration = AirTime(AckMPDUBytes)

// AckWait is the time a transmitter waits for an ACK after its data frame
// ends before declaring the transmission failed (turnaround + ACK + margin).
var AckWait = TurnaroundTime + AckDuration + 8*SymbolDuration

// AirTime converts an MPDU byte length into an on-air duration, including
// PHY preamble/SFD/PHR overhead.
func AirTime(mpduBytes int) sim.Time {
	return sim.Time(mpduBytes+PHYOverheadBytes) * SymbolsPerByte * SymbolDuration
}

// Frame is one MAC frame in flight or in a queue. Frames are created once by
// the origin and passed by pointer; retransmissions reuse the same Frame.
type Frame struct {
	Kind Kind
	// Src and Dst are the hop source and destination (Dst == Broadcast for
	// broadcast frames).
	Src, Dst NodeID
	// Origin and Sink are the end-to-end endpoints for multi-hop data.
	Origin, Sink NodeID
	// Seq is the origin-scoped sequence number (for duplicate detection and
	// PDR accounting).
	Seq uint32
	// MPDUBytes is the MAC frame length; determines air time.
	MPDUBytes int
	// QueueLevel piggybacks the sender's queue occupancy (§4.2).
	QueueLevel uint8
	// Channel is the radio channel the frame is transmitted on (0 is the
	// common CAP channel; GTS traffic uses the slot's channel offset).
	Channel uint8
	// CreatedAt is the generation instant of the payload (for end-to-end
	// delay measurement); preserved across hops.
	CreatedAt sim.Time
	// Retries is MAC scratch state: how many retransmissions this frame has
	// already used on the current hop.
	Retries uint8
	// Tag classifies the frame for accounting (evaluation traffic vs
	// management traffic); it does not affect MAC behaviour.
	Tag Tag
	// Done, when non-nil, is invoked exactly once when the MAC finishes with
	// the frame: true after an acknowledged unicast or a sent broadcast,
	// false when the frame is dropped (retries or channel access exhausted).
	// The DSME layer uses it to drive handshake timers.
	Done func(success bool)
	// Payload carries protocol-specific content (e.g. dsme handshake info).
	Payload any
}

// Tag classifies traffic for statistics purposes.
type Tag uint8

const (
	// TagEval marks the evaluation packets every PDR figure counts.
	TagEval Tag = iota
	// TagManagement marks background management traffic (present so the MAC
	// has something to learn from before the measured traffic starts, like
	// the association-phase traffic of §6.1).
	TagManagement
)

// IsBroadcast reports whether the frame has no individual destination and is
// therefore unacknowledged.
func (f *Frame) IsBroadcast() bool { return f.Dst == Broadcast }

// Duration is the frame's on-air time.
func (f *Frame) Duration() sim.Time { return AirTime(f.MPDUBytes) }

// String summarizes the frame for logs and test failures.
func (f *Frame) String() string {
	return fmt.Sprintf("%s src=%d dst=%d seq=%d len=%dB", f.Kind, f.Src, f.Dst, f.Seq, f.MPDUBytes)
}
