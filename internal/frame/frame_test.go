package frame

import (
	"testing"
	"testing/quick"

	"qma/internal/sim"
)

func TestAirTime(t *testing.T) {
	cases := []struct {
		mpdu int
		want sim.Time
	}{
		// (mpdu + 6 PHY bytes) * 2 symbols * 16 µs
		{5, (5 + 6) * 2 * 16},     // ACK: 352 µs
		{50, (50 + 6) * 2 * 16},   // 1792 µs
		{127, (127 + 6) * 2 * 16}, // max frame: 4256 µs
	}
	for _, c := range cases {
		if got := AirTime(c.mpdu); got != c.want {
			t.Errorf("AirTime(%d) = %v, want %v", c.mpdu, got, c.want)
		}
	}
}

func TestAckConstants(t *testing.T) {
	if AckDuration != 352 {
		t.Errorf("AckDuration = %v µs, want 352", AckDuration)
	}
	// turnaround 192 + ack 352 + margin 128
	if AckWait != 672 {
		t.Errorf("AckWait = %v µs, want 672", AckWait)
	}
}

func TestDataFrameSpansTwoToThreeSubslots(t *testing.T) {
	// The paper (§6.1.3) states transmissions span up to 3 subslots. With the
	// 1120 µs subslot of DESIGN.md, a 50-byte-payload frame plus its ACK
	// exchange must fit in (2, 3] subslots.
	const subslot = 1120
	total := AirTime(50+21) + TurnaroundTime + AckDuration // 71-byte MPDU with header
	if total <= 2*subslot || total > 3*subslot {
		t.Errorf("data+ack = %v µs, want in (2240, 3360]", total)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Data: "DATA", Ack: "ACK", Beacon: "BEACON",
		GTSRequest: "GTS-REQ", GTSResponse: "GTS-RESP", GTSNotify: "GTS-NOTIFY",
		RouteDiscovery: "ROUTE-DISC", Kind(99): "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind.String() = %q, want %q", got, want)
		}
	}
}

func TestFrameBroadcast(t *testing.T) {
	f := &Frame{Kind: GTSResponse, Src: 1, Dst: Broadcast}
	if !f.IsBroadcast() {
		t.Error("Dst=Broadcast should report IsBroadcast")
	}
	g := &Frame{Kind: Data, Src: 1, Dst: 2}
	if g.IsBroadcast() {
		t.Error("unicast frame reported as broadcast")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(4)
	frames := []*Frame{{Seq: 1}, {Seq: 2}, {Seq: 3}}
	for _, f := range frames {
		if !q.Push(f) {
			t.Fatalf("Push(%d) rejected below capacity", f.Seq)
		}
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	if q.Head().Seq != 1 {
		t.Errorf("Head seq = %d, want 1", q.Head().Seq)
	}
	for i, want := range []uint32{1, 2, 3} {
		got := q.Pop()
		if got == nil || got.Seq != want {
			t.Fatalf("Pop %d = %v, want seq %d", i, got, want)
		}
	}
	if q.Pop() != nil {
		t.Error("Pop on empty queue should return nil")
	}
	if q.Head() != nil {
		t.Error("Head on empty queue should return nil")
	}
}

func TestQueueDropAccounting(t *testing.T) {
	q := NewQueue(2)
	q.Push(&Frame{Seq: 1})
	q.Push(&Frame{Seq: 2})
	if q.Push(&Frame{Seq: 3}) {
		t.Error("Push above capacity accepted")
	}
	if q.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", q.Dropped())
	}
	if q.Enqueued() != 2 {
		t.Errorf("Enqueued = %d, want 2", q.Enqueued())
	}
	if !q.Full() {
		t.Error("queue at capacity should be Full")
	}
}

func TestQueueDefaultCapacity(t *testing.T) {
	q := NewQueue(0)
	if q.Cap() != DefaultQueueCap {
		t.Errorf("default capacity = %d, want %d", q.Cap(), DefaultQueueCap)
	}
	q2 := NewQueue(-5)
	if q2.Cap() != DefaultQueueCap {
		t.Errorf("negative capacity = %d, want %d", q2.Cap(), DefaultQueueCap)
	}
}

func TestQueuePushFront(t *testing.T) {
	q := NewQueue(2)
	q.Push(&Frame{Seq: 2})
	q.Push(&Frame{Seq: 3})
	q.PushFront(&Frame{Seq: 1}) // succeeds even at capacity
	if q.Len() != 3 {
		t.Fatalf("Len after PushFront = %d, want 3", q.Len())
	}
	if q.Head().Seq != 1 {
		t.Errorf("Head after PushFront = %d, want 1", q.Head().Seq)
	}
	got := []uint32{q.Pop().Seq, q.Pop().Seq, q.Pop().Seq}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order after PushFront = %v", got)
	}
}

func TestQueueClear(t *testing.T) {
	q := NewQueue(4)
	q.Push(&Frame{})
	q.Push(&Frame{})
	q.Clear()
	if !q.Empty() {
		t.Error("queue not empty after Clear")
	}
	if q.Enqueued() != 2 {
		t.Error("Clear should not reset accounting")
	}
}

// Property: a queue never exceeds its capacity and Len+Dropped bookkeeping
// is consistent under arbitrary push/pop sequences.
func TestQueueInvariants(t *testing.T) {
	prop := func(ops []bool, capSeed uint8) bool {
		capacity := int(capSeed%8) + 1
		q := NewQueue(capacity)
		popped := uint64(0)
		var seq uint32
		for _, push := range ops {
			if push {
				seq++
				q.Push(&Frame{Seq: seq})
			} else if q.Pop() != nil {
				popped++
			}
			if q.Len() > capacity {
				return false
			}
		}
		return uint64(q.Len()) == q.Enqueued()-popped
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: FIFO order is preserved for any interleaving.
func TestQueueFIFOProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		q := NewQueue(64)
		var next uint32
		var expect uint32 = 1
		for _, push := range ops {
			if push {
				next++
				q.Push(&Frame{Seq: next})
			} else if f := q.Pop(); f != nil {
				if f.Seq != expect {
					return false
				}
				expect++
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
