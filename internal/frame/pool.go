package frame

// Pool recycles Frame objects within one simulation. Like the kernel's event
// arena it is single-threaded by design: every replicated run owns a private
// kernel and a private pool, so no locking or sync.Pool machinery is needed,
// and recycling stays deterministic.
//
// All methods are nil-receiver safe: a nil *Pool degrades to plain heap
// allocation with no recycling, so pooling is strictly opt-in for callers
// that can prove their frames' lifecycles end.
type Pool struct {
	free []*Frame
	// idle, when non-nil, is the opt-in double-release detector: the set of
	// frames currently resting in the pool (SetChecks).
	idle map[*Frame]bool
}

// SetChecks toggles the opt-in double-release detector: with checks on, Put
// panics when handed a frame that is already idle in the pool — the bug that
// otherwise surfaces much later as two live users of one recycled frame.
// Tests and fuzz harnesses enable it; it costs one map operation per Get and
// Put. No-op on a nil pool.
func (p *Pool) SetChecks(on bool) {
	if p == nil {
		return
	}
	if !on {
		p.idle = nil
		return
	}
	p.idle = make(map[*Frame]bool, len(p.free))
	for _, f := range p.free {
		p.idle[f] = true
	}
}

// Get returns a zeroed frame, reusing a recycled one when available.
func (p *Pool) Get() *Frame {
	if p == nil {
		return &Frame{}
	}
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		if p.idle != nil {
			delete(p.idle, f)
		}
		*f = Frame{}
		return f
	}
	return &Frame{}
}

// Put returns f to the pool. The caller asserts that no reference to f
// survives the call: the frame will be zeroed and handed out again by a
// later Get. Putting a frame that was not allocated by Get is allowed (the
// pool simply grows). Put(nil) and calls on a nil pool are no-ops.
func (p *Pool) Put(f *Frame) {
	if p == nil || f == nil {
		return
	}
	if p.idle != nil {
		if p.idle[f] {
			panic("frame: double release of a pooled frame")
		}
		p.idle[f] = true
	}
	p.free = append(p.free, f)
}

// Size reports the number of idle frames held by the pool.
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}
