package frame

import "testing"

func TestPoolRecycles(t *testing.T) {
	p := &Pool{}
	f := p.Get()
	f.Kind = Data
	f.Seq = 42
	f.Retries = 3
	p.Put(f)
	if p.Size() != 1 {
		t.Fatalf("Size() = %d, want 1", p.Size())
	}
	g := p.Get()
	if g != f {
		t.Fatal("Get did not reuse the recycled frame")
	}
	if g.Kind != 0 || g.Seq != 0 || g.Retries != 0 {
		t.Errorf("recycled frame not zeroed: %+v", g)
	}
	if p.Size() != 0 {
		t.Errorf("Size() = %d after Get, want 0", p.Size())
	}
}

func TestPoolNilSafety(t *testing.T) {
	var p *Pool
	f := p.Get()
	if f == nil {
		t.Fatal("nil pool Get returned nil")
	}
	p.Put(f) // no-op, must not panic
	if p.Size() != 0 {
		t.Error("nil pool reports nonzero size")
	}
	pp := &Pool{}
	pp.Put(nil) // no-op
	if pp.Size() != 0 {
		t.Error("Put(nil) grew the pool")
	}
}

func TestPoolDoubleReleaseDetector(t *testing.T) {
	p := &Pool{}
	var pNil *Pool
	pNil.SetChecks(true) // no-op, must not panic

	// Without checks a double Put is silently absorbed (the historical
	// behaviour); with checks it must panic immediately.
	f := p.Get()
	p.Put(f)
	p.Put(f)
	p.free = p.free[:0]

	p.SetChecks(true)
	g := p.Get()
	p.Put(g)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double release not detected")
			}
		}()
		p.Put(g)
	}()

	// A Get/Put cycle is still legal with checks on, and disabling checks
	// drops the tracking.
	h := p.Get()
	p.Put(h)
	p.SetChecks(false)
	p.Put(p.Get()) // must not panic
}

func TestPoolSteadyStateDoesNotAllocate(t *testing.T) {
	p := &Pool{}
	p.Put(p.Get()) // warm one slot
	allocs := testing.AllocsPerRun(1000, func() {
		f := p.Get()
		f.MPDUBytes = 80
		p.Put(f)
	})
	if allocs != 0 {
		t.Errorf("steady-state Get/Put allocates %.1f objects per op, want 0", allocs)
	}
}
