package frame

// DefaultQueueCap is the paper's transmit queue size of 8 packets (§4.2,
// Fig. 4: "ρ = 0.3 is used for the maximum queue level of 8 packets").
const DefaultQueueCap = 8

// Queue is a bounded FIFO transmit queue with drop accounting. The zero
// value is not usable; construct with NewQueue. Queue is not safe for
// concurrent use (the simulation is sequential).
type Queue struct {
	items []*Frame
	cap   int
	// Dropped counts frames rejected because the queue was full.
	dropped uint64
	// enqueued counts accepted frames.
	enqueued uint64
}

// NewQueue returns an empty queue holding at most capacity frames.
// capacity <= 0 selects DefaultQueueCap.
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		capacity = DefaultQueueCap
	}
	return &Queue{items: make([]*Frame, 0, capacity), cap: capacity}
}

// NewQueueOn is NewQueue using buf as the item storage (a slab slice from a
// run arena). buf must hold at least capacity+1 elements — PushFront may
// momentarily exceed the bound — and must not be shared with another queue.
func NewQueueOn(capacity int, buf []*Frame) *Queue {
	if capacity <= 0 {
		capacity = DefaultQueueCap
	}
	if len(buf) < capacity+1 {
		return NewQueue(capacity)
	}
	return &Queue{items: buf[:0], cap: capacity}
}

// Cap reports the maximum number of frames the queue holds.
func (q *Queue) Cap() int { return q.cap }

// Len reports the current occupancy.
func (q *Queue) Len() int { return len(q.items) }

// Empty reports whether no frame is queued.
func (q *Queue) Empty() bool { return len(q.items) == 0 }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return len(q.items) >= q.cap }

// Dropped reports how many frames were rejected by Push because the queue
// was full.
func (q *Queue) Dropped() uint64 { return q.dropped }

// Enqueued reports how many frames were accepted in total.
func (q *Queue) Enqueued() uint64 { return q.enqueued }

// Push appends f if space remains and reports whether it was accepted.
func (q *Queue) Push(f *Frame) bool {
	if q.Full() {
		q.dropped++
		return false
	}
	q.items = append(q.items, f)
	q.enqueued++
	return true
}

// PushFront re-inserts f at the head (used when a transaction must be
// deferred without counting as a drop). Unlike Push it succeeds even at
// capacity, because the frame was already accounted for.
func (q *Queue) PushFront(f *Frame) {
	q.items = append(q.items, nil)
	copy(q.items[1:], q.items)
	q.items[0] = f
}

// Head returns the frame at the front without removing it, or nil when
// empty.
func (q *Queue) Head() *Frame {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// Pop removes and returns the head frame, or nil when empty.
func (q *Queue) Pop() *Frame {
	if len(q.items) == 0 {
		return nil
	}
	f := q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return f
}

// At returns the i-th frame from the head without removing it. The caller
// must keep i inside [0, Len()).
func (q *Queue) At(i int) *Frame { return q.items[i] }

// RemoveAt removes and returns the i-th frame from the head, preserving the
// order of the rest. Drop policies use it to evict queued frames; they must
// never remove index 0, the in-service head an engine may hold a pointer to
// mid-transaction. The caller must keep i inside [0, Len()).
func (q *Queue) RemoveAt(i int) *Frame {
	f := q.items[i]
	copy(q.items[i:], q.items[i+1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return f
}

// Clear removes all queued frames (used between experiment phases).
func (q *Queue) Clear() {
	for i := range q.items {
		q.items[i] = nil
	}
	q.items = q.items[:0]
}
