package sim

import "math"

// Rand is a small, fast, deterministic PRNG (PCG32 with a SplitMix64-seeded
// state). Every node and every traffic source owns an independent stream so
// that adding instrumentation or reordering unrelated draws cannot perturb a
// scenario. Rand is not safe for concurrent use.
type Rand struct {
	state uint64
	inc   uint64
}

// splitMix64 scrambles a seed into a well-distributed 64-bit value.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewRand returns a generator seeded from seed. Distinct seeds yield
// independent-looking streams.
func NewRand(seed uint64) *Rand {
	return NewRandStream(seed, 0)
}

// NewRandStream returns the stream-th independent generator for seed. PCG
// guarantees distinct increments select non-overlapping sequences.
func NewRandStream(seed, stream uint64) *Rand {
	r := &Rand{
		inc: (splitMix64(stream+0x632be59bd9b4e019) << 1) | 1,
	}
	r.state = splitMix64(seed)
	r.Uint32() // advance once so state depends on inc
	r.state += splitMix64(seed + 0x9e3779b97f4a7c15)
	r.Uint32()
	return r
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint32(n)
	threshold := -bound % bound
	for {
		x := r.Uint32()
		m := uint64(x) * uint64(bound)
		if uint32(m) >= threshold {
			return int(m >> 32)
		}
	}
}

// IntRange returns a uniform value in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("sim: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Exp returns an exponentially distributed value with the given mean.
// Used for Poisson inter-arrival times.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// ExpTime returns an exponentially distributed duration with the given mean
// duration, never shorter than one microsecond.
func (r *Rand) ExpTime(mean Time) Time {
	d := Time(r.Exp(float64(mean)))
	if d < 1 {
		d = 1
	}
	return d
}

// Normal returns a normally distributed value via the polar Box–Muller
// transform.
func (r *Rand) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Poisson returns a Poisson-distributed count with the given mean, using
// inversion for small means and normal approximation for large ones.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		n := int(r.Normal(mean, math.Sqrt(mean)) + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Shuffle permutes the first n indices using swap, Fisher–Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }
