package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelRunsInTimestampOrder(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		k.Schedule(d, func() { got = append(got, k.Now()) })
	}
	k.RunAll()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKernelSameInstantFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(100, func() { order = append(order, i) })
	}
	k.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of scheduling order: %v", order)
		}
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	ev := k.Schedule(5, func() { fired = true })
	ev.Cancel()
	k.RunAll()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	if k.Processed() != 0 {
		t.Errorf("Processed() = %d, want 0", k.Processed())
	}
}

func TestKernelCancelIsIdempotent(t *testing.T) {
	k := NewKernel()
	ev := k.Schedule(1, func() {})
	ev.Cancel()
	ev.Cancel()
	var nilEv *Event
	nilEv.Cancel() // must not panic
	k.RunAll()
}

func TestKernelRunUntilBoundary(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.Schedule(10, func() { fired = append(fired, 10) })
	k.Schedule(20, func() { fired = append(fired, 20) })
	k.Schedule(30, func() { fired = append(fired, 30) })
	k.Run(20) // inclusive boundary
	if len(fired) != 2 {
		t.Fatalf("Run(20) fired %d events, want 2 (boundary inclusive)", len(fired))
	}
	if k.Now() != 20 {
		t.Errorf("Now() = %v, want 20", k.Now())
	}
	k.Run(100)
	if len(fired) != 3 {
		t.Errorf("continuation run fired %d total events, want 3", len(fired))
	}
}

func TestKernelClockAdvancesToUntil(t *testing.T) {
	k := NewKernel()
	k.Run(500)
	if k.Now() != 500 {
		t.Errorf("empty run: Now() = %v, want 500", k.Now())
	}
}

func TestKernelEventsScheduleEvents(t *testing.T) {
	k := NewKernel()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			k.Schedule(7, tick)
		}
	}
	k.Schedule(0, tick)
	k.RunAll()
	if count != 100 {
		t.Errorf("chained ticks = %d, want 100", count)
	}
	if k.Now() != 99*7 {
		t.Errorf("Now() = %v, want %v", k.Now(), Time(99*7))
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 0; i < 10; i++ {
		k.Schedule(Time(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run(Never)
	if count != 3 {
		t.Errorf("Stop: fired %d, want 3", count)
	}
	// Run may be resumed afterwards.
	k.Run(Never)
	if count != 10 {
		t.Errorf("resume after Stop: fired %d, want 10", count)
	}
}

func TestKernelPanicsOnPastSchedule(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {})
	k.RunAll()
	defer func() {
		if recover() == nil {
			t.Error("scheduling into the past did not panic")
		}
	}()
	k.At(5, func() {})
}

func TestKernelPanicsOnNegativeDelay(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	k.Schedule(-1, func() {})
}

// Property: for any set of non-negative delays, events fire in sorted order
// and the processed count equals the number of scheduled events.
func TestKernelOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		k := NewKernel()
		var fired []Time
		for _, d := range delays {
			k.Schedule(Time(d), func() { fired = append(fired, k.Now()) })
		}
		k.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return k.Processed() == uint64(len(delays))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0.000000s"},
		{1500000, "1.500000s"},
		{Never, "never"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
	if got := FromSeconds(0); got != 0 {
		t.Errorf("FromSeconds(0) = %v", got)
	}
}
