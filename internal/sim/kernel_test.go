package sim

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestKernelRunsInTimestampOrder(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		k.Schedule(d, func() { got = append(got, k.Now()) })
	}
	k.RunAll()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKernelSameInstantFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(100, func() { order = append(order, i) })
	}
	k.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of scheduling order: %v", order)
		}
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	ev := k.Schedule(5, func() { fired = true })
	ev.Cancel()
	k.RunAll()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	if k.Processed() != 0 {
		t.Errorf("Processed() = %d, want 0", k.Processed())
	}
}

func TestKernelCancelIsIdempotent(t *testing.T) {
	k := NewKernel()
	ev := k.Schedule(1, func() {})
	ev.Cancel()
	ev.Cancel()
	var zero EventID
	zero.Cancel() // must not panic
	if zero.Canceled() || zero.Pending() || zero.At() != 0 {
		t.Error("zero EventID must be inert")
	}
	k.RunAll()
}

func TestKernelCancelAfterFire(t *testing.T) {
	k := NewKernel()
	fired := 0
	ev := k.Schedule(5, func() { fired++ })
	k.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	ev.Cancel() // must be a no-op on an already fired event
	if ev.Canceled() {
		t.Error("Canceled() = true after a post-fire Cancel")
	}
	if ev.Pending() {
		t.Error("Pending() = true after fire")
	}
	if k.Processed() != 1 {
		t.Errorf("Processed() = %d, want 1", k.Processed())
	}
}

func TestKernelStaleHandleDoesNotCancelReusedSlot(t *testing.T) {
	k := NewKernel()
	// Fire one event so its arena slot returns to the freelist.
	stale := k.Schedule(1, func() {})
	k.RunAll()
	// The next event reuses the slot; the stale handle must not reach it.
	fired := false
	fresh := k.Schedule(1, func() { fired = true })
	stale.Cancel()
	if stale.Pending() || stale.Canceled() {
		t.Error("stale handle reports live state")
	}
	if !fresh.Pending() {
		t.Error("fresh event lost its pending state to a stale Cancel")
	}
	k.RunAll()
	if !fired {
		t.Error("stale Cancel suppressed a reused slot's event")
	}
}

func TestKernelCancelReleasesClosure(t *testing.T) {
	k := NewKernel()
	big := make([]byte, 1<<20)
	ev := k.Schedule(1000, func() { _ = big[0] })
	ev.Cancel()
	// The kernel must have dropped its reference to the closure at Cancel
	// time, even though the queue entry drains lazily. We cannot observe the
	// GC directly here; assert the visible half: the event cannot fire.
	k.RunAll()
	if k.Processed() != 0 {
		t.Errorf("Processed() = %d, want 0", k.Processed())
	}
}

func TestKernelLazyCompaction(t *testing.T) {
	k := NewKernel()
	const n = 1000
	ids := make([]EventID, 0, n)
	fired := 0
	for i := 0; i < n; i++ {
		ids = append(ids, k.Schedule(Time(i+1), func() { fired++ }))
	}
	// Cancel everything but every 10th event; compaction must shrink the
	// queue well below n long before the clock drains past the timestamps.
	for i, ev := range ids {
		if i%10 != 0 {
			ev.Cancel()
		}
	}
	if p := k.Pending(); p > n/5 {
		t.Errorf("Pending() = %d after mass cancellation, want compaction below %d", p, n/5)
	}
	k.RunAll()
	if fired != n/10 {
		t.Errorf("fired = %d, want %d", fired, n/10)
	}
}

func TestKernelStopMidRun(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for i := 1; i <= 5; i++ {
		i := i
		k.Schedule(Time(i*10), func() {
			fired = append(fired, k.Now())
			if i == 2 {
				k.Stop()
			}
		})
	}
	k.Run(Never)
	if len(fired) != 2 || k.Now() != 20 {
		t.Fatalf("Stop mid-run: fired %v, now %v; want 2 events and now=20", fired, k.Now())
	}
	// Scheduling and resuming after a Stop must pick up where it left off.
	k.Schedule(5, func() { fired = append(fired, k.Now()) })
	k.Run(Never)
	want := []Time{10, 20, 25, 30, 40, 50}
	if len(fired) != len(want) {
		t.Fatalf("resume: fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("resume: fired[%d] = %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestKernelAtCall(t *testing.T) {
	k := NewKernel()
	type ctx struct{ hits int }
	c := &ctx{}
	fn := func(a any) { a.(*ctx).hits++ }
	k.AtCall(3, fn, c)
	ev := k.AtCall(5, fn, c)
	ev.Cancel()
	k.RunAll()
	if c.hits != 1 {
		t.Errorf("AtCall hits = %d, want 1", c.hits)
	}
}

// Property: same-timestamp events fire in scheduling order even when the
// schedule interleaves cancellations (slot reuse must not disturb the
// (time, seq) ordering of the new heap).
func TestKernelSameInstantOrderWithCancels(t *testing.T) {
	k := NewKernel()
	var order []int
	var ids []EventID
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			n := round*20 + i
			ids = append(ids, k.Schedule(100, func() { order = append(order, n) }))
		}
		// Cancel half of the newest batch to churn the freelist.
		for i := 0; i < 10; i++ {
			ids[round*20+2*i].Cancel()
		}
	}
	k.RunAll()
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("same-instant events fired out of scheduling order: %v", order)
		}
	}
	if len(order) != 50 {
		t.Errorf("fired %d events, want 50", len(order))
	}
}

func TestKernelRunUntilBoundary(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.Schedule(10, func() { fired = append(fired, 10) })
	k.Schedule(20, func() { fired = append(fired, 20) })
	k.Schedule(30, func() { fired = append(fired, 30) })
	k.Run(20) // inclusive boundary
	if len(fired) != 2 {
		t.Fatalf("Run(20) fired %d events, want 2 (boundary inclusive)", len(fired))
	}
	if k.Now() != 20 {
		t.Errorf("Now() = %v, want 20", k.Now())
	}
	k.Run(100)
	if len(fired) != 3 {
		t.Errorf("continuation run fired %d total events, want 3", len(fired))
	}
}

func TestKernelClockAdvancesToUntil(t *testing.T) {
	k := NewKernel()
	k.Run(500)
	if k.Now() != 500 {
		t.Errorf("empty run: Now() = %v, want 500", k.Now())
	}
}

func TestKernelEventsScheduleEvents(t *testing.T) {
	k := NewKernel()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			k.Schedule(7, tick)
		}
	}
	k.Schedule(0, tick)
	k.RunAll()
	if count != 100 {
		t.Errorf("chained ticks = %d, want 100", count)
	}
	if k.Now() != 99*7 {
		t.Errorf("Now() = %v, want %v", k.Now(), Time(99*7))
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 0; i < 10; i++ {
		k.Schedule(Time(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run(Never)
	if count != 3 {
		t.Errorf("Stop: fired %d, want 3", count)
	}
	// Run may be resumed afterwards.
	k.Run(Never)
	if count != 10 {
		t.Errorf("resume after Stop: fired %d, want 10", count)
	}
}

func TestKernelPanicsOnPastSchedule(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {})
	k.RunAll()
	defer func() {
		if recover() == nil {
			t.Error("scheduling into the past did not panic")
		}
	}()
	k.At(5, func() {})
}

func TestKernelPanicsOnNegativeDelay(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	k.Schedule(-1, func() {})
}

// TestKernelPanicMessagesCarryContext pins that scheduling-misuse panics
// name the kernel time and live-event count — the difference between a
// reproducible bug report and a bare "negative delay" from somewhere inside
// a million-event run.
func TestKernelPanicMessagesCarryContext(t *testing.T) {
	check := func(name string, f func(k *Kernel)) {
		k := NewKernel()
		k.Schedule(10, func() {})
		k.Schedule(20, func() {})
		k.Run(15)
		defer func() {
			v := recover()
			if v == nil {
				t.Errorf("%s: no panic", name)
				return
			}
			msg, ok := v.(string)
			if !ok {
				t.Errorf("%s: panic value %T is not a string", name, v)
				return
			}
			for _, want := range []string{"now=", "processed=1", "live=1"} {
				if !strings.Contains(msg, want) {
					t.Errorf("%s: panic %q missing %q", name, msg, want)
				}
			}
		}()
		f(k)
	}
	check("negative delay", func(k *Kernel) { k.Schedule(-1, func() {}) })
	check("nil function", func(k *Kernel) { k.Schedule(1, nil) })
	check("past schedule", func(k *Kernel) { k.At(5, func() {}) })
}

func TestKernelLive(t *testing.T) {
	k := NewKernel()
	a := k.Schedule(10, func() {})
	k.Schedule(20, func() {})
	if got := k.Live(); got != 2 {
		t.Fatalf("Live() = %d, want 2", got)
	}
	a.Cancel()
	if got := k.Live(); got != 1 {
		t.Fatalf("Live() after cancel = %d, want 1", got)
	}
}

func TestKernelEventBudget(t *testing.T) {
	k := NewKernel()
	fired := 0
	// A self-rescheduling chain would run 100 events without a budget.
	var tick func()
	tick = func() {
		fired++
		if fired < 100 {
			k.Schedule(1, tick)
		}
	}
	k.Schedule(1, tick)
	k.SetBudget(10, 0)
	k.RunAll()
	if fired != 10 {
		t.Fatalf("fired %d events under a 10-event budget", fired)
	}
	if !k.BudgetExhausted() {
		t.Fatal("BudgetExhausted() false after truncation")
	}
	// The event budget is cumulative across Run calls: a fresh Run against
	// the same exhausted budget makes no progress (this is what lets the
	// sharded scheduler's epoch-sized Runs truncate at the same event as one
	// continuous Run would).
	k.RunAll()
	if fired != 10 {
		t.Fatalf("second Run against an exhausted budget fired up to %d, want 10", fired)
	}
	// Raising the budget resumes the chain from where it stopped.
	k.SetBudget(25, 0)
	k.RunAll()
	if fired != 25 {
		t.Fatalf("after raising the budget, fired up to %d, want 25", fired)
	}
}

func TestKernelWallBudget(t *testing.T) {
	k := NewKernel()
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < 100000 {
			k.Schedule(1, tick)
		}
	}
	k.Schedule(1, tick)
	k.SetBudget(0, time.Nanosecond)
	k.RunAll()
	if fired >= 100000 {
		t.Fatal("nanosecond wall budget did not truncate")
	}
	if !k.BudgetExhausted() {
		t.Fatal("BudgetExhausted() false after wall truncation")
	}
}

func TestKernelInvariantChecksAcceptHealthyRuns(t *testing.T) {
	k := NewKernel()
	k.SetInvariantChecks(true)
	n := 0
	for i := 0; i < 500; i++ {
		k.Schedule(Time(i%7), func() { n++ })
	}
	k.RunAll()
	if n != 500 {
		t.Fatalf("processed %d events, want 500", n)
	}
}

// Property: for any set of non-negative delays, events fire in sorted order
// and the processed count equals the number of scheduled events.
func TestKernelOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		k := NewKernel()
		var fired []Time
		for _, d := range delays {
			k.Schedule(Time(d), func() { fired = append(fired, k.Now()) })
		}
		k.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return k.Processed() == uint64(len(delays))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0.000000s"},
		{1500000, "1.500000s"},
		{Never, "never"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
	if got := FromSeconds(0); got != 0 {
		t.Errorf("FromSeconds(0) = %v", got)
	}
}

func TestKernelAtCallEarlyFiresBeforeNormalEventsAtSameInstant(t *testing.T) {
	k := NewKernel()
	var got []string
	push := func(s string) func(any) { return func(any) { got = append(got, s) } }
	// A normal event scheduled long before the early one must still yield.
	k.At(10, func() { got = append(got, "normal-1") })
	k.AtCall(10, push("normal-2"), nil)
	k.AtCallEarly(10, push("early-1"), nil)
	k.At(10, func() { got = append(got, "normal-3") })
	k.AtCallEarly(10, push("early-2"), nil)
	k.RunAll()
	want := []string{"early-1", "early-2", "normal-1", "normal-2", "normal-3"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestKernelAtCallEarlyKeepsTimestampOrder(t *testing.T) {
	k := NewKernel()
	var got []Time
	fn := func(any) { got = append(got, k.Now()) }
	k.AtCallEarly(20, fn, nil)
	k.At(10, func() { got = append(got, k.Now()) })
	k.AtCallEarly(5, fn, nil)
	k.RunAll()
	if len(got) != 3 || got[0] != 5 || got[1] != 10 || got[2] != 20 {
		t.Fatalf("fired at %v, want [5 10 20]", got)
	}
}

func TestKernelAtCallEarlyCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	ev := k.AtCallEarly(10, func(any) { fired = true }, nil)
	ev.Cancel()
	k.RunAll()
	if fired {
		t.Error("cancelled early event fired")
	}
	if k.Processed() != 0 {
		t.Errorf("Processed() = %d, want 0", k.Processed())
	}
}
