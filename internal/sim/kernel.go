package sim

import (
	"fmt"
	"slices"
	"time"
)

// EventID is a generation-counted handle to a scheduled callback, returned
// by Kernel.Schedule, Kernel.At and Kernel.AtCall. It is a small value (not
// a pointer into the kernel's event storage), so the kernel is free to
// recycle the underlying slot after the event fires or is compacted away:
// a stale handle becomes inert rather than aliasing a newer event. The zero
// value is inert.
type EventID struct {
	k   *Kernel
	idx uint32
	gen uint32
}

// live reports whether the handle still refers to its original, un-fired
// occupant of the slot.
func (e EventID) live() bool {
	return e.k != nil && e.k.slots[e.idx].gen == e.gen
}

// At reports the instant the event is scheduled for, or 0 when the event
// already fired, was recycled, or e is the zero value.
func (e EventID) At() Time {
	if !e.live() {
		return 0
	}
	return e.k.slots[e.idx].at
}

// Pending reports whether the event is still queued and will fire.
func (e EventID) Pending() bool {
	return e.live() && !e.k.slots[e.idx].canceled
}

// Cancel prevents the event from firing. Cancelling an already fired,
// already cancelled or recycled event — or the zero EventID — is a no-op.
// The event's callback (and everything it captures) is released immediately;
// the queue entry itself is dropped lazily.
func (e EventID) Cancel() {
	if !e.live() {
		return
	}
	k := e.k
	s := &k.slots[e.idx]
	if s.canceled {
		return
	}
	s.canceled = true
	s.fn = nil
	s.fnArg = nil
	s.arg = nil
	k.canceledQueued++
	k.maybeCompact()
}

// Canceled reports whether Cancel was called before the event fired. After
// the kernel recycles the slot for a newer event the answer degrades to
// false (the handle is stale and carries no history).
func (e EventID) Canceled() bool {
	if e.k == nil {
		return false
	}
	s := &e.k.slots[e.idx]
	// gen == e.gen: still queued (possibly cancelled, awaiting compaction).
	// gen == e.gen+1: freed but not yet reused; the flag still describes us.
	if s.gen != e.gen && s.gen != e.gen+1 {
		return false
	}
	return s.canceled
}

// eventSlot is one arena entry. Slots are recycled through a freelist; gen
// is odd while the slot is live and even while it is free, incrementing on
// every allocation and every release so stale EventIDs can never match.
type eventSlot struct {
	at    Time
	seq   uint64
	fn    func()
	fnArg func(any)
	arg   any
	// next links slots scheduled for the same instant into a FIFO chain
	// (stored as idx+1; 0 terminates). Only the chain head sits in the heap,
	// so the heap tracks distinct timestamps rather than individual events.
	next     uint32
	gen      uint32
	canceled bool
	// early events fire before every normal event sharing their timestamp,
	// regardless of scheduling order (see AtCallEarly).
	early bool
}

// tcacheSize is the number of recently appended-to chains the kernel
// remembers (power of two). A cache hit turns scheduling at an already
// queued instant into a pointer append — no heap traffic at all.
const tcacheSize = 4

// tcacheEntry remembers the tail of a queued chain so that another event
// for the same instant can be appended in O(1). tail is idx+1; 0 = empty.
type tcacheEntry struct {
	at   Time
	tail uint32
}

// Kernel is a sequential discrete event simulator. It is not safe for
// concurrent use; replicated runs each own a private Kernel.
//
// Events live in a kernel-owned arena. Same-instant events are linked into
// FIFO chains, an index-based 4-ary min-heap orders the chain heads by
// time, and Run drains one instant at a time into a reusable batch buffer,
// restores the exact (early, seq) order with one sort, and dispatches
// sequentially — so the per-event cost in same-instant bursts is an append
// and a compare, not a heap sift. Steady state performs no allocations.
type Kernel struct {
	slots []eventSlot
	free  []uint32 // freelist of recycled slot indices
	heap  []uint32 // 4-ary min-heap of chain-head slot indices, ordered by (at, seq)

	// batch holds the instant currently being dispatched, in firing order;
	// batchPos is the next entry to dispatch. The buffer is reused across
	// instants. batchAt is the batch's timestamp while dispatching is true;
	// events scheduled for exactly that instant from inside a callback are
	// spliced into the batch instead of touching the heap.
	batch       []uint32
	batchPos    int
	batchAt     Time
	dispatching bool

	// tcache maps a few recent instants to their chain tails for O(1)
	// same-time appends. Entries are invalidated when their instant drains,
	// and wholesale on compaction.
	tcache [tcacheSize]tcacheEntry

	// batchCmp is the (early, seq) comparator for sorting a drained batch,
	// built once so sorting stays allocation-free.
	batchCmp func(a, b uint32) int

	now     Time
	seq     uint64
	stopped bool
	// queued counts events that are scheduled but have not yet fired or
	// been dropped (chained, heaped or sitting in the live batch).
	queued int
	// canceledQueued counts cancelled events still occupying queue entries;
	// when they dominate the queue it is compacted.
	canceledQueued int
	// processed counts events that actually fired (cancelled events are
	// excluded); exposed for benchmarks and sanity checks.
	processed uint64

	// budgetEvents/budgetWall bound each Run call when positive (SetBudget);
	// budgetHit latches that a Run stopped early on an exhausted budget.
	budgetEvents uint64
	budgetWall   time.Duration
	budgetHit    bool

	// invariantChecks enables the opt-in runtime self-checks (time order on
	// dispatch). Off by default: the checks are for tests and fuzzing.
	invariantChecks bool
}

// NewKernel returns a kernel with the clock at zero and an empty queue.
func NewKernel() *Kernel {
	k := &Kernel{
		slots: make([]eventSlot, 0, 1024),
		heap:  make([]uint32, 0, 64),
		batch: make([]uint32, 0, 256),
	}
	k.batchCmp = func(a, b uint32) int {
		sa, sb := &k.slots[a], &k.slots[b]
		if sa.early != sb.early {
			if sa.early {
				return -1
			}
			return 1
		}
		if sa.seq < sb.seq {
			return -1
		}
		return 1
	}
	return k
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of queued (possibly cancelled) events.
func (k *Kernel) Pending() int { return k.queued }

// Processed reports how many events have fired so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Live reports the number of queued events that will actually fire
// (cancelled entries awaiting compaction are excluded).
func (k *Kernel) Live() int { return k.queued - k.canceledQueued }

// SetBudget bounds the kernel's remaining work: once the lifetime processed
// count reaches maxEvents (0 = unlimited), or a single Run call spends
// maxWall of real time (0 = unlimited, checked every 4096 events), the run
// stops early and BudgetExhausted reports true. The event budget is
// cumulative across Run calls, so a driver stepping the kernel in epochs
// (the sharded scheduler) truncates at the same event as one continuous
// Run. This is the opt-in guard for replicated sweeps — a runaway
// replication is truncated and marked instead of hanging the whole sweep.
// An event budget keeps truncation deterministic; a wall-clock budget does
// not.
func (k *Kernel) SetBudget(maxEvents uint64, maxWall time.Duration) {
	k.budgetEvents = maxEvents
	k.budgetWall = maxWall
}

// BudgetExhausted reports whether any Run so far stopped early because a
// SetBudget limit expired.
func (k *Kernel) BudgetExhausted() bool { return k.budgetHit }

// SetInvariantChecks toggles the kernel's opt-in runtime self-checks
// (currently: dispatched events must never travel back in time). Tests and
// the fuzzing harnesses enable them; production sweeps leave them off.
func (k *Kernel) SetInvariantChecks(on bool) { k.invariantChecks = on }

// ctx renders the kernel's position for panic messages, so a post-mortem
// knows when the impossible happened and how much work was still queued.
func (k *Kernel) ctx() string {
	return fmt.Sprintf("now=%v processed=%d live=%d", k.now, k.processed, k.Live())
}

// Schedule enqueues fn to run after delay d (d must be >= 0) and returns a
// cancellable handle.
func (k *Kernel) Schedule(d Time, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d (%s)", d, k.ctx()))
	}
	return k.At(k.now+d, fn)
}

// At enqueues fn to run at absolute time t (t must not be in the past) and
// returns a cancellable handle.
func (k *Kernel) At(t Time, fn func()) EventID {
	if fn == nil {
		panic(fmt.Sprintf("sim: nil event function (%s)", k.ctx()))
	}
	idx, s := k.alloc(t)
	s.fn = fn
	gen := s.gen
	k.enqueue(idx, t, false)
	return EventID{k: k, idx: idx, gen: gen}
}

// AtCall enqueues fn(arg) to run at absolute time t. Unlike At it needs no
// closure: hot paths keep one long-lived fn and pass per-event context
// through arg (a pointer in an interface does not allocate), which keeps
// scheduling entirely allocation-free.
func (k *Kernel) AtCall(t Time, fn func(arg any), arg any) EventID {
	if fn == nil {
		panic(fmt.Sprintf("sim: nil event function (%s)", k.ctx()))
	}
	idx, s := k.alloc(t)
	s.fnArg = fn
	s.arg = arg
	gen := s.gen
	k.enqueue(idx, t, false)
	return EventID{k: k, idx: idx, gen: gen}
}

// AtCallEarly is AtCall for state-expiry bookkeeping: the event fires at t
// before every normal event scheduled for the same instant, regardless of
// scheduling order. Simulation layers use it to retire state whose validity
// interval is half-open [start, t) — e.g. the radio medium's channel-busy
// counters — so that a normal event executing exactly at t already observes
// the state as expired. Early events must not have observable side effects
// beyond such bookkeeping: among themselves they still fire in scheduling
// order, but their position relative to normal events differs from plain
// AtCall.
func (k *Kernel) AtCallEarly(t Time, fn func(arg any), arg any) EventID {
	if fn == nil {
		panic(fmt.Sprintf("sim: nil event function (%s)", k.ctx()))
	}
	idx, s := k.alloc(t)
	s.fnArg = fn
	s.arg = arg
	s.early = true
	gen := s.gen
	k.enqueue(idx, t, true)
	return EventID{k: k, idx: idx, gen: gen}
}

// alloc takes a slot from the freelist (or grows the arena), stamps it with
// t and the next sequence number and returns it. The returned pointer is
// only valid until the next alloc.
func (k *Kernel) alloc(t Time) (uint32, *eventSlot) {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule into the past: at=%v (%s)", t, k.ctx()))
	}
	k.seq++
	var idx uint32
	if n := len(k.free); n > 0 {
		idx = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.slots = append(k.slots, eventSlot{})
		idx = uint32(len(k.slots) - 1)
	}
	s := &k.slots[idx]
	s.at = t
	s.seq = k.seq
	s.gen++ // odd: live
	s.canceled = false
	s.early = false
	s.next = 0
	return idx, s
}

// release returns a fired or compacted slot to the freelist, dropping the
// callback (and everything it captures) immediately.
func (k *Kernel) release(idx uint32) {
	s := &k.slots[idx]
	s.fn = nil
	s.fnArg = nil
	s.arg = nil
	s.gen++ // even: free
	k.free = append(k.free, idx)
}

// tcacheSlot hashes an instant into the chain-tail cache.
func tcacheSlot(t Time) int {
	return int((uint64(t) * 0x9E3779B97F4A7C15) >> 62)
}

// enqueue routes a freshly allocated slot to its queue position: spliced
// into the live batch when a callback schedules for the instant currently
// dispatching, appended to a cached chain on a tail-cache hit, or pushed as
// a new chain head otherwise.
func (k *Kernel) enqueue(idx uint32, t Time, early bool) {
	k.queued++
	if k.dispatching && t == k.batchAt {
		k.batchInsert(idx, early)
		return
	}
	h := tcacheSlot(t)
	if e := &k.tcache[h]; e.tail != 0 && e.at == t {
		k.slots[e.tail-1].next = idx + 1
		e.tail = idx + 1
		return
	}
	k.heapPush(idx)
	k.tcache[h] = tcacheEntry{at: t, tail: idx + 1}
}

// batchInsert splices an event scheduled for the instant currently being
// dispatched into the batch. It carries the highest sequence number seen so
// far, so a normal event goes last; an early event goes after the remaining
// early events but before every remaining normal one — exactly where the
// (at, early, seq) order puts it.
func (k *Kernel) batchInsert(idx uint32, early bool) {
	if !early {
		k.batch = append(k.batch, idx)
		return
	}
	// Binary search the undispatched tail for the first normal event.
	lo, hi := k.batchPos, len(k.batch)
	for lo < hi {
		mid := (lo + hi) / 2
		if k.slots[k.batch[mid]].early {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	k.batch = append(k.batch, 0)
	copy(k.batch[lo+1:], k.batch[lo:])
	k.batch[lo] = idx
}

// less orders two chain heads by (time, sequence). Only distinct instants
// compete in the heap — exact same-instant ordering is restored by the
// batch sort — but the sequence tiebreak keeps the layout deterministic
// when cache misses produce several chains for one instant.
func (k *Kernel) less(a, b uint32) bool {
	sa, sb := &k.slots[a], &k.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

// heapPush appends idx and sifts it up the 4-ary heap.
func (k *Kernel) heapPush(idx uint32) {
	k.heap = append(k.heap, idx)
	i := len(k.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !k.less(k.heap[i], k.heap[p]) {
			break
		}
		k.heap[i], k.heap[p] = k.heap[p], k.heap[i]
		i = p
	}
}

// heapPop removes the minimum (heap[0]).
func (k *Kernel) heapPop() {
	n := len(k.heap) - 1
	k.heap[0] = k.heap[n]
	k.heap = k.heap[:n]
	if n > 0 {
		k.siftDown(0)
	}
}

func (k *Kernel) siftDown(i int) {
	n := len(k.heap)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if k.less(k.heap[c], k.heap[best]) {
				best = c
			}
		}
		if !k.less(k.heap[best], k.heap[i]) {
			return
		}
		k.heap[i], k.heap[best] = k.heap[best], k.heap[i]
		i = best
	}
}

// compactThreshold is the minimum number of cancelled entries before lazy
// compaction kicks in; below it, dropping them at dispatch is cheaper.
const compactThreshold = 64

// maybeCompact rebuilds the queue without cancelled entries once they make
// up more than half of it. Cancellation is otherwise lazy (entries of
// cancelled events are dropped when their instant dispatches), so a
// workload that cancels almost everything it schedules — e.g. ACK timers —
// cannot grow the queue without bound. Cancelled events sitting in the live
// batch are skipped at dispatch instead; the counter is adjusted per entry
// actually removed, so their accounting survives a compaction.
func (k *Kernel) maybeCompact() {
	if k.canceledQueued <= compactThreshold || k.canceledQueued*2 <= k.queued {
		return
	}
	removed := 0
	kept := k.heap[:0]
	for _, head := range k.heap {
		newHead := uint32(0) // idx+1; 0 = chain fully cancelled
		tail := uint32(0)
		cur := head
		for {
			next := k.slots[cur].next
			if k.slots[cur].canceled {
				k.release(cur)
				removed++
			} else {
				k.slots[cur].next = 0
				if newHead == 0 {
					newHead = cur + 1
				} else {
					k.slots[tail-1].next = cur + 1
				}
				tail = cur + 1
			}
			if next == 0 {
				break
			}
			cur = next - 1
		}
		if newHead != 0 {
			kept = append(kept, newHead-1)
		}
	}
	k.heap = kept
	k.canceledQueued -= removed
	k.queued -= removed
	for i := (len(k.heap) - 2) / 4; i >= 0; i-- {
		k.siftDown(i)
	}
	// Chain tails may have been unlinked or rechained; drop every cached tail.
	for i := range k.tcache {
		k.tcache[i].tail = 0
	}
}

// drain pops every chain scheduled for instant t off the heap into the
// batch buffer and restores the exact (early, seq) firing order with one
// sort. Chains are already seq-ordered, so for the common single-chain,
// no-early instant the sort's presorted check is a single linear pass.
func (k *Kernel) drain(t Time) {
	k.batchAt = t
	for len(k.heap) > 0 {
		idx := k.heap[0]
		if k.slots[idx].at != t {
			break
		}
		k.heapPop()
		for {
			k.batch = append(k.batch, idx)
			next := k.slots[idx].next
			k.slots[idx].next = 0
			if next == 0 {
				break
			}
			idx = next - 1
		}
	}
	for i := range k.tcache {
		if k.tcache[i].tail != 0 && k.tcache[i].at == t {
			k.tcache[i].tail = 0
		}
	}
	if len(k.batch) > 1 {
		slices.SortFunc(k.batch, k.batchCmp)
	}
	k.dispatching = true
}

// requeueBatch pushes the undispatched remainder of the batch back onto the
// heap (as singleton chains) when Stop or a budget cuts a Run short
// mid-instant; their sequence numbers restore the order on the next drain.
func (k *Kernel) requeueBatch() {
	for _, idx := range k.batch[k.batchPos:] {
		k.heapPush(idx)
	}
	k.batch = k.batch[:0]
	k.batchPos = 0
	k.dispatching = false
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the queue is empty or the
// next event lies strictly after `until`. The clock is left at the time of
// the last executed event (or at `until` if nothing remained to execute
// before it).
func (k *Kernel) Run(until Time) {
	k.stopped = false
	fired := uint64(0)
	var wallStart time.Time
	if k.budgetWall > 0 {
		wallStart = time.Now()
	}
	for {
		if k.batchPos < len(k.batch) {
			if k.stopped {
				k.requeueBatch()
				break
			}
			if k.budgetEvents > 0 && k.processed >= k.budgetEvents {
				k.budgetHit = true
				k.requeueBatch()
				break
			}
			if k.budgetWall > 0 && fired&4095 == 4095 && time.Since(wallStart) > k.budgetWall {
				k.budgetHit = true
				k.requeueBatch()
				break
			}
			idx := k.batch[k.batchPos]
			k.batchPos++
			s := &k.slots[idx]
			k.queued--
			if s.canceled {
				k.canceledQueued--
				k.release(idx)
				continue
			}
			if k.invariantChecks && s.at < k.now {
				panic(fmt.Sprintf("sim: heap order violated: popped at=%v (%s)", s.at, k.ctx()))
			}
			fired++
			// Copy out before releasing: the slot is recycled before the
			// callback runs, so the callback may reuse it (and may grow the
			// arena, invalidating s).
			at, fn, fnArg, arg := s.at, s.fn, s.fnArg, s.arg
			k.release(idx)
			k.now = at
			k.processed++
			if fn != nil {
				fn()
			} else {
				fnArg(arg)
			}
			continue
		}
		k.batch = k.batch[:0]
		k.batchPos = 0
		k.dispatching = false
		if len(k.heap) == 0 || k.stopped {
			break
		}
		if k.budgetEvents > 0 && k.processed >= k.budgetEvents {
			k.budgetHit = true
			break
		}
		if k.budgetWall > 0 && fired&4095 == 4095 && time.Since(wallStart) > k.budgetWall {
			k.budgetHit = true
			break
		}
		t := k.slots[k.heap[0]].at
		if t > until {
			break
		}
		k.drain(t)
	}
	if until != Never && k.now < until {
		k.now = until
	}
}

// RunAll executes every queued event regardless of timestamp. Intended for
// tests; scenario code should bound runs with Run(until).
func (k *Kernel) RunAll() { k.Run(Never) }
