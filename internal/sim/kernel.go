package sim

import (
	"fmt"
	"time"
)

// EventID is a generation-counted handle to a scheduled callback, returned
// by Kernel.Schedule, Kernel.At and Kernel.AtCall. It is a small value (not
// a pointer into the kernel's event storage), so the kernel is free to
// recycle the underlying slot after the event fires or is compacted away:
// a stale handle becomes inert rather than aliasing a newer event. The zero
// value is inert.
type EventID struct {
	k   *Kernel
	idx uint32
	gen uint32
}

// live reports whether the handle still refers to its original, un-fired
// occupant of the slot.
func (e EventID) live() bool {
	return e.k != nil && e.k.slots[e.idx].gen == e.gen
}

// At reports the instant the event is scheduled for, or 0 when the event
// already fired, was recycled, or e is the zero value.
func (e EventID) At() Time {
	if !e.live() {
		return 0
	}
	return e.k.slots[e.idx].at
}

// Pending reports whether the event is still queued and will fire.
func (e EventID) Pending() bool {
	return e.live() && !e.k.slots[e.idx].canceled
}

// Cancel prevents the event from firing. Cancelling an already fired,
// already cancelled or recycled event — or the zero EventID — is a no-op.
// The event's callback (and everything it captures) is released immediately;
// the queue entry itself is dropped lazily.
func (e EventID) Cancel() {
	if !e.live() {
		return
	}
	k := e.k
	s := &k.slots[e.idx]
	if s.canceled {
		return
	}
	s.canceled = true
	s.fn = nil
	s.fnArg = nil
	s.arg = nil
	k.canceledQueued++
	k.maybeCompact()
}

// Canceled reports whether Cancel was called before the event fired. After
// the kernel recycles the slot for a newer event the answer degrades to
// false (the handle is stale and carries no history).
func (e EventID) Canceled() bool {
	if e.k == nil {
		return false
	}
	s := &e.k.slots[e.idx]
	// gen == e.gen: still queued (possibly cancelled, awaiting compaction).
	// gen == e.gen+1: freed but not yet reused; the flag still describes us.
	if s.gen != e.gen && s.gen != e.gen+1 {
		return false
	}
	return s.canceled
}

// eventSlot is one arena entry. Slots are recycled through a freelist; gen
// is odd while the slot is live and even while it is free, incrementing on
// every allocation and every release so stale EventIDs can never match.
type eventSlot struct {
	at       Time
	seq      uint64
	fn       func()
	fnArg    func(any)
	arg      any
	gen      uint32
	canceled bool
	// early events fire before every normal event sharing their timestamp,
	// regardless of scheduling order (see AtCallEarly).
	early bool
}

// Kernel is a sequential discrete event simulator. It is not safe for
// concurrent use; replicated runs each own a private Kernel.
//
// Events live in a kernel-owned arena and are ordered by an index-based
// 4-ary min-heap, so steady-state scheduling performs no allocations.
type Kernel struct {
	slots []eventSlot
	free  []uint32 // freelist of recycled slot indices
	heap  []uint32 // 4-ary min-heap of slot indices, ordered by (at, seq)

	now     Time
	seq     uint64
	stopped bool
	// canceledQueued counts cancelled events still occupying heap entries;
	// when they dominate the queue it is compacted.
	canceledQueued int
	// processed counts events that actually fired (cancelled events are
	// excluded); exposed for benchmarks and sanity checks.
	processed uint64

	// budgetEvents/budgetWall bound each Run call when positive (SetBudget);
	// budgetHit latches that a Run stopped early on an exhausted budget.
	budgetEvents uint64
	budgetWall   time.Duration
	budgetHit    bool

	// invariantChecks enables the opt-in runtime self-checks (heap order on
	// pop). Off by default: the checks are for tests and fuzzing.
	invariantChecks bool
}

// NewKernel returns a kernel with the clock at zero and an empty queue.
func NewKernel() *Kernel {
	return &Kernel{
		slots: make([]eventSlot, 0, 1024),
		heap:  make([]uint32, 0, 1024),
	}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of queued (possibly cancelled) events.
func (k *Kernel) Pending() int { return len(k.heap) }

// Processed reports how many events have fired so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Live reports the number of queued events that will actually fire
// (cancelled entries awaiting compaction are excluded).
func (k *Kernel) Live() int { return len(k.heap) - k.canceledQueued }

// SetBudget bounds every subsequent Run call: after maxEvents processed
// events (0 = unlimited) or maxWall of real time (0 = unlimited, checked
// every 4096 events) the run stops early and BudgetExhausted reports true.
// This is the opt-in guard for replicated sweeps — a runaway replication is
// truncated and marked instead of hanging the whole sweep. An event budget
// keeps truncation deterministic; a wall-clock budget does not.
func (k *Kernel) SetBudget(maxEvents uint64, maxWall time.Duration) {
	k.budgetEvents = maxEvents
	k.budgetWall = maxWall
}

// BudgetExhausted reports whether any Run so far stopped early because a
// SetBudget limit expired.
func (k *Kernel) BudgetExhausted() bool { return k.budgetHit }

// SetInvariantChecks toggles the kernel's opt-in runtime self-checks
// (currently: popped events must never travel back in time). Tests and the
// fuzzing harnesses enable them; production sweeps leave them off.
func (k *Kernel) SetInvariantChecks(on bool) { k.invariantChecks = on }

// ctx renders the kernel's position for panic messages, so a post-mortem
// knows when the impossible happened and how much work was still queued.
func (k *Kernel) ctx() string {
	return fmt.Sprintf("now=%v processed=%d live=%d", k.now, k.processed, k.Live())
}

// Schedule enqueues fn to run after delay d (d must be >= 0) and returns a
// cancellable handle.
func (k *Kernel) Schedule(d Time, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d (%s)", d, k.ctx()))
	}
	return k.At(k.now+d, fn)
}

// At enqueues fn to run at absolute time t (t must not be in the past) and
// returns a cancellable handle.
func (k *Kernel) At(t Time, fn func()) EventID {
	if fn == nil {
		panic(fmt.Sprintf("sim: nil event function (%s)", k.ctx()))
	}
	idx, s := k.alloc(t)
	s.fn = fn
	k.heapPush(idx)
	return EventID{k: k, idx: idx, gen: s.gen}
}

// AtCall enqueues fn(arg) to run at absolute time t. Unlike At it needs no
// closure: hot paths keep one long-lived fn and pass per-event context
// through arg (a pointer in an interface does not allocate), which keeps
// scheduling entirely allocation-free.
func (k *Kernel) AtCall(t Time, fn func(arg any), arg any) EventID {
	if fn == nil {
		panic(fmt.Sprintf("sim: nil event function (%s)", k.ctx()))
	}
	idx, s := k.alloc(t)
	s.fnArg = fn
	s.arg = arg
	k.heapPush(idx)
	return EventID{k: k, idx: idx, gen: s.gen}
}

// AtCallEarly is AtCall for state-expiry bookkeeping: the event fires at t
// before every normal event scheduled for the same instant, regardless of
// scheduling order. Simulation layers use it to retire state whose validity
// interval is half-open [start, t) — e.g. the radio medium's channel-busy
// counters — so that a normal event executing exactly at t already observes
// the state as expired. Early events must not have observable side effects
// beyond such bookkeeping: among themselves they still fire in scheduling
// order, but their position relative to normal events differs from plain
// AtCall.
func (k *Kernel) AtCallEarly(t Time, fn func(arg any), arg any) EventID {
	if fn == nil {
		panic(fmt.Sprintf("sim: nil event function (%s)", k.ctx()))
	}
	idx, s := k.alloc(t)
	s.fnArg = fn
	s.arg = arg
	s.early = true
	k.heapPush(idx)
	return EventID{k: k, idx: idx, gen: s.gen}
}

// alloc takes a slot from the freelist (or grows the arena), stamps it with
// t and the next sequence number and returns it. The returned pointer is
// only valid until the next alloc.
func (k *Kernel) alloc(t Time) (uint32, *eventSlot) {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule into the past: at=%v (%s)", t, k.ctx()))
	}
	k.seq++
	var idx uint32
	if n := len(k.free); n > 0 {
		idx = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.slots = append(k.slots, eventSlot{})
		idx = uint32(len(k.slots) - 1)
	}
	s := &k.slots[idx]
	s.at = t
	s.seq = k.seq
	s.gen++ // odd: live
	s.canceled = false
	s.early = false
	return idx, s
}

// release returns a fired or compacted slot to the freelist, dropping the
// callback (and everything it captures) immediately.
func (k *Kernel) release(idx uint32) {
	s := &k.slots[idx]
	s.fn = nil
	s.fnArg = nil
	s.arg = nil
	s.gen++ // even: free
	k.free = append(k.free, idx)
}

// less orders two slot indices by (time, class, sequence): early events
// precede normal events at the same instant, and the sequence number makes
// the ordering total and therefore the whole simulation deterministic — two
// same-class events scheduled for the same instant fire in scheduling order.
func (k *Kernel) less(a, b uint32) bool {
	sa, sb := &k.slots[a], &k.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	if sa.early != sb.early {
		return sa.early
	}
	return sa.seq < sb.seq
}

// heapPush appends idx and sifts it up the 4-ary heap.
func (k *Kernel) heapPush(idx uint32) {
	k.heap = append(k.heap, idx)
	i := len(k.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !k.less(k.heap[i], k.heap[p]) {
			break
		}
		k.heap[i], k.heap[p] = k.heap[p], k.heap[i]
		i = p
	}
}

// heapPop removes the minimum (heap[0]).
func (k *Kernel) heapPop() {
	n := len(k.heap) - 1
	k.heap[0] = k.heap[n]
	k.heap = k.heap[:n]
	if n > 0 {
		k.siftDown(0)
	}
}

func (k *Kernel) siftDown(i int) {
	n := len(k.heap)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if k.less(k.heap[c], k.heap[best]) {
				best = c
			}
		}
		if !k.less(k.heap[best], k.heap[i]) {
			return
		}
		k.heap[i], k.heap[best] = k.heap[best], k.heap[i]
		i = best
	}
}

// compactThreshold is the minimum queue length before lazy compaction kicks
// in; below it, draining cancelled entries through heapPop is cheaper.
const compactThreshold = 64

// maybeCompact rebuilds the heap without cancelled entries once they make up
// more than half of it. Cancellation is otherwise lazy (heap entries of
// cancelled events are dropped when popped), so a workload that cancels
// almost everything it schedules — e.g. ACK timers — cannot grow the queue
// without bound.
func (k *Kernel) maybeCompact() {
	if k.canceledQueued <= compactThreshold || k.canceledQueued*2 <= len(k.heap) {
		return
	}
	kept := k.heap[:0]
	for _, idx := range k.heap {
		if k.slots[idx].canceled {
			k.release(idx)
			continue
		}
		kept = append(kept, idx)
	}
	k.heap = kept
	k.canceledQueued = 0
	for i := (len(k.heap) - 2) / 4; i >= 0; i-- {
		k.siftDown(i)
	}
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the queue is empty or the
// next event lies strictly after `until`. The clock is left at the time of
// the last executed event (or at `until` if nothing remained to execute
// before it).
func (k *Kernel) Run(until Time) {
	k.stopped = false
	fired := uint64(0)
	var wallStart time.Time
	if k.budgetWall > 0 {
		wallStart = time.Now()
	}
	for len(k.heap) > 0 && !k.stopped {
		if k.budgetEvents > 0 && fired >= k.budgetEvents {
			k.budgetHit = true
			break
		}
		if k.budgetWall > 0 && fired&4095 == 4095 && time.Since(wallStart) > k.budgetWall {
			k.budgetHit = true
			break
		}
		idx := k.heap[0]
		s := &k.slots[idx]
		if s.at > until {
			break
		}
		k.heapPop()
		if s.canceled {
			k.canceledQueued--
			k.release(idx)
			continue
		}
		if k.invariantChecks && s.at < k.now {
			panic(fmt.Sprintf("sim: heap order violated: popped at=%v (%s)", s.at, k.ctx()))
		}
		fired++
		// Copy out before releasing: the slot is recycled before the
		// callback runs, so the callback may reuse it (and may grow the
		// arena, invalidating s).
		at, fn, fnArg, arg := s.at, s.fn, s.fnArg, s.arg
		k.release(idx)
		k.now = at
		k.processed++
		if fn != nil {
			fn()
		} else {
			fnArg(arg)
		}
	}
	if until != Never && k.now < until {
		k.now = until
	}
}

// RunAll executes every queued event regardless of timestamp. Intended for
// tests; scenario code should bound runs with Run(until).
func (k *Kernel) RunAll() { k.Run(Never) }
