package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are created via Kernel.Schedule and
// Kernel.At and may be cancelled before they fire. The zero value is inert.
type Event struct {
	at       Time
	seq      uint64
	index    int // heap index, -1 when not queued
	canceled bool
	fn       func()
}

// At reports the instant the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already fired or
// already cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel was called before the event fired.
func (e *Event) Canceled() bool { return e.canceled }

// eventHeap orders events by (time, sequence). The sequence number makes the
// ordering total and therefore the whole simulation deterministic: two events
// scheduled for the same instant fire in scheduling order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Kernel is a sequential discrete event simulator. It is not safe for
// concurrent use; replicated runs each own a private Kernel.
type Kernel struct {
	queue   eventHeap
	now     Time
	seq     uint64
	stopped bool
	// processed counts events that actually fired (cancelled events are
	// excluded); exposed for benchmarks and sanity checks.
	processed uint64
}

// NewKernel returns a kernel with the clock at zero and an empty queue.
func NewKernel() *Kernel {
	return &Kernel{queue: make(eventHeap, 0, 1024)}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of queued (possibly cancelled) events.
func (k *Kernel) Pending() int { return len(k.queue) }

// Processed reports how many events have fired so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Schedule enqueues fn to run after delay d (d must be >= 0) and returns a
// cancellable handle.
func (k *Kernel) Schedule(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return k.At(k.now+d, fn)
}

// At enqueues fn to run at absolute time t (t must not be in the past) and
// returns a cancellable handle.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule into the past: now=%v at=%v", k.now, t))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	k.seq++
	ev := &Event{at: t, seq: k.seq, fn: fn, index: -1}
	heap.Push(&k.queue, ev)
	return ev
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the queue is empty or the
// next event lies strictly after `until`. The clock is left at the time of
// the last executed event (or at `until` if nothing remained to execute
// before it).
func (k *Kernel) Run(until Time) {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		next := k.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&k.queue)
		if next.canceled {
			continue
		}
		k.now = next.at
		k.processed++
		next.fn()
	}
	if until != Never && k.now < until {
		k.now = until
	}
}

// RunAll executes every queued event regardless of timestamp. Intended for
// tests; scenario code should bound runs with Run(until).
func (k *Kernel) RunAll() { k.Run(Never) }
