package sim

import (
	"testing"
)

// FuzzKernelScheduleCancel drives the arena/heap kernel and a naive
// reference queue (sorted linear scan, no arena, no freelist, no lazy
// compaction) through identical randomized programs of schedule, early
// schedule, cancel, fire-time re-schedule and fire-time cancel operations,
// and asserts identical firing traces. It is the adversarial counterpart of
// kernel_test.go: the byte stream decides the interleaving, so `go test
// -fuzz` explores schedule/cancel orderings (including cancelling events
// from inside callbacks and recycling slots mid-run) no hand-written table
// would cover. Committed seeds live in testdata/fuzz.

// fuzzOp is one pre-run program step decoded from the fuzz input.
type fuzzOp struct {
	kind  byte // 0 schedule, 1 schedule-early, 2 cancel, 3 fire→schedule, 4 fire→cancel
	at    Time // absolute schedule time (kinds 0,1,3,4)
	extra byte // child delay (3) or cancel target selector (2,4)
}

func decodeProgram(data []byte) []fuzzOp {
	var ops []fuzzOp
	for i := 0; i+3 < len(data) && len(ops) < 300; i += 4 {
		ops = append(ops, fuzzOp{
			kind:  data[i] % 5,
			at:    Time(uint16(data[i+1])<<4 | uint16(data[i+2])),
			extra: data[i+3],
		})
	}
	return ops
}

// fireRec is one trace entry: which logical event fired at what time.
type fireRec struct {
	idx int
	at  Time
}

// fuzzQueue abstracts the two implementations for the program runner.
type fuzzQueue interface {
	schedule(at Time, early bool, fn func()) (cancel func())
	now() Time
	run()
}

// realQueue adapts Kernel.
type realQueue struct{ k *Kernel }

func (q realQueue) schedule(at Time, early bool, fn func()) func() {
	wrap := func(any) { fn() }
	var id EventID
	if early {
		id = q.k.AtCallEarly(at, wrap, nil)
	} else {
		id = q.k.At(at, fn)
	}
	return id.Cancel
}
func (q realQueue) now() Time { return q.k.Now() }
func (q realQueue) run()      { q.k.RunAll() }

// naiveEvent and naiveQueue are the reference implementation: an append-only
// slice scanned linearly for the minimum of (at, early-first, seq).
type naiveEvent struct {
	at       Time
	seq      uint64
	early    bool
	canceled bool
	fired    bool
	fn       func()
}

type naiveQueue struct {
	events []*naiveEvent
	seq    uint64
	t      Time
}

func (q *naiveQueue) schedule(at Time, early bool, fn func()) func() {
	q.seq++
	e := &naiveEvent{at: at, seq: q.seq, early: early, fn: fn}
	q.events = append(q.events, e)
	return func() { e.canceled = true }
}

func (q *naiveQueue) now() Time { return q.t }

func (q *naiveQueue) run() {
	for {
		var best *naiveEvent
		for _, e := range q.events {
			if e.fired || e.canceled {
				continue
			}
			if best == nil || e.at < best.at ||
				(e.at == best.at && e.early && !best.early) ||
				(e.at == best.at && e.early == best.early && e.seq < best.seq) {
				best = e
			}
		}
		if best == nil {
			return
		}
		best.fired = true
		q.t = best.at
		best.fn()
	}
}

// runProgram executes the decoded program against one implementation and
// returns the firing trace. Event behaviours are bound to logical event
// indices at creation, so both implementations execute the same logical
// program; any divergence in kernel ordering or cancellation shows up as a
// trace diff.
func runProgram(ops []fuzzOp, q fuzzQueue) []fireRec {
	var trace []fireRec
	cancels := make(map[int]func())
	next := 0
	var create func(kind byte, at Time, extra byte)
	create = func(kind byte, at Time, extra byte) {
		idx := next
		next++
		fire := func() {
			trace = append(trace, fireRec{idx: idx, at: q.now()})
			switch kind {
			case 3:
				create(0, q.now()+Time(extra), 0)
			case 4:
				if next > 0 {
					if c := cancels[int(extra)%next]; c != nil {
						c()
					}
				}
			}
		}
		cancels[idx] = q.schedule(at, kind == 1, fire)
	}
	for _, op := range ops {
		switch op.kind {
		case 2:
			if next > 0 {
				if c := cancels[int(op.extra)%next]; c != nil {
					c()
				}
			}
		default:
			create(op.kind, op.at, op.extra)
		}
	}
	q.run()
	return trace
}

func FuzzKernelScheduleCancel(f *testing.F) {
	f.Add([]byte{0, 0, 10, 0, 1, 0, 10, 0, 0, 0, 10, 0, 2, 0, 0, 1})
	f.Add([]byte{3, 0, 50, 7, 4, 0, 50, 0, 0, 0, 50, 3, 1, 0, 50, 2, 2, 0, 0, 0})
	f.Add([]byte{0, 1, 0, 0, 3, 0, 255, 255, 4, 2, 0, 1, 1, 1, 0, 9, 2, 0, 0, 3, 0, 1, 0, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeProgram(data)
		real := runProgram(ops, realQueue{k: NewKernel()})
		naive := runProgram(ops, &naiveQueue{})
		if len(real) != len(naive) {
			t.Fatalf("trace length: kernel %d, reference %d", len(real), len(naive))
		}
		for i := range real {
			if real[i] != naive[i] {
				t.Fatalf("trace entry %d: kernel %+v, reference %+v", i, real[i], naive[i])
			}
		}
	})
}
