package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestRandStreamsDiffer(t *testing.T) {
	a := NewRandStream(42, 0)
	b := NewRandStream(42, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("streams 0 and 1 collided on %d/1000 draws", same)
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a := NewRand(1)
	b := NewRand(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("seeds 1 and 2 collided on %d/1000 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(3)
	seen := make(map[int]int)
	for i := 0; i < 60000; i++ {
		v := r.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn(6) = %d", v)
		}
		seen[v]++
	}
	for v := 0; v < 6; v++ {
		if seen[v] < 8500 || seen[v] > 11500 {
			t.Errorf("Intn(6) value %d appeared %d/60000 times, want ~10000", v, seen[v])
		}
	}
}

func TestIntnPanics(t *testing.T) {
	r := NewRand(1)
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestIntRange(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		v := r.IntRange(3, 9)
		if v < 3 || v > 9 {
			t.Fatalf("IntRange(3,9) = %d", v)
		}
	}
	// Degenerate single-value range.
	for i := 0; i < 10; i++ {
		if v := r.IntRange(4, 4); v != 4 {
			t.Fatalf("IntRange(4,4) = %d", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(13)
	const n = 200000
	const mean = 40.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Errorf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestExpTimeMinimum(t *testing.T) {
	r := NewRand(17)
	for i := 0; i < 1000; i++ {
		if d := r.ExpTime(2); d < 1 {
			t.Fatalf("ExpTime returned %v < 1µs", d)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRand(19)
	for _, mean := range []float64{0.5, 3, 25, 100} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(23)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("Normal variance = %v, want ~9", variance)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRand(29)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	prop := func(seed uint64, size uint8) bool {
		n := int(size%50) + 1
		r := NewRand(seed)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i
		}
		r.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		seen := make([]bool, n)
		for _, v := range vals {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Intn is always within bounds for arbitrary positive n.
func TestIntnProperty(t *testing.T) {
	prop := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
