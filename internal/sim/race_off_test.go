//go:build !race

package sim_test

// raceEnabled reports whether the race detector instruments this build;
// sync.Pool-based zero-allocation assertions do not hold under it.
const raceEnabled = false
