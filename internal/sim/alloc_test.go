package sim_test

import (
	"testing"

	"qma/internal/markov"
	. "qma/internal/sim"
)

// The event arena and freelist exist so the hot loop performs no heap
// allocations; these tests pin that property so a refactor cannot silently
// reintroduce per-event garbage (BenchmarkKernelEvent reports the same
// number, but only when someone reads the bench output). The file is an
// external test package so it can also pin allocation-free behaviour of
// packages that themselves import sim (markov below).

func TestScheduleRunSteadyStateDoesNotAllocate(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Warm the arena and heap capacity.
	k.Schedule(1, fn)
	k.Run(k.Now() + 1)
	allocs := testing.AllocsPerRun(1000, func() {
		k.Schedule(1, fn)
		k.Run(k.Now() + 1)
	})
	if allocs != 0 {
		t.Errorf("steady-state Schedule+Run allocates %.1f objects per event, want 0", allocs)
	}
}

func TestAtCallSteadyStateDoesNotAllocate(t *testing.T) {
	k := NewKernel()
	type ctx struct{ n int }
	c := &ctx{}
	fn := func(a any) { a.(*ctx).n++ }
	k.AtCall(k.Now()+1, fn, c)
	k.Run(k.Now() + 1)
	allocs := testing.AllocsPerRun(1000, func() {
		k.AtCall(k.Now()+1, fn, c)
		k.Run(k.Now() + 1)
	})
	if allocs != 0 {
		t.Errorf("steady-state AtCall+Run allocates %.1f objects per event, want 0", allocs)
	}
	if c.n < 1000 {
		t.Errorf("callback ran %d times, want >= 1000", c.n)
	}
}

func TestCancelSteadyStateDoesNotAllocate(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	allocs := testing.AllocsPerRun(1000, func() {
		ev := k.Schedule(1, fn)
		ev.Cancel()
		k.Run(k.Now() + 1)
	})
	if allocs != 0 {
		t.Errorf("schedule+cancel cycle allocates %.1f objects per event, want 0", allocs)
	}
}

func TestAtCallEarlySteadyStateDoesNotAllocate(t *testing.T) {
	k := NewKernel()
	fn := func(any) {}
	k.AtCallEarly(k.Now()+1, fn, nil)
	k.Run(k.Now() + 1)
	allocs := testing.AllocsPerRun(1000, func() {
		k.AtCallEarly(k.Now()+1, fn, nil)
		k.Run(k.Now() + 1)
	})
	if allocs != 0 {
		t.Errorf("steady-state AtCallEarly+Run allocates %.1f objects per event, want 0", allocs)
	}
}

func TestExpectedHandshakeMessagesDoesNotAllocate(t *testing.T) {
	// The Eq. 12 solve runs on a pooled workspace; a sweep over p (the
	// Fig. 26 curve, BenchmarkHandshakeMatrix) must not allocate per point.
	if raceEnabled {
		t.Skip("sync.Pool allocates under the race detector")
	}
	markov.ExpectedHandshakeMessages(0.5) // warm the pool
	allocs := testing.AllocsPerRun(200, func() {
		if markov.ExpectedHandshakeMessages(0.5) < 3 {
			t.Fatal("impossible expectation")
		}
	})
	if allocs != 0 {
		t.Errorf("ExpectedHandshakeMessages allocates %.1f objects per solve, want 0", allocs)
	}
}
