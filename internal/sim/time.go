// Package sim provides a deterministic discrete event simulation kernel and
// the pseudo-random number utilities used by every scenario in this
// repository. It replaces the role OMNeT++ plays in the paper: ordered event
// delivery on a virtual clock with reproducible randomness.
package sim

import (
	"fmt"
	"time"
)

// Time is a point on the simulation clock, measured in integer microseconds
// since the start of the run. Integer microseconds are exact for every
// duration in the IEEE 802.15.4 timing model (1 symbol = 16 µs), which keeps
// runs bit-for-bit reproducible across platforms.
type Time int64

// Duration constants expressed in simulation Time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Never is a sentinel Time that compares after every reachable instant.
const Never Time = 1<<63 - 1

// Seconds converts t to floating point seconds, for reporting only.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts t to a time.Duration for interoperability with callers that
// format durations.
func (t Time) Std() time.Duration { return time.Duration(t) * time.Microsecond }

// String renders the time as seconds with microsecond precision.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// FromSeconds converts floating point seconds to a Time, rounding to the
// nearest microsecond. It is intended for configuration values, not for
// arithmetic inside the kernel.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }
