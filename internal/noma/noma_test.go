package noma

import (
	"strings"
	"testing"

	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/qlearn"
	"qma/internal/radio"
	"qma/internal/sim"
	"qma/internal/superframe"
)

type rig struct {
	k       *sim.Kernel
	m       *radio.Medium
	clock   *superframe.Clock
	engines []*Engine
}

// newRig wires n noma engines over an explicit graph. startupSubslots large
// keeps the engines in cautious startup (observation only), which the forced
// capture tests use to stage deterministic transmissions.
func newRig(t *testing.T, links [][2]int, n int, opts Options, startupSubslots int) *rig {
	t.Helper()
	g := radio.NewGraphTopology(n)
	for _, l := range links {
		g.AddLink(frame.NodeID(l[0]), frame.NodeID(l[1]))
	}
	k := sim.NewKernel()
	m := radio.NewMedium(k, g, sim.NewRand(7))
	clock := superframe.NewClock(superframe.DefaultConfig())
	r := &rig{k: k, m: m, clock: clock}
	for i := 0; i < n; i++ {
		e := New(Config{
			MAC:             mac.Config{ID: frame.NodeID(i), Kernel: k, Medium: m, Clock: clock, MaxRetries: -1},
			Levels:          opts.Levels,
			LevelStepDB:     opts.LevelStepDB,
			Learn:           opts.Learn,
			Explorer:        opts.Explorer,
			Rng:             sim.NewRandStream(7, uint64(i)),
			StartupSubslots: startupSubslots,
			StartupPunish:   true,
		})
		r.engines = append(r.engines, e)
		m.Attach(frame.NodeID(i), e)
		e.Start()
	}
	return r
}

func dataTo(dst, src frame.NodeID, seq uint32) *frame.Frame {
	return &frame.Frame{Kind: frame.Data, Src: src, Dst: dst, Origin: src, Sink: dst, Seq: seq, MPDUBytes: 40}
}

// TestCaptureSharingDeterministic stages the headline NOMA behaviour with no
// randomness: hidden-node pair 0 and 2 transmit simultaneously in the same
// subslot at different power levels towards 1. With capture enabled the
// level-0 frame decodes (delivered despite the overlap), 0 is ACKed, and 2's
// failure is softened to RewardCapturedOver by the overheard foreign ACK.
func TestCaptureSharingDeterministic(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}, {1, 2}}, 3, Options{Levels: 2, LevelStepDB: 6}, 1<<20)
	r.m.SetCaptureThreshold(6)

	r.engines[0].Enqueue(dataTo(1, 0, 1))
	r.engines[2].Enqueue(dataTo(1, 2, 1))

	at := r.clock.SubslotStart(0, 5)
	sendAt := func(e *Engine, level int) {
		r.k.At(at, func() { e.execute(5, e.action(Send, level)) })
	}
	sendAt(r.engines[0], 0)
	sendAt(r.engines[2], 1)
	r.k.Run(at + 10*sim.Millisecond)

	if got := r.engines[1].Base().Stats().Delivered; got != 1 {
		t.Fatalf("sink delivered %d frames, want 1 (the captured level-0 frame)", got)
	}
	if got := r.m.Stats(1).RxCaptured; got != 1 {
		t.Fatalf("RxCaptured = %d, want 1: the delivery must have happened under overlap", got)
	}
	if s := r.engines[0].Base().Stats(); s.TxSuccess != 1 || s.TxFail != 0 {
		t.Errorf("strong sender stats: %+v", s)
	}
	weak := r.engines[2]
	if s := weak.Base().Stats(); s.TxFail != 1 {
		t.Errorf("weak sender stats: %+v", s)
	}
	if es := weak.EngineStats(); es.CapturedOver != 1 {
		t.Errorf("weak sender engine stats: %+v, want CapturedOver=1", es)
	}
	// The softened reward must actually have reached the Q-table: the
	// (subslot 5, Send level 1) entry moved to the captured-over target, not
	// the full send-failure target.
	q := weak.Learner().Table().Q(5, weak.action(Send, 1))
	params := qlearn.DefaultParams()
	wantSoft := (1-params.Alpha)*params.InitQ + params.Alpha*(RewardCapturedOver+params.Gamma*params.InitQ)
	wantHard := (1-params.Alpha)*params.InitQ + params.Alpha*(RewardSendFail+params.Gamma*params.InitQ)
	if q != wantSoft {
		t.Errorf("Q(5, Send@1) = %v, want the captured-over target %v (full-failure target would be %v)",
			q, wantSoft, wantHard)
	}
}

// TestCaptureOffBothFail is the control: same staging without capture — the
// overlap kills both frames and no captured-over relief applies (no ACK
// exists to overhear).
func TestCaptureOffBothFail(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}, {1, 2}}, 3, Options{Levels: 2, LevelStepDB: 6}, 1<<20)
	r.engines[0].Enqueue(dataTo(1, 0, 1))
	r.engines[2].Enqueue(dataTo(1, 2, 1))
	at := r.clock.SubslotStart(0, 5)
	r.k.At(at, func() { r.engines[0].execute(5, r.engines[0].action(Send, 0)) })
	r.k.At(at, func() { r.engines[2].execute(5, r.engines[2].action(Send, 1)) })
	r.k.Run(at + 10*sim.Millisecond)

	if got := r.engines[1].Base().Stats().Delivered; got != 0 {
		t.Fatalf("sink delivered %d frames without capture, want 0", got)
	}
	for _, i := range []int{0, 2} {
		if s := r.engines[i].Base().Stats(); s.TxFail != 1 {
			t.Errorf("sender %d stats: %+v, want TxFail=1", i, s)
		}
		if es := r.engines[i].EngineStats(); es.CapturedOver != 0 {
			t.Errorf("sender %d: CapturedOver=%d, want 0", i, es.CapturedOver)
		}
	}
}

// TestSuccessBonusPerLevel pins the power-aware success reward: an
// uncontested reduced-level transmission earns the level bonus on top of the
// send-success reward.
func TestSuccessBonusPerLevel(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}}, 2, Options{Levels: 3, LevelStepDB: 6}, 1<<20)
	r.engines[0].Enqueue(dataTo(1, 0, 1))
	at := r.clock.SubslotStart(0, 3)
	r.k.At(at, func() { r.engines[0].execute(3, r.engines[0].action(Send, 2)) })
	r.k.Run(at + 10*sim.Millisecond)

	e := r.engines[0]
	if s := e.Base().Stats(); s.TxSuccess != 1 {
		t.Fatalf("stats: %+v, want one success", s)
	}
	es := e.EngineStats()
	if es.SuccessByLevel[2] != 1 {
		t.Errorf("SuccessByLevel = %v, want level 2 credited", es.SuccessByLevel)
	}
	params := qlearn.DefaultParams()
	want := (1-params.Alpha)*params.InitQ + params.Alpha*(RewardSendSuccess+2*LevelSuccessBonus+params.Gamma*params.InitQ)
	if q := e.Learner().Table().Q(3, e.action(Send, 2)); q != want {
		t.Errorf("Q(3, Send@2) = %v, want %v", q, want)
	}
}

// TestEndToEndDelivery runs the engine autonomously (default startup,
// parameter-based exploration) on an idle channel: every queued frame must
// eventually be delivered.
func TestEndToEndDelivery(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}}, 2, Options{}, -1)
	for i := 0; i < 20; i++ {
		f := dataTo(1, 0, uint32(i+1))
		r.k.Schedule(sim.Time(i)*100*sim.Millisecond, func() { r.engines[0].Enqueue(f) })
	}
	r.k.Run(10 * sim.Second)
	if s := r.engines[0].Base().Stats(); s.TxSuccess != 20 {
		t.Fatalf("stats: %+v, want 20 successes", s)
	}
	if got := r.engines[1].Base().Stats().Delivered; got != 20 {
		t.Fatalf("receiver delivered %d, want 20", got)
	}
}

// TestActionSpaceRoundTrip pins the kind/level flattening.
func TestActionSpaceRoundTrip(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}}, 2, Options{Levels: 3}, -1)
	e := r.engines[0]
	if e.actions != 9 {
		t.Fatalf("K=3 action space is %d, want 9", e.actions)
	}
	seen := map[int]bool{}
	for _, k := range []Kind{Backoff, CCA, Send} {
		for level := 0; level < 3; level++ {
			a := e.action(k, level)
			if e.kindOf(a) != k || e.levelOf(a) != level {
				t.Errorf("action(%v,%d)=%d round-trips to (%v,%d)", k, level, a, e.kindOf(a), e.levelOf(a))
			}
			seen[a] = true
		}
	}
	if len(seen) != 9 {
		t.Errorf("flattening collided: %d distinct actions, want 9", len(seen))
	}
	if e.ReduceDB(2) != 2*DefaultLevelStepDB {
		t.Errorf("ReduceDB(2) = %v", e.ReduceDB(2))
	}
}

// TestCCAActionTransmitsOnIdleAndBacksOffOnBusy pins the CCA kind of the
// extended action space: on an idle channel a forced (CCA, level) action
// transmits at the level's power; with a neighbour mid-transmission the CCA
// reports busy, nothing is sent, and the action's Q-entry takes the
// RewardCCABusy update.
func TestCCAActionTransmitsOnIdleAndBacksOffOnBusy(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}, {1, 2}}, 3, Options{Levels: 2, LevelStepDB: 6}, 1<<20)
	e := r.engines[0]
	e.Enqueue(dataTo(1, 0, 1))
	at := r.clock.SubslotStart(0, 4)
	r.k.At(at, func() { e.execute(4, e.action(CCA, 1)) })
	r.k.Run(at + 10*sim.Millisecond)
	if s := e.Base().Stats(); s.TxSuccess != 1 {
		t.Fatalf("idle-channel CCA action: %+v, want one success", s)
	}
	if es := e.EngineStats(); es.KindCount[CCA] != 1 || es.LevelCount[1] != 1 {
		t.Errorf("engine stats %+v, want one CCA at level 1", es)
	}

	// Busy case: the neighbour transmits across the CCA window, so the
	// assessment at 0 reports busy.
	r2 := newRig(t, [][2]int{{0, 1}, {1, 2}}, 3, Options{Levels: 2, LevelStepDB: 6}, 1<<20)
	e2 := r2.engines[0]
	e2.Enqueue(dataTo(1, 0, 1))
	jam := &frame.Frame{Kind: frame.Data, Src: 1, Dst: frame.Broadcast, MPDUBytes: 60}
	at2 := r2.clock.SubslotStart(0, 4)
	r2.k.At(at2, func() { r2.m.StartTX(1, jam, 0) })
	r2.k.At(at2, func() { e2.execute(4, e2.action(CCA, 0)) })
	r2.k.Run(at2 + 10*sim.Millisecond)
	if s := e2.Base().Stats(); s.TxAttempts != 0 {
		t.Fatalf("busy-channel CCA action transmitted anyway: %+v", s)
	}
	params := qlearn.DefaultParams()
	want := (1-params.Alpha)*params.InitQ + params.Alpha*(RewardCCABusy+params.Gamma*params.InitQ)
	if q := e2.Learner().Table().Q(4, e2.action(CCA, 0)); q != want {
		t.Errorf("Q(4, CCA@0) = %v, want the CCA-busy target %v", q, want)
	}
}

// TestNewFromOptionsThroughRegistry pins the registry construction path and
// the scenario-level startup convention (0 = default, negative = disabled).
func TestNewFromOptionsThroughRegistry(t *testing.T) {
	g := radio.NewGraphTopology(2)
	g.AddLink(0, 1)
	k := sim.NewKernel()
	m := radio.NewMedium(k, g, sim.NewRand(1))
	clock := superframe.NewClock(superframe.DefaultConfig())
	cfg := mac.Config{ID: 0, Kernel: k, Medium: m, Clock: clock}

	eng, err := mac.Build(Proto, cfg, Options{Levels: 3, StartupSubslots: -1}, sim.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	e := eng.(*Engine)
	if e.Levels() != 3 {
		t.Errorf("Levels() = %d, want 3", e.Levels())
	}
	if e.startupLeft != 0 {
		t.Errorf("negative StartupSubslots must disable cautious startup, got %d", e.startupLeft)
	}
	if e.Learner().Table().Actions() != NumKinds*3 {
		t.Errorf("table actions = %d, want %d", e.Learner().Table().Actions(), NumKinds*3)
	}

	if _, err := mac.Build(Proto, mac.Config{ID: 1, Kernel: k, Medium: m, Clock: clock}, Options{Levels: 99}, sim.NewRand(3)); err == nil {
		t.Error("Build accepted out-of-range Levels")
	}
}

// TestKindString pins the action-kind stringer used in logs and tables.
func TestKindString(t *testing.T) {
	for kind, want := range map[Kind]string{Backoff: "Backoff", CCA: "CCA", Send: "Send", Kind(7): "Kind(7)"} {
		if got := kind.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", uint8(kind), got, want)
		}
	}
}

// TestRegistry pins the protocol's registry contract.
func TestRegistry(t *testing.T) {
	p, ok := mac.Lookup(Proto)
	if !ok {
		t.Fatal("noma is not registered")
	}
	if !p.NeedsCapture {
		t.Error("noma must declare NeedsCapture (capture-less comparison families skip it)")
	}
	if alias, ok := mac.Lookup("noma-ql"); !ok || alias.Name != Proto {
		t.Error("alias noma-ql does not resolve to noma")
	}
	if err := p.Validate(Options{Levels: MaxLevels + 1}); err == nil {
		t.Error("Validate accepted Levels beyond MaxLevels")
	}
	if err := p.Validate(Options{LevelStepDB: -3}); err == nil {
		t.Error("Validate accepted a negative step")
	}
	if err := p.Validate(struct{}{}); err == nil {
		t.Error("Validate accepted foreign options")
	}
	if err := p.Validate(nil); err != nil {
		t.Errorf("Validate rejected nil options: %v", err)
	}
}

// TestParseOptions pins the -mac-opt surface.
func TestParseOptions(t *testing.T) {
	p, _ := mac.Lookup(Proto)
	got, err := p.ParseOptions(map[string]string{"levels": "3", "step": "4.5", "alpha": "0.25"})
	if err != nil {
		t.Fatal(err)
	}
	o := got.(Options)
	if o.Levels != 3 || o.LevelStepDB != 4.5 {
		t.Errorf("parsed %+v", o)
	}
	if o.Learn.Alpha != 0.25 || o.Learn.Gamma != qlearn.DefaultParams().Gamma {
		t.Errorf("partial learn override drifted from defaults: %+v", o.Learn)
	}
	if _, err := p.ParseOptions(map[string]string{"power": "11"}); err == nil ||
		!strings.Contains(err.Error(), "levels") {
		t.Errorf("unknown key error %v should list supported keys", err)
	}
	if _, err := p.ParseOptions(map[string]string{"levels": "two"}); err == nil {
		t.Error("malformed integer accepted")
	}
}

// TestAdoptExplorer pins the scenario-level explorer pass-through.
func TestAdoptExplorer(t *testing.T) {
	p, _ := mac.Lookup(Proto)
	ex := qlearn.Constant{Eps: 0.2}
	o := p.AdoptExplorer(nil, ex).(Options)
	if o.Explorer != ex {
		t.Errorf("AdoptExplorer(nil) = %+v", o)
	}
	prior := qlearn.Constant{Eps: 0.9}
	o = p.AdoptExplorer(Options{Explorer: prior}, ex).(Options)
	if o.Explorer != prior {
		t.Error("AdoptExplorer overrode an explorer already present in the options")
	}
}
