package noma

import (
	"fmt"

	"qma/internal/mac"
	"qma/internal/qlearn"
	"qma/internal/sim"
)

// Proto is the NOMA MAC's canonical registry key.
const Proto = "noma"

// Options tunes a NOMA engine through the protocol registry. The zero value
// (or nil options) selects K=2 levels 6 dB apart with the paper's learning
// defaults.
type Options struct {
	// Levels is K, the number of power levels (0 selects DefaultLevels).
	Levels int
	// LevelStepDB is the power reduction per level in dB (0 selects
	// DefaultLevelStepDB).
	LevelStepDB float64
	// Learn are the Q-learning hyperparameters (zero value selects the
	// paper's defaults).
	Learn qlearn.Params
	// Explorer decides ρ; nil selects parameter-based exploration.
	Explorer qlearn.Explorer
	// StartupSubslots is Δ (0 = engine default, negative = disabled),
	// following the scenario-level convention of core.Options.
	StartupSubslots int
	// DisableStartupPunish turns off the §4.3 punishments.
	DisableStartupPunish bool
}

func init() {
	mac.Register(mac.Protocol{
		Name:          Proto,
		Aliases:       []string{"noma-ql"},
		Display:       "NOMA power-level QL",
		Validate:      validateOptions,
		ParseOptions:  parseOptions,
		AdoptExplorer: adoptExplorer,
		NeedsCapture:  true,
		New: func(cfg mac.Config, opts any, rng *sim.Rand) mac.Engine {
			var o Options
			if opts != nil {
				o = opts.(Options)
			}
			return NewFromOptions(o, cfg, rng)
		},
	})
}

func validateOptions(opts any) error {
	if opts == nil {
		return nil
	}
	o, ok := opts.(Options)
	if !ok {
		return mac.OptionsError(Proto, opts, Options{})
	}
	if o.Levels < 0 || o.Levels > MaxLevels {
		return fmt.Errorf("noma: Levels=%d out of [0,%d] (0 = default %d)", o.Levels, MaxLevels, DefaultLevels)
	}
	if o.LevelStepDB < 0 {
		return fmt.Errorf("noma: LevelStepDB=%v must not be negative", o.LevelStepDB)
	}
	if o.Learn != (qlearn.Params{}) {
		if err := o.Learn.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// parseOptions maps -mac-opt key=value pairs onto Options. Learning
// hyperparameters start from the paper's defaults so a single override
// leaves the rest intact.
func parseOptions(kv map[string]string) (any, error) {
	var o Options
	learn := qlearn.DefaultParams()
	touched := false
	fields := mac.LearnParamFields(&learn, &touched)
	fields["levels"] = mac.IntField(&o.Levels)
	fields["step"] = mac.FloatField(&o.LevelStepDB)
	fields["startup"] = mac.IntField(&o.StartupSubslots)
	if err := mac.ParseKV(Proto, kv, fields); err != nil {
		return nil, err
	}
	if touched {
		o.Learn = learn
	}
	return o, nil
}

// adoptExplorer implements the registry's AdoptExplorer hook.
func adoptExplorer(opts any, explorer qlearn.Explorer) any {
	var o Options
	if opts != nil {
		o = opts.(Options)
	}
	if o.Explorer == nil {
		o.Explorer = explorer
	}
	return o
}

// NewFromOptions builds a NOMA engine over macCfg from scenario-level
// options, resolving the cautious-startup convention (0 = engine default,
// negative = disabled) like core.NewFromOptions does for QMA.
func NewFromOptions(opts Options, macCfg mac.Config, rng *sim.Rand) *Engine {
	startup := opts.StartupSubslots
	switch {
	case startup == 0:
		startup = -1
	case startup < 0:
		startup = 0
	}
	return New(Config{
		MAC:             macCfg,
		Levels:          opts.Levels,
		LevelStepDB:     opts.LevelStepDB,
		Learn:           opts.Learn,
		Explorer:        opts.Explorer,
		Rng:             rng,
		StartupSubslots: startup,
		StartupPunish:   !opts.DisableStartupPunish,
	})
}
