// Package noma implements a NOMA-flavoured power-level Q-learning MAC: QMA's
// per-subslot channel access algorithm (internal/core) with the action space
// extended by a transmit-power dimension, the direction of the multi-power
// level Q-learning line of work for NOMA mMTC random access
// (arXiv:2301.05196) applied to QMA's slot structure.
//
// Each node learns over the cross product of QMA's three actions — backoff,
// CCA-then-send, send — and K discrete power levels (level ℓ transmits
// ℓ·LevelStepDB dB below the reference power). On a capture-enabled medium
// (radio.Medium.SetCaptureThreshold) two deliberately different power levels
// can share a subslot: the strong frame decodes through SINR capture while
// the weak one fails softly. The reward function is power-aware in both
// directions:
//
//   - Success at a reduced level earns a bonus on top of QMA's Eq. 7/8
//     rewards (succeeding with less power is strictly better: it spends less
//     energy and leaves headroom under the capture threshold for a
//     neighbour).
//   - A failed transmission during whose ACK wait a foreign ACK was
//     overheard is rewarded RewardCapturedOver instead of the full collision
//     punishment: the overheard ACK is the transmitter-side evidence that
//     the subslot carried a completed (captured) transaction rather than a
//     mutual kill, so the subslot remains worth contesting at a different
//     power level. This is the observable proxy for "my frame was captured
//     over" — the transmitter cannot see the receiver-side SINR directly.
//
// Everything below channel access — queues, ACKs, retries, forwarding — is
// the shared mac.Base, so comparisons against QMA and CSMA/CA isolate the
// access discipline, exactly like the other protocol packages. With K=1 the
// action space degenerates to QMA's three actions (plus the captured-over
// reward shaping).
package noma

import (
	"fmt"

	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/qlearn"
	"qma/internal/sim"
)

// Kind is one of QMA's three channel access action kinds; the full NOMA
// action is a (Kind, level) pair flattened into kind·K + level.
type Kind uint8

const (
	// Backoff waits for the next subslot.
	Backoff Kind = iota
	// CCA performs a clear channel assessment and transmits on idle.
	CCA
	// Send transmits immediately.
	Send
	// NumKinds is the number of action kinds.
	NumKinds = 3
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Backoff:
		return "Backoff"
	case CCA:
		return "CCA"
	case Send:
		return "Send"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Reward shaping on top of QMA's Eq. 6–8 values (internal/core). The base
// rewards are duplicated here rather than imported so the two protocols stay
// independently tunable.
const (
	// RewardBackoffOverhear / RewardBackoffIdle are QMA's Eq. 6.
	RewardBackoffOverhear = 2
	RewardBackoffIdle     = 0
	// RewardCCASuccessTx / RewardCCAFailedTx / RewardCCABusy are Eq. 7.
	RewardCCASuccessTx = 3
	RewardCCAFailedTx  = -2
	RewardCCABusy      = 1
	// RewardSendSuccess / RewardSendFail are Eq. 8.
	RewardSendSuccess = 4
	RewardSendFail    = -3
	// RewardCapturedOver replaces the failure punishment when a foreign ACK
	// was overheard during the ACK wait: the slot completed a transaction
	// for someone (capture), so the failure is contention lost, not a
	// destroyed subslot.
	RewardCapturedOver = -1
	// LevelSuccessBonus is added per power level on success: succeeding
	// ℓ levels below the reference power earns ℓ·LevelSuccessBonus extra.
	LevelSuccessBonus = 0.5
	// StartupPunishCCA / StartupPunishSend are QMA's §4.3 cautious-startup
	// punishments, applied to every power level of the subslot.
	StartupPunishCCA  = -2
	StartupPunishSend = -3
)

// Defaults for the power dimension.
const (
	// DefaultLevels is K, the number of power levels.
	DefaultLevels = 2
	// MaxLevels bounds K: with the default 6 dB step, 4 levels span 18 dB —
	// about the programmable range of the AT86RF231 (+3 to −17 dBm).
	MaxLevels = 4
	// DefaultLevelStepDB is the power reduction per level.
	DefaultLevelStepDB = 6.0
)

// Config assembles a NOMA engine.
type Config struct {
	// MAC configures the shared MAC base. OnOverhear and OnAccept are owned
	// by the engine and must be nil.
	MAC mac.Config
	// Levels is K (0 selects DefaultLevels).
	Levels int
	// LevelStepDB is the dB reduction per level (0 selects the default).
	LevelStepDB float64
	// Table is the Q-value storage over subslots × (NumKinds·Levels)
	// actions. Nil selects a float64 table with Learn parameters.
	Table qlearn.Table
	// Learn are the hyperparameters used when Table is nil (zero value
	// selects qlearn.DefaultParams).
	Learn qlearn.Params
	// Explorer decides the exploration rate ρ. Nil selects the paper's
	// parameter-based strategy.
	Explorer qlearn.Explorer
	// Rng drives exploration decisions; required.
	Rng *sim.Rand
	// StartupSubslots is Δ, the cautious-startup window (§4.3). Negative
	// selects the default of two full frames; 0 disables it.
	StartupSubslots int
	// StartupPunish applies the §4.3 punishments (all power levels of the
	// CCA and Send kinds) to subslots with overheard traffic.
	StartupPunish bool
}

// Stats aggregates NOMA-specific counters on top of the shared mac.Stats.
type Stats struct {
	// KindCount counts executed actions by kind.
	KindCount [NumKinds]uint64
	// LevelCount counts executed CCA/Send actions by power level.
	LevelCount []uint64
	// SuccessByLevel counts acknowledged transmissions by power level.
	SuccessByLevel []uint64
	// Explorations counts randomly selected actions.
	Explorations uint64
	// Decisions counts decision-step invocations.
	Decisions uint64
	// Deferrals counts transmissions postponed past the CAP end.
	Deferrals uint64
	// StartupObservations counts cautious-startup subslot observations.
	StartupObservations uint64
	// CapturedOver counts failed transmissions whose punishment was softened
	// to RewardCapturedOver because a foreign ACK was overheard during the
	// ACK wait.
	CapturedOver uint64
}

// pending tracks a backoff-type action whose reward window is open.
type pending struct {
	subslot int
	action  int
	startup bool
}

// Engine is one node's NOMA power-level Q-learning MAC.
type Engine struct {
	base *mac.Base

	learner  *qlearn.Learner
	explorer qlearn.Explorer
	rng      *sim.Rand

	levels  int
	stepDB  float64
	actions int // NumKinds * levels

	startupLeft   int
	startupInit   int
	startupPunish bool

	armed    sim.EventID
	pend     *pending
	overhear bool

	// epoch counts power-cycle faults (mac.Rebooter); see core.Engine.
	epoch uint32

	// txWaiting/foreignAck implement the captured-over detection: foreignAck
	// records whether an ACK addressed to another node was overheard while
	// this node's own ACK wait was open.
	txWaiting  bool
	foreignAck bool

	stats Stats
}

var _ mac.Engine = (*Engine)(nil)

// New assembles an engine from cfg. It panics on an invalid configuration;
// scenario builders construct engines at assembly time.
func New(cfg Config) *Engine {
	if cfg.Rng == nil {
		panic("noma: Rng is required")
	}
	if cfg.MAC.OnOverhear != nil || cfg.MAC.OnAccept != nil {
		panic("noma: MAC.OnOverhear and MAC.OnAccept are owned by the engine")
	}
	if cfg.MAC.Clock == nil {
		panic("noma: MAC.Clock is required")
	}
	if cfg.Levels == 0 {
		cfg.Levels = DefaultLevels
	}
	if cfg.Levels < 1 || cfg.Levels > MaxLevels {
		panic(fmt.Sprintf("noma: Levels=%d out of [1,%d]", cfg.Levels, MaxLevels))
	}
	if cfg.LevelStepDB == 0 {
		cfg.LevelStepDB = DefaultLevelStepDB
	}
	if cfg.LevelStepDB < 0 {
		panic(fmt.Sprintf("noma: LevelStepDB=%v must be positive", cfg.LevelStepDB))
	}
	subslots := cfg.MAC.Clock.Config().Subslots
	actions := NumKinds * cfg.Levels
	table := cfg.Table
	if table == nil {
		p := cfg.Learn
		if p == (qlearn.Params{}) {
			p = qlearn.DefaultParams()
		}
		table = qlearn.NewFloatTableOn(subslots, actions, p,
			cfg.MAC.Scratch.Float64s(subslots*actions))
	}
	if table.States() != subslots || table.Actions() != actions {
		panic(fmt.Sprintf("noma: table dimensions %dx%d, want %dx%d",
			table.States(), table.Actions(), subslots, actions))
	}
	explorer := cfg.Explorer
	if explorer == nil {
		explorer = qlearn.NewParameterBased()
	}
	if cfg.StartupSubslots < 0 {
		cfg.StartupSubslots = 2 * subslots
	}

	e := &Engine{
		learner:       qlearn.NewLearnerOn(table, e0BackoffAction, cfg.MAC.Scratch.Ints(subslots)),
		explorer:      explorer,
		rng:           cfg.Rng,
		levels:        cfg.Levels,
		stepDB:        cfg.LevelStepDB,
		actions:       actions,
		startupLeft:   cfg.StartupSubslots,
		startupInit:   cfg.StartupSubslots,
		startupPunish: cfg.StartupPunish,
	}
	e.stats.LevelCount = make([]uint64, cfg.Levels)
	e.stats.SuccessByLevel = make([]uint64, cfg.Levels)
	cfg.MAC.OnOverhear = e.onOverhear
	cfg.MAC.OnAccept = e.arm
	e.base = mac.NewBase(cfg.MAC)
	return e
}

// e0BackoffAction is the learner's initial policy: backoff at level 0
// (action index Backoff·K + 0 == 0 for every K).
const e0BackoffAction = 0

// action flattens a (kind, level) pair; kindOf/levelOf invert it.
func (e *Engine) action(k Kind, level int) int { return int(k)*e.levels + level }
func (e *Engine) kindOf(a int) Kind            { return Kind(a / e.levels) }
func (e *Engine) levelOf(a int) int            { return a % e.levels }

// ReduceDB reports the power reduction of the given level in dB.
func (e *Engine) ReduceDB(level int) float64 { return float64(level) * e.stepDB }

// Levels reports K.
func (e *Engine) Levels() int { return e.levels }

// Learner exposes the Q-learning state for instrumentation and tests.
func (e *Engine) Learner() *qlearn.Learner { return e.learner }

// EngineStats returns a copy of the NOMA-specific counters.
func (e *Engine) EngineStats() Stats {
	s := e.stats
	s.LevelCount = append([]uint64(nil), e.stats.LevelCount...)
	s.SuccessByLevel = append([]uint64(nil), e.stats.SuccessByLevel...)
	return s
}

// Base implements mac.Engine.
func (e *Engine) Base() *mac.Base { return e.base }

// Deliver implements radio.Handler by delegating to the shared receive path.
func (e *Engine) Deliver(f *frame.Frame) { e.base.Deliver(f) }

// Start implements mac.Engine: it arms the subslot ticker.
func (e *Engine) Start() { e.arm() }

// Enqueue implements mac.Engine, re-arming the ticker when traffic arrives.
func (e *Engine) Enqueue(f *frame.Frame) bool {
	ok := e.base.Enqueue(f)
	if ok {
		e.arm()
	}
	return ok
}

// Reboot implements mac.Rebooter: wipe the Q-table, policy, pending reward
// window, captured-over detection and cautious-startup progress along with
// the shared MAC state, then restart as a freshly joined node.
func (e *Engine) Reboot() {
	e.base.Reboot()
	e.armed.Cancel()
	e.armed = sim.EventID{}
	e.pend = nil
	e.overhear = false
	e.txWaiting = false
	e.foreignAck = false
	e.startupLeft = e.startupInit
	e.learner.Reset(e0BackoffAction)
	e.epoch++
	e.arm()
}

// arm schedules the next subslot tick unless one is already scheduled.
func (e *Engine) arm() {
	if e.armed.Pending() && e.armed.At() > e.base.Kernel().Now() {
		return
	}
	next := e.base.Clock().NextSubslotStart(e.base.Kernel().Now())
	e.armed = e.base.Kernel().At(next, e.tick)
}

// needTick reports whether the engine has any reason to observe the next
// subslot boundary.
func (e *Engine) needTick() bool {
	return e.pend != nil || e.startupLeft > 0 || !e.base.Queue().Empty() || e.base.Busy()
}

// tick runs at every subslot boundary while the engine is active, mirroring
// QMA's evaluation/decision split.
func (e *Engine) tick() {
	now := e.base.Kernel().Now()
	m := e.base.Clock().Subslot(now)
	if m < 0 {
		e.armIfNeeded()
		return
	}

	if e.pend != nil {
		e.evaluateBackoff(m)
	}

	switch {
	case e.base.Busy():
		// A transmission, ACK wait or ACK duty is in progress; the outcome
		// callback performs the Q-update.
	case e.startupLeft > 0:
		e.startupObserve(m)
	case e.base.Queue().Empty():
		// No packet, no action.
	default:
		// Access-class barring gates every fresh channel-access decision
		// (see internal/core for the polling discipline).
		if barred, _ := e.base.AccessBarred(); !barred {
			e.decide(m)
		}
	}
	e.armIfNeeded()
}

func (e *Engine) armIfNeeded() {
	if e.needTick() {
		e.arm()
	}
}

// evaluateBackoff finalizes a backoff action (or cautious-startup
// observation) whose reward window just closed.
func (e *Engine) evaluateBackoff(nextSubslot int) {
	p := e.pend
	e.pend = nil
	reward := float64(RewardBackoffIdle)
	if e.overhear {
		reward = RewardBackoffOverhear
	}
	e.learner.Observe(p.subslot, p.action, reward, nextSubslot)
	if p.startup && e.startupPunish && e.overhear {
		// Mark the subslot as foreign-owned across every power level of the
		// CCA and Send kinds (§4.3 applied to the extended action space).
		for level := 0; level < e.levels; level++ {
			e.learner.Observe(p.subslot, e.action(CCA, level), StartupPunishCCA, nextSubslot)
			e.learner.Observe(p.subslot, e.action(Send, level), StartupPunishSend, nextSubslot)
		}
	}
	e.overhear = false
}

// startupObserve performs one cautious-startup subslot: backoff only.
func (e *Engine) startupObserve(m int) {
	e.startupLeft--
	e.stats.StartupObservations++
	e.pend = &pending{subslot: m, action: e0BackoffAction, startup: true}
	e.overhear = false
}

// decide runs one decision step at subslot m: explore uniformly over the
// kind × level cross product with probability ρ, exploit π(m) otherwise.
// Uniform exploration over the cross product preserves QMA's kind marginals
// (each kind is drawn with probability 1/3 for every K).
func (e *Engine) decide(m int) {
	e.stats.Decisions++
	rho := e.explorer.Rate(qlearn.ExploreContext{
		Now:              e.base.Kernel().Now(),
		QueueLevel:       e.base.Queue().Len(),
		AvgNeighborQueue: e.base.AvgNeighborQueue(),
	})

	var action int
	if e.rng.Float64() < rho {
		action = e.rng.Intn(e.actions)
		e.stats.Explorations++
	} else {
		action = e.learner.Policy(m)
	}
	e.execute(m, action)
}

// execute performs the selected action.
func (e *Engine) execute(m, action int) {
	kind, level := e.kindOf(action), e.levelOf(action)
	e.stats.KindCount[kind]++
	e.stats.LevelCount[level]++
	switch kind {
	case Backoff:
		e.pend = &pending{subslot: m, action: action}
		e.overhear = false
	case CCA:
		e.startCCA(m, action)
	case Send:
		e.startTX(m, action)
	}
}

// startCCA samples the channel at the end of the 8-symbol CCA window. Note
// the asymmetry the power dimension introduces: the CCA listens at full
// sensitivity regardless of the level the node intends to transmit at — the
// level only shapes the transmission itself.
func (e *Engine) startCCA(m, action int) {
	now := e.base.Kernel().Now()
	e.base.ExtendBusy(now + frame.CCADuration)
	ep := e.epoch
	e.base.Kernel().Schedule(frame.CCADuration, func() {
		if e.epoch != ep {
			// A reboot fault struck mid-CCA (see core.Engine.startCCA).
			return
		}
		if !e.base.Medium().CCA(e.base.ID()) {
			next := e.nextDecisionSubslot()
			e.learner.Observe(m, action, RewardCCABusy, next)
			return
		}
		e.startTX(m, action)
	})
}

// startTX transmits the queue head at the action's power level.
func (e *Engine) startTX(m, action int) {
	f := e.base.Queue().Head()
	if f == nil {
		return
	}
	now := e.base.Kernel().Now()
	cost := f.Duration()
	if !f.IsBroadcast() {
		cost += frame.AckWait
	}
	if !e.base.Clock().FitsInCAP(now, cost) {
		e.stats.Deferrals++
		return
	}
	e.txWaiting = true
	e.foreignAck = false
	e.base.SendFrameAt(f, e.ReduceDB(e.levelOf(action)), func(success bool) {
		e.finishTX(m, action, f, success)
	})
}

// finishTX applies the power-aware reward once the outcome is known, then
// lets the retry policy decide the frame's fate.
func (e *Engine) finishTX(m, action int, f *frame.Frame, success bool) {
	kind, level := e.kindOf(action), e.levelOf(action)
	capturedOver := e.foreignAck && !success
	e.txWaiting = false
	e.foreignAck = false

	var reward float64
	switch {
	case success:
		if kind == Send {
			reward = RewardSendSuccess
		} else {
			reward = RewardCCASuccessTx
		}
		reward += float64(level) * LevelSuccessBonus
		e.stats.SuccessByLevel[level]++
	case capturedOver:
		reward = RewardCapturedOver
		e.stats.CapturedOver++
	case kind == Send:
		reward = RewardSendFail
	default:
		reward = RewardCCAFailedTx
	}
	next := e.nextDecisionSubslot()
	e.learner.Observe(m, action, reward, next)
	e.base.FinishFrame(f, success)
	e.armIfNeeded()
}

// nextDecisionSubslot reports the subslot of the first boundary at which the
// agent can act again.
func (e *Engine) nextDecisionSubslot() int {
	return e.base.Clock().Subslot(e.base.Clock().NextSubslotStart(e.base.Kernel().Now()))
}

// onOverhear drives both observation channels: any decoded non-beacon frame
// marks an open backoff window as "subslot in use" (Eq. 6), and an ACK
// addressed to another node during this node's own ACK wait is the
// captured-over evidence the reward shaping keys on.
func (e *Engine) onOverhear(f *frame.Frame) {
	if f.Kind == frame.Beacon {
		return
	}
	if e.pend != nil {
		e.overhear = true
	}
	if e.txWaiting && f.Kind == frame.Ack && f.Dst != e.base.ID() {
		e.foreignAck = true
	}
}
