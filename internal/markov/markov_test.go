package markov

import (
	"math"
	"testing"
	"testing/quick"

	"qma/internal/sim"
)

func TestHandshakeChainIsStochastic(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 1} {
		if err := HandshakeChain(p).Validate(); err != nil {
			t.Errorf("p=%v: %v", p, err)
		}
	}
}

func TestPerfectChannelNeedsExactlyThreeMessages(t *testing.T) {
	if got := ExpectedHandshakeMessages(1); math.Abs(got-3) > 1e-9 {
		t.Errorf("E[messages | p=1] = %v, want 3", got)
	}
}

// TestMatrixMatchesClosedForm cross-checks the Eq. 10/11/12 matrix solution
// against the independent closed-form derivation for the whole Fig. 26
// p-range.
func TestMatrixMatchesClosedForm(t *testing.T) {
	for p := 0.05; p <= 1.0; p += 0.05 {
		m := ExpectedHandshakeMessages(p)
		c := ExpectedHandshakeMessagesClosedForm(p)
		if math.Abs(m-c) > 1e-6*math.Max(m, 1) {
			t.Errorf("p=%.2f: matrix %v vs closed form %v", p, m, c)
		}
	}
}

// TestMonteCarloAgrees cross-checks against a third, simulation-based
// estimate.
func TestMonteCarloAgrees(t *testing.T) {
	rng := sim.NewRand(42)
	for _, p := range []float64{0.3, 0.5, 0.8, 1.0} {
		want := ExpectedHandshakeMessages(p)
		got := SimulateHandshakes(p, 200000, rng)
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("p=%v: Monte Carlo %v vs matrix %v (>2%% off)", p, got, want)
		}
	}
}

// TestPaperHighPValues verifies the matrix reproduces the paper's printed
// Fig. 26 values where the figure and the printed matrix agree (large p);
// the low-p discrepancy is documented in DESIGN.md and EXPERIMENTS.md.
func TestPaperHighPValues(t *testing.T) {
	for _, tc := range []struct{ p, want float64 }{
		{1.0, 3.0}, {0.9, 3.33}, {0.8, 3.74},
	} {
		got := ExpectedHandshakeMessages(tc.p)
		if math.Abs(got-tc.want)/tc.want > 0.005 {
			t.Errorf("p=%v: %v, want paper value %v (±0.5%%)", tc.p, got, tc.want)
		}
	}
}

func TestExpectedMessagesMonotoneProperty(t *testing.T) {
	prop := func(a, b uint16) bool {
		p1 := 0.05 + 0.95*float64(a)/65535
		p2 := 0.05 + 0.95*float64(b)/65535
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		// Fewer messages are needed on a better channel, and never fewer
		// than 3.
		e1, e2 := ExpectedHandshakeMessages(p1), ExpectedHandshakeMessages(p2)
		return e1 >= e2-1e-9 && e2 >= 3-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAbsorptionIsCertain(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		b, err := HandshakeChain(p).AbsorptionProbs()
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		for i, row := range b {
			if math.Abs(row[0]-1) > 1e-9 {
				t.Errorf("p=%v: absorption from state %d = %v, want 1", p, i, row[0])
			}
		}
	}
}

func TestFundamentalSingular(t *testing.T) {
	// A chain that never leaves its transient states has singular I−Q.
	c := &Chain{
		Q: [][]float64{{0, 1}, {1, 0}},
		R: [][]float64{{0}, {0}},
	}
	if _, err := c.Fundamental(); err == nil {
		t.Fatal("expected singularity error for a non-absorbing chain")
	}
}

func TestValidateRejectsBadChains(t *testing.T) {
	bad := []*Chain{
		{Q: [][]float64{{0.5}}, R: [][]float64{{0.2}}},  // row sums to 0.7
		{Q: [][]float64{{-0.1}}, R: [][]float64{{1.1}}}, // negative entry
		{Q: [][]float64{{0, 0.5}}, R: [][]float64{{0.5}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a bad chain", i)
		}
	}
}

func TestHandshakeChainPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p out of range")
		}
	}()
	HandshakeChain(1.5)
}
