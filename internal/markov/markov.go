// Package markov implements the paper's Appendix A.1 analysis: the absorbing
// Markov chain of the DSME 3-way GTS handshake (Fig. 25), its canonical-form
// transition matrix (Eq. 10), the fundamental matrix N = (I−Q)⁻¹ (Eq. 11)
// and the expected number of messages until a handshake completes (Eq. 12,
// Fig. 26). A closed-form derivation and a Monte-Carlo simulator provide two
// independent cross-checks of the matrix computation.
package markov

import (
	"fmt"
	"math"
	"sync"

	"qma/internal/sim"
)

// Chain is an absorbing Markov chain in canonical form: Q holds the
// transient-to-transient transition probabilities (t × t) and R the
// transient-to-absorbing probabilities (t × r).
type Chain struct {
	Q [][]float64
	R [][]float64
}

// Validate checks that the chain is stochastic: every row of [Q R] must sum
// to 1 (within tolerance) and all entries must be probabilities.
func (c *Chain) Validate() error {
	t := len(c.Q)
	for i, row := range c.Q {
		if len(row) != t {
			return fmt.Errorf("markov: Q row %d has %d entries, want %d", i, len(row), t)
		}
		sum := 0.0
		for _, v := range row {
			if v < 0 || v > 1 {
				return fmt.Errorf("markov: Q[%d] contains non-probability %v", i, v)
			}
			sum += v
		}
		if i < len(c.R) {
			for _, v := range c.R[i] {
				if v < 0 || v > 1 {
					return fmt.Errorf("markov: R[%d] contains non-probability %v", i, v)
				}
				sum += v
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("markov: row %d sums to %v, want 1", i, sum)
		}
	}
	return nil
}

// newMatrix returns a rows×cols zero matrix whose rows view one flat
// backing slice (two allocations instead of rows+1).
func newMatrix(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	m := make([][]float64, rows)
	for i := range m {
		m[i] = backing[i*cols : (i+1)*cols]
	}
	return m
}

// Fundamental computes N = (I−Q)⁻¹ by Gaussian elimination with partial
// pivoting. It returns an error when I−Q is singular (the chain would never
// be absorbed from some state). The returned rows share one backing slice.
func (c *Chain) Fundamental() ([][]float64, error) {
	t := len(c.Q)
	aug := newMatrix(t, 2*t)
	n := newMatrix(t, t)
	if err := c.fundamentalInto(aug, n); err != nil {
		return nil, err
	}
	return n, nil
}

// fundamentalInto computes N = (I−Q)⁻¹ into n, using aug (t×2t) as
// elimination scratch. Both may hold stale values: every cell is rewritten.
// Factoring the scratch out of Fundamental lets the Fig. 26 sweep reuse one
// workspace across points instead of allocating ~54 objects per solve.
func (c *Chain) fundamentalInto(aug, n [][]float64) error {
	t := len(c.Q)
	// Build the augmented matrix [I−Q | I].
	a := aug
	for i := 0; i < t; i++ {
		for j := 0; j < t; j++ {
			a[i][j] = -c.Q[i][j]
			if i == j {
				a[i][j] += 1
			}
			a[i][t+j] = 0
		}
		a[i][t+i] = 1
	}
	for col := 0; col < t; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < t; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return fmt.Errorf("markov: I-Q is singular at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv := 1 / a[col][col]
		for j := col; j < 2*t; j++ {
			a[col][j] *= inv
		}
		for r := 0; r < t; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := col; j < 2*t; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	for i := 0; i < t; i++ {
		copy(n[i], a[i][t:])
	}
	return nil
}

// ExpectedSteps computes S = N·1 (Eq. 12): ExpectedSteps()[i] is the
// expected number of transient-state visits (including the start) before
// absorption when starting in state i.
func (c *Chain) ExpectedSteps() ([]float64, error) {
	n, err := c.Fundamental()
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(n))
	for i, row := range n {
		for _, v := range row {
			out[i] += v
		}
	}
	return out, nil
}

// AbsorptionProbs computes B = N·R: AbsorptionProbs()[i][k] is the
// probability of ending in absorbing state k when starting in transient
// state i.
func (c *Chain) AbsorptionProbs() ([][]float64, error) {
	n, err := c.Fundamental()
	if err != nil {
		return nil, err
	}
	t := len(n)
	if t == 0 || len(c.R) != t {
		return nil, fmt.Errorf("markov: R has %d rows, want %d", len(c.R), t)
	}
	r := len(c.R[0])
	out := make([][]float64, t)
	for i := 0; i < t; i++ {
		out[i] = make([]float64, r)
		for k := 0; k < r; k++ {
			for j := 0; j < t; j++ {
				out[i][k] += n[i][j] * c.R[j][k]
			}
		}
	}
	return out, nil
}

// HandshakeStates is the number of transient states of the Eq. 10 chain:
// the three handshake messages plus three retransmissions each.
const HandshakeStates = 12

// HandshakeChain builds the paper's Eq. 10 chain for per-message success
// probability p: states 0/3/4/5 are the GTS-request and its retries TX0–TX2,
// 1/6/7/8 the GTS-response with TX3–TX5, 2/9/10/11 the GTS-notify with
// TX6–TX8. A message dropped after 3 retries restarts the whole handshake;
// a successful notify absorbs into Success.
func HandshakeChain(p float64) *Chain {
	c := &Chain{
		Q: newMatrix(HandshakeStates, HandshakeStates),
		R: newMatrix(HandshakeStates, 1),
	}
	fillHandshakeChain(c, p)
	return c
}

// fillHandshakeChain writes the Eq. 10 transition probabilities into the
// (possibly reused) matrices of c.
func fillHandshakeChain(c *Chain, p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("markov: p=%v out of [0,1]", p))
	}
	q, r := c.Q, c.R
	for i := range q {
		for j := range q[i] {
			q[i][j] = 0
		}
		r[i][0] = 0
	}
	f := 1 - p
	// Request chain: success moves to the response (state 1), failure walks
	// the retry states and finally restarts at 0.
	q[0][1], q[0][3] = p, f
	q[3][1], q[3][4] = p, f
	q[4][1], q[4][5] = p, f
	q[5][1], q[5][0] = p, f
	// Response chain: success moves to the notify (state 2).
	q[1][2], q[1][6] = p, f
	q[6][2], q[6][7] = p, f
	q[7][2], q[7][8] = p, f
	q[8][2], q[8][0] = p, f
	// Notify chain: success absorbs.
	q[2][9] = f
	r[2][0] = p
	q[9][10] = f
	r[9][0] = p
	q[10][11] = f
	r[10][0] = p
	q[11][0] = f
	r[11][0] = p
}

// handshakeWorkspace bundles every buffer one Eq. 12 evaluation needs, so a
// sweep over p (Fig. 26) performs zero heap allocations in steady state.
type handshakeWorkspace struct {
	chain Chain
	aug   [][]float64
	n     [][]float64
}

var handshakePool = sync.Pool{
	New: func() any {
		return &handshakeWorkspace{
			chain: Chain{
				Q: newMatrix(HandshakeStates, HandshakeStates),
				R: newMatrix(HandshakeStates, 1),
			},
			aug: newMatrix(HandshakeStates, 2*HandshakeStates),
			n:   newMatrix(HandshakeStates, HandshakeStates),
		}
	},
}

// ExpectedHandshakeMessages reports the expected number of transmitted
// messages until a 3-way handshake completes, computed from the fundamental
// matrix of the Eq. 10 chain (the Fig. 26 curve). It panics only on p
// outside [0,1]; p=0 returns +Inf. The solve runs on a pooled workspace and
// performs no heap allocations in steady state (safe for concurrent use —
// each caller takes its own workspace).
func ExpectedHandshakeMessages(p float64) float64 {
	if p == 0 {
		return math.Inf(1)
	}
	ws := handshakePool.Get().(*handshakeWorkspace)
	defer handshakePool.Put(ws)
	fillHandshakeChain(&ws.chain, p)
	if err := ws.chain.fundamentalInto(ws.aug, ws.n); err != nil {
		return math.Inf(1)
	}
	// Only the start state's expectation is needed: ExpectedSteps()[0] is
	// the sum of the fundamental matrix's first row (same summation order).
	s0 := 0.0
	for _, v := range ws.n[0] {
		s0 += v
	}
	return s0
}

// ExpectedHandshakeMessagesClosedForm derives the same quantity without
// matrices: each message is a geometric trial truncated at 4 attempts
// (a = E[attempts] = (1−(1−p)⁴)/p, s = P[stage succeeds] = 1−(1−p)⁴) and the
// handshake restarts whenever a stage fails, giving
// E = a·(1+s+s²) / (1 − (1−s)(1+s+s²)).
func ExpectedHandshakeMessagesClosedForm(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	if p >= 1 {
		return 3
	}
	q := 1 - p
	q4 := q * q * q * q
	s := 1 - q4
	a := s / p
	g := 1 + s + s*s
	den := 1 - (1-s)*g
	if den <= 0 {
		return math.Inf(1)
	}
	return a * g / den
}

// SimulateHandshakes runs n independent 3-way handshakes with per-message
// success probability p and returns the mean number of transmitted messages
// — the Monte-Carlo cross-check for Fig. 26.
func SimulateHandshakes(p float64, n int, rng *sim.Rand) float64 {
	if n <= 0 {
		return math.NaN()
	}
	total := 0
	for i := 0; i < n; i++ {
		total += simulateOne(p, rng)
	}
	return float64(total) / float64(n)
}

func simulateOne(p float64, rng *sim.Rand) int {
	msgs := 0
	for {
		restart := false
		for stage := 0; stage < 3 && !restart; stage++ {
			ok := false
			for attempt := 0; attempt < 4; attempt++ {
				msgs++
				if rng.Bool(p) {
					ok = true
					break
				}
			}
			if !ok {
				restart = true
			}
		}
		if !restart {
			return msgs
		}
	}
}

// PaperFig26 returns the (p, expected messages) pairs printed in the paper's
// Fig. 26, for the comparison table in EXPERIMENTS.md. Note: solving the
// paper's own Eq. 10 matrix reproduces these values only for large p; below
// p≈0.7 the printed curve diverges from the printed matrix (see DESIGN.md).
func PaperFig26() map[float64]float64 {
	return map[float64]float64{
		0.1: 41.79, 0.2: 15.91, 0.3: 9.91, 0.4: 7.33, 0.5: 5.88,
		0.6: 4.94, 0.7: 4.26, 0.8: 3.74, 0.9: 3.33, 1.0: 3,
	}
}
