// Package mac provides the channel-access-independent half of a MAC layer:
// transmit queue management, immediate acknowledgements, retransmission and
// drop bookkeeping, duplicate rejection, multi-hop forwarding and the
// queue-level statistics the paper's figures report. The QMA engine
// (internal/core) and the CSMA/CA baselines (internal/csma) embed Base and
// contribute only their channel access discipline, which keeps the
// comparison between the schemes honest: everything except access timing is
// shared code.
package mac

import (
	"fmt"

	"qma/internal/frame"
	"qma/internal/radio"
	"qma/internal/sim"
	"qma/internal/superframe"
)

// DefaultMaxRetries is macMaxFrameRetries (NR = 3): a unicast frame is
// dropped after three failed retransmissions (§4, "a packet is dropped after
// NR retransmission as in CSMA/CA").
const DefaultMaxRetries = 3

// Router decides the next hop towards a sink. Implementations are static
// routing trees built by internal/topo.
type Router interface {
	// NextHop returns the neighbour `from` should forward to in order to
	// reach sink, and whether a route exists.
	NextHop(from, sink frame.NodeID) (frame.NodeID, bool)
}

// Engine is the interface scenario builders wire to traffic generators and
// the radio. Both the QMA engine and the CSMA/CA engines implement it.
type Engine interface {
	radio.Handler
	// Start arms the engine's channel access on its kernel. It must be
	// called exactly once, before any traffic arrives.
	Start()
	// Enqueue offers a frame for transmission and reports whether the
	// transmit queue accepted it.
	Enqueue(f *frame.Frame) bool
	// Base exposes the shared state for statistics collection.
	Base() *Base
}

// Stats aggregates the per-node MAC counters the evaluation reports.
type Stats struct {
	// Enqueued counts frames accepted into the transmit queue.
	Enqueued uint64
	// QueueDrops counts frames rejected because the queue was full.
	QueueDrops uint64
	// TxAttempts counts data transmissions put on the air (excluding ACKs).
	TxAttempts uint64
	// TxSuccess counts acknowledged unicasts plus sent broadcasts.
	TxSuccess uint64
	// TxFail counts unicast attempts with no acknowledgement.
	TxFail uint64
	// RetryDrops counts frames dropped after MaxRetries failed attempts.
	RetryDrops uint64
	// CSMAFails counts frames dropped because the CSMA backoff algorithm
	// exceeded macMaxCSMABackoffs (QMA never increments this: it backs off
	// indefinitely, §4).
	CSMAFails uint64
	// AcksSent counts immediate acknowledgements transmitted.
	AcksSent uint64
	// Delivered counts data frames accepted at this node as final sink.
	Delivered uint64
	// Forwarded counts data frames re-queued towards their sink.
	Forwarded uint64
	// Duplicates counts received frames rejected as duplicates.
	Duplicates uint64
	// FaultTxSuppressed counts transmissions suppressed by fault injection
	// (internal/faults): the node was down or had lost beacon sync, so the
	// frame never reached the air even though the engine went through its
	// full transmit sequence.
	FaultTxSuppressed uint64
	// FaultRxDropped counts frames that arrived while the node was down.
	FaultRxDropped uint64
	// AcksCorrupted counts acknowledgements discarded undecoded inside an
	// ACK-corruption window.
	AcksCorrupted uint64
	// Reboots counts power-cycle faults applied to this node.
	Reboots uint64
	// Barred counts channel-access attempts denied by the access-class
	// barring gate (internal/barring): the Bernoulli(p) draw failed and the
	// engine waited out the barring backoff.
	Barred uint64
	// DeadlineDrops counts queued frames evicted by the DeadlineDrop policy
	// because they exceeded their queueing deadline while the queue was full.
	DeadlineDrops uint64
}

// DropPolicy selects what a full transmit queue sacrifices when another
// frame arrives. The zero value is TailDrop, the pre-existing behaviour.
type DropPolicy uint8

const (
	// TailDrop rejects the incoming frame (the default).
	TailDrop DropPolicy = iota
	// DropOldest evicts the oldest queued frame that is not the in-service
	// head to make room for the newcomer — under overload, fresh data beats
	// stale data.
	DropOldest
	// DeadlineDrop evicts queued non-head frames older than the configured
	// deadline; when nothing has expired it falls back to tail-drop. The
	// IIoT framing: a sensor reading past its deadline is worthless, so it
	// should not occupy a queue slot under backpressure.
	DeadlineDrop
)

// ParseDropPolicy resolves the CLI/public-API spelling of a drop policy.
func ParseDropPolicy(s string) (DropPolicy, error) {
	switch s {
	case "", "tail":
		return TailDrop, nil
	case "oldest":
		return DropOldest, nil
	case "deadline":
		return DeadlineDrop, nil
	}
	return TailDrop, fmt.Errorf("mac: unknown drop policy %q (want tail, oldest or deadline)", s)
}

// String reports the canonical spelling.
func (d DropPolicy) String() string {
	switch d {
	case DropOldest:
		return "oldest"
	case DeadlineDrop:
		return "deadline"
	}
	return "tail"
}

// Config assembles a Base. All reference fields are required.
type Config struct {
	// ID is the node's address.
	ID frame.NodeID
	// Kernel is the simulation kernel shared by the scenario.
	Kernel *sim.Kernel
	// Medium is the shared radio channel.
	Medium *radio.Medium
	// Clock is the shared superframe clock.
	Clock *superframe.Clock
	// QueueCap bounds the transmit queue (<=0 selects the paper's 8).
	QueueCap int
	// MaxRetries is NR (<0 selects DefaultMaxRetries; 0 means no retries).
	MaxRetries int
	// Router enables multi-hop forwarding (nil for single-hop scenarios).
	Router Router
	// NeighborStaleAfter bounds how long an overheard queue level stays in
	// the §4.2 neighbour table (0 selects 16 superframes ≈ 2 s). Without
	// expiry a saturated network deadlocks: every node remembers its
	// neighbours' queues as full, the queue difference stays at zero and
	// parameter-based exploration shuts down for everyone at once.
	NeighborStaleAfter sim.Time
	// OnSinkDeliver is invoked for every data frame that reaches its final
	// sink at this node (after duplicate rejection). May be nil.
	OnSinkDeliver func(f *frame.Frame)
	// OnCommand is invoked for every GTS command frame addressed to this
	// node (after duplicate rejection). The dsme package installs it. May be
	// nil.
	OnCommand func(f *frame.Frame)
	// OnOverhear is invoked for every decoded frame regardless of
	// destination, before any other processing. The QMA engine installs it
	// to drive the QBackoff reward (Eq. 6). May be nil.
	OnOverhear func(f *frame.Frame)
	// OnAccept is invoked whenever the transmit queue accepts a frame —
	// including frames the forwarding path enqueues internally. Engines
	// install their channel-access trigger here; without it a node whose
	// queue fills through forwarding alone would never start transmitting.
	// May be nil.
	OnAccept func()
	// FramePool, when non-nil, recycles MAC-owned frames: immediate ACKs
	// are returned to it after their on-air time, forwarded copies are
	// allocated from it, and every data frame is returned when it
	// permanently leaves the transmit queue (acknowledged, dropped after
	// retries, or dropped by CSMA backoff exhaustion). All engines of one
	// kernel may share a pool; it must not cross kernels.
	FramePool *frame.Pool
	// Scratch, when non-nil, slab-allocates this node's hot state (transmit
	// queue buffer, and — via the engines — Q-table, policy and action
	// counters) from a shared per-run arena, so the state of neighbouring
	// nodes is contiguous in memory. All engines of one kernel share one
	// Scratch; it must not cross kernels, and a run arena may be rewound
	// (Scratch.Reset) only after every engine of the previous run is dropped.
	Scratch *Scratch
	// BarringRng drives the node's access-class barring draws
	// (internal/barring). It must be a deterministic stream private to this
	// node. nil — the default — disables the barring gate entirely:
	// AccessBarred returns immediately and never draws, so runs without
	// barring stay byte-identical.
	BarringRng *sim.Rand
	// Drop selects the transmit-queue overflow policy (zero: TailDrop, the
	// pre-existing behaviour).
	Drop DropPolicy
	// DropDeadline is the DeadlineDrop age limit (0 selects 16 superframes
	// ≈ 2 s, the neighbour-staleness horizon).
	DropDeadline sim.Time
}

type neighborLevel struct {
	level uint8
	at    sim.Time
}

// Base is the shared MAC state machine. It is bound to one kernel and not
// safe for concurrent use.
type Base struct {
	cfg Config

	queue *frame.Queue
	stats Stats

	// busyUntil marks the end of the node's current MAC activity
	// (transmission, CCA, ACK wait or pending immediate ACK). Engines must
	// not start new activity before it passes.
	busyUntil sim.Time

	// The pending ACK wait, inlined: a node has at most one unicast in
	// flight, so the state lives directly in the Base instead of a
	// per-transmission allocation. waiting guards the other four fields.
	waiting   bool
	waitFrom  frame.NodeID
	waitSeq   uint32
	waitTimer sim.EventID
	waitCb    func(success bool)

	// txDone is the pending broadcast-completion event. A node transmits at
	// most one frame at a time, so a single handle suffices; Reboot cancels
	// it so a stale completion cannot fire into a flushed queue.
	txDone sim.EventID

	// ackEvents are the scheduled-but-not-yet-transmitted immediate ACKs,
	// tracked so Reboot can cancel them. Pruned lazily on every sendAck, the
	// slice holds at most a handful of entries.
	ackEvents []sim.EventID

	// downUntil, desyncUntil and ackCorruptUntil carry the fault-injection
	// horizons (internal/faults): while down the node neither transmits nor
	// receives; while desynchronized it receives but does not transmit;
	// while ACKs are corrupted every inbound ACK is dropped undecoded. All
	// three are plain timestamps, so a zero-valued fault schedule costs a
	// few always-false comparisons and changes nothing else.
	downUntil       sim.Time
	desyncUntil     sim.Time
	ackCorruptUntil sim.Time

	// Access-class barring state (internal/barring). barP is the factor the
	// sink last broadcast (1 = fully open), barBackoff the barring backoff
	// that came with it, barUntil the horizon of the node's current barred
	// wait, and barStreak the consecutive failed draws driving the adaptive
	// retry-backoff escalation. All plain values: with cfg.BarringRng nil the
	// gate is a single pointer comparison and the state never changes.
	barP       float64
	barBackoff sim.Time
	barUntil   sim.Time
	barStreak  int

	// neighborQueue holds the most recently overheard queue level per
	// neighbour (piggybacked in every frame, §4.2) with its reception time.
	neighborQueue map[frame.NodeID]neighborLevel

	// lastSeq tracks the highest delivered sequence number per origin for
	// duplicate rejection.
	lastSeq map[frame.NodeID]uint32
	hasSeq  map[frame.NodeID]bool

	// Queue-level time integral for the Fig. 8 metric.
	qlIntegralStart sim.Time
	qlLastChange    sim.Time
	qlIntegral      float64

	// ackStartFn/ackDoneFn are long-lived callbacks for the immediate-ACK
	// path, scheduled via Kernel.AtCall so acknowledging costs no closure
	// allocations. ackTimeoutFn plays the same role for the unicast ACK-wait
	// deadline.
	ackStartFn   func(any)
	ackDoneFn    func(any)
	ackTimeoutFn func(any)
}

// NewBase validates cfg and returns a Base.
func NewBase(cfg Config) *Base {
	if cfg.Kernel == nil || cfg.Medium == nil || cfg.Clock == nil {
		panic("mac: Kernel, Medium and Clock are required")
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.NeighborStaleAfter <= 0 {
		cfg.NeighborStaleAfter = 16 * cfg.Clock.Config().SuperframeDuration()
	}
	if cfg.DropDeadline <= 0 {
		cfg.DropDeadline = 16 * cfg.Clock.Config().SuperframeDuration()
	}
	qcap := cfg.QueueCap
	if qcap <= 0 {
		qcap = frame.DefaultQueueCap
	}
	b := &Base{
		cfg:           cfg,
		queue:         frame.NewQueueOn(qcap, cfg.Scratch.Frames(qcap+1)),
		barP:          1,
		neighborQueue: make(map[frame.NodeID]neighborLevel),
		lastSeq:       make(map[frame.NodeID]uint32),
		hasSeq:        make(map[frame.NodeID]bool),
	}
	b.ackStartFn = func(a any) { b.transmitAck(a.(*frame.Frame)) }
	b.ackDoneFn = func(a any) { b.cfg.FramePool.Put(a.(*frame.Frame)) }
	b.ackTimeoutFn = func(a any) { a.(*Base).ackTimeout() }
	return b
}

// ID reports the node address.
func (b *Base) ID() frame.NodeID { return b.cfg.ID }

// Kernel returns the simulation kernel.
func (b *Base) Kernel() *sim.Kernel { return b.cfg.Kernel }

// Medium returns the radio channel.
func (b *Base) Medium() *radio.Medium { return b.cfg.Medium }

// Clock returns the superframe clock.
func (b *Base) Clock() *superframe.Clock { return b.cfg.Clock }

// Queue returns the transmit queue.
func (b *Base) Queue() *frame.Queue { return b.queue }

// Stats returns a copy of the counters.
func (b *Base) Stats() Stats { return b.stats }

// MaxRetries reports the configured NR.
func (b *Base) MaxRetries() int { return b.cfg.MaxRetries }

// Busy reports whether MAC activity is in progress at the current instant.
func (b *Base) Busy() bool { return b.busyUntil > b.cfg.Kernel.Now() }

// BusyUntil reports the end of the current MAC activity.
func (b *Base) BusyUntil() sim.Time { return b.busyUntil }

// ExtendBusy marks the node busy until at least t.
func (b *Base) ExtendBusy(t sim.Time) {
	if t > b.busyUntil {
		b.busyUntil = t
	}
}

// SetDownUntil takes the node completely off the network until t: nothing
// it sends reaches the air (engines still observe ordinary failed-unicast
// timing) and nothing sent to it is received or acknowledged. Fault
// injection for coordinator/sink outages (internal/faults).
func (b *Base) SetDownUntil(t sim.Time) {
	if t > b.downUntil {
		b.downUntil = t
	}
}

// SetDesyncUntil suspends the node's channel access until t: transmissions
// are suppressed, reception stays intact. Fault injection for beacon loss —
// a node without beacon synchronization must not transmit, but its receiver
// keeps listening.
func (b *Base) SetDesyncUntil(t sim.Time) {
	if t > b.desyncUntil {
		b.desyncUntil = t
	}
}

// CorruptAcksUntil drops every inbound acknowledgement undecoded until t:
// transmitters see timeouts and retry even though their data arrived. Fault
// injection for the classic asymmetric ACK-path failure.
func (b *Base) CorruptAcksUntil(t sim.Time) {
	if t > b.ackCorruptUntil {
		b.ackCorruptUntil = t
	}
}

// SetBarring installs the barring factor p and barring backoff the sink
// broadcast in its latest beacon (internal/barring). Engines never call it;
// the scenario's beacon loop pushes the payload into every Base at each
// beacon instant. Without a configured BarringRng the values are stored but
// the gate stays inert.
func (b *Base) SetBarring(p float64, backoff sim.Time) {
	b.barP = p
	b.barBackoff = backoff
}

// BarringFactor reports the barring factor last broadcast to this node
// (1 until the first beacon arrives).
func (b *Base) BarringFactor() float64 { return b.barP }

// barStreakCap bounds the adaptive retry-backoff escalation: sustained
// barring doubles the wait per consecutive failed draw up to 2^barStreakCap
// times the broadcast backoff, so a congested network spreads its retries
// without any node waiting unboundedly long.
const barStreakCap = 3

// AccessBarred applies the access-class barring gate to a new channel-access
// attempt: with probability p (the factor from the latest beacon) access is
// granted; otherwise the attempt is barred and the engine must not touch the
// channel before retryAt. Engines call it at the top of every fresh access
// attempt — retries of an attempt already in flight are not re-gated, which
// mirrors LTE access-class barring (the draw happens per access attempt, not
// per backoff slot).
//
// Cost discipline: with no BarringRng configured (barring disabled) the
// method returns after one nil comparison and draws nothing, so pre-existing
// runs replay byte-identically. While a barred wait is pending, repeated
// calls return the same horizon without drawing, so per-subslot engines can
// poll it freely.
func (b *Base) AccessBarred() (barred bool, retryAt sim.Time) {
	if b.cfg.BarringRng == nil || b.barP >= 1 {
		return false, 0
	}
	now := b.cfg.Kernel.Now()
	if b.barUntil > now {
		return true, b.barUntil
	}
	if b.cfg.BarringRng.Float64() < b.barP {
		b.barStreak = 0
		return false, 0
	}
	b.stats.Barred++
	wait := b.barBackoff
	if wait <= 0 {
		wait = b.cfg.Clock.Config().SuperframeDuration()
	}
	if s := b.barStreak; s > 0 {
		if s > barStreakCap {
			s = barStreakCap
		}
		wait <<= uint(s)
	}
	b.barStreak++
	b.barUntil = now + wait
	return true, b.barUntil
}

// Down reports whether the node is inside an outage window.
func (b *Base) Down() bool { return b.downUntil > b.cfg.Kernel.Now() }

// Desynced reports whether the node has lost beacon synchronization.
func (b *Base) Desynced() bool { return b.desyncUntil > b.cfg.Kernel.Now() }

// Rebooter is implemented by engines that support the power-cycle fault of
// internal/faults. Reboot must wipe all volatile protocol state — learning
// tables, backoff progress, transaction flags — on top of Base.Reboot, then
// re-enter the engine's startup behaviour. Engines that don't implement it
// still get their shared Base state wiped.
type Rebooter interface {
	Reboot()
}

// Reboot wipes the Base's volatile state as a power cycle would: the
// transmit queue, the pending ACK wait, scheduled immediate ACKs, the
// pending broadcast completion, the neighbour table and the
// duplicate-rejection history. Cancelled outcome callbacks are never
// invoked — the engine above resets its own transaction state in the same
// instant (mac.Rebooter). busyUntil is intentionally preserved: the PHY
// finishes an in-air symbol regardless of what the MCU does. Flushed frames
// are not returned to the frame pool, because the medium or a cancelled
// closure may still reference them; they leak to the garbage collector,
// which is the price of a mid-transaction power cycle, not a steady-state
// cost.
func (b *Base) Reboot() {
	if b.waiting {
		b.waitTimer.Cancel()
		b.waiting = false
		b.waitCb = nil
	}
	b.txDone.Cancel()
	b.txDone = sim.EventID{}
	for _, ev := range b.ackEvents {
		ev.Cancel()
	}
	b.ackEvents = b.ackEvents[:0]
	b.noteQueueChange()
	// Drain by count: a Done callback may legitimately enqueue a fresh
	// frame (e.g. a retried handshake), which the post-reboot node keeps.
	for n := b.queue.Len(); n > 0; n-- {
		f := b.queue.Pop()
		b.signalDone(f, false)
	}
	clear(b.neighborQueue)
	clear(b.lastSeq)
	clear(b.hasSeq)
	// Barring state is volatile too: a freshly booted node has not heard a
	// beacon yet, so it starts fully open and re-learns p at the next one.
	b.barP = 1
	b.barBackoff = 0
	b.barUntil = 0
	b.barStreak = 0
	b.stats.Reboots++
}

// Enqueue implements Engine: it offers f to the transmit queue, tracking the
// queue-level integral and drop counters, and notifies the engine's
// channel-access trigger on acceptance. A full queue first applies the
// configured drop policy (evicting queued frames under DropOldest and
// DeadlineDrop); whatever still does not fit is tail-dropped.
func (b *Base) Enqueue(f *frame.Frame) bool {
	b.noteQueueChange()
	if b.queue.Full() && b.cfg.Drop != TailDrop {
		b.makeRoom()
	}
	if !b.queue.Push(f) {
		b.stats.QueueDrops++
		return false
	}
	b.stats.Enqueued++
	if b.cfg.OnAccept != nil {
		b.cfg.OnAccept()
	}
	return true
}

// makeRoom applies the DropOldest/DeadlineDrop eviction to a full queue.
// Index 0 — the in-service head an engine may be transmitting right now — is
// never evicted, so a queue of capacity 1 degrades to tail-drop. Evicted
// frames leave the MAC permanently: their Done callback fires with failure
// and they return to the frame pool exactly once, like any other drop.
func (b *Base) makeRoom() {
	switch b.cfg.Drop {
	case DropOldest:
		if b.queue.Len() > 1 {
			b.evict(1)
			b.stats.QueueDrops++
		}
	case DeadlineDrop:
		cutoff := b.cfg.Kernel.Now() - b.cfg.DropDeadline
		// Walk back-to-front so removals do not shift unvisited indices.
		for i := b.queue.Len() - 1; i >= 1; i-- {
			if b.queue.At(i).CreatedAt < cutoff {
				b.evict(i)
				b.stats.DeadlineDrops++
			}
		}
	}
}

func (b *Base) evict(i int) {
	f := b.queue.RemoveAt(i)
	b.signalDone(f, false)
	b.cfg.FramePool.Put(f)
}

func (b *Base) noteQueueChange() {
	now := b.cfg.Kernel.Now()
	b.qlIntegral += float64(b.queue.Len()) * float64(now-b.qlLastChange)
	b.qlLastChange = now
}

// AvgQueueLevel reports the time-averaged queue occupancy since the last
// ResetQueueIntegral (Fig. 8 metric).
func (b *Base) AvgQueueLevel() float64 {
	now := b.cfg.Kernel.Now()
	total := float64(now - b.qlIntegralStart)
	if total <= 0 {
		return 0
	}
	integral := b.qlIntegral + float64(b.queue.Len())*float64(now-b.qlLastChange)
	return integral / total
}

// ResetQueueIntegral restarts queue-level averaging at the current instant
// (scenarios call it when the warm-up phase ends).
func (b *Base) ResetQueueIntegral() {
	now := b.cfg.Kernel.Now()
	b.qlIntegral = 0
	b.qlIntegralStart = now
	b.qlLastChange = now
}

// AvgNeighborQueue reports the mean of the recently overheard queue levels
// of all neighbours, 0 when nothing fresh was overheard (§4.2). Entries
// older than NeighborStaleAfter are evicted: silence from a neighbour means
// its advertised queue level is no longer trustworthy, and keeping it would
// freeze parameter-based exploration in a saturated network.
func (b *Base) AvgNeighborQueue() float64 {
	cutoff := b.cfg.Kernel.Now() - b.cfg.NeighborStaleAfter
	var sum float64
	n := 0
	for id, l := range b.neighborQueue {
		if l.at < cutoff {
			delete(b.neighborQueue, id)
			continue
		}
		sum += float64(l.level)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SendFrame transmits f now at the reference (maximum) power and reports
// the outcome through cb exactly once: immediately after the transmission
// for broadcasts (optimistic, no ACK exists — DESIGN.md §6 deviation 1), or
// after the ACK / ACK timeout for unicasts. It returns the instant the node
// becomes idle again. The caller must ensure the node is not busy and the
// transaction fits in the CAP.
func (b *Base) SendFrame(f *frame.Frame, cb func(success bool)) sim.Time {
	return b.SendFrameAt(f, 0, cb)
}

// SendFrameAt is SendFrame with an explicit transmit power: reduceDB is the
// power reduction below the topology's reference power in dB (0 = reference
// power, the SendFrame default). Power-diverse engines (internal/noma) pick
// the level per transmission; the returning ACK is always sent at reference
// power by the receiver's own Base.
func (b *Base) SendFrameAt(f *frame.Frame, reduceDB float64, cb func(success bool)) sim.Time {
	if b.waiting {
		panic(fmt.Sprintf("mac: node %d sends while awaiting an ACK", b.cfg.ID))
	}
	ql := b.queue.Len()
	if ql > 255 {
		ql = 255
	}
	f.QueueLevel = uint8(ql)
	b.stats.TxAttempts++
	now := b.cfg.Kernel.Now()
	if b.downUntil > now || b.desyncUntil > now {
		return b.suppressTX(f, cb)
	}
	txEnd := b.cfg.Medium.StartTX(b.cfg.ID, f, reduceDB)
	if f.IsBroadcast() {
		b.ExtendBusy(txEnd)
		// Broadcast completions keep a per-call closure: a node may start its
		// next transmission at the very instant a broadcast ends (the tick
		// fires first at that boundary), so the callback context must be
		// frozen per transmission. Broadcasts are rare (beacons, GTS control)
		// — the allocation is off the hot path.
		b.txDone = b.cfg.Kernel.At(txEnd, func() {
			b.stats.TxSuccess++
			cb(true)
		})
		return txEnd
	}
	deadline := txEnd + frame.AckWait
	b.ExtendBusy(deadline)
	b.waiting = true
	b.waitFrom, b.waitSeq, b.waitCb = f.Dst, f.Seq, cb
	b.waitTimer = b.cfg.Kernel.AtCall(deadline, b.ackTimeoutFn, b)
	return deadline
}

// ackTimeout fires when a unicast's ACK-wait deadline passes unanswered.
func (b *Base) ackTimeout() {
	cb := b.waitCb
	b.waiting = false
	b.waitCb = nil
	b.stats.TxFail++
	cb(false)
}

// suppressTX mimics the exact timing of a transmission whose frame reached
// nobody, without touching the medium: the node is down or has lost beacon
// synchronization, so nothing goes on the air, but the engine above sees
// the ordinary failed-unicast (or completed-broadcast) sequence and runs
// its unmodified retry logic.
func (b *Base) suppressTX(f *frame.Frame, cb func(success bool)) sim.Time {
	b.stats.FaultTxSuppressed++
	txEnd := b.cfg.Kernel.Now() + f.Duration()
	if f.IsBroadcast() {
		b.ExtendBusy(txEnd)
		b.txDone = b.cfg.Kernel.At(txEnd, func() {
			b.stats.TxSuccess++
			cb(true)
		})
		return txEnd
	}
	deadline := txEnd + frame.AckWait
	b.ExtendBusy(deadline)
	b.waiting = true
	b.waitFrom, b.waitSeq, b.waitCb = f.Dst, f.Seq, cb
	b.waitTimer = b.cfg.Kernel.AtCall(deadline, b.ackTimeoutFn, b)
	return deadline
}

// FinishFrame applies the retry policy after a unicast data outcome: on
// success the frame is removed from the queue; on failure it is retried
// until MaxRetries is exhausted, then dropped. It reports whether the frame
// left the queue. The frame must be the queue head.
func (b *Base) FinishFrame(f *frame.Frame, success bool) (done bool) {
	if b.queue.Head() != f {
		panic(fmt.Sprintf("mac: node %d finishes a frame that is not the queue head", b.cfg.ID))
	}
	if success {
		b.noteQueueChange()
		b.queue.Pop()
		b.signalDone(f, true)
		b.cfg.FramePool.Put(f)
		return true
	}
	f.Retries++
	if int(f.Retries) > b.cfg.MaxRetries {
		b.noteQueueChange()
		b.queue.Pop()
		b.stats.RetryDrops++
		b.signalDone(f, false)
		b.cfg.FramePool.Put(f)
		return true
	}
	return false
}

func (b *Base) signalDone(f *frame.Frame, success bool) {
	if f.Done != nil {
		cb := f.Done
		f.Done = nil
		cb(success)
	}
}

// DropCSMAFailure removes the queue head after a channel-access failure
// (macMaxCSMABackoffs exceeded). Only the CSMA engines call it.
func (b *Base) DropCSMAFailure(f *frame.Frame) {
	if b.queue.Head() != f {
		panic(fmt.Sprintf("mac: node %d CSMA-drops a frame that is not the queue head", b.cfg.ID))
	}
	b.noteQueueChange()
	b.queue.Pop()
	b.stats.CSMAFails++
	b.signalDone(f, false)
	b.cfg.FramePool.Put(f)
}

// Deliver implements radio.Handler: the shared receive path. Every decoded
// frame feeds the overhear hook and the neighbour queue-level table; frames
// addressed to this node are acknowledged, de-duplicated and handed to the
// sink, forwarding or command paths.
func (b *Base) Deliver(f *frame.Frame) {
	now := b.cfg.Kernel.Now()
	if b.downUntil > now {
		// Outage: the receiver is off. Nothing is decoded, overheard or
		// acknowledged (fault injection, internal/faults).
		b.stats.FaultRxDropped++
		return
	}
	if f.Kind == frame.Ack && b.ackCorruptUntil > now {
		// ACK-corruption window: the ACK arrives as noise, invisible even to
		// the overhear hook.
		b.stats.AcksCorrupted++
		return
	}
	if b.cfg.OnOverhear != nil {
		b.cfg.OnOverhear(f)
	}
	if f.Kind != frame.Ack && f.Src != b.cfg.ID {
		b.neighborQueue[f.Src] = neighborLevel{level: f.QueueLevel, at: now}
	}

	switch {
	case f.Kind == frame.Ack:
		if f.Dst == b.cfg.ID {
			b.handleAck(f)
		}
	case f.Dst == b.cfg.ID:
		b.handleUnicast(f)
	case f.IsBroadcast():
		b.handleBroadcast(f)
	}
}

func (b *Base) handleAck(f *frame.Frame) {
	if !b.waiting || b.waitFrom != f.Src || b.waitSeq != f.Seq {
		return
	}
	cb := b.waitCb
	b.waiting = false
	b.waitCb = nil
	b.waitTimer.Cancel()
	b.stats.TxSuccess++
	cb(true)
}

func (b *Base) handleUnicast(f *frame.Frame) {
	// Immediate acknowledgement after aTurnaroundTime. The ACK occupies the
	// medium like any frame, which is what makes the hidden-node CCA of the
	// paper's Fig. 6 occasionally fail at A and C.
	b.sendAck(f)

	if b.isDuplicate(f) {
		b.stats.Duplicates++
		return
	}
	switch f.Kind {
	case frame.Data:
		b.acceptData(f)
	case frame.GTSRequest:
		if b.cfg.OnCommand != nil {
			b.cfg.OnCommand(f)
		}
	}
}

func (b *Base) handleBroadcast(f *frame.Frame) {
	switch f.Kind {
	case frame.GTSResponse, frame.GTSNotify:
		if b.cfg.OnCommand != nil {
			b.cfg.OnCommand(f)
		}
	case frame.Data:
		b.acceptData(f)
	}
}

func (b *Base) acceptData(f *frame.Frame) {
	if f.Sink == b.cfg.ID || f.IsBroadcast() {
		b.stats.Delivered++
		if b.cfg.OnSinkDeliver != nil {
			b.cfg.OnSinkDeliver(f)
		}
		return
	}
	if b.cfg.Router == nil {
		return
	}
	next, ok := b.cfg.Router.NextHop(b.cfg.ID, f.Sink)
	if !ok {
		return
	}
	fwd := b.cfg.FramePool.Get()
	fwd.Kind = frame.Data
	fwd.Src = b.cfg.ID
	fwd.Dst = next
	fwd.Origin = f.Origin
	fwd.Sink = f.Sink
	fwd.Seq = f.Seq
	fwd.MPDUBytes = f.MPDUBytes
	fwd.Tag = f.Tag
	fwd.CreatedAt = f.CreatedAt
	if b.Enqueue(fwd) {
		b.stats.Forwarded++
	} else {
		b.cfg.FramePool.Put(fwd)
	}
}

func (b *Base) isDuplicate(f *frame.Frame) bool {
	if b.hasSeq[f.Origin] && f.Seq <= b.lastSeq[f.Origin] {
		return true
	}
	b.hasSeq[f.Origin] = true
	b.lastSeq[f.Origin] = f.Seq
	return false
}

func (b *Base) sendAck(f *frame.Frame) {
	now := b.cfg.Kernel.Now()
	ackStart := now + frame.TurnaroundTime
	ack := b.cfg.FramePool.Get()
	ack.Kind = frame.Ack
	ack.Src = b.cfg.ID
	ack.Dst = f.Src
	ack.Origin = b.cfg.ID
	ack.Sink = f.Src
	ack.Seq = f.Seq
	ack.MPDUBytes = frame.AckMPDUBytes
	ack.Channel = f.Channel
	b.ExtendBusy(ackStart + frame.AckDuration)
	b.trackAck(b.cfg.Kernel.AtCall(ackStart, b.ackStartFn, ack))
}

// trackAck remembers a scheduled immediate-ACK event so Reboot can cancel
// it, lazily pruning entries that already fired. A node rarely owes more
// than one ACK at a time, so the prune is O(1) in practice and the slice
// never regrows after warm-up.
func (b *Base) trackAck(ev sim.EventID) {
	n := 0
	for _, e := range b.ackEvents {
		if e.Pending() {
			b.ackEvents[n] = e
			n++
		}
	}
	b.ackEvents = append(b.ackEvents[:n], ev)
}

// transmitAck puts a prepared immediate ACK on the air and arranges its
// return to the frame pool once the transmission (and therefore delivery,
// which the medium performs first at the same instant) has ended.
func (b *Base) transmitAck(ack *frame.Frame) {
	// Skip the ACK if the node somehow started transmitting meanwhile
	// (cannot normally happen: a node transmitting during the reception
	// would have corrupted it), or if an outage began in the turnaround gap
	// — a down node stays silent.
	if b.cfg.Medium.Transmitting(b.cfg.ID) || b.downUntil > b.cfg.Kernel.Now() {
		b.cfg.FramePool.Put(ack)
		return
	}
	b.stats.AcksSent++
	txEnd := b.cfg.Medium.StartTX(b.cfg.ID, ack, 0)
	b.cfg.Kernel.AtCall(txEnd, b.ackDoneFn, ack)
}
