package mac

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"qma/internal/qlearn"
)

// KV option plumbing: the protocol registry's ParseOptions hooks convert
// CLI-style key=value maps (qma-sim -mac-opt, qma.Scenario.MACOptions) into
// typed options values. The helpers here keep the per-protocol parsers down
// to a field table; validation beyond syntax stays in each protocol's
// Validate, which every parsed value still passes through.

// KVField consumes one option value into a destination captured by the
// closure (see IntField, FloatField, BoolField, StringField).
type KVField func(value string) error

// ParseKV applies the field table to kv, rejecting unknown keys with a
// message listing the supported ones. Keys are processed in sorted order so
// error messages are deterministic.
func ParseKV(proto string, kv map[string]string, fields map[string]KVField) error {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fn, ok := fields[strings.ToLower(k)]
		if !ok {
			supported := make([]string, 0, len(fields))
			for name := range fields {
				supported = append(supported, name)
			}
			sort.Strings(supported)
			return fmt.Errorf("mac: protocol %q has no option %q (supported: %s)",
				proto, k, strings.Join(supported, ", "))
		}
		if err := fn(kv[k]); err != nil {
			return fmt.Errorf("mac: protocol %q option %s=%q: %w", proto, k, kv[k], err)
		}
	}
	return nil
}

// IntField parses a decimal integer into dst.
func IntField(dst *int) KVField {
	return func(v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("want an integer")
		}
		*dst = n
		return nil
	}
}

// FloatField parses a float into dst.
func FloatField(dst *float64) KVField {
	return func(v string) error {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("want a number")
		}
		*dst = f
		return nil
	}
}

// BoolField parses a boolean ("true"/"false"/"1"/"0") into dst.
func BoolField(dst *bool) KVField {
	return func(v string) error {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return fmt.Errorf("want a boolean")
		}
		*dst = b
		return nil
	}
}

// EnumField maps a closed set of case-insensitive names to values applied
// through set.
func EnumField[T any](set func(T), values map[string]T) KVField {
	return func(v string) error {
		val, ok := values[strings.ToLower(v)]
		if !ok {
			names := make([]string, 0, len(values))
			for name := range values {
				names = append(names, name)
			}
			sort.Strings(names)
			return fmt.Errorf("want one of %s", strings.Join(names, ", "))
		}
		set(val)
		return nil
	}
}

// LearnParamFields returns the Q-learning hyperparameter option table
// (alpha/gamma/xi/initq) shared by the learning protocols (QMA, NOMA).
// Fields write through to learn — callers initialize it to
// qlearn.DefaultParams() so a single override leaves the rest intact — and
// any write sets *touched, letting the caller distinguish "defaults plus
// overrides" from "no hyperparameter keys at all" (the zero Params value
// selects the engine default downstream). Merge protocol-specific keys into
// the returned map before handing it to ParseKV.
func LearnParamFields(learn *qlearn.Params, touched *bool) map[string]KVField {
	touch := func(dst *float64) KVField {
		f := FloatField(dst)
		return func(v string) error {
			*touched = true
			return f(v)
		}
	}
	return map[string]KVField{
		"alpha": touch(&learn.Alpha),
		"gamma": touch(&learn.Gamma),
		"xi":    touch(&learn.Xi),
		"initq": touch(&learn.InitQ),
	}
}
