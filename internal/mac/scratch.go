package mac

import "qma/internal/frame"

// scratchChunk is the number of elements per slab block. One FactoryHall
// node needs states×actions table entries plus a policy row, so a block
// this size covers on the order of a hundred nodes per type before the
// next block is carved.
const scratchChunk = 16384

// Scratch is a bump arena for the per-node hot state of one simulation run:
// Q-table backing, policy rows, action counters and transmit-queue buffers.
// Handing every node's state out of a few large blocks keeps the data of
// neighbouring nodes contiguous in memory — the learner's inner loops
// (MaxQ, Update) walk these rows millions of times per run and are
// cache-miss bound when each node's rows live in a separate heap object.
//
// Like frame.Pool it is single-threaded by design and nil-receiver safe: a
// nil *Scratch degrades to plain heap allocation, so slab placement is
// strictly opt-in. Reset rewinds the arena for the next replication without
// releasing the blocks, which is what lets a worker run thousands of
// replications with a constant memory footprint.
type Scratch struct {
	f64    slab[float64]
	i16    slab[int16]
	i8     slab[int8]
	ints   slab[int]
	u64    slab[uint64]
	frames slab[*frame.Frame]
}

// Float64s returns a zeroed slab slice of n float64s.
func (s *Scratch) Float64s(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	return s.f64.alloc(n)
}

// Int16s returns a zeroed slab slice of n int16s.
func (s *Scratch) Int16s(n int) []int16 {
	if s == nil {
		return make([]int16, n)
	}
	return s.i16.alloc(n)
}

// Int8s returns a zeroed slab slice of n int8s.
func (s *Scratch) Int8s(n int) []int8 {
	if s == nil {
		return make([]int8, n)
	}
	return s.i8.alloc(n)
}

// Ints returns a zeroed slab slice of n ints.
func (s *Scratch) Ints(n int) []int {
	if s == nil {
		return make([]int, n)
	}
	return s.ints.alloc(n)
}

// Uint64s returns a zeroed slab slice of n uint64s.
func (s *Scratch) Uint64s(n int) []uint64 {
	if s == nil {
		return make([]uint64, n)
	}
	return s.u64.alloc(n)
}

// Frames returns a zeroed slab slice of n frame pointers (transmit-queue
// backing).
func (s *Scratch) Frames(n int) []*frame.Frame {
	if s == nil {
		return make([]*frame.Frame, n)
	}
	return s.frames.alloc(n)
}

// Reset rewinds the arena so the next run re-carves the same blocks. Slices
// handed out before the Reset alias the new run's state and must not be
// touched again; callers guarantee this by dropping every engine of the
// previous run before resetting. No-op on a nil receiver.
func (s *Scratch) Reset() {
	if s == nil {
		return
	}
	s.f64.reset()
	s.i16.reset()
	s.i8.reset()
	s.ints.reset()
	s.u64.reset()
	s.frames.reset()
}

// slab hands out sub-slices of large blocks, bump-pointer style. Blocks
// survive reset, so a rewound slab re-serves the same memory in the same
// order.
type slab[T any] struct {
	blocks [][]T
	cur    int // block being filled
	off    int // next free element in blocks[cur]
}

func (s *slab[T]) alloc(n int) []T {
	for {
		if s.cur < len(s.blocks) {
			if b := s.blocks[s.cur]; s.off+n <= len(b) {
				out := b[s.off : s.off+n : s.off+n]
				s.off += n
				clear(out)
				return out
			}
			// The current block's tail is too small; waste it and move on.
			// The allocation pattern repeats identically after a reset, so
			// the waste is bounded and the reuse exact.
			s.cur++
			s.off = 0
			continue
		}
		size := scratchChunk
		if n > size {
			size = n
		}
		s.blocks = append(s.blocks, make([]T, size))
	}
}

func (s *slab[T]) reset() { s.cur, s.off = 0, 0 }
