package mac

import (
	"strings"
	"testing"
)

func TestParseKVFields(t *testing.T) {
	var (
		i int
		f float64
		b bool
		e string
	)
	fields := map[string]KVField{
		"count": IntField(&i),
		"ratio": FloatField(&f),
		"on":    BoolField(&b),
		"mode":  EnumField(func(v string) { e = v }, map[string]string{"fast": "F", "slow": "S"}),
	}
	err := ParseKV("demo", map[string]string{
		"count": "7", "ratio": "2.5", "on": "true", "mode": "FAST",
	}, fields)
	if err != nil {
		t.Fatal(err)
	}
	if i != 7 || f != 2.5 || !b || e != "F" {
		t.Errorf("parsed (%d, %g, %v, %q)", i, f, b, e)
	}
}

func TestParseKVRejectsUnknownKey(t *testing.T) {
	err := ParseKV("demo", map[string]string{"bogus": "1"}, map[string]KVField{
		"beta": FloatField(new(float64)), "alpha": FloatField(new(float64)),
	})
	if err == nil {
		t.Fatal("unknown key accepted")
	}
	// The supported list must be present and sorted for deterministic
	// error messages.
	if !strings.Contains(err.Error(), "alpha, beta") {
		t.Errorf("error %q does not list the supported keys in order", err)
	}
}

func TestParseKVRejectsMalformedValues(t *testing.T) {
	cases := map[string]struct {
		field KVField
		value string
	}{
		"int":   {IntField(new(int)), "seven"},
		"float": {FloatField(new(float64)), "fast"},
		"bool":  {BoolField(new(bool)), "maybe"},
		"enum":  {EnumField(func(string) {}, map[string]string{"a": "a"}), "z"},
	}
	for name, c := range cases {
		err := ParseKV("demo", map[string]string{"k": c.value}, map[string]KVField{"k": c.field})
		if err == nil {
			t.Errorf("%s: malformed value %q accepted", name, c.value)
		} else if !strings.Contains(err.Error(), "demo") || !strings.Contains(err.Error(), c.value) {
			t.Errorf("%s: error %q lacks protocol and offending value", name, err)
		}
	}
}

func TestParseKVKeysAreCaseInsensitive(t *testing.T) {
	var i int
	if err := ParseKV("demo", map[string]string{"MinBE": "4"}, map[string]KVField{"minbe": IntField(&i)}); err != nil {
		t.Fatal(err)
	}
	if i != 4 {
		t.Errorf("got %d", i)
	}
}
