package mac

import (
	"testing"

	"qma/internal/frame"
)

// TestScratchNilReceiver pins the opt-out contract: a nil *Scratch degrades
// to plain heap allocation for every element type.
func TestScratchNilReceiver(t *testing.T) {
	var s *Scratch
	if got := s.Float64s(3); len(got) != 3 {
		t.Errorf("nil Float64s len = %d", len(got))
	}
	if got := s.Int16s(4); len(got) != 4 {
		t.Errorf("nil Int16s len = %d", len(got))
	}
	if got := s.Int8s(5); len(got) != 5 {
		t.Errorf("nil Int8s len = %d", len(got))
	}
	if got := s.Ints(6); len(got) != 6 {
		t.Errorf("nil Ints len = %d", len(got))
	}
	if got := s.Uint64s(7); len(got) != 7 {
		t.Errorf("nil Uint64s len = %d", len(got))
	}
	if got := s.Frames(8); len(got) != 8 {
		t.Errorf("nil Frames len = %d", len(got))
	}
	s.Reset() // must not panic
}

// TestScratchZeroedAndCapped checks every carve is zeroed, has exact length,
// and is capacity-capped so an append cannot bleed into the next carve.
func TestScratchZeroedAndCapped(t *testing.T) {
	s := &Scratch{}
	a := s.Float64s(4)
	b := s.Float64s(4)
	if len(a) != 4 || cap(a) != 4 {
		t.Fatalf("len/cap = %d/%d, want 4/4", len(a), cap(a))
	}
	for i := range a {
		a[i] = 1.5
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("b[%d] = %v, want zeroed carve", i, v)
		}
	}
	a = append(a, 9)
	if b[0] != 0 {
		t.Error("append to a full carve overwrote the neighbouring carve")
	}
	fr := s.Frames(2)
	fr[0] = &frame.Frame{}
	if got := s.Frames(2); got[0] != nil {
		t.Error("frame carve not zeroed")
	}
}

// TestScratchResetReservesSameMemory pins the reuse contract: after Reset an
// identical allocation sequence re-serves the same backing memory, zeroed.
func TestScratchResetReservesSameMemory(t *testing.T) {
	s := &Scratch{}
	a := s.Float64s(10)
	for i := range a {
		a[i] = 7
	}
	s.Reset()
	b := s.Float64s(10)
	if &a[0] != &b[0] {
		t.Error("reset slab served different memory for an identical sequence")
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("b[%d] = %v, want zeroed after reset", i, v)
		}
	}
}

// TestScratchBlockBoundaries covers carves that straddle or exceed the block
// size: a tail too small for the next carve is wasted, an oversized request
// gets its own block, and the pattern repeats exactly after a reset.
func TestScratchBlockBoundaries(t *testing.T) {
	s := &Scratch{}
	first := s.Ints(scratchChunk - 10) // leaves a 10-element tail
	tail := s.Ints(20)                 // does not fit: new block
	if len(first) != scratchChunk-10 || len(tail) != 20 {
		t.Fatal("carve lengths wrong")
	}
	big := s.Ints(3 * scratchChunk) // oversized: dedicated block
	if len(big) != 3*scratchChunk {
		t.Fatalf("oversized carve len = %d", len(big))
	}
	big[0] = 42
	s.Reset()
	if got := s.Ints(scratchChunk - 10); &got[0] != &first[0] {
		t.Error("first block not re-served after reset")
	}
	if got := s.Ints(20); &got[0] != &tail[0] {
		t.Error("second block not re-served after reset")
	}
	got := s.Ints(3 * scratchChunk)
	if &got[0] != &big[0] {
		t.Error("oversized block not re-served after reset")
	}
	if got[0] != 0 {
		t.Error("re-served block not zeroed")
	}
}

// TestScratchTypesIndependent checks the per-type slabs do not interfere:
// carves of different element types never alias.
func TestScratchTypesIndependent(t *testing.T) {
	s := &Scratch{}
	f := s.Float64s(8)
	i16 := s.Int16s(8)
	i8 := s.Int8s(8)
	u := s.Uint64s(8)
	for i := 0; i < 8; i++ {
		f[i] = 1
		i16[i] = 2
		i8[i] = 3
		u[i] = 4
	}
	for i := 0; i < 8; i++ {
		if f[i] != 1 || i16[i] != 2 || i8[i] != 3 || u[i] != 4 {
			t.Fatalf("cross-type interference at %d: %v %v %v %v", i, f[i], i16[i], i8[i], u[i])
		}
	}
}
