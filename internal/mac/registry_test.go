package mac

import (
	"errors"
	"strings"
	"testing"

	"qma/internal/frame"
	"qma/internal/sim"
)

// nullEngine is a minimal Engine for registry tests. The mac package itself
// imports no protocol package (they import it), so the registry in this test
// binary contains exactly what the tests register.
type nullEngine struct{ base *Base }

func (e *nullEngine) Base() *Base            { return e.base }
func (e *nullEngine) Deliver(f *frame.Frame) { e.base.Deliver(f) }
func (e *nullEngine) Start()                 {}
func (e *nullEngine) Enqueue(f *frame.Frame) bool {
	return e.base.Enqueue(f)
}

type nullOptions struct{ Bad bool }

func init() {
	Register(Protocol{
		Name:    "test-null",
		Aliases: []string{"null"},
		Display: "null MAC",
		Validate: func(opts any) error {
			if opts == nil {
				return nil
			}
			o, ok := opts.(nullOptions)
			if !ok {
				return OptionsError("test-null", opts, nullOptions{})
			}
			if o.Bad {
				return errors.New("test-null: bad option")
			}
			return nil
		},
		New: func(cfg Config, opts any, rng *sim.Rand) Engine {
			return &nullEngine{base: NewBase(cfg)}
		},
	})
	Register(Protocol{
		Name: "test-bare",
		New: func(cfg Config, opts any, rng *sim.Rand) Engine {
			return &nullEngine{base: NewBase(cfg)}
		},
	})
}

func TestRegistryLookupAndAliases(t *testing.T) {
	p, ok := Lookup("test-null")
	if !ok || p.Name != "test-null" {
		t.Fatalf("Lookup(test-null) = %v, %v", p, ok)
	}
	if q, ok := Lookup("null"); !ok || q.Name != "test-null" {
		t.Fatalf("alias lookup failed: %v, %v", q, ok)
	}
	if _, ok := Lookup(""); ok {
		t.Error("empty name resolved to a protocol")
	}
	if _, ok := Lookup("token-ring"); ok {
		t.Error("unregistered name resolved")
	}
}

func TestRegistryNamesAreCanonicalAndSorted(t *testing.T) {
	names := Names()
	for i, n := range names {
		if i > 0 && names[i-1] >= n {
			t.Fatalf("Names() not strictly sorted: %v", names)
		}
		if n == "null" {
			t.Error("Names() lists an alias")
		}
	}
	found := false
	for _, n := range names {
		if n == "test-null" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v misses test-null", names)
	}
}

func TestNameString(t *testing.T) {
	if got := Name("test-null").String(); got != "null MAC" {
		t.Errorf("display name = %q", got)
	}
	// Unregistered names fall back to the raw key; a missing Display falls
	// back to the canonical name.
	if got := Name("token-ring").String(); got != "token-ring" {
		t.Errorf("fallback = %q", got)
	}
	if got := Name("test-bare").String(); got != "test-bare" {
		t.Errorf("bare display = %q", got)
	}
}

func testConfig(t *testing.T) Config {
	t.Helper()
	r := newRig(t, 1, nil)
	cfg := r.bases[0].cfg
	cfg.ID = 0
	return cfg
}

func TestRegistryBuild(t *testing.T) {
	cfg := testConfig(t)
	e, err := Build("null", cfg, nil, sim.NewRand(1))
	if err != nil || e == nil {
		t.Fatalf("Build(null) = %v, %v", e, err)
	}
	if _, err := Build("token-ring", cfg, nil, sim.NewRand(1)); err == nil ||
		!strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown protocol error = %v, want the registered list", err)
	}
	if _, err := Build("test-null", cfg, nullOptions{Bad: true}, sim.NewRand(1)); err == nil {
		t.Error("Build accepted options its Validate rejects")
	}
	if _, err := Build("test-null", cfg, 42, sim.NewRand(1)); err == nil {
		t.Error("Build accepted options of a foreign type")
	}
	// A protocol without Validate accepts only nil options.
	if _, err := Build("test-bare", cfg, nil, sim.NewRand(1)); err != nil {
		t.Errorf("Build(test-bare, nil) = %v", err)
	}
	if _, err := Build("test-bare", cfg, nullOptions{}, sim.NewRand(1)); err == nil {
		t.Error("option-less protocol accepted options")
	}
}

func TestRegisterRejectsDuplicatesAndIncomplete(t *testing.T) {
	mustPanic := func(name string, p Protocol) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(p)
	}
	factory := func(cfg Config, opts any, rng *sim.Rand) Engine { return &nullEngine{} }
	mustPanic("duplicate name", Protocol{Name: "test-null", New: factory})
	mustPanic("duplicate alias", Protocol{Name: "test-other", Aliases: []string{"null"}, New: factory})
	mustPanic("missing factory", Protocol{Name: "test-no-factory"})
	mustPanic("missing name", Protocol{New: factory})
}
