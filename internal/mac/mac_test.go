package mac

import (
	"testing"

	"qma/internal/frame"
	"qma/internal/radio"
	"qma/internal/sim"
	"qma/internal/superframe"
)

// rig wires two Bases over a 2-node link (plus an optional third hidden
// node) for direct MAC-layer tests.
type rig struct {
	k     *sim.Kernel
	m     *radio.Medium
	bases []*Base
}

func newRig(t *testing.T, n int, cfgs []Config) *rig {
	t.Helper()
	g := radio.NewGraphTopology(n)
	for i := 1; i < n; i++ {
		g.AddLink(0, frame.NodeID(i))
	}
	k := sim.NewKernel()
	m := radio.NewMedium(k, g, sim.NewRand(1))
	clock := superframe.NewClock(superframe.DefaultConfig())
	r := &rig{k: k, m: m}
	for i := 0; i < n; i++ {
		cfg := Config{ID: frame.NodeID(i), Kernel: k, Medium: m, Clock: clock, MaxRetries: -1}
		if i < len(cfgs) {
			c := cfgs[i]
			c.ID, c.Kernel, c.Medium, c.Clock, c.MaxRetries = frame.NodeID(i), k, m, clock, -1
			cfg = c
		}
		b := NewBase(cfg)
		r.bases = append(r.bases, b)
		m.Attach(frame.NodeID(i), b)
	}
	return r
}

func testData(src, dst frame.NodeID, seq uint32) *frame.Frame {
	return &frame.Frame{Kind: frame.Data, Src: src, Dst: dst, Origin: src, Sink: dst, Seq: seq, MPDUBytes: 30}
}

func TestUnicastIsAcknowledged(t *testing.T) {
	r := newRig(t, 2, nil)
	f := testData(0, 1, 1)
	var outcome *bool
	r.bases[0].Enqueue(f)
	r.bases[0].SendFrame(f, func(ok bool) { outcome = &ok })
	r.k.RunAll()
	if outcome == nil || !*outcome {
		t.Fatalf("unicast outcome = %v, want success", outcome)
	}
	s0, s1 := r.bases[0].Stats(), r.bases[1].Stats()
	if s0.TxAttempts != 1 || s0.TxSuccess != 1 || s0.TxFail != 0 {
		t.Errorf("sender stats: %+v", s0)
	}
	if s1.AcksSent != 1 || s1.Delivered != 1 {
		t.Errorf("receiver stats: %+v", s1)
	}
}

func TestUnicastWithoutReceiverTimesOut(t *testing.T) {
	r := newRig(t, 2, nil)
	f := testData(0, 5, 1) // destination does not exist
	var outcome *bool
	r.bases[0].Enqueue(f)
	at := r.k.Now()
	r.bases[0].SendFrame(f, func(ok bool) { outcome = &ok })
	r.k.RunAll()
	if outcome == nil || *outcome {
		t.Fatalf("outcome = %v, want failure", outcome)
	}
	// The node was busy exactly until the ACK deadline.
	if want := at + f.Duration() + frame.AckWait; r.bases[0].BusyUntil() != want {
		t.Errorf("BusyUntil = %v, want %v", r.bases[0].BusyUntil(), want)
	}
}

func TestBroadcastSucceedsWithoutAck(t *testing.T) {
	r := newRig(t, 3, nil)
	f := &frame.Frame{Kind: frame.RouteDiscovery, Src: 0, Dst: frame.Broadcast, Origin: 0, Sink: frame.Broadcast, Seq: 1, MPDUBytes: 30}
	var outcome *bool
	r.bases[0].Enqueue(f)
	r.bases[0].SendFrame(f, func(ok bool) { outcome = &ok })
	r.k.RunAll()
	if outcome == nil || !*outcome {
		t.Fatalf("broadcast outcome = %v, want optimistic success", outcome)
	}
	if r.bases[1].Stats().AcksSent != 0 {
		t.Error("broadcast was acknowledged")
	}
}

func TestFinishFrameRetryPolicy(t *testing.T) {
	r := newRig(t, 2, nil)
	b := r.bases[0]
	f := testData(0, 1, 1)
	b.Enqueue(f)
	// NR=3: three failures keep the frame, the fourth drops it.
	for i := 0; i < 3; i++ {
		if done := b.FinishFrame(f, false); done {
			t.Fatalf("frame dropped after %d failures", i+1)
		}
	}
	if done := b.FinishFrame(f, false); !done {
		t.Fatal("frame not dropped after NR+1 failures")
	}
	if st := b.Stats(); st.RetryDrops != 1 {
		t.Errorf("RetryDrops = %d, want 1", st.RetryDrops)
	}
	if !b.Queue().Empty() {
		t.Error("queue not empty after drop")
	}
}

func TestDoneCallbackFiresOnce(t *testing.T) {
	r := newRig(t, 2, nil)
	b := r.bases[0]
	f := testData(0, 1, 1)
	calls, lastOK := 0, true
	f.Done = func(ok bool) { calls++; lastOK = ok }
	b.Enqueue(f)
	for i := 0; i < 4; i++ {
		b.FinishFrame(f, false)
	}
	if calls != 1 || lastOK {
		t.Errorf("Done fired %d times (ok=%v), want once with false", calls, lastOK)
	}
}

func TestDuplicateRejection(t *testing.T) {
	r := newRig(t, 2, nil)
	delivered := 0
	cfg := Config{OnSinkDeliver: func(*frame.Frame) { delivered++ }}
	r = newRig(t, 2, []Config{{}, cfg})
	// Same (origin, seq) twice: second is a duplicate but still ACKed.
	r.bases[1].Deliver(testData(0, 1, 7))
	r.k.RunAll()
	r.bases[1].Deliver(testData(0, 1, 7))
	r.k.RunAll()
	st := r.bases[1].Stats()
	if st.Delivered != 1 || st.Duplicates != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.AcksSent != 2 {
		t.Errorf("AcksSent = %d, want 2 (duplicates are re-ACKed)", st.AcksSent)
	}
	if delivered != 1 {
		t.Errorf("sink deliveries = %d, want 1", delivered)
	}
}

// TestDuplicateRejectionUnderRetransmission drives the full ACK-loss round
// trip instead of injecting duplicates by hand: the data frame is delivered
// but its ACK is killed by a deep fade at the sender, the sender's retry
// policy retransmits the same frame, and the receiver must reject the copy
// as a duplicate while still re-ACKing it — so the retransmission succeeds
// and the frame finally leaves the queue, delivered exactly once.
func TestDuplicateRejectionUnderRetransmission(t *testing.T) {
	delivered := 0
	r := newRig(t, 2, []Config{{}, {OnSinkDeliver: func(*frame.Frame) { delivered++ }}})
	sender, receiver := r.bases[0], r.bases[1]

	f := testData(0, 1, 7)
	sender.Enqueue(f)

	outcomes := []bool{}
	var send func()
	send = func() {
		sender.SendFrame(f, func(success bool) {
			outcomes = append(outcomes, success)
			if sender.FinishFrame(f, success) {
				return
			}
			// Retry once the fade is over and the node is idle again.
			r.k.At(sender.BusyUntil()+5*sim.Millisecond, send)
		})
	}
	send()
	// The data frame delivers at its airtime end; fade the sender from just
	// after that until past the ACK arrival, so only the ACK is lost.
	r.k.At(f.Duration()+1*sim.Microsecond, func() {
		r.m.SetFadeUntil(0, f.Duration()+frame.TurnaroundTime+frame.AckDuration+10*sim.Microsecond)
	})
	r.k.Run(1 * sim.Second)

	if want := []bool{false, true}; len(outcomes) != 2 || outcomes[0] != want[0] || outcomes[1] != want[1] {
		t.Fatalf("outcomes = %v, want [false true] (ACK lost, retry ACKed)", outcomes)
	}
	if f.Retries != 1 {
		t.Errorf("Retries = %d, want 1", f.Retries)
	}
	rs := receiver.Stats()
	if rs.Delivered != 1 || delivered != 1 {
		t.Errorf("Delivered = %d (sink callback %d), want exactly once", rs.Delivered, delivered)
	}
	if rs.Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1 (the retransmission)", rs.Duplicates)
	}
	if rs.AcksSent != 2 {
		t.Errorf("AcksSent = %d, want 2 (duplicates are re-ACKed)", rs.AcksSent)
	}
	ss := sender.Stats()
	if ss.TxFail != 1 || ss.TxSuccess != 1 || ss.RetryDrops != 0 {
		t.Errorf("sender stats: %+v", ss)
	}
	if !sender.Queue().Empty() {
		t.Error("acknowledged frame still queued")
	}
}

type tableRouter map[frame.NodeID]frame.NodeID

func (r tableRouter) NextHop(from, sink frame.NodeID) (frame.NodeID, bool) {
	h, ok := r[from]
	return h, ok
}

func TestForwarding(t *testing.T) {
	router := tableRouter{1: 0}
	r := newRig(t, 3, []Config{{}, {Router: router}, {}})
	// Node 2 sends to node 1 with final sink 0: node 1 must re-queue it.
	f := testData(2, 1, 1)
	f.Sink = 0
	r.bases[1].Deliver(f)
	st := r.bases[1].Stats()
	if st.Forwarded != 1 {
		t.Fatalf("Forwarded = %d, want 1", st.Forwarded)
	}
	fwd := r.bases[1].Queue().Head()
	if fwd == nil || fwd.Dst != 0 || fwd.Origin != 2 || fwd.Seq != 1 {
		t.Fatalf("forwarded frame wrong: %+v", fwd)
	}
}

func TestQueueLevelIntegral(t *testing.T) {
	r := newRig(t, 1, nil)
	b := r.bases[0]
	b.ResetQueueIntegral()
	b.Enqueue(testData(0, 0, 1))
	// One frame queued for 1000 µs, then a second joins for another 1000 µs.
	r.k.Schedule(1000, func() { b.Enqueue(testData(0, 0, 2)) })
	r.k.Run(2000)
	got := b.AvgQueueLevel()
	if got < 1.49 || got > 1.51 { // (1*1000 + 2*1000) / 2000
		t.Errorf("AvgQueueLevel = %v, want 1.5", got)
	}
}

func TestNeighborQueueStaleness(t *testing.T) {
	r := newRig(t, 2, nil)
	b := r.bases[0]
	f := testData(1, 0, 1)
	f.QueueLevel = 6
	b.Deliver(f)
	if got := b.AvgNeighborQueue(); got != 6 {
		t.Fatalf("AvgNeighborQueue = %v, want 6", got)
	}
	// After the staleness window the entry must be gone (the saturation
	// deadlock guard).
	r.k.Run(17 * superframe.DefaultConfig().SuperframeDuration())
	if got := b.AvgNeighborQueue(); got != 0 {
		t.Fatalf("stale AvgNeighborQueue = %v, want 0", got)
	}
}

func TestCommandHook(t *testing.T) {
	var got *frame.Frame
	r := newRig(t, 2, []Config{{}, {OnCommand: func(f *frame.Frame) { got = f }}})
	req := &frame.Frame{Kind: frame.GTSRequest, Src: 0, Dst: 1, Origin: 0, Sink: 1, Seq: 1, MPDUBytes: 27}
	r.bases[1].Deliver(req)
	if got != req {
		t.Fatal("GTS request did not reach the command hook")
	}
	// Broadcast commands reach the hook too.
	got = nil
	resp := &frame.Frame{Kind: frame.GTSResponse, Src: 0, Dst: frame.Broadcast, Origin: 0, Sink: frame.Broadcast, Seq: 2, MPDUBytes: 29}
	r.bases[1].Deliver(resp)
	if got != resp {
		t.Fatal("GTS response broadcast did not reach the command hook")
	}
}

func TestForwardingFullQueueDropsOnce(t *testing.T) {
	// A frame dropped by a full queue on the forwarding path must be counted
	// exactly once and returned to the pool exactly once — the double-release
	// checker turns a second Put into a panic.
	pool := &frame.Pool{}
	pool.SetChecks(true)
	router := tableRouter{1: 0}
	r := newRig(t, 3, []Config{
		{FramePool: pool},
		{Router: router, FramePool: pool, QueueCap: 1},
		{FramePool: pool},
	})
	// Fill node 1's single-slot queue so the forwarded copy cannot fit.
	if !r.bases[1].Enqueue(testData(1, 0, 9)) {
		t.Fatal("priming enqueue failed")
	}
	f := testData(2, 1, 1)
	f.Sink = 0
	r.bases[1].Deliver(f)
	st := r.bases[1].Stats()
	if st.Forwarded != 0 {
		t.Errorf("Forwarded = %d, want 0", st.Forwarded)
	}
	if st.QueueDrops != 1 {
		t.Errorf("QueueDrops = %d, want 1", st.QueueDrops)
	}
	if st.DeadlineDrops != 0 {
		t.Errorf("DeadlineDrops = %d, want 0", st.DeadlineDrops)
	}
	// The head frame must be untouched by the drop.
	if h := r.bases[1].Queue().Head(); h == nil || h.Seq != 9 {
		t.Fatalf("queue head = %+v, want the primed frame", h)
	}
}

func TestDropOldestEvictsBehindHead(t *testing.T) {
	pool := &frame.Pool{}
	pool.SetChecks(true)
	r := newRig(t, 1, []Config{{FramePool: pool, QueueCap: 2, Drop: DropOldest}})
	b := r.bases[0]
	var doneOld *bool
	f1, f2, f3 := testData(0, 0, 1), pool.Get(), testData(0, 0, 3)
	*f2 = *testData(0, 0, 2)
	f2.Done = func(ok bool) { doneOld = &ok }
	b.Enqueue(f1)
	b.Enqueue(f2)
	if !b.Enqueue(f3) {
		t.Fatal("drop-oldest enqueue rejected the arrival")
	}
	st := b.Stats()
	if st.QueueDrops != 1 || st.Enqueued != 3 {
		t.Errorf("stats = %+v, want 1 queue drop and 3 enqueued", st)
	}
	if doneOld == nil || *doneOld {
		t.Errorf("evicted frame's Done = %v, want failure", doneOld)
	}
	// The in-service head must never be evicted; the arrival sits behind it.
	if h := b.Queue().Head(); h == nil || h.Seq != 1 {
		t.Fatalf("queue head = %+v, want seq 1", h)
	}
	if b.Queue().Len() != 2 || b.Queue().At(1).Seq != 3 {
		t.Fatalf("queue tail wrong: len %d", b.Queue().Len())
	}
}

func TestDropOldestCapacityOneDegradesToTailDrop(t *testing.T) {
	r := newRig(t, 1, []Config{{QueueCap: 1, Drop: DropOldest}})
	b := r.bases[0]
	b.Enqueue(testData(0, 0, 1))
	if b.Enqueue(testData(0, 0, 2)) {
		t.Fatal("capacity-1 queue must tail-drop (head is in service)")
	}
	if st := b.Stats(); st.QueueDrops != 1 {
		t.Errorf("QueueDrops = %d, want 1", st.QueueDrops)
	}
}

func TestDeadlineDropEvictsExpired(t *testing.T) {
	pool := &frame.Pool{}
	pool.SetChecks(true)
	deadline := sim.Time(100)
	r := newRig(t, 1, []Config{{FramePool: pool, QueueCap: 2, Drop: DeadlineDrop, DropDeadline: deadline}})
	b := r.bases[0]
	f1, f2 := testData(0, 0, 1), pool.Get()
	*f2 = *testData(0, 0, 2)
	b.Enqueue(f1)
	b.Enqueue(f2) // CreatedAt 0
	r.k.Run(200)  // both queued frames are now past the deadline
	fresh := testData(0, 0, 3)
	fresh.CreatedAt = r.k.Now()
	if !b.Enqueue(fresh) {
		t.Fatal("deadline-drop enqueue rejected the arrival")
	}
	st := b.Stats()
	if st.DeadlineDrops != 1 || st.QueueDrops != 0 {
		t.Errorf("stats = %+v, want exactly 1 deadline drop", st)
	}
	// Only the non-head expired frame goes; the in-service head stays.
	if h := b.Queue().Head(); h == nil || h.Seq != 1 {
		t.Fatalf("queue head = %+v, want seq 1", h)
	}
}

func TestParseDropPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want DropPolicy
	}{{"", TailDrop}, {"tail", TailDrop}, {"oldest", DropOldest}, {"deadline", DeadlineDrop}} {
		got, err := ParseDropPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseDropPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Errorf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseDropPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestAccessBarringDisabledWithoutRng(t *testing.T) {
	r := newRig(t, 1, nil)
	b := r.bases[0]
	b.SetBarring(0, 100) // even a fully closed gate is inert without an RNG
	if barred, _ := b.AccessBarred(); barred {
		t.Fatal("barring engaged without a BarringRng")
	}
	if st := b.Stats(); st.Barred != 0 {
		t.Errorf("Barred = %d, want 0", st.Barred)
	}
}

func TestAccessBarringGateAndEscalation(t *testing.T) {
	r := newRig(t, 1, []Config{{BarringRng: sim.NewRand(1)}})
	b := r.bases[0]
	if barred, _ := b.AccessBarred(); barred {
		t.Fatal("default barring factor must be fully open")
	}
	b.SetBarring(0, 100) // p=0: every draw fails
	barred, retry := b.AccessBarred()
	if !barred || retry != 100 {
		t.Fatalf("first bar: barred=%v retry=%v, want true, 100", barred, retry)
	}
	// While the backoff runs, re-polls return the cached horizon without
	// drawing or re-counting.
	barred2, retry2 := b.AccessBarred()
	if !barred2 || retry2 != retry {
		t.Fatalf("cached bar: barred=%v retry=%v", barred2, retry2)
	}
	if st := b.Stats(); st.Barred != 1 {
		t.Errorf("Barred = %d, want 1 (cached re-poll must not count)", st.Barred)
	}
	// Past the horizon the next failed draw escalates the wait (<<1).
	r.k.Run(150)
	barred3, retry3 := b.AccessBarred()
	if !barred3 || retry3 != r.k.Now()+200 {
		t.Fatalf("escalated bar: barred=%v retry=%v, want %v", barred3, retry3, r.k.Now()+200)
	}
	if b.BarringFactor() != 0 {
		t.Errorf("BarringFactor = %v, want 0", b.BarringFactor())
	}
	// A fully open beacon lifts the gate immediately once the wait passed.
	r.k.Run(500)
	b.SetBarring(1, 100)
	if barred, _ := b.AccessBarred(); barred {
		t.Fatal("p=1 must never bar")
	}
	if st := b.Stats(); st.Barred != 2 {
		t.Errorf("Barred = %d, want 2", st.Barred)
	}
}
