package mac

import (
	"testing"

	"qma/internal/frame"
	"qma/internal/radio"
	"qma/internal/sim"
	"qma/internal/superframe"
)

// rig wires two Bases over a 2-node link (plus an optional third hidden
// node) for direct MAC-layer tests.
type rig struct {
	k     *sim.Kernel
	m     *radio.Medium
	bases []*Base
}

func newRig(t *testing.T, n int, cfgs []Config) *rig {
	t.Helper()
	g := radio.NewGraphTopology(n)
	for i := 1; i < n; i++ {
		g.AddLink(0, frame.NodeID(i))
	}
	k := sim.NewKernel()
	m := radio.NewMedium(k, g, sim.NewRand(1))
	clock := superframe.NewClock(superframe.DefaultConfig())
	r := &rig{k: k, m: m}
	for i := 0; i < n; i++ {
		cfg := Config{ID: frame.NodeID(i), Kernel: k, Medium: m, Clock: clock, MaxRetries: -1}
		if i < len(cfgs) {
			c := cfgs[i]
			c.ID, c.Kernel, c.Medium, c.Clock, c.MaxRetries = frame.NodeID(i), k, m, clock, -1
			cfg = c
		}
		b := NewBase(cfg)
		r.bases = append(r.bases, b)
		m.Attach(frame.NodeID(i), b)
	}
	return r
}

func testData(src, dst frame.NodeID, seq uint32) *frame.Frame {
	return &frame.Frame{Kind: frame.Data, Src: src, Dst: dst, Origin: src, Sink: dst, Seq: seq, MPDUBytes: 30}
}

func TestUnicastIsAcknowledged(t *testing.T) {
	r := newRig(t, 2, nil)
	f := testData(0, 1, 1)
	var outcome *bool
	r.bases[0].Enqueue(f)
	r.bases[0].SendFrame(f, func(ok bool) { outcome = &ok })
	r.k.RunAll()
	if outcome == nil || !*outcome {
		t.Fatalf("unicast outcome = %v, want success", outcome)
	}
	s0, s1 := r.bases[0].Stats(), r.bases[1].Stats()
	if s0.TxAttempts != 1 || s0.TxSuccess != 1 || s0.TxFail != 0 {
		t.Errorf("sender stats: %+v", s0)
	}
	if s1.AcksSent != 1 || s1.Delivered != 1 {
		t.Errorf("receiver stats: %+v", s1)
	}
}

func TestUnicastWithoutReceiverTimesOut(t *testing.T) {
	r := newRig(t, 2, nil)
	f := testData(0, 5, 1) // destination does not exist
	var outcome *bool
	r.bases[0].Enqueue(f)
	at := r.k.Now()
	r.bases[0].SendFrame(f, func(ok bool) { outcome = &ok })
	r.k.RunAll()
	if outcome == nil || *outcome {
		t.Fatalf("outcome = %v, want failure", outcome)
	}
	// The node was busy exactly until the ACK deadline.
	if want := at + f.Duration() + frame.AckWait; r.bases[0].BusyUntil() != want {
		t.Errorf("BusyUntil = %v, want %v", r.bases[0].BusyUntil(), want)
	}
}

func TestBroadcastSucceedsWithoutAck(t *testing.T) {
	r := newRig(t, 3, nil)
	f := &frame.Frame{Kind: frame.RouteDiscovery, Src: 0, Dst: frame.Broadcast, Origin: 0, Sink: frame.Broadcast, Seq: 1, MPDUBytes: 30}
	var outcome *bool
	r.bases[0].Enqueue(f)
	r.bases[0].SendFrame(f, func(ok bool) { outcome = &ok })
	r.k.RunAll()
	if outcome == nil || !*outcome {
		t.Fatalf("broadcast outcome = %v, want optimistic success", outcome)
	}
	if r.bases[1].Stats().AcksSent != 0 {
		t.Error("broadcast was acknowledged")
	}
}

func TestFinishFrameRetryPolicy(t *testing.T) {
	r := newRig(t, 2, nil)
	b := r.bases[0]
	f := testData(0, 1, 1)
	b.Enqueue(f)
	// NR=3: three failures keep the frame, the fourth drops it.
	for i := 0; i < 3; i++ {
		if done := b.FinishFrame(f, false); done {
			t.Fatalf("frame dropped after %d failures", i+1)
		}
	}
	if done := b.FinishFrame(f, false); !done {
		t.Fatal("frame not dropped after NR+1 failures")
	}
	if st := b.Stats(); st.RetryDrops != 1 {
		t.Errorf("RetryDrops = %d, want 1", st.RetryDrops)
	}
	if !b.Queue().Empty() {
		t.Error("queue not empty after drop")
	}
}

func TestDoneCallbackFiresOnce(t *testing.T) {
	r := newRig(t, 2, nil)
	b := r.bases[0]
	f := testData(0, 1, 1)
	calls, lastOK := 0, true
	f.Done = func(ok bool) { calls++; lastOK = ok }
	b.Enqueue(f)
	for i := 0; i < 4; i++ {
		b.FinishFrame(f, false)
	}
	if calls != 1 || lastOK {
		t.Errorf("Done fired %d times (ok=%v), want once with false", calls, lastOK)
	}
}

func TestDuplicateRejection(t *testing.T) {
	r := newRig(t, 2, nil)
	delivered := 0
	cfg := Config{OnSinkDeliver: func(*frame.Frame) { delivered++ }}
	r = newRig(t, 2, []Config{{}, cfg})
	// Same (origin, seq) twice: second is a duplicate but still ACKed.
	r.bases[1].Deliver(testData(0, 1, 7))
	r.k.RunAll()
	r.bases[1].Deliver(testData(0, 1, 7))
	r.k.RunAll()
	st := r.bases[1].Stats()
	if st.Delivered != 1 || st.Duplicates != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.AcksSent != 2 {
		t.Errorf("AcksSent = %d, want 2 (duplicates are re-ACKed)", st.AcksSent)
	}
	if delivered != 1 {
		t.Errorf("sink deliveries = %d, want 1", delivered)
	}
}

// TestDuplicateRejectionUnderRetransmission drives the full ACK-loss round
// trip instead of injecting duplicates by hand: the data frame is delivered
// but its ACK is killed by a deep fade at the sender, the sender's retry
// policy retransmits the same frame, and the receiver must reject the copy
// as a duplicate while still re-ACKing it — so the retransmission succeeds
// and the frame finally leaves the queue, delivered exactly once.
func TestDuplicateRejectionUnderRetransmission(t *testing.T) {
	delivered := 0
	r := newRig(t, 2, []Config{{}, {OnSinkDeliver: func(*frame.Frame) { delivered++ }}})
	sender, receiver := r.bases[0], r.bases[1]

	f := testData(0, 1, 7)
	sender.Enqueue(f)

	outcomes := []bool{}
	var send func()
	send = func() {
		sender.SendFrame(f, func(success bool) {
			outcomes = append(outcomes, success)
			if sender.FinishFrame(f, success) {
				return
			}
			// Retry once the fade is over and the node is idle again.
			r.k.At(sender.BusyUntil()+5*sim.Millisecond, send)
		})
	}
	send()
	// The data frame delivers at its airtime end; fade the sender from just
	// after that until past the ACK arrival, so only the ACK is lost.
	r.k.At(f.Duration()+1*sim.Microsecond, func() {
		r.m.SetFadeUntil(0, f.Duration()+frame.TurnaroundTime+frame.AckDuration+10*sim.Microsecond)
	})
	r.k.Run(1 * sim.Second)

	if want := []bool{false, true}; len(outcomes) != 2 || outcomes[0] != want[0] || outcomes[1] != want[1] {
		t.Fatalf("outcomes = %v, want [false true] (ACK lost, retry ACKed)", outcomes)
	}
	if f.Retries != 1 {
		t.Errorf("Retries = %d, want 1", f.Retries)
	}
	rs := receiver.Stats()
	if rs.Delivered != 1 || delivered != 1 {
		t.Errorf("Delivered = %d (sink callback %d), want exactly once", rs.Delivered, delivered)
	}
	if rs.Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1 (the retransmission)", rs.Duplicates)
	}
	if rs.AcksSent != 2 {
		t.Errorf("AcksSent = %d, want 2 (duplicates are re-ACKed)", rs.AcksSent)
	}
	ss := sender.Stats()
	if ss.TxFail != 1 || ss.TxSuccess != 1 || ss.RetryDrops != 0 {
		t.Errorf("sender stats: %+v", ss)
	}
	if !sender.Queue().Empty() {
		t.Error("acknowledged frame still queued")
	}
}

type tableRouter map[frame.NodeID]frame.NodeID

func (r tableRouter) NextHop(from, sink frame.NodeID) (frame.NodeID, bool) {
	h, ok := r[from]
	return h, ok
}

func TestForwarding(t *testing.T) {
	router := tableRouter{1: 0}
	r := newRig(t, 3, []Config{{}, {Router: router}, {}})
	// Node 2 sends to node 1 with final sink 0: node 1 must re-queue it.
	f := testData(2, 1, 1)
	f.Sink = 0
	r.bases[1].Deliver(f)
	st := r.bases[1].Stats()
	if st.Forwarded != 1 {
		t.Fatalf("Forwarded = %d, want 1", st.Forwarded)
	}
	fwd := r.bases[1].Queue().Head()
	if fwd == nil || fwd.Dst != 0 || fwd.Origin != 2 || fwd.Seq != 1 {
		t.Fatalf("forwarded frame wrong: %+v", fwd)
	}
}

func TestQueueLevelIntegral(t *testing.T) {
	r := newRig(t, 1, nil)
	b := r.bases[0]
	b.ResetQueueIntegral()
	b.Enqueue(testData(0, 0, 1))
	// One frame queued for 1000 µs, then a second joins for another 1000 µs.
	r.k.Schedule(1000, func() { b.Enqueue(testData(0, 0, 2)) })
	r.k.Run(2000)
	got := b.AvgQueueLevel()
	if got < 1.49 || got > 1.51 { // (1*1000 + 2*1000) / 2000
		t.Errorf("AvgQueueLevel = %v, want 1.5", got)
	}
}

func TestNeighborQueueStaleness(t *testing.T) {
	r := newRig(t, 2, nil)
	b := r.bases[0]
	f := testData(1, 0, 1)
	f.QueueLevel = 6
	b.Deliver(f)
	if got := b.AvgNeighborQueue(); got != 6 {
		t.Fatalf("AvgNeighborQueue = %v, want 6", got)
	}
	// After the staleness window the entry must be gone (the saturation
	// deadlock guard).
	r.k.Run(17 * superframe.DefaultConfig().SuperframeDuration())
	if got := b.AvgNeighborQueue(); got != 0 {
		t.Fatalf("stale AvgNeighborQueue = %v, want 0", got)
	}
}

func TestCommandHook(t *testing.T) {
	var got *frame.Frame
	r := newRig(t, 2, []Config{{}, {OnCommand: func(f *frame.Frame) { got = f }}})
	req := &frame.Frame{Kind: frame.GTSRequest, Src: 0, Dst: 1, Origin: 0, Sink: 1, Seq: 1, MPDUBytes: 27}
	r.bases[1].Deliver(req)
	if got != req {
		t.Fatal("GTS request did not reach the command hook")
	}
	// Broadcast commands reach the hook too.
	got = nil
	resp := &frame.Frame{Kind: frame.GTSResponse, Src: 0, Dst: frame.Broadcast, Origin: 0, Sink: frame.Broadcast, Seq: 2, MPDUBytes: 29}
	r.bases[1].Deliver(resp)
	if got != resp {
		t.Fatal("GTS response broadcast did not reach the command hook")
	}
}
