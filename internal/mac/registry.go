package mac

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"qma/internal/qlearn"
	"qma/internal/sim"
)

// Name identifies a registered channel access protocol by its canonical
// registry key ("qma", "csma-unslotted", "aloha", ...). The zero value is not
// a protocol; scenario builders treat it as "use the default".
type Name string

// String implements fmt.Stringer: it reports the protocol's registered
// display name ("QMA", "unslotted CSMA/CA", ...) so experiment tables and
// logs read like the paper, falling back to the raw key for unregistered
// names.
func (n Name) String() string {
	if p, ok := Lookup(string(n)); ok {
		return p.Display
	}
	return string(n)
}

// Protocol describes one channel access scheme to the registry. Protocol
// packages (internal/core, internal/csma, internal/aloha, internal/bandit)
// register themselves from an init function; everything above the MAC layer —
// scenario assembly, the DSME substrate, the public qma API, the CLI flags
// and the experiment families — resolves protocols through Lookup/Build
// instead of switching on an enum.
type Protocol struct {
	// Name is the canonical lower-case registry key.
	Name string
	// Aliases are alternative keys accepted by Lookup (CLI shorthands like
	// "unslotted").
	Aliases []string
	// Display is the human-readable name used in experiment tables.
	Display string
	// New builds one node's engine over the shared MAC base configuration.
	// opts carries protocol-specific options; nil selects defaults. New may
	// assume Validate accepted opts.
	New func(cfg Config, opts any, rng *sim.Rand) Engine
	// Validate checks protocol-specific options. nil opts must be accepted
	// (defaults). A nil Validate accepts only nil opts.
	Validate func(opts any) error
	// ParseOptions converts CLI-style key=value options (qma-sim -mac-opt,
	// qma.Scenario.MACOptions) into the protocol's typed options value. The
	// result still passes through Validate, so ParseOptions only needs to
	// reject unknown keys and malformed values. nil means the protocol takes
	// no key=value options.
	ParseOptions func(kv map[string]string) (any, error)
	// AdoptExplorer installs a scenario-level exploration strategy into the
	// protocol's options (opts may be nil for "defaults plus this
	// explorer"). Protocols that reuse the shared qlearn.Explorer plumbing
	// (QMA, the bandit, NOMA) register it; everyone else leaves it nil and
	// ignores the scenario's explorer. Implementations must not override an
	// explorer already present in opts.
	AdoptExplorer func(opts any, explorer qlearn.Explorer) any
	// NeedsCapture marks protocols whose channel access is only meaningful
	// on a capture-enabled medium (radio.Medium.SetCaptureThreshold).
	// Generic comparison families that run a capture-less medium skip them;
	// capture-aware families and the CLI run them like any other protocol.
	NeedsCapture bool
}

var (
	registryMu sync.RWMutex
	registry   = map[string]*Protocol{} // canonical names and aliases
	canonical  []string                 // sorted canonical names
)

// Register adds a protocol to the registry. It panics on a missing name or
// factory and on duplicate keys: registration happens in package init
// functions, where a conflict is a programming error.
func Register(p Protocol) {
	if p.Name == "" || p.New == nil {
		panic("mac: Register needs a Name and a New factory")
	}
	if p.Display == "" {
		p.Display = p.Name
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	// Check every key before inserting any, so a duplicate panic leaves the
	// registry untouched (tests recover from these panics).
	keys := append([]string{p.Name}, p.Aliases...)
	for _, key := range keys {
		if _, dup := registry[key]; dup {
			panic(fmt.Sprintf("mac: protocol key %q registered twice", key))
		}
	}
	stored := p
	for _, key := range keys {
		registry[key] = &stored
	}
	canonical = append(canonical, p.Name)
	sort.Strings(canonical)
}

// Lookup resolves a canonical name or alias. It reports false for the empty
// string and unregistered names.
func Lookup(name string) (*Protocol, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Names lists the registered canonical protocol names in sorted order.
func Names() []Name {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Name, len(canonical))
	for i, n := range canonical {
		out[i] = Name(n)
	}
	return out
}

// RegisteredList renders the canonical names as a comma-separated string for
// error messages and usage strings.
func RegisteredList() string {
	names := Names()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = string(n)
	}
	return strings.Join(parts, ", ")
}

// Build resolves name (canonical or alias), validates opts and constructs an
// engine. It is the single entry point scenario builders go through; an
// unknown name or rejected options return a descriptive error.
func Build(name string, cfg Config, opts any, rng *sim.Rand) (Engine, error) {
	p, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("mac: unknown protocol %q (registered: %s)", name, RegisteredList())
	}
	if p.Validate != nil {
		if err := p.Validate(opts); err != nil {
			return nil, err
		}
	} else if opts != nil {
		return nil, fmt.Errorf("mac: protocol %q takes no options, got %T", p.Name, opts)
	}
	return p.New(cfg, opts, rng), nil
}

// OptionsError is the conventional complaint for a factory handed options of
// a foreign type.
func OptionsError(proto string, opts, want any) error {
	return fmt.Errorf("mac: protocol %q options have type %T, want %T", proto, opts, want)
}

// MaxBE bounds binary-exponential-backoff exponents (802.15.4 caps macMaxBE
// at 8); larger values would overflow the Intn(1<<BE) backoff draw.
const MaxBE = 8

// ValidateBEB checks a protocol's binary-exponential-backoff exponent
// options: 0 means "use the default", negatives and values above MaxBE are
// rejected, and the minimum is checked against the maximum after defaulting
// (so minBE=6 with maxBE unset and a default of 5 is rejected too).
func ValidateBEB(proto string, minBE, maxBE, defaultMin, defaultMax int) error {
	if minBE < 0 || maxBE < 0 {
		return fmt.Errorf("%s: backoff exponents must not be negative: MinBE=%d MaxBE=%d", proto, minBE, maxBE)
	}
	if minBE > MaxBE || maxBE > MaxBE {
		return fmt.Errorf("%s: backoff exponents must not exceed %d: MinBE=%d MaxBE=%d", proto, MaxBE, minBE, maxBE)
	}
	if minBE == 0 {
		minBE = defaultMin
	}
	if maxBE == 0 {
		maxBE = defaultMax
	}
	if minBE > maxBE {
		return fmt.Errorf("%s: MinBE=%d exceeds MaxBE=%d (after defaulting)", proto, minBE, maxBE)
	}
	return nil
}
