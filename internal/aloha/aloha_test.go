package aloha

import (
	"testing"

	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/radio"
	"qma/internal/sim"
	"qma/internal/superframe"
)

type rig struct {
	k       *sim.Kernel
	m       *radio.Medium
	clock   *superframe.Clock
	engines []*Engine
}

func newRig(t *testing.T, links [][2]int, n int, variant Variant, cfgs []mac.Config) *rig {
	t.Helper()
	g := radio.NewGraphTopology(n)
	for _, l := range links {
		g.AddLink(frame.NodeID(l[0]), frame.NodeID(l[1]))
	}
	k := sim.NewKernel()
	m := radio.NewMedium(k, g, sim.NewRand(7))
	clock := superframe.NewClock(superframe.DefaultConfig())
	r := &rig{k: k, m: m, clock: clock}
	for i := 0; i < n; i++ {
		mc := mac.Config{}
		if i < len(cfgs) {
			mc = cfgs[i]
		}
		mc.ID, mc.Kernel, mc.Medium, mc.Clock, mc.MaxRetries = frame.NodeID(i), k, m, clock, -1
		e := New(Config{MAC: mc, Variant: variant, Rng: sim.NewRandStream(7, uint64(i))})
		r.engines = append(r.engines, e)
		m.Attach(frame.NodeID(i), e)
		e.Start()
	}
	return r
}

func dataTo(dst, src frame.NodeID, seq uint32) *frame.Frame {
	return &frame.Frame{Kind: frame.Data, Src: src, Dst: dst, Origin: src, Sink: dst, Seq: seq, MPDUBytes: 40}
}

func TestDeliversOnIdleChannel(t *testing.T) {
	for _, v := range []Variant{Pure, Slotted} {
		t.Run(v.String(), func(t *testing.T) {
			r := newRig(t, [][2]int{{0, 1}}, 2, v, nil)
			for i := 0; i < 20; i++ {
				f := dataTo(1, 0, uint32(i+1))
				r.k.Schedule(sim.Time(i)*100*sim.Millisecond, func() { r.engines[0].Enqueue(f) })
			}
			r.k.Run(5 * sim.Second)
			s := r.engines[0].Base().Stats()
			if s.TxSuccess != 20 || s.TxFail != 0 {
				t.Fatalf("stats: %+v", s)
			}
			if r.engines[1].Base().Stats().Delivered != 20 {
				t.Fatalf("receiver delivered %d", r.engines[1].Base().Stats().Delivered)
			}
			// An idle channel never triggers a retransmission backoff.
			if es := r.engines[0].EngineStats(); es.Backoffs != 0 {
				t.Errorf("backoffs on an idle channel: %+v", es)
			}
		})
	}
}

// TestSlottedAlignsToSubslotBoundaries pins the slotted variant's defining
// property: every transmission starts exactly on a CAP subslot boundary.
func TestSlottedAlignsToSubslotBoundaries(t *testing.T) {
	// Observe delivery instants at the sink: a frame is delivered when its
	// transmission ends, so start = delivery - duration.
	var starts []sim.Time
	k := sim.NewKernel()
	g := radio.NewGraphTopology(2)
	g.AddLink(0, 1)
	m := radio.NewMedium(k, g, sim.NewRand(7))
	clock := superframe.NewClock(superframe.DefaultConfig())
	sender := New(Config{
		MAC:     mac.Config{ID: 0, Kernel: k, Medium: m, Clock: clock, MaxRetries: -1},
		Variant: Slotted,
		Rng:     sim.NewRandStream(7, 0),
	})
	sink := New(Config{
		MAC: mac.Config{ID: 1, Kernel: k, Medium: m, Clock: clock, MaxRetries: -1,
			OnSinkDeliver: func(g *frame.Frame) { starts = append(starts, k.Now()-g.Duration()) }},
		Variant: Slotted,
		Rng:     sim.NewRandStream(7, 1),
	})
	m.Attach(0, sender)
	m.Attach(1, sink)
	sender.Start()
	sink.Start()
	for i := 0; i < 10; i++ {
		f := dataTo(1, 0, uint32(i+1))
		k.Schedule(sim.Time(i)*37*sim.Millisecond, func() { sender.Enqueue(f) })
	}
	k.Run(2 * sim.Second)
	if len(starts) != 10 {
		t.Fatalf("delivered %d frames, want 10", len(starts))
	}
	for _, at := range starts {
		idx := clock.Subslot(at)
		if idx < 0 || clock.SubslotStart(at, idx) != at {
			t.Errorf("transmission started at %v, not on a subslot boundary", at)
		}
	}
}

// TestPureTransmitsImmediately pins pure ALOHA's defining property: a frame
// enqueued mid-CAP on an idle node goes on the air at that very instant (no
// backoff, no CCA, no slot alignment).
func TestPureTransmitsImmediately(t *testing.T) {
	var deliveredAt sim.Time
	k := sim.NewKernel()
	g := radio.NewGraphTopology(2)
	g.AddLink(0, 1)
	m := radio.NewMedium(k, g, sim.NewRand(7))
	clock := superframe.NewClock(superframe.DefaultConfig())
	sender := New(Config{
		MAC:     mac.Config{ID: 0, Kernel: k, Medium: m, Clock: clock, MaxRetries: -1},
		Variant: Pure,
		Rng:     sim.NewRandStream(7, 0),
	})
	sink := New(Config{
		MAC: mac.Config{ID: 1, Kernel: k, Medium: m, Clock: clock, MaxRetries: -1,
			OnSinkDeliver: func(*frame.Frame) { deliveredAt = k.Now() }},
		Variant: Pure,
		Rng:     sim.NewRandStream(7, 1),
	})
	m.Attach(0, sender)
	m.Attach(1, sink)
	sender.Start()
	sink.Start()
	f := dataTo(1, 0, 1)
	at := clock.NextSubslotStart(0) + 333 // mid-CAP, off the slot grid
	k.At(at, func() { sender.Enqueue(f) })
	k.Run(1 * sim.Second)
	if want := at + f.Duration(); deliveredAt != want {
		t.Errorf("delivered at %v, want %v (immediate transmission)", deliveredAt, want)
	}
}

// TestHiddenNodesCollideAndRecover checks that ALOHA suffers collisions two
// hidden saturated senders cause, and that the BEB retransmission path
// recovers at least some of them.
func TestHiddenNodesCollideAndRecover(t *testing.T) {
	for _, v := range []Variant{Pure, Slotted} {
		t.Run(v.String(), func(t *testing.T) {
			r := newRig(t, [][2]int{{0, 1}, {1, 2}}, 3, v, nil)
			seq := uint32(0)
			for i := 0; i < 100; i++ {
				seq++
				r.engines[0].Enqueue(dataTo(1, 0, seq))
				r.engines[2].Enqueue(dataTo(1, 2, seq))
				r.k.Run(r.k.Now() + 40*sim.Millisecond)
			}
			r.k.Run(r.k.Now() + 2*sim.Second)
			s0, s2 := r.engines[0].Base().Stats(), r.engines[2].Base().Stats()
			if s0.TxFail+s2.TxFail == 0 {
				t.Error("no failed transmissions in a saturated hidden-node setup")
			}
			if r.engines[0].EngineStats().Backoffs == 0 {
				t.Error("no retransmission backoffs despite collisions")
			}
			if r.engines[1].Base().Stats().Delivered == 0 {
				t.Error("nothing delivered at the sink")
			}
		})
	}
}

func TestTransactionsRespectCAPBoundary(t *testing.T) {
	for _, v := range []Variant{Pure, Slotted} {
		t.Run(v.String(), func(t *testing.T) {
			r := newRig(t, [][2]int{{0, 1}}, 2, v, nil)
			capEnd := r.clock.CAPEnd(r.clock.NextSubslotStart(0))
			// Pure: enqueue in the trailing CAP guard, where nothing fits.
			// Slotted: enqueue so the next subslot boundary is the CAP's
			// last, from which frame + ACK cross the CAP end.
			at := capEnd - 500
			if v == Slotted {
				at = capEnd - 3000
			}
			r.k.At(at, func() { r.engines[0].Enqueue(dataTo(1, 0, 1)) })
			r.k.Run(capEnd + 100)
			if got := r.engines[0].Base().Stats().TxAttempts; got != 0 {
				t.Fatalf("transmitted %d frames across the CAP boundary", got)
			}
			if r.engines[0].EngineStats().Deferrals == 0 {
				t.Error("no deferral recorded")
			}
			r.k.Run(r.clock.Config().SuperframeDuration() * 2)
			if got := r.engines[0].Base().Stats().TxSuccess; got != 1 {
				t.Fatalf("deferred frame not delivered: success=%d", got)
			}
		})
	}
}

// TestRetryExhaustion pins the shared retry policy: with no receiver, the
// initial attempt plus NR retransmissions (each preceded by one backoff) and
// a final drop.
func TestRetryExhaustion(t *testing.T) {
	r := newRig(t, [][2]int{{0, 1}}, 2, Pure, nil)
	r.engines[0].Enqueue(dataTo(5, 0, 1)) // destination does not exist
	r.k.Run(5 * sim.Second)
	s := r.engines[0].Base().Stats()
	es := r.engines[0].EngineStats()
	if s.TxAttempts != 4 || s.RetryDrops != 1 {
		t.Errorf("attempts=%d drops=%d, want 4/1", s.TxAttempts, s.RetryDrops)
	}
	if es.Backoffs != 3 {
		t.Errorf("Backoffs = %d, want 3 (one per retransmission)", es.Backoffs)
	}
	// ALOHA never declares a CSMA-style channel access failure.
	if s.CSMAFails != 0 {
		t.Errorf("CSMAFails = %d, want 0", s.CSMAFails)
	}
}

// TestOptionsValidation pins the registry-level option checks (overflowing
// exponents, inversions against the defaulted counterpart).
func TestOptionsValidation(t *testing.T) {
	for name, o := range map[string]Options{
		"negative":              {MinBE: -1},
		"overflowing exponent":  {MinBE: 33, MaxBE: 33},
		"min above max":         {MinBE: 5, MaxBE: 4},
		"min above default max": {MinBE: 6},
	} {
		if err := validateOptions(ProtoPure, o); err == nil {
			t.Errorf("%s: validateOptions accepted %+v", name, o)
		}
	}
	if err := validateOptions(ProtoPure, Options{MinBE: 2, MaxBE: 6}); err != nil {
		t.Errorf("validateOptions rejected good options: %v", err)
	}
}

func TestVariantStringAndBadConfig(t *testing.T) {
	if Pure.String() != "pure" || Slotted.String() != "slotted" {
		t.Error("variant names wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without Rng")
		}
	}()
	New(Config{})
}
