package aloha

import (
	"testing"

	"qma/internal/mac"
)

func TestParseOptionsKV(t *testing.T) {
	got, err := parseOptions(ProtoPure, map[string]string{"minbe": "2", "maxbe": "6"})
	if err != nil {
		t.Fatal(err)
	}
	if got.(Options) != (Options{MinBE: 2, MaxBE: 6}) {
		t.Errorf("parsed %+v", got)
	}
	if _, err := parseOptions(ProtoPure, map[string]string{"maxbackoffs": "3"}); err == nil {
		t.Error("aloha has no backoff cap; unknown key must be rejected")
	}
	if _, err := parseOptions(ProtoPure, map[string]string{"maxbe": "x"}); err == nil {
		t.Error("malformed value accepted")
	}
}

func TestRegistryParseThenValidate(t *testing.T) {
	p, ok := mac.Lookup(ProtoPure)
	if !ok {
		t.Fatal("aloha not registered")
	}
	opts, err := p.ParseOptions(map[string]string{"minbe": "6", "maxbe": "4"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(opts); err == nil {
		t.Error("Validate accepted MinBE > MaxBE")
	}
	if err := validateOptions(ProtoPure, "nope"); err == nil {
		t.Error("foreign options type accepted")
	}
}
