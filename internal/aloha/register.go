package aloha

import (
	"qma/internal/mac"
	"qma/internal/sim"
)

func init() {
	for _, reg := range []struct {
		name, alias, display string
		variant              Variant
	}{
		{ProtoPure, "pure-aloha", "pure ALOHA", Pure},
		{ProtoSlotted, "s-aloha", "slotted ALOHA", Slotted},
	} {
		reg := reg
		mac.Register(mac.Protocol{
			Name:     reg.name,
			Aliases:  []string{reg.alias},
			Display:  reg.display,
			Validate: func(opts any) error { return validateOptions(reg.name, opts) },
			New: func(cfg mac.Config, opts any, rng *sim.Rand) mac.Engine {
				var o Options
				if opts != nil {
					o = opts.(Options)
				}
				return New(Config{
					MAC: cfg, Variant: reg.variant, Rng: rng,
					MinBE: o.MinBE, MaxBE: o.MaxBE,
				})
			},
		})
	}
}

func validateOptions(proto string, opts any) error {
	if opts == nil {
		return nil
	}
	o, ok := opts.(Options)
	if !ok {
		return mac.OptionsError(proto, opts, Options{})
	}
	return mac.ValidateBEB("aloha", o.MinBE, o.MaxBE, DefaultMinBE, DefaultMaxBE)
}
