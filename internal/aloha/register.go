package aloha

import (
	"qma/internal/mac"
	"qma/internal/sim"
)

func init() {
	for _, reg := range []struct {
		name, alias, display string
		variant              Variant
	}{
		{ProtoPure, "pure-aloha", "pure ALOHA", Pure},
		{ProtoSlotted, "s-aloha", "slotted ALOHA", Slotted},
	} {
		reg := reg
		mac.Register(mac.Protocol{
			Name:         reg.name,
			Aliases:      []string{reg.alias},
			Display:      reg.display,
			Validate:     func(opts any) error { return validateOptions(reg.name, opts) },
			ParseOptions: func(kv map[string]string) (any, error) { return parseOptions(reg.name, kv) },
			New: func(cfg mac.Config, opts any, rng *sim.Rand) mac.Engine {
				var o Options
				if opts != nil {
					o = opts.(Options)
				}
				return New(Config{
					MAC: cfg, Variant: reg.variant, Rng: rng,
					MinBE: o.MinBE, MaxBE: o.MaxBE,
				})
			},
		})
	}
}

// parseOptions maps -mac-opt key=value pairs onto Options; proto is the
// registered key of the variant the user selected, so errors name it.
func parseOptions(proto string, kv map[string]string) (any, error) {
	var o Options
	err := mac.ParseKV(proto, kv, map[string]mac.KVField{
		"minbe": mac.IntField(&o.MinBE),
		"maxbe": mac.IntField(&o.MaxBE),
	})
	if err != nil {
		return nil, err
	}
	return o, nil
}

func validateOptions(proto string, opts any) error {
	if opts == nil {
		return nil
	}
	o, ok := opts.(Options)
	if !ok {
		return mac.OptionsError(proto, opts, Options{})
	}
	return mac.ValidateBEB("aloha", o.MinBE, o.MaxBE, DefaultMinBE, DefaultMaxBE)
}
