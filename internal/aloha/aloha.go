// Package aloha implements the oldest contention-based channel access
// discipline as a baseline for QMA: pure ALOHA (transmit the moment data is
// available, no carrier sensing at all) and slotted ALOHA (transmissions
// aligned to the CAP subslot grid, which halves the vulnerable period). Both
// engines embed the shared MAC base of internal/mac, so queueing, immediate
// acknowledgements, retransmission accounting and duplicate rejection are
// identical to QMA and CSMA/CA — the comparison isolates the access timing,
// exactly as the paper frames "contention-based wireless channel access
// methods like CSMA and ALOHA" (§1).
//
// Collision recovery uses the 802.15.4 binary exponential backoff constants
// (BE in [macMinBE, macMaxBE]) over aUnitBackoffPeriod for the pure variant
// and over whole subslots for the slotted variant, but — unlike CSMA/CA —
// there is no CCA and no macMaxCSMABackoffs cap: an ALOHA transmitter never
// declares a channel access failure, it keeps retransmitting until the
// shared retry policy (NR) drops the frame.
package aloha

import (
	"qma/internal/frame"
	"qma/internal/mac"
	"qma/internal/sim"
)

// Canonical registry keys of the two ALOHA variants.
const (
	ProtoPure    = "aloha"
	ProtoSlotted = "slotted-aloha"
)

// UnitBackoffPeriod is the pure-ALOHA retransmission backoff quantum:
// aUnitBackoffPeriod (20 symbols = 320 µs), shared with CSMA/CA so the BEB
// delays of the two families are directly comparable.
const UnitBackoffPeriod = 20 * frame.SymbolDuration

// Default binary exponential backoff exponents (802.15.4 macMinBE/macMaxBE).
const (
	DefaultMinBE = 3
	DefaultMaxBE = 5
)

// Variant selects the ALOHA flavour.
type Variant uint8

const (
	// Pure transmits immediately when a frame is available.
	Pure Variant = iota
	// Slotted aligns every transmission to a CAP subslot boundary.
	Slotted
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == Slotted {
		return "slotted"
	}
	return "pure"
}

// Options tunes an ALOHA engine through the protocol registry. The zero
// value (or nil options) selects the defaults.
type Options struct {
	// MinBE and MaxBE bound the retransmission backoff exponent when
	// positive (defaults 3 and 5).
	MinBE, MaxBE int
}

// Config assembles an ALOHA engine.
type Config struct {
	// MAC configures the shared MAC base.
	MAC mac.Config
	// Variant selects pure or slotted behaviour.
	Variant Variant
	// Rng drives the random retransmission backoff; required.
	Rng *sim.Rand
	// MinBE and MaxBE override the backoff exponents when positive.
	MinBE, MaxBE int
}

// Stats aggregates ALOHA-specific counters.
type Stats struct {
	// Backoffs counts retransmission backoffs started after a failed
	// unicast.
	Backoffs uint64
	// Deferrals counts transmissions postponed because the transaction did
	// not fit into the remaining CAP (or arrived outside it).
	Deferrals uint64
	// BusyWaits counts transmissions postponed because the node itself was
	// mid-activity (typically an immediate-ACK duty).
	BusyWaits uint64
}

// Engine is one node's ALOHA MAC.
type Engine struct {
	base *mac.Base
	cfg  Config

	stats Stats

	// inTransaction guards against starting two concurrent transactions.
	inTransaction bool

	// epoch counts power-cycle faults (mac.Rebooter); see at().
	epoch uint32
}

var _ mac.Engine = (*Engine)(nil)

// New assembles an engine from cfg, panicking on an invalid configuration
// (scenario assembly is programmer-controlled).
func New(cfg Config) *Engine {
	if cfg.Rng == nil {
		panic("aloha: Rng is required")
	}
	if cfg.MAC.Clock == nil {
		panic("aloha: MAC.Clock is required")
	}
	if cfg.MinBE <= 0 {
		cfg.MinBE = DefaultMinBE
	}
	if cfg.MaxBE <= 0 {
		cfg.MaxBE = DefaultMaxBE
	}
	if cfg.MAC.OnAccept != nil {
		panic("aloha: MAC.OnAccept is owned by the engine")
	}
	e := &Engine{cfg: cfg}
	cfg.MAC.OnAccept = e.kick
	e.base = mac.NewBase(cfg.MAC)
	return e
}

// Base implements mac.Engine.
func (e *Engine) Base() *mac.Base { return e.base }

// Deliver implements radio.Handler by delegating to the shared receive path.
func (e *Engine) Deliver(f *frame.Frame) { e.base.Deliver(f) }

// EngineStats returns a copy of the ALOHA-specific counters.
func (e *Engine) EngineStats() Stats { return e.stats }

// Start implements mac.Engine.
func (e *Engine) Start() { e.kick() }

// Enqueue implements mac.Engine, starting a transaction when idle.
func (e *Engine) Enqueue(f *frame.Frame) bool {
	ok := e.base.Enqueue(f)
	if ok {
		e.kick()
	}
	return ok
}

// Reboot implements mac.Rebooter: wipe the shared MAC state and the
// transaction flag (backoff progress lives only in cancelled closures),
// then resume with whatever traffic arrives next.
func (e *Engine) Reboot() {
	e.base.Reboot()
	e.inTransaction = false
	e.epoch++
	e.kick()
}

// kick starts a transaction for the queue head if none is running.
func (e *Engine) kick() {
	if e.inTransaction || e.base.Queue().Empty() {
		return
	}
	if barred, retryAt := e.base.AccessBarred(); barred {
		// Access-class barring: hold the transaction slot and retry once the
		// barring backoff has passed (a fresh Bernoulli draw happens then).
		e.inTransaction = true
		e.at(retryAt, func() {
			e.inTransaction = false
			e.kick()
		})
		return
	}
	e.inTransaction = true
	f := e.base.Queue().Head()
	if e.cfg.Variant == Slotted {
		e.armSlot(f)
	} else {
		e.send(f)
	}
}

// at schedules fn at the absolute instant t, bound to the engine's current
// reboot epoch: a power-cycle fault (mac.Rebooter) bumps the epoch, turning
// every in-flight continuation — backoff expiries, CCA completions, slot
// boundaries — into a no-op instead of letting it operate on a flushed
// queue. Without faults the epoch never changes and the guard is a single
// always-true comparison.
func (e *Engine) at(t sim.Time, fn func()) {
	ep := e.epoch
	e.base.Kernel().At(t, func() {
		if e.epoch == ep {
			fn()
		}
	})
}

// transactionCost is the CAP time one attempt occupies: the frame itself
// and, for unicasts, the ACK exchange.
func (e *Engine) transactionCost(f *frame.Frame) sim.Time {
	cost := f.Duration()
	if !f.IsBroadcast() {
		cost += frame.AckWait
	}
	return cost
}

// nextCAPStart reports the first CAP start at or after now: this
// superframe's if the CAP has not begun yet, the next superframe's
// otherwise.
func (e *Engine) nextCAPStart(now sim.Time) sim.Time {
	clk := e.base.Clock()
	start := clk.CAPEnd(now) - clk.Config().CAPDuration()
	if now >= start {
		start = clk.SuperframeStart(now) + clk.Config().SuperframeDuration() + clk.Config().CAPStartOffset()
	}
	return start
}

// send is the pure-ALOHA transmit path: transmit now unless the node is
// mid-activity or the transaction does not fit into the remaining CAP.
func (e *Engine) send(f *frame.Frame) {
	now := e.base.Kernel().Now()
	if e.base.Busy() {
		e.stats.BusyWaits++
		e.at(e.base.BusyUntil(), func() { e.send(f) })
		return
	}
	if !e.base.Clock().FitsInCAP(now, e.transactionCost(f)) {
		e.stats.Deferrals++
		e.at(e.nextCAPStart(now), func() { e.send(f) })
		return
	}
	e.transmit(f)
}

// armSlot schedules the slotted-ALOHA transmit attempt for the next subslot
// boundary (rolling into the next CAP automatically).
func (e *Engine) armSlot(f *frame.Frame) {
	t := e.base.Clock().NextSubslotStart(e.base.Kernel().Now())
	e.at(t, func() { e.fireSlot(f) })
}

// fireSlot attempts a transmission exactly on a subslot boundary.
func (e *Engine) fireSlot(f *frame.Frame) {
	now := e.base.Kernel().Now()
	if e.base.Busy() {
		e.stats.BusyWaits++
		e.armSlot(f)
		return
	}
	if !e.base.Clock().FitsInCAP(now, e.transactionCost(f)) {
		e.stats.Deferrals++
		e.armSlot(f)
		return
	}
	e.transmit(f)
}

// transmit puts f on the air and routes the outcome through the shared retry
// policy: a failed unicast retransmits after a random binary exponential
// backoff until NR is exhausted.
func (e *Engine) transmit(f *frame.Frame) {
	e.base.SendFrame(f, func(success bool) {
		if e.base.FinishFrame(f, success) {
			e.inTransaction = false
			e.kick()
			return
		}
		e.backoff(f)
	})
}

// backoff delays the retransmission of f. The exponent grows with the
// frame's retry count from MinBE to MaxBE; the delay is at least one unit so
// a collision is never replayed verbatim at the same instant.
func (e *Engine) backoff(f *frame.Frame) {
	e.stats.Backoffs++
	be := e.cfg.MinBE + int(f.Retries) - 1
	if be > e.cfg.MaxBE {
		be = e.cfg.MaxBE
	}
	units := sim.Time(1 + e.cfg.Rng.Intn(1<<uint(be)))
	if e.cfg.Variant == Slotted {
		// Skip a random number of subslot boundaries, pausing across CAP
		// gaps automatically.
		target := e.base.Kernel().Now()
		for i := sim.Time(0); i < units; i++ {
			target = e.base.Clock().NextSubslotStart(target)
		}
		e.at(target, func() { e.fireSlot(f) })
		return
	}
	e.at(e.base.Kernel().Now()+units*UnitBackoffPeriod, func() { e.send(f) })
}
