package topo

import (
	"fmt"
	"math"
	"sort"

	"qma/internal/frame"
	"qma/internal/radio"
	"qma/internal/sim"
)

// This file is the multi-cell mMTC partitioner: a city-scale area split into
// a grid of cells, one sink per cell, BFS routing confined per cell, and the
// enumerated boundary-interference links a sharded medium mirrors across
// cell edges. It exists because the monolithic path tops out twice — the
// medium is one kernel on one core, and frame.NodeID is 16-bit, so a single
// cell can never exceed 32767 nodes. Cells re-base node identity: every cell
// gets its own dense local id space (sink = 0), and the global picture uses
// plain ints.

// CityConfig parameterizes NewCity.
type CityConfig struct {
	// Nodes is the total device count including one sink per cell; required,
	// at least 2 per cell.
	Nodes int
	// CellsX and CellsY shape the cell grid (default 1×1).
	CellsX, CellsY int
	// Degree is the target mean decode degree (default 10); the city area is
	// sized so a uniform deployment hits it on average, exactly like
	// FactoryHall.
	Degree float64
	// PathLoss configures the channel (zero value = DefaultPathLossConfig).
	// Per-link frozen shadowing is not supported: cross-cell links would need
	// a shadowing realization per global pair, which the per-cell topologies
	// cannot represent, so NewCity requires ShadowSigmaDB = 0.
	PathLoss radio.PathLossConfig
	// Seed draws the node placement; same seed, same city.
	Seed uint64
	// HotspotCell and HotspotFraction skew the device placement for
	// imbalanced-load experiments: when HotspotFraction > 0, that fraction of
	// the devices is drawn uniformly inside HotspotCell's rectangle instead
	// of the whole city, so one cell carries a multiple of the average load.
	// The zero value changes nothing — not even the rng stream — so existing
	// seeds keep producing byte-identical cities.
	HotspotCell     int
	HotspotFraction float64
}

// BoundaryTarget is the far end of one boundary-interference link: a node
// (by local id) in another cell that senses the source's transmissions.
type BoundaryTarget struct {
	Cell int32
	Node frame.NodeID
}

// City is a cell-partitioned deployment: Cells[c] is a self-contained
// Network (local ids, sink 0 at the cell center, min-hop BFS routing
// confined to the cell), and the boundary link CSR lists, for every node,
// the nodes of other cells close enough to sense its transmissions. The
// sharded runner mirrors edge transmissions along exactly these links.
type City struct {
	// Config echoes the (normalized) construction parameters.
	Config CityConfig
	// Width and Height are the city extent in meters; CellW/CellH one cell's.
	Width, Height float64
	CellW, CellH  float64
	// SenseRange is the cross-cell interference radius in meters: the largest
	// distance at which the path-loss law still clears the energy-detection
	// threshold (sensitivity + CCA margin) — the same predicate the
	// single-medium CSR sense links are built from.
	SenseRange float64
	// Cells holds one Network per cell, row-major (cell = y*CellsX + x).
	Cells []*Network

	// edgeOff/edgeDst are per-cell CSR rows over local source ids: cell c's
	// node s has boundary targets edgeDst[c][edgeOff[c][s]:edgeOff[c][s+1]].
	edgeOff [][]int32
	edgeDst [][]BoundaryTarget
	// neighbors[c] lists, ascending, the cells that share at least one
	// boundary link with c. Links are symmetric (the sense predicate is a
	// distance threshold), so this is both "who c disturbs" and "who
	// disturbs c".
	neighbors [][]int32
	// boundary is the total boundary link count.
	boundary int
}

// NumCells reports the cell count.
func (c *City) NumCells() int { return len(c.Cells) }

// NumNodes reports the total node count including the per-cell sinks.
func (c *City) NumNodes() int { return c.Config.Nodes }

// BoundaryLinks reports the total number of directed cross-cell
// interference links.
func (c *City) BoundaryLinks() int { return c.boundary }

// EdgeTargets lists the cross-cell nodes that sense transmissions by the
// given cell-local source (empty for interior nodes). The returned slice is
// shared — callers must not mutate it.
func (c *City) EdgeTargets(cell int, src frame.NodeID) []BoundaryTarget {
	off := c.edgeOff[cell]
	return c.edgeDst[cell][off[src]:off[src+1]]
}

// NeighborCells lists, in ascending order, the cells that share at least one
// boundary-interference link with the given cell — the exact dependency set
// a scheduler must respect, since only these cells exchange busy windows
// with it. The relation is symmetric. The returned slice is shared — callers
// must not mutate it.
func (c *City) NeighborCells(cell int) []int32 {
	return c.neighbors[cell]
}

// EdgeNodes reports how many of cell's nodes have at least one boundary
// target.
func (c *City) EdgeNodes(cell int) int {
	off := c.edgeOff[cell]
	n := 0
	for s := 0; s+1 < len(off); s++ {
		if off[s+1] > off[s] {
			n++
		}
	}
	return n
}

// senseRange computes the largest distance at which CanSense holds under
// the log-distance law (no shadowing), mirroring PathLossTopology's
// thresholds: rssi = Tx − RefLoss − 10·exp·log10(d) ≥ Sensitivity + CCAMargin.
func senseRange(cfg radio.PathLossConfig) float64 {
	budget := cfg.TxPowerDBm - cfg.ReferenceLossDB - (cfg.SensitivityDBm + cfg.CCAMarginDB)
	d := math.Pow(10, budget/(10*cfg.PathLossExponent))
	// Same clamp-and-inflate as the topology's rangeBound: distances below
	// 0.1 m are clamped by the RSSI law, and the tiny inflation keeps nodes
	// sitting exactly on the threshold circle inside the range.
	return math.Max(d, 0.1) * (1 + 1e-9)
}

// NewCity builds the cell-partitioned deployment. Construction is
// O(N + E + B) — uniform placement over the city rectangle, per-cell
// PathLossTopology + BFS (the FactoryHall construction per cell), and a
// uniform-grid sweep for the boundary links — so million-node cities build
// in seconds. It panics on configuration errors: unsupported shadowing, too
// few nodes, or a cell exceeding the 16-bit local id space (use more cells).
func NewCity(cfg CityConfig) *City {
	if cfg.CellsX <= 0 {
		cfg.CellsX = 1
	}
	if cfg.CellsY <= 0 {
		cfg.CellsY = 1
	}
	cells := cfg.CellsX * cfg.CellsY
	if cfg.Nodes < 2*cells {
		panic(fmt.Sprintf("topo: City needs at least 2 nodes per cell, got %d for %d cells", cfg.Nodes, cells))
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 10
	}
	if cfg.PathLoss == (radio.PathLossConfig{}) {
		cfg.PathLoss = radio.DefaultPathLossConfig()
	}
	if cfg.PathLoss.ShadowSigmaDB != 0 {
		panic("topo: City requires PathLoss.ShadowSigmaDB = 0 (cross-cell shadowing is undefined)")
	}
	if cfg.PathLoss.PathLossExponent <= 0 {
		panic("topo: City requires a positive PathLossExponent")
	}
	if cfg.HotspotFraction < 0 || cfg.HotspotFraction >= 1 {
		panic(fmt.Sprintf("topo: City HotspotFraction must be in [0,1), got %g", cfg.HotspotFraction))
	}
	if cfg.HotspotFraction > 0 && (cfg.HotspotCell < 0 || cfg.HotspotCell >= cells) {
		panic(fmt.Sprintf("topo: City HotspotCell %d out of range for %d cells", cfg.HotspotCell, cells))
	}

	// Area from the decode range and the target degree, exactly like
	// FactoryHall; square cells tile it.
	budget := cfg.PathLoss.TxPowerDBm - cfg.PathLoss.ReferenceLossDB - cfg.PathLoss.SensitivityDBm
	r := math.Pow(10, budget/(10*cfg.PathLoss.PathLossExponent))
	area := math.Pi * r * r * float64(cfg.Nodes) / cfg.Degree
	cellSide := math.Sqrt(area / float64(cells))
	c := &City{
		Config: cfg,
		Width:  cellSide * float64(cfg.CellsX),
		Height: cellSide * float64(cfg.CellsY),
		CellW:  cellSide,
		CellH:  cellSide,
		Cells:  make([]*Network, cells),
	}
	c.SenseRange = senseRange(cfg.PathLoss)

	// Place the device nodes uniformly over the whole city (the same rng
	// stream FactoryHall draws placements from) and bucket them by cell.
	// Local ids are assigned in draw order behind the cell sink, so the
	// layout is deterministic: same seed, same city.
	devices := cfg.Nodes - cells
	rng := sim.NewRandStream(cfg.Seed, 7001)
	cellPos := make([][]radio.Position, cells)
	for cell := 0; cell < cells; cell++ {
		cx, cy := cell%cfg.CellsX, cell/cfg.CellsX
		cellPos[cell] = append(cellPos[cell], radio.Position{
			X: (float64(cx) + 0.5) * c.CellW,
			Y: (float64(cy) + 0.5) * c.CellH,
		})
	}
	// global[i] locates device i (and, first, each sink) for the boundary
	// sweep: position plus (cell, local) identity.
	global := make([]placed, 0, cfg.Nodes)
	for cell := 0; cell < cells; cell++ {
		global = append(global, placed{cellPos[cell][0], int32(cell), 0})
	}
	for i := 0; i < devices; i++ {
		var p radio.Position
		if cfg.HotspotFraction > 0 && rng.Float64() < cfg.HotspotFraction {
			// Hotspot draw: uniform inside the hotspot cell's rectangle. The
			// gating draw only happens when the feature is on, so fraction 0
			// consumes the stream exactly like before.
			hx, hy := cfg.HotspotCell%cfg.CellsX, cfg.HotspotCell/cfg.CellsX
			p = radio.Position{
				X: (float64(hx) + rng.Float64()) * c.CellW,
				Y: (float64(hy) + rng.Float64()) * c.CellH,
			}
		} else {
			p = radio.Position{X: rng.Float64() * c.Width, Y: rng.Float64() * c.Height}
		}
		cx := min(int(p.X/c.CellW), cfg.CellsX-1)
		cy := min(int(p.Y/c.CellH), cfg.CellsY-1)
		cell := cy*cfg.CellsX + cx
		global = append(global, placed{p, int32(cell), int32(len(cellPos[cell]))})
		cellPos[cell] = append(cellPos[cell], p)
	}

	for cell := 0; cell < cells; cell++ {
		n := len(cellPos[cell])
		if n > math.MaxInt16 {
			panic(fmt.Sprintf("topo: City cell %d holds %d nodes but local ids are 16-bit; use more cells", cell, n))
		}
		pt := radio.NewPathLossTopology(cfg.PathLoss, cellPos[cell])
		c.Cells[cell] = &Network{
			Name:      fmt.Sprintf("city-%d-cell-%d", cfg.Nodes, cell),
			Topology:  pt,
			Sink:      0,
			Parent:    bfsTree(pt, n),
			Positions: cellPos[cell],
		}
	}

	c.buildBoundary(global)
	return c
}

// placed locates one node for the boundary sweep: position plus its
// (cell, local) identity in the partition.
type placed struct {
	pos   radio.Position
	cell  int32
	local int32
}

// buildBoundary enumerates the directed cross-cell sense links with a
// uniform grid over the whole city keyed by global (int) indices — the
// per-cell topologies cannot answer cross-cell queries, and a city-wide
// PathLossTopology cannot exist above 32767 nodes. A directed link src→dst
// exists iff the two nodes live in different cells and their distance is
// within SenseRange; distance is symmetric, so every link has its reverse.
func (c *City) buildBoundary(global []placed) {
	cells := len(c.Cells)
	n := len(global)
	bin := c.SenseRange
	// Floor the bin edge so the grid never exceeds ~4N bins (tiny ranges),
	// widening the scan reach instead — the same trade PathLossTopology's
	// grid makes.
	if floor := math.Sqrt(c.Width * c.Height / (4 * float64(n))); bin < floor {
		bin = floor
	}
	reach := int(math.Ceil(c.SenseRange / bin))
	nx := int(c.Width/bin) + 1
	ny := int(c.Height/bin) + 1
	binOf := func(p radio.Position) (int, int) {
		bx := min(int(p.X/bin), nx-1)
		by := min(int(p.Y/bin), ny-1)
		return bx, by
	}
	// Counting-sort the nodes into bin CSR.
	binOff := make([]int32, nx*ny+1)
	for i := range global {
		bx, by := binOf(global[i].pos)
		binOff[by*nx+bx+1]++
	}
	for b := 0; b < nx*ny; b++ {
		binOff[b+1] += binOff[b]
	}
	binNodes := make([]int32, n)
	next := make([]int32, nx*ny)
	for i := range global {
		bx, by := binOf(global[i].pos)
		b := by*nx + bx
		binNodes[binOff[b]+next[b]] = int32(i)
		next[b]++
	}

	type link struct {
		src frame.NodeID
		dst BoundaryTarget
	}
	perCell := make([][]link, cells)
	for i := range global {
		u := &global[i]
		bx, by := binOf(u.pos)
		for dy := -reach; dy <= reach; dy++ {
			y := by + dy
			if y < 0 || y >= ny {
				continue
			}
			for dx := -reach; dx <= reach; dx++ {
				x := bx + dx
				if x < 0 || x >= nx {
					continue
				}
				b := y*nx + x
				for _, j := range binNodes[binOff[b]:binOff[b+1]] {
					v := &global[j]
					if v.cell == u.cell {
						continue
					}
					if u.pos.Distance(v.pos) > c.SenseRange {
						continue
					}
					perCell[u.cell] = append(perCell[u.cell], link{
						src: frame.NodeID(u.local),
						dst: BoundaryTarget{Cell: v.cell, Node: frame.NodeID(v.local)},
					})
				}
			}
		}
	}

	c.edgeOff = make([][]int32, cells)
	c.edgeDst = make([][]BoundaryTarget, cells)
	for cell := 0; cell < cells; cell++ {
		links := perCell[cell]
		sort.Slice(links, func(a, b int) bool {
			if links[a].src != links[b].src {
				return links[a].src < links[b].src
			}
			if links[a].dst.Cell != links[b].dst.Cell {
				return links[a].dst.Cell < links[b].dst.Cell
			}
			return links[a].dst.Node < links[b].dst.Node
		})
		nLocal := c.Cells[cell].NumNodes()
		off := make([]int32, nLocal+1)
		dst := make([]BoundaryTarget, len(links))
		for i, l := range links {
			off[l.src+1]++
			dst[i] = l.dst
		}
		for s := 0; s < nLocal; s++ {
			off[s+1] += off[s]
		}
		c.edgeOff[cell] = off
		c.edgeDst[cell] = dst
		c.boundary += len(links)
	}

	// Derive the cell adjacency from the links themselves rather than grid
	// geometry: a wide sense range can reach past the 8 surrounding grid
	// cells, and the scheduler must see every cell it actually exchanges
	// interference with.
	c.neighbors = make([][]int32, cells)
	seen := make([]bool, cells)
	for cell := 0; cell < cells; cell++ {
		for i := range seen {
			seen[i] = false
		}
		var ns []int32
		for _, dst := range c.edgeDst[cell] {
			if !seen[dst.Cell] {
				seen[dst.Cell] = true
				ns = append(ns, dst.Cell)
			}
		}
		sort.Slice(ns, func(a, b int) bool { return ns[a] < ns[b] })
		c.neighbors[cell] = ns
	}
}
