package topo

import (
	"testing"
	"time"

	"qma/internal/frame"
	"qma/internal/radio"
)

func TestHiddenNodeStructure(t *testing.T) {
	n := HiddenNode()
	if n.NumNodes() != 3 || n.Sink != 1 {
		t.Fatalf("nodes=%d sink=%d", n.NumNodes(), n.Sink)
	}
	top := n.Topology
	if !top.CanDecode(0, 1) || !top.CanDecode(2, 1) {
		t.Error("A and C must reach B")
	}
	if top.CanDecode(0, 2) || top.CanSense(0, 2) {
		t.Error("A and C must be hidden from each other")
	}
	if hop, ok := n.NextHop(0, 1); !ok || hop != 1 {
		t.Errorf("NextHop(A→B) = %d/%v", hop, ok)
	}
	if _, ok := n.NextHop(1, 1); ok {
		t.Error("sink must not route to itself")
	}
	if n.Label(0) != "A" || n.Label(1) != "B" || n.Label(2) != "C" {
		t.Error("labels wrong")
	}
}

func TestTree10Structure(t *testing.T) {
	n := Tree10()
	if n.NumNodes() != 10 {
		t.Fatalf("nodes = %d, want 10", n.NumNodes())
	}
	// Depth 4 as in the paper (root has depth 0 here, leaves reach 3 hops).
	maxDepth := 0
	for i := 0; i < 10; i++ {
		d := n.Depth(frame.NodeID(i))
		if d < 0 {
			t.Fatalf("node %d detached", i)
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != 3 {
		t.Errorf("max hop count = %d, want 3 (depth-4 tree)", maxDepth)
	}
	// Every node routes to the sink through its parent chain.
	for i := 1; i < 10; i++ {
		hop, ok := n.NextHop(frame.NodeID(i), n.Sink)
		if !ok || hop != n.Parent[i] {
			t.Errorf("NextHop(%d) = %d/%v, want parent %d", i, hop, ok, n.Parent[i])
		}
	}
	// Siblings decode each other, cousins do not: 41(3) and 59(5) sit in
	// different subtrees.
	if !n.Topology.CanDecode(3, 4) {
		t.Error("siblings 41/36 must decode each other")
	}
	if n.Topology.CanDecode(3, 5) {
		t.Error("41 and 59 must be hidden from each other")
	}
}

func TestStar17AllPairsConnected(t *testing.T) {
	n := Star17(StarConfig{})
	if n.NumNodes() != 17 || n.Sink != 0 {
		t.Fatalf("nodes=%d sink=%d", n.NumNodes(), n.Sink)
	}
	// §6.2.1: "all nodes can hear each other" with the star's 3 dBm/-90 dBm
	// budget.
	for i := 0; i < 17; i++ {
		for j := 0; j < 17; j++ {
			if i == j {
				continue
			}
			if !n.Topology.CanDecode(frame.NodeID(i), frame.NodeID(j)) {
				t.Fatalf("star nodes %d and %d cannot hear each other", i, j)
			}
		}
	}
	for i := 1; i < 17; i++ {
		if n.Parent[i] != 0 {
			t.Errorf("leaf %d parent = %d, want hub", i, n.Parent[i])
		}
	}
}

func TestRingsNodeCounts(t *testing.T) {
	want := map[int]int{1: 7, 2: 19, 3: 43, 4: 91}
	for rings, count := range want {
		n := Rings(rings)
		if n.NumNodes() != count {
			t.Errorf("Rings(%d) = %d nodes, want %d", rings, n.NumNodes(), count)
		}
		// Every node must have a route to the center.
		for i := 1; i < n.NumNodes(); i++ {
			if n.Depth(frame.NodeID(i)) < 0 {
				t.Errorf("Rings(%d): node %d detached", rings, i)
			}
		}
	}
	for _, count := range RingNodeCounts() {
		if RingsForCount(count).NumNodes() != count {
			t.Errorf("RingsForCount(%d) mismatch", count)
		}
	}
}

func TestRingsSpatialReuse(t *testing.T) {
	n := Rings(4)
	// Hidden terminals must exist (the §6.3 premise): some pair of nodes in
	// adjacent rings cannot sense each other.
	hidden := 0
	for i := 0; i < n.NumNodes(); i++ {
		for j := i + 1; j < n.NumNodes(); j++ {
			if !n.Topology.CanDecode(frame.NodeID(i), frame.NodeID(j)) {
				hidden++
			}
		}
	}
	if hidden == 0 {
		t.Error("91-node topology is a clique; expected spatial reuse")
	}
	// And the routing tree depth equals the ring index.
	deepest := 0
	for i := 0; i < n.NumNodes(); i++ {
		if d := n.Depth(frame.NodeID(i)); d > deepest {
			deepest = d
		}
	}
	if deepest != 4 {
		t.Errorf("deepest route = %d hops, want 4", deepest)
	}
}

func TestRingsPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rings(0) should panic")
		}
	}()
	Rings(0)
}

func TestRingsForCountPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RingsForCount(10) should panic")
		}
	}()
	RingsForCount(10)
}

func TestFactoryHallStructure(t *testing.T) {
	for _, nodes := range []int{10, 100, 1000} {
		n := FactoryHall(FactoryConfig{Nodes: nodes, Seed: 7})
		if n.NumNodes() != nodes || n.Sink != 0 {
			t.Fatalf("nodes=%d sink=%d", n.NumNodes(), n.Sink)
		}
		if len(n.Positions) != nodes {
			t.Fatalf("positions missing")
		}
		routed := 0
		for i := 1; i < nodes; i++ {
			d := n.Depth(frame.NodeID(i))
			if n.Parent[i] >= 0 {
				if d < 0 {
					t.Fatalf("FactoryHall(%d): node %d has a parent but no route", nodes, i)
				}
				// The parent must decode the child's transmissions and sit
				// one hop closer to the sink (BFS min-hop property).
				if !n.Topology.CanDecode(frame.NodeID(i), n.Parent[i]) {
					t.Fatalf("FactoryHall(%d): node %d cannot reach its parent", nodes, i)
				}
				if pd := n.Depth(n.Parent[i]); pd != d-1 {
					t.Fatalf("FactoryHall(%d): node %d depth %d but parent depth %d", nodes, i, d, pd)
				}
				routed++
			} else if d >= 0 {
				t.Fatalf("FactoryHall(%d): node %d routed despite Parent=-1", nodes, i)
			}
		}
		// At the default density the vast majority of the hall must route.
		if routed < (nodes-1)*8/10 {
			t.Errorf("FactoryHall(%d): only %d/%d nodes routed", nodes, routed, nodes-1)
		}
	}
}

func TestFactoryHallDeterministic(t *testing.T) {
	a := FactoryHall(FactoryConfig{Nodes: 200, Seed: 11})
	b := FactoryHall(FactoryConfig{Nodes: 200, Seed: 11})
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] || a.Parent[i] != b.Parent[i] {
			t.Fatalf("same seed produced different halls at node %d", i)
		}
	}
	c := FactoryHall(FactoryConfig{Nodes: 200, Seed: 12})
	same := true
	for i := range a.Positions {
		if a.Positions[i] != c.Positions[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical halls")
	}
}

func TestFactoryHallDensityKnob(t *testing.T) {
	meanDegree := func(n *Network) float64 {
		pt := n.Topology.(*radio.PathLossTopology)
		total := 0
		var cand []frame.NodeID
		for i := 0; i < n.NumNodes(); i++ {
			cand = pt.AppendLinks(frame.NodeID(i), cand[:0])
			for _, j := range cand {
				if pt.CanDecode(frame.NodeID(i), j) {
					total++
				}
			}
		}
		return float64(total) / float64(n.NumNodes())
	}
	sparse := meanDegree(FactoryHall(FactoryConfig{Nodes: 500, Degree: 6, Seed: 3}))
	dense := meanDegree(FactoryHall(FactoryConfig{Nodes: 500, Degree: 24, Seed: 3}))
	if sparse <= 2 || dense <= sparse*2 {
		t.Errorf("degree knob ineffective: sparse %.1f, dense %.1f", sparse, dense)
	}
}

func TestFactoryHallPanicsOnTooFewNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FactoryHall(1 node) should panic")
		}
	}()
	FactoryHall(FactoryConfig{Nodes: 1})
}

func TestFactoryHall10kBuildsFast(t *testing.T) {
	// Acceptance pin: a 10,000-node path-loss hall (positions, spatial
	// index, BFS routing tree) must build in well under 2 s. The O(N + E)
	// construction takes ~10 ms, so the bound holds with huge margin even
	// on slow shared CI hardware.
	start := time.Now()
	n := FactoryHall(FactoryConfig{Nodes: 10000, Seed: 1})
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("10k-node hall took %v to build, want < 2s", d)
	}
	if n.NumNodes() != 10000 {
		t.Fatalf("nodes = %d", n.NumNodes())
	}
}
