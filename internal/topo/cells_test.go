package topo

import (
	"reflect"
	"testing"

	"qma/internal/frame"
	"qma/internal/radio"
)

func TestCityPartition(t *testing.T) {
	city := NewCity(CityConfig{Nodes: 400, CellsX: 2, CellsY: 2, Seed: 42})
	if city.NumCells() != 4 {
		t.Fatalf("got %d cells, want 4", city.NumCells())
	}
	total := 0
	for cell, net := range city.Cells {
		n := net.NumNodes()
		total += n
		if n < 1 {
			t.Fatalf("cell %d is empty", cell)
		}
		if net.Sink != 0 {
			t.Fatalf("cell %d sink = %d, want 0", cell, net.Sink)
		}
		// The sink sits at the cell center.
		cx, cy := cell%2, cell/2
		center := net.Positions[0]
		if center.X != (float64(cx)+0.5)*city.CellW || center.Y != (float64(cy)+0.5)*city.CellH {
			t.Fatalf("cell %d sink at %+v, want cell center", cell, center)
		}
		// Every device position falls inside the cell's rectangle.
		for i, p := range net.Positions {
			if p.X < float64(cx)*city.CellW-1e-9 || p.X > float64(cx+1)*city.CellW+1e-9 ||
				p.Y < float64(cy)*city.CellH-1e-9 || p.Y > float64(cy+1)*city.CellH+1e-9 {
				t.Fatalf("cell %d node %d at %+v escapes its cell", cell, i, p)
			}
		}
		// Routing stays confined to the cell and reaches most nodes.
		routed := 0
		for i := 1; i < n; i++ {
			if net.Depth(frame.NodeID(i)) >= 0 {
				routed++
			}
		}
		if routed < (n-1)/2 {
			t.Errorf("cell %d routes only %d of %d devices", cell, routed, n-1)
		}
	}
	if total != 400 {
		t.Fatalf("cells hold %d nodes in total, want 400", total)
	}
}

func TestCityDeterministic(t *testing.T) {
	a := NewCity(CityConfig{Nodes: 300, CellsX: 3, CellsY: 1, Seed: 7})
	b := NewCity(CityConfig{Nodes: 300, CellsX: 3, CellsY: 1, Seed: 7})
	if !reflect.DeepEqual(a.Cells[1].Positions, b.Cells[1].Positions) {
		t.Fatal("same seed produced different placements")
	}
	if a.BoundaryLinks() != b.BoundaryLinks() {
		t.Fatal("same seed produced different boundary links")
	}
	c := NewCity(CityConfig{Nodes: 300, CellsX: 3, CellsY: 1, Seed: 8})
	if reflect.DeepEqual(a.Cells[1].Positions, c.Cells[1].Positions) {
		t.Fatal("different seeds produced identical placements")
	}
}

func TestCitySingleCellHasNoBoundary(t *testing.T) {
	city := NewCity(CityConfig{Nodes: 200, CellsX: 1, CellsY: 1, Seed: 3})
	if city.BoundaryLinks() != 0 {
		t.Fatalf("1-cell city has %d boundary links, want 0", city.BoundaryLinks())
	}
	if got := city.EdgeNodes(0); got != 0 {
		t.Fatalf("1-cell city has %d edge nodes, want 0", got)
	}
}

// TestCityBoundaryMatchesBruteForce cross-checks the grid-swept boundary
// enumeration against a quadratic all-pairs reference over several seeds and
// grid shapes: a directed link src→dst must exist iff the nodes live in
// different cells within SenseRange, and the link set must be symmetric.
func TestCityBoundaryMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		nodes, cx, cy int
		seed          uint64
	}{
		{240, 2, 2, 1},
		{300, 3, 2, 2},
		{150, 4, 1, 3},
	} {
		city := NewCity(CityConfig{Nodes: tc.nodes, CellsX: tc.cx, CellsY: tc.cy, Seed: tc.seed})
		type key struct {
			sc int32
			sn frame.NodeID
			dc int32
			dn frame.NodeID
		}
		want := map[key]bool{}
		for ac, an := range city.Cells {
			for bc, bn := range city.Cells {
				if ac == bc {
					continue
				}
				for i, pi := range an.Positions {
					for j, pj := range bn.Positions {
						if pi.Distance(pj) <= city.SenseRange {
							want[key{int32(ac), frame.NodeID(i), int32(bc), frame.NodeID(j)}] = true
						}
					}
				}
			}
		}
		got := map[key]bool{}
		links := 0
		for cell, net := range city.Cells {
			for s := 0; s < net.NumNodes(); s++ {
				for _, tgt := range city.EdgeTargets(cell, frame.NodeID(s)) {
					got[key{int32(cell), frame.NodeID(s), tgt.Cell, tgt.Node}] = true
					links++
				}
			}
		}
		if links != city.BoundaryLinks() {
			t.Errorf("%+v: CSR lists %d links, BoundaryLinks reports %d", tc, links, city.BoundaryLinks())
		}
		if len(got) != links {
			t.Errorf("%+v: %d duplicate boundary links", tc, links-len(got))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%+v: grid enumeration (%d links) differs from brute force (%d links)", tc, len(got), len(want))
		}
		for k := range got {
			if !got[key{k.dc, k.dn, k.sc, k.sn}] {
				t.Errorf("%+v: link %+v has no reverse", tc, k)
			}
		}
		if city.BoundaryLinks() == 0 {
			t.Errorf("%+v: expected some boundary links in a multi-cell city", tc)
		}
	}
}

// TestCityNeighborCells pins the cell adjacency against the link CSR it is
// derived from: a cell's neighbor set is exactly the distinct cells in its
// boundary links, sorted ascending, and the relation is symmetric.
func TestCityNeighborCells(t *testing.T) {
	city := NewCity(CityConfig{Nodes: 400, CellsX: 3, CellsY: 2, Seed: 11})
	for cell, net := range city.Cells {
		want := map[int32]bool{}
		for s := 0; s < net.NumNodes(); s++ {
			for _, tgt := range city.EdgeTargets(cell, frame.NodeID(s)) {
				want[tgt.Cell] = true
			}
		}
		ns := city.NeighborCells(cell)
		if len(ns) != len(want) {
			t.Fatalf("cell %d: NeighborCells lists %d cells, links reach %d", cell, len(ns), len(want))
		}
		for i, n := range ns {
			if !want[n] {
				t.Errorf("cell %d: neighbor %d has no boundary link", cell, n)
			}
			if i > 0 && ns[i-1] >= n {
				t.Errorf("cell %d: neighbors not strictly ascending: %v", cell, ns)
			}
			rev := city.NeighborCells(int(n))
			found := false
			for _, m := range rev {
				if m == int32(cell) {
					found = true
				}
			}
			if !found {
				t.Errorf("cell %d lists %d as neighbor but not vice versa", cell, n)
			}
		}
	}
	solo := NewCity(CityConfig{Nodes: 100, CellsX: 1, CellsY: 1, Seed: 11})
	if len(solo.NeighborCells(0)) != 0 {
		t.Fatal("1-cell city has neighbors")
	}
}

// TestCityHotspot pins the imbalanced-placement knob: a large hotspot
// fraction concentrates devices in the chosen cell, and fraction 0 leaves
// the city byte-identical to a config without the fields set.
func TestCityHotspot(t *testing.T) {
	base := NewCity(CityConfig{Nodes: 400, CellsX: 2, CellsY: 2, Seed: 9})
	zero := NewCity(CityConfig{Nodes: 400, CellsX: 2, CellsY: 2, Seed: 9, HotspotCell: 3})
	for cell := range base.Cells {
		if !reflect.DeepEqual(base.Cells[cell].Positions, zero.Cells[cell].Positions) {
			t.Fatalf("HotspotFraction 0 changed cell %d placement", cell)
		}
	}
	hot := NewCity(CityConfig{Nodes: 400, CellsX: 2, CellsY: 2, Seed: 9, HotspotCell: 3, HotspotFraction: 0.7})
	hotN := hot.Cells[3].NumNodes()
	for cell, net := range hot.Cells {
		if cell != 3 && net.NumNodes()*2 > hotN {
			t.Errorf("hotspot cell holds %d nodes but cell %d holds %d — not imbalanced", hotN, cell, net.NumNodes())
		}
	}
	// Hotspot devices land inside the hotspot cell's rectangle, so the
	// per-cell escape check in TestCityPartition still holds; re-assert the
	// count here: ≥70% of 396 devices plus whatever the uniform 30% drops in.
	if hotN < 396*7/10 {
		t.Errorf("hotspot cell holds %d of 396 devices, want ≥ the 70%% hotspot draw", hotN)
	}
}

func TestCityConfigValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("too few nodes", func() { NewCity(CityConfig{Nodes: 5, CellsX: 3, CellsY: 1}) })
	mustPanic("hotspot fraction", func() {
		NewCity(CityConfig{Nodes: 100, CellsX: 2, CellsY: 1, HotspotFraction: 1})
	})
	mustPanic("hotspot cell", func() {
		NewCity(CityConfig{Nodes: 100, CellsX: 2, CellsY: 1, HotspotCell: 2, HotspotFraction: 0.5})
	})
	mustPanic("shadowing", func() {
		cfg := CityConfig{Nodes: 100, CellsX: 2, CellsY: 1}
		cfg.PathLoss = radio.DefaultPathLossConfig()
		cfg.PathLoss.ShadowSigmaDB = 2
		NewCity(cfg)
	})
}
