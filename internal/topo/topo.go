// Package topo builds the evaluation topologies of the paper: the 3-node
// hidden-node chain (Fig. 6), the 10-node testbed tree (Fig. 16), the
// 17-node testbed star (Fig. 17) and the concentric data-collection rings
// with 7/19/43/91 nodes (Fig. 20), together with the static routing trees
// the multi-hop scenarios forward along. Beyond the paper, FactoryHall
// generates random-uniform industrial deployments with configurable node
// count and density for large-scale (10k-node) experiments.
package topo

import (
	"fmt"
	"math"

	"qma/internal/frame"
	"qma/internal/radio"
	"qma/internal/sim"
)

// Network bundles a topology with its routing tree and reporting metadata.
type Network struct {
	// Name identifies the scenario in reports.
	Name string
	// Topology answers connectivity questions for the radio medium.
	Topology radio.Topology
	// Sink is the data-collection root.
	Sink frame.NodeID
	// Parent[i] is node i's next hop towards the sink (-1 for the sink
	// itself and for detached nodes).
	Parent []frame.NodeID
	// Labels[i] is the paper's node id for node i ("" when the paper uses
	// none); used to print per-node figures with the original x axes.
	Labels []string
	// Positions are planar coordinates when the topology is geometric (nil
	// for explicit graphs).
	Positions []radio.Position
}

// NumNodes reports the node count.
func (n *Network) NumNodes() int { return n.Topology.NumNodes() }

// NextHop implements mac.Router by walking one step up the routing tree.
// Routing is ignored unless the destination is the configured sink (the
// paper's scenarios are pure data collection).
func (n *Network) NextHop(from, sink frame.NodeID) (frame.NodeID, bool) {
	if from == sink {
		return 0, false
	}
	if sink != n.Sink {
		return 0, false
	}
	p := n.Parent[from]
	if p < 0 {
		return 0, false
	}
	return p, true
}

// Depth reports the hop count from id to the sink, or -1 when detached.
func (n *Network) Depth(id frame.NodeID) int {
	d := 0
	for id != n.Sink {
		p := n.Parent[id]
		if p < 0 || d > n.NumNodes() {
			return -1
		}
		id = p
		d++
	}
	return d
}

// Label reports the paper's name for a node, falling back to its dense id.
func (n *Network) Label(id frame.NodeID) string {
	if int(id) < len(n.Labels) && n.Labels[id] != "" {
		return n.Labels[id]
	}
	return fmt.Sprintf("%d", id)
}

// HiddenNode is the Fig. 6 scenario: nodes A (0) and C (2) both reach the
// sink B (1) but not each other, so a CCA at A or C fails only while B is
// transmitting an ACK.
func HiddenNode() *Network {
	g := radio.NewGraphTopology(3)
	g.AddLink(0, 1)
	g.AddLink(1, 2)
	return &Network{
		Name:     "hidden-node",
		Topology: g,
		Sink:     1,
		Parent:   []frame.NodeID{1, -1, 1},
		Labels:   []string{"A", "B", "C"},
	}
}

// Tree10 is the Fig. 16 testbed tree: 10 nodes, depth 4, rooted at the
// paper's node 28. The paper specifies the logical routing tree and that
// parents, children and siblings interfere; the exact edge set below is our
// reconstruction (documented in DESIGN.md): each node decodes its parent,
// its children and its siblings, which leaves e.g. 41 hidden from 15 while
// both can reach 18 — "the tree topology exhibits several hidden node
// problems" (§6.2.1).
func Tree10() *Network {
	labels := []string{"28", "18", "15", "41", "36", "59", "19", "2", "64", "63"}
	// parent[i] indexes into the dense ids above.
	parent := []frame.NodeID{-1, 0, 0, 1, 1, 2, 4, 4, 3, 5}
	g := radio.NewGraphTopology(len(labels))
	children := make(map[frame.NodeID][]frame.NodeID)
	for child, p := range parent {
		if p < 0 {
			continue
		}
		g.AddLink(frame.NodeID(child), p)
		children[p] = append(children[p], frame.NodeID(child))
	}
	for _, sibs := range children {
		for i := 0; i < len(sibs); i++ {
			for j := i + 1; j < len(sibs); j++ {
				g.AddLink(sibs[i], sibs[j])
			}
		}
	}
	return &Network{
		Name:     "tree-10",
		Topology: g,
		Sink:     0,
		Parent:   parent,
		Labels:   labels,
	}
}

// StarConfig parameterizes Star17.
type StarConfig struct {
	// Radius is the leaf distance from the hub in meters.
	Radius float64
	// PathLoss configures the channel; the zero value selects the paper's
	// star settings (3 dBm TX power, −90 dBm sensitivity, §6.2).
	PathLoss radio.PathLossConfig
}

// Star17 is the Fig. 17 testbed star: 16 leaves around the paper's node 34.
// It is built on the log-distance path-loss channel (our FIT IoT-LAB
// substitute): with the paper's 3 dBm / −90 dBm link budget every node hears
// every other, so CSMA/CA's CCA works and the PDR gap to QMA narrows
// (§6.2.1).
func Star17(cfg StarConfig) *Network {
	if cfg.Radius <= 0 {
		cfg.Radius = 3
	}
	if cfg.PathLoss == (radio.PathLossConfig{}) {
		cfg.PathLoss = radio.DefaultPathLossConfig()
		cfg.PathLoss.TxPowerDBm = 3
		cfg.PathLoss.SensitivityDBm = -90
	}
	labels := []string{
		"34", "2", "4", "6", "8", "10", "20", "24", "30",
		"38", "48", "52", "54", "56", "58", "60", "62",
	}
	n := len(labels)
	pos := make([]radio.Position, n)
	pos[0] = radio.Position{X: 0, Y: 0}
	for i := 1; i < n; i++ {
		angle := 2 * math.Pi * float64(i-1) / float64(n-1)
		pos[i] = radio.Position{X: cfg.Radius * math.Cos(angle), Y: cfg.Radius * math.Sin(angle)}
	}
	parent := make([]frame.NodeID, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = 0
	}
	return &Network{
		Name:      "star-17",
		Topology:  radio.NewPathLossTopology(cfg.PathLoss, pos),
		Sink:      0,
		Parent:    parent,
		Labels:    labels,
		Positions: pos,
	}
}

// Rings is the Fig. 20 concentric data-collection topology: a center sink
// surrounded by `rings` concentric rings whose populations double outward
// (ring r carries 6·2^(r−1) nodes), giving the paper's 7, 19, 43 and 91
// nodes for 1–4 rings. Connectivity is a unit-disk graph
// with radius just above the ring spacing, so every node reaches the
// adjacent rings and its ring neighbours but nodes further apart are hidden
// from each other — the spatial-reuse regime of §6.3 ("they are placed far
// enough from each other"). Each node routes to its nearest neighbour in the
// next ring inward.
func Rings(rings int) *Network {
	if rings < 1 {
		panic(fmt.Sprintf("topo: rings=%d must be >= 1", rings))
	}
	const spacing = 10.0 // meters between rings
	var pos []radio.Position
	ringOf := []int{0}
	pos = append(pos, radio.Position{})
	for r := 1; r <= rings; r++ {
		count := 6 << uint(r-1)
		for i := 0; i < count; i++ {
			angle := 2*math.Pi*float64(i)/float64(count) + float64(r)*0.2
			pos = append(pos, radio.Position{
				X: spacing * float64(r) * math.Cos(angle),
				Y: spacing * float64(r) * math.Sin(angle),
			})
			ringOf = append(ringOf, r)
		}
	}
	n := len(pos)
	g := radio.NewGraphTopology(n)
	radius := spacing * 1.35
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pos[i].Distance(pos[j]) <= radius {
				g.AddLink(frame.NodeID(i), frame.NodeID(j))
			}
		}
	}
	parent := make([]frame.NodeID, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		best := frame.NodeID(-1)
		bestDist := math.Inf(1)
		for j := 0; j < n; j++ {
			if ringOf[j] != ringOf[i]-1 {
				continue
			}
			if !g.CanDecode(frame.NodeID(i), frame.NodeID(j)) {
				continue
			}
			if d := pos[i].Distance(pos[j]); d < bestDist {
				best, bestDist = frame.NodeID(j), d
			}
		}
		if best < 0 {
			// Fall back to the nearest decodable node closer to the center.
			for j := 0; j < n; j++ {
				if ringOf[j] >= ringOf[i] || !g.CanDecode(frame.NodeID(i), frame.NodeID(j)) {
					continue
				}
				if d := pos[i].Distance(pos[j]); d < bestDist {
					best, bestDist = frame.NodeID(j), d
				}
			}
		}
		parent[i] = best
	}
	return &Network{
		Name:      fmt.Sprintf("rings-%d", rings),
		Topology:  g,
		Sink:      0,
		Parent:    parent,
		Positions: pos,
	}
}

// FactoryConfig parameterizes FactoryHall.
type FactoryConfig struct {
	// Nodes is the total node count (including the sink); required.
	Nodes int
	// Degree is the target mean number of decode-neighbours per node; the
	// hall is sized so that a uniform deployment hits it on average
	// (default 10). Denser halls contend harder, sparser halls route longer.
	Degree float64
	// Side overrides the hall edge length in meters (0 = derive from Degree).
	Side float64
	// PathLoss configures the channel (zero value = DefaultPathLossConfig).
	PathLoss radio.PathLossConfig
	// Seed draws the node placement; same seed, same hall.
	Seed uint64
}

// FactoryHall is the large-scale scenario family: Nodes devices placed
// uniformly at random over a square industrial hall, a log-distance
// path-loss channel, the sink in the hall center, and a min-hop routing
// tree built by BFS from the sink. Nodes that cannot reach the sink stay
// detached (Parent −1) — at very low densities the deployment may
// partition, exactly as a real hall would.
//
// The construction is O(N + E) end to end (spatial-grid neighbor queries, no
// N×N state), so 10,000-node halls build in well under a second.
func FactoryHall(cfg FactoryConfig) *Network {
	if cfg.Nodes < 2 {
		panic(fmt.Sprintf("topo: FactoryHall needs at least 2 nodes, got %d", cfg.Nodes))
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 10
	}
	if cfg.PathLoss == (radio.PathLossConfig{}) {
		cfg.PathLoss = radio.DefaultPathLossConfig()
	}
	side := cfg.Side
	if side <= 0 {
		// Decode range R from the link budget; area = N·πR²/Degree gives an
		// expected decode degree of ~Degree away from the hall edges.
		budget := cfg.PathLoss.TxPowerDBm - cfg.PathLoss.ReferenceLossDB - cfg.PathLoss.SensitivityDBm
		r := math.Pow(10, budget/(10*cfg.PathLoss.PathLossExponent))
		side = r * math.Sqrt(math.Pi*float64(cfg.Nodes)/cfg.Degree)
	}
	rng := sim.NewRandStream(cfg.Seed, 7001)
	pos := make([]radio.Position, cfg.Nodes)
	pos[0] = radio.Position{X: side / 2, Y: side / 2} // sink in the center
	for i := 1; i < cfg.Nodes; i++ {
		pos[i] = radio.Position{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	pt := radio.NewPathLossTopology(cfg.PathLoss, pos)

	parent := bfsTree(pt, cfg.Nodes)
	return &Network{
		Name:      fmt.Sprintf("factory-%d", cfg.Nodes),
		Topology:  pt,
		Sink:      0,
		Parent:    parent,
		Positions: pos,
	}
}

// bfsTree builds a min-hop routing tree by BFS from node 0 over the decode
// links, using the grid-backed neighbor enumeration (O(N + E) total). A
// child's frames must be decodable at its parent, so the edge direction is
// CanDecode(child, parent). Frontier and candidate order are deterministic
// (ascending ids), so the same positions always yield the same tree; nodes
// outside the sink's component stay detached (Parent −1).
func bfsTree(pt *radio.PathLossTopology, n int) []frame.NodeID {
	parent := make([]frame.NodeID, n)
	for i := range parent {
		parent[i] = -1
	}
	visited := make([]bool, n)
	visited[0] = true
	queue := make([]frame.NodeID, 0, n)
	queue = append(queue, 0)
	var cand []frame.NodeID
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		cand = pt.AppendLinks(p, cand[:0])
		for _, c := range cand {
			if visited[c] || !pt.CanDecode(c, p) {
				continue
			}
			visited[c] = true
			parent[c] = p
			queue = append(queue, c)
		}
	}
	return parent
}

// RingNodeCounts reports the node counts the paper evaluates (Fig. 21/22).
func RingNodeCounts() []int { return []int{7, 19, 43, 91} }

// RingsForCount returns the ring topology with exactly count nodes,
// panicking for counts the construction cannot produce.
func RingsForCount(count int) *Network {
	for r := 1; r <= 8; r++ {
		if 1+6*((1<<uint(r))-1) == count {
			return Rings(r)
		}
	}
	panic(fmt.Sprintf("topo: no concentric topology with %d nodes", count))
}
