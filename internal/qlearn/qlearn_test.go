package qlearn

import (
	"math"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{Alpha: 0, Gamma: 0.9},
		{Alpha: 1.5, Gamma: 0.9},
		{Alpha: 0.5, Gamma: -0.1},
		{Alpha: 0.5, Gamma: 1.1},
		{Alpha: 0.5, Gamma: 0.9, Xi: -1},
		{Alpha: 0.5, Gamma: 0.9, Rule: RuleStandard + 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestNewFloatTablePanics(t *testing.T) {
	for _, dims := range [][2]int{{0, 3}, {3, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFloatTable(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewFloatTable(dims[0], dims[1], DefaultParams())
		}()
	}
}

func TestStandardRuleIsEq1(t *testing.T) {
	p := Params{Alpha: 0.5, Gamma: 0.9, InitQ: 0, Rule: RuleStandard}
	tb := NewFloatTable(2, 2, p)
	tb.SetQ(1, 0, 10) // max of next state
	stored, improved := tb.Update(0, 0, 4, 1)
	// (1-0.5)*0 + 0.5*(4 + 0.9*10) = 6.5
	if math.Abs(stored-6.5) > 1e-12 || !improved {
		t.Fatalf("Eq.1 update = (%v, %v), want (6.5, true)", stored, improved)
	}
	// A lower target moves the value down under Eq. 1.
	stored, improved = tb.Update(0, 0, -3, 1)
	// 0.5*6.5 + 0.5*(-3+9) = 6.25
	if math.Abs(stored-6.25) > 1e-12 || improved {
		t.Fatalf("Eq.1 second update = (%v, %v), want (6.25, false)", stored, improved)
	}
}

func TestOptimisticRuleIsEq2(t *testing.T) {
	p := Params{Alpha: 1, Gamma: 1, InitQ: -10, Rule: RuleOptimistic}
	tb := NewFloatTable(2, 2, p)
	stored, improved := tb.Update(0, 0, 4, 1)
	if stored != -6 || !improved { // 4 + max(-10,-10) = -6 > -10
		t.Fatalf("Eq.2 update = (%v, %v), want (-6, true)", stored, improved)
	}
	// Eq. 2 never decreases: a punishment leaves the value untouched.
	stored, improved = tb.Update(0, 0, -3, 1)
	if stored != -6 || improved {
		t.Fatalf("Eq.2 after punishment = (%v, %v), want (-6, false)", stored, improved)
	}
}

func TestQMARuleAppliesPenalty(t *testing.T) {
	p := Params{Alpha: 1, Gamma: 1, Xi: 2, InitQ: -10, Rule: RuleQMA}
	tb := NewFloatTable(2, 2, p)
	// Collision: newV = -3 + (-10) = -13 < -10, so the value decays by ξ
	// instead (the Fig. 5 "-12 not -13" case).
	stored, improved := tb.Update(0, 0, -3, 1)
	if stored != -12 || improved {
		t.Fatalf("penalty update = (%v, %v), want (-12, false)", stored, improved)
	}
	// A success resets the value to the newly computed one.
	stored, improved = tb.Update(0, 0, 4, 1)
	if stored != -6 || !improved {
		t.Fatalf("recovery update = (%v, %v), want (-6, true)", stored, improved)
	}
}

// TestStochasticEnvironmentEscape reproduces the §3.1.1 / Tbl. 3 argument:
// under the pure optimistic rule an agent that once saw a lucky success
// keeps Q high despite repeated collisions, while the ξ-penalty rule decays
// the value until another action wins.
func TestStochasticEnvironmentEscape(t *testing.T) {
	mk := func(rule UpdateRule) *Learner {
		p := Params{Alpha: 0.5, Gamma: 0, Xi: 2, InitQ: -10, Rule: rule}
		return NewLearner(NewFloatTable(1, 2, p), 0)
	}
	// Action 1 ("acquire") succeeds once, then collides forever. Action 0
	// ("wait") always pays 0.
	run := func(l *Learner) int {
		l.Observe(0, 1, 4, 0) // lucky acquisition
		l.Observe(0, 0, 0, 0)
		for i := 0; i < 20; i++ {
			l.Observe(0, 1, -3, 0) // collisions
			l.Observe(0, 0, 0, 0)  // waiting stays at 0 reward
		}
		return l.Policy(0)
	}
	if got := run(mk(RuleOptimistic)); got != 1 {
		t.Errorf("optimistic rule: policy = %d, want 1 (stuck on acquire, the Tbl. 3 failure)", got)
	}
	if got := run(mk(RuleQMA)); got != 0 {
		t.Errorf("QMA rule: policy = %d, want 0 (escaped via ξ penalty)", got)
	}
}

// TestDuplicateOptimaPolicyStability reproduces the Tbl. 2 argument: when
// two actions reach the same optimal value, the policy must stay with the
// action that reached it first.
func TestDuplicateOptimaPolicyStability(t *testing.T) {
	p := Params{Alpha: 1, Gamma: 0, Xi: 0, InitQ: -10, Rule: RuleQMA}
	l := NewLearner(NewFloatTable(1, 2, p), 0)
	l.Observe(0, 0, 10, 0)
	if l.Policy(0) != 0 {
		t.Fatalf("policy = %d after first optimum, want 0", l.Policy(0))
	}
	// The second action reaches the same value: NOT strictly greater, so the
	// policy must not switch.
	l.Observe(0, 1, 10, 0)
	if l.Policy(0) != 0 {
		t.Fatalf("policy switched to %d on a duplicate optimum", l.Policy(0))
	}
	// A strictly greater value does switch.
	l.Observe(0, 1, 11, 0)
	if l.Policy(0) != 1 {
		t.Fatalf("policy = %d after strict improvement, want 1", l.Policy(0))
	}
}

func TestLearnerReevalOnDecay(t *testing.T) {
	p := Params{Alpha: 1, Gamma: 0, Xi: 2, InitQ: -10, Rule: RuleQMA}
	l := NewLearner(NewFloatTable(1, 2, p), 0)
	l.Observe(0, 1, 4, 0) // π switches to 1 (Q=4)
	l.Observe(0, 0, 0, 0) // Q(0)=0
	if l.Policy(0) != 1 {
		t.Fatalf("setup: policy = %d, want 1", l.Policy(0))
	}
	// Repeated collisions decay Q(1) below Q(0)=0, but the gated rule keeps
	// the policy until some update strictly improves a value.
	for i := 0; i < 5; i++ {
		l.Observe(0, 1, -3, 0)
	}
	if q := l.Table().Q(0, 1); q >= 0 {
		t.Fatalf("Q(0,1) = %v, want < 0 after decay", q)
	}
	if l.Policy(0) != 1 {
		t.Fatalf("gated policy switched on decay alone (got %d)", l.Policy(0))
	}
	// With the ablation switch the policy follows the argmax on decay too.
	l.Reset(0)
	l.SetReevalOnDecay(true)
	l.Observe(0, 1, 4, 0)
	l.Observe(0, 0, 0, 0)
	for i := 0; i < 5; i++ {
		l.Observe(0, 1, -3, 0)
	}
	if l.Policy(0) != 0 {
		t.Fatalf("reeval-on-decay policy = %d, want 0", l.Policy(0))
	}
}

func TestCumulativePolicyQ(t *testing.T) {
	p := Params{Alpha: 1, Gamma: 0, Xi: 0, InitQ: -10, Rule: RuleQMA}
	l := NewLearner(NewFloatTable(3, 2, p), 0)
	if got := l.CumulativePolicyQ(); got != -30 {
		t.Fatalf("initial cumulative = %v, want -30", got)
	}
	l.Observe(1, 1, 5, 2) // π(1)=1, Q=5
	if got := l.CumulativePolicyQ(); got != -10+5-10 {
		t.Fatalf("cumulative = %v, want -15", got)
	}
}

func TestLearnerResetAndSnapshot(t *testing.T) {
	l := NewLearner(NewFloatTable(2, 3, DefaultParams()), 0)
	l.Observe(0, 2, 4, 1)
	if l.Updates() != 1 {
		t.Fatalf("updates = %d, want 1", l.Updates())
	}
	snap := l.PolicySnapshot()
	snap[0] = 99 // must be a copy
	if l.Policy(0) == 99 {
		t.Fatal("PolicySnapshot aliases internal state")
	}
	l.Reset(1)
	if l.Updates() != 0 || l.Policy(0) != 1 || l.Table().Q(0, 2) != -10 {
		t.Fatalf("Reset did not restore state: updates=%d π(0)=%d Q=%v",
			l.Updates(), l.Policy(0), l.Table().Q(0, 2))
	}
}

// Action indices for the Fig. 5 replay, ordered as in the figure's rows.
const (
	figB = 0
	figC = 1
	figS = 2
)

type figStep struct {
	subslot int
	action  int
	reward  float64
}

// TestFigure5Replay drives three learners with the exact action/reward
// sequences of the paper's worked example (Fig. 5: 3 nodes, 4 subslots,
// α=1, γ=1, ξ=2, Q₀=−10) and checks every Q-table snapshot the figure
// prints after each frame.
func TestFigure5Replay(t *testing.T) {
	p := Params{Alpha: 1, Gamma: 1, Xi: 2, InitQ: -10, Rule: RuleQMA}

	type nodeCase struct {
		name   string
		frames [][]figStep
		// want[frame][action][subslot], matching the figure's layout.
		want [3][3][4]float64
	}
	cases := []nodeCase{
		{
			name: "n1",
			frames: [][]figStep{
				{{0, figS, 4}, {1, figB, 0}, {2, figS, -3}, {3, figB, 2}},
				{{0, figS, 4}, {1, figB, 2}, {2, figB, 0}, {3, figB, 2}},
				{{0, figS, 4}, {1, figB, 0}, {2, figB, 0}, {3, figB, 2}},
			},
			want: [3][3][4]float64{
				{ // after frame 1
					{-10, -10, -10, -4}, // B
					{-10, -10, -10, -10},
					{-6, -10, -12, -10}, // S
				},
				{ // after frame 2
					{-10, -8, -4, -4},
					{-10, -10, -10, -10},
					{-6, -10, -12, -10},
				},
				{ // after frame 3
					{-10, -4, -4, -2},
					{-10, -10, -10, -10},
					{-4, -10, -12, -10},
				},
			},
		},
		{
			name: "n2",
			frames: [][]figStep{
				{{0, figC, 1}, {1, figB, 0}, {2, figS, -3}, {3, figS, 4}},
				{{0, figC, 1}, {1, figB, 2}, {2, figB, 0}, {3, figS, 4}},
				{{0, figC, 1}, {1, figC, -2}, {2, figB, 0}, {3, figS, 4}},
			},
			want: [3][3][4]float64{
				{
					{-10, -10, -10, -10},
					{-9, -10, -10, -10},
					{-10, -10, -12, -5},
				},
				{
					{-10, -8, -5, -10},
					{-9, -10, -10, -10},
					{-10, -10, -12, -5},
				},
				{
					{-10, -8, -5, -10},
					{-7, -7, -10, -10},
					{-10, -10, -12, -3},
				},
			},
		},
		{
			name: "n3", // in cautious startup during frame 1: QBackoff only
			frames: [][]figStep{
				{{0, figB, 2}, {1, figB, 0}, {2, figB, 0}, {3, figB, 2}},
				{{0, figB, 2}, {1, figC, 3}, {2, figB, 0}, {3, figB, 2}},
				{{0, figB, 2}, {1, figC, -2}, {2, figB, 0}, {3, figB, 2}},
			},
			want: [3][3][4]float64{
				{
					{-8, -10, -10, -6},
					{-10, -10, -10, -10},
					{-10, -10, -10, -10},
				},
				{
					{-8, -10, -6, -6},
					{-10, -7, -10, -10},
					{-10, -10, -10, -10},
				},
				{
					{-5, -10, -6, -3},
					{-10, -8, -10, -10},
					{-10, -10, -10, -10},
				},
			},
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tb := NewFloatTable(4, 3, p)
			l := NewLearner(tb, figB)
			for fi, steps := range c.frames {
				for _, st := range steps {
					next := (st.subslot + 1) % 4
					l.Observe(st.subslot, st.action, st.reward, next)
				}
				for a := 0; a < 3; a++ {
					for s := 0; s < 4; s++ {
						if got := tb.Q(s, a); got != c.want[fi][a][s] {
							t.Errorf("frame %d: Q(subslot=%d, action=%d) = %v, want %v",
								fi+1, s, a, got, c.want[fi][a][s])
						}
					}
				}
			}
		})
	}
}

// TestFigure5PolicyEvolution checks the policy consequences the example
// narrates: after frame 1, n1 and n2 switch to QBackoff in the collided
// subslot 2 (they never improved there) but adopt the successful
// transmission subslots.
func TestFigure5PolicyEvolution(t *testing.T) {
	p := Params{Alpha: 1, Gamma: 1, Xi: 2, InitQ: -10, Rule: RuleQMA}
	tb := NewFloatTable(4, 3, p)
	l := NewLearner(tb, figB)
	// n1 frame 1.
	for _, st := range []figStep{{0, figS, 4}, {1, figB, 0}, {2, figS, -3}, {3, figB, 2}} {
		l.Observe(st.subslot, st.action, st.reward, (st.subslot+1)%4)
	}
	if got := l.Policy(0); got != figS {
		t.Errorf("π(0) = %d, want QSend after successful transmission", got)
	}
	// Collided subslot: QSend never improved, policy remains QBackoff —
	// "Thus, n1 and n2 execute QBackoff in the next frame."
	if got := l.Policy(2); got != figB {
		t.Errorf("π(2) = %d, want QBackoff after collision", got)
	}
}
