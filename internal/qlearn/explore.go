package qlearn

import (
	"math"

	"qma/internal/sim"
)

// ExploreContext carries the local observations an exploration strategy may
// use when deciding whether to act randomly.
type ExploreContext struct {
	// Now is the current simulation time (used by time-decaying strategies).
	Now sim.Time
	// QueueLevel is the local transmit-queue occupancy.
	QueueLevel int
	// AvgNeighborQueue is the mean of the most recently overheard queue
	// levels of all neighbours (piggybacked in data frames, §4.2); zero when
	// nothing was overheard yet.
	AvgNeighborQueue float64
}

// Explorer decides the probability ρ of selecting a random action instead of
// the policy action (Algorithm 1).
type Explorer interface {
	// Rate returns ρ ∈ [0, 1] for the given local observations.
	Rate(ctx ExploreContext) float64
}

// DefaultRhoTable is the paper's Fig. 4 lookup: ρ indexed by
// (local queue level − mean neighbour queue level), for differences 0
// through 8. Differences below zero explore with ρ=0 ("give neighbouring
// nodes a chance to allocate additional slots"); differences above 8 clamp
// to the last entry (0.3, "it is not desirable to execute actions with full
// randomness").
func DefaultRhoTable() []float64 {
	return []float64{0, 0.0001, 0.001, 0.008, 0.02, 0.05, 0.1, 0.18, 0.3}
}

// ParameterBased is the paper's parameter-based exploration (§4.2): ρ is a
// table lookup on the queue-level difference, so congestion raises
// exploration and a drained queue stops it — without the one-shot decay
// problem of ε-greedy. The table lookup costs no arithmetic at run time,
// matching the paper's resource argument.
type ParameterBased struct {
	// Rho is the lookup table; index i applies to a queue-level difference
	// of i (floor of the fractional difference).
	Rho []float64
}

var _ Explorer = (*ParameterBased)(nil)

// NewParameterBased returns the strategy with the paper's Fig. 4 table.
func NewParameterBased() *ParameterBased {
	return &ParameterBased{Rho: DefaultRhoTable()}
}

// Rate implements Explorer.
func (p *ParameterBased) Rate(ctx ExploreContext) float64 {
	diff := float64(ctx.QueueLevel) - ctx.AvgNeighborQueue
	if diff <= 0 {
		return 0
	}
	idx := int(diff)
	if idx >= len(p.Rho) {
		idx = len(p.Rho) - 1
	}
	return p.Rho[idx]
}

// EpsilonGreedy is the classic exponentially decaying exploration the paper
// compares against (§4.2): ε starts at Eps0 and halves every HalfLife, never
// dropping below Min. Once decayed it cannot recover, which is exactly the
// weakness parameter-based exploration removes.
type EpsilonGreedy struct {
	// Eps0 is the initial exploration probability.
	Eps0 float64
	// HalfLife is the time over which ε halves; non-positive disables decay.
	HalfLife sim.Time
	// Min is the exploration floor.
	Min float64
}

var _ Explorer = (*EpsilonGreedy)(nil)

// Rate implements Explorer.
func (e *EpsilonGreedy) Rate(ctx ExploreContext) float64 {
	eps := e.Eps0
	if e.HalfLife > 0 {
		eps *= math.Exp2(-float64(ctx.Now) / float64(e.HalfLife))
	}
	if eps < e.Min {
		eps = e.Min
	}
	return eps
}

// Constant explores with a fixed probability, the second baseline of §4.2.
type Constant struct {
	// Eps is the fixed exploration probability.
	Eps float64
}

var _ Explorer = (*Constant)(nil)

// Rate implements Explorer.
func (c Constant) Rate(ExploreContext) float64 { return c.Eps }

// None never explores; useful for replaying fixed policies in tests.
type None struct{}

var _ Explorer = None{}

// Rate implements Explorer.
func (None) Rate(ExploreContext) float64 { return 0 }
