package qlearn

import (
	"math"
	"testing"
	"testing/quick"

	"qma/internal/sim"
)

func TestParameterBasedMatchesFigure4(t *testing.T) {
	e := NewParameterBased()
	// The x axis of Fig. 4 is (local queue level − neighbours' avg), the y
	// axis the listed ρ values.
	want := map[int]float64{
		0: 0, 1: 0.0001, 2: 0.001, 3: 0.008, 4: 0.02, 5: 0.05, 6: 0.1, 7: 0.18, 8: 0.3,
	}
	for diff, rho := range want {
		got := e.Rate(ExploreContext{QueueLevel: diff, AvgNeighborQueue: 0})
		if got != rho {
			t.Errorf("ρ(diff=%d) = %v, want %v", diff, got, rho)
		}
	}
}

func TestParameterBasedNegativeDiffIsZero(t *testing.T) {
	e := NewParameterBased()
	// "If the average queue level of all neighbouring nodes is larger than
	// the local queue level, ρ = 0" (§4.2).
	if got := e.Rate(ExploreContext{QueueLevel: 2, AvgNeighborQueue: 5}); got != 0 {
		t.Errorf("ρ(negative diff) = %v, want 0", got)
	}
	// Equal levels also stay at 0 (table entry for 0 is 0).
	if got := e.Rate(ExploreContext{QueueLevel: 4, AvgNeighborQueue: 4}); got != 0 {
		t.Errorf("ρ(zero diff) = %v, want 0", got)
	}
}

func TestParameterBasedClampsAboveTable(t *testing.T) {
	e := NewParameterBased()
	if got := e.Rate(ExploreContext{QueueLevel: 50, AvgNeighborQueue: 0}); got != 0.3 {
		t.Errorf("ρ(diff=50) = %v, want 0.3 (clamped)", got)
	}
}

func TestParameterBasedFractionalDiffFloors(t *testing.T) {
	e := NewParameterBased()
	// diff = 6 − 0.5 = 5.5 floors to index 5.
	if got := e.Rate(ExploreContext{QueueLevel: 6, AvgNeighborQueue: 0.5}); got != 0.05 {
		t.Errorf("ρ(diff=5.5) = %v, want 0.05", got)
	}
}

func TestParameterBasedMonotoneProperty(t *testing.T) {
	e := NewParameterBased()
	prop := func(q1, q2 uint8, avgRaw uint16) bool {
		avg := float64(avgRaw%800) / 100 // [0, 8)
		lo, hi := int(q1%9), int(q2%9)
		if lo > hi {
			lo, hi = hi, lo
		}
		rLo := e.Rate(ExploreContext{QueueLevel: lo, AvgNeighborQueue: avg})
		rHi := e.Rate(ExploreContext{QueueLevel: hi, AvgNeighborQueue: avg})
		// ρ is non-decreasing in the local queue level and always in [0,0.3].
		return rLo <= rHi && rLo >= 0 && rHi <= 0.3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEpsilonGreedyDecay(t *testing.T) {
	e := &EpsilonGreedy{Eps0: 0.4, HalfLife: 10 * sim.Second, Min: 0.01}
	if got := e.Rate(ExploreContext{Now: 0}); got != 0.4 {
		t.Errorf("ε(0) = %v, want 0.4", got)
	}
	if got := e.Rate(ExploreContext{Now: 10 * sim.Second}); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("ε(halflife) = %v, want 0.2", got)
	}
	// Decays to the floor, never below.
	if got := e.Rate(ExploreContext{Now: 1000 * sim.Second}); got != 0.01 {
		t.Errorf("ε(late) = %v, want floor 0.01", got)
	}
	// The weakness the paper criticizes: ε never increases again, regardless
	// of queue state.
	congested := e.Rate(ExploreContext{Now: 1000 * sim.Second, QueueLevel: 8})
	if congested != 0.01 {
		t.Errorf("ε ignores congestion by design, got %v", congested)
	}
}

func TestEpsilonGreedyNoDecayWhenHalfLifeZero(t *testing.T) {
	e := &EpsilonGreedy{Eps0: 0.25}
	if got := e.Rate(ExploreContext{Now: 500 * sim.Second}); got != 0.25 {
		t.Errorf("ε without half-life = %v, want constant 0.25", got)
	}
}

func TestConstantAndNone(t *testing.T) {
	if got := (Constant{Eps: 0.07}).Rate(ExploreContext{QueueLevel: 8}); got != 0.07 {
		t.Errorf("Constant.Rate = %v, want 0.07", got)
	}
	if got := (None{}).Rate(ExploreContext{QueueLevel: 8}); got != 0 {
		t.Errorf("None.Rate = %v, want 0", got)
	}
}
