package qlearn

import "fmt"

// Learner couples a value Table with the separate policy table π of Eq. 3.
// Lauer/Riedmiller show that storing only Q-values lets cooperating agents
// disagree when several action combinations are optimal (Tbl. 2); the policy
// table fixes this by switching actions only when a strictly greater Q-value
// is found, so all agents keep the policy that reached the optimum first.
type Learner struct {
	table  Table
	policy []int
	// reevalOnDecay also re-evaluates the policy when an update lowered a
	// value (e.g. through the ξ penalty). The paper's Algorithm 1 gates the
	// policy update on improvement only; this switch exists for the ablation
	// benchmarks.
	reevalOnDecay bool
	// updates counts Observe calls, for instrumentation.
	updates uint64
}

// NewLearner returns a learner over table whose policy is initialized to
// defaultAction in every state (QMA initializes π(mt) to QBackoff,
// Algorithm 1).
func NewLearner(table Table, defaultAction int) *Learner {
	return NewLearnerOn(table, defaultAction, nil)
}

// NewLearnerOn is NewLearner placing the policy table in backing, which must
// hold exactly table.States() elements. nil backing allocates privately.
func NewLearnerOn(table Table, defaultAction int, backing []int) *Learner {
	if defaultAction < 0 || defaultAction >= table.Actions() {
		panic(fmt.Sprintf("qlearn: default action %d out of range [0,%d)", defaultAction, table.Actions()))
	}
	if backing == nil {
		backing = make([]int, table.States())
	} else if len(backing) != table.States() {
		panic(fmt.Sprintf("qlearn: policy backing holds %d entries, want %d", len(backing), table.States()))
	}
	l := &Learner{table: table, policy: backing}
	for s := range l.policy {
		l.policy[s] = defaultAction
	}
	return l
}

// Table returns the underlying value storage.
func (l *Learner) Table() Table { return l.table }

// Policy reports π(s).
func (l *Learner) Policy(s int) int { return l.policy[s] }

// SetReevalOnDecay toggles the ablation behaviour described on Learner.
func (l *Learner) SetReevalOnDecay(v bool) { l.reevalOnDecay = v }

// Updates reports how many observations have been applied.
func (l *Learner) Updates() uint64 { return l.updates }

// Observe applies one experience tuple: action a was taken in state s, the
// environment paid reward r and the agent arrived in state next. The value
// table is updated per its rule and the policy per Eq. 3: π(s) switches only
// to an action whose stored Q-value is strictly greater than the current
// policy's. Ties keep the incumbent, which is what lets multiple agents
// settle on the same optimum. It returns the stored Q-value for (s, a).
func (l *Learner) Observe(s, a int, r float64, next int) float64 {
	l.updates++
	stored, improved := l.table.Update(s, a, r, next)
	if improved || l.reevalOnDecay {
		best := l.policy[s]
		bestQ := l.table.Q(s, best)
		for cand := 0; cand < l.table.Actions(); cand++ {
			if q := l.table.Q(s, cand); q > bestQ {
				best, bestQ = cand, q
			}
		}
		l.policy[s] = best
	}
	return stored
}

// CumulativePolicyQ reports Σ_s Q(s, π(s)) — the stability metric plotted in
// Fig. 10 and Fig. 12 ("cumulative Q-values per frame ... the sum of
// Q-values for all subslots following the best policy at that time").
func (l *Learner) CumulativePolicyQ() float64 {
	var sum float64
	for s, a := range l.policy {
		sum += l.table.Q(s, a)
	}
	return sum
}

// Reset restores the value table and sets every policy entry to
// defaultAction.
func (l *Learner) Reset(defaultAction int) {
	if defaultAction < 0 || defaultAction >= l.table.Actions() {
		panic(fmt.Sprintf("qlearn: default action %d out of range [0,%d)", defaultAction, l.table.Actions()))
	}
	l.table.Reset()
	for s := range l.policy {
		l.policy[s] = defaultAction
	}
	l.updates = 0
}

// PolicySnapshot returns a copy of π, for slot-utilization reports
// (Fig. 13–15).
func (l *Learner) PolicySnapshot() []int {
	return append([]int(nil), l.policy...)
}
