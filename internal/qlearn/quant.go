package qlearn

import "fmt"

// QuantTable stores Q-values in a single byte each (Q5.2: range ±32 in steps
// of 0.25), exercising the paper's future-work claim (§7) that "only 2-8 Bit
// are required" per entry. Updates compute in 32-bit integer arithmetic and
// saturate back to int8. It always applies the QMA rule (Eq. 5).

// quantScale is the number of raw steps per unit (Q5.2 → 4).
const quantScale = 4

const (
	quantMin = -1 << 7
	quantMax = 1<<7 - 1
)

// QuantParams holds integer-only hyperparameters for QuantTable, in raw
// quarter-unit steps.
type QuantParams struct {
	// AlphaShift encodes α = 2^-AlphaShift.
	AlphaShift uint
	// GammaNum encodes γ = GammaNum/256.
	GammaNum int32
	// Xi is the penalty in raw steps (8 → ξ = 2).
	Xi int32
	// InitQ is the initial value in raw steps (−40 → −10).
	InitQ int32
}

// DefaultQuantParams mirrors DefaultParams in quarter-unit quantization.
func DefaultQuantParams() QuantParams {
	return QuantParams{AlphaShift: 1, GammaNum: 230, Xi: 2 * quantScale, InitQ: -10 * quantScale}
}

// Validate reports a descriptive error for unusable parameters.
func (p QuantParams) Validate() error {
	switch {
	case p.AlphaShift > 7:
		return fmt.Errorf("qlearn: AlphaShift=%d too large (max 7)", p.AlphaShift)
	case p.GammaNum < 0 || p.GammaNum > 256:
		return fmt.Errorf("qlearn: GammaNum=%d out of [0,256]", p.GammaNum)
	case p.Xi < 0:
		return fmt.Errorf("qlearn: Xi=%d must be non-negative", p.Xi)
	case p.InitQ < quantMin || p.InitQ > quantMax:
		return fmt.Errorf("qlearn: InitQ=%d out of int8 range", p.InitQ)
	}
	return nil
}

// QuantTable is a Table backed by one int8 per entry.
type QuantTable struct {
	p       QuantParams
	states  int
	actions int
	q       []int8
}

var _ Table = (*QuantTable)(nil)

// NewQuantTable returns a states × actions 8-bit table initialized to
// p.InitQ. It panics on invalid parameters or non-positive dimensions.
func NewQuantTable(states, actions int, p QuantParams) *QuantTable {
	return NewQuantTableOn(states, actions, p, nil)
}

// NewQuantTableOn is NewQuantTable placing the values in backing, which must
// hold exactly states × actions elements. nil backing allocates privately.
func NewQuantTableOn(states, actions int, p QuantParams, backing []int8) *QuantTable {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if states <= 0 || actions <= 0 {
		panic(fmt.Sprintf("qlearn: table dimensions %dx%d", states, actions))
	}
	if backing == nil {
		backing = make([]int8, states*actions)
	} else if len(backing) != states*actions {
		panic(fmt.Sprintf("qlearn: backing holds %d values, want %d", len(backing), states*actions))
	}
	t := &QuantTable{p: p, states: states, actions: actions, q: backing}
	t.Reset()
	return t
}

// Params returns the table's hyperparameters.
func (t *QuantTable) Params() QuantParams { return t.p }

// States implements Table.
func (t *QuantTable) States() int { return t.states }

// Actions implements Table.
func (t *QuantTable) Actions() int { return t.actions }

func (t *QuantTable) idx(s, a int) int { return s*t.actions + a }

// Raw reports the untranslated quarter-unit value for (s, a).
func (t *QuantTable) Raw(s, a int) int8 { return t.q[t.idx(s, a)] }

// Q implements Table.
func (t *QuantTable) Q(s, a int) float64 {
	return float64(t.q[t.idx(s, a)]) / quantScale
}

// SetQ implements Table; v is rounded to the nearest quarter and saturated.
// Non-finite inputs saturate deterministically (see quantize): +Inf to the
// largest representable value, −Inf to the smallest, NaN to zero.
func (t *QuantTable) SetQ(s, a int, v float64) {
	t.q[t.idx(s, a)] = saturate8(int64(quantize(v, quantScale)))
}

func saturate8(v int64) int8 {
	if v > quantMax {
		return quantMax
	}
	if v < quantMin {
		return quantMin
	}
	return int8(v)
}

func (t *QuantTable) maxRaw(s int) int8 {
	row := t.q[s*t.actions : (s+1)*t.actions]
	max := row[0]
	for _, v := range row[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// MaxQ implements Table.
func (t *QuantTable) MaxQ(s int) float64 { return float64(t.maxRaw(s)) / quantScale }

// ArgMax implements Table.
func (t *QuantTable) ArgMax(s int) int {
	row := t.q[s*t.actions : (s+1)*t.actions]
	best := 0
	for a := 1; a < len(row); a++ {
		if row[a] > row[best] {
			best = a
		}
	}
	return best
}

// Update implements Table in integer arithmetic with int8 saturation; like
// FixedTable, the accumulation is carried in int64 so a saturated reward
// cannot wrap before the final saturation.
func (t *QuantTable) Update(s, a int, r float64, next int) (float64, bool) {
	old := int64(t.q[t.idx(s, a)])
	rQ := int64(quantize(r, quantScale))
	target := rQ + (int64(t.p.GammaNum)*int64(t.maxRaw(next)))>>8
	newV := old - (old >> t.p.AlphaShift) + (target >> t.p.AlphaShift)
	stored := old - int64(t.p.Xi)
	if newV > stored {
		stored = newV
	}
	sat := saturate8(stored)
	t.q[t.idx(s, a)] = sat
	return float64(sat) / quantScale, newV > old
}

// Reset implements Table.
func (t *QuantTable) Reset() {
	init := saturate8(int64(t.p.InitQ))
	for i := range t.q {
		t.q[i] = init
	}
}

// MemoryBytes reports the table's value-storage footprint (54 × 3 = 162
// bytes for the paper's configuration).
func (t *QuantTable) MemoryBytes() int { return len(t.q) }
