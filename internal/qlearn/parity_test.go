package qlearn

import (
	"math"
	"math/rand"
	"testing"
)

// This file pins two contracts across the three Table implementations:
//
//   - Non-finite inputs (NaN, ±Inf) saturate deterministically instead of
//     going through Go's implementation-defined float→int conversion.
//   - The Eq. 3 "improved" flag means the same thing everywhere: the newly
//     computed value strictly exceeded the previously stored one. FloatTable
//     returns stored > old and the integer tables return newV > old; the
//     property tests below prove the formulations coincide (exactly in
//     float, and up to the storage rails in fixed/quant).

func TestFixedSetQNonFinite(t *testing.T) {
	cases := []struct {
		in   float64
		want int16
	}{
		{math.NaN(), 0},
		{math.Inf(1), fixedMax},
		{math.Inf(-1), fixedMin},
		{1e12, fixedMax}, // finite but far past int16: must clamp, not wrap
		{-1e12, fixedMin},
		{200, fixedMax}, // 200·256 = 51200 > 32767
		{-200, fixedMin},
		{1.5, 384},
		{-1.5, -384},
	}
	for _, tc := range cases {
		tab := NewFixedTable(2, 2, DefaultFixedParams())
		tab.SetQ(0, 0, tc.in)
		if got := tab.Raw(0, 0); got != tc.want {
			t.Errorf("FixedTable.SetQ(%v): raw %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestQuantSetQNonFinite(t *testing.T) {
	cases := []struct {
		in   float64
		want int8
	}{
		{math.NaN(), 0},
		{math.Inf(1), quantMax},
		{math.Inf(-1), quantMin},
		{1e12, quantMax},
		{-1e12, quantMin},
		{100, quantMax}, // 100·4 = 400 > 127
		{-100, quantMin},
		{1.25, 5},
		{-1.25, -5},
	}
	for _, tc := range cases {
		tab := NewQuantTable(2, 2, DefaultQuantParams())
		tab.SetQ(0, 0, tc.in)
		if got := tab.Raw(0, 0); got != tc.want {
			t.Errorf("QuantTable.SetQ(%v): raw %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestUpdateNonFiniteRewardDeterministic drives Update with non-finite
// rewards and checks the outcome is the documented saturation, twice, on
// independent tables — deterministic by value, not by accident.
func TestUpdateNonFiniteRewardDeterministic(t *testing.T) {
	for name, r := range map[string]float64{"nan": math.NaN(), "+inf": math.Inf(1), "-inf": math.Inf(-1)} {
		var raws [2]int16
		for i := range raws {
			tab := NewFixedTable(2, 2, DefaultFixedParams())
			tab.Update(0, 0, r, 1)
			raws[i] = tab.Raw(0, 0)
		}
		if raws[0] != raws[1] {
			t.Errorf("fixed reward %s: two identical updates stored %d and %d", name, raws[0], raws[1])
		}
		var raws8 [2]int8
		for i := range raws8 {
			tab := NewQuantTable(2, 2, DefaultQuantParams())
			tab.Update(0, 0, r, 1)
			raws8[i] = tab.Raw(0, 0)
		}
		if raws8[0] != raws8[1] {
			t.Errorf("quant reward %s: two identical updates stored %d and %d", name, raws8[0], raws8[1])
		}
	}
	// +Inf reward must drive the value to the positive rail, −Inf to the
	// negative one, and NaN must act as reward 0 (quantize maps it there).
	tab := NewFixedTable(2, 2, DefaultFixedParams())
	tab.Update(0, 0, math.Inf(1), 1)
	if tab.Raw(0, 0) != fixedMax {
		t.Errorf("fixed +Inf reward: raw %d, want %d", tab.Raw(0, 0), fixedMax)
	}
	// A −Inf reward does NOT slam the value to the negative rail: the QMA
	// rule floors every decrease at old−ξ (Eq. 5), so the stored value
	// decays by exactly ξ.
	tab = NewFixedTable(2, 2, DefaultFixedParams())
	p := DefaultFixedParams()
	tab.Update(0, 0, math.Inf(-1), 1)
	if want := saturate16(int64(p.InitQ - p.Xi)); tab.Raw(0, 0) != want {
		t.Errorf("fixed -Inf reward: raw %d, want old-ξ = %d", tab.Raw(0, 0), want)
	}
	nanTab := NewFixedTable(2, 2, DefaultFixedParams())
	zeroTab := NewFixedTable(2, 2, DefaultFixedParams())
	nanTab.Update(0, 0, math.NaN(), 1)
	zeroTab.Update(0, 0, 0, 1)
	if nanTab.Raw(0, 0) != zeroTab.Raw(0, 0) {
		t.Errorf("fixed NaN reward stored %d, want the reward-0 result %d", nanTab.Raw(0, 0), zeroTab.Raw(0, 0))
	}
}

// TestFloatImprovedFlagEquivalence proves, over random update streams for
// every rule/ξ combination, that FloatTable's stored > old formulation of
// the Eq. 3 improved flag coincides with the newV > old formulation the
// integer tables use. The key case is RuleQMA: stored = max(newV, old−ξ)
// with ξ ≥ 0, so stored > old exactly when newV > old.
func TestFloatImprovedFlagEquivalence(t *testing.T) {
	type combo struct {
		rule UpdateRule
		xi   float64
	}
	combos := []combo{
		{RuleStandard, 0}, {RuleStandard, 2},
		{RuleOptimistic, 0}, {RuleOptimistic, 2},
		{RuleQMA, 0}, {RuleQMA, 0.5}, {RuleQMA, 2},
	}
	rng := rand.New(rand.NewSource(7))
	for _, c := range combos {
		p := Params{Alpha: 0.5, Gamma: 0.9, Xi: c.xi, InitQ: -10, Rule: c.rule}
		tab := NewFloatTable(8, 3, p)
		for step := 0; step < 5000; step++ {
			s, a, next := rng.Intn(8), rng.Intn(3), rng.Intn(8)
			r := float64(rng.Intn(9) - 4)
			old := tab.Q(s, a)
			target := r + p.Gamma*tab.MaxQ(next)
			var newV float64
			switch c.rule {
			case RuleStandard, RuleQMA:
				newV = (1-p.Alpha)*old + p.Alpha*target
			case RuleOptimistic:
				newV = target
			}
			stored, improved := tab.Update(s, a, r, next)
			if improved != (newV > old) {
				t.Fatalf("rule=%v xi=%v step %d: improved=%v but newV>old=%v (old=%v newV=%v)",
					c.rule, c.xi, step, improved, newV > old, old, newV)
			}
			if improved != (stored > old) {
				t.Fatalf("rule=%v xi=%v step %d: improved=%v but stored>old=%v (old=%v stored=%v)",
					c.rule, c.xi, step, improved, stored > old, old, stored)
			}
		}
	}
}

// TestIntegerImprovedFlagMatchesPreSaturation recomputes each integer
// update externally and checks the tables' improved flag is exactly
// newV > old — and that it can disagree with the float formulation
// (storedSat > old) only when saturation clamped the stored value at a
// rail, where a spuriously-true flag merely triggers a harmless policy
// re-scan in Learner.Observe.
func TestIntegerImprovedFlagMatchesPreSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fp := DefaultFixedParams()
	ft := NewFixedTable(8, 3, fp)
	for step := 0; step < 20000; step++ {
		s, a, next := rng.Intn(8), rng.Intn(3), rng.Intn(8)
		r := float64(rng.Intn(9) - 4)
		if step%100 == 0 {
			r = 500 // periodically slam into the positive rail
		}
		old := int64(ft.Raw(s, a))
		rQ := int64(quantize(r, FixedOne))
		target := rQ + (int64(fp.GammaNum)*int64(ft.maxRaw(next)))>>8
		newV := old - (old >> fp.AlphaShift) + (target >> fp.AlphaShift)
		_, improved := ft.Update(s, a, r, next)
		if improved != (newV > old) {
			t.Fatalf("fixed step %d: improved=%v, want newV>old=%v", step, improved, newV > old)
		}
		storedSat := int64(ft.Raw(s, a))
		if improved != (storedSat > old) && !(improved && old == int64(ft.Raw(s, a)) && storedSat == fixedMax) {
			t.Fatalf("fixed step %d: flag diverges from storedSat>old away from the rail (old=%d storedSat=%d)",
				step, old, storedSat)
		}
	}
	qp := DefaultQuantParams()
	qt := NewQuantTable(8, 3, qp)
	for step := 0; step < 20000; step++ {
		s, a, next := rng.Intn(8), rng.Intn(3), rng.Intn(8)
		r := float64(rng.Intn(9) - 4)
		if step%100 == 0 {
			r = 100
		}
		old := int64(qt.Raw(s, a))
		rQ := int64(quantize(r, quantScale))
		target := rQ + (int64(qp.GammaNum)*int64(qt.maxRaw(next)))>>8
		newV := old - (old >> qp.AlphaShift) + (target >> qp.AlphaShift)
		_, improved := qt.Update(s, a, r, next)
		if improved != (newV > old) {
			t.Fatalf("quant step %d: improved=%v, want newV>old=%v", step, improved, newV > old)
		}
		storedSat := int64(qt.Raw(s, a))
		if improved != (storedSat > old) && !(improved && storedSat == quantMax) {
			t.Fatalf("quant step %d: flag diverges from storedSat>old away from the rail (old=%d storedSat=%d)",
				step, old, storedSat)
		}
	}
}

// TestTableDifferentialDivergence runs the identical update stream through
// all three representations (float parameters chosen to match the integer
// ones: α=0.5, γ=230/256, ξ=2, Q₀=−10) and bounds the divergence. The
// fixed table rounds each step to 1/256 with the M3's round-toward−∞
// shifts, the quant table to 1/4; the discounting keeps the accumulated
// error proportional to the resolution, so fixed stays within a few
// hundredths and quant within a couple of units on bounded rewards.
func TestTableDifferentialDivergence(t *testing.T) {
	p := Params{Alpha: 0.5, Gamma: 230.0 / 256.0, Xi: 2, InitQ: -10, Rule: RuleQMA}
	ft := NewFloatTable(54, 3, p)
	xt := NewFixedTable(54, 3, DefaultFixedParams())
	qt := NewQuantTable(54, 3, DefaultQuantParams())
	rng := rand.New(rand.NewSource(3))
	var maxFixed, maxQuant float64
	for step := 0; step < 30000; step++ {
		s, a, next := rng.Intn(54), rng.Intn(3), rng.Intn(54)
		r := float64(rng.Intn(8) - 3) // integer rewards, exactly representable
		ft.Update(s, a, r, next)
		xt.Update(s, a, r, next)
		qt.Update(s, a, r, next)
		if d := math.Abs(ft.Q(s, a) - xt.Q(s, a)); d > maxFixed {
			maxFixed = d
		}
		if d := math.Abs(ft.Q(s, a) - qt.Q(s, a)); d > maxQuant {
			maxQuant = d
		}
	}
	if maxFixed > 0.25 {
		t.Errorf("float vs fixed diverged by %v, want <= 0.25", maxFixed)
	}
	if maxQuant > 4.0 {
		t.Errorf("float vs quant diverged by %v, want <= 4.0", maxQuant)
	}
	t.Logf("max divergence: fixed %.4f, quant %.4f", maxFixed, maxQuant)
}
