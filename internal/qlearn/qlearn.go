// Package qlearn implements the distributed, cooperative multi-agent
// Q-learning core of the paper (§3): the Lauer/Riedmiller optimistic update
// for cooperative multi-agent systems, the paper's extension for stochastic
// environments (penalty ξ and learning rate α, Eq. 4/5), the separate policy
// table that resolves duplicate optima (Eq. 3), and the exploration
// strategies of §4.2 (parameter-based, ε-greedy, constant).
//
// Value storage is pluggable behind the Table interface: a float64 table, a
// fixed-point Q8.8 table for devices without a floating-point unit (§3.2),
// and a saturating 8-bit table exercising the paper's future-work claim that
// 2–8 bits per Q-value suffice (§7).
package qlearn

import "fmt"

// UpdateRule selects which Bellman-style update a table applies.
type UpdateRule uint8

const (
	// RuleQMA is the paper's Eq. 5: optimistic max with penalty ξ and
	// learning rate α. This is what QMA runs.
	RuleQMA UpdateRule = iota
	// RuleOptimistic is the original Lauer/Riedmiller Eq. 2: keep the maximum
	// of the stored and newly computed value (ξ=0, α=1). It is vulnerable to
	// stochastic outcomes (Tbl. 3) and exists for unit tests and ablations.
	RuleOptimistic
	// RuleStandard is plain Watkins Q-learning, Eq. 1. It does not achieve
	// multi-agent cooperation (Tbl. 1) and exists for tests and ablations.
	RuleStandard
)

// String implements fmt.Stringer.
func (r UpdateRule) String() string {
	switch r {
	case RuleQMA:
		return "qma"
	case RuleOptimistic:
		return "optimistic"
	case RuleStandard:
		return "standard"
	default:
		return fmt.Sprintf("UpdateRule(%d)", uint8(r))
	}
}

// Params holds the learning hyperparameters. The zero value is not useful;
// start from DefaultParams.
type Params struct {
	// Alpha is the learning rate α. The paper uses 0.5, which embedded
	// implementations realize as a right shift by one.
	Alpha float64
	// Gamma is the discount factor γ (paper: 0.9).
	Gamma float64
	// Xi is the penalty ξ subtracted when an update would lower the stored
	// value (Eq. 4/5); it makes the optimistic rule track stochastic
	// environments. Ignored by RuleOptimistic and RuleStandard.
	Xi float64
	// InitQ is the initial Q-value. Conceptually −∞; the paper initializes
	// to −10, any value below the largest punishment works (§4.1).
	InitQ float64
	// Rule selects the update rule; the zero value is RuleQMA.
	Rule UpdateRule
}

// DefaultParams returns the hyperparameters of the paper's evaluation:
// α=0.5, γ=0.9, ξ=2, Q₀=−10, Eq. 5 updates.
func DefaultParams() Params {
	return Params{Alpha: 0.5, Gamma: 0.9, Xi: 2, InitQ: -10, Rule: RuleQMA}
}

// Validate reports a descriptive error for unusable hyperparameters.
func (p Params) Validate() error {
	switch {
	case p.Alpha <= 0 || p.Alpha > 1:
		return fmt.Errorf("qlearn: alpha=%v out of (0,1]", p.Alpha)
	case p.Gamma < 0 || p.Gamma > 1:
		return fmt.Errorf("qlearn: gamma=%v out of [0,1]", p.Gamma)
	case p.Xi < 0:
		return fmt.Errorf("qlearn: xi=%v must be non-negative", p.Xi)
	case p.Rule > RuleStandard:
		return fmt.Errorf("qlearn: unknown rule %d", p.Rule)
	}
	return nil
}

// Table stores Q-values for a finite state × action space and applies the
// configured update rule. Implementations are not safe for concurrent use;
// each agent owns its private table (the whole point of the paper's
// distributed algorithm is that no global table exists at runtime).
type Table interface {
	// States reports the number of states.
	States() int
	// Actions reports the number of actions per state.
	Actions() int
	// Q reports the stored value for (s, a), converted to float64 for
	// fixed-point implementations.
	Q(s, a int) float64
	// SetQ overwrites the stored value (used by cautious startup and tests).
	SetQ(s, a int, v float64)
	// Update applies the table's rule for reward r observed after taking a in
	// s and landing in next. It returns the resulting stored value and
	// whether the newly computed target strictly exceeded the previous stored
	// value (the Eq. 3 policy-improvement condition).
	Update(s, a int, r float64, next int) (stored float64, improved bool)
	// MaxQ reports max_a Q(s, a).
	MaxQ(s int) float64
	// ArgMax reports the smallest action index attaining MaxQ(s).
	ArgMax(s int) int
	// Reset restores every entry to the initial value.
	Reset()
	// MemoryBytes reports the value-storage footprint in bytes — the figure
	// behind the paper's §3.2 resource argument (the same table costs 648
	// bytes in float64, 324 in Q8.8 and 162 in 8-bit storage).
	MemoryBytes() int
}

// FloatTable is the reference float64 implementation of Table.
type FloatTable struct {
	p       Params
	states  int
	actions int
	q       []float64
}

var _ Table = (*FloatTable)(nil)

// NewFloatTable returns a states × actions table initialized to p.InitQ.
// It panics on invalid parameters or non-positive dimensions.
func NewFloatTable(states, actions int, p Params) *FloatTable {
	return NewFloatTableOn(states, actions, p, nil)
}

// NewFloatTableOn is NewFloatTable placing the values in backing, which must
// hold exactly states × actions elements (a slab slice from a run arena).
// nil backing allocates privately.
func NewFloatTableOn(states, actions int, p Params, backing []float64) *FloatTable {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if states <= 0 || actions <= 0 {
		panic(fmt.Sprintf("qlearn: table dimensions %dx%d", states, actions))
	}
	if backing == nil {
		backing = make([]float64, states*actions)
	} else if len(backing) != states*actions {
		panic(fmt.Sprintf("qlearn: backing holds %d values, want %d", len(backing), states*actions))
	}
	t := &FloatTable{p: p, states: states, actions: actions, q: backing}
	t.Reset()
	return t
}

// Params returns the table's hyperparameters.
func (t *FloatTable) Params() Params { return t.p }

// States implements Table.
func (t *FloatTable) States() int { return t.states }

// Actions implements Table.
func (t *FloatTable) Actions() int { return t.actions }

func (t *FloatTable) idx(s, a int) int { return s*t.actions + a }

// Q implements Table.
func (t *FloatTable) Q(s, a int) float64 { return t.q[t.idx(s, a)] }

// SetQ implements Table.
func (t *FloatTable) SetQ(s, a int, v float64) { t.q[t.idx(s, a)] = v }

// MaxQ implements Table.
func (t *FloatTable) MaxQ(s int) float64 {
	row := t.q[s*t.actions : (s+1)*t.actions]
	max := row[0]
	for _, v := range row[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// ArgMax implements Table.
func (t *FloatTable) ArgMax(s int) int {
	row := t.q[s*t.actions : (s+1)*t.actions]
	best := 0
	for a := 1; a < len(row); a++ {
		if row[a] > row[best] {
			best = a
		}
	}
	return best
}

// Update implements Table.
func (t *FloatTable) Update(s, a int, r float64, next int) (float64, bool) {
	old := t.Q(s, a)
	target := r + t.p.Gamma*t.MaxQ(next)
	var stored float64
	switch t.p.Rule {
	case RuleStandard: // Eq. 1
		stored = (1-t.p.Alpha)*old + t.p.Alpha*target
	case RuleOptimistic: // Eq. 2
		stored = old
		if target > stored {
			stored = target
		}
	default: // RuleQMA, Eq. 5
		newV := (1-t.p.Alpha)*old + t.p.Alpha*target
		stored = old - t.p.Xi
		if newV > stored {
			stored = newV
		}
	}
	t.SetQ(s, a, stored)
	return stored, stored > old
}

// Reset implements Table.
func (t *FloatTable) Reset() {
	for i := range t.q {
		t.q[i] = t.p.InitQ
	}
}

// MemoryBytes implements Table: 8 bytes per entry.
func (t *FloatTable) MemoryBytes() int { return len(t.q) * 8 }

// Snapshot returns a copy of the Q-values as a [states][actions] matrix, for
// inspection and golden tests (Fig. 5).
func (t *FloatTable) Snapshot() [][]float64 {
	out := make([][]float64, t.states)
	for s := range out {
		out[s] = append([]float64(nil), t.q[s*t.actions:(s+1)*t.actions]...)
	}
	return out
}
