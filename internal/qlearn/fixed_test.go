package qlearn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFixedParamsValidate(t *testing.T) {
	if err := DefaultFixedParams().Validate(); err != nil {
		t.Fatalf("default fixed params invalid: %v", err)
	}
	bad := []FixedParams{
		{AlphaShift: 9, GammaNum: 230},
		{AlphaShift: 1, GammaNum: -1},
		{AlphaShift: 1, GammaNum: 257},
		{AlphaShift: 1, GammaNum: 230, Xi: -1},
		{AlphaShift: 1, GammaNum: 230, InitQ: 1 << 20},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

// TestFixedReplaysFigure5 replays the paper's worked example on the integer
// table: with α=1 (shift 0), γ=1 (256/256) and ξ=2 every intermediate value
// is an exact integer, so fixed point must match the float table bit for
// bit.
func TestFixedReplaysFigure5(t *testing.T) {
	fp := FixedParams{AlphaShift: 0, GammaNum: 256, Xi: 2 * FixedOne, InitQ: -10 * FixedOne}
	ft := NewFixedTable(4, 3, fp)
	lf := NewLearner(ft, figB)

	p := Params{Alpha: 1, Gamma: 1, Xi: 2, InitQ: -10, Rule: RuleQMA}
	rt := NewFloatTable(4, 3, p)
	lr := NewLearner(rt, figB)

	steps := []figStep{
		{0, figS, 4}, {1, figB, 0}, {2, figS, -3}, {3, figB, 2},
		{0, figS, 4}, {1, figB, 2}, {2, figB, 0}, {3, figB, 2},
		{0, figS, 4}, {1, figB, 0}, {2, figB, 0}, {3, figB, 2},
	}
	for _, st := range steps {
		next := (st.subslot + 1) % 4
		lf.Observe(st.subslot, st.action, st.reward, next)
		lr.Observe(st.subslot, st.action, st.reward, next)
	}
	for s := 0; s < 4; s++ {
		for a := 0; a < 3; a++ {
			if got, want := ft.Q(s, a), rt.Q(s, a); got != want {
				t.Errorf("fixed Q(%d,%d) = %v, want %v", s, a, got, want)
			}
		}
		if lf.Policy(s) != lr.Policy(s) {
			t.Errorf("fixed π(%d) = %d, float π(%d) = %d", s, lf.Policy(s), s, lr.Policy(s))
		}
	}
}

// TestFixedTracksFloat drives identical random update sequences through the
// fixed-point table and a float table configured with the same effective
// γ = 230/256 and asserts bounded divergence (the quantization error
// contracts geometrically under α=0.5, γ≈0.9).
func TestFixedTracksFloat(t *testing.T) {
	p := Params{Alpha: 0.5, Gamma: 230.0 / 256.0, Xi: 2, InitQ: -10, Rule: RuleQMA}
	prop := func(seed int64) bool {
		ft := NewFixedTable(6, 3, DefaultFixedParams())
		rt := NewFloatTable(6, 3, p)
		rewards := []float64{-3, -2, 0, 1, 2, 3, 4}
		x := uint64(seed)
		nextU := func(n int) int {
			x = x*6364136223846793005 + 1442695040888963407
			return int((x >> 33) % uint64(n))
		}
		for i := 0; i < 300; i++ {
			s, a, r := nextU(6), nextU(3), rewards[nextU(len(rewards))]
			next := nextU(6)
			ft.Update(s, a, r, next)
			rt.Update(s, a, r, next)
		}
		for s := 0; s < 6; s++ {
			for a := 0; a < 3; a++ {
				if math.Abs(ft.Q(s, a)-rt.Q(s, a)) > 0.5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedSaturation(t *testing.T) {
	ft := NewFixedTable(2, 2, DefaultFixedParams())
	ft.SetQ(0, 0, 1e6)
	if got := ft.Q(0, 0); got != float64(fixedMax)/FixedOne {
		t.Errorf("SetQ did not saturate high: %v", got)
	}
	ft.SetQ(0, 0, -1e6)
	if got := ft.Q(0, 0); got != float64(fixedMin)/FixedOne {
		t.Errorf("SetQ did not saturate low: %v", got)
	}
	// Updates never wrap around either.
	for i := 0; i < 100; i++ {
		ft.Update(0, 0, 127, 1)
	}
	if got := ft.Q(0, 0); got > float64(fixedMax)/FixedOne || got < 0 {
		t.Errorf("update wrapped around: %v", got)
	}
}

func TestFixedNeverExceedsInt16Property(t *testing.T) {
	prop := func(rewardsRaw []int8, states uint8) bool {
		n := int(states%4) + 2
		ft := NewFixedTable(n, 3, DefaultFixedParams())
		for i, rr := range rewardsRaw {
			s, a, next := i%n, i%3, (i+1)%n
			ft.Update(s, a, float64(rr), next)
		}
		for s := 0; s < n; s++ {
			for a := 0; a < 3; a++ {
				raw := ft.Raw(s, a)
				if int32(raw) > fixedMax || int32(raw) < fixedMin {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedMemoryBytes(t *testing.T) {
	ft := NewFixedTable(54, 3, DefaultFixedParams())
	if got := ft.MemoryBytes(); got != 324 {
		t.Errorf("MemoryBytes = %d, want 324 (54 subslots × 3 actions × 2 B)", got)
	}
	qt := NewQuantTable(54, 3, DefaultQuantParams())
	if got := qt.MemoryBytes(); got != 162 {
		t.Errorf("quant MemoryBytes = %d, want 162", got)
	}
}

func TestQuantParamsValidate(t *testing.T) {
	if err := DefaultQuantParams().Validate(); err != nil {
		t.Fatalf("default quant params invalid: %v", err)
	}
	bad := []QuantParams{
		{AlphaShift: 8, GammaNum: 230},
		{AlphaShift: 1, GammaNum: 300},
		{AlphaShift: 1, GammaNum: 230, Xi: -2},
		{AlphaShift: 1, GammaNum: 230, InitQ: -1000},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

// TestQuantLearnsBandit checks the 8-bit table still separates a good from a
// bad action in a simple stochastic bandit, the qualitative claim behind the
// paper's §7 quantization proposal.
func TestQuantLearnsBandit(t *testing.T) {
	qt := NewQuantTable(1, 2, DefaultQuantParams())
	l := NewLearner(qt, 0)
	for i := 0; i < 50; i++ {
		l.Observe(0, 0, -3, 0) // always collides
		l.Observe(0, 1, 4, 0)  // always succeeds
	}
	if qt.Q(0, 1) <= qt.Q(0, 0) {
		t.Fatalf("quant table failed to separate actions: Q(bad)=%v Q(good)=%v", qt.Q(0, 0), qt.Q(0, 1))
	}
	if l.Policy(0) != 1 {
		t.Fatalf("policy = %d, want 1", l.Policy(0))
	}
}

func TestQuantSaturation(t *testing.T) {
	qt := NewQuantTable(1, 1, DefaultQuantParams())
	for i := 0; i < 200; i++ {
		qt.Update(0, 0, 31, 0)
	}
	if got := qt.Raw(0, 0); got != quantMax {
		t.Errorf("Raw after repeated max rewards = %d, want %d", got, quantMax)
	}
	for i := 0; i < 500; i++ {
		qt.Update(0, 0, -31, 0)
	}
	if got := qt.Raw(0, 0); int32(got) < quantMin {
		t.Errorf("Raw wrapped below %d: %d", quantMin, got)
	}
}

// TestTableInterfaceContract runs a shared contract over all three
// implementations.
func TestTableInterfaceContract(t *testing.T) {
	tables := map[string]Table{
		"float": NewFloatTable(5, 3, DefaultParams()),
		"fixed": NewFixedTable(5, 3, DefaultFixedParams()),
		"quant": NewQuantTable(5, 3, DefaultQuantParams()),
	}
	for name, tb := range tables {
		t.Run(name, func(t *testing.T) {
			if tb.States() != 5 || tb.Actions() != 3 {
				t.Fatalf("dimensions = %dx%d", tb.States(), tb.Actions())
			}
			if got := tb.Q(2, 1); got != -10 {
				t.Fatalf("initial Q = %v, want -10", got)
			}
			tb.SetQ(2, 1, 5)
			if got := tb.Q(2, 1); got != 5 {
				t.Fatalf("SetQ/Q = %v, want 5", got)
			}
			if got := tb.MaxQ(2); got != 5 {
				t.Fatalf("MaxQ = %v, want 5", got)
			}
			if got := tb.ArgMax(2); got != 1 {
				t.Fatalf("ArgMax = %d, want 1", got)
			}
			// An improving update reports improved=true.
			if _, improved := tb.Update(0, 0, 4, 2); !improved {
				t.Fatal("improving update reported improved=false")
			}
			tb.Reset()
			if got := tb.Q(2, 1); got != -10 {
				t.Fatalf("Reset left Q = %v", got)
			}
		})
	}
}
