package qlearn

import (
	"fmt"
	"math"
)

// Fixed-point Q8.8 arithmetic for the paper's embedded target (§3.2): the
// FIT IoT-LAB M3 nodes carry a Cortex-M3 without a floating-point unit, so
// the paper realizes α=0.5 as a right shift by one and integer rewards. The
// FixedTable reproduces that arithmetic bit-exactly in Go: values are int16
// Q8.8 (range ±128, resolution 1/256), α is a power-of-two shift and γ a
// rational with denominator 256.

// FixedOne is the Q8.8 representation of 1.0.
const FixedOne = 256

// fixedMin and fixedMax are the int16 saturation bounds.
const (
	fixedMin = -1 << 15
	fixedMax = 1<<15 - 1
)

// FixedParams holds integer-only hyperparameters for FixedTable.
type FixedParams struct {
	// AlphaShift encodes α = 2^-AlphaShift (1 → α = 0.5, the paper's value).
	AlphaShift uint
	// GammaNum encodes γ = GammaNum/256 (230 → γ ≈ 0.8984, the closest Q8.8
	// value to the paper's 0.9).
	GammaNum int32
	// Xi is the penalty ξ in Q8.8 (512 → ξ = 2).
	Xi int32
	// InitQ is the initial value in Q8.8 (−2560 → −10).
	InitQ int32
}

// DefaultFixedParams mirrors DefaultParams in fixed point.
func DefaultFixedParams() FixedParams {
	return FixedParams{AlphaShift: 1, GammaNum: 230, Xi: 2 * FixedOne, InitQ: -10 * FixedOne}
}

// Validate reports a descriptive error for unusable parameters.
func (p FixedParams) Validate() error {
	switch {
	case p.AlphaShift > 8:
		return fmt.Errorf("qlearn: AlphaShift=%d too large (max 8)", p.AlphaShift)
	case p.GammaNum < 0 || p.GammaNum > FixedOne:
		return fmt.Errorf("qlearn: GammaNum=%d out of [0,256]", p.GammaNum)
	case p.Xi < 0:
		return fmt.Errorf("qlearn: Xi=%d must be non-negative", p.Xi)
	case p.InitQ < fixedMin || p.InitQ > fixedMax:
		return fmt.Errorf("qlearn: InitQ=%d out of int16 range", p.InitQ)
	}
	return nil
}

// FixedTable is a Table backed by int16 Q8.8 values using only integer
// shifts, additions and one 16×16→32 multiplication per update — exactly the
// operation budget §3.2 claims for resource-restricted devices. It always
// applies the QMA rule (Eq. 5).
type FixedTable struct {
	p       FixedParams
	states  int
	actions int
	q       []int16
}

var _ Table = (*FixedTable)(nil)

// NewFixedTable returns a states × actions Q8.8 table initialized to
// p.InitQ. It panics on invalid parameters or non-positive dimensions.
func NewFixedTable(states, actions int, p FixedParams) *FixedTable {
	return NewFixedTableOn(states, actions, p, nil)
}

// NewFixedTableOn is NewFixedTable placing the values in backing, which must
// hold exactly states × actions elements. nil backing allocates privately.
func NewFixedTableOn(states, actions int, p FixedParams, backing []int16) *FixedTable {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if states <= 0 || actions <= 0 {
		panic(fmt.Sprintf("qlearn: table dimensions %dx%d", states, actions))
	}
	if backing == nil {
		backing = make([]int16, states*actions)
	} else if len(backing) != states*actions {
		panic(fmt.Sprintf("qlearn: backing holds %d values, want %d", len(backing), states*actions))
	}
	t := &FixedTable{p: p, states: states, actions: actions, q: backing}
	t.Reset()
	return t
}

// Params returns the table's hyperparameters.
func (t *FixedTable) Params() FixedParams { return t.p }

// States implements Table.
func (t *FixedTable) States() int { return t.states }

// Actions implements Table.
func (t *FixedTable) Actions() int { return t.actions }

func (t *FixedTable) idx(s, a int) int { return s*t.actions + a }

// Raw reports the untranslated Q8.8 value for (s, a).
func (t *FixedTable) Raw(s, a int) int16 { return t.q[t.idx(s, a)] }

// Q implements Table.
func (t *FixedTable) Q(s, a int) float64 {
	return float64(t.q[t.idx(s, a)]) / FixedOne
}

// SetQ implements Table; v is rounded to the nearest Q8.8 value and
// saturated. Non-finite inputs saturate deterministically: +Inf to the
// largest representable value, −Inf to the smallest, NaN to zero.
func (t *FixedTable) SetQ(s, a int, v float64) {
	t.q[t.idx(s, a)] = saturate16(int64(quantize(v, FixedOne)))
}

// quantize rounds v·scale half-away-from-zero into an int32. Converting a
// non-finite (or out-of-range) float64 to an integer is implementation-
// defined in Go, so the non-finite and overflowing cases are pinned here
// before any conversion: NaN → 0, +Inf and huge positives → MaxInt32, −Inf
// and huge negatives → MinInt32. Callers saturate the result to their
// storage width, which turns MaxInt32/MinInt32 into their own bounds.
func quantize(v, scale float64) int32 {
	v *= scale
	switch {
	case math.IsNaN(v):
		return 0
	case v >= math.MaxInt32:
		return math.MaxInt32
	case v <= math.MinInt32:
		return math.MinInt32
	}
	return int32(roundHalfAway(v))
}

func roundHalfAway(v float64) float64 {
	if v >= 0 {
		return float64(int64(v + 0.5))
	}
	return float64(int64(v - 0.5))
}

func saturate16(v int64) int16 {
	if v > fixedMax {
		return fixedMax
	}
	if v < fixedMin {
		return fixedMin
	}
	return int16(v)
}

func (t *FixedTable) maxRaw(s int) int16 {
	row := t.q[s*t.actions : (s+1)*t.actions]
	max := row[0]
	for _, v := range row[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// MaxQ implements Table.
func (t *FixedTable) MaxQ(s int) float64 { return float64(t.maxRaw(s)) / FixedOne }

// ArgMax implements Table.
func (t *FixedTable) ArgMax(s int) int {
	row := t.q[s*t.actions : (s+1)*t.actions]
	best := 0
	for a := 1; a < len(row); a++ {
		if row[a] > row[best] {
			best = a
		}
	}
	return best
}

// Update implements Table using only integer arithmetic: one widening
// multiplication for γ·maxQ(next), two arithmetic shifts for α, and
// additions. Arithmetic right shifts round toward −∞, matching what a
// Cortex-M3 ASR instruction produces. The accumulation is carried in int64
// so even a reward saturated by quantize cannot wrap before the final
// int16 saturation.
func (t *FixedTable) Update(s, a int, r float64, next int) (float64, bool) {
	old := int64(t.q[t.idx(s, a)])
	rQ := int64(quantize(r, FixedOne))
	target := rQ + (int64(t.p.GammaNum)*int64(t.maxRaw(next)))>>8
	// (1−α)·old + α·target with α = 2^-shift: old − (old>>shift) + (target>>shift).
	newV := old - (old >> t.p.AlphaShift) + (target >> t.p.AlphaShift)
	stored := old - int64(t.p.Xi)
	if newV > stored {
		stored = newV
	}
	sat := saturate16(stored)
	t.q[t.idx(s, a)] = sat
	return float64(sat) / FixedOne, newV > old
}

// Reset implements Table.
func (t *FixedTable) Reset() {
	init := saturate16(int64(t.p.InitQ))
	for i := range t.q {
		t.q[i] = init
	}
}

// MemoryBytes reports the table's value-storage footprint, the figure the
// paper's resource-efficiency argument is about (54 subslots × 3 actions ×
// 2 bytes = 324 bytes on the M3).
func (t *FixedTable) MemoryBytes() int { return len(t.q) * 2 }
